package regexrw

import (
	"context"

	"testing"
)

// TestQuickstart exercises the README's quick-start snippet.
func TestQuickstart(t *testing.T) {
	r, err := Rewrite("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseExpr("e2*·e1·e3*")
	if !EquivalentExprs(r.Regex(), want) {
		t.Fatalf("Regex() = %s, want ≡ e2*·e1·e3*", r.Regex())
	}
	exact, _ := r.IsExact()
	if !exact {
		t.Fatal("rewriting should be exact")
	}
}

func TestFacadeInstanceFunctions(t *testing.T) {
	inst, err := ParseInstance("a·b", map[string]string{"e1": "a", "e2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !ExistsExactRewriting(inst) {
		t.Fatal("exact rewriting should exist")
	}
	if !HasNonemptyRewriting(inst) {
		t.Fatal("nonempty rewriting should exist")
	}
	r := MaximalRewriting(inst)
	if !r.Accepts("e1", "e2") {
		t.Fatal("e1·e2 missing from rewriting")
	}
}

func TestFacadePartialRewriting(t *testing.T) {
	inst, err := ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartialRewriting(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 || res.Added[0] != "c" {
		t.Fatalf("Added = %v", res.Added)
	}
}

func TestFacadeExprHelpers(t *testing.T) {
	a, err := ParseExpr("a+b")
	if err != nil {
		t.Fatal(err)
	}
	if !EquivalentExprs(a, MustParseExpr("b+a")) {
		t.Fatal("a+b should equal b+a as a language")
	}
	if _, err := ParseExpr("(("); err == nil {
		t.Fatal("bad syntax accepted")
	}
}

// TestFacadeRPQ walks the semi-structured path: theory, database,
// query, rewriting, answering using views.
func TestFacadeRPQ(t *testing.T) {
	tt := NewTheory()
	tt.AddConstants("rome", "district", "restaurant")

	db := NewDB(tt)
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("romePage", "district", "trastevere")
	db.AddEdge("trastevere", "restaurant", "carlotta")

	q0, err := ParseQuery("r·d*·t", map[string]string{
		"r": "=rome", "d": "=district", "t": "=restaurant",
	})
	if err != nil {
		t.Fatal(err)
	}
	views := []RPQView{
		{Name: "vr", Query: mustQuery(t, "r", map[string]string{"r": "=rome"})},
		{Name: "vd", Query: mustQuery(t, "d", map[string]string{"d": "=district"})},
		{Name: "vt", Query: mustQuery(t, "t", map[string]string{"t": "=restaurant"})},
	}
	for _, method := range []RPQMethod{Grounded, Direct} {
		r, err := RewriteRPQ(q0, views, tt, method)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := r.IsExact()
		if !exact {
			t.Fatalf("method %v: rewriting should be exact", method)
		}
		direct := q0.Answer(tt, db)
		via := r.AnswerUsingViews(db)
		if len(direct) != len(via) {
			t.Fatalf("method %v: answers differ: %v vs %v", method, direct, via)
		}
	}
}

func TestFacadePartialRewriteRPQ(t *testing.T) {
	tt := NewTheory()
	tt.AddConstants("a", "b", "c")
	q0, err := ParseQuery("fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFormula("=a")
	if err != nil {
		t.Fatal(err)
	}
	views := []RPQView{{Name: "q1", Query: AtomicQuery("fa", f)}}
	res, err := PartialRewriteRPQ(q0, views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) == 0 {
		t.Fatal("expected added views")
	}
}

func mustQuery(t *testing.T, expr string, formulas map[string]string) *Query {
	t.Helper()
	q, err := ParseQuery(expr, formulas)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFacadeNewInstanceAndBounded(t *testing.T) {
	q := MustParseExpr("a·b")
	inst, err := NewInstance(q, []View{
		{Name: "e1", Expr: MustParseExpr("a")},
		{Name: "e2", Expr: MustParseExpr("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := MaximalRewritingBounded(inst, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Accepts("e1", "e2") {
		t.Fatal("bounded rewriting wrong")
	}
	if _, err := MaximalRewritingBounded(inst, 0); err == nil {
		t.Fatal("cap 0 should fail")
	}
}

func TestFacadePartialRewritingContext(t *testing.T) {
	inst, err := ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartialRewritingContext(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 {
		t.Fatalf("Added = %v", res.Added)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PartialRewritingContext(ctx, inst); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestFacadeContainingAndPrune(t *testing.T) {
	inst, err := ParseInstance("a·b", map[string]string{"e1": "a+c", "e2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !ExistsContainingRewriting(inst) {
		t.Fatal("containing rewriting should exist")
	}
	inst2, err := ParseInstance("a·b", map[string]string{"vBig": "a·b", "vA": "a", "vB": "b"})
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := PruneViews(inst2, ViewCosts{"vBig": 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Views) != 2 {
		t.Fatalf("pruned kept %d views", len(pruned.Views))
	}
}

func TestFacadeRewritePossibleRPQ(t *testing.T) {
	tt := NewTheory()
	tt.AddConstants("a", "b", "c")
	q0, err := ParseQuery("fa·fb", map[string]string{"fa": "=a", "fb": "=b"})
	if err != nil {
		t.Fatal(err)
	}
	u, err := ParseQuery("f", map[string]string{"f": "=a | =c"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := ParseQuery("f", map[string]string{"f": "=b"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := RewritePossibleRPQ(q0, []RPQView{{Name: "u", Query: u}, {Name: "w", Query: w}}, tt)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Accepts("u", "w") {
		t.Fatal("u·w should be possible")
	}
	// NewDB(nil) also works (standalone label alphabet).
	db := NewDB(nil)
	db.AddEdge("x", "a", "y")
	if db.NumEdges() != 1 {
		t.Fatal("NewDB(nil) broken")
	}
	// Rewrite error path: bad view syntax.
	if _, err := Rewrite("((", nil); err == nil {
		t.Fatal("bad query accepted")
	}
}
