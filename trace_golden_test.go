package regexrw

// Golden-trace tests: the deterministic tracer's JSON export is a pure
// function of the traced computation (no wall-clock fields, workers
// pinned to 1 so the span tree's child order is the sequential
// execution order), so the trace of a fixed instance is byte-stable.
// Committing it pins the whole observability contract at once — span
// taxonomy, nesting, state/transition/cache accounting and JSON
// encoding. Regenerate after an intentional pipeline or schema change
// with:
//
//	go test -run TestGoldenTrace -update .

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"regexrw/internal/obs"
	"regexrw/internal/par"
	"regexrw/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/golden")

// goldenTrace runs fn under a deterministic tracer with one worker and
// byte-compares the exported trace against testdata/golden/<name>.
func goldenTrace(t *testing.T, name string, fn func(ctx context.Context)) {
	t.Helper()
	tr := NewDeterministicTracer()
	ctx := par.WithWorkers(WithTracer(context.Background(), tr), 1)
	fn(ctx)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must satisfy its own published schema.
	if err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails schema validation: %v\n%s", err, buf.String())
	}

	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestGoldenTrace -update .): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace diverged from %s (if intentional, rerun with -update):\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.String(), want)
	}
}

// TestGoldenTraceEX2 pins the trace of the paper's Example 2: the full
// maximal-rewriting construction (A_d, transfer fan-out, complement)
// followed by the Theorem 6 exactness check.
func TestGoldenTraceEX2(t *testing.T) {
	inst, err := ParseInstance("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		t.Fatal(err)
	}
	goldenTrace(t, "ex2_trace.json", func(ctx context.Context) {
		r, err := MaximalRewritingContext(ctx, inst)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := r.IsExactContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatal("Example 2 rewriting should be exact")
		}
	})
}

// TestGoldenTraceTHM6 pins the trace of the determinization-blowup
// family at n=3: the on-the-fly containment check of Theorem 6 on a
// rewriting whose DFA has 2^n states.
func TestGoldenTraceTHM6(t *testing.T) {
	inst := workload.DetBlowupFamily(3)
	goldenTrace(t, "thm6_trace.json", func(ctx context.Context) {
		r, err := MaximalRewritingContext(ctx, inst)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := r.IsExactContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatal("DetBlowupFamily rewriting should be exact")
		}
	})
}

// TestGoldenTraceTaxonomy spot-checks the committed EX2 golden against
// the span taxonomy documented in docs/OBSERVABILITY.md, so a stale or
// hand-edited golden cannot silently drift from the documentation.
func TestGoldenTraceTaxonomy(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "ex2_trace.json"))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestGoldenTrace -update .): %v", err)
	}
	root, err := obs.ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != obs.RootSpanName {
		t.Fatalf("root span = %q, want %q", root.Name, obs.RootSpanName)
	}
	for _, name := range []string{
		"core.maximal_rewriting", "core.a_d", "regex.to_nfa",
		"automata.determinize", "automata.minimize", "automata.complement",
		"core.transfer", "par.foreach",
		"core.exactness", "core.expand", "automata.contained_in_materialized",
	} {
		if len(obs.FindSpans(root, name)) == 0 {
			t.Errorf("golden EX2 trace has no %q span", name)
		}
	}
	// The dispatcher-consulting spans must carry the committed decision
	// as the documented `strategy` attribute.
	for _, name := range []string{"core.exactness", "core.transfer"} {
		spans := obs.FindSpans(root, name)
		if len(spans) == 0 {
			continue // reported above
		}
		if _, ok := spans[0].Attrs["strategy"]; !ok {
			t.Errorf("golden EX2 trace: %q span has no strategy attribute", name)
		}
	}
	// Per-view transfer spans carry the view name as a detail suffix.
	for _, view := range []string{"e1", "e2", "e3"} {
		if len(obs.FindSpans(root, "core.transfer:"+view)) == 0 {
			t.Errorf("golden EX2 trace has no core.transfer:%s span", view)
		}
	}
}
