//go:build !regexrwdebug

package debug

// Enabled reports whether runtime invariant checking is compiled in.
// Without the regexrwdebug build tag the invariant hooks compile to
// no-ops.
const Enabled = false
