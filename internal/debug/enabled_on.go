//go:build regexrwdebug

package debug

// Enabled reports whether runtime invariant checking is compiled in.
// This build has the regexrwdebug tag set.
const Enabled = true
