// Package debug gates the runtime invariant checks of the automata
// pipeline behind the regexrwdebug build tag.
//
// The Validate methods on automata.NFA, automata.DFA and core.Rewriting
// are always available for explicit calls, but the automatic hooks that
// run them after every constructor (debugValidate* in their packages)
// test debug.Enabled first. Enabled is a compile-time constant: without
// the tag the hooks reduce to `if false { ... }` and the compiler
// removes them entirely, so release builds pay nothing.
//
// Enable the checks with:
//
//	go test -tags regexrwdebug ./...
//	go build -tags regexrwdebug ./...
package debug
