// Package strategy is the adaptive dispatcher of the rewriting
// pipeline: a measured cost model plus per-domain overrides that every
// hot construction consults before committing to an execution strategy.
//
// Three decisions are adaptive (docs/PERFORMANCE.md §6 has the
// calibration numbers behind the default thresholds):
//
//   - fan-out: the per-view transfer fixpoint (internal/core) and the
//     view grounding (internal/rpq) run sequentially or over the
//     par.ForEach worker pool depending on the estimated total work —
//     goroutine fan-out costs a few microseconds per worker, so small
//     instances (the paper's Example 2) are faster inline;
//   - kernel: DFA hot loops (minimization refinement, containment
//     product scans) run on the sparse map-backed representation or on
//     a symbol-indexed dense []int32 transition table (automata/dense.go)
//     selected by states × |Σ| density;
//   - exactness: the Theorem 6 check uses the on-the-fly complement of
//     the expansion B (space-saving, 2EXPSPACE-safe) or materializes
//     det(B) up front (faster when B is nearly deterministic, as in the
//     DetBlowup family) depending on the estimated determinized size.
//
// Every decision is observable: the chosen strategy is recorded as the
// integer `strategy` attribute on the construction's span and counted
// on the per-run and process-wide registries as strategy.<domain>.<choice>
// (docs/OBSERVABILITY.md). Decisions are overridable per domain through
// the engine option engine.WithStrategy, the context carrier With, or
// the REGEXRW_STRATEGY environment variable, e.g.
//
//	REGEXRW_STRATEGY=fanout=seq,kernel=dense,exactness=materialized
package strategy

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"regexrw/internal/obs"
)

// Choice identifies the strategy a construction committed to. The
// numeric values are stable — they are recorded verbatim as the
// int64 `strategy` span attribute (obs.Span.SetAttr is int64-only).
type Choice int64

const (
	// ChoiceSequential: the fan-out ran inline on the calling goroutine.
	ChoiceSequential Choice = 1
	// ChoiceParallel: the fan-out ran over the par.ForEach worker pool.
	ChoiceParallel Choice = 2
	// ChoiceSparse: the kernel ran on the sparse [][]State representation.
	ChoiceSparse Choice = 3
	// ChoiceDense: the kernel ran on the dense []int32 transition table.
	ChoiceDense Choice = 4
	// ChoiceOnTheFly: exactness used the lazy complement of Theorem 6.
	ChoiceOnTheFly Choice = 5
	// ChoiceMaterialized: exactness determinized the expansion up front.
	ChoiceMaterialized Choice = 6
)

// String returns the counter-name suffix of the choice.
func (c Choice) String() string {
	switch c {
	case ChoiceSequential:
		return "sequential"
	case ChoiceParallel:
		return "parallel"
	case ChoiceSparse:
		return "sparse"
	case ChoiceDense:
		return "dense"
	case ChoiceOnTheFly:
		return "on_the_fly"
	case ChoiceMaterialized:
		return "materialized"
	}
	return fmt.Sprintf("choice(%d)", int64(c))
}

// FanOutMode selects the fan-out strategy: adaptive or forced.
type FanOutMode int

const (
	// FanOutAuto picks by the cost model: parallel iff the pool has >1
	// worker, there are at least ParallelMinItems items, and the summed
	// per-item cost reaches ParallelMinCost.
	FanOutAuto FanOutMode = iota
	// FanOutForceSequential always runs inline.
	FanOutForceSequential
	// FanOutForceParallel always uses the worker pool (still sequential
	// when the context's pool has a single worker — par.ForEach semantics).
	FanOutForceParallel
)

// KernelMode selects the DFA kernel representation: adaptive or forced.
type KernelMode int

const (
	// KernelAuto picks dense iff states × |Σ| fits DenseMaxEntries and
	// the state count fits DenseMaxStates.
	KernelAuto KernelMode = iota
	// KernelForceSparse always runs the map/slice-backed loops.
	KernelForceSparse
	// KernelForceDense always builds and uses the dense table.
	KernelForceDense
)

// ExactnessMode selects the Theorem 6 complement strategy.
type ExactnessMode int

const (
	// ExactnessAuto materializes det(B) iff its estimated size fits
	// MaterializeMaxStates, else complements on the fly.
	ExactnessAuto ExactnessMode = iota
	// ExactnessForceOnTheFly always uses the lazy complement.
	ExactnessForceOnTheFly
	// ExactnessForceMaterialized always determinizes the expansion.
	ExactnessForceMaterialized
)

// Default thresholds. The fan-out numbers come from calibrating the
// transfer fixpoint against the worker-pool overhead (docs/PERFORMANCE.md
// §6): one product-pair unit (one view state × one A_d state) costs on
// the order of 100ns of fixpoint work, and dispatching the pool costs a
// few microseconds, so the break-even is around 10³ units.
const (
	// DefaultParallelMinItems is the minimum fan-out width for the pool:
	// with a single item there is nothing to overlap.
	DefaultParallelMinItems = 2
	// DefaultParallelMinCost is the minimum summed per-item cost (in
	// product-pair units) before the pool pays for itself.
	DefaultParallelMinCost = 1024
	// DefaultDenseMaxStates caps the dense table by state count: beyond
	// a million states the table rows alone defeat cache locality and
	// the build cost dominates.
	DefaultDenseMaxStates = 1 << 20
	// DefaultDenseMaxEntries caps states × |Σ|: 4Mi int32 entries is a
	// 16 MiB table, the point where the dense build stops amortizing.
	DefaultDenseMaxEntries = 4 << 20
	// DefaultMaterializeMaxStates bounds the estimated size of det(B)
	// under which exactness materializes the complement up front. 2^16
	// subsets is still small memory (the scan walks one int32 row per
	// state) and materialization measures faster than the on-the-fly
	// product well past it — the DetBlowup family's det(B) reaches 8k
	// subsets at n=12 with the materialized arm still the winner, so
	// the cap errs generously upward; an abandoned trial's waste stays
	// bounded by this many subsets either way.
	DefaultMaterializeMaxStates = 1 << 16
)

// Config carries the per-domain modes and thresholds. The zero value
// means fully adaptive with the default thresholds (zero thresholds are
// replaced by the defaults when the decision methods run).
type Config struct {
	FanOut    FanOutMode
	Kernel    KernelMode
	Exactness ExactnessMode

	// ParallelMinItems / ParallelMinCost gate FanOutAuto: parallel needs
	// at least this many items and this much estimated total cost (in
	// product-pair units).
	ParallelMinItems int
	ParallelMinCost  int64
	// DenseMaxStates / DenseMaxEntries gate KernelAuto.
	DenseMaxStates  int
	DenseMaxEntries int64
	// MaterializeMaxStates gates ExactnessAuto.
	MaterializeMaxStates int64
}

// FanOutChoice decides sequential vs parallel for a fan-out of items
// independent work units whose summed estimated cost is totalCost
// product-pair units, on a pool of workers goroutines. The decision is
// monotone in items and totalCost: if parallel is chosen at some size,
// it is chosen at every larger size under the same calibration.
func (c Config) FanOutChoice(workers, items int, totalCost int64) Choice {
	switch c.FanOut {
	case FanOutForceSequential:
		return ChoiceSequential
	case FanOutForceParallel:
		return ChoiceParallel
	}
	if workers <= 1 {
		return ChoiceSequential
	}
	minItems := c.ParallelMinItems
	if minItems <= 0 {
		minItems = DefaultParallelMinItems
	}
	minCost := c.ParallelMinCost
	if minCost <= 0 {
		minCost = DefaultParallelMinCost
	}
	if items < minItems || totalCost < minCost {
		return ChoiceSequential
	}
	return ChoiceParallel
}

// KernelChoice decides sparse vs dense for a DFA kernel over states
// states and an alphabet of alphaLen symbols. An automaton with no
// symbols has no transitions to index, so it stays sparse; the caps
// keep the dense table within cache-friendly bounds (the 2^20-state cap
// is a hard ceiling even when the alphabet is tiny).
func (c Config) KernelChoice(states, alphaLen int) Choice {
	switch c.Kernel {
	case KernelForceSparse:
		return ChoiceSparse
	case KernelForceDense:
		return ChoiceDense
	}
	if states <= 0 || alphaLen <= 0 {
		return ChoiceSparse
	}
	maxStates := c.DenseMaxStates
	if maxStates <= 0 {
		maxStates = DefaultDenseMaxStates
	}
	maxEntries := c.DenseMaxEntries
	if maxEntries <= 0 {
		maxEntries = DefaultDenseMaxEntries
	}
	if states > maxStates || int64(states)*int64(alphaLen) > maxEntries {
		return ChoiceSparse
	}
	return ChoiceDense
}

// ExactnessChoice decides on-the-fly vs materialized complement for the
// Theorem 6 check given a determinized-size bound for the expansion B.
// estStates < 0 means unbounded. This is the threshold policy; the
// adaptive check itself establishes the size by a trial determinization
// capped at EffectiveMaterializeMaxStates (a static estimate costs
// nearly as much as the determinization it predicts), so at runtime
// this method arbitrates forced modes and tests pin its cutover.
func (c Config) ExactnessChoice(estStates int64) Choice {
	switch c.Exactness {
	case ExactnessForceOnTheFly:
		return ChoiceOnTheFly
	case ExactnessForceMaterialized:
		return ChoiceMaterialized
	}
	if estStates < 0 || estStates > int64(c.EffectiveMaterializeMaxStates()) {
		return ChoiceOnTheFly
	}
	return ChoiceMaterialized
}

// EffectiveMaterializeMaxStates is MaterializeMaxStates with the zero
// value resolved to the default. It doubles as the cap of the trial
// materialization the exactness dispatcher runs when the static
// estimate is inconclusive (overflowed or above threshold): the trial
// abandons past this many subsets and the check falls back on the fly.
func (c Config) EffectiveMaterializeMaxStates() int {
	if c.MaterializeMaxStates <= 0 {
		return DefaultMaterializeMaxStates
	}
	if c.MaterializeMaxStates > int64(1)<<31 {
		return 1 << 31
	}
	return int(c.MaterializeMaxStates)
}

type ctxKey struct{}

// With returns a context carrying cfg; From downstream returns it.
func With(ctx context.Context, cfg Config) context.Context {
	return context.WithValue(ctx, ctxKey{}, cfg)
}

// Carried reports whether ctx explicitly carries a Config attached by
// With — i.e. whether From would return a per-request configuration
// rather than fall back to the environment or the adaptive default.
// Engine-level defaults use this to avoid clobbering request overrides.
func Carried(ctx context.Context) bool {
	_, ok := ctx.Value(ctxKey{}).(Config)
	return ok
}

// From returns the strategy configuration for ctx: the one attached by
// With when present, else the REGEXRW_STRATEGY environment override,
// else the zero (fully adaptive) Config.
func From(ctx context.Context) Config {
	if cfg, ok := ctx.Value(ctxKey{}).(Config); ok {
		return cfg
	}
	return FromEnv()
}

// envCache memoizes the parse of REGEXRW_STRATEGY keyed by the raw
// variable value, so From stays allocation-free on the hot path while
// still honoring t.Setenv changes between calls.
type envCache struct {
	raw string
	cfg Config
}

var envCached atomic.Pointer[envCache]

// FromEnv returns the Config described by the REGEXRW_STRATEGY
// environment variable (empty or unset means fully adaptive). Malformed
// clauses are ignored clause by clause: an operator typo must never
// change correctness, only strategy.
func FromEnv() Config {
	raw := os.Getenv("REGEXRW_STRATEGY")
	if raw == "" {
		return Config{}
	}
	if c := envCached.Load(); c != nil && c.raw == raw {
		return c.cfg
	}
	cfg, _ := Parse(raw)
	envCached.Store(&envCache{raw: raw, cfg: cfg})
	return cfg
}

// Parse parses a strategy spec of comma-separated clauses
// domain=value with domains fanout (auto|seq|sequential|par|parallel),
// kernel (auto|sparse|dense) and exactness (auto|fly|on_the_fly|
// materialized). It returns the parsed Config and an error naming the
// first unknown clause; the Config is valid (unknown clauses are
// skipped) even when the error is non-nil.
func Parse(spec string) (Config, error) {
	var cfg Config
	var firstErr error
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("strategy: clause %q is not domain=value", clause)
			}
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		known := true
		switch key {
		case "fanout":
			switch val {
			case "auto":
				cfg.FanOut = FanOutAuto
			case "seq", "sequential":
				cfg.FanOut = FanOutForceSequential
			case "par", "parallel":
				cfg.FanOut = FanOutForceParallel
			default:
				known = false
			}
		case "kernel":
			switch val {
			case "auto":
				cfg.Kernel = KernelAuto
			case "sparse":
				cfg.Kernel = KernelForceSparse
			case "dense":
				cfg.Kernel = KernelForceDense
			default:
				known = false
			}
		case "exactness":
			switch val {
			case "auto":
				cfg.Exactness = ExactnessAuto
			case "fly", "on_the_fly":
				cfg.Exactness = ExactnessForceOnTheFly
			case "materialized":
				cfg.Exactness = ExactnessForceMaterialized
			default:
				known = false
			}
		default:
			known = false
		}
		if !known && firstErr == nil {
			firstErr = fmt.Errorf("strategy: unknown clause %q", clause)
		}
	}
	return cfg, firstErr
}

// counterNames precomputes the strategy.<domain>.<choice> counter names
// for the domains the dispatch sites use, so Record on the hot path
// never concatenates. Unknown domains fall back to concatenation.
var counterNames = func() map[string][ChoiceMaterialized + 1]string {
	m := make(map[string][ChoiceMaterialized + 1]string)
	for _, domain := range []string{"fanout", "kernel", "exactness"} {
		var names [ChoiceMaterialized + 1]string
		for ch := ChoiceSequential; ch <= ChoiceMaterialized; ch++ {
			names[ch] = "strategy." + domain + "." + ch.String()
		}
		m[domain] = names
	}
	return m
}()

// Record makes a committed decision observable: the choice lands as the
// int64 `strategy` attribute on the construction's span (nil-safe when
// tracing is off) and bumps strategy.<domain>.<choice> on the
// process-wide registry and — when the context carries one — the
// per-run registry.
func Record(ctx context.Context, span *obs.Span, domain string, ch Choice) {
	span.SetAttr("strategy", int64(ch))
	var name string
	if names, ok := counterNames[domain]; ok && ch >= ChoiceSequential && ch <= ChoiceMaterialized {
		name = names[ch]
	} else {
		name = "strategy." + domain + "." + ch.String()
	}
	obs.Default.Counter(name).Add(1)
	if reg := obs.MetricsFrom(ctx); reg != nil && reg != obs.Default {
		reg.Counter(name).Add(1)
	}
}
