package strategy

import (
	"context"
	"math/rand"
	"testing"
)

// TestFanOutCutoverMonotone is the metamorphic contract of the cost
// model: if the dispatcher picks parallel for a fan-out of some size,
// it must pick parallel for every larger fan-out under the same
// calibration. A non-monotone cutover would make performance jitter
// with instance size and invalidate the bench guard's interpolation.
func TestFanOutCutoverMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		cfg := Config{
			ParallelMinItems: rng.Intn(8),
			ParallelMinCost:  int64(rng.Intn(4096)),
		}
		workers := 1 + rng.Intn(8)
		items := rng.Intn(64)
		cost := int64(rng.Intn(1 << 14))
		if cfg.FanOutChoice(workers, items, cost) != ChoiceParallel {
			continue
		}
		for step := 0; step < 16; step++ {
			di, dc := rng.Intn(32), int64(rng.Intn(1<<12))
			if got := cfg.FanOutChoice(workers, items+di, cost+dc); got != ChoiceParallel {
				t.Fatalf("cfg=%+v workers=%d: parallel at (items=%d cost=%d) but %v at (items=%d cost=%d)",
					cfg, workers, items, cost, got, items+di, cost+dc)
			}
		}
	}
}

func TestFanOutChoice(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		workers int
		items   int
		cost    int64
		want    Choice
	}{
		{"single worker stays sequential", Config{}, 1, 100, 1 << 20, ChoiceSequential},
		{"zero workers stays sequential", Config{}, 0, 100, 1 << 20, ChoiceSequential},
		{"one item stays sequential", Config{}, 4, 1, 1 << 20, ChoiceSequential},
		{"cheap work stays sequential", Config{}, 4, 100, DefaultParallelMinCost - 1, ChoiceSequential},
		{"at the default cutover", Config{}, 4, 2, DefaultParallelMinCost, ChoiceParallel},
		{"forced sequential wins over size", Config{FanOut: FanOutForceSequential}, 8, 1000, 1 << 30, ChoiceSequential},
		{"forced parallel wins over size", Config{FanOut: FanOutForceParallel}, 1, 1, 0, ChoiceParallel},
		{"custom cost threshold honored", Config{ParallelMinCost: 10}, 4, 2, 10, ChoiceParallel},
		{"custom item threshold honored", Config{ParallelMinItems: 5}, 4, 4, 1 << 20, ChoiceSequential},
	}
	for _, tc := range cases {
		if got := tc.cfg.FanOutChoice(tc.workers, tc.items, tc.cost); got != tc.want {
			t.Errorf("%s: FanOutChoice(%d, %d, %d) = %v, want %v", tc.name, tc.workers, tc.items, tc.cost, got, tc.want)
		}
	}
}

func TestKernelChoiceBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		states   int
		alphaLen int
		want     Choice
	}{
		{"empty alphabet", Config{}, 100, 0, ChoiceSparse},
		{"no states", Config{}, 0, 4, ChoiceSparse},
		{"single state single symbol", Config{}, 1, 1, ChoiceDense},
		{"at the entries cap", Config{}, 1 << 20, 4, ChoiceDense},
		{"one past the entries cap", Config{}, 1<<20 + 1, 4, ChoiceSparse},
		{"at the state cap, tiny alphabet", Config{}, DefaultDenseMaxStates, 1, ChoiceDense},
		{"past the state cap, tiny alphabet", Config{}, DefaultDenseMaxStates + 1, 1, ChoiceSparse},
		{"wide alphabet overflows entries", Config{}, 1 << 12, 1 << 12, ChoiceSparse},
		{"forced dense ignores caps", Config{Kernel: KernelForceDense}, 1 << 30, 1 << 10, ChoiceDense},
		{"forced sparse ignores fit", Config{Kernel: KernelForceSparse}, 2, 2, ChoiceSparse},
		{"custom entries cap", Config{DenseMaxEntries: 8}, 3, 3, ChoiceSparse},
		{"custom state cap", Config{DenseMaxStates: 2}, 3, 1, ChoiceSparse},
	}
	for _, tc := range cases {
		if got := tc.cfg.KernelChoice(tc.states, tc.alphaLen); got != tc.want {
			t.Errorf("%s: KernelChoice(%d, %d) = %v, want %v", tc.name, tc.states, tc.alphaLen, got, tc.want)
		}
	}
}

func TestExactnessChoice(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		est  int64
		want Choice
	}{
		{"small estimate materializes", Config{}, 16, ChoiceMaterialized},
		{"at the cap materializes", Config{}, DefaultMaterializeMaxStates, ChoiceMaterialized},
		{"past the cap goes lazy", Config{}, DefaultMaterializeMaxStates + 1, ChoiceOnTheFly},
		{"overflowed estimate goes lazy", Config{}, -1, ChoiceOnTheFly},
		{"forced fly ignores estimate", Config{Exactness: ExactnessForceOnTheFly}, 1, ChoiceOnTheFly},
		{"forced materialized ignores estimate", Config{Exactness: ExactnessForceMaterialized}, -1, ChoiceMaterialized},
		{"custom cap honored", Config{MaterializeMaxStates: 4}, 5, ChoiceOnTheFly},
	}
	for _, tc := range cases {
		if got := tc.cfg.ExactnessChoice(tc.est); got != tc.want {
			t.Errorf("%s: ExactnessChoice(%d) = %v, want %v", tc.name, tc.est, got, tc.want)
		}
	}
}

func TestParse(t *testing.T) {
	cfg, err := Parse("fanout=seq,kernel=dense,exactness=materialized")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Config{FanOut: FanOutForceSequential, Kernel: KernelForceDense, Exactness: ExactnessForceMaterialized}
	if cfg != want {
		t.Fatalf("Parse = %+v, want %+v", cfg, want)
	}

	cfg, err = Parse(" fanout = parallel , exactness = fly ")
	if err != nil {
		t.Fatalf("Parse with spaces: %v", err)
	}
	if cfg.FanOut != FanOutForceParallel || cfg.Exactness != ExactnessForceOnTheFly {
		t.Fatalf("Parse with spaces = %+v", cfg)
	}

	// Unknown clauses report an error but never poison the known ones.
	cfg, err = Parse("kernel=sparse,frobnicate=yes")
	if err == nil {
		t.Fatal("Parse accepted an unknown domain")
	}
	if cfg.Kernel != KernelForceSparse {
		t.Fatalf("known clause lost on partial error: %+v", cfg)
	}
	if _, err := Parse("kernel"); err == nil {
		t.Fatal("Parse accepted a clause without '='")
	}
	if cfg, err := Parse(""); err != nil || cfg != (Config{}) {
		t.Fatalf("Parse(\"\") = %+v, %v", cfg, err)
	}
}

// TestFromEnv exercises the change-detecting cache: the parse is
// memoized by raw value, so repeated calls are cheap, but a t.Setenv
// between calls must be honored immediately.
func TestFromEnv(t *testing.T) {
	t.Setenv("REGEXRW_STRATEGY", "kernel=dense")
	if cfg := FromEnv(); cfg.Kernel != KernelForceDense {
		t.Fatalf("FromEnv = %+v", cfg)
	}
	t.Setenv("REGEXRW_STRATEGY", "kernel=sparse,fanout=seq")
	if cfg := FromEnv(); cfg.Kernel != KernelForceSparse || cfg.FanOut != FanOutForceSequential {
		t.Fatalf("FromEnv after change = %+v", cfg)
	}
	t.Setenv("REGEXRW_STRATEGY", "")
	if cfg := FromEnv(); cfg != (Config{}) {
		t.Fatalf("FromEnv after unset = %+v", cfg)
	}
}

func TestContextCarrier(t *testing.T) {
	ctx := context.Background()
	if Carried(ctx) {
		t.Fatal("background context reports a carried config")
	}
	want := Config{FanOut: FanOutForceParallel}
	ctx = With(ctx, want)
	if !Carried(ctx) {
		t.Fatal("With did not mark the context as carrying")
	}
	if got := From(ctx); got != want {
		t.Fatalf("From = %+v, want %+v", got, want)
	}
	// The context carrier takes precedence over the environment.
	t.Setenv("REGEXRW_STRATEGY", "fanout=seq")
	if got := From(ctx); got != want {
		t.Fatalf("From ignored the carrier in favor of the env: %+v", got)
	}
	if got := From(context.Background()); got.FanOut != FanOutForceSequential {
		t.Fatalf("From without carrier ignored the env: %+v", got)
	}
}

func TestChoiceString(t *testing.T) {
	for ch, want := range map[Choice]string{
		ChoiceSequential:   "sequential",
		ChoiceParallel:     "parallel",
		ChoiceSparse:       "sparse",
		ChoiceDense:        "dense",
		ChoiceOnTheFly:     "on_the_fly",
		ChoiceMaterialized: "materialized",
		Choice(42):         "choice(42)",
	} {
		if got := ch.String(); got != want {
			t.Errorf("Choice(%d).String() = %q, want %q", int64(ch), got, want)
		}
	}
}
