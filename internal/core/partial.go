package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"regexrw/internal/budget"
	"regexrw/internal/regex"
)

// PartialResult is the outcome of a partial-rewriting search: the
// smallest set of added elementary views that makes the maximal
// rewriting exact, together with that rewriting (Section 4.3, lifted to
// the regular-expression level: the candidate atomic views here are the
// elementary ones, re(x) = x for a symbol x of Σ).
type PartialResult struct {
	// Added lists the names of the elementary views that were added
	// (empty when the original instance already has an exact rewriting).
	Added []string
	// Instance is the extended instance Q_+.
	Instance *Instance
	// Rewriting is the Σ_E-maximal — and exact — rewriting of Q_+.
	Rewriting *Rewriting
}

// elementaryPrefix distinguishes added elementary views from user views
// when a user view already uses the symbol's name.
func elementaryViewName(symbol string, taken map[string]bool) string {
	if !taken[symbol] {
		return symbol
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s_%d", symbol, i)
		if !taken[name] {
			return name
		}
	}
}

// PartialRewriting finds a smallest set of elementary views (one per
// chosen symbol of Σ) whose addition to the instance's views yields an
// exact rewriting, trying subsets in increasing size and, within a
// size, in lexicographic order — the "minimal P'" preference of Section
// 4.3. Adding an elementary view for every symbol of Σ always gives an
// exact rewriting (the identity rewriting becomes available), so the
// search always terminates with a result.
func PartialRewriting(inst *Instance) (*PartialResult, error) {
	return PartialRewritingContext(context.Background(), inst)
}

// PartialRewritingContext is PartialRewriting with cancellation and
// resource governance: the subset search visits up to 2^|Σ| candidate
// extensions, each costing a full rewriting-plus-exactness pipeline, so
// callers can bound it with a context deadline and/or a budget. The
// search ticks the meter (stage "core.partial_search") once per
// candidate; an exhausted budget or cancelled ctx aborts with the
// corresponding error. For a sound best-so-far answer instead of an
// error, use PartialRewritingAnytime.
func PartialRewritingContext(ctx context.Context, inst *Instance) (*PartialResult, error) {
	// Fast path: already exact with no additions.
	r, err := MaximalRewritingContext(ctx, inst)
	if err != nil {
		return nil, err
	}
	exact, _, err := r.IsExactContext(ctx)
	if err != nil {
		return nil, err
	}
	if exact {
		return &PartialResult{Added: nil, Instance: inst, Rewriting: r}, nil
	}
	return partialSearch(ctx, inst)
}

// AnytimePartialResult is the outcome of PartialRewritingAnytime.
// Result is always a sound rewriting of its Instance (contained in
// L(E0) by construction); Exact reports whether the search proved it
// exact before the budget ran out.
type AnytimePartialResult struct {
	Result *PartialResult
	// Exact is true when Result.Rewriting is exact for Result.Instance.
	// When false, the search was stopped early and Result degrades to
	// the original instance's maximal rewriting — still sound, possibly
	// not maximal among the extensions the full search would have tried.
	Exact bool
	// Reason is the budget-exhaustion or cancellation error that stopped
	// the search; nil when Exact is true.
	Reason error
	// Stage names the budget stage that gave out, when Reason wraps a
	// *budget.ExceededError; empty otherwise.
	Stage string
}

// PartialRewritingAnytime is the anytime variant of
// PartialRewritingContext: when the budget or deadline gives out
// mid-search it returns the sound best-so-far result — the original
// instance's maximal rewriting, whose expansion is contained in L(E0)
// by construction — with Exact=false and the stopping reason, instead
// of an error. An error is returned only when even that base rewriting
// cannot be built within the budget, in which case there is no sound
// partial answer to degrade to.
func PartialRewritingAnytime(ctx context.Context, inst *Instance) (*AnytimePartialResult, error) {
	base, err := MaximalRewritingContext(ctx, inst)
	if err != nil {
		return nil, err
	}
	degrade := func(reason error) *AnytimePartialResult {
		out := &AnytimePartialResult{
			Result: &PartialResult{Added: nil, Instance: inst, Rewriting: base},
			Reason: reason,
		}
		var ex *budget.ExceededError
		if errors.As(reason, &ex) {
			out.Stage = ex.Stage
		}
		return out
	}
	exact, _, err := base.IsExactContext(ctx)
	if err != nil {
		return degrade(err), nil
	}
	if exact {
		return &AnytimePartialResult{
			Result: &PartialResult{Added: nil, Instance: inst, Rewriting: base},
			Exact:  true,
		}, nil
	}
	res, err := partialSearch(ctx, inst)
	if err != nil {
		return degrade(err), nil
	}
	return &AnytimePartialResult{Result: res, Exact: true}, nil
}

// partialSearch enumerates non-empty elementary-view extensions by
// increasing size (the caller has already ruled out the empty one) and
// returns the first whose maximal rewriting is exact.
func partialSearch(ctx context.Context, inst *Instance) (*PartialResult, error) {
	meter := budget.Enter(ctx, "core.partial_search")

	symbols := make([]string, 0, inst.sigma.Len())
	for _, s := range inst.sigma.Symbols() {
		symbols = append(symbols, inst.sigma.Name(s))
	}
	sort.Strings(symbols)

	taken := map[string]bool{}
	for _, v := range inst.Views {
		taken[v.Name] = true
	}

	// Enumerate non-empty subsets by increasing size.
	n := len(symbols)
	for size := 1; size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			if err := meter.Check(); err != nil {
				return nil, fmt.Errorf("core: partial rewriting search: %w", err)
			}
			extra := make([]View, size)
			added := make([]string, size)
			for i, j := range idx {
				name := elementaryViewName(symbols[j], taken)
				extra[i] = View{Name: name, Expr: regex.Sym(symbols[j])}
				added[i] = symbols[j]
			}
			ext, err := inst.WithViews(extra...)
			if err != nil {
				return nil, err
			}
			r, err := MaximalRewritingContext(ctx, ext)
			if err != nil {
				return nil, err
			}
			ok, _, err := r.IsExactContext(ctx)
			if err != nil {
				return nil, err
			}
			if ok {
				return &PartialResult{Added: added, Instance: ext, Rewriting: r}, nil
			}
			// Next combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return nil, fmt.Errorf("core: no exact partial rewriting found (unreachable: all-elementary extension is always exact)")
}
