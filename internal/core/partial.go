package core

import (
	"context"
	"fmt"
	"sort"

	"regexrw/internal/regex"
)

// PartialResult is the outcome of a partial-rewriting search: the
// smallest set of added elementary views that makes the maximal
// rewriting exact, together with that rewriting (Section 4.3, lifted to
// the regular-expression level: the candidate atomic views here are the
// elementary ones, re(x) = x for a symbol x of Σ).
type PartialResult struct {
	// Added lists the names of the elementary views that were added
	// (empty when the original instance already has an exact rewriting).
	Added []string
	// Instance is the extended instance Q_+.
	Instance *Instance
	// Rewriting is the Σ_E-maximal — and exact — rewriting of Q_+.
	Rewriting *Rewriting
}

// elementaryPrefix distinguishes added elementary views from user views
// when a user view already uses the symbol's name.
func elementaryViewName(symbol string, taken map[string]bool) string {
	if !taken[symbol] {
		return symbol
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s_%d", symbol, i)
		if !taken[name] {
			return name
		}
	}
}

// PartialRewriting finds a smallest set of elementary views (one per
// chosen symbol of Σ) whose addition to the instance's views yields an
// exact rewriting, trying subsets in increasing size and, within a
// size, in lexicographic order — the "minimal P'" preference of Section
// 4.3. Adding an elementary view for every symbol of Σ always gives an
// exact rewriting (the identity rewriting becomes available), so the
// search always terminates with a result.
func PartialRewriting(inst *Instance) (*PartialResult, error) {
	return PartialRewritingContext(context.Background(), inst)
}

// PartialRewritingContext is PartialRewriting with cancellation: the
// subset search visits up to 2^|Σ| candidate extensions, so callers can
// bound it with a context deadline. Cancellation is checked between
// candidate extensions.
func PartialRewritingContext(ctx context.Context, inst *Instance) (*PartialResult, error) {
	// Fast path: already exact with no additions.
	r := MaximalRewriting(inst)
	if ok, _ := r.IsExact(); ok {
		return &PartialResult{Added: nil, Instance: inst, Rewriting: r}, nil
	}

	symbols := make([]string, 0, inst.sigma.Len())
	for _, s := range inst.sigma.Symbols() {
		symbols = append(symbols, inst.sigma.Name(s))
	}
	sort.Strings(symbols)

	taken := map[string]bool{}
	for _, v := range inst.Views {
		taken[v.Name] = true
	}

	// Enumerate non-empty subsets by increasing size.
	n := len(symbols)
	for size := 1; size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: partial rewriting search: %w", err)
			}
			extra := make([]View, size)
			added := make([]string, size)
			for i, j := range idx {
				name := elementaryViewName(symbols[j], taken)
				extra[i] = View{Name: name, Expr: regex.Sym(symbols[j])}
				added[i] = symbols[j]
			}
			ext, err := inst.WithViews(extra...)
			if err != nil {
				return nil, err
			}
			r := MaximalRewriting(ext)
			if ok, _ := r.IsExact(); ok {
				return &PartialResult{Added: added, Instance: ext, Rewriting: r}, nil
			}
			// Next combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return nil, fmt.Errorf("core: no exact partial rewriting found (unreachable: all-elementary extension is always exact)")
}
