package core

import (
	"testing"

	"regexrw/internal/automata"
)

func TestExplainRejection(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	r := MaximalRewriting(inst)

	// e1·e2 is rejected; its expansions start a·a… which escape L(E0).
	w, ok := r.ExplainRejection("e1", "e2")
	if !ok {
		t.Fatal("expected an escaping expansion for e1·e2")
	}
	if r.Ad.NFA().Accepts(w) {
		t.Fatalf("witness %v should escape L(E0)", automata.FormatWord(r.Sigma(), w))
	}
	if automata.FormatWord(r.Sigma(), w) != "a·a·b" {
		t.Fatalf("witness = %v, want a·a·b (shortest escape)", automata.FormatWord(r.Sigma(), w))
	}

	// e2·e1 is accepted: no escaping expansion exists.
	if _, ok := r.ExplainRejection("e2", "e1"); ok {
		t.Fatal("accepted word should have no escaping expansion")
	}

	// Unknown view names are rejected gracefully.
	if _, ok := r.ExplainRejection("zz"); ok {
		t.Fatal("unknown view should not explain")
	}
}

func TestExplainRejectionVacuous(t *testing.T) {
	// A view with an empty language: words using it are vacuous members
	// of the rewriting, so there is nothing to explain.
	inst := parseInstance(t, "a", map[string]string{"e1": "a", "e2": "∅"})
	r := MaximalRewriting(inst)
	if !r.Accepts("e2") {
		t.Fatal("e2 should be a vacuous member")
	}
	if _, ok := r.ExplainRejection("e2"); ok {
		t.Fatal("vacuous member has no escaping expansion")
	}
}

func TestExplainRejectionConsistentWithAccepts(t *testing.T) {
	inst := parseInstance(t, "a·(b+c)", map[string]string{"q1": "a", "q2": "b", "q3": "c·c"})
	r := MaximalRewriting(inst)
	words := [][]string{
		{}, {"q1"}, {"q2"}, {"q1", "q2"}, {"q1", "q3"}, {"q2", "q1"}, {"q1", "q2", "q3"},
	}
	for _, u := range words {
		_, escapes := r.ExplainRejection(u...)
		if escapes == r.Accepts(u...) {
			t.Fatalf("ExplainRejection and Accepts inconsistent on %v", u)
		}
	}
}
