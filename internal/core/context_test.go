package core

import (
	"context"
	"testing"
)

// TestContextVariantsAgree: the ctx-threaded entry points must return
// the same results as their ctx-free wrappers under a live context.
func TestContextVariantsAgree(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a·(b·a)*", "e2": "c+b·a",
	})
	plain := MaximalRewriting(inst)
	withCtx, err := MaximalRewritingContext(context.Background(), inst)
	if err != nil {
		t.Fatalf("MaximalRewritingContext: %v", err)
	}
	if got, want := withCtx.Regex().String(), plain.Regex().String(); got != want {
		t.Errorf("context variant rewrote to %q, ctx-free to %q", got, want)
	}

	exact, witness := plain.IsExact()
	exactCtx, witnessCtx, err := plain.IsExactContext(context.Background())
	if err != nil {
		t.Fatalf("IsExactContext: %v", err)
	}
	if exact != exactCtx || len(witness) != len(witnessCtx) {
		t.Errorf("IsExactContext (%v, %v) disagrees with IsExact (%v, %v)",
			exactCtx, witnessCtx, exact, witness)
	}
}

// TestContextCancellationAborts: a cancelled context stops the
// exponential constructions with an error instead of running them.
func TestContextCancellationAborts(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{"e1": "a·(b·a)*"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := MaximalRewritingContext(ctx, inst); err == nil {
		t.Error("MaximalRewritingContext ignored a cancelled context")
	}
	if _, err := MaximalRewritingAutomataContext(ctx, inst.Query.ToNFA(inst.Sigma()), inst.SigmaE(), inst.ViewNFAs()); err == nil {
		t.Error("MaximalRewritingAutomataContext ignored a cancelled context")
	}
	rw := MaximalRewriting(inst)
	if _, _, err := rw.IsExactContext(ctx); err == nil {
		t.Error("IsExactContext ignored a cancelled context")
	}
}
