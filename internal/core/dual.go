package core

import (
	"context"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/regex"
)

// Possibility is the possibility rewriting of an instance: the language
//
//	R_poss = { u ∈ Σ_E* : exp(u) ∩ L(E0) ≠ ∅ }
//
// of view words that CAN produce a word of E0 — the natural upper
// envelope for the "minimal containing rewritings" the paper's
// conclusions raise as the dual of the maximal contained rewriting.
// Two facts anchor its role (both are exercised by tests):
//
//   - every minimal containing rewriting is a sublanguage of R_poss
//     (words outside R_poss contribute nothing to the expansion's
//     intersection with L(E0) and can always be dropped);
//   - a containing rewriting (exp(L(R)) ⊇ L(E0)) exists if and only if
//     R_poss itself is containing, decided by IsContaining.
//
// The construction mirrors Section 2 with the acceptance condition
// dualized: on the same transfer automaton as A', a word is accepted
// iff some run ends in an A_d-accepting state — no complementation, so
// the result is only singly exponential.
type Possibility struct {
	Instance *Instance

	// Ad is the deterministic total automaton for L(E0).
	Ad *automata.DFA
	// Transfer is the Σ_E transfer automaton with A_d's accepting set
	// (the existential dual of A').
	Transfer *automata.NFA
	// Auto is the determinized possibility rewriting.
	Auto *automata.DFA

	sigma  *alphabet.Alphabet
	sigmaE *alphabet.Alphabet
	views  map[alphabet.Symbol]*automata.NFA

	expanded *automata.NFA
}

// PossibilityRewriting computes R_poss for the instance.
func PossibilityRewriting(inst *Instance) *Possibility {
	p, _ := PossibilityRewritingContext(context.Background(), inst) // a background context never cancels and carries no budget
	return p
}

// PossibilityRewritingContext is PossibilityRewriting with cooperative
// cancellation and resource governance threaded into the query
// determinization, the transfer fixpoint and the final determinization.
func PossibilityRewritingContext(ctx context.Context, inst *Instance) (*Possibility, error) {
	ad, err := determinizeQueryContext(ctx, inst)
	if err != nil {
		return nil, err
	}
	p, err := possibilityFromDFAContext(ctx, ad, inst.sigma, inst.sigmaE, inst.ViewNFAs())
	if err != nil {
		return nil, err
	}
	p.Instance = inst
	return p, nil
}

// PossibilityRewritingAutomata is PossibilityRewriting with the inputs
// already compiled, the entry point the regular-path-query layer uses
// with grounded automata.
func PossibilityRewritingAutomata(e0 *automata.NFA, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) *Possibility {
	p, _ := PossibilityRewritingAutomataContext(context.Background(), e0, sigmaE, views) // a background context never cancels and carries no budget
	return p
}

// PossibilityRewritingAutomataContext is PossibilityRewritingAutomata
// with cooperative cancellation and budget metering threaded into the
// determinizations, the minimization and the transfer fixpoint.
func PossibilityRewritingAutomataContext(ctx context.Context, e0 *automata.NFA, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) (*Possibility, error) {
	d, err := automata.DeterminizeContext(ctx, e0)
	if err != nil {
		return nil, err
	}
	m, err := d.MinimizeContext(ctx)
	if err != nil {
		return nil, err
	}
	return possibilityFromDFAContext(ctx, m.Totalize(), e0.Alphabet(), sigmaE, views)
}

func possibilityFromDFAContext(ctx context.Context, ad *automata.DFA, sigma, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) (*Possibility, error) {
	tr, err := transferAutomatonContext(ctx, ad, sigmaE, views)
	if err != nil {
		return nil, err
	}
	for s := 0; s < ad.NumStates(); s++ {
		tr.SetAccept(automata.State(s), ad.Accepting(automata.State(s))) // F, not S − F
	}
	auto, err := automata.DeterminizeContext(ctx, tr)
	if err != nil {
		return nil, err
	}
	return &Possibility{
		Ad:       ad,
		Transfer: tr,
		Auto:     auto,
		sigma:    sigma,
		sigmaE:   sigmaE,
		views:    views,
	}, nil
}

// Accepts reports whether the Σ_E-word (by view names) is in R_poss.
func (p *Possibility) Accepts(viewNames ...string) bool {
	return p.Auto.AcceptsNames(viewNames...)
}

// NFA returns R_poss as a trim NFA over Σ_E.
func (p *Possibility) NFA() *automata.NFA {
	return p.Auto.TrimPartial().NFA()
}

// Regex returns R_poss as a simplified regular expression over Σ_E.
func (p *Possibility) Regex() *regex.Node {
	return regex.Simplify(regex.FromDFA(p.Auto.Minimize().TrimPartial()))
}

// IsEmpty reports whether R_poss is empty — no view word can produce
// any word of L(E0).
func (p *Possibility) IsEmpty() bool {
	return p.Auto.TrimPartial().NFA().IsEmpty()
}

// Expand returns an automaton for exp(L(R_poss)) over Σ.
func (p *Possibility) Expand() *automata.NFA {
	if p.expanded != nil {
		return p.expanded
	}
	p.expanded = expandOverViews(p.Auto.TrimPartial(), p.sigma, p.sigmaE, p.views)
	return p.expanded
}

// IsContaining reports whether exp(L(R_poss)) ⊇ L(E0), i.e. whether a
// containing rewriting of E0 wrt the views exists at all. When it does
// not, witness is a shortest word of L(E0) that no composition of view
// languages can produce.
func (p *Possibility) IsContaining() (containing bool, witness []alphabet.Symbol) {
	ok, cex := automata.ContainedIn(p.Ad.NFA(), p.Expand())
	if ok {
		return true, nil
	}
	return false, cex
}

// ExistsContainingRewriting reports whether the instance admits any
// rewriting whose expansion contains L(E0).
func ExistsContainingRewriting(inst *Instance) bool {
	ok, _ := PossibilityRewriting(inst).IsContaining()
	return ok
}

// expandOverViews splices a fresh copy of each view automaton into
// every corresponding edge of base (shared by Rewriting.Expand and
// Possibility.Expand).
func expandOverViews(base *automata.DFA, sigma, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) *automata.NFA {
	out, _ := expandOverViewsContext(context.Background(), base, sigma, sigmaE, views) // a background context never cancels and carries no budget
	return out
}

// expandOverViewsContext is expandOverViews metered against the
// context's budget (stage "core.expand"): the expansion copies one view
// automaton per (state, view-edge) pair of base, so its size is
// |base| + Σ_edges |view| and can dwarf the rewriting itself.
func expandOverViewsContext(ctx context.Context, base *automata.DFA, sigma, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) (*automata.NFA, error) {
	ctx, span := obs.StartSpan(ctx, "core.expand")
	defer span.End()
	meter := budget.Enter(ctx, "core.expand")
	if err := meter.AddStates(base.NumStates()); err != nil {
		return nil, err
	}
	out := automata.NewNFA(sigma)
	out.AddStates(base.NumStates())
	out.SetStart(base.Start())
	for s := 0; s < base.NumStates(); s++ {
		out.SetAccept(automata.State(s), base.Accepting(automata.State(s)))
	}
	for s := 0; s < base.NumStates(); s++ {
		for _, e := range sigmaE.Symbols() {
			t := base.Next(automata.State(s), e)
			if t == automata.NoState {
				continue
			}
			v := views[e]
			if v == nil || v.Start() == automata.NoState {
				continue
			}
			if err := meter.AddStates(v.NumStates()); err != nil {
				return nil, err
			}
			m := automata.CopyInto(out, v)
			out.AddEpsilon(automata.State(s), m[v.Start()])
			for _, f := range v.AcceptingStates() {
				out.SetAccept(m[f], false)
				out.AddEpsilon(m[f], automata.State(t))
			}
		}
	}
	return out, nil
}
