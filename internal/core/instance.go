// Package core implements the paper's central contribution: rewriting a
// regular expression E0 in terms of a set E = {E1,…,Ek} of view regular
// expressions (Calvanese, De Giacomo, Lenzerini, Vardi, PODS 1999,
// Section 2), deciding whether the computed Σ_E-maximal rewriting is
// exact (Section 2, Theorems 2–3), the associated emptiness notions
// (Section 3.2), and partial rewritings that add elementary views
// (Section 4.3, lifted to the regular-expression level).
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/regex"
)

// View is a named view definition: the symbol e ∈ Σ_E together with the
// regular expression re(e) over Σ it stands for.
type View struct {
	Name string
	Expr *regex.Node
}

// Instance is a rewriting problem: the target expression E0 and the
// views E1,…,Ek. Σ is the set of symbols occurring in E0 and the views;
// Σ_E has one symbol per view, named after it.
type Instance struct {
	Query *regex.Node
	Views []View

	sigma  *alphabet.Alphabet // Σ
	sigmaE *alphabet.Alphabet // Σ_E

	// nfas caches the compiled NFA per regex node (the query and, for
	// large top-level unions, its branches). Recompiling the same
	// Instance then hands the determinizer the same NFA object, so the
	// memoized ε-closure/stepper tables built on first use survive
	// across compiles instead of being rebuilt per call. NFAs are safe
	// for concurrent read-only use; a racing build wastes one
	// compilation and converges on the stored object.
	nfas sync.Map // *regex.Node → *automata.NFA

	// viewNFAs caches the ε-free view automata behind ViewNFAs for the
	// same reason; the map itself is copied per call, the NFAs are
	// shared.
	viewNFAs atomic.Pointer[map[alphabet.Symbol]*automata.NFA]
}

// NewInstance builds an instance from parsed expressions. View names
// must be unique and non-empty.
func NewInstance(query *regex.Node, views []View) (*Instance, error) {
	if query == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	seen := map[string]bool{}
	for _, v := range views {
		if v.Name == "" {
			return nil, fmt.Errorf("core: view with empty name")
		}
		if v.Expr == nil {
			return nil, fmt.Errorf("core: view %s has nil expression", v.Name)
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("core: duplicate view name %s", v.Name)
		}
		seen[v.Name] = true
	}
	inst := &Instance{Query: query, Views: views}
	inst.sigma = alphabet.New()
	for _, name := range query.SymbolNames() {
		inst.sigma.Intern(name)
	}
	for _, v := range views {
		for _, name := range v.Expr.SymbolNames() {
			inst.sigma.Intern(name)
		}
	}
	inst.sigmaE = alphabet.New()
	for _, v := range views {
		inst.sigmaE.Intern(v.Name)
	}
	return inst, nil
}

// ParseInstance builds an instance from concrete syntax. Views are given
// as name → expression and ordered by name for determinism.
func ParseInstance(query string, views map[string]string) (*Instance, error) {
	q, err := regex.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("core: query: %w", err)
	}
	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	sort.Strings(names)
	vs := make([]View, 0, len(names))
	for _, name := range names {
		expr, err := regex.Parse(views[name])
		if err != nil {
			return nil, fmt.Errorf("core: view %s: %w", name, err)
		}
		vs = append(vs, View{Name: name, Expr: expr})
	}
	return NewInstance(q, vs)
}

// Sigma returns Σ, the base alphabet of the instance.
func (in *Instance) Sigma() *alphabet.Alphabet { return in.sigma }

// SigmaE returns Σ_E, the view alphabet of the instance.
func (in *Instance) SigmaE() *alphabet.Alphabet { return in.sigmaE }

// ViewExpr returns the expression of the named view, or nil.
func (in *Instance) ViewExpr(name string) *regex.Node {
	for _, v := range in.Views {
		if v.Name == name {
			return v.Expr
		}
	}
	return nil
}

// ViewNFAs compiles every view to an ε-free NFA over Σ, keyed by its
// Σ_E symbol. The NFAs are compiled once per Instance and shared by
// every call (they are safe for concurrent read-only use, and every
// consumer treats them as immutable); the map itself is a fresh copy,
// so callers may normalize or extend it without aliasing each other.
func (in *Instance) ViewNFAs() map[alphabet.Symbol]*automata.NFA {
	cached := in.viewNFAs.Load()
	if cached == nil {
		m := make(map[alphabet.Symbol]*automata.NFA, len(in.Views))
		for _, v := range in.Views {
			m[in.sigmaE.Lookup(v.Name)] = v.Expr.ToNFA(in.sigma).RemoveEpsilon()
		}
		in.viewNFAs.CompareAndSwap(nil, &m) // a racing build converges on one map
		cached = in.viewNFAs.Load()
	}
	out := make(map[alphabet.Symbol]*automata.NFA, len(*cached))
	for e, v := range *cached { //mapiter:unordered shallow copy of a map; no ordering is observable
		out[e] = v
	}
	return out
}

// QueryNFA returns the compiled NFA of the query over Σ, cached on the
// Instance so repeated compiles reuse its memo tables. Callers must
// treat the NFA as read-only.
func (in *Instance) QueryNFA() *automata.NFA {
	return in.nodeNFA(in.Query)
}

// nodeNFA returns the cached NFA for a node of the query expression,
// building it on first use.
func (in *Instance) nodeNFA(q *regex.Node) *automata.NFA {
	if n, ok := in.nfas.Load(q); ok {
		return n.(*automata.NFA)
	}
	n, _ := in.nfas.LoadOrStore(q, q.ToNFA(in.sigma))
	return n.(*automata.NFA)
}

// WithViews returns a new instance with the given views appended
// (names must not clash with existing ones).
func (in *Instance) WithViews(extra ...View) (*Instance, error) {
	views := make([]View, 0, len(in.Views)+len(extra))
	views = append(views, in.Views...)
	views = append(views, extra...)
	return NewInstance(in.Query, views)
}

// String summarizes the instance.
func (in *Instance) String() string {
	s := fmt.Sprintf("E0 = %s", in.Query)
	for _, v := range in.Views {
		s += fmt.Sprintf("; re(%s) = %s", v.Name, v.Expr)
	}
	return s
}
