package core

import (
	"fmt"

	"regexrw/internal/automata"
	"regexrw/internal/debug"
)

// Validate checks the structural invariants the three-step construction
// of Section 2 guarantees for a Rewriting, returning the first
// violation found or nil:
//
//   - A_d, A' and R are present and individually well-formed
//     (automata.Validate);
//   - A_d is a TOTAL DFA over Σ — Step 2 needs ρ*(s_i, w) to exist for
//     every word w, so rejection must be a dead state, never a missing
//     transition;
//   - A' has exactly A_d's states, is over Σ_E, and accepts exactly
//     A_d's non-accepting states (the S − F acceptance flip of Step 2);
//   - R is a total DFA over Σ_E (Step 3 complements a determinization,
//     which is total by construction);
//   - every materialized view automaton is a well-formed ε-free NFA
//     over Σ (views supplied lazily are not forced).
//
// Validate is linear in the sizes of the stored automata; the
// regexrwdebug build tag additionally runs it after every construction
// entry point in this package (see internal/debug).
func (r *Rewriting) Validate() error {
	if r.Ad == nil || r.APrime == nil || r.Auto == nil {
		return fmt.Errorf("core: Rewriting is missing a construction automaton (Ad=%v APrime=%v Auto=%v)",
			r.Ad != nil, r.APrime != nil, r.Auto != nil)
	}
	if err := r.Ad.Validate(); err != nil {
		return fmt.Errorf("core: A_d: %w", err)
	}
	if err := r.APrime.Validate(); err != nil {
		return fmt.Errorf("core: A': %w", err)
	}
	if err := r.Auto.Validate(); err != nil {
		return fmt.Errorf("core: R: %w", err)
	}
	if r.sigma == nil || r.sigmaE == nil {
		return fmt.Errorf("core: Rewriting is missing an alphabet (sigma=%v sigmaE=%v)",
			r.sigma != nil, r.sigmaE != nil)
	}
	if !r.Ad.Alphabet().Equal(r.sigma) {
		return fmt.Errorf("core: A_d alphabet differs from Σ")
	}
	if !r.Ad.IsTotal() {
		return fmt.Errorf("core: A_d is not total (Step 2 requires ρ*(s_i, w) to exist for every w)")
	}
	if !r.APrime.Alphabet().Equal(r.sigmaE) {
		return fmt.Errorf("core: A' alphabet differs from Σ_E")
	}
	if r.APrime.NumStates() != r.Ad.NumStates() {
		return fmt.Errorf("core: A' has %d states, A_d has %d — Step 2 reuses A_d's states exactly",
			r.APrime.NumStates(), r.Ad.NumStates())
	}
	for s := 0; s < r.Ad.NumStates(); s++ {
		if r.APrime.Accepting(automata.State(s)) == r.Ad.Accepting(automata.State(s)) {
			return fmt.Errorf("core: A' acceptance at state %d is not flipped from A_d (Step 2 sets S − F)", s)
		}
	}
	if !r.Auto.Alphabet().Equal(r.sigmaE) {
		return fmt.Errorf("core: R alphabet differs from Σ_E")
	}
	if !r.Auto.IsTotal() {
		return fmt.Errorf("core: R is not total (Step 3 complements a total determinization)")
	}
	for e, v := range r.views { //mapiter:unordered error detection only; no output ordering
		if v == nil {
			continue
		}
		if err := v.Validate(); err != nil {
			return fmt.Errorf("core: view %s: %w", r.sigmaE.Name(e), err)
		}
		if v.HasEpsilon() {
			return fmt.Errorf("core: view %s has ε-transitions (views are normalized to ε-free form)", r.sigmaE.Name(e))
		}
		if !v.Alphabet().Equal(r.sigma) {
			return fmt.Errorf("core: view %s alphabet differs from Σ", r.sigmaE.Name(e))
		}
	}
	return nil
}

// debugValidateRewriting runs Validate on r when the regexrwdebug build
// tag is set and panics on a violation. Construction entry points in
// this package call it on every Rewriting they return; without the tag
// the call compiles away (debug.Enabled is a false constant).
func debugValidateRewriting(r *Rewriting) {
	if debug.Enabled {
		if r == nil {
			return // constructors that failed return nil alongside an error
		}
		if err := r.Validate(); err != nil {
			panic(fmt.Sprintf("core: invariant violation: %v", err))
		}
	}
}
