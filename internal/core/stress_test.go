package core

import (
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// Stress sweeps: larger randomized volumes of the invariants the
// focused tests establish. Skipped under -short.

func TestStressCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(3001))
	exprs := []string{
		"a·(b·a+c)*", "(a+b)*·c·(a+b)*", "a·b·c·d?", "(a·b+c·d)*",
		"a*·b*·c*", "a·(b+c·(a+b))*", "((a+b)·c)*+d",
	}
	viewPool := []string{
		"a", "b", "c", "d", "a·b", "b·c", "c·d", "a·c*·b", "a*", "b?",
		"a+b", "c·c", "(a·b)*", "d·c", "a·b·c",
	}
	for trial := 0; trial < 150; trial++ {
		views := map[string]string{}
		k := 1 + r.Intn(4)
		for i := 0; i < k; i++ {
			views[string(rune('p'+i))] = viewPool[r.Intn(len(viewPool))]
		}
		inst := parseInstance(t, exprs[r.Intn(len(exprs))], views)
		rw := MaximalRewriting(inst)
		if err := rw.Validate(); err != nil {
			t.Fatalf("trial %d: rewriting violates construction invariants: %v", trial, err)
		}
		e0 := inst.Query.ToNFA(inst.Sigma())
		viewNFAs := rw.Views()
		for i := 0; i < 20; i++ {
			u := make([]alphabet.Symbol, r.Intn(5))
			for j := range u {
				u[j] = alphabet.Symbol(r.Intn(inst.SigmaE().Len()))
			}
			expansion := automata.EpsilonLanguage(inst.Sigma())
			for _, e := range u {
				expansion = automata.Concat(expansion, viewNFAs[e])
			}
			contained, _ := automata.ContainedIn(expansion, e0)
			if contained != rw.Auto.Accepts(u) {
				t.Fatalf("trial %d: characterization fails on %v over %s",
					trial, automata.FormatWord(inst.SigmaE(), u), inst)
			}
		}
	}
}

func TestStressExactnessChecksAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(3002))
	for trial := 0; trial < 120; trial++ {
		inst := randomSmallInstance(t, r)
		rw := MaximalRewriting(inst)
		if err := rw.Validate(); err != nil {
			t.Fatalf("trial %d: rewriting violates construction invariants: %v", trial, err)
		}
		onTheFly, _ := rw.IsExact()
		if onTheFly != rw.IsExactMaterialized() {
			t.Fatalf("trial %d: exactness checks disagree on %s", trial, inst)
		}
	}
}

func TestStressEmptinessConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(3003))
	for trial := 0; trial < 150; trial++ {
		inst := randomSmallInstance(t, r)
		rw := MaximalRewriting(inst)
		if err := rw.Validate(); err != nil {
			t.Fatalf("trial %d: rewriting violates construction invariants: %v", trial, err)
		}
		sigmaEEmpty := rw.IsEmpty()
		sigmaEmpty := rw.IsSigmaEmpty()
		if sigmaEEmpty && !sigmaEmpty {
			t.Fatalf("trial %d: Σ_E-empty but not Σ-empty on %s", trial, inst)
		}
		// ShortestWord consistency: exists iff not Σ-empty.
		_, ok := rw.ShortestWord()
		if ok == sigmaEmpty {
			t.Fatalf("trial %d: ShortestWord=%v but IsSigmaEmpty=%v", trial, ok, sigmaEmpty)
		}
		// HasNonemptyRewriting must mirror Σ-nonemptiness of the maximal
		// rewriting (it recomputes internally).
		if HasNonemptyRewriting(inst) == sigmaEmpty {
			t.Fatalf("trial %d: HasNonemptyRewriting inconsistent", trial)
		}
	}
}

func TestStressPossibilityEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(3004))
	for trial := 0; trial < 100; trial++ {
		inst := randomSmallInstance(t, r)
		max := MaximalRewriting(inst)
		poss := PossibilityRewriting(inst)
		// Any maximal-rewriting word with nonempty expansion is possible.
		ok, cex := automata.ContainedIn(max.NFA(), poss.NFA())
		if ok {
			continue
		}
		expansion := automata.EpsilonLanguage(inst.Sigma())
		for _, e := range cex {
			expansion = automata.Concat(expansion, max.Views()[e])
		}
		if !expansion.IsEmpty() {
			t.Fatalf("trial %d: %v in contained rewriting, nonempty expansion, not possible (%s)",
				trial, automata.FormatWord(inst.SigmaE(), cex), inst)
		}
	}
}
