package core

import (
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/regex"
)

func TestPossibilityBasic(t *testing.T) {
	// E0 = a·(b+c), views a, b: possibility rewriting is q1·q2 — the
	// only composable words of E0 use a then b.
	inst := parseInstance(t, "a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	p := PossibilityRewriting(inst)
	if !regex.Equivalent(p.Regex(), regex.MustParse("q1·q2")) {
		t.Fatalf("possibility rewriting = %s, want ≡ q1·q2", p.Regex())
	}
	// No containing rewriting exists: a·c is not composable.
	containing, witness := p.IsContaining()
	if containing {
		t.Fatal("no containing rewriting should exist")
	}
	if automata.FormatWord(inst.Sigma(), witness) != "a·c" {
		t.Fatalf("witness = %v, want a·c", automata.FormatWord(inst.Sigma(), witness))
	}
	if ExistsContainingRewriting(inst) {
		t.Fatal("ExistsContainingRewriting should be false")
	}
}

func TestPossibilityLargerThanMaximal(t *testing.T) {
	// E0 = a·b, views e1 = a+c, e2 = b. exp(e1·e2) = {ab, cb} ⊄ L(E0)
	// but intersects it: e1·e2 is possible yet not in the maximal
	// contained rewriting.
	inst := parseInstance(t, "a·b", map[string]string{"e1": "a+c", "e2": "b"})
	p := PossibilityRewriting(inst)
	r := MaximalRewriting(inst)
	if !p.Accepts("e1", "e2") {
		t.Fatal("e1·e2 should be possible")
	}
	if r.Accepts("e1", "e2") {
		t.Fatal("e1·e2 must not be in the contained rewriting")
	}
	// And the possibility rewriting IS containing here: every word of
	// L(E0) = {ab} is an expansion of e1·e2.
	containing, _ := p.IsContaining()
	if !containing {
		t.Fatal("possibility rewriting should be containing")
	}
	if !ExistsContainingRewriting(inst) {
		t.Fatal("ExistsContainingRewriting should be true")
	}
}

func TestPossibilityExactInstance(t *testing.T) {
	// On Example 2 the rewriting is exact, so possibility and maximal
	// rewritings need not coincide — any word whose expansion MEETS
	// L(E0) is possible. e1 alone: exp = {a} ⊆ L(E0): both. e2 alone:
	// exp = a·c*·b, disjoint from L(E0) (words end in b but E0's words
	// end in a or c after initial a... a·c*·b ∉ a·(ba+c)*): not possible.
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	p := PossibilityRewriting(inst)
	if !p.Accepts("e1") {
		t.Fatal("e1 should be possible")
	}
	if p.Accepts("e2") {
		t.Fatal("e2 alone should be impossible")
	}
	if !p.Accepts("e2", "e1") {
		t.Fatal("e2·e1 should be possible")
	}
	containing, _ := p.IsContaining()
	if !containing {
		t.Fatal("exact instance must admit a containing rewriting")
	}
}

func TestPossibilityEmpty(t *testing.T) {
	inst := parseInstance(t, "a", map[string]string{"e": "b"})
	p := PossibilityRewriting(inst)
	if !p.IsEmpty() {
		t.Fatalf("possibility rewriting should be empty, got %s", p.Regex())
	}
	containing, _ := p.IsContaining()
	if containing {
		t.Fatal("empty possibility rewriting cannot be containing")
	}
}

func TestPossibilityEpsilon(t *testing.T) {
	// ε ∈ L(E0) ⇒ ε ∈ R_poss (exp(ε) = {ε} meets L(E0)).
	inst := parseInstance(t, "a*", map[string]string{"e": "a"})
	p := PossibilityRewriting(inst)
	if !p.Accepts() {
		t.Fatal("ε should be possible when ε ∈ L(E0)")
	}
	inst2 := parseInstance(t, "a·a*", map[string]string{"e": "a"})
	p2 := PossibilityRewriting(inst2)
	if p2.Accepts() {
		t.Fatal("ε should be impossible when ε ∉ L(E0)")
	}
}

// TestPossibilityCharacterization mirrors the THM2 test for the dual
// construction: u ∈ R_poss ⇔ exp(u) ∩ L(E0) ≠ ∅, both sides computed
// independently.
func TestPossibilityCharacterization(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	exprs := []string{"a·(b·a+c)*", "a*", "(a+b)*", "a·b·c", "a·(b+c)", "a+b·a*"}
	viewPool := []string{"a", "b", "c", "a·b", "b·a", "a·c*·b", "c", "a*", "a+c"}
	for trial := 0; trial < 30; trial++ {
		query := exprs[r.Intn(len(exprs))]
		views := map[string]string{}
		k := 1 + r.Intn(3)
		for i := 0; i < k; i++ {
			views[string(rune('p'+i))] = viewPool[r.Intn(len(viewPool))]
		}
		inst := parseInstance(t, query, views)
		p := PossibilityRewriting(inst)
		e0 := inst.Query.ToNFA(inst.Sigma())
		viewNFAs := p.views
		for i := 0; i < 20; i++ {
			u := make([]alphabet.Symbol, r.Intn(4))
			for j := range u {
				u[j] = alphabet.Symbol(r.Intn(inst.SigmaE().Len()))
			}
			expansion := automata.EpsilonLanguage(inst.Sigma())
			for _, e := range u {
				expansion = automata.Concat(expansion, viewNFAs[e])
			}
			meets := !automata.Intersect(expansion, e0).IsEmpty()
			if meets != p.Auto.Accepts(u) {
				t.Fatalf("trial %d: u=%v meets=%v possible=%v (instance %s)",
					trial, automata.FormatWord(inst.SigmaE(), u), meets, p.Auto.Accepts(u), inst)
			}
		}
	}
}

// TestMaximalInsidePossibility: every word of the maximal contained
// rewriting with a nonempty expansion is possible.
func TestMaximalInsidePossibility(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	viewPool := []string{"a", "b", "a·b", "c", "a*", "b+c"}
	for trial := 0; trial < 25; trial++ {
		views := map[string]string{
			"p": viewPool[r.Intn(len(viewPool))],
			"q": viewPool[r.Intn(len(viewPool))],
		}
		inst := parseInstance(t, "(a+b)*·c?", views)
		max := MaximalRewriting(inst)
		poss := PossibilityRewriting(inst)
		// Restrict the maximal rewriting to nonempty-language views (its
		// Σ-empty words are vacuous and may be impossible).
		restricted := automata.Intersect(max.NFA(), poss.NFA())
		// L(max restricted) ⊆ L(poss) trivially; the meaningful check:
		// max's nonvacuous words are all possible.
		maxNFA := max.NFA()
		ok, cex := automata.ContainedIn(maxNFA, poss.NFA())
		if !ok {
			// The counterexample must have an empty expansion.
			expansion := automata.EpsilonLanguage(inst.Sigma())
			for _, e := range cex {
				expansion = automata.Concat(expansion, poss.views[e])
			}
			if !expansion.IsEmpty() {
				t.Fatalf("trial %d: word %v in maximal, nonempty expansion, but impossible",
					trial, automata.FormatWord(inst.SigmaE(), cex))
			}
		}
		_ = restricted
	}
}

func TestPossibilityNFAAndTrim(t *testing.T) {
	inst := parseInstance(t, "a·b", map[string]string{"e1": "a", "e2": "b"})
	p := PossibilityRewriting(inst)
	nfa := p.NFA()
	if !nfa.AcceptsNames("e1", "e2") {
		t.Fatal("e1·e2 should be possible")
	}
	if nfa.AcceptsNames("e1") {
		t.Fatal("e1 alone expands to {a}, disjoint from L(a·b)")
	}
	if nfa.AcceptsNames("e2", "e1") {
		t.Fatal("e2·e1 expands to b·a, disjoint from a·b")
	}
}
