package core

import (
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/language"
)

// These tests validate the automata-theoretic constructions against
// brute-force word-level computation (bounded enumeration through
// internal/language), on randomized instances. They are the repo's
// strongest correctness evidence: the two sides share no machinery
// beyond the NFA data structure.

// randomSmallInstance makes instances small enough for exhaustive
// word-level checking.
func randomSmallInstance(t *testing.T, r *rand.Rand) *Instance {
	t.Helper()
	queries := []string{
		"a·(b·a+c)*", "a·b·c", "(a+b)*", "a·(b+c)", "a*·b", "a?·(b·c)*",
		"a+b+c", "(a·b)*+c", "a·a+b·b",
	}
	viewPool := []string{"a", "b", "c", "a·b", "b·c", "a·c*·b", "a*", "b?", "a+b", "c·c"}
	views := map[string]string{}
	k := 1 + r.Intn(3)
	for i := 0; i < k; i++ {
		views[string(rune('p'+i))] = viewPool[r.Intn(len(viewPool))]
	}
	return parseInstance(t, queries[r.Intn(len(queries))], views)
}

// TestCrossValidateSoundness: every word of the computed rewriting
// expands inside L(E0), checked word-by-word via enumeration.
func TestCrossValidateSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(2001))
	for trial := 0; trial < 25; trial++ {
		inst := randomSmallInstance(t, r)
		rw := MaximalRewriting(inst)
		e0 := inst.Query.ToNFA(inst.Sigma())
		words := language.Enumerate(rw.NFA(), 3, 50)
		for _, u := range words {
			exp := language.ExpandWords(u, rw.Views(), inst.Sigma(), 4, 200)
			for _, w := range exp.Words() {
				if !e0.Accepts(w) {
					t.Fatalf("trial %d (%s): rewriting word %v expands to %v ∉ L(E0)",
						trial, inst,
						automata.FormatWord(inst.SigmaE(), u),
						automata.FormatWord(inst.Sigma(), w))
				}
			}
		}
	}
}

// TestCrossValidateExactness: IsExact agrees with brute-force language
// comparison of exp(L(R)) and L(E0) up to a word-length bound. (A
// non-exact rewriting always has a witness; the witness found by
// IsExact is shortest, so checking up to max(bound, |witness|) keeps
// the two sides comparable.)
func TestCrossValidateExactness(t *testing.T) {
	r := rand.New(rand.NewSource(2002))
	const bound = 6
	for trial := 0; trial < 25; trial++ {
		inst := randomSmallInstance(t, r)
		rw := MaximalRewriting(inst)
		exact, witness := rw.IsExact()

		e0 := inst.Query.ToNFA(inst.Sigma())
		expansion := rw.Expand()

		// Brute force: every word of L(E0) up to the bound must be in
		// exp(L(R)) iff the rewriting is exact; the first missing word
		// must match the automata-found witness in length.
		missing := -1
		for _, w := range language.Enumerate(e0, bound, 0) {
			if !expansion.Accepts(w) {
				missing = len(w)
				break
			}
		}
		if exact && missing >= 0 {
			t.Fatalf("trial %d (%s): IsExact=true but word of length %d missing", trial, inst, missing)
		}
		if !exact && len(witness) <= bound {
			if missing == -1 {
				t.Fatalf("trial %d (%s): IsExact=false with witness %v but brute force found none",
					trial, inst, automata.FormatWord(inst.Sigma(), witness))
			}
			if missing != len(witness) {
				t.Fatalf("trial %d: shortest missing word length %d vs witness length %d",
					trial, missing, len(witness))
			}
		}
	}
}

// TestCrossValidatePossibility: the possibility rewriting agrees with
// word-level expansion intersection.
func TestCrossValidatePossibility(t *testing.T) {
	r := rand.New(rand.NewSource(2003))
	for trial := 0; trial < 20; trial++ {
		inst := randomSmallInstance(t, r)
		p := PossibilityRewriting(inst)
		e0 := inst.Query.ToNFA(inst.Sigma())
		// For every Σ_E-word up to length 3 (not just those in R_poss):
		// membership ⇔ bounded expansion meets L(E0). The bound is safe
		// for view words up to 4 symbols and expansions up to 12.
		var all func(u []int)
		check := func(u language.Word) {
			exp := language.ExpandWords(u, p.views, inst.Sigma(), 4, 200)
			meets := false
			for _, w := range exp.Words() {
				if e0.Accepts(w) {
					meets = true
					break
				}
			}
			inPoss := p.Auto.Accepts(u)
			// Bounded enumeration can under-approximate "meets" (long view
			// words are cut off), so only the meets ⇒ inPoss direction is
			// sound to assert unconditionally.
			if meets && !inPoss {
				t.Fatalf("trial %d (%s): word %v meets L(E0) but not possible",
					trial, inst, automata.FormatWord(inst.SigmaE(), u))
			}
		}
		all = func(u []int) {
			w := make(language.Word, len(u))
			for i, v := range u {
				w[i] = alphabet.Symbol(v)
			}
			check(w)
			if len(u) == 3 {
				return
			}
			for s := 0; s < inst.SigmaE().Len(); s++ {
				all(append(u, s))
			}
		}
		all(nil)
	}
}
