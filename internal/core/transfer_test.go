package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/regex"
)

// testMeter returns an unlimited meter for direct calls into the
// metered transfer fixpoint.
func testMeter() *budget.Meter { return budget.Enter(context.Background(), "test") }

// detBlowup builds (a+b)*·a·(a+b)^{n-1} with elementary views — the
// det-blowup family, rebuilt locally to avoid importing workload (which
// imports core).
func detBlowup(n int) *Instance {
	anyAB := regex.Union(regex.Sym("a"), regex.Sym("b"))
	parts := []*regex.Node{regex.Star(anyAB), regex.Sym("a")}
	for i := 1; i < n; i++ {
		parts = append(parts, anyAB)
	}
	inst, err := NewInstance(regex.Concat(parts...), []View{
		{Name: "va", Expr: regex.Sym("a")},
		{Name: "vb", Expr: regex.Sym("b")},
	})
	if err != nil {
		panic(err)
	}
	return inst
}

// TestTransferTargetsAgreesWithPerOriginBFS: the bitset
// origin-propagation algorithm must compute exactly the same transfer
// relation as one BFS per origin (reachTargets), on random views and
// random deterministic automata.
func TestTransferTargetsAgreesWithPerOriginBFS(t *testing.T) {
	r := rand.New(rand.NewSource(4001))
	viewExprs := []string{"a", "a·b", "a·c*·b", "a*", "(a+b)·c?", "b+c", "a·(b+c)*"}
	queryExprs := []string{"a·(b·a+c)*", "(a+b)*·c", "a·b·c·a·b", "(a·b+c)*"}
	for trial := 0; trial < 40; trial++ {
		inst := parseInstance(t, queryExprs[r.Intn(len(queryExprs))], map[string]string{
			"v": viewExprs[r.Intn(len(viewExprs))],
		})
		ad := determinizeQuery(inst)
		view := inst.ViewNFAs()[inst.SigmaE().Lookup("v")]

		fast, err := transferTargets(testMeter(), view, ad)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ad.NumStates(); i++ {
			slow := reachTargets(view, ad, automata.State(i))
			if !sameStateSet(fast[i], slow) {
				t.Fatalf("trial %d: transfer differs at state %d: fast=%v slow=%v (view %s)",
					trial, i, fast[i], slow, inst.ViewExpr("v"))
			}
		}
	}
}

func sameStateSet(a, b []automata.State) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]automata.State(nil), a...)
	bs := append([]automata.State(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestTransferTargetsEmptyView(t *testing.T) {
	inst := parseInstance(t, "a·b", map[string]string{"v": "∅"})
	ad := determinizeQuery(inst)
	view := inst.ViewNFAs()[inst.SigmaE().Lookup("v")]
	targets, err := transferTargets(testMeter(), view, ad)
	if err != nil {
		t.Fatal(err)
	}
	for i, targets := range targets {
		if len(targets) != 0 {
			t.Fatalf("empty view produced targets at state %d", i)
		}
	}
}

func TestTransferTargetsEpsilonView(t *testing.T) {
	// re(v) = a?: every state transfers to itself (ε) and along a.
	inst := parseInstance(t, "a·a", map[string]string{"v": "a?"})
	ad := determinizeQuery(inst)
	view := inst.ViewNFAs()[inst.SigmaE().Lookup("v")]
	targets, err := transferTargets(testMeter(), view, ad)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ad.NumStates(); i++ {
		self := false
		for _, j := range targets[i] {
			if j == automata.State(i) {
				self = true
			}
		}
		if !self {
			t.Fatalf("ε ∈ L(view) must give a self transfer at state %d", i)
		}
	}
}

// BenchmarkTransferAlgorithms compares the bitset origin-propagation
// against per-origin BFS as A_d grows (det-blowup family: 2^n states).
func BenchmarkTransferAlgorithms(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		inst := detBlowup(n)
		ext, err := inst.WithViews(View{Name: "vstar", Expr: regex.MustParse("(a+b)*·a")})
		if err != nil {
			b.Fatal(err)
		}
		ad := determinizeQuery(ext)
		view := ext.ViewNFAs()[ext.SigmaE().Lookup("vstar")]
		b.Run(fmt.Sprintf("bitset/n=%d", n), func(b *testing.B) {
			m := testMeter()
			for i := 0; i < b.N; i++ {
				if _, err := transferTargets(m, view, ad); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("perOriginBFS/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for s := 0; s < ad.NumStates(); s++ {
					reachTargets(view, ad, automata.State(s))
				}
			}
		})
	}
}
