package core

import (
	"errors"
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/language"
	"regexrw/internal/regex"
)

func parseInstance(t *testing.T, query string, views map[string]string) *Instance {
	t.Helper()
	inst, err := ParseInstance(query, views)
	if err != nil {
		t.Fatalf("ParseInstance: %v", err)
	}
	return inst
}

// TestExample1 reproduces Example 1 of the paper: E0 = a*, E = {a*}.
// The Σ_E-maximal rewriting is e* (e alone is Σ-maximal but not
// Σ_E-maximal).
func TestExample1(t *testing.T) {
	inst := parseInstance(t, "a*", map[string]string{"e": "a*"})
	r := MaximalRewriting(inst)
	want := regex.MustParse("e*")
	if !regex.Equivalent(r.Regex(), want) {
		t.Fatalf("rewriting = %s, want ≡ e*", r.Regex())
	}
	// e alone is a rewriting but strictly smaller over Σ_E.
	if !r.Accepts("e") || !r.Accepts("e", "e") || !r.Accepts() {
		t.Fatal("Σ_E-maximal rewriting must contain e, ee and ε")
	}
	if ok, _ := r.IsExact(); !ok {
		t.Fatal("rewriting of a* wrt {a*} should be exact")
	}
}

// TestExample2 reproduces Example 2: E0 = a·(b·a+c)*,
// re(e1) = a, re(e2) = a·c*·b, re(e3) = c. The maximal rewriting is
// e2*·e1·e3*, which is exact.
func TestExample2(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	r := MaximalRewriting(inst)
	want := regex.MustParse("e2*·e1·e3*")
	if !regex.Equivalent(r.Regex(), want) {
		t.Fatalf("rewriting = %s, want ≡ e2*·e1·e3*", r.Regex())
	}
	exact, witness := r.IsExact()
	if !exact {
		t.Fatalf("rewriting should be exact, witness %v",
			automata.FormatWord(inst.Sigma(), witness))
	}
	if !r.IsExactMaterialized() {
		t.Fatal("materialized exactness check disagrees")
	}
}

// TestExample2Continued reproduces the continuation of Example 2: with
// E = {a, a·c*·b} (no view for c) the maximal rewriting is e2*·e1,
// which is not exact.
func TestExample2Continued(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b",
	})
	r := MaximalRewriting(inst)
	want := regex.MustParse("e2*·e1")
	if !regex.Equivalent(r.Regex(), want) {
		t.Fatalf("rewriting = %s, want ≡ e2*·e1", r.Regex())
	}
	exact, witness := r.IsExact()
	if exact {
		t.Fatal("rewriting without view c must not be exact")
	}
	// The witness must be a Σ-word in L(E0) \ exp(L(R)).
	if !inst.Query.ToNFA(inst.Sigma()).Accepts(witness) {
		t.Fatalf("witness %v not in L(E0)", automata.FormatWord(inst.Sigma(), witness))
	}
	if r.Expand().Accepts(witness) {
		t.Fatalf("witness %v is in exp(L(R))", automata.FormatWord(inst.Sigma(), witness))
	}
	if r.IsExactMaterialized() {
		t.Fatal("materialized exactness check disagrees")
	}
}

// TestFigure1 checks the structure of the automata in Figure 1 for
// Example 2. One deliberate difference from the drawing: the paper's
// A_d has three live states s0, s1, s2, but s0 and s2 are equivalent
// (both move to s1 on a and die otherwise), and our construction uses
// the minimal DFA, which merges them. All of Figure 1's transitions are
// asserted modulo that merge; the rewriting language is identical.
func TestFigure1(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	r := MaximalRewriting(inst)

	if got := r.Ad.TrimPartial().NumStates(); got != 2 {
		t.Fatalf("A_d has %d live states, want 2 (Figure 1's s0/s2 merged)", got)
	}
	if !r.Ad.IsTotal() {
		t.Fatal("A_d must be total for the A' construction")
	}

	// Identify A_d's live states by behaviour: s02 = start (the merge of
	// the figure's s0 and s2), s1 = the accepting state.
	s02 := r.Ad.Start()
	a := inst.Sigma().Lookup("a")
	b := inst.Sigma().Lookup("b")
	c := inst.Sigma().Lookup("c")
	s1 := r.Ad.Next(s02, a)
	if !r.Ad.Accepting(s1) || r.Ad.Accepting(s02) {
		t.Fatal("A_d acceptance pattern differs from Figure 1")
	}
	if r.Ad.Next(s1, c) != s1 || r.Ad.Next(s1, b) != s02 {
		t.Fatal("A_d transitions differ from Figure 1")
	}

	// A' edges from the construction: e1 follows words of L(a), e2 of
	// L(a·c*·b), e3 of L(c). The figure's edges, after merging s0/s2:
	e1 := inst.SigmaE().Lookup("e1")
	e2 := inst.SigmaE().Lookup("e2")
	e3 := inst.SigmaE().Lookup("e3")
	hasEdge := func(from automata.State, e alphabet.Symbol, to automata.State) bool {
		for _, tgt := range r.APrime.Successors(from, e) {
			if tgt == to {
				return true
			}
		}
		return false
	}
	for _, tc := range []struct {
		from automata.State
		e    alphabet.Symbol
		to   automata.State
		want bool
	}{
		{s02, e1, s1, true},  // a: s0 → s1 and s2 → s1
		{s02, e2, s02, true}, // a·c*·b: s0 → s2 and s2 → s2
		{s1, e3, s1, true},   // c: s1 → s1
		{s02, e3, s1, false}, // c from s0 goes to the dead state
		{s1, e1, s1, false},  // a from s1 dies
		{s1, e2, s1, false},  // a·c*·b from s1 dies
	} {
		if got := hasEdge(tc.from, tc.e, tc.to); got != tc.want {
			t.Errorf("A' edge %d --%s--> %d: got %v, want %v",
				tc.from, inst.SigmaE().Name(tc.e), tc.to, got, tc.want)
		}
	}

	// A' accepting states are exactly A_d's non-accepting ones.
	for s := 0; s < r.Ad.NumStates(); s++ {
		if r.APrime.Accepting(automata.State(s)) == r.Ad.Accepting(automata.State(s)) {
			t.Fatalf("A' acceptance at state %d not flipped", s)
		}
	}

	// DOT output is well-formed for all three automata.
	for _, dot := range []string{r.Ad.DOT("Ad"), r.APrime.DOT("Aprime"), r.Auto.DOT("R")} {
		if len(dot) == 0 {
			t.Fatal("empty DOT output")
		}
	}
}

// TestRewritingIsSoundOnPaperExample: every Σ_E-word accepted by R
// expands inside L(E0) (Definition 1), via bounded enumeration.
func TestRewritingSoundness(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	r := MaximalRewriting(inst)
	e0 := inst.Query.ToNFA(inst.Sigma())
	words := language.Enumerate(r.NFA(), 3, 0)
	if len(words) == 0 {
		t.Fatal("no rewriting words to check")
	}
	for _, u := range words {
		exp := language.ExpandWords(u, r.Views(), inst.Sigma(), 5, 0)
		for _, w := range exp.Words() {
			if !e0.Accepts(w) {
				t.Fatalf("exp(%v) contains %v ∉ L(E0)",
					automata.FormatWord(inst.SigmaE(), u),
					automata.FormatWord(inst.Sigma(), w))
			}
		}
	}
}

// TestRewritingCharacterization is the THM2 experiment: for random
// instances and random Σ_E-words u, membership u ∈ L(R) holds exactly
// when exp({u}) ⊆ L(E0), both sides computed independently of the
// rewriting construction.
func TestRewritingCharacterization(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	exprs := []string{
		"a·(b·a+c)*", "a*", "(a+b)*", "a·b·c", "a·(b+c)", "(a·b)*·c?", "a+b·a*",
	}
	viewPool := []string{"a", "b", "c", "a·b", "b·a", "a·c*·b", "c", "a*", "b·c", "a?"}
	for trial := 0; trial < 40; trial++ {
		query := exprs[r.Intn(len(exprs))]
		views := map[string]string{}
		k := 1 + r.Intn(3)
		for i := 0; i < k; i++ {
			views[string(rune('p'+i))] = viewPool[r.Intn(len(viewPool))]
		}
		inst := parseInstance(t, query, views)
		rw := MaximalRewriting(inst)
		e0 := inst.Query.ToNFA(inst.Sigma())
		viewNFAs := rw.Views()

		for i := 0; i < 25; i++ {
			// Random Σ_E-word of length ≤ 3.
			u := make([]alphabet.Symbol, r.Intn(4))
			for j := range u {
				u[j] = alphabet.Symbol(r.Intn(inst.SigmaE().Len()))
			}
			// Independent ground truth: exp({u}) ⊆ L(E0) via automata.
			expansion := automata.EpsilonLanguage(inst.Sigma())
			for _, e := range u {
				expansion = automata.Concat(expansion, viewNFAs[e])
			}
			contained, _ := automata.ContainedIn(expansion, e0)
			inR := rw.Auto.Accepts(u)
			if contained != inR {
				t.Fatalf("trial %d: u=%v exp⊆L(E0)=%v but u∈L(R)=%v (instance %s)",
					trial, automata.FormatWord(inst.SigmaE(), u), contained, inR, inst)
			}
		}
	}
}

func TestRewritingEmptyWhenNoViewFits(t *testing.T) {
	inst := parseInstance(t, "a", map[string]string{"e": "b"})
	r := MaximalRewriting(inst)
	// ε ∉ L(a), and any use of e expands to b ∉ prefixes of a-words.
	if !r.IsEmpty() {
		t.Fatalf("rewriting = %s, want ∅", r.Regex())
	}
	if !r.IsSigmaEmpty() {
		t.Fatal("Σ-empty must follow from Σ_E-empty")
	}
	if HasNonemptyRewriting(inst) {
		t.Fatal("HasNonemptyRewriting should be false")
	}
}

func TestSigmaEmptyVsSigmaEEmpty(t *testing.T) {
	// View with empty language: e2 = ∅. The word e2 would be a rewriting
	// vacuously (its expansion is empty), so L(R) ≠ ∅ although
	// exp(L(R)) might still be nonempty through e1. Use a query where
	// only e2-words rewrite: E0 = a, views e1 = b (useless), e2 = ∅.
	inst := parseInstance(t, "a", map[string]string{"e1": "b", "e2": "∅"})
	r := MaximalRewriting(inst)
	if r.IsEmpty() {
		t.Fatal("L(R) should contain e2-words (vacuous rewritings)")
	}
	if !r.IsSigmaEmpty() {
		t.Fatal("exp(L(R)) should be empty")
	}
	if _, ok := r.ShortestWord(); ok {
		t.Fatal("ShortestWord should report no usable word")
	}
	if HasNonemptyRewriting(inst) {
		t.Fatal("no Σ-nonempty rewriting exists")
	}
}

func TestShortestWordOfRewriting(t *testing.T) {
	inst := parseInstance(t, "a·b", map[string]string{"e1": "a", "e2": "b"})
	r := MaximalRewriting(inst)
	w, ok := r.ShortestWord()
	if !ok {
		t.Fatal("rewriting should be nonempty")
	}
	if automata.FormatWord(inst.SigmaE(), w) != "e1·e2" {
		t.Fatalf("shortest word = %v", automata.FormatWord(inst.SigmaE(), w))
	}
}

func TestEpsilonHandling(t *testing.T) {
	// ε ∈ L(E0): the empty Σ_E-word must be in the rewriting.
	inst := parseInstance(t, "a*", map[string]string{"e": "a·a"})
	r := MaximalRewriting(inst)
	if !r.Accepts() {
		t.Fatal("ε must be in the rewriting when ε ∈ L(E0)")
	}
	if !r.Accepts("e", "e") {
		t.Fatal("(aa)(aa) ⊆ a* should put e·e in the rewriting")
	}
	// ε ∉ L(E0): the empty word must not be in the rewriting.
	inst2 := parseInstance(t, "a·a*", map[string]string{"e": "a·a"})
	r2 := MaximalRewriting(inst2)
	if r2.Accepts() {
		t.Fatal("ε must not be in the rewriting when ε ∉ L(E0)")
	}
}

func TestViewWithEpsilonLanguage(t *testing.T) {
	// re(e2) = b? contains ε: e1·e2 expands to {a, ab} ⊆ L(a·b?).
	inst := parseInstance(t, "a·b?", map[string]string{"e1": "a", "e2": "b?"})
	r := MaximalRewriting(inst)
	if !r.Accepts("e1", "e2") {
		t.Fatal("e1·e2 should be in the rewriting")
	}
	if !r.Accepts("e1") {
		t.Fatal("e1 alone expands to {a} ⊆ L(a·b?)")
	}
}

func TestViewEpsilonOnlyRepetition(t *testing.T) {
	// re(e2) = b?: e2·e2 expands to {ε,b,bb}; bb ∉ L(a·b?), so
	// e1·e2·e2 must NOT be in the rewriting.
	inst := parseInstance(t, "a·b?", map[string]string{"e1": "a", "e2": "b?"})
	r := MaximalRewriting(inst)
	if r.Accepts("e1", "e2", "e2") {
		t.Fatal("e1·e2·e2 expansion includes a·b·b ∉ L(E0)")
	}
}

func TestNoViews(t *testing.T) {
	inst := parseInstance(t, "a*", map[string]string{})
	r := MaximalRewriting(inst)
	// Only the empty Σ_E-word exists; ε ∈ L(a*), so L(R) = {ε}.
	if !r.Accepts() {
		t.Fatal("ε should be accepted")
	}
	if r.IsEmpty() {
		t.Fatal("L(R) = {ε} is not empty")
	}
	if ok, _ := r.IsExact(); ok {
		t.Fatal("{ε} cannot be exact for a*")
	}
}

func TestInstanceValidation(t *testing.T) {
	if _, err := NewInstance(nil, nil); err == nil {
		t.Fatal("nil query accepted")
	}
	q := regex.MustParse("a")
	if _, err := NewInstance(q, []View{{Name: "", Expr: q}}); err == nil {
		t.Fatal("empty view name accepted")
	}
	if _, err := NewInstance(q, []View{{Name: "v", Expr: nil}}); err == nil {
		t.Fatal("nil view expression accepted")
	}
	if _, err := NewInstance(q, []View{{Name: "v", Expr: q}, {Name: "v", Expr: q}}); err == nil {
		t.Fatal("duplicate view name accepted")
	}
	if _, err := ParseInstance("a(", nil); err == nil {
		t.Fatal("bad query syntax accepted")
	}
	if _, err := ParseInstance("a", map[string]string{"v": "(("}); err == nil {
		t.Fatal("bad view syntax accepted")
	}
}

func TestInstanceAccessors(t *testing.T) {
	inst := parseInstance(t, "a·b", map[string]string{"v1": "a", "v2": "b"})
	if inst.Sigma().Len() != 2 || inst.SigmaE().Len() != 2 {
		t.Fatalf("alphabets wrong: Σ=%d Σ_E=%d", inst.Sigma().Len(), inst.SigmaE().Len())
	}
	if inst.ViewExpr("v1") == nil || inst.ViewExpr("nope") != nil {
		t.Fatal("ViewExpr wrong")
	}
	if inst.String() == "" {
		t.Fatal("String empty")
	}
	ext, err := inst.WithViews(View{Name: "v3", Expr: regex.Sym("c")})
	if err != nil {
		t.Fatal(err)
	}
	if ext.SigmaE().Len() != 3 || ext.Sigma().Len() != 3 {
		t.Fatal("WithViews did not extend alphabets")
	}
	if _, err := inst.WithViews(View{Name: "v1", Expr: regex.Sym("c")}); err == nil {
		t.Fatal("WithViews accepted duplicate name")
	}
}

func TestExistsExactRewriting(t *testing.T) {
	yes := parseInstance(t, "a·b", map[string]string{"e1": "a", "e2": "b"})
	if !ExistsExactRewriting(yes) {
		t.Fatal("a·b with views a,b should have an exact rewriting")
	}
	no := parseInstance(t, "a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if ExistsExactRewriting(no) {
		t.Fatal("a·(b+c) with views a,b should have no exact rewriting")
	}
}

func TestHasNonemptyRewriting(t *testing.T) {
	if !HasNonemptyRewriting(parseInstance(t, "a·b", map[string]string{"e": "a·b"})) {
		t.Fatal("want nonempty rewriting")
	}
	if HasNonemptyRewriting(parseInstance(t, "a", map[string]string{"e": "a·a"})) {
		t.Fatal("want no nonempty rewriting (a·a ⊄ a and ε ∉ L(a))")
	}
}

func TestMaximalRewritingBounded(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	r, err := MaximalRewritingBounded(inst, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !regex.Equivalent(r.Regex(), regex.MustParse("e2*·e1·e3*")) {
		t.Fatalf("bounded rewriting = %s", r.Regex())
	}
	if ok, _ := r.IsExact(); !ok {
		t.Fatal("bounded rewriting should be exact")
	}
}

func TestMaximalRewritingBoundedHitsLimit(t *testing.T) {
	// (a+b)*·a·(a+b)^9 determinizes to ≥2^10 states: a cap of 50 must trip.
	parts := "( a+b)*·a"
	_ = parts
	expr := "(a+b)*·a·(a+b)·(a+b)·(a+b)·(a+b)·(a+b)·(a+b)·(a+b)·(a+b)·(a+b)"
	inst := parseInstance(t, expr, map[string]string{"va": "a", "vb": "b"})
	_, err := MaximalRewritingBounded(inst, 50)
	if err == nil {
		t.Fatal("expected state-limit error")
	}
	if !errors.Is(err, automata.ErrStateLimit) {
		t.Fatalf("error %v does not wrap ErrStateLimit", err)
	}
	// A generous cap matches the unbounded construction.
	r, err := MaximalRewritingBounded(inst, 100000)
	if err != nil {
		t.Fatal(err)
	}
	full := MaximalRewriting(inst)
	if !automata.Equivalent(r.NFA(), full.NFA()) {
		t.Fatal("bounded and unbounded rewritings differ")
	}
}

func TestMaximalRewritingBoundedUnionQuery(t *testing.T) {
	// Union-shaped query goes through the branch-wise path.
	inst := parseInstance(t, "a·b+b·a+a·a+b·b+a+b", map[string]string{"va": "a", "vb": "b"})
	r, err := MaximalRewritingBounded(inst, 1000)
	if err != nil {
		t.Fatal(err)
	}
	full := MaximalRewriting(inst)
	if !automata.Equivalent(r.NFA(), full.NFA()) {
		t.Fatal("bounded union-path rewriting differs")
	}
	if _, err := MaximalRewritingBounded(inst, 1); err == nil {
		t.Fatal("cap of 1 should trip on the union path")
	}
}

// TestExample1SigmaMaximality pins the subtle point of Example 1: the
// single word "e" is already Σ-maximal (its expansion is all of a*),
// even though it is not Σ_E-maximal — e* strictly contains it over Σ_E.
func TestExample1SigmaMaximality(t *testing.T) {
	inst := parseInstance(t, "a*", map[string]string{"e": "a*"})
	r := MaximalRewriting(inst)
	// exp({e}) computed independently: the single view automaton.
	expOfE := r.Views()[inst.SigmaE().Lookup("e")]
	if !automata.Equivalent(expOfE, r.Expand()) {
		t.Fatal("exp({e}) should already equal exp(L(R)) — Σ-maximality of R2 = e")
	}
	// Yet over Σ_E, {e} ⊊ L(R).
	single := automata.SymbolLanguage(inst.SigmaE(), inst.SigmaE().Lookup("e"))
	ok, _ := automata.ContainedIn(single, r.NFA())
	if !ok {
		t.Fatal("e should be in L(R)")
	}
	ok, _ = automata.ContainedIn(r.NFA(), single)
	if ok {
		t.Fatal("L(R) must strictly contain {e}")
	}
}
