package core

import (
	"testing"

	"regexrw/internal/automata"
)

func TestEstimatedCost(t *testing.T) {
	inst := parseInstance(t, "a·b", map[string]string{"e1": "a", "e2": "b"})
	r := MaximalRewriting(inst)
	// Trimmed minimal automaton: 3 states, edges e1 then e2.
	costs := ViewCosts{"e1": 10, "e2": 1}
	if got := r.EstimatedCost(costs); got != 11 {
		t.Fatalf("EstimatedCost = %v, want 11", got)
	}
	// Default cost applies to unknown views.
	if got := r.EstimatedCost(ViewCosts{}); got != 2 {
		t.Fatalf("EstimatedCost default = %v, want 2", got)
	}
}

func TestPruneViewsDropsExpensiveRedundant(t *testing.T) {
	// v1 = a·b duplicates what v2·v3 already provide; it is expensive,
	// so pruning must drop it and keep the cheap pair.
	inst := parseInstance(t, "a·b", map[string]string{
		"v1": "a·b", "v2": "a", "v3": "b",
	})
	costs := ViewCosts{"v1": 100, "v2": 1, "v3": 1}
	pruned, r, err := PruneViews(inst, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Views) != 2 {
		t.Fatalf("kept %d views, want 2: %v", len(pruned.Views), pruned.Views)
	}
	for _, v := range pruned.Views {
		if v.Name == "v1" {
			t.Fatal("expensive redundant view v1 survived")
		}
	}
	if ok, _ := r.IsExact(); !ok {
		t.Fatal("pruned rewriting lost exactness")
	}
}

func TestPruneViewsKeepsExpensiveWhenNeeded(t *testing.T) {
	// Reverse costs: v1 is cheap, v2/v3 are expensive — dropping both
	// expensive ones keeps the expansion ({ab} via v1), so only v1
	// remains.
	inst := parseInstance(t, "a·b", map[string]string{
		"v1": "a·b", "v2": "a", "v3": "b",
	})
	costs := ViewCosts{"v1": 1, "v2": 100, "v3": 100}
	pruned, _, err := PruneViews(inst, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Views) != 1 || pruned.Views[0].Name != "v1" {
		t.Fatalf("kept %v, want just v1", pruned.Views)
	}
}

func TestPruneViewsNoRedundancy(t *testing.T) {
	inst := parseInstance(t, "a·b", map[string]string{"e1": "a", "e2": "b"})
	pruned, r, err := PruneViews(inst, ViewCosts{"e1": 5, "e2": 5})
	if err != nil {
		t.Fatal(err)
	}
	if pruned != inst {
		t.Fatal("no view should have been dropped")
	}
	if ok, _ := r.IsExact(); !ok {
		t.Fatal("rewriting lost")
	}
}

func TestPruneViewsPreservesExpansionLanguage(t *testing.T) {
	// Even for a non-exact rewriting, pruning must keep the expansion
	// language (the certain answers) identical.
	inst := parseInstance(t, "a·(b+c)", map[string]string{
		"q1": "a", "q2": "b", "useless": "c·c",
	})
	full := MaximalRewriting(inst)
	pruned, r, err := PruneViews(inst, ViewCosts{"useless": 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Views) != 2 {
		t.Fatalf("kept %d views, want 2", len(pruned.Views))
	}
	if !automata.Equivalent(full.Expand(), r.Expand()) {
		t.Fatal("pruning changed the expansion language")
	}
}

func TestPruneViewsKeepsAtLeastOne(t *testing.T) {
	// A query with an empty rewriting: every view is droppable, but the
	// pruner must leave one view so the instance stays well-formed.
	inst := parseInstance(t, "a", map[string]string{"e": "b"})
	pruned, _, err := PruneViews(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Views) != 1 {
		t.Fatalf("kept %d views, want 1", len(pruned.Views))
	}
}
