package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/par"
)

// These tests hammer the shared memo/intern caches and the atomic
// budget from concurrent rewriting pipelines. They are fast enough to
// run in -short mode, which is exactly where the CI race job wants them
// (go test -race -short ./...).

// sharedInstance is a small instance whose views exercise ε-removal,
// the transfer fixpoint, and both determinizations.
func sharedInstance(t *testing.T) *core.Instance {
	t.Helper()
	inst, err := core.ParseInstance("(a.b)*.(c+a.b)", map[string]string{
		"v1": "a.b",
		"v2": "c",
		"v3": "(a.b)*",
		"v4": "a.(b.a)*.b",
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestConcurrentMaximalRewriting runs many full pipelines at once over
// the SAME instance: every run shares the instance's query node, and
// runs racing on e0's lazy ε-closure memo must all see a valid table.
// Each result is compared byte-for-byte against a sequential reference.
func TestConcurrentMaximalRewriting(t *testing.T) {
	inst := sharedInstance(t)
	ref, err := core.MaximalRewritingContext(par.WithWorkers(context.Background(), 1), inst)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := serializeRewriting(t, ref)

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mix worker counts so sequential and parallel transfer
			// constructions interleave on the shared caches.
			ctx := par.WithWorkers(context.Background(), 1+g%4)
			r, err := core.MaximalRewritingContext(ctx, inst)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: %v", g, err)
				return
			}
			if got := serializeRewriting(t, r); got != refBytes {
				errs <- fmt.Errorf("goroutine %d: rewriting differs from sequential reference", g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentRewritingSharedViews runs concurrent pipelines that
// share the SAME pre-built view automata map (the normal path builds a
// fresh map per call): this maximizes contention on the per-NFA memo
// tables inside transferTargets.
func TestConcurrentRewritingSharedViews(t *testing.T) {
	inst := sharedInstance(t)
	e0 := inst.Query.ToNFA(inst.Sigma())
	views := inst.ViewNFAs() // shared across all goroutines below

	ref, err := core.MaximalRewritingAutomataContext(par.WithWorkers(context.Background(), 1), e0, inst.SigmaE(), views)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := serializeRewriting(t, ref)

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := par.WithWorkers(context.Background(), 1+g%4)
			r, err := core.MaximalRewritingAutomataContext(ctx, e0, inst.SigmaE(), views)
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: %v", g, err)
				return
			}
			if got := serializeRewriting(t, r); got != refBytes {
				errs <- fmt.Errorf("goroutine %d: rewriting differs from sequential reference", g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func serializeRewriting(t *testing.T, r *core.Rewriting) string {
	t.Helper()
	var sb1, sb2 stringsBuilder
	if _, err := r.APrime.WriteTo(&sb1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Auto.NFA().WriteTo(&sb2); err != nil {
		t.Fatal(err)
	}
	return sb1.String() + "\x00" + sb2.String()
}

// stringsBuilder avoids importing strings just for Builder.
type stringsBuilder struct{ buf []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *stringsBuilder) String() string { return string(b.buf) }

// TestBudgetAccurateUnderConcurrency: N workers each charging k states
// through their own Meter against one shared Budget must account for
// exactly N*k, and a cap mid-way must trip exactly.
func TestBudgetAccurateUnderConcurrency(t *testing.T) {
	const workers, perWorker = 8, 1000
	b := budget.New(budget.MaxStates(workers*perWorker + 1))
	ctx := budget.With(context.Background(), b)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := budget.Enter(ctx, "core.transfer")
			for i := 0; i < perWorker; i++ {
				if err := m.AddStates(1); err != nil {
					t.Errorf("unexpected budget error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := b.States(); got != workers*perWorker {
		t.Fatalf("budget recorded %d states, want %d", got, workers*perWorker)
	}

	// The cap has 1 state left: exactly one more charge fits.
	m := budget.Enter(ctx, "core.transfer")
	if err := m.AddStates(1); err != nil {
		t.Fatalf("final state within cap rejected: %v", err)
	}
	if err := m.AddStates(1); err == nil {
		t.Fatal("charge beyond cap accepted")
	}
}

// TestParallelTransferBudgetTrips: a tight budget must surface a
// *budget.ExceededError through the parallel fan-out, not a masked
// cancellation error.
func TestParallelTransferBudgetTrips(t *testing.T) {
	inst := sharedInstance(t)
	b := budget.New(budget.MaxStates(3))
	ctx := budget.With(par.WithWorkers(context.Background(), 4), b)
	_, err := core.MaximalRewritingContext(ctx, inst)
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.ExceededError", err)
	}
}
