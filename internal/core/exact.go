package core

import (
	"context"
	"errors"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/strategy"
)

// Expand returns the automaton B of Section 2 accepting exp(L(R)) over
// Σ: every e-edge of the (trimmed) rewriting automaton is replaced by a
// fresh copy of an automaton for L(re(e)), spliced between the edge's
// source and target. Because R is a rewriting of E0, L(B) ⊆ L(E0) holds
// by construction; exactness is the question of the converse inclusion.
func (r *Rewriting) Expand() *automata.NFA {
	if r.expanded != nil {
		return r.expanded
	}
	r.expanded = expandOverViews(r.Auto.TrimPartial(), r.sigma, r.sigmaE, r.Views())
	return r.expanded
}

// ExpandContext is Expand with cooperative cancellation and resource
// governance: the splice can copy one view automaton per edge of the
// rewriting, so it is metered against the context's budget (stage
// "core.expand"). The result is cached on success, shared with Expand.
func (r *Rewriting) ExpandContext(ctx context.Context) (*automata.NFA, error) {
	if r.expanded != nil {
		return r.expanded, nil
	}
	exp, err := expandOverViewsContext(ctx, r.Auto.TrimPartial(), r.sigma, r.sigmaE, r.Views())
	if err != nil {
		return nil, err
	}
	r.expanded = exp
	return exp, nil
}

// IsExact decides whether the rewriting is exact — exp(L(R)) = L(E0)
// (Definition 3) — by Theorem 3: it checks L(A_d) ⊆ L(B) with the
// complement of B constructed on the fly, the space-saving device of
// Theorem 6. If the rewriting is not exact, witness is a shortest
// Σ-word in L(E0) \ exp(L(R)).
func (r *Rewriting) IsExact() (exact bool, witness []alphabet.Symbol) {
	exact, witness, _ = r.IsExactContext(context.Background()) // a background context never cancels
	return exact, witness
}

// IsExactContext is IsExact with cooperative cancellation and resource
// governance: the containment search is worst-case exponential in the
// size of B (2EXPSPACE overall, Theorem 9), and both the expansion
// splice and the containment frontier are metered against the context's
// budget. A cancelled ctx or exhausted budget aborts with the
// corresponding error; callers that want a verdict rather than an error
// should use TryExactness.
//
// The complement of B is built on the fly (Theorem 6's space-saving
// device) or materialized up front, decided by a capped trial
// determinization of B: a nearly deterministic expansion (elementary
// views, the DetBlowup family) determinizes in about its own size, so
// paying that cost once and scanning the product with dense table
// lookups beats re-deriving subsets lazily; a genuinely
// nondeterministic expansion can blow up exponentially, where the lazy
// complement explores only the reachable fragment. The choice lands on
// the span's `strategy` attribute and the strategy.exactness.*
// counters; both arms return the same verdict and a shortest witness
// (internal/oracle checks them differentially).
func (r *Rewriting) IsExactContext(ctx context.Context) (exact bool, witness []alphabet.Symbol, err error) {
	ctx, span := obs.StartSpan(ctx, "core.exactness")
	defer span.End()
	exp, err := r.ExpandContext(ctx)
	if err != nil {
		return false, nil, err
	}
	cfg := strategy.From(ctx)
	choice := cfg.ExactnessChoice(0)
	var ok bool
	var cex []alphabet.Symbol
	var decided bool
	if cfg.Exactness == strategy.ExactnessAuto {
		// Straight to a trial materialization capped at the threshold:
		// if det(B) actually fits, the trial has already built the
		// complement DFA and its verdict stands at the
		// forced-materialized price — the measurement is the work; if it
		// does not, the waste is bounded by the cap and the on-the-fly
		// scan takes over. No static size estimate first: predicting
		// det(B) needs B's ε-closure tables, which are a large share of
		// the determinization cost itself (automata.EstimateDeterminized
		// measured at ~20% of the whole check on the DetBlowup family),
		// so the prediction is nearly as expensive as just trying.
		var fit bool
		ok, cex, fit, err = automata.ContainedInMaterializedCapped(
			ctx, r.Ad.NFA(), exp, cfg.EffectiveMaterializeMaxStates())
		if err != nil {
			return false, nil, err
		}
		choice = strategy.ChoiceOnTheFly
		if fit {
			choice = strategy.ChoiceMaterialized
		}
		decided = fit
	}
	strategy.Record(ctx, span, "exactness", choice)
	if !decided {
		if choice == strategy.ChoiceMaterialized {
			ok, cex, err = automata.ContainedInMaterializedContext(ctx, r.Ad.NFA(), exp)
		} else {
			ok, cex, err = automata.ContainedInContext(ctx, r.Ad.NFA(), exp)
		}
	}
	if err != nil {
		return false, nil, err
	}
	if ok {
		return true, nil, nil
	}
	return false, cex, nil
}

// ExactVerdict is the three-valued outcome of TryExactness.
type ExactVerdict int

const (
	// ExactUnknown means the check ran out of budget or was cancelled
	// before reaching a verdict. The rewriting itself is still sound
	// (exp(L(R)) ⊆ L(E0) holds by construction); only the converse
	// inclusion is undecided.
	ExactUnknown ExactVerdict = iota
	// ExactYes means exp(L(R)) = L(E0).
	ExactYes
	// ExactNo means the rewriting is properly contained in the query;
	// the report's Witness is a shortest escaping word.
	ExactNo
)

// String returns "unknown", "yes" or "no".
func (v ExactVerdict) String() string {
	switch v {
	case ExactYes:
		return "yes"
	case ExactNo:
		return "no"
	default:
		return "unknown"
	}
}

// ExactnessReport is the outcome of TryExactness: the verdict, the
// counterexample witness when the verdict is ExactNo, and — when the
// verdict is ExactUnknown — the error that stopped the check (wrapping
// *budget.ExceededError or ctx.Err()) plus the stage that was running.
type ExactnessReport struct {
	Verdict ExactVerdict
	// Witness is a shortest word of L(E0) \ exp(L(R)) when Verdict is
	// ExactNo; nil otherwise.
	Witness []alphabet.Symbol
	// Reason is non-nil exactly when Verdict is ExactUnknown: the
	// budget-exhaustion or cancellation error that ended the check.
	Reason error
	// Stage names the pipeline stage that gave out when Verdict is
	// ExactUnknown and the budget was the cause (e.g. "core.expand",
	// "automata.contained_in"); empty otherwise.
	Stage string
}

// TryExactness is the anytime variant of IsExactContext: instead of
// propagating the budget-exhaustion or cancellation error, it degrades
// to an ExactUnknown verdict carrying the error as a diagnostic. The
// three-valued answer matches the decision structure of Theorem 9: a
// definite yes/no needs the full 2EXPSPACE check, but an aborted check
// costs the caller nothing — the maximal rewriting stays sound, only
// its exactness is undecided.
func (r *Rewriting) TryExactness(ctx context.Context) ExactnessReport {
	exact, witness, err := r.IsExactContext(ctx)
	if err != nil {
		report := ExactnessReport{Verdict: ExactUnknown, Reason: err}
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			report.Stage = ex.Stage
		}
		return report
	}
	if exact {
		return ExactnessReport{Verdict: ExactYes}
	}
	return ExactnessReport{Verdict: ExactNo, Witness: witness}
}

// IsExactMaterialized is the naive baseline for IsExact: it fully
// determinizes and complements B before intersecting with A_d (the
// 3EXPTIME route the paper's Theorem 6 avoids). Exists for the THM6
// ablation; always agrees with IsExact.
func (r *Rewriting) IsExactMaterialized() bool {
	return automata.ContainedInMaterialized(r.Ad.NFA(), r.Expand())
}

// ExplainRejection explains why the Σ_E-word u (given by view names)
// is not in the rewriting: it returns a Σ-word in exp({u}) \ L(E0) —
// an expansion of u that escapes the query language — or ok=false when
// u actually is in the rewriting (every expansion is inside L(E0)) or
// when u's expansion is empty (u uses a view with an empty language;
// such words are IN the rewriting vacuously). A diagnostic companion
// to Accepts.
func (r *Rewriting) ExplainRejection(viewNames ...string) (witness []alphabet.Symbol, ok bool) {
	expansion := automata.EpsilonLanguage(r.sigma)
	views := r.Views()
	for _, name := range viewNames {
		e := r.sigmaE.Lookup(name)
		if e == alphabet.None || views[e] == nil {
			return nil, false // unknown view: not a Σ_E-word at all
		}
		expansion = automata.Concat(expansion, views[e])
	}
	escaping := automata.Difference(expansion, r.Ad.NFA())
	return escaping.ShortestWord()
}

// ExistsExactRewriting reports whether the instance admits any exact
// rewriting. By Corollary 4 this holds iff the Σ_E-maximal rewriting is
// exact.
func ExistsExactRewriting(inst *Instance) bool {
	ok, _ := MaximalRewriting(inst).IsExact()
	return ok
}

// HasNonemptyRewriting reports whether the instance admits a rewriting
// whose expansion is non-empty (the EXPSPACE-complete problem of
// Theorem 7). Because the Σ_E-maximal rewriting contains every
// rewriting, this holds iff exp(L(R(E0,E))) ≠ ∅.
func HasNonemptyRewriting(inst *Instance) bool {
	return !MaximalRewriting(inst).IsSigmaEmpty()
}
