package core

import (
	"context"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// Expand returns the automaton B of Section 2 accepting exp(L(R)) over
// Σ: every e-edge of the (trimmed) rewriting automaton is replaced by a
// fresh copy of an automaton for L(re(e)), spliced between the edge's
// source and target. Because R is a rewriting of E0, L(B) ⊆ L(E0) holds
// by construction; exactness is the question of the converse inclusion.
func (r *Rewriting) Expand() *automata.NFA {
	if r.expanded != nil {
		return r.expanded
	}
	r.expanded = expandOverViews(r.Auto.TrimPartial(), r.sigma, r.sigmaE, r.Views())
	return r.expanded
}

// IsExact decides whether the rewriting is exact — exp(L(R)) = L(E0)
// (Definition 3) — by Theorem 3: it checks L(A_d) ⊆ L(B) with the
// complement of B constructed on the fly, the space-saving device of
// Theorem 6. If the rewriting is not exact, witness is a shortest
// Σ-word in L(E0) \ exp(L(R)).
func (r *Rewriting) IsExact() (exact bool, witness []alphabet.Symbol) {
	exact, witness, _ = r.IsExactContext(context.Background()) // a background context never cancels
	return exact, witness
}

// IsExactContext is IsExact with cooperative cancellation: the on-the-fly
// containment search is worst-case exponential in the size of B, and it
// consults ctx between batches of product states. A cancelled ctx aborts
// with its error.
func (r *Rewriting) IsExactContext(ctx context.Context) (exact bool, witness []alphabet.Symbol, err error) {
	ok, cex, err := automata.ContainedInContext(ctx, r.Ad.NFA(), r.Expand())
	if err != nil {
		return false, nil, err
	}
	if ok {
		return true, nil, nil
	}
	return false, cex, nil
}

// IsExactMaterialized is the naive baseline for IsExact: it fully
// determinizes and complements B before intersecting with A_d (the
// 3EXPTIME route the paper's Theorem 6 avoids). Exists for the THM6
// ablation; always agrees with IsExact.
func (r *Rewriting) IsExactMaterialized() bool {
	return automata.ContainedInMaterialized(r.Ad.NFA(), r.Expand())
}

// ExplainRejection explains why the Σ_E-word u (given by view names)
// is not in the rewriting: it returns a Σ-word in exp({u}) \ L(E0) —
// an expansion of u that escapes the query language — or ok=false when
// u actually is in the rewriting (every expansion is inside L(E0)) or
// when u's expansion is empty (u uses a view with an empty language;
// such words are IN the rewriting vacuously). A diagnostic companion
// to Accepts.
func (r *Rewriting) ExplainRejection(viewNames ...string) (witness []alphabet.Symbol, ok bool) {
	expansion := automata.EpsilonLanguage(r.sigma)
	views := r.Views()
	for _, name := range viewNames {
		e := r.sigmaE.Lookup(name)
		if e == alphabet.None || views[e] == nil {
			return nil, false // unknown view: not a Σ_E-word at all
		}
		expansion = automata.Concat(expansion, views[e])
	}
	escaping := automata.Difference(expansion, r.Ad.NFA())
	return escaping.ShortestWord()
}

// ExistsExactRewriting reports whether the instance admits any exact
// rewriting. By Corollary 4 this holds iff the Σ_E-maximal rewriting is
// exact.
func ExistsExactRewriting(inst *Instance) bool {
	ok, _ := MaximalRewriting(inst).IsExact()
	return ok
}

// HasNonemptyRewriting reports whether the instance admits a rewriting
// whose expansion is non-empty (the EXPSPACE-complete problem of
// Theorem 7). Because the Σ_E-maximal rewriting contains every
// rewriting, this holds iff exp(L(R(E0,E))) ≠ ∅.
func HasNonemptyRewriting(inst *Instance) bool {
	return !MaximalRewriting(inst).IsSigmaEmpty()
}
