// Fault-injection sweep, graceful-degradation and Theorem 8 fail-fast
// tests for the core layer. External test package: the Theorem 8
// counter family lives in workload, which imports core.
package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/budget/faultinject"
	"regexrw/internal/core"
	"regexrw/internal/workload"
)

func exactInstance(t testing.TB) *core.Instance {
	t.Helper()
	inst, err := core.ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b", "q3": "c"})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// corePipeline runs the full rewriting stack of Section 2–3 on an
// instance whose rewriting is exact, so every containment check
// explores its frontier exhaustively and the check surface does not
// depend on counterexample discovery order. A fresh Instance and
// Rewriting are built per run: Expand caches on success, and a cached
// expansion would hide the expand stage from later injections.
func corePipeline(t testing.TB) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		inst := exactInstance(t)
		r, err := core.MaximalRewritingContext(ctx, inst)
		if err != nil {
			return err
		}
		if _, _, err := r.IsExactContext(ctx); err != nil {
			return err
		}
		if _, err := core.PossibilityRewritingContext(ctx, inst); err != nil {
			return err
		}
		if _, err := core.PartialRewritingContext(ctx, inst); err != nil {
			return err
		}
		return nil
	}
}

func TestFaultInjectionSweepCore(t *testing.T) {
	points := int64(40)
	if testing.Short() {
		points = 10
	}
	fired := faultinject.Sweep(t, points, faultinject.SeedFromEnv(2), corePipeline(t))
	t.Logf("core sweep: %d injections fired", fired)
}

// TestTheorem8FailFast: the Theorem 8 counter family forces the maximal
// rewriting to have at least 2^(2^n) states, so an unbudgeted run at a
// modest n would exhaust memory. With a state cap the pipeline must
// fail fast with a typed *budget.ExceededError — no OOM, no hang.
func TestTheorem8FailFast(t *testing.T) {
	inst := workload.CounterFamily(12)
	b := budget.New(budget.MaxStates(2000))
	start := time.Now()
	_, err := core.MaximalRewritingContext(budget.With(context.Background(), b), inst)
	elapsed := time.Since(start)
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.ExceededError", err)
	}
	if ex.Limit != 2000 {
		t.Fatalf("Limit = %d, want 2000", ex.Limit)
	}
	if elapsed > time.Second {
		t.Fatalf("fail-fast took %v, want < 1s", elapsed)
	}
}

// TestTryExactnessDegrades: when the budget gives out during the
// exactness check, TryExactness reports Unknown with the stage that
// exhausted rather than an error or a wrong verdict.
func TestTryExactnessDegrades(t *testing.T) {
	inst := exactInstance(t)
	r, err := core.MaximalRewritingContext(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	// A budget too small for the expansion: verdict must be Unknown.
	b := budget.New(budget.MaxStates(1))
	rep := r.TryExactness(budget.With(context.Background(), b))
	if rep.Verdict != core.ExactUnknown {
		t.Fatalf("Verdict = %v, want unknown", rep.Verdict)
	}
	if rep.Reason == nil || rep.Stage == "" {
		t.Fatalf("report = %+v, want a reason and a stage", rep)
	}
	// With room to run, the same rewriting resolves to yes.
	rep = r.TryExactness(context.Background())
	if rep.Verdict != core.ExactYes || rep.Reason != nil {
		t.Fatalf("report = %+v, want yes with no reason", rep)
	}
}

func TestTryExactnessNoWitnessOnNo(t *testing.T) {
	inst, err := core.ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.MaximalRewritingContext(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.TryExactness(context.Background())
	if rep.Verdict != core.ExactNo || len(rep.Witness) == 0 {
		t.Fatalf("report = %+v, want no with a witness", rep)
	}
}

// TestPartialRewritingAnytimeDegrades: exhaustion mid-search degrades
// to the sound maximal rewriting over the original views instead of an
// error.
func TestPartialRewritingAnytimeDegrades(t *testing.T) {
	inst, err := core.ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	// Measure the surface, then cut the search off partway through.
	hook, count := faultinject.Counter()
	ctx := budget.With(context.Background(), budget.New(budget.WithHook(hook)))
	res, err := core.PartialRewritingAnytime(ctx, inst)
	if err != nil || !res.Exact {
		t.Fatalf("unbounded anytime run: res = %+v, err = %v", res, err)
	}
	total := count()

	b := budget.New(budget.WithHook(faultinject.ExhaustAt(total / 2)))
	res, err = core.PartialRewritingAnytime(budget.With(context.Background(), b), inst)
	if err != nil {
		t.Fatalf("anytime must degrade, not fail: %v", err)
	}
	if res.Exact {
		t.Fatal("Exact = true under an exhausted budget")
	}
	var ex *budget.ExceededError
	if !errors.As(res.Reason, &ex) || res.Stage == "" {
		t.Fatalf("res = %+v, want an ExceededError reason with a stage", res)
	}
	if len(res.Result.Added) != 0 {
		t.Fatalf("degraded result added views %v, want none", res.Result.Added)
	}
	// Soundness: the degraded rewriting is the instance's maximal one.
	want, err := core.MaximalRewritingContext(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if !automata.EquivalentDFA(res.Result.Rewriting.Auto, want.Auto) {
		t.Fatal("degraded rewriting differs from the maximal rewriting")
	}
}

// TestExpandContextCancelLeavesNoCache: a cancelled expansion must not
// leave a partially-built automaton cached on the rewriting.
func TestExpandContextCancelLeavesNoCache(t *testing.T) {
	r, err := core.MaximalRewritingContext(context.Background(), exactInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ExpandContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A later successful call must rebuild from scratch and validate.
	exp, err := r.ExpandContext(context.Background())
	if err != nil || exp == nil {
		t.Fatalf("retry after cancellation: exp = %v, err = %v", exp, err)
	}
}

// TestPruneViewsContextCancel: the pruning loop honors cancellation.
func TestPruneViewsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := core.PruneViewsContext(ctx, exactInstance(t), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
