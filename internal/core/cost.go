package core

import (
	"context"
	"sort"

	"regexrw/internal/automata"
	"regexrw/internal/budget"
)

// ViewCosts assigns an evaluation cost to each view, e.g. the
// cardinality of its materialized extension. Views absent from the map
// cost DefaultViewCost. The paper's Section 4.3 closes by noting that
// "cost models for path queries and preference criteria that take into
// account such cost models can be defined, leading to the development
// of techniques for choosing the best rewriting"; this file implements
// that direction.
type ViewCosts map[string]float64

// DefaultViewCost is charged for views without an entry in ViewCosts.
const DefaultViewCost = 1.0

func (c ViewCosts) of(name string) float64 {
	if v, ok := c[name]; ok {
		return v
	}
	return DefaultViewCost
}

// EstimatedCost scores a rewriting under the per-edge relation-scan
// model: evaluating the rewriting automaton over materialized views by
// product search scans, for each automaton transition labeled q, the
// extension of view q — so the estimate is the sum of the view costs
// over the transitions of the trimmed automaton. Cheaper automata scan
// fewer/lighter view extensions.
func (r *Rewriting) EstimatedCost(costs ViewCosts) float64 {
	base := r.Auto.Minimize().TrimPartial()
	total := 0.0
	for s := 0; s < base.NumStates(); s++ {
		for _, e := range r.sigmaE.Symbols() {
			if base.Next(automata.State(s), e) != automata.NoState {
				total += costs.of(r.sigmaE.Name(e))
			}
		}
	}
	return total
}

// PruneViews drops views that the rewriting does not need: it greedily
// removes the most expensive views first, keeping a removal only when
// the rewriting over the remaining views still has the same expansion
// language (hence returns the same answers on every database). The
// returned instance uses the surviving views; its rewriting is
// returned alongside.
func PruneViews(inst *Instance, costs ViewCosts) (*Instance, *Rewriting, error) { //invariantcall:checked delegates to PruneViewsContext
	return PruneViewsContext(context.Background(), inst, costs) // a background context never cancels and carries no budget
}

// PruneViewsContext is PruneViews with cooperative cancellation and
// resource governance: each removal trial costs a full
// rewriting-plus-expansion-plus-equivalence pipeline, all metered
// against the context's budget; the greedy loop itself ticks the meter
// (stage "core.prune") once per victim.
func PruneViewsContext(ctx context.Context, inst *Instance, costs ViewCosts) (*Instance, *Rewriting, error) { //invariantcall:checked every candidate rewriting comes from MaximalRewritingContext, which validates
	meter := budget.Enter(ctx, "core.prune")
	full, err := MaximalRewritingContext(ctx, inst)
	if err != nil {
		return nil, nil, err
	}
	fullExp, err := full.ExpandContext(ctx)
	if err != nil {
		return nil, nil, err
	}

	// Most expensive first; stable on ties for determinism.
	order := append([]View(nil), inst.Views...)
	sort.SliceStable(order, func(i, j int) bool {
		return costs.of(order[i].Name) > costs.of(order[j].Name)
	})

	kept := make(map[string]bool, len(inst.Views))
	for _, v := range inst.Views {
		kept[v.Name] = true
	}
	current := full
	for _, victim := range order {
		if err := meter.Check(); err != nil {
			return nil, nil, err
		}
		if len(kept) == 1 {
			break // keep at least one view
		}
		var trial []View
		for _, v := range inst.Views {
			if v.Name != victim.Name && kept[v.Name] {
				trial = append(trial, v)
			}
		}
		trialInst, err := NewInstance(inst.Query, trial)
		if err != nil {
			return nil, nil, err
		}
		r, err := MaximalRewritingContext(ctx, trialInst)
		if err != nil {
			return nil, nil, err
		}
		rExp, err := r.ExpandContext(ctx)
		if err != nil {
			return nil, nil, err
		}
		same, _, err := automata.ContainedInContext(ctx, rExp, fullExp)
		if err != nil {
			return nil, nil, err
		}
		if same {
			back, _, err := automata.ContainedInContext(ctx, fullExp, rExp)
			if err != nil {
				return nil, nil, err
			}
			same = back
		}
		if same {
			kept[victim.Name] = false
			current = r
		}
	}

	var finalViews []View
	for _, v := range inst.Views {
		if kept[v.Name] {
			finalViews = append(finalViews, v)
		}
	}
	finalInst, err := NewInstance(inst.Query, finalViews)
	if err != nil {
		return nil, nil, err
	}
	if len(finalViews) == len(inst.Views) {
		return inst, full, nil
	}
	// Recompute on the final instance so the rewriting's Instance and
	// alphabets match the pruned view set exactly.
	if current.Instance == nil || len(current.Instance.Views) != len(finalViews) {
		current, err = MaximalRewritingContext(ctx, finalInst)
		if err != nil {
			return nil, nil, err
		}
	}
	return finalInst, current, nil
}
