package core

import (
	"strings"
	"testing"

	"regexrw/internal/automata"
)

// fixtureRewriting builds a small rewriting (the paper's Example 1
// shape) that must validate before corruption.
func fixtureRewriting(t *testing.T) *Rewriting {
	t.Helper()
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a·(b·a)*", "e2": "c+b·a", "e3": "a·c*",
	})
	rw := MaximalRewriting(inst)
	if err := rw.Validate(); err != nil {
		t.Fatalf("fixture rewriting invalid before corruption: %v", err)
	}
	return rw
}

func TestRewritingValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(r *Rewriting)
		wantSub string
	}{
		{"missing Ad", func(r *Rewriting) { r.Ad = nil }, "missing a construction automaton"},
		{"missing Auto", func(r *Rewriting) { r.Auto = nil }, "missing a construction automaton"},
		{"Ad not total", func(r *Rewriting) { r.Ad = r.Ad.TrimPartial() }, "A_d is not total"},
		{"Ad alphabet mismatch", func(r *Rewriting) {
			r.Ad = automata.NewDFA(r.sigmaE)
			r.Ad.SetStart(r.Ad.AddState())
		}, "alphabet differs from Σ"},
		{"APrime state count", func(r *Rewriting) { r.APrime.AddState() }, "Step 2 reuses A_d's states"},
		{"APrime acceptance not flipped", func(r *Rewriting) {
			r.APrime.SetAccept(0, !r.APrime.Accepting(0))
		}, "not flipped"},
		{"Auto not total", func(r *Rewriting) { r.Auto = r.Auto.TrimPartial() }, "R is not total"},
		{"missing sigma", func(r *Rewriting) { r.sigma = nil }, "missing an alphabet"},
		{"view with epsilon", func(r *Rewriting) {
			bad := automata.NewNFA(r.sigma)
			bad.AddStates(2)
			bad.SetStart(0)
			bad.SetAccept(1, true)
			bad.AddEpsilon(0, 1)
			for e := range r.views {
				r.views[e] = bad
				break
			}
		}, "ε-transitions"},
		{"view alphabet mismatch", func(r *Rewriting) {
			bad := automata.NewNFA(r.sigmaE)
			bad.SetStart(bad.AddState())
			for e := range r.views {
				r.views[e] = bad
				break
			}
		}, "alphabet differs from Σ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rw := fixtureRewriting(t)
			tc.corrupt(rw)
			err := rw.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the corruption")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRewritingValidateAllConstructors checks the invariants hold on
// every public construction path, not just MaximalRewriting.
func TestRewritingValidateAllConstructors(t *testing.T) {
	inst := parseInstance(t, "a·(b·a+c)*", map[string]string{
		"e1": "a·(b·a)*", "e2": "c+b·a",
	})
	bounded, err := MaximalRewritingBounded(inst, 10_000)
	if err != nil {
		t.Fatalf("MaximalRewritingBounded: %v", err)
	}
	if err := bounded.Validate(); err != nil {
		t.Errorf("MaximalRewritingBounded output invalid: %v", err)
	}
	auto := MaximalRewritingAutomata(inst.Query.ToNFA(inst.Sigma()), inst.SigmaE(), inst.ViewNFAs())
	if err := auto.Validate(); err != nil {
		t.Errorf("MaximalRewritingAutomata output invalid: %v", err)
	}
}
