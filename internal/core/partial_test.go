package core

import (
	"context"
	"errors"
	"testing"

	"regexrw/internal/regex"
)

// TestExample3Core lifts Example 3 to the regular-expression level:
// E0 = a·(b+c), views {a, b}. The maximal rewriting q1·q2 is not exact;
// adding the single elementary view c yields the exact q1·(q2+q3).
func TestExample3Core(t *testing.T) {
	inst := parseInstance(t, "a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	r := MaximalRewriting(inst)
	if !regex.Equivalent(r.Regex(), regex.MustParse("q1·q2")) {
		t.Fatalf("maximal rewriting = %s, want ≡ q1·q2", r.Regex())
	}
	if ok, _ := r.IsExact(); ok {
		t.Fatal("q1·q2 must not be exact")
	}

	res, err := PartialRewriting(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 || res.Added[0] != "c" {
		t.Fatalf("Added = %v, want [c]", res.Added)
	}
	if ok, _ := res.Rewriting.IsExact(); !ok {
		t.Fatal("partial rewriting must be exact")
	}
	want := regex.MustParse("q1·(q2+c)")
	if !regex.Equivalent(res.Rewriting.Regex(), want) {
		t.Fatalf("partial rewriting = %s, want ≡ q1·(q2+c)", res.Rewriting.Regex())
	}
}

func TestPartialRewritingNoAdditionNeeded(t *testing.T) {
	inst := parseInstance(t, "a·b", map[string]string{"e1": "a", "e2": "b"})
	res, err := PartialRewriting(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 {
		t.Fatalf("Added = %v, want none", res.Added)
	}
	if res.Instance != inst {
		t.Fatal("instance should be unchanged")
	}
}

func TestPartialRewritingNeedsTwoSymbols(t *testing.T) {
	// E0 = a·b + c·d with no views: needs all four symbols? No — a, b,
	// c, d all needed. Use views covering half.
	inst := parseInstance(t, "a·b+c·d", map[string]string{"e": "a·b"})
	res, err := PartialRewriting(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 2 {
		t.Fatalf("Added = %v, want two symbols", res.Added)
	}
	if res.Added[0] != "c" || res.Added[1] != "d" {
		t.Fatalf("Added = %v, want [c d]", res.Added)
	}
	if ok, _ := res.Rewriting.IsExact(); !ok {
		t.Fatal("extended rewriting must be exact")
	}
}

func TestPartialRewritingAllElementary(t *testing.T) {
	// No views at all: the search must add every needed symbol.
	inst := parseInstance(t, "a·b", map[string]string{})
	res, err := PartialRewriting(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 2 {
		t.Fatalf("Added = %v, want [a b]", res.Added)
	}
}

func TestPartialRewritingNameClash(t *testing.T) {
	// A user view already named "c" forces the elementary view for the
	// symbol c to take a fresh name.
	inst := parseInstance(t, "a·(b+c)", map[string]string{"a": "a", "b": "b", "c": "a·b"})
	res, err := PartialRewriting(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 || res.Added[0] != "c" {
		t.Fatalf("Added = %v, want [c]", res.Added)
	}
	// The added view must have a name distinct from the user view "c".
	found := false
	for _, v := range res.Instance.Views {
		if v.Name == "c_2" && v.Expr.Equal(regex.Sym("c")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected renamed elementary view c_2; views = %v", res.Instance.Views)
	}
	if ok, _ := res.Rewriting.IsExact(); !ok {
		t.Fatal("extended rewriting must be exact")
	}
}

func TestPartialRewritingPrefersFewerAdditions(t *testing.T) {
	// Adding just c suffices even though {b,c} would too; minimality
	// requires exactly one addition.
	inst := parseInstance(t, "a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	res, err := PartialRewriting(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 {
		t.Fatalf("Added = %v, want exactly one", res.Added)
	}
}

func TestPartialRewritingContextCancel(t *testing.T) {
	// A query needing additions, with a pre-cancelled context: the
	// search must stop with the context error.
	inst := parseInstance(t, "a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PartialRewritingContext(ctx, inst); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A cancelled context aborts even the fast path now that the whole
	// pipeline is resource-governed; a live context still succeeds.
	exact := parseInstance(t, "a·b", map[string]string{"e1": "a", "e2": "b"})
	if _, err := PartialRewritingContext(ctx, exact); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled on the fast path too", err)
	}
	if _, err := PartialRewritingContext(context.Background(), exact); err != nil {
		t.Fatalf("live context should succeed: %v", err)
	}
}
