package core_test

import (
	"fmt"
	"log"

	"regexrw/internal/core"
)

// The full Section 2 pipeline on the paper's Example 2.
func ExampleMaximalRewriting() {
	inst, err := core.ParseInstance("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		log.Fatal(err)
	}
	r := core.MaximalRewriting(inst)
	exact, _ := r.IsExact()
	fmt.Println("rewriting:", r.Regex())
	fmt.Println("exact:", exact)
	fmt.Println("A_d states (incl. dead):", r.Ad.NumStates())
	// Output:
	// rewriting: e2*·e1·e3*
	// exact: true
	// A_d states (incl. dead): 3
}

func ExamplePartialRewriting() {
	inst, err := core.ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.PartialRewriting(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added:", res.Added)
	fmt.Println("rewriting:", res.Rewriting.Regex())
	// Output:
	// added: [c]
	// rewriting: q1·(q2+c)
}

func ExamplePossibilityRewriting() {
	inst, err := core.ParseInstance("a·b", map[string]string{"e1": "a+c", "e2": "b"})
	if err != nil {
		log.Fatal(err)
	}
	p := core.PossibilityRewriting(inst)
	containing, _ := p.IsContaining()
	fmt.Println("possibility rewriting:", p.Regex())
	fmt.Println("containing rewriting exists:", containing)
	// Output:
	// possibility rewriting: e1·e2
	// containing rewriting exists: true
}

func ExamplePruneViews() {
	inst, err := core.ParseInstance("a·b", map[string]string{
		"vBig": "a·b", "vA": "a", "vB": "b",
	})
	if err != nil {
		log.Fatal(err)
	}
	pruned, r, err := core.PruneViews(inst, core.ViewCosts{"vBig": 100})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range pruned.Views {
		fmt.Println("kept:", v.Name)
	}
	fmt.Println("rewriting:", r.Regex())
	// Output:
	// kept: vA
	// kept: vB
	// rewriting: vA·vB
}
