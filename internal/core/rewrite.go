package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/par"
	"regexrw/internal/regex"
	"regexrw/internal/strategy"
)

// Rewriting is the Σ_E-maximal rewriting R(E0,E) of an instance,
// produced by MaximalRewriting. It retains the intermediate automata of
// the paper's construction (A_d and A') so that callers can inspect
// them (Figure 1) and so that the exactness check can reuse A_d.
type Rewriting struct {
	// Instance is the source instance, or nil when the rewriting was
	// built directly from automata (MaximalRewritingAutomata), as the
	// regular-path-query layer does.
	Instance *Instance

	// Ad is the deterministic (total) automaton for L(E0) over Σ built
	// in Step 1 of the construction.
	Ad *automata.DFA
	// APrime is the automaton A' over Σ_E of Step 2: an e-edge s_i → s_j
	// exists iff some w ∈ L(re(e)) drives Ad from s_i to s_j, and the
	// accepting states are Ad's non-accepting ones.
	APrime *automata.NFA
	// Auto is the rewriting itself: the complement of A' (Step 3),
	// a total DFA over Σ_E.
	Auto *automata.DFA

	sigma  *alphabet.Alphabet                // Σ
	sigmaE *alphabet.Alphabet                // Σ_E
	views  map[alphabet.Symbol]*automata.NFA // Σ_E symbol → ε-free NFA over Σ
	// viewsFn lazily supplies the view automata when they were not
	// materialized at construction time (the RPQ layer's direct method
	// defers grounding until expansion/exactness needs it).
	viewsFn func() map[alphabet.Symbol]*automata.NFA

	expanded *automata.NFA // cached Expand result
}

// Sigma returns the base alphabet Σ of the rewriting.
func (r *Rewriting) Sigma() *alphabet.Alphabet { return r.sigma }

// SigmaE returns the view alphabet Σ_E of the rewriting.
func (r *Rewriting) SigmaE() *alphabet.Alphabet { return r.sigmaE }

// MaximalRewriting computes the Σ_E-maximal rewriting of the instance
// following the three-step construction of Section 2:
//
//  1. build a deterministic automaton A_d with L(A_d) = L(E0),
//  2. build A' over Σ_E whose e-edges connect s_i to s_j iff some word
//     of L(re(e)) drives A_d from s_i to s_j, with accepting set S − F,
//  3. return the complement of A'.
//
// By Theorem 2 the result is Σ_E-maximal, and by Theorem 1 also
// Σ-maximal.
func MaximalRewriting(inst *Instance) *Rewriting { //invariantcall:checked delegates to MaximalRewritingContext
	r, _ := MaximalRewritingContext(context.Background(), inst) // a background context never cancels
	return r
}

// MaximalRewritingContext is MaximalRewriting with cooperative
// cancellation and resource governance: the construction is doubly
// exponential in the worst case (Theorem 5), and every
// state-materializing step of the pipeline — both determinizations, the
// interleaved minimizations and DFA unions, and the A' transfer BFS —
// consults ctx and the budget carried by it (budget.With). A cancelled
// ctx aborts with its error; an exhausted budget with a
// *budget.ExceededError naming the stage that gave out; the ctx-free
// MaximalRewriting wrapper is unaffected.
func MaximalRewritingContext(ctx context.Context, inst *Instance) (*Rewriting, error) {
	ctx, span := obs.StartSpan(ctx, "core.maximal_rewriting")
	defer span.End()
	ad, err := determinizeQueryContext(ctx, inst)
	if err != nil {
		return nil, err
	}
	views := inst.ViewNFAs()
	ap, err := transferAutomatonContext(ctx, ad, inst.sigmaE, views)
	if err != nil {
		return nil, err
	}
	for s := 0; s < ad.NumStates(); s++ {
		ap.SetAccept(automata.State(s), !ad.Accepting(automata.State(s))) // S − F
	}
	det, err := automata.DeterminizeContext(ctx, ap)
	if err != nil {
		return nil, fmt.Errorf("core: rewriting automaton: %w", err)
	}
	auto := complementSpanned(ctx, det)
	r := &Rewriting{
		Instance: inst,
		Ad:       ad, APrime: ap, Auto: auto,
		sigma: inst.sigma, sigmaE: inst.sigmaE, views: views,
	}
	debugValidateRewriting(r)
	return r, nil
}

// complementSpanned is Step 3 of the construction under its own span.
// Complementing a total DFA only flips accepting bits — no states are
// materialized, so nothing is charged on the budget; the span records
// the automaton's size as an attribute instead.
func complementSpanned(ctx context.Context, det *automata.DFA) *automata.DFA {
	_, span := obs.StartSpan(ctx, "automata.complement")
	defer span.End()
	span.SetAttr("states", int64(det.NumStates()))
	return det.Complement()
}

// determinizeQuery builds a minimal total DFA for the query. Queries
// that are large top-level unions (the shape of the paper's Theorem 7/8
// error-detector constructions) are determinized branch by branch with
// interleaved minimization: one subset construction over the whole
// union NFA can explode even when the minimal DFA is small, whereas the
// per-branch automata and their running union stay near the minimal
// size. (The THM8 experiment relies on this: the counter family's A_d
// is ~100 states, but the monolithic subset construction visits
// millions of subsets from n = 3 on.)
func determinizeQuery(inst *Instance) *automata.DFA {
	d, _ := determinizeQueryContext(context.Background(), inst) // a background context never cancels
	return d
}

// determinizeQueryContext is determinizeQuery with cooperative
// cancellation and budget metering threaded into every subset
// construction, DFA union and minimization. The query NFA (per branch,
// on the union path) comes from the Instance's node cache, so repeated
// compiles of one Instance reuse the NFA's memoized subset tables.
func determinizeQueryContext(ctx context.Context, inst *Instance) (*automata.DFA, error) {
	ctx, span := obs.StartSpan(ctx, "core.a_d")
	defer span.End()
	q := inst.Query
	const unionThreshold = 4
	if q.Op != regex.OpUnion || len(q.Subs) < unionThreshold {
		d, err := automata.DeterminizeContext(ctx, toNFASpanned(ctx, inst, q))
		if err != nil {
			return nil, fmt.Errorf("core: A_d: %w", err)
		}
		m, err := d.MinimizeContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: A_d: %w", err)
		}
		return m.Totalize(), nil
	}
	var ad *automata.DFA
	for _, branch := range q.Subs {
		bd, err := automata.DeterminizeContext(ctx, toNFASpanned(ctx, inst, branch))
		if err != nil {
			return nil, fmt.Errorf("core: A_d branch: %w", err)
		}
		bm, err := bd.MinimizeContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: A_d branch: %w", err)
		}
		if ad == nil {
			ad = bm
		} else {
			u, err := automata.UnionDFAContext(ctx, ad, bm)
			if err != nil {
				return nil, fmt.Errorf("core: A_d union: %w", err)
			}
			ad, err = u.MinimizeContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("core: A_d union: %w", err)
			}
		}
	}
	// The per-branch alphabets are all sigma, so no lifting is needed;
	// totalize for the A' construction.
	return ad.Totalize(), nil
}

// toNFASpanned is the Glushkov/Thompson build of the query NFA under
// its own span, served from the Instance's per-node cache after the
// first compile. The build is linear in the regex, so nothing is
// budget-charged; the span records the NFA size as an attribute.
func toNFASpanned(ctx context.Context, inst *Instance, q *regex.Node) *automata.NFA {
	_, span := obs.StartSpan(ctx, "regex.to_nfa")
	defer span.End()
	n := inst.nodeNFA(q)
	span.SetAttr("nfa_states", int64(n.NumStates()))
	return n
}

// MaximalRewritingBounded is MaximalRewriting with a resource guard:
// the construction is doubly exponential in the worst case (Theorem 5),
// so the whole pipeline draws from a shared pool of maxStates states
// and the call fails with an error wrapping automata.ErrStateLimit
// (and the underlying *budget.ExceededError) instead of exhausting
// memory. Use it when the instance comes from untrusted input. It
// predates the unified budget and is kept as a thin wrapper over it:
// new callers should attach a budget.Budget to a context and call
// MaximalRewritingContext, which also supports transition caps,
// deadlines and shared pools spanning several calls.
func MaximalRewritingBounded(inst *Instance, maxStates int) (*Rewriting, error) { //invariantcall:checked delegates to MaximalRewritingContext, which validates
	if maxStates <= 0 {
		return nil, fmt.Errorf("core: %w: limit must be positive, got %d", automata.ErrStateLimit, maxStates)
	}
	b := budget.New(budget.MaxStates(maxStates))
	r, err := MaximalRewritingContext(budget.With(context.Background(), b), inst)
	if err != nil {
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			return nil, fmt.Errorf("core: %w: %w", automata.ErrStateLimit, ex)
		}
		return nil, err
	}
	return r, nil
}

// MaximalRewritingAutomata is MaximalRewriting with the inputs already
// compiled: the target language as an NFA over Σ (e0's alphabet) and
// each view as an ε-free NFA over the same Σ, keyed by its Σ_E symbol.
// The regular-path-query layer uses this entry point with grounded
// automata over the constant domain D in place of Σ (Theorem 11).
func MaximalRewritingAutomata(e0 *automata.NFA, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) *Rewriting { //invariantcall:checked delegates to maximalRewritingFromDFA, which validates
	// Step 1. A_d must be TOTAL: Step 2 needs s_j = ρ*(s_i, w) to exist
	// for every w, so rejection must be represented by a dead state
	// rather than by a missing transition. Minimization keeps the
	// automaton small and returns a total DFA.
	ad := automata.Determinize(e0).Minimize().Totalize()
	return maximalRewritingFromDFA(ad, e0.Alphabet(), sigmaE, views)
}

// MaximalRewritingAutomataContext is MaximalRewritingAutomata with
// cooperative cancellation and budget metering threaded into both
// determinizations, the minimization, and the A' transfer BFS.
func MaximalRewritingAutomataContext(ctx context.Context, e0 *automata.NFA, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) (*Rewriting, error) {
	ctx, span := obs.StartSpan(ctx, "core.maximal_rewriting")
	defer span.End()
	ad, err := adFromNFA(ctx, e0)
	if err != nil {
		return nil, err
	}
	ap, err := transferAutomatonContext(ctx, ad, sigmaE, views)
	if err != nil {
		return nil, err
	}
	for s := 0; s < ad.NumStates(); s++ {
		ap.SetAccept(automata.State(s), !ad.Accepting(automata.State(s))) // S − F
	}
	det, err := automata.DeterminizeContext(ctx, ap)
	if err != nil {
		return nil, fmt.Errorf("core: rewriting automaton: %w", err)
	}
	auto := complementSpanned(ctx, det)
	r := &Rewriting{
		Ad: ad, APrime: ap, Auto: auto,
		sigma: e0.Alphabet(), sigmaE: sigmaE, views: views,
	}
	debugValidateRewriting(r)
	return r, nil
}

// adFromNFA is Step 1 for a pre-compiled target language: determinize,
// minimize, totalize, under the same "core.a_d" span as the
// regex-driven path.
func adFromNFA(ctx context.Context, e0 *automata.NFA) (*automata.DFA, error) {
	ctx, span := obs.StartSpan(ctx, "core.a_d")
	defer span.End()
	d, err := automata.DeterminizeContext(ctx, e0)
	if err != nil {
		return nil, fmt.Errorf("core: A_d: %w", err)
	}
	m, err := d.MinimizeContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: A_d: %w", err)
	}
	return m.Totalize(), nil
}

// maximalRewritingFromDFA runs Steps 2–3 of the construction from an
// already-deterministic, total A_d.
func maximalRewritingFromDFA(ad *automata.DFA, sigma *alphabet.Alphabet, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) *Rewriting {
	// Step 2. Build A' with accepting set S − F.
	ap := transferAutomaton(ad, sigmaE, views)
	for s := 0; s < ad.NumStates(); s++ {
		ap.SetAccept(automata.State(s), !ad.Accepting(automata.State(s))) // S − F
	}

	// Step 3. R = complement of A'.
	r := automata.Determinize(ap).Complement()

	out := &Rewriting{
		Ad: ad, APrime: ap, Auto: r,
		sigma: sigma, sigmaE: sigmaE, views: views,
	}
	debugValidateRewriting(out)
	return out
}

// transferAutomaton builds the Σ_E-labeled transfer structure shared by
// the maximal-rewriting construction (A', Section 2) and the
// possibility-rewriting construction (dual.go): states are A_d's, and
// an e-edge s_i → s_j exists iff some w ∈ L(re(e)) drives A_d from s_i
// to s_j — found by a single product BFS over (view state, A_d state)
// pairs per view and start state. Acceptance is left all-false; each
// construction sets its own. Views with ε-transitions are normalized in
// place in the views map.
func transferAutomaton(ad *automata.DFA, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) *automata.NFA {
	ap, _ := transferAutomatonContext(context.Background(), ad, sigmaE, views) // a background context never cancels and carries no budget
	return ap
}

// transferAutomatonContext is transferAutomaton metered against the
// context's budget (stage "core.transfer"): A' has one state per A_d
// state, but the product fixpoint behind its edges can materialize
// |view|·|A_d| origin sets per view, and the e-edges themselves are
// charged as transitions. The per-view fixpoints are independent, so
// they can fan out over the context's worker pool (par.WithWorkers;
// default GOMAXPROCS) — whether they actually do is decided by the
// strategy dispatcher from the summed |view|·|A_d| product-pair cost:
// below the calibrated cutover the goroutine fan-out costs more than
// the fixpoints themselves (the Example 2 regression), so small
// instances run inline. The merge below runs in symbol order either
// way, so the resulting automaton is byte-identical across strategies
// (internal/oracle checks adaptive ≡ forced-sequential ≡
// forced-parallel). The choice is recorded on the "core.transfer" span
// and the strategy.fanout.* counters.
func transferAutomatonContext(ctx context.Context, ad *automata.DFA, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) (*automata.NFA, error) {
	ctx, span := obs.StartSpan(ctx, "core.transfer")
	defer span.End()
	meter := budget.Enter(ctx, "core.transfer")
	if err := meter.AddStates(ad.NumStates()); err != nil {
		return nil, err
	}
	ap := automata.NewNFA(sigmaE)
	ap.AddStates(ad.NumStates())
	ap.SetStart(ad.Start())

	// Collect the symbols that have a view, in symbol order, and
	// ε-normalize their automata up front: the fan-out shares the views
	// map read-only, so this in-place mutation must complete before it.
	syms := make([]alphabet.Symbol, 0, len(views))
	for _, e := range sigmaE.Symbols() {
		vnfa := views[e]
		if vnfa == nil {
			continue
		}
		if vnfa.HasEpsilon() {
			views[e] = vnfa.RemoveEpsilon()
		}
		syms = append(syms, e)
	}

	// Estimate the fan-out's total cost in product-pair units (one view
	// state × one A_d state ≈ one origin set the fixpoint may touch) and
	// let the dispatcher pick sequential vs parallel.
	totalCost := int64(0)
	for _, e := range syms {
		totalCost += int64(views[e].NumStates()) * int64(ad.NumStates())
	}
	choice := strategy.From(ctx).FanOutChoice(par.Workers(ctx), len(syms), totalCost)
	strategy.Record(ctx, span, "fanout", choice)
	fctx := ctx
	if choice == strategy.ChoiceSequential {
		fctx = par.WithWorkers(fctx, 1)
	}

	// One item per view. Each worker opens its own Meter — Meter is not
	// concurrency-safe, but the Budget behind the context is atomic, so
	// charges from all workers land in the same shared pool. Results go
	// into index-addressed slots; an error from any view (budget
	// exhaustion, cancellation) cancels the remaining ones and surfaces
	// as the root cause.
	targets := make([][][]automata.State, len(syms))
	err := par.ForEach(fctx, len(syms), func(wctx context.Context, i int) error {
		// With observability off this is the bare fixpoint call; with it
		// on, each view's fixpoint gets a "core.transfer:<view>" span —
		// and, when the fan-out actually runs parallel, pprof labels so
		// CPU profiles attribute samples per view symbol. The label copy
		// costs a goroutine-label swap per item, which on an inline
		// sequential fan-out is pure overhead (the EX2Observed tracing
		// cost), so the sequential arm skips it. The disabled path builds
		// no closure and assembles no label strings at all.
		if !obs.Enabled(wctx) {
			wm := budget.Enter(wctx, "core.transfer")
			ts, terr := transferTargets(wm, views[syms[i]], ad)
			if terr != nil {
				return terr
			}
			targets[i] = ts
			return nil
		}
		name := sigmaE.Name(syms[i])
		vctx, vspan := obs.StartSpan2(wctx, "core.transfer", name)
		defer vspan.End()
		if choice == strategy.ChoiceSequential {
			wm := budget.Enter(vctx, "core.transfer")
			var terr error
			targets[i], terr = transferTargets(wm, views[syms[i]], ad)
			return terr
		}
		var terr error
		obs.Do(vctx, func(lctx context.Context) {
			wm := budget.Enter(lctx, "core.transfer")
			targets[i], terr = transferTargets(wm, views[syms[i]], ad)
		}, "stage", "core.transfer", "view", name)
		return terr
	})
	if err != nil {
		return nil, err
	}

	for k, e := range syms {
		added := 0
		for i, ts := range targets[k] {
			for _, j := range ts {
				ap.AddTransition(automata.State(i), e, j)
				added++
			}
		}
		if err := meter.AddTransitions(added); err != nil {
			return nil, err
		}
	}
	return ap, nil
}

// transferTargets computes, for every A_d state i, the states j such
// that some w ∈ L(view) drives ad from i to j — all origins at once,
// by origin-set propagation: each product pair (view state, A_d state)
// carries the bitset of origins that reach it, and transitions union
// the sets forward until fixpoint. Compared with one BFS per origin
// (reachTargets, kept as the test oracle) the inner dimension runs 64
// origins per machine word. Each materialized origin set is charged as
// a state on the caller's meter; the fixpoint aborts on exhaustion or
// cancellation.
func transferTargets(meter *budget.Meter, view *automata.NFA, ad *automata.DFA) ([][]automata.State, error) {
	nAd := ad.NumStates()
	nView := view.NumStates()
	out := make([][]automata.State, nAd)
	if view.Start() == automata.NoState {
		return out, nil
	}

	// origins[v*nAd+d] = bitset of A_d states i with (start, i) →* (v, d).
	origins := make([]*bitsetWords, nView*nAd)
	idx := func(v automata.State, d automata.State) int { return int(v)*nAd + int(d) }

	words := (nAd + 63) / 64
	allocated := 0
	get := func(v, d automata.State) *bitsetWords {
		k := idx(v, d)
		if origins[k] == nil {
			origins[k] = newBitsetWords(words)
			allocated++
		}
		return origins[k]
	}

	type pair struct{ v, d automata.State }
	var queue []pair
	inQueue := map[pair]bool{}
	push := func(p pair) {
		if !inQueue[p] {
			inQueue[p] = true
			queue = append(queue, p)
		}
	}

	start := view.Start()
	for i := 0; i < nAd; i++ {
		get(start, automata.State(i)).set(i)
		push(pair{start, automata.State(i)})
	}

	charged := 0
	for len(queue) > 0 {
		// Charge the origin sets materialized since the last check.
		if err := meter.AddStates(allocated - charged); err != nil {
			return nil, err
		}
		charged = allocated
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[p] = false
		src := get(p.v, p.d)
		for _, x := range view.OutSymbols(p.v) { //mapiter:unordered fixpoint propagation; the final origin sets are order-independent
			d2 := ad.Next(p.d, x)
			if d2 == automata.NoState {
				continue
			}
			for _, v2 := range view.Successors(p.v, x) {
				if get(v2, d2).unionWith(src) {
					push(pair{v2, d2})
				}
			}
		}
	}

	for _, v := range view.AcceptingStates() {
		for d := 0; d < nAd; d++ {
			set := origins[idx(v, automata.State(d))]
			if set == nil {
				continue
			}
			for _, i := range set.elements() {
				out[i] = append(out[i], automata.State(d))
			}
		}
	}
	// Deduplicate targets per origin (an origin can reach the same j
	// through several accepting view states).
	for i := range out {
		if len(out[i]) < 2 {
			continue
		}
		seen := map[automata.State]bool{}
		kept := out[i][:0]
		for _, j := range out[i] {
			if !seen[j] {
				seen[j] = true
				kept = append(kept, j)
			}
		}
		out[i] = kept
	}
	return out, nil
}

// bitsetWords is a minimal fixed-size bitset used by transferTargets
// (internal/automata's bitset is unexported there).
type bitsetWords struct{ w []uint64 }

func newBitsetWords(words int) *bitsetWords { return &bitsetWords{w: make([]uint64, words)} }

func (b *bitsetWords) set(i int) { b.w[i>>6] |= 1 << (uint(i) & 63) }

// unionWith ors o into b and reports whether b changed.
func (b *bitsetWords) unionWith(o *bitsetWords) bool {
	changed := false
	for i, word := range o.w {
		if b.w[i]|word != b.w[i] {
			b.w[i] |= word
			changed = true
		}
	}
	return changed
}

func (b *bitsetWords) elements() []int {
	var out []int
	for wi, word := range b.w {
		for word != 0 {
			out = append(out, wi*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return out
}

// NewRewritingFromParts assembles a Rewriting from externally built
// automata: A_d (total DFA over Σ), A' (NFA over Σ_E), their complement
// R (total DFA over Σ_E), and the ε-free view automata over Σ. The
// regular-path-query layer uses this for the Section 4.2 construction,
// which builds the A' edges without materializing grounded view
// automata. Callers are responsible for the construction invariants
// (A_d total, A' acceptance flipped, R = complement of determinized A').
// The view automata are supplied lazily: viewsFn runs only if a caller
// needs the expansion (Expand, exactness or Σ-emptiness checks).
func NewRewritingFromParts(ad *automata.DFA, aprime *automata.NFA, r *automata.DFA, sigma, sigmaE *alphabet.Alphabet, viewsFn func() map[alphabet.Symbol]*automata.NFA) *Rewriting {
	out := &Rewriting{
		Ad: ad, APrime: aprime, Auto: r,
		sigma: sigma, sigmaE: sigmaE, viewsFn: viewsFn,
	}
	debugValidateRewriting(out)
	return out
}

// reachTargets returns the A_d states j such that some word w ∈ L(view)
// drives ad from state i to j, via BFS over the product of the ε-free
// view NFA and ad.
func reachTargets(view *automata.NFA, ad *automata.DFA, i automata.State) []automata.State {
	if view.Start() == automata.NoState {
		return nil
	}
	// view symbols are over the same Σ alphabet as ad by construction.
	type pair struct{ v, d automata.State }
	seen := map[pair]bool{}
	queue := []pair{{view.Start(), i}}
	seen[queue[0]] = true
	targetSet := map[automata.State]bool{}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if view.Accepting(p.v) {
			targetSet[p.d] = true
		}
		for _, x := range view.OutSymbols(p.v) { //mapiter:unordered BFS over a set; targets are sorted before return
			d := ad.Next(p.d, x)
			if d == automata.NoState {
				continue // cannot happen on a total A_d; kept for safety
			}
			for _, t := range view.Successors(p.v, x) {
				np := pair{t, d}
				if !seen[np] {
					seen[np] = true
					queue = append(queue, np)
				}
			}
		}
	}
	out := make([]automata.State, 0, len(targetSet))
	for j := range targetSet {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// NFA returns the rewriting as a trim NFA over Σ_E.
func (r *Rewriting) NFA() *automata.NFA {
	return r.Auto.TrimPartial().NFA()
}

// Regex returns the rewriting as a simplified regular expression over
// Σ_E (state elimination on the trimmed automaton).
func (r *Rewriting) Regex() *regex.Node {
	return regex.Simplify(regex.FromDFA(r.Auto.Minimize().TrimPartial()))
}

// MinimalDFA returns the canonical minimal DFA of the rewriting,
// the size measure used by the Theorem 8 experiments.
func (r *Rewriting) MinimalDFA() *automata.DFA {
	return r.Auto.Minimize().TrimPartial()
}

// Accepts reports whether the Σ_E-word (by view names) is in L(R).
func (r *Rewriting) Accepts(viewNames ...string) bool {
	return r.Auto.AcceptsNames(viewNames...)
}

// IsEmpty reports Σ_E-emptiness: L(R) = ∅ (Section 3.2).
func (r *Rewriting) IsEmpty() bool {
	return r.Auto.TrimPartial().NFA().IsEmpty()
}

// IsSigmaEmpty reports Σ-emptiness: exp(L(R)) = ∅ (Section 3.2). It
// differs from IsEmpty exactly when every word of L(R) uses some view
// whose language is empty: such words expand to nothing.
func (r *Rewriting) IsSigmaEmpty() bool {
	// Restrict R to view symbols whose language is non-empty; the
	// restricted language is empty iff the expansion is.
	return r.restrictToLiveViews().IsEmpty()
}

// ShortestWord returns a shortest Σ_E-word in L(R) whose expansion is
// non-empty, or ok=false if exp(L(R)) = ∅.
func (r *Rewriting) ShortestWord() ([]alphabet.Symbol, bool) {
	return r.restrictToLiveViews().ShortestWord()
}

// restrictToLiveViews returns R with every transition on a view whose
// language is empty removed: words of the restricted automaton are
// exactly the words of L(R) with a non-empty expansion.
func (r *Rewriting) restrictToLiveViews() *automata.NFA {
	restricted := automata.NewNFA(r.sigmaE)
	restricted.AddStates(r.Auto.NumStates())
	restricted.SetStart(r.Auto.Start())
	for s := 0; s < r.Auto.NumStates(); s++ { //budget:exempt state-preserving restriction of the already-admitted rewriting DFA; transitions only shrink
		restricted.SetAccept(automata.State(s), r.Auto.Accepting(automata.State(s)))
		for _, e := range r.sigmaE.Symbols() {
			v := r.Views()[e]
			if v == nil || v.IsEmpty() {
				continue
			}
			if t := r.Auto.Next(automata.State(s), e); t != automata.NoState {
				restricted.AddTransition(automata.State(s), e, t)
			}
		}
	}
	return restricted
}

// Views returns the compiled ε-free view NFAs keyed by Σ_E symbol,
// materializing them on first use when the rewriting was built with a
// lazy view supplier.
func (r *Rewriting) Views() map[alphabet.Symbol]*automata.NFA {
	if r.views == nil && r.viewsFn != nil {
		r.views = r.viewsFn()
		for e, v := range r.views { //mapiter:unordered in-place normalization; no ordering is observable
			if v != nil && v.HasEpsilon() {
				r.views[e] = v.RemoveEpsilon()
			}
		}
	}
	return r.views
}
