// Package cliobs wires the observability flags shared by the CLIs:
// -trace FILE writes the pipeline's span tree as JSON, -metrics prints
// per-stage counters in Prometheus text format, and -strategy forces
// the adaptive dispatcher's choices (internal/strategy syntax, same as
// the REGEXRW_STRATEGY environment variable) for ablations. All attach
// to the run's context, so every ...Context entry point downstream
// records into them; the outputs are emitted by a deferred finish
// function, so a run that fails mid-pipeline (budget exhaustion,
// deadline) still leaves its partial trace — which is exactly when a
// trace is most wanted.
package cliobs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"regexrw/internal/obs"
	"regexrw/internal/strategy"
)

// Flags holds the observability flag values of one CLI run.
type Flags struct {
	TracePath string
	Metrics   bool
	Strategy  string
}

// Register declares -trace, -metrics and -strategy on the flag set.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TracePath, "trace", "", "write a JSON trace of the pipeline stages to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "print pipeline metrics (Prometheus text format) to stderr at exit")
	fs.StringVar(&f.Strategy, "strategy", "", "force strategy choices, e.g. \"fanout=seq,kernel=dense,exactness=fly\" (see internal/strategy)")
}

// Install attaches a tracer and/or metrics registry to ctx per the
// flags and returns the derived context plus a finish function to
// defer: it writes the trace file and prints the metrics, reporting
// problems on stderr. With both flags off it returns ctx unchanged and
// a no-op finish.
func (f *Flags) Install(ctx context.Context, stderr io.Writer) (context.Context, func()) {
	var tracer *obs.Tracer
	var reg *obs.Registry
	if f.Strategy != "" {
		cfg, err := strategy.Parse(f.Strategy)
		if err != nil {
			fmt.Fprintln(stderr, "strategy:", err)
		}
		// Parse is clause-tolerant: known clauses apply even when an
		// unknown one was reported above, matching REGEXRW_STRATEGY.
		ctx = strategy.With(ctx, cfg)
	}
	if f.TracePath != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	if f.Metrics {
		reg = obs.NewRegistry()
		ctx = obs.WithMetrics(ctx, reg)
	}
	finish := func() {
		if tracer != nil {
			if err := writeTraceFile(f.TracePath, tracer); err != nil {
				fmt.Fprintln(stderr, "trace:", err)
			}
		}
		if reg != nil {
			fmt.Fprintln(stderr, "# per-run pipeline metrics")
			if err := reg.WritePrometheus(stderr); err != nil {
				fmt.Fprintln(stderr, "metrics:", err)
			}
			WriteGlobalMetrics(stderr)
		}
	}
	return ctx, finish
}

// WriteGlobalMetrics prints the process-wide registry (automata cache
// counters and other context-free metrics) in Prometheus text format.
func WriteGlobalMetrics(w io.Writer) {
	fmt.Fprintln(w, "# process-wide metrics")
	if err := obs.Default.WritePrometheus(w); err != nil {
		fmt.Fprintln(w, "metrics:", err)
	}
}

func writeTraceFile(path string, t *obs.Tracer) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
