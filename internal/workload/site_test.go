package workload

import (
	"math/rand"
	"testing"

	"regexrw/internal/rpq"
)

func TestSiteGeneratorShape(t *testing.T) {
	tt := SiteTheory()
	cfg := DefaultSiteConfig(1)
	db := Site(rand.New(rand.NewSource(1)), tt, cfg)
	// root + regions + cities + districts + venues.
	wantNodes := 1 + cfg.Regions + cfg.Regions*cfg.CitiesPerRgn*(2+cfg.VenuesPerCity)
	if db.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", db.NumNodes(), wantNodes)
	}
	if db.NumEdges() <= cfg.Regions {
		t.Fatal("too few edges")
	}
}

func TestSiteDeterministic(t *testing.T) {
	tt := SiteTheory()
	a := Site(rand.New(rand.NewSource(7)), tt, DefaultSiteConfig(1))
	b := Site(rand.New(rand.NewSource(7)), tt, DefaultSiteConfig(1))
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("site generation not deterministic")
	}
}

func TestSiteQueryAndViewsExact(t *testing.T) {
	tt := SiteTheory()
	q0, err := SiteQuery()
	if err != nil {
		t.Fatal(err)
	}
	views, err := SiteViews()
	if err != nil {
		t.Fatal(err)
	}
	r, err := rpq.Rewrite(q0, views, tt, rpq.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.IsExact(); !ok {
		t.Fatal("site rewriting should be exact")
	}
	db := Site(rand.New(rand.NewSource(2)), tt, DefaultSiteConfig(1))
	direct := q0.Answer(tt, db)
	via := r.AnswerUsingViews(db)
	if len(direct) == 0 {
		t.Fatal("query should have answers")
	}
	if len(direct) != len(via) {
		t.Fatalf("answers differ: %d direct vs %d via views", len(direct), len(via))
	}
	// Answers land on venues only.
	for _, p := range direct {
		if db.NodeName(p.From) != "root" {
			t.Fatalf("answer pair should start at root, got %s", db.NodeName(p.From))
		}
	}
}
