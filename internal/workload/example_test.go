package workload_test

import (
	"fmt"

	"regexrw/internal/core"
	"regexrw/internal/workload"
)

// The Theorem 8 family: polynomial input, exponential rewriting.
func ExampleCounterFamily() {
	inst := workload.CounterFamily(2)
	r := core.MaximalRewriting(inst)
	fmt.Println("rewriting DFA states:", r.MinimalDFA().NumStates())
	fmt.Println("counter word accepted:", r.Accepts(workload.CounterWord(2)...))
	// Output:
	// rewriting DFA states: 13
	// counter word accepted: true
}

func ExampleChainFamily() {
	inst := workload.ChainFamily(3)
	r := core.MaximalRewriting(inst)
	exact, _ := r.IsExact()
	fmt.Println(r.Regex(), exact)
	// Output:
	// v1·v2·v3 true
}
