package workload

import (
	"fmt"
	"math/rand"

	"regexrw/internal/core"
	"regexrw/internal/graph"
	"regexrw/internal/regex"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// ExprConfig controls random regular-expression generation.
type ExprConfig struct {
	Symbols  []string // alphabet to draw leaves from
	MaxDepth int      // maximum AST depth
	StarProb float64  // probability of a star/opt node at each level
}

// DefaultExprConfig returns a configuration over the given symbols.
func DefaultExprConfig(symbols ...string) ExprConfig {
	return ExprConfig{Symbols: symbols, MaxDepth: 4, StarProb: 0.25}
}

// RandomExpr generates a random regular expression. The distribution
// favours concatenations and unions, with stars/options appearing with
// StarProb; leaves are symbols (ε with small probability).
func RandomExpr(r *rand.Rand, cfg ExprConfig) *regex.Node {
	if cfg.MaxDepth <= 0 || r.Float64() < 0.3 {
		if r.Float64() < 0.05 {
			return regex.Epsilon()
		}
		return regex.Sym(cfg.Symbols[r.Intn(len(cfg.Symbols))])
	}
	sub := cfg
	sub.MaxDepth--
	if r.Float64() < cfg.StarProb {
		if r.Intn(2) == 0 {
			return regex.Star(RandomExpr(r, sub))
		}
		return regex.Opt(RandomExpr(r, sub))
	}
	k := 2 + r.Intn(2)
	subs := make([]*regex.Node, k)
	for i := range subs {
		subs[i] = RandomExpr(r, sub)
	}
	if r.Intn(2) == 0 {
		return regex.Concat(subs...)
	}
	return regex.Union(subs...)
}

// InstanceConfig controls random rewriting-instance generation.
type InstanceConfig struct {
	AlphabetSize int
	NumViews     int
	QueryDepth   int
	ViewDepth    int
}

// RandomInstance generates a random rewriting instance: a query and
// views over an alphabet x1…xk. Deterministic given the rand source.
func RandomInstance(r *rand.Rand, cfg InstanceConfig) *core.Instance {
	symbols := make([]string, cfg.AlphabetSize)
	for i := range symbols {
		symbols[i] = fmt.Sprintf("x%d", i+1)
	}
	qcfg := DefaultExprConfig(symbols...)
	qcfg.MaxDepth = cfg.QueryDepth
	vcfg := DefaultExprConfig(symbols...)
	vcfg.MaxDepth = cfg.ViewDepth

	views := make([]core.View, cfg.NumViews)
	for i := range views {
		views[i] = core.View{Name: fmt.Sprintf("v%d", i+1), Expr: RandomExpr(r, vcfg)}
	}
	inst, err := core.NewInstance(RandomExpr(r, qcfg), views)
	if err != nil {
		panic(err)
	}
	return inst
}

// GraphConfig controls random database generation.
type GraphConfig struct {
	Nodes  int
	Edges  int
	Labels []string
}

// RandomGraph generates a random labeled multigraph.
func RandomGraph(r *rand.Rand, cfg GraphConfig) *graph.DB {
	db := graph.New(nil)
	for i := 0; i < cfg.Nodes; i++ {
		db.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < cfg.Edges; i++ {
		from := fmt.Sprintf("n%d", r.Intn(cfg.Nodes))
		to := fmt.Sprintf("n%d", r.Intn(cfg.Nodes))
		db.AddEdge(from, cfg.Labels[r.Intn(len(cfg.Labels))], to)
	}
	return db
}

// TheoryConfig controls random interpretation generation.
type TheoryConfig struct {
	Constants  int
	Predicates int
	// Density is the probability that a predicate holds of a constant.
	Density float64
}

// RandomTheory generates a random finite interpretation with constants
// d1…dn and predicates p1…pm.
func RandomTheory(r *rand.Rand, cfg TheoryConfig) *theory.Interpretation {
	t := theory.New()
	names := make([]string, cfg.Constants)
	for i := range names {
		names[i] = fmt.Sprintf("d%d", i+1)
		t.AddConstant(names[i])
	}
	for p := 0; p < cfg.Predicates; p++ {
		pred := fmt.Sprintf("p%d", p+1)
		for _, c := range names {
			if r.Float64() < cfg.Density {
				t.Declare(pred, c)
			}
		}
	}
	return t
}

// RandomRPQ generates a random regular path query over the theory's
// predicates and constants: the formula pool mixes predicates,
// equalities and simple boolean combinations.
func RandomRPQ(r *rand.Rand, t *theory.Interpretation, depth int) *rpq.Query {
	preds := t.Predicates()
	domain := t.Domain()

	randomFormula := func() theory.Formula {
		switch r.Intn(5) {
		case 0:
			if domain.Len() > 0 {
				return theory.Eq(domain.Name(domain.Symbols()[r.Intn(domain.Len())]))
			}
			return theory.True()
		case 1:
			if len(preds) > 0 {
				return theory.Not(theory.Pred(preds[r.Intn(len(preds))]))
			}
			return theory.True()
		case 2:
			if len(preds) >= 2 {
				return theory.Or(theory.Pred(preds[r.Intn(len(preds))]), theory.Pred(preds[r.Intn(len(preds))]))
			}
			return theory.True()
		default:
			if len(preds) > 0 {
				return theory.Pred(preds[r.Intn(len(preds))])
			}
			return theory.True()
		}
	}

	numFormulas := 2 + r.Intn(3)
	names := make([]string, numFormulas)
	formulas := make(map[string]theory.Formula, numFormulas)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i+1)
		formulas[names[i]] = randomFormula()
	}
	cfg := DefaultExprConfig(names...)
	cfg.MaxDepth = depth
	expr := RandomExpr(r, cfg)
	q, err := rpq.NewQuery(expr, formulas)
	if err != nil {
		// RandomExpr only uses symbols from names, all defined.
		panic(err)
	}
	return q
}
