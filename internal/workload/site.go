package workload

import (
	"fmt"
	"math/rand"

	"regexrw/internal/graph"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// SiteConfig controls the synthetic web-site generator: a rooted
// hierarchy (root → region → city → venue) with noisy cross links —
// the shape of the semi-structured sources the paper's introduction
// motivates (web information systems, digital libraries).
type SiteConfig struct {
	Regions        int
	CitiesPerRgn   int
	VenuesPerCity  int
	CrossLinkNoise int // extra random related-to links
}

// DefaultSiteConfig returns a configuration scaled by a factor k ≥ 1.
// Cross-link noise grows quadratically, mirroring the dense tangle of
// "see also" links real web graphs accumulate relative to their
// navigational backbone.
func DefaultSiteConfig(k int) SiteConfig {
	return SiteConfig{
		Regions:        2 * k,
		CitiesPerRgn:   3 * k,
		VenuesPerCity:  4,
		CrossLinkNoise: 40 * k * k,
	}
}

// SiteTheory returns the interpretation used by Site: edge labels
// region/city/district/restaurant/hotel/related, with predicates
// venue = {restaurant, hotel} and nav = {region, city, district}.
func SiteTheory() *theory.Interpretation {
	t := theory.New()
	t.AddConstants("region", "city", "district", "restaurant", "hotel", "related")
	t.Declare("venue", "restaurant", "hotel")
	t.Declare("nav", "region", "city", "district")
	return t
}

// Site generates a deterministic synthetic travel site over SiteTheory's
// domain.
func Site(r *rand.Rand, t *theory.Interpretation, cfg SiteConfig) *graph.DB {
	db := graph.New(t.Domain())
	db.AddNode("root")
	var cities []string
	for reg := 0; reg < cfg.Regions; reg++ {
		regName := fmt.Sprintf("region%d", reg)
		db.AddEdge("root", "region", regName)
		for c := 0; c < cfg.CitiesPerRgn; c++ {
			cityName := fmt.Sprintf("%s_city%d", regName, c)
			db.AddEdge(regName, "city", cityName)
			cities = append(cities, cityName)
			distName := cityName + "_centre"
			db.AddEdge(cityName, "district", distName)
			for v := 0; v < cfg.VenuesPerCity; v++ {
				kind := "restaurant"
				if v%2 == 1 {
					kind = "hotel"
				}
				db.AddEdge(distName, kind, fmt.Sprintf("%s_v%d", distName, v))
			}
		}
	}
	for i := 0; i < cfg.CrossLinkNoise && len(cities) > 1; i++ {
		a := cities[r.Intn(len(cities))]
		b := cities[r.Intn(len(cities))]
		if a != b {
			db.AddEdge(a, "related", b)
		}
	}
	return db
}

// SiteQuery is the benchmark query over Site: all pairs (root, venue)
// reachable by descending the hierarchy, allowing related-city hops.
func SiteQuery() (*rpq.Query, error) {
	return rpq.ParseQuery("reg·(cityHop)·dist·ven", map[string]string{
		"reg":     "=region",
		"cityHop": "=city", // refined by views below; kept simple here
		"dist":    "=district",
		"ven":     "venue",
	})
}

// SiteViews are the materialized views the site exports: navigation
// edges by kind and venue edges.
func SiteViews() ([]rpq.View, error) {
	mk := func(expr string, formulas map[string]string) (*rpq.Query, error) {
		return rpq.ParseQuery(expr, formulas)
	}
	vReg, err := mk("f", map[string]string{"f": "=region"})
	if err != nil {
		return nil, err
	}
	vCity, err := mk("f", map[string]string{"f": "=city"})
	if err != nil {
		return nil, err
	}
	vDist, err := mk("f", map[string]string{"f": "=district"})
	if err != nil {
		return nil, err
	}
	vVen, err := mk("f", map[string]string{"f": "venue"})
	if err != nil {
		return nil, err
	}
	return []rpq.View{
		{Name: "vReg", Query: vReg},
		{Name: "vCity", Query: vCity},
		{Name: "vDist", Query: vDist},
		{Name: "vVen", Query: vVen},
	}, nil
}
