package workload

import (
	"math/rand"
	"testing"

	"regexrw/internal/core"
	"regexrw/internal/rpq"
)

func TestRandomExprDeterministic(t *testing.T) {
	cfg := DefaultExprConfig("a", "b", "c")
	e1 := RandomExpr(rand.New(rand.NewSource(5)), cfg)
	e2 := RandomExpr(rand.New(rand.NewSource(5)), cfg)
	if !e1.Equal(e2) {
		t.Fatal("RandomExpr not deterministic for equal seeds")
	}
}

func TestRandomExprUsesOnlyConfiguredSymbols(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	cfg := DefaultExprConfig("a", "b")
	for i := 0; i < 30; i++ {
		e := RandomExpr(r, cfg)
		for _, s := range e.SymbolNames() {
			if s != "a" && s != "b" {
				t.Fatalf("unexpected symbol %q in %s", s, e)
			}
		}
	}
}

func TestRandomExprRespectsDepth(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := DefaultExprConfig("a")
	cfg.MaxDepth = 2
	for i := 0; i < 30; i++ {
		e := RandomExpr(r, cfg)
		// Depth ≤ 2 with ≤3-ary nodes bounds size by 1+3+9+... ≈ 13·k;
		// just sanity-check it is small.
		if e.Size() > 64 {
			t.Fatalf("expression too large for depth 2: %d nodes", e.Size())
		}
	}
}

func TestRandomInstanceValidAndRewritable(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 15; i++ {
		inst := RandomInstance(r, InstanceConfig{
			AlphabetSize: 3, NumViews: 2, QueryDepth: 3, ViewDepth: 2,
		})
		// The rewriting construction must succeed and be self-consistent.
		rw := core.MaximalRewriting(inst)
		exact, _ := rw.IsExact()
		if exact && rw.IsSigmaEmpty() && !inst.Query.Nullable() {
			// An exact rewriting of a language containing a nonempty word
			// cannot have an empty expansion unless L(E0) ⊆ {ε}.
			nfa := inst.Query.ToNFA(inst.Sigma())
			if w, ok := nfa.ShortestWord(); ok && len(w) > 0 {
				t.Fatalf("instance %d: exact but Σ-empty rewriting for nonempty query", i)
			}
		}
	}
}

func TestRandomGraphShape(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := RandomGraph(r, GraphConfig{Nodes: 10, Edges: 25, Labels: []string{"x", "y"}})
	if db.NumNodes() != 10 {
		t.Fatalf("nodes = %d", db.NumNodes())
	}
	if db.NumEdges() != 25 {
		t.Fatalf("edges = %d", db.NumEdges())
	}
	if db.Labels().Len() > 2 {
		t.Fatalf("labels = %v", db.Labels())
	}
}

func TestRandomTheoryShape(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	tt := RandomTheory(r, TheoryConfig{Constants: 6, Predicates: 3, Density: 0.5})
	if tt.Domain().Len() != 6 {
		t.Fatalf("domain = %d", tt.Domain().Len())
	}
	if len(tt.Predicates()) > 3 {
		t.Fatalf("predicates = %v", tt.Predicates())
	}
}

func TestRandomRPQEvaluates(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tt := RandomTheory(r, TheoryConfig{Constants: 5, Predicates: 3, Density: 0.4})
	labels := tt.Domain().Names()
	db := RandomGraph(r, GraphConfig{Nodes: 8, Edges: 20, Labels: labels})
	for i := 0; i < 10; i++ {
		q := RandomRPQ(r, tt, 3)
		a := q.Answer(tt, db)
		b := q.AnswerDirect(tt, db)
		if len(a) != len(b) {
			t.Fatalf("query %d: grounded %d vs direct %d answers", i, len(a), len(b))
		}
	}
}

func TestRandomRPQRewrites(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	tt := RandomTheory(r, TheoryConfig{Constants: 4, Predicates: 2, Density: 0.5})
	for i := 0; i < 5; i++ {
		q0 := RandomRPQ(r, tt, 2)
		views := []rpq.View{
			{Name: "u1", Query: RandomRPQ(r, tt, 2)},
			{Name: "u2", Query: RandomRPQ(r, tt, 2)},
		}
		if _, err := rpq.Rewrite(q0, views, tt, rpq.Grounded); err != nil {
			t.Fatalf("rewrite %d failed: %v", i, err)
		}
	}
}
