// Package workload generates the problem instances used by the
// experiment harness and the benchmarks: the paper's lower-bound
// families (Theorems 7 and 8), determinization-blowup families, benign
// chain families with known exact rewritings, and seeded random
// instances for scaling sweeps.
package workload

import (
	"fmt"

	"regexrw/internal/core"
	"regexrw/internal/regex"
)

// DetBlowupFamily returns the instance E0 = (a+b)*·a·(a+b)^{n-1} with
// elementary views for a and b. The maximal rewriting is the same
// language over Σ_E, whose minimal DFA has 2^n states while the input
// has size O(n): the determinization-driven half of the Theorem 8
// story (the rewriting still has a short regular expression).
func DetBlowupFamily(n int) *core.Instance {
	if n < 1 {
		panic("workload: DetBlowupFamily needs n ≥ 1")
	}
	anyAB := regex.Union(regex.Sym("a"), regex.Sym("b"))
	parts := []*regex.Node{regex.Star(anyAB), regex.Sym("a")}
	for i := 1; i < n; i++ {
		parts = append(parts, anyAB)
	}
	inst, err := core.NewInstance(regex.Concat(parts...), []core.View{
		{Name: "va", Expr: regex.Sym("a")},
		{Name: "vb", Expr: regex.Sym("b")},
	})
	if err != nil {
		panic(err)
	}
	return inst
}

// CounterFamily builds the Theorem 8 construction: a polynomial-size
// instance whose Σ_E-maximal rewriting, restricted to well-structured
// words, is the single word spelling an n-bit binary counter counting
// 0 … 2^n−1 (each number LSB-first) — a word of length n·2^n. Any
// automaton or regular expression for the rewriting therefore has size
// ≥ 2^n/poly(n).
//
// Encoding. Σ = {c0, c1, h, l}: each "block" is a value symbol (c0/c1)
// followed by a highlight flag (h/l). The two views expand a bit to a
// block with a free choice of highlight:
//
//	re(v0) = c0·(h+l)        re(v1) = c1·(h+l)
//
// so the expansions of a Σ_E-word range over all ways of highlighting
// its blocks — the universal quantification over expansions becomes a
// universal quantification over which single pair of blocks E0 gets to
// compare. E0 is a union of three groups:
//
//	E_hl     — accepts every expansion whose highlighting is unusable
//	           (≠ 2 highlights, or the two not exactly n blocks apart);
//	E_struct — accepts (any highlighting of) structurally bad words:
//	           block count ≢ 0 (mod n), a 1-bit in the first number, or
//	           a 0-bit in the last number;
//	E_check  — accepts expansions with a proper highlighted pair whose
//	           two bits satisfy the ripple-carry increment relation:
//	           with j = the pair's bit position, the bit flips iff bits
//	           0…j−1 of the earlier number are all 1.
//
// A word u is in the rewriting iff every expansion is accepted: for the
// counter word every comparison succeeds; for a structurally good word
// with an increment error, highlighting the offending pair yields a
// rejected expansion. The rewriting is exactly
// {structurally bad words} ∪ {ε} ∪ {counter word}, whose automaton
// must be exponential because intersecting it with the polynomial
// "structurally good, nonempty" language leaves the singleton counter
// word of length n·2^n.
func CounterFamily(n int) *core.Instance {
	return counterFamily(n, false)
}

func counterFamily(n int, sabotage bool) *core.Instance {
	if n < 1 {
		panic("workload: CounterFamily needs n ≥ 1")
	}
	c0, c1 := regex.Sym("c0"), regex.Sym("c1")
	hl := regex.Union(regex.Sym("h"), regex.Sym("l"))
	block := regex.Concat(regex.Union(c0, c1), hl)                // B: any block
	blockLow := regex.Concat(regex.Union(c0, c1), regex.Sym("l")) // Bl
	blockHi := regex.Concat(regex.Union(c0, c1), regex.Sym("h"))  // Bh
	block1 := regex.Concat(c1, hl)                                // value-1 block
	block0 := regex.Concat(c0, hl)                                // value-0 block
	valHi := func(bit int) *regex.Node {                          // highlighted block with value bit
		if bit == 1 {
			return regex.Concat(c1, regex.Sym("h"))
		}
		return regex.Concat(c0, regex.Sym("h"))
	}
	rep := func(node *regex.Node, k int) []*regex.Node {
		out := make([]*regex.Node, k)
		for i := range out {
			out[i] = node
		}
		return out
	}
	blocks := func(k int) *regex.Node { return regex.Concat(rep(block, k)...) }
	alignedSkip := regex.Star(blocks(n)) // (B^n)*

	var branches []*regex.Node

	// E_hl: unusable highlightings.
	branches = append(branches,
		regex.Star(blockLow), // zero highlights
		regex.Concat(regex.Star(blockLow), blockHi, regex.Star(blockLow)), // one highlight
		regex.Concat(regex.Star(block), blockHi, regex.Star(block), blockHi,
			regex.Star(block), blockHi, regex.Star(block)), // ≥3 highlights
	)
	for d := 1; d < n; d++ { // two highlights, distance d < n
		branches = append(branches, regex.Concat(
			regex.Star(blockLow), blockHi,
			regex.Concat(rep(blockLow, d-1)...), blockHi,
			regex.Star(blockLow)))
	}
	// two highlights, distance > n
	branches = append(branches, regex.Concat(
		regex.Star(blockLow), blockHi,
		regex.Concat(rep(blockLow, n)...), regex.Star(blockLow), blockHi,
		regex.Star(blockLow)))

	// E_struct: structurally bad words (any highlighting).
	for r := 1; r < n; r++ { // block count ≢ 0 (mod n)
		branches = append(branches, regex.Concat(alignedSkip, blocks(r)))
	}
	for j := 0; j < n; j++ { // a 1-bit in the first number
		branches = append(branches, regex.Concat(blocks(j), block1, regex.Star(block)))
	}
	for j := 0; j < n; j++ { // a 0-bit in the last number
		branches = append(branches, regex.Concat(alignedSkip, blocks(j), block0, blocks(n-1-j)))
	}
	// An all-ones number before the end: the counter would wrap around
	// (…, 2^n−1, 0, …), so the all-ones number must be last.
	branches = append(branches, regex.Concat(
		alignedSkip, regex.Concat(rep(block1, n)...), block, regex.Star(block)))

	// E_check: a proper highlighted pair satisfying the increment
	// relation. The pair sits at bit position j of consecutive numbers.
	// Under sabotage the j = 0 branches are dropped: no comparison at
	// bit 0 can ever be certified, so every structurally good word has
	// a rejected expansion and the rewriting keeps no counter word.
	startJ := 0
	if sabotage {
		startJ = 1
	}
	for j := startJ; j < n; j++ {
		for b := 0; b <= 1; b++ {
			// Carry into position j is 1 (bits 0…j−1 all 1): bit flips.
			branches = append(branches, regex.Concat(
				alignedSkip,
				regex.Concat(rep(block1, j)...),
				valHi(b), blocks(n-1), valHi(1-b),
				regex.Star(block)))
			// Carry is 0 (some 0 among bits 0…j−1): bit stays.
			for p := 0; p < j; p++ {
				branches = append(branches, regex.Concat(
					alignedSkip,
					blocks(p), block0, blocks(j-1-p),
					valHi(b), blocks(n-1), valHi(b),
					regex.Star(block)))
			}
		}
	}

	inst, err := core.NewInstance(regex.Union(branches...), []core.View{
		{Name: "v0", Expr: regex.Concat(c0, hl)},
		{Name: "v1", Expr: regex.Concat(c1, hl)},
	})
	if err != nil {
		panic(err)
	}
	return inst
}

// CounterWord returns the Σ_E-word (over view names v0/v1) spelling the
// n-bit counter 0 … 2^n−1, each number LSB-first: the single
// structurally good word in the rewriting of CounterFamily(n). Its
// length is n·2^n.
func CounterWord(n int) []string {
	out := make([]string, 0, n<<uint(n))
	for i := 0; i < 1<<uint(n); i++ {
		for j := 0; j < n; j++ {
			if i>>uint(j)&1 == 1 {
				out = append(out, "v1")
			} else {
				out = append(out, "v0")
			}
		}
	}
	return out
}

// SabotagedCounterFamily is CounterFamily with the increment checks at
// bit position 0 removed, so that no expansion highlighting a bit-0
// pair is ever certified: every structurally good word (which has at
// least two numbers, hence a bit-0 pair to highlight) acquires a
// rejected expansion and the rewriting contains no structurally good
// word. It is the "rejecting machine" side of the Theorem 7
// experiment: deciding whether the rewriting meets the structurally
// good language mirrors deciding acceptance of the encoded computation.
func SabotagedCounterFamily(n int) *core.Instance {
	return counterFamily(n, true)
}

// ChainFamily returns the benign instance E0 = x1·x2·…·xk with one
// elementary view per symbol: the rewriting is the single word
// v1·v2·…·vk and is exact. Used for best-case scaling sweeps.
func ChainFamily(k int) *core.Instance {
	parts := make([]*regex.Node, k)
	views := make([]core.View, k)
	for i := 0; i < k; i++ {
		sym := fmt.Sprintf("x%d", i+1)
		parts[i] = regex.Sym(sym)
		views[i] = core.View{Name: fmt.Sprintf("v%d", i+1), Expr: regex.Sym(sym)}
	}
	inst, err := core.NewInstance(regex.Concat(parts...), views)
	if err != nil {
		panic(err)
	}
	return inst
}

// PairChainFamily returns E0 = x1·…·x2k with views covering adjacent
// pairs (v_i = x_{2i-1}·x_{2i}): exact rewriting v1·…·vk. Exercises
// non-elementary views in sweeps.
func PairChainFamily(k int) *core.Instance {
	parts := make([]*regex.Node, 2*k)
	for i := range parts {
		parts[i] = regex.Sym(fmt.Sprintf("x%d", i+1))
	}
	views := make([]core.View, k)
	for i := 0; i < k; i++ {
		views[i] = core.View{
			Name: fmt.Sprintf("v%d", i+1),
			Expr: regex.Concat(regex.Sym(fmt.Sprintf("x%d", 2*i+1)), regex.Sym(fmt.Sprintf("x%d", 2*i+2))),
		}
	}
	inst, err := core.NewInstance(regex.Concat(parts...), views)
	if err != nil {
		panic(err)
	}
	return inst
}

// StructurallyGoodWords returns a regular expression over the
// CounterFamily view alphabet {v0, v1} denoting the structurally good
// Σ_E-words with at least two numbers: block count ≡ 0 (mod n), first
// number all v0, last number all v1, and no all-v1 number before the
// last (no counter wrap-around). Intersecting it with the
// CounterFamily rewriting isolates the single counter word.
func StructurallyGoodWords(n int) *regex.Node {
	v0, v1 := regex.Sym("v0"), regex.Sym("v1")
	anyV := regex.Union(v0, v1)
	rep := func(node *regex.Node, k int) []*regex.Node {
		out := make([]*regex.Node, k)
		for i := range out {
			out[i] = node
		}
		return out
	}
	// A middle number contains at least one v0.
	var middles []*regex.Node
	for p := 0; p < n; p++ {
		parts := append(rep(anyV, p), v0)
		parts = append(parts, rep(anyV, n-1-p)...)
		middles = append(middles, regex.Concat(parts...))
	}
	return regex.Concat(regex.Concat(rep(v0, n)...),
		regex.Star(regex.Union(middles...)),
		regex.Concat(rep(v1, n)...))
}
