package workload

import (
	"fmt"
	"testing"

	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/language"
)

func TestDetBlowupFamily(t *testing.T) {
	for n := 1; n <= 6; n++ {
		inst := DetBlowupFamily(n)
		r := core.MaximalRewriting(inst)
		got := r.MinimalDFA().NumStates()
		if got != 1<<uint(n) {
			t.Errorf("n=%d: minimal rewriting DFA has %d states, want %d", n, got, 1<<uint(n))
		}
		// The rewriting is exact: elementary views reproduce E0.
		if ok, _ := r.IsExact(); !ok {
			t.Errorf("n=%d: rewriting should be exact", n)
		}
	}
}

func TestCounterWordShape(t *testing.T) {
	w := CounterWord(2)
	// 0=00, 1=10, 2=01, 3=11 (LSB first).
	want := []string{"v0", "v0", "v1", "v0", "v0", "v1", "v1", "v1"}
	if len(w) != len(want) {
		t.Fatalf("CounterWord(2) = %v", w)
	}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("CounterWord(2) = %v, want %v", w, want)
		}
	}
	if got := len(CounterWord(4)); got != 4*16 {
		t.Fatalf("CounterWord(4) length = %d, want 64", got)
	}
}

// TestCounterFamilyAcceptsExactlyTheCounter is the heart of the THM8
// experiment: within the structurally good words, the rewriting keeps
// exactly the counter word.
func TestCounterFamilyAcceptsExactlyTheCounter(t *testing.T) {
	for n := 1; n <= 3; n++ {
		inst := CounterFamily(n)
		r := core.MaximalRewriting(inst)

		cw := CounterWord(n)
		if !r.Accepts(cw...) {
			t.Fatalf("n=%d: counter word rejected", n)
		}

		// Intersect the rewriting with the structurally good words: the
		// result must be the singleton {counter word}.
		good := StructurallyGoodWords(n).ToNFA(inst.SigmaE().Clone())
		inter := automata.Intersect(r.NFA(), good)
		words := language.Enumerate(inter, len(cw)+2*n, 0)
		if len(words) != 1 {
			t.Fatalf("n=%d: %d structurally good rewriting words, want 1", n, len(words))
		}
		if len(words[0]) != len(cw) {
			t.Fatalf("n=%d: surviving word has length %d, want %d", n, len(words[0]), len(cw))
		}
		for i, s := range words[0] {
			if inst.SigmaE().Name(s) != cw[i] {
				t.Fatalf("n=%d: surviving word differs from the counter word at %d", n, i)
			}
		}
	}
}

func TestCounterFamilyRejectsMutations(t *testing.T) {
	for n := 2; n <= 3; n++ {
		inst := CounterFamily(n)
		r := core.MaximalRewriting(inst)
		goodLang := StructurallyGoodWords(n).ToNFA(inst.SigmaE().Clone())
		cw := CounterWord(n)
		// Flip every symbol position in turn. A mutation that keeps the
		// word structurally good must break an increment and be rejected;
		// a mutation that breaks structure (e.g. creates an early
		// all-ones number) makes every expansion vacuously accepted, so
		// the word stays in the rewriting.
		for i := 0; i < len(cw); i++ {
			mut := append([]string(nil), cw...)
			if mut[i] == "v0" {
				mut[i] = "v1"
			} else {
				mut[i] = "v0"
			}
			structGood := goodLang.AcceptsNames(mut...)
			accepted := r.Accepts(mut...)
			if structGood && accepted {
				t.Fatalf("n=%d: structurally good mutation at %d accepted", n, i)
			}
			if !structGood && !accepted {
				t.Fatalf("n=%d: structurally bad mutation at %d rejected", n, i)
			}
		}
	}
}

// TestCounterFamilySingletonByCounting strengthens the singleton claim
// beyond enumeration reach: for n up to 5, COUNT the structurally good
// rewriting words of every length up to n·2^n with big-integer DP —
// exactly one word (of exactly the counter length) must exist.
func TestCounterFamilySingletonByCounting(t *testing.T) {
	for n := 2; n <= 5; n++ {
		inst := CounterFamily(n)
		r := core.MaximalRewriting(inst)
		good := StructurallyGoodWords(n).ToNFA(inst.SigmaE().Clone())
		inter := automata.Determinize(automata.Intersect(r.NFA(), good)).TrimPartial()

		counterLen := n * (1 << uint(n))
		total := int64(0)
		for l := 0; l <= counterLen; l++ {
			c := language.CountDFA(inter, l)
			if !c.IsInt64() {
				t.Fatalf("n=%d: count overflow at length %d", n, l)
			}
			if c.Int64() > 0 && l != counterLen {
				t.Fatalf("n=%d: %d structurally good words of length %d ≠ %d",
					n, c.Int64(), l, counterLen)
			}
			total += c.Int64()
		}
		if total != 1 {
			t.Fatalf("n=%d: %d structurally good words ≤ counter length, want exactly 1", n, total)
		}
	}
}

func TestCounterFamilyGrowth(t *testing.T) {
	// Input grows polynomially; the minimal rewriting automaton must
	// grow at least like n·2^n (it traces the counter word).
	prevSize := 0
	for n := 1; n <= 5; n++ {
		inst := CounterFamily(n)
		r := core.MaximalRewriting(inst)
		size := r.MinimalDFA().NumStates()
		if size < n*(1<<uint(n)) {
			t.Errorf("n=%d: rewriting DFA %d states < n·2^n = %d", n, size, n*(1<<uint(n)))
		}
		if size <= prevSize {
			t.Errorf("n=%d: size %d did not grow (prev %d)", n, size, prevSize)
		}
		prevSize = size
	}
}

// TestSabotagedCounterFamily is the THM7 experiment shape: the
// accepting variant has a structurally good rewriting word, the
// sabotaged ("rejecting computation") variant has none.
func TestSabotagedCounterFamily(t *testing.T) {
	for n := 2; n <= 3; n++ {
		good := core.MaximalRewriting(CounterFamily(n))
		bad := core.MaximalRewriting(SabotagedCounterFamily(n))
		goodLang := StructurallyGoodWords(n).ToNFA(good.SigmaE().Clone())

		interGood := automata.Intersect(good.NFA(), goodLang)
		if interGood.IsEmpty() {
			t.Fatalf("n=%d: accepting variant lost its counter word", n)
		}
		interBad := automata.Intersect(bad.NFA(), goodLang)
		if !interBad.IsEmpty() {
			w, _ := interBad.ShortestWord()
			t.Fatalf("n=%d: sabotaged variant still has structurally good word of length %d", n, len(w))
		}
	}
}

func TestChainFamily(t *testing.T) {
	for _, k := range []int{1, 3, 6} {
		inst := ChainFamily(k)
		r := core.MaximalRewriting(inst)
		if ok, _ := r.IsExact(); !ok {
			t.Errorf("k=%d: chain rewriting should be exact", k)
		}
		want := make([]string, k)
		for i := range want {
			want[i] = fmt.Sprintf("v%d", i+1)
		}
		if !r.Accepts(want...) {
			t.Errorf("k=%d: v1…vk not accepted", k)
		}
	}
}

func TestPairChainFamily(t *testing.T) {
	inst := PairChainFamily(3) // x1..x6, views of pairs
	r := core.MaximalRewriting(inst)
	if ok, _ := r.IsExact(); !ok {
		t.Fatal("pair chain rewriting should be exact")
	}
	if !r.Accepts("v1", "v2", "v3") {
		t.Fatal("v1·v2·v3 not accepted")
	}
	if r.Accepts("v2", "v1", "v3") {
		t.Fatal("order should matter")
	}
}

func TestFamilyPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	CounterFamily(0)
}
