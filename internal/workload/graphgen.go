package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"regexrw/internal/alphabet"
	"regexrw/internal/graph"
)

// Graph generator families for the Section 4 evaluation workloads.
// All generators are deterministic: the structured families (grid,
// chain) take no randomness at all, and the random families are a pure
// function of their seed. They use the id-based fast path
// (graph.AddEdgeIDs) so million-edge databases build in well under a
// second.

// GridGraph builds a w×h directed grid: node g<x>_<y> has a
// right-labeled edge to g<x+1>_<y> and a down-labeled edge to
// g<x>_<y+1>. Grids exercise long shortest paths (diameter w+h) with
// bounded degree — the worst case for frontier depth.
func GridGraph(w, h int, right, down string) *graph.DB {
	db := graph.New(nil)
	ids := make([]graph.NodeID, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ids[y*w+x] = db.AddNode("g" + strconv.Itoa(x) + "_" + strconv.Itoa(y))
		}
	}
	r := db.Labels().Intern(right)
	d := db.Labels().Intern(down)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				db.AddEdgeIDs(ids[y*w+x], r, ids[y*w+x+1])
			}
			if y+1 < h {
				db.AddEdgeIDs(ids[y*w+x], d, ids[(y+1)*w+x])
			}
		}
	}
	return db
}

// ChainGraph builds a path c0 → c1 → … → cn of n edges whose labels
// cycle through the given list. Chains are the PathDB shape of
// Theorem 10 at scale: a single maximal-length path.
func ChainGraph(n int, labels []string) *graph.DB {
	if len(labels) == 0 {
		labels = []string{"a"}
	}
	db := graph.New(nil)
	ids := make([]graph.NodeID, n+1)
	for i := range ids {
		ids[i] = db.AddNode("c" + strconv.Itoa(i))
	}
	syms := make([]alphabet.Symbol, len(labels))
	for i, l := range labels {
		syms[i] = db.Labels().Intern(l)
	}
	for i := 0; i < n; i++ {
		db.AddEdgeIDs(ids[i], syms[i%len(syms)], ids[i+1])
	}
	return db
}

// PowerLawGraph builds a scale-free multigraph by preferential
// attachment: each of the edges picks a uniform source and a target
// drawn proportionally to in-degree (with a 10% uniform escape so
// isolated nodes stay reachable), labels drawn uniformly. The heavy
// tail gives a few hub nodes with enormous degree — the shape of real
// web/social graphs and the best case for frontier bitsets, whose
// dense rows absorb hub fan-out in word-sized chunks. Deterministic
// given the rand source.
func PowerLawGraph(r *rand.Rand, nodes, edges int, labels []string) *graph.DB {
	if len(labels) == 0 {
		labels = []string{"a", "b"}
	}
	db := graph.New(nil)
	ids := make([]graph.NodeID, nodes)
	for i := range ids {
		ids[i] = db.AddNode("p" + strconv.Itoa(i))
	}
	syms := make([]alphabet.Symbol, len(labels))
	for i, l := range labels {
		syms[i] = db.Labels().Intern(l)
	}
	// endpoints holds one entry per edge target so far; sampling from
	// it is sampling proportional to in-degree.
	endpoints := make([]graph.NodeID, 0, edges)
	for i := 0; i < edges; i++ {
		from := ids[r.Intn(nodes)]
		var to graph.NodeID
		if len(endpoints) == 0 || r.Float64() < 0.1 {
			to = ids[r.Intn(nodes)]
		} else {
			to = endpoints[r.Intn(len(endpoints))]
		}
		db.AddEdgeIDs(from, syms[r.Intn(len(syms))], to)
		endpoints = append(endpoints, to)
	}
	return db
}

// ParseGraphSpec builds a database from a compact generator spec, the
// format accepted by cmd/serve's -graph flag and the bench harness:
//
//	grid:WxH[:right,down]        — GridGraph
//	chain:N[:l1,l2,…]            — ChainGraph
//	powerlaw:N:E:SEED[:l1,l2,…]  — PowerLawGraph
//	random:N:E:SEED[:l1,l2,…]    — RandomGraph (uniform)
//
// Unknown generator names and malformed parameters are errors.
func ParseGraphSpec(spec string) (*graph.DB, error) {
	parts := strings.Split(spec, ":")
	bad := func(format string, args ...any) (*graph.DB, error) {
		return nil, fmt.Errorf("workload: graph spec %q: %s", spec, fmt.Sprintf(format, args...))
	}
	switch parts[0] {
	case "grid":
		if len(parts) < 2 || len(parts) > 3 {
			return bad("want grid:WxH[:right,down]")
		}
		dims := strings.SplitN(parts[1], "x", 2)
		if len(dims) != 2 {
			return bad("dimensions %q are not WxH", parts[1])
		}
		w, werr := strconv.Atoi(dims[0])
		h, herr := strconv.Atoi(dims[1])
		if werr != nil || herr != nil || w < 1 || h < 1 {
			return bad("dimensions %q are not positive integers", parts[1])
		}
		right, down := "right", "down"
		if len(parts) == 3 {
			labels := strings.Split(parts[2], ",")
			if len(labels) != 2 || labels[0] == "" || labels[1] == "" {
				return bad("want exactly two labels, got %q", parts[2])
			}
			right, down = labels[0], labels[1]
		}
		return GridGraph(w, h, right, down), nil
	case "chain":
		if len(parts) < 2 || len(parts) > 3 {
			return bad("want chain:N[:labels]")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 0 {
			return bad("length %q is not a non-negative integer", parts[1])
		}
		var labels []string
		if len(parts) == 3 {
			labels = splitLabels(parts[2])
			if labels == nil {
				return bad("empty label in %q", parts[2])
			}
		}
		return ChainGraph(n, labels), nil
	case "powerlaw", "random":
		if len(parts) < 4 || len(parts) > 5 {
			return bad("want %s:N:E:SEED[:labels]", parts[0])
		}
		n, nerr := strconv.Atoi(parts[1])
		e, eerr := strconv.Atoi(parts[2])
		seed, serr := strconv.ParseInt(parts[3], 10, 64)
		if nerr != nil || eerr != nil || serr != nil || n < 1 || e < 0 {
			return bad("parameters %q are not N:E:SEED", strings.Join(parts[1:4], ":"))
		}
		labels := []string{"a", "b"}
		if len(parts) == 5 {
			labels = splitLabels(parts[4])
			if labels == nil {
				return bad("empty label in %q", parts[4])
			}
		}
		r := rand.New(rand.NewSource(seed))
		if parts[0] == "powerlaw" {
			return PowerLawGraph(r, n, e, labels), nil
		}
		return RandomGraph(r, GraphConfig{Nodes: n, Edges: e, Labels: labels}), nil
	default:
		return bad("unknown generator %q (want grid, chain, powerlaw or random)", parts[0])
	}
}

// IsGraphSpec reports whether the string names a known generator —
// callers with path-or-spec inputs (cmd/serve's -graph flag) use it to
// decide between ParseGraphSpec and reading a file.
func IsGraphSpec(spec string) bool {
	head, _, ok := strings.Cut(spec, ":")
	if !ok {
		return false
	}
	switch head {
	case "grid", "chain", "powerlaw", "random":
		return true
	}
	return false
}

// splitLabels splits a comma list, rejecting empty entries.
func splitLabels(s string) []string {
	labels := strings.Split(s, ",")
	for _, l := range labels {
		if l == "" {
			return nil
		}
	}
	return labels
}
