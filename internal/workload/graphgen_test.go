package workload

import (
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/graph"
)

func TestGridGraphShape(t *testing.T) {
	db := GridGraph(4, 3, "right", "down")
	if db.NumNodes() != 12 {
		t.Fatalf("4x3 grid: want 12 nodes, got %d", db.NumNodes())
	}
	// Horizontal edges: (w-1)*h; vertical: w*(h-1).
	if want := 3*3 + 4*2; db.NumEdges() != want {
		t.Fatalf("4x3 grid: want %d edges, got %d", want, db.NumEdges())
	}
	// Corner-to-corner: g0_0 reaches g3_2 via right*·down* among others.
	start := db.NodeID("g0_0")
	end := db.NodeID("g3_2")
	if start < 0 || end < 0 {
		t.Fatal("grid corner nodes missing")
	}
	right := db.Labels().Lookup("right")
	if right < 0 {
		t.Fatal("right label missing")
	}
	found := false
	for _, e := range db.Out(start) {
		if e.To == db.NodeID("g1_0") {
			found = true
		}
	}
	if !found {
		t.Fatal("g0_0 has no edge to g1_0")
	}
}

func TestChainGraphShape(t *testing.T) {
	db := ChainGraph(5, []string{"a", "b"})
	if db.NumNodes() != 6 || db.NumEdges() != 5 {
		t.Fatalf("chain(5): want 6 nodes / 5 edges, got %d / %d", db.NumNodes(), db.NumEdges())
	}
	// Labels cycle a, b, a, b, a.
	wantLabels := []string{"a", "b", "a", "b", "a"}
	for i := 0; i < 5; i++ {
		es := db.Out(db.NodeID("c" + string(rune('0'+i))))
		if len(es) != 1 {
			t.Fatalf("chain node c%d: want 1 out-edge, got %d", i, len(es))
		}
		if got := db.Labels().Name(es[0].Label); got != wantLabels[i] {
			t.Fatalf("chain edge %d: want label %s, got %s", i, wantLabels[i], got)
		}
	}
	empty := ChainGraph(0, nil)
	if empty.NumNodes() != 1 || empty.NumEdges() != 0 {
		t.Fatalf("chain(0): want 1 node / 0 edges, got %d / %d", empty.NumNodes(), empty.NumEdges())
	}
}

func TestPowerLawGraphDeterministicAndSkewed(t *testing.T) {
	const nodes, edges = 500, 5000
	a := PowerLawGraph(rand.New(rand.NewSource(42)), nodes, edges, []string{"a", "b"})
	b := PowerLawGraph(rand.New(rand.NewSource(42)), nodes, edges, []string{"a", "b"})
	if a.NumNodes() != nodes || a.NumEdges() != edges {
		t.Fatalf("powerlaw: want %d nodes / %d edges, got %d / %d",
			nodes, edges, a.NumNodes(), a.NumEdges())
	}
	if !a.Equal(b) {
		t.Fatal("same seed must generate the same graph")
	}
	c := PowerLawGraph(rand.New(rand.NewSource(43)), nodes, edges, []string{"a", "b"})
	if a.Equal(c) {
		t.Fatal("different seeds generated identical graphs")
	}
	// Preferential attachment must concentrate in-degree: the hottest
	// node should absorb far more than the uniform share of targets.
	indeg := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		for _, e := range a.Out(graph.NodeID(n)) {
			indeg[e.To]++
		}
	}
	max := 0
	for _, d := range indeg {
		if d > max {
			max = d
		}
	}
	if uniform := edges / nodes; max < 5*uniform {
		t.Fatalf("no hub: max in-degree %d vs uniform share %d", max, uniform)
	}
}

func TestMillionEdgeGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("million-edge generation in -short mode")
	}
	db := PowerLawGraph(rand.New(rand.NewSource(1)), 100_000, 1_000_000, []string{"a", "b", "c"})
	if db.NumEdges() != 1_000_000 {
		t.Fatalf("want 1M edges, got %d", db.NumEdges())
	}
}

func TestParseGraphSpec(t *testing.T) {
	cases := []struct {
		spec         string
		nodes, edges int
	}{
		{"grid:3x3", 9, 12},
		{"grid:2x2:r,d", 4, 4},
		{"chain:10", 11, 10},
		{"chain:4:a,b,c", 5, 4},
		{"powerlaw:100:400:7", 100, 400},
		{"powerlaw:100:400:7:x,y,z", 100, 400},
		{"random:50:200:9", 50, 200},
	}
	for _, c := range cases {
		db, err := ParseGraphSpec(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if db.NumNodes() != c.nodes || db.NumEdges() != c.edges {
			t.Fatalf("%s: want %d nodes / %d edges, got %d / %d",
				c.spec, c.nodes, c.edges, db.NumNodes(), db.NumEdges())
		}
		if !IsGraphSpec(c.spec) {
			t.Fatalf("IsGraphSpec(%q) = false", c.spec)
		}
	}
	for _, bad := range []string{
		"", "grid", "grid:3", "grid:3x", "grid:0x3", "grid:3x3:onlyone",
		"chain:x", "chain:-1", "chain:3:", "powerlaw:100:400", "powerlaw:a:b:c",
		"random:0:1:2", "mesh:3x3", "grid:3x3:a,b,c",
	} {
		if _, err := ParseGraphSpec(bad); err == nil {
			t.Fatalf("ParseGraphSpec(%q) accepted a malformed spec", bad)
		}
	}
	for _, notSpec := range []string{"graph.txt", "grid", "/tmp/powerlaw", "mesh:3"} {
		if IsGraphSpec(notSpec) {
			t.Fatalf("IsGraphSpec(%q) = true", notSpec)
		}
	}
}

func TestParseGraphSpecDeterministic(t *testing.T) {
	a, err := ParseGraphSpec("powerlaw:200:1000:11")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseGraphSpec("powerlaw:200:1000:11")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("spec parsing must be deterministic")
	}
	var w strings.Builder
	if _, err := a.WriteTo(&w); err != nil {
		t.Fatal(err)
	}
	if w.Len() == 0 {
		t.Fatal("generated graph serialized to nothing")
	}
}
