package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/core"
	"regexrw/internal/regex"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// renderVariant renders the AST in a randomly chosen concrete spelling:
// the concatenation separator varies between `·`, `.` and whitespace
// juxtaposition, operators get random surrounding spaces, and
// subexpressions pick up redundant parentheses. Every variant must
// parse back to the same language-identical instance, so all of them
// must hash to the same plan key.
func renderVariant(rng *rand.Rand, n *regex.Node) string {
	var b strings.Builder
	writeVariant(rng, n, &b)
	return b.String()
}

func writeVariant(rng *rand.Rand, n *regex.Node, b *strings.Builder) {
	prec := func(n *regex.Node) int {
		switch n.Op {
		case regex.OpUnion:
			return 0
		case regex.OpConcat:
			return 1
		default:
			return 2
		}
	}
	pad := func() {
		if rng.Intn(3) == 0 {
			b.WriteByte(' ')
		}
	}
	child := func(c *regex.Node, minPrec int) {
		if prec(c) < minPrec || rng.Intn(4) == 0 { // sometimes redundant parens
			b.WriteByte('(')
			pad()
			writeVariant(rng, c, b)
			pad()
			b.WriteByte(')')
		} else {
			writeVariant(rng, c, b)
		}
	}
	switch n.Op {
	case regex.OpEmpty:
		b.WriteString([]string{"∅", "empty"}[rng.Intn(2)])
	case regex.OpEpsilon:
		b.WriteString([]string{"ε", "eps"}[rng.Intn(2)])
	case regex.OpSymbol:
		b.WriteString(n.Name)
	case regex.OpConcat:
		for i, s := range n.Subs {
			if i > 0 {
				switch rng.Intn(3) {
				case 0:
					b.WriteString("·")
				case 1:
					pad()
					b.WriteString(".")
					pad()
				default:
					b.WriteString(" ")
				}
			}
			child(s, 2)
		}
	case regex.OpUnion:
		for i, s := range n.Subs {
			if i > 0 {
				pad()
				b.WriteString("+")
				pad()
			}
			child(s, 1)
		}
	case regex.OpStar:
		child(n.Subs[0], 2)
		b.WriteString("*")
	case regex.OpOpt:
		child(n.Subs[0], 2)
		b.WriteString("?")
	}
}

// randomExpr builds a random AST of bounded depth over the given
// symbols.
func randomExpr(rng *rand.Rand, symbols []string, depth int) *regex.Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(8) {
		case 0:
			return regex.Epsilon()
		default:
			return regex.Sym(symbols[rng.Intn(len(symbols))])
		}
	}
	switch rng.Intn(4) {
	case 0:
		return regex.Concat(randomExpr(rng, symbols, depth-1), randomExpr(rng, symbols, depth-1))
	case 1:
		return regex.Union(randomExpr(rng, symbols, depth-1), randomExpr(rng, symbols, depth-1))
	case 2:
		return regex.Star(randomExpr(rng, symbols, depth-1))
	default:
		return regex.Opt(randomExpr(rng, symbols, depth-1))
	}
}

// TestKeyCanonicalization is the property test of the plan-key
// contract: syntactically distinct but equal spellings of one instance
// (operator spelling, whitespace, redundant parentheses, view-map
// construction order) produce identical keys, and structurally
// distinct instances produce distinct keys.
func TestKeyCanonicalization(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	symbols := []string{"a", "b", "c"}
	seen := map[Key]string{}
	for trial := 0; trial < 200; trial++ {
		query := randomExpr(rng, symbols, 3)
		viewExprs := map[string]*regex.Node{
			"e1": randomExpr(rng, symbols, 2),
			"e2": randomExpr(rng, symbols, 2),
		}
		canonical := map[string]string{}
		for name, n := range viewExprs {
			canonical[name] = n.String()
		}
		ref, err := core.ParseInstance(query.String(), canonical)
		if err != nil {
			t.Fatalf("trial %d: reference instance: %v", trial, err)
		}
		refKey := keyOfInstance(ref, false)

		// Several random respellings of the same instance.
		for v := 0; v < 5; v++ {
			variant := map[string]string{}
			for name, n := range viewExprs {
				variant[name] = renderVariant(rng, n)
			}
			qv := renderVariant(rng, query)
			inst, err := core.ParseInstance(qv, variant)
			if err != nil {
				t.Fatalf("trial %d: variant %q: %v", trial, qv, err)
			}
			if got := keyOfInstance(inst, false); got != refKey {
				t.Fatalf("trial %d: variant %q / %v hashed to %s, canonical %q hashed to %s",
					trial, qv, variant, got, query.String(), refKey)
			}
		}

		// Distinctness across trials: a repeated key must come from a
		// structurally identical instance (possible under random reuse of
		// small expressions), never from a different one.
		desc := ref.String()
		if prev, dup := seen[refKey]; dup && prev != desc {
			t.Fatalf("trial %d: key collision: %q vs %q", trial, prev, desc)
		}
		seen[refKey] = desc
	}
}

// TestKeyViewOrderIndependence pins the map-iteration-order pitfall
// directly: instances assembled with NewInstance from the same views in
// different slice orders hash identically.
func TestKeyViewOrderIndependence(t *testing.T) {
	q := regex.MustParse("a·(b·a+c)*")
	v1 := core.View{Name: "e1", Expr: regex.MustParse("a")}
	v2 := core.View{Name: "e2", Expr: regex.MustParse("a·c*·b")}
	v3 := core.View{Name: "e3", Expr: regex.MustParse("c")}
	orders := [][]core.View{
		{v1, v2, v3}, {v3, v2, v1}, {v2, v3, v1},
	}
	var want Key
	for i, views := range orders {
		inst, err := core.NewInstance(q, views)
		if err != nil {
			t.Fatal(err)
		}
		got := keyOfInstance(inst, false)
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("order %d hashed to %s, want %s", i, got, want)
		}
	}
}

// TestKeyDistinguishes pins that the key separates what must stay
// separate: different queries, different view definitions, an added
// view, and the partial flag.
func TestKeyDistinguishes(t *testing.T) {
	base := func(views map[string]string, query string) Key {
		inst, err := core.ParseInstance(query, views)
		if err != nil {
			t.Fatal(err)
		}
		return keyOfInstance(inst, false)
	}
	views := map[string]string{"e1": "a", "e2": "b"}
	k := base(views, "a·b")
	if base(views, "b·a") == k {
		t.Fatal("different queries must hash differently")
	}
	if base(map[string]string{"e1": "a", "e2": "b·b"}, "a·b") == k {
		t.Fatal("different view definitions must hash differently")
	}
	if base(map[string]string{"e1": "a", "e2": "b", "e3": "c"}, "a·b") == k {
		t.Fatal("an added view must hash differently")
	}
	inst, _ := core.ParseInstance("a·b", views)
	if keyOfInstance(inst, true) == k {
		t.Fatal("the partial flag must hash differently")
	}
}

// TestKeyRPQ covers the path-query key: view order and theory
// declaration order are canonicalized away; method and theory content
// are not.
func TestKeyRPQ(t *testing.T) {
	t1 := theory.New()
	t1.AddConstants("rome", "paris")
	t1.Declare("city", "rome", "paris")
	t2 := theory.New() // same facts, different declaration order
	t2.AddConstants("paris")
	t2.Declare("city", "paris")
	t2.AddConstants("rome")
	t2.Declare("city", "rome")

	q, err := rpq.ParseQuery("city·city", map[string]string{"city": "city"})
	if err != nil {
		t.Fatal(err)
	}
	v1 := rpq.View{Name: "v1", Query: rpq.Atomic("f1", theory.Pred("city"))}
	v2 := rpq.View{Name: "v2", Query: rpq.Atomic("f2", theory.Eq("rome"))}

	kA := keyOfRPQ(q, []rpq.View{v1, v2}, t1, rpq.Grounded)
	kB := keyOfRPQ(q, []rpq.View{v2, v1}, t2, rpq.Grounded)
	if kA != kB {
		t.Fatalf("view order / theory declaration order must not reach the key: %s vs %s", kA, kB)
	}
	if keyOfRPQ(q, []rpq.View{v1, v2}, t1, rpq.Direct) == kA {
		t.Fatal("the method must reach the key")
	}
	t3 := theory.New()
	t3.AddConstants("rome", "paris")
	t3.Declare("city", "rome") // paris is not a city here
	if keyOfRPQ(q, []rpq.View{v1, v2}, t3, rpq.Grounded) == kA {
		t.Fatal("theory content must reach the key")
	}
	_ = fmt.Sprintf("%s", kA) // Key is printable/loggable
}
