// Package engine is the serving layer of the rewriting pipeline: it
// compiles a rewriting problem once into an immutable Plan and caches
// plans in a sharded LRU keyed by a canonical hash of the instance, so
// that a production workload of repeated queries pays the doubly
// exponential construction (Theorems 5 and 8 of the paper) once per
// distinct instance instead of once per request. This is the setting
// of view-based query answering: rewritings are computed rarely and
// evaluated constantly, so the compiled artifact — rewriting automaton,
// exactness report, minimal DFA, shortest witness — is the unit worth
// keeping.
//
// An Engine wires together the governance layers built underneath it:
// per-request budgets and deadlines (internal/budget), the bounded
// worker pool (internal/par) for batch fan-out and the per-view
// parallel stages inside one compile, and tracing/metrics
// (internal/obs) under "engine.*" spans and counters. Concurrent
// identical requests are deduplicated singleflight-style: one compile
// runs, the rest wait for its plan. Admission control bounds how many
// compiles may be in flight (plus a short wait queue); beyond that,
// requests fail fast with an *AdmissionError rather than piling
// exponential work onto a saturated process.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/obs"
	"regexrw/internal/par"
	"regexrw/internal/planstore"
	"regexrw/internal/rpq"
	"regexrw/internal/strategy"
	"regexrw/internal/theory"
)

// Engine compiles rewriting problems into Plans and serves repeated
// instances from its plan cache. Construct with New; an Engine is safe
// for concurrent use by any number of goroutines.
type Engine struct {
	maxStates      int
	maxTransitions int
	defaultTimeout time.Duration
	workers        int
	strat          *strategy.Config
	tracer         *obs.Tracer
	reg            *obs.Registry

	cache *planCache
	evals evalCache // shared read-only evaluators for Query (query.go)

	// store is the optional persistent plan store: a second cache tier
	// behind the LRU, consulted by singleflight leaders before they
	// compile and written behind after they do. Every store failure
	// degrades to an in-memory compile; the store can never fail a
	// request.
	store *planstore.Store
	saves sync.WaitGroup // in-flight write-behind saves

	// Singleflight: at most one compile per key runs at a time; later
	// identical requests wait on the leader's call.
	mu    sync.Mutex
	calls map[Key]*call

	// Admission: compile slots plus a bounded wait queue.
	admitLimit int
	queueLimit int
	admit      chan struct{}
	queued     atomic.Int64

	// owns, when non-nil, is the cluster ownership filter: WarmStart
	// and other bulk materialization paths only touch keys this engine
	// owns, so N replicas each restore ~1/N of the persisted plan
	// universe instead of all of it. The request path is NOT filtered —
	// a replica serving a non-owned request (forwarding declined or
	// degraded) must still compile it.
	owns func(Key) bool

	closed atomic.Bool

	// Authoritative counters behind Stats; every increment is mirrored
	// onto reg's "engine.*" / "cache.plan.*" metrics.
	requests   atomic.Int64
	compiles   atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	dedups     atomic.Int64
	evictions  atomic.Int64
	rejected   atomic.Int64
	storeLoads atomic.Int64
	storeSaves atomic.Int64
	queries    atomic.Int64
}

type call struct {
	done chan struct{}
	plan *Plan
	err  error
}

// Option configures an Engine.
type Option func(*Engine)

// WithBudgetDefaults sets the per-request resource budget applied to
// every compile whose context does not already carry one: caps on total
// materialized states and transitions (0 = unlimited). This is the
// engine-level guard against a single adversarial instance exhausting
// the process (Theorem 8 inputs exist); individual requests may tighten
// it via Request.MaxStates/MaxTransitions but never widen it.
func WithBudgetDefaults(maxStates, maxTransitions int) Option {
	return func(e *Engine) { e.maxStates, e.maxTransitions = maxStates, maxTransitions }
}

// WithDefaultTimeout sets the wall-clock deadline applied to every
// compile whose context has none (0 = no deadline).
func WithDefaultTimeout(d time.Duration) Option {
	return func(e *Engine) { e.defaultTimeout = d }
}

// WithWorkers sets the worker count used by RewriteBatch fan-out and by
// the per-view parallel stages inside each compile (default
// GOMAXPROCS; 1 forces sequential compiles).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithStrategy pins the adaptive-dispatch configuration used by every
// compile whose context does not already carry one (strategy.With on
// the request context takes precedence). The zero Config is fully
// adaptive; forcing a mode (e.g. Kernel: strategy.KernelForceSparse)
// overrides the measured cost model for that domain — useful for
// ablations and for pinning behavior in differential tests.
func WithStrategy(cfg strategy.Config) Option {
	return func(e *Engine) { c := cfg; e.strat = &c }
}

// WithTracer installs a tracer used for compiles whose context carries
// none; per-request tracers on the context take precedence.
func WithTracer(t *obs.Tracer) Option { return func(e *Engine) { e.tracer = t } }

// WithMetrics sets the registry receiving the engine's own counters
// ("engine.requests", "cache.plan.hits", …) and, for compiles whose
// context carries no registry, the per-stage pipeline counters. The
// default is obs.Default.
func WithMetrics(r *obs.Registry) Option { return func(e *Engine) { e.reg = r } }

// WithPlanCache sets the plan cache capacity (total plans retained,
// split across shards). 0 disables caching; the default is 1024.
func WithPlanCache(capacity int) Option { return func(e *Engine) { e.cache = newPlanCache(capacity) } }

// WithPlanStore attaches a persistent plan store (internal/planstore):
// cache misses are served from disk when a plan for the key was
// persisted by an earlier run (or an earlier eviction), and fresh
// compiles are written behind to disk off the request path. The store
// is strictly best-effort — any store error (I/O failure, corrupt
// entry, open breaker) silently degrades the request to an in-memory
// compile, so a sick disk can slow the first request per key but never
// fail one. Pass the engine's registry to planstore.Open's WithMetrics
// so the plan_store.* counters land next to the engine.* ones. Partial
// plans (Request.Partial) bypass the store entirely.
func WithPlanStore(s *planstore.Store) Option { return func(e *Engine) { e.store = s } }

// WithOwnership installs the cluster ownership filter: a predicate
// over plan keys, typically ring.Owns(self, key) from
// internal/cluster. Bulk materialization — WarmStart's store restore,
// and any precompilation loop that consults Owns — skips keys the
// predicate rejects, which is the cluster's scaling win: N replicas
// each compile and cache only their slice of the key space. Per-request
// serving is unaffected; ownership never fails a request.
func WithOwnership(owns func(Key) bool) Option {
	return func(e *Engine) { e.owns = owns }
}

// WithAdmissionLimit bounds concurrent compiles at inflight, with up to
// queue further requests waiting for a slot; beyond that, Rewrite fails
// fast with an *AdmissionError (errors.Is(err, ErrQueueFull)). Cache
// hits and singleflight followers are not admission-controlled — they
// do no compile work. inflight <= 0 (the default) disables admission
// control.
func WithAdmissionLimit(inflight, queue int) Option {
	return func(e *Engine) { e.admitLimit, e.queueLimit = inflight, queue }
}

// New returns an Engine with the given options.
func New(opts ...Option) *Engine {
	e := &Engine{reg: obs.Default, calls: make(map[Key]*call)}
	for _, o := range opts {
		o(e)
	}
	if e.cache == nil {
		e.cache = newPlanCache(1024)
	}
	e.evals.cap = 64
	if e.admitLimit > 0 {
		e.admit = make(chan struct{}, e.admitLimit)
	}
	return e
}

// Close marks the engine closed: every subsequent entry point fails
// with an error matching errors.Is(err, ErrClosed). In-flight compiles
// finish normally. Close is idempotent.
func (e *Engine) Close() { e.closed.Store(true) }

// Stats is a consistent-enough snapshot of the engine's counters (each
// field is individually atomic). Hits+Misses = cache lookups; Dedups
// counts requests that joined an in-flight identical compile; Compiles
// counts actual pipeline runs, so under concurrent identical load
// Compiles can be far below Misses.
type Stats struct {
	Requests, Compiles, Hits, Misses, Dedups, Evictions, Rejected int64
	// Queries counts RPQ answering requests (Query, QueryFunc,
	// QueryIncremental), which also count as Requests through the plan
	// fetch they begin with.
	Queries int64
	// StoreLoads counts plans served from the persistent store instead
	// of compiled; StoreSaves counts plans persisted behind a compile.
	// Both stay 0 without WithPlanStore.
	StoreLoads, StoreSaves int64
	// CachedPlans is the current number of plans held by the LRU.
	CachedPlans int
	// Store is the persistent plan store's own counter snapshot
	// (hits/misses/corrupt/quarantined/breaker), nil without
	// WithPlanStore.
	Store *planstore.Stats
}

// Stats returns the engine's counters. The same numbers are exposed on
// the metrics registry as engine.* / cache.plan.* counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Requests:    e.requests.Load(),
		Compiles:    e.compiles.Load(),
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Dedups:      e.dedups.Load(),
		Evictions:   e.evictions.Load(),
		Rejected:    e.rejected.Load(),
		StoreLoads:  e.storeLoads.Load(),
		StoreSaves:  e.storeSaves.Load(),
		Queries:     e.queries.Load(),
		CachedPlans: e.cache.len(),
	}
	if e.store != nil {
		st := e.store.Stats()
		s.Store = &st
	}
	return s
}

// Metrics returns the registry holding the engine's counters.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

func (e *Engine) count(c *atomic.Int64, name string) {
	c.Add(1)
	e.reg.Counter(name).Inc()
}

// Request is one regular-expression rewriting problem plus its
// per-request governance. Supply either concrete syntax (Query + Views)
// or a pre-parsed Instance.
type Request struct {
	// Query is the expression E0 in the paper's concrete syntax; Views
	// maps view names to their expressions.
	Query string
	Views map[string]string
	// Instance, when non-nil, is used instead of Query/Views.
	Instance *core.Instance
	// Partial also runs the anytime partial-rewriting search (Section
	// 4.3) when the maximal rewriting is not exact; the result is on
	// Plan.Partial. Partial plans are cached under a distinct key.
	Partial bool
	// MaxStates/MaxTransitions tighten the engine's budget defaults for
	// this request (0 = engine default). They can only lower the caps:
	// a request cannot widen what the engine operator configured.
	MaxStates, MaxTransitions int
	// Timeout tightens the engine's default compile deadline (0 =
	// engine default).
	Timeout time.Duration
}

// RPQRequest is one regular-path-query rewriting problem: the options
// struct replacing the positional (q0, views, t, method) signature of
// the legacy facade.
type RPQRequest struct {
	Query  *rpq.Query
	Views  []rpq.View
	Theory *theory.Interpretation
	// Method selects the construction (rpq.Grounded, rpq.Direct,
	// rpq.Compressed); the zero value is Grounded, the literal
	// Theorem 11 route.
	Method rpq.Method

	MaxStates, MaxTransitions int
	Timeout                   time.Duration
}

// Rewrite returns the plan for the request, compiling it if no
// identical instance (under canonicalization — see Key) is cached.
// Budget or deadline exhaustion surfaces exactly as on the direct
// pipeline entry points: errors.As(*budget.ExceededError) with the
// stage that gave out. Admission rejection surfaces as
// errors.Is(err, ErrQueueFull).
func (e *Engine) Rewrite(ctx context.Context, req Request) (*Plan, error) {
	inst := req.Instance
	if inst == nil {
		var err error
		inst, err = core.ParseInstance(req.Query, req.Views)
		if err != nil {
			return nil, err
		}
	}
	key := keyOfInstance(inst, req.Partial)
	return e.serve(ctx, key, !req.Partial, req.MaxStates, req.MaxTransitions, req.Timeout, func(cctx context.Context) (*Plan, error) {
		return compileInstance(cctx, key, inst, req.Partial)
	})
}

// RewriteRPQ returns the plan for a regular-path-query request
// (Theorem 11 and the Section 4.2 variants), cached like Rewrite.
func (e *Engine) RewriteRPQ(ctx context.Context, req RPQRequest) (*Plan, error) {
	if req.Query == nil {
		return nil, fmt.Errorf("engine: nil query")
	}
	if req.Theory == nil {
		req.Theory = theory.New()
	}
	key := keyOfRPQ(req.Query, req.Views, req.Theory, req.Method)
	return e.serve(ctx, key, true, req.MaxStates, req.MaxTransitions, req.Timeout, func(cctx context.Context) (*Plan, error) {
		return compileRPQ(cctx, key, req)
	})
}

// serve is the shared request path: cache lookup, singleflight
// grouping, store lookup, admission, compile, write-behind, insert.
// storable gates the persistent-store tiers (partial plans stay
// memory-only).
func (e *Engine) serve(ctx context.Context, key Key, storable bool, maxStates, maxTransitions int, timeout time.Duration, compile func(context.Context) (*Plan, error)) (*Plan, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("%w", ErrClosed)
	}
	ctx, span := obs.StartSpan(ctx, "engine.rewrite")
	defer span.End()
	e.count(&e.requests, "engine.requests")

	if p, ok := e.cache.get(key); ok {
		e.count(&e.hits, "cache.plan.hits")
		span.SetAttr("cache_hit", 1)
		return p, nil
	}
	e.count(&e.misses, "cache.plan.misses")
	span.SetAttr("cache_hit", 0)

	// Singleflight: the first miss for a key becomes the leader and
	// compiles; concurrent misses for the same key wait for its result.
	e.mu.Lock()
	if c, ok := e.calls[key]; ok {
		e.mu.Unlock()
		e.count(&e.dedups, "cache.plan.dedup")
		select {
		case <-c.done:
			return c.plan, c.err
		case <-ctx.Done():
			return nil, fmt.Errorf("engine: waiting for in-flight compile: %w", ctx.Err())
		}
	}
	c := &call{done: make(chan struct{})}
	e.calls[key] = c
	e.mu.Unlock()

	// Second tier: a plan persisted by an earlier run (or evicted from
	// the LRU) restores from disk without a compile. Any store problem
	// — missing, corrupt (quarantined by the store), I/O error, open
	// breaker — degrades to the compile below.
	if storable && e.store != nil {
		c.plan = e.loadStored(ctx, key)
	}
	if c.plan == nil {
		c.plan, c.err = e.compileAdmitted(ctx, maxStates, maxTransitions, timeout, compile)
		if c.err == nil && storable && e.store != nil {
			e.saveAsync(c.plan)
		}
	}
	if c.err == nil {
		if ev := e.cache.add(key, c.plan); ev > 0 {
			e.evictions.Add(int64(ev))
			e.reg.Counter("cache.plan.evictions").Add(int64(ev))
		}
	}
	e.reg.Gauge("cache.plan.size").Set(int64(e.cache.len()))
	e.mu.Lock()
	delete(e.calls, key)
	e.mu.Unlock()
	close(c.done)
	return c.plan, c.err
}

// compileAdmitted runs one compile under admission control and the
// engine's governance defaults.
func (e *Engine) compileAdmitted(ctx context.Context, maxStates, maxTransitions int, timeout time.Duration, compile func(context.Context) (*Plan, error)) (*Plan, error) {
	if e.admit != nil {
		select {
		case e.admit <- struct{}{}:
		default:
			// Slots full: wait in the bounded queue.
			if q := e.queued.Add(1); int(q) > e.queueLimit {
				e.queued.Add(-1)
				e.count(&e.rejected, "engine.admission.rejected")
				return nil, &AdmissionError{
					InFlight: e.admitLimit, Limit: e.admitLimit,
					Queued: e.queueLimit, QueueLimit: e.queueLimit,
				}
			}
			select {
			case e.admit <- struct{}{}:
				e.queued.Add(-1)
			case <-ctx.Done():
				e.queued.Add(-1)
				return nil, fmt.Errorf("engine: queued for admission: %w", ctx.Err())
			}
		}
		defer func() { <-e.admit }()
	}
	e.count(&e.compiles, "engine.compiles")

	cctx := ctx
	// Governance defaults: a fresh per-compile budget when the caller
	// brought none, the engine deadline when the caller has none, the
	// engine's worker count, and the engine tracer/metrics when the
	// request carries no observability of its own.
	if b := budget.From(cctx); b == nil {
		ms, mt := e.maxStates, e.maxTransitions
		if maxStates > 0 && (ms <= 0 || maxStates < ms) {
			ms = maxStates
		}
		if maxTransitions > 0 && (mt <= 0 || maxTransitions < mt) {
			mt = maxTransitions
		}
		b = budget.New(budget.MaxStates(ms), budget.MaxTransitions(mt))
		cctx = budget.With(cctx, b)
	}
	if _, has := cctx.Deadline(); !has {
		d := e.defaultTimeout
		if timeout > 0 && (d == 0 || timeout < d) {
			d = timeout
		}
		if d > 0 {
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(cctx, d)
			defer cancel()
		}
	} else if timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(cctx, timeout)
		defer cancel()
	}
	if e.workers > 0 {
		cctx = par.WithWorkers(cctx, e.workers)
	}
	if e.strat != nil && !strategy.Carried(cctx) {
		cctx = strategy.With(cctx, *e.strat)
	}
	if e.tracer != nil && obs.SpanFromContext(cctx) == nil {
		cctx = obs.WithTracer(cctx, e.tracer)
	}
	if obs.MetricsFrom(cctx) == nil && e.reg != nil {
		cctx = obs.WithMetrics(cctx, e.reg)
	}

	cctx, span := obs.StartSpan(cctx, "engine.compile")
	defer span.End()
	return compile(cctx)
}

// loadStored tries the persistent store for key and returns the
// restored plan, or nil when the request must compile: not persisted,
// corrupt (the store has already quarantined it), I/O failure, open
// breaker, or a stored artifact the current build cannot rebuild a
// plan from. Failures are recorded on the store's own counters; the
// request path never sees them.
func (e *Engine) loadStored(ctx context.Context, key Key) *Plan {
	_, span := obs.StartSpan(ctx, "engine.store.load")
	defer span.End()
	sp, err := e.store.Get(string(key))
	if err != nil {
		span.SetAttr("hit", 0)
		return nil
	}
	p, err := planFromStored(key, sp)
	if err != nil {
		span.SetAttr("hit", 0)
		return nil
	}
	span.SetAttr("hit", 1)
	e.count(&e.storeLoads, "engine.store.loads")
	return p
}

// saveAsync persists a freshly compiled plan off the request path. The
// write is fire-and-forget: a failed save costs a recompile after the
// next restart, nothing else. FlushStore waits for in-flight saves.
func (e *Engine) saveAsync(p *Plan) {
	sp, err := storedFromPlan(p)
	if err != nil {
		return
	}
	e.saves.Add(1)
	go func() {
		defer e.saves.Done()
		_, span := obs.StartSpan(context.Background(), "engine.store.save")
		defer span.End()
		if err := e.store.Put(sp); err != nil {
			span.SetAttr("ok", 0)
			return
		}
		span.SetAttr("ok", 1)
		e.count(&e.storeSaves, "engine.store.saves")
	}()
}

// FlushStore blocks until every write-behind save started so far has
// finished (successfully or not). Call it before process exit to make
// the plan directory as warm as the run was; without a plan store it
// returns immediately.
func (e *Engine) FlushStore() { e.saves.Wait() }

// Owns reports whether this engine owns a plan key under the cluster
// ownership filter; without WithOwnership every key is owned. Serving
// layers consult it to decide what to precompile and warm-start.
func (e *Engine) Owns(key Key) bool { return e.owns == nil || e.owns(key) }

// WarmStart loads every OWNED plan persisted in the store into the
// in-memory cache, so a restarted process serves its pre-crash working
// set at cache-hit latency from the first request. Under a cluster
// ownership filter (WithOwnership), non-owned keys are skipped — they
// stay on disk, costing nothing, and the replicas that own them
// restore them on their own boots. Corrupt entries are quarantined by
// the store and skipped; I/O failures skip the entry and count on the
// store's meters. Returns how many plans were restored. Without a
// plan store it is a no-op.
func (e *Engine) WarmStart(ctx context.Context) (int, error) {
	if e.store == nil {
		return 0, nil
	}
	keys, err := e.store.Keys()
	if err != nil {
		return 0, fmt.Errorf("engine: warm start: %w", err)
	}
	loaded := 0
	//budget:exempt bounded by the number of persisted plans, each a fixed-size restore
	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return loaded, err
		}
		if !e.Owns(Key(k)) {
			continue
		}
		if p := e.loadStored(ctx, Key(k)); p != nil {
			if ev := e.cache.add(Key(k), p); ev > 0 {
				e.evictions.Add(int64(ev))
				e.reg.Counter("cache.plan.evictions").Add(int64(ev))
			}
			loaded++
		}
	}
	e.reg.Gauge("cache.plan.size").Set(int64(e.cache.len()))
	return loaded, nil
}

// BatchResult is one item's outcome in RewriteBatch.
type BatchResult struct {
	Plan *Plan
	Err  error
}

// RewriteBatch compiles the requests concurrently over the engine's
// worker pool and returns one result per request, in order. Items fail
// independently: a budget-exhausted or rejected item does not cancel
// its siblings (unlike par.ForEach's fail-fast contract, which batch
// deliberately does not expose). Identical items in one batch
// deduplicate through the plan cache and singleflight like any other
// concurrent requests.
func (e *Engine) RewriteBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	wctx := ctx
	if e.workers > 0 {
		wctx = par.WithWorkers(wctx, e.workers)
	}
	// The item function never returns an error, so ForEach's
	// first-error cancellation can only fire on ctx cancellation.
	_ = par.ForEach(wctx, len(reqs), func(ictx context.Context, i int) error {
		out[i].Plan, out[i].Err = e.Rewrite(ictx, reqs[i])
		return nil
	})
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Plan == nil && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// Handle is the future returned by Submit: Done is closed when the
// compile finishes, after which Result returns the outcome without
// blocking.
type Handle struct {
	done chan struct{}
	plan *Plan
	err  error
}

// Done returns a channel closed when the submitted request completes.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Result blocks until the submitted request completes (or ctx is
// cancelled) and returns its outcome.
func (h *Handle) Result(ctx context.Context) (*Plan, error) {
	select {
	case <-h.done:
		return h.plan, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Submit starts the request asynchronously and returns a handle to its
// eventual plan. The compile runs under ctx — cancelling it aborts the
// compile; the handle then reports the cancellation error.
func (e *Engine) Submit(ctx context.Context, req Request) *Handle {
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.plan, h.err = e.Rewrite(ctx, req)
	}()
	return h
}
