// Plan keys: every rewriting problem the engine can compile is mapped
// to a canonical byte string and hashed, so that syntactically distinct
// spellings of the same instance — `a·b` vs `a.b` vs `a b`, redundant
// parentheses, view maps handed over in any iteration order — land on
// the same cache entry, while semantically distinct instances land on
// different ones (up to hash collisions, which SHA-256 makes
// negligible).
//
// The canonicalization deliberately stops at the syntax level: two
// instances whose expressions denote the same language through
// different ASTs (`a+b` vs `b+a`) get different keys and compile twice.
// Language-level canonicalization would require the very minimal-DFA
// construction the cache exists to amortize.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"regexrw/internal/core"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// Key identifies a compiled plan: the hex SHA-256 of the instance's
// canonical form. Keys are comparable and safe to log (they leak no
// view definitions).
type Key string

// InstanceKey returns the canonical plan key the engine would cache a
// regular-expression instance under. It is exported for the cluster
// routing layer and the cluster-aware client, which hash the same keys
// onto a consistent-hash ring to find the replica owning the plan —
// placement and caching must agree on the key byte-for-byte.
func InstanceKey(inst *core.Instance, partial bool) Key { return keyOfInstance(inst, partial) }

// RPQKey is InstanceKey for regular-path-query instances.
func RPQKey(q0 *rpq.Query, views []rpq.View, t *theory.Interpretation, method rpq.Method) Key {
	return keyOfRPQ(q0, views, t, method)
}

// keyOfInstance canonicalizes a parsed regular-expression instance.
// The parser has already normalized the concrete syntax — `·`, `.` and
// juxtaposition all build the same OpConcat node, whitespace and
// redundant parentheses disappear — so rendering the ASTs back to the
// paper's syntax is the canonical form. Views are keyed by name in
// sorted order (ParseInstance sorts, but NewInstance callers may not).
func keyOfInstance(inst *core.Instance, partial bool) Key {
	h := sha256.New()
	h.Write([]byte("regex/v1\n"))
	if partial {
		h.Write([]byte("partial\n"))
	}
	h.Write([]byte("query=" + inst.Query.String() + "\n"))
	names := make([]string, 0, len(inst.Views))
	for _, v := range inst.Views {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte("view " + name + "=" + inst.ViewExpr(name).String() + "\n"))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// keyOfRPQ canonicalizes a regular-path-query instance: the query and
// view expressions with their formula bindings, the method, and the
// theory. Views are sorted by name — the Σ_Q language of the rewriting
// does not depend on their order. The theory is serialized with sorted
// constants and sorted predicate memberships, so two interpretations
// built by declaring the same facts in different orders hash
// identically.
func keyOfRPQ(q0 *rpq.Query, views []rpq.View, t *theory.Interpretation, method rpq.Method) Key {
	h := sha256.New()
	h.Write([]byte("rpq/v1\n"))
	h.Write([]byte("method=" + strconv.Itoa(int(method)) + "\n"))
	writeQuery := func(prefix string, q *rpq.Query) {
		h.Write([]byte(prefix + q.Expr.String() + "\n"))
		for _, name := range q.Expr.SymbolNames() { // sorted
			h.Write([]byte("  formula " + name + "=" + q.Formulas[name].String() + "\n"))
		}
	}
	writeQuery("query=", q0)
	sorted := make([]rpq.View, len(views))
	copy(sorted, views)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, v := range sorted {
		writeQuery("view "+v.Name+"=", v.Query)
	}
	h.Write([]byte(canonicalTheory(t)))
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// canonicalTheory renders an interpretation with every name list
// sorted, so declaration order never reaches the hash.
func canonicalTheory(t *theory.Interpretation) string {
	if t == nil {
		return "theory=nil\n"
	}
	var b strings.Builder
	b.WriteString("theory\n")
	consts := append([]string(nil), t.Domain().Names()...)
	sort.Strings(consts)
	b.WriteString("const " + strings.Join(consts, " ") + "\n")
	for _, p := range t.Predicates() { // Predicates() returns sorted names
		var members []string
		for _, c := range t.Domain().Symbols() {
			if t.Holds(p, c) {
				members = append(members, t.Domain().Name(c))
			}
		}
		sort.Strings(members)
		b.WriteString("pred " + p + " " + strings.Join(members, " ") + "\n")
	}
	return b.String()
}
