package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/eval"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
)

// QueryMode selects which automaton a QueryRequest evaluates over the
// supplied graph.
type QueryMode string

const (
	// ModeRewriting (the default) evaluates the plan's maximal rewriting
	// — an expression over the view names — so the graph's edge labels
	// are expected to be view names (a view-image graph, Section 4).
	ModeRewriting QueryMode = "rewriting"
	// ModeQuery evaluates the original query E0, so the graph's edge
	// labels are expected to be Σ symbols (the base database).
	ModeQuery QueryMode = "query"
)

// ErrNoGraph reports a QueryRequest without a database.
var ErrNoGraph = fmt.Errorf("engine: query request has no graph")

// errTruncated cuts a streaming evaluation short at MaxAnswers; it
// never escapes the package.
var errTruncated = fmt.Errorf("engine: answer cap reached")

// QueryRequest is one RPQ answering request: a rewriting problem (the
// embedded Request, compiled once and cached like any Rewrite call)
// plus the database to answer it over.
type QueryRequest struct {
	Request

	// Graph is the database evaluated against. Its edge labels are view
	// names under ModeRewriting and Σ symbols under ModeQuery.
	Graph *graph.DB
	// Mode selects the evaluated automaton; zero value is ModeRewriting.
	Mode QueryMode
	// Source restricts the evaluation to one source node (by name);
	// empty means all pairs. With Target set too, the request is boolean.
	Source, Target string
	// MaxAnswers caps the answers produced (0 = unlimited); a capped
	// result has Truncated set.
	MaxAnswers int
}

// QueryAnswer is one answer pair, by node name.
type QueryAnswer struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// QueryResult is the outcome of one evaluation.
type QueryResult struct {
	// Plan is the compiled (or cache-served) rewriting plan the
	// evaluation used.
	Plan *Plan
	// Answers is the answer set sorted by (from, to) name. Nil for
	// boolean requests and for QueryFunc (answers stream to the yield).
	Answers []QueryAnswer
	// Boolean and Matched report a source+target request's verdict.
	Boolean, Matched bool
	// Truncated reports that MaxAnswers cut the answer set short.
	Truncated bool
}

// evalKey identifies a cached evaluator: same plan, same mode, same
// database snapshot (by identity — a DB is append-only, but the
// evaluator snapshots it at construction, so a mutated DB must not hit
// the stale snapshot; registries hand out immutable DBs).
type evalKey struct {
	plan Key
	mode QueryMode
	db   *graph.DB
}

// evalCache is a tiny LRU of shared read-only evaluators. The CSR
// snapshot is the expensive part of evaluation setup (O(edges)); plans
// are cached across requests, so the evaluators built from them are
// too. Shared evaluators never see Insert — incremental sessions build
// private ones.
type evalCache struct {
	mu  sync.Mutex
	cap int
	ent []evalEntry // most recently used last
}

type evalEntry struct {
	key evalKey
	ev  *eval.Evaluator
}

func (c *evalCache) get(k evalKey) (*eval.Evaluator, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.ent {
		if c.ent[i].key == k {
			e := c.ent[i]
			c.ent = append(append(c.ent[:i], c.ent[i+1:]...), e)
			return e.ev, true
		}
	}
	return nil, false
}

func (c *evalCache) add(k evalKey, ev *eval.Evaluator) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.ent {
		if c.ent[i].key == k {
			return // raced: keep the first one, both are equivalent
		}
	}
	c.ent = append(c.ent, evalEntry{key: k, ev: ev})
	if len(c.ent) > c.cap {
		c.ent = c.ent[1:]
	}
}

// Query answers the request: compile (or fetch) the plan, evaluate it
// over the graph. All-pairs and single-source requests return sorted
// answers; boolean requests (Source and Target both set) return
// Matched. Budget exhaustion during evaluation surfaces like compile
// exhaustion: errors.As(*budget.ExceededError), stage "eval.bfs".
func (e *Engine) Query(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	var answers []QueryAnswer
	res, err := e.QueryFunc(ctx, req, func(a QueryAnswer) error {
		answers = append(answers, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].From != answers[j].From {
			return answers[i].From < answers[j].From
		}
		return answers[i].To < answers[j].To
	})
	res.Answers = answers
	return res, nil
}

// QueryFunc is the streaming form of Query: answer pairs are passed to
// yield as they are discovered (grouped by source, unsorted within a
// source), each exactly once. A non-nil error from yield aborts the
// evaluation and is returned verbatim. Boolean requests yield nothing.
func (e *Engine) QueryFunc(ctx context.Context, req QueryRequest, yield func(QueryAnswer) error) (*QueryResult, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("%w", ErrClosed)
	}
	if req.Graph == nil {
		return nil, ErrNoGraph
	}
	if req.Mode == "" {
		req.Mode = ModeRewriting
	}
	ctx, span := obs.StartSpan(ctx, "engine.query")
	defer span.End()
	span.SetAttr("mode_query", boolAttr(req.Mode == ModeQuery))
	e.count(&e.queries, "engine.queries")

	// ModeQuery needs the parsed instance even when the plan was
	// restored from disk (restored plans carry only serving artifacts);
	// parse it up front and hand it to Rewrite so the work is shared.
	inst := req.Instance
	if inst == nil && req.Mode == ModeQuery {
		var err error
		inst, err = core.ParseInstance(req.Query, req.Views)
		if err != nil {
			return nil, err
		}
		req.Instance = inst
	}
	plan, err := e.Rewrite(ctx, req.Request)
	if err != nil {
		return nil, err
	}

	ectx, cancel := e.evalContext(ctx, req.MaxStates, req.MaxTransitions, req.Timeout)
	defer cancel()
	ev, err := e.evaluator(ectx, plan, inst, req.Mode, req.Graph)
	if err != nil {
		return nil, err
	}

	res := &QueryResult{Plan: plan}
	db := req.Graph
	if req.Source != "" && req.Target != "" {
		src, err := resolveNode(db, req.Source)
		if err != nil {
			return nil, err
		}
		dst, err := resolveNode(db, req.Target)
		if err != nil {
			return nil, err
		}
		res.Boolean = true
		res.Matched, err = ev.Boolean(ectx, src, dst)
		if err != nil {
			return nil, err
		}
		span.SetAttr("matched", boolAttr(res.Matched))
		return res, nil
	}

	answers := 0
	emit := func(a QueryAnswer) error {
		if req.MaxAnswers > 0 && answers >= req.MaxAnswers {
			res.Truncated = true
			return errTruncated
		}
		answers++
		return yield(a)
	}
	if req.Source != "" {
		src, err := resolveNode(db, req.Source)
		if err != nil {
			return nil, err
		}
		err = ev.FromFunc(ectx, src, func(n graph.NodeID) error {
			return emit(QueryAnswer{From: req.Source, To: db.NodeName(n)})
		})
		if err != nil && err != errTruncated {
			return nil, err
		}
	} else {
		err = ev.AllPairsFunc(ectx, func(p graph.Pair) error {
			return emit(QueryAnswer{From: db.NodeName(p.From), To: db.NodeName(p.To)})
		})
		if err != nil && err != errTruncated {
			return nil, err
		}
	}
	span.SetAttr("answers", int64(answers))
	return res, nil
}

// evaluator returns the shared evaluator for (plan, mode, graph),
// building and caching it on first use.
func (e *Engine) evaluator(ctx context.Context, plan *Plan, inst *core.Instance, mode QueryMode, db *graph.DB) (*eval.Evaluator, error) {
	k := evalKey{plan: plan.Key(), mode: mode, db: db}
	if ev, ok := e.evals.get(k); ok {
		e.reg.Counter("cache.eval.hits").Inc()
		return ev, nil
	}
	e.reg.Counter("cache.eval.misses").Inc()
	d, err := e.queryAutomaton(ctx, plan, inst, mode)
	if err != nil {
		return nil, err
	}
	ev, err := eval.New(d, db)
	if err != nil {
		return nil, err
	}
	e.evals.add(k, ev)
	return ev, nil
}

// queryAutomaton picks the DFA a mode evaluates: the plan's canonical
// minimal rewriting DFA, or a determinization of the original query.
func (e *Engine) queryAutomaton(ctx context.Context, plan *Plan, inst *core.Instance, mode QueryMode) (*automata.DFA, error) {
	if mode == ModeRewriting {
		return plan.MinimalDFA(), nil
	}
	if inst == nil {
		inst = plan.Instance()
	}
	if inst == nil {
		return nil, fmt.Errorf("engine: %s needs the parsed instance (restored plan without request syntax)", ModeQuery)
	}
	d, err := automata.DeterminizeContext(ctx, inst.QueryNFA())
	if err != nil {
		return nil, err
	}
	return d.Minimize().TrimPartial(), nil
}

// evalContext applies the engine's governance defaults to an
// evaluation: a budget when the caller brought none (request caps can
// only tighten the engine's), the engine deadline, and the engine's
// tracer/metrics when the context carries none.
func (e *Engine) evalContext(ctx context.Context, maxStates, maxTransitions int, timeout time.Duration) (context.Context, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if b := budget.From(ctx); b == nil {
		ms, mt := e.maxStates, e.maxTransitions
		if maxStates > 0 && (ms <= 0 || maxStates < ms) {
			ms = maxStates
		}
		if maxTransitions > 0 && (mt <= 0 || maxTransitions < mt) {
			mt = maxTransitions
		}
		ctx = budget.With(ctx, budget.New(budget.MaxStates(ms), budget.MaxTransitions(mt)))
	}
	if _, has := ctx.Deadline(); !has {
		d := e.defaultTimeout
		if timeout > 0 && (d == 0 || timeout < d) {
			d = timeout
		}
		if d > 0 {
			ctx, cancel = context.WithTimeout(ctx, d)
		}
	}
	if e.tracer != nil && obs.SpanFromContext(ctx) == nil {
		ctx = obs.WithTracer(ctx, e.tracer)
	}
	if obs.MetricsFrom(ctx) == nil && e.reg != nil {
		ctx = obs.WithMetrics(ctx, e.reg)
	}
	return ctx, cancel
}

func resolveNode(db *graph.DB, name string) (graph.NodeID, error) {
	n := db.NodeID(name)
	if n < 0 {
		return 0, fmt.Errorf("%w: %q", eval.ErrUnknownNode, name)
	}
	return n, nil
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// LiveQuery is a retained incremental evaluation session: the answer
// set of one QueryRequest kept current under edge insertions without
// re-evaluating from scratch. It owns a private evaluator (never the
// shared cached one) whose delta overlay receives the insertions; the
// underlying database is not touched. A LiveQuery serializes its own
// methods and is safe for concurrent use.
type LiveQuery struct {
	e    *Engine
	plan *Plan

	mu  sync.Mutex
	ev  *eval.Evaluator
	run *eval.Run    // single-source sessions
	all *eval.AllRun // all-pairs sessions
}

// QueryIncremental evaluates the request once and retains the
// evaluation state for incremental re-evaluation under InsertEdge +
// Update. Boolean requests (Source and Target both set) are not
// incremental; use Query. All-pairs sessions track the sources present
// at session start (answers *to* later-inserted nodes are found;
// answer sets *from* them are not).
func (e *Engine) QueryIncremental(ctx context.Context, req QueryRequest) (*LiveQuery, error) {
	if e.closed.Load() {
		return nil, fmt.Errorf("%w", ErrClosed)
	}
	if req.Graph == nil {
		return nil, ErrNoGraph
	}
	if req.Mode == "" {
		req.Mode = ModeRewriting
	}
	if req.Target != "" {
		return nil, fmt.Errorf("engine: boolean requests are not incremental")
	}
	ctx, span := obs.StartSpan(ctx, "engine.query")
	defer span.End()
	span.SetAttr("mode_query", boolAttr(req.Mode == ModeQuery))
	span.SetAttr("incremental", 1)
	e.count(&e.queries, "engine.queries")

	inst := req.Instance
	if inst == nil && req.Mode == ModeQuery {
		var err error
		inst, err = core.ParseInstance(req.Query, req.Views)
		if err != nil {
			return nil, err
		}
		req.Instance = inst
	}
	plan, err := e.Rewrite(ctx, req.Request)
	if err != nil {
		return nil, err
	}
	ectx, cancel := e.evalContext(ctx, req.MaxStates, req.MaxTransitions, req.Timeout)
	defer cancel()
	d, err := e.queryAutomaton(ectx, plan, inst, req.Mode)
	if err != nil {
		return nil, err
	}
	ev, err := eval.New(d, req.Graph)
	if err != nil {
		return nil, err
	}
	lq := &LiveQuery{e: e, plan: plan, ev: ev}
	if req.Source != "" {
		src, err := resolveNode(req.Graph, req.Source)
		if err != nil {
			return nil, err
		}
		lq.run, err = ev.Start(ectx, src)
		if err != nil {
			return nil, err
		}
	} else {
		lq.all, err = ev.StartAll(ectx)
		if err != nil {
			return nil, err
		}
	}
	return lq, nil
}

// Plan returns the compiled plan the session evaluates.
func (q *LiveQuery) Plan() *Plan { return q.plan }

// InsertEdge adds from --label--> to to the session's delta overlay
// (creating nodes as needed; labels the evaluated automaton cannot
// follow are inert). The answer set catches up on the next Update.
func (q *LiveQuery) InsertEdge(from, label, to string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ev.Insert(from, label, to)
}

// Update re-evaluates over the pending insertions, reusing the
// retained visited state, and returns the newly discovered answers
// sorted by (from, to) name. The cumulative set (Answers) is identical
// to evaluating the extended graph from scratch.
func (q *LiveQuery) Update(ctx context.Context) ([]QueryAnswer, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ectx, cancel := q.e.evalContext(ctx, 0, 0, 0)
	defer cancel()
	var fresh []QueryAnswer
	if q.run != nil {
		nodes, err := q.run.Update(ectx)
		if err != nil {
			return nil, err
		}
		from := q.ev.NodeName(q.run.Source())
		for _, n := range nodes {
			fresh = append(fresh, QueryAnswer{From: from, To: q.ev.NodeName(n)})
		}
	} else {
		pairs, err := q.all.Update(ectx)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			fresh = append(fresh, QueryAnswer{From: q.ev.NodeName(p.From), To: q.ev.NodeName(p.To)})
		}
	}
	sortAnswers(fresh)
	return fresh, nil
}

// Answers returns the session's current cumulative answer set, sorted
// by (from, to) name.
func (q *LiveQuery) Answers() []QueryAnswer {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []QueryAnswer
	if q.run != nil {
		from := q.ev.NodeName(q.run.Source())
		for _, n := range q.run.Answers() {
			out = append(out, QueryAnswer{From: from, To: q.ev.NodeName(n)})
		}
	} else {
		for _, p := range q.all.Pairs() {
			out = append(out, QueryAnswer{From: q.ev.NodeName(p.From), To: q.ev.NodeName(p.To)})
		}
	}
	sortAnswers(out)
	return out
}

func sortAnswers(as []QueryAnswer) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].From != as[j].From {
			return as[i].From < as[j].From
		}
		return as[i].To < as[j].To
	})
}
