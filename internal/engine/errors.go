package engine

import (
	"errors"
	"fmt"
)

// ErrClosed is reported (wrapped) by every entry point of an Engine
// after Close; test with errors.Is.
var ErrClosed = errors.New("engine: closed")

// ErrQueueFull is the sentinel matched by errors.Is against an
// *AdmissionError: the engine's in-flight compile slots and its
// admission queue are both full, so the request was rejected without
// doing any work. Callers that want the numbers use errors.As with
// *AdmissionError.
var ErrQueueFull = errors.New("engine: admission queue full")

// AdmissionError reports that a compile request was turned away by the
// engine's admission control. It satisfies errors.Is(err, ErrQueueFull)
// and errors.As(err, **AdmissionError), mirroring how budget exhaustion
// satisfies both errors.As(err, **budget.ExceededError) and — through
// the bounded wrappers — errors.Is(err, automata.ErrStateLimit).
type AdmissionError struct {
	// InFlight is the number of compiles running when the request was
	// rejected; Limit is the configured cap; Queued/QueueLimit describe
	// the wait queue.
	InFlight, Limit, Queued, QueueLimit int
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("engine: admission queue full: %d/%d compiles in flight, %d/%d queued",
		e.InFlight, e.Limit, e.Queued, e.QueueLimit)
}

// Is makes errors.Is(err, ErrQueueFull) match any *AdmissionError, so
// the common "shed load" branch needs no type assertion.
func (e *AdmissionError) Is(target error) bool { return target == ErrQueueFull }
