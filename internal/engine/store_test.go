package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regexrw/internal/budget/faultinject"
	"regexrw/internal/obs"
	"regexrw/internal/planstore"
)

func openStore(t *testing.T, dir string, opts ...planstore.Option) *planstore.Store {
	t.Helper()
	s, err := planstore.Open(dir, append([]planstore.Option{
		planstore.WithMetrics(obs.NewRegistry()), planstore.WithoutSync(),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEngineStoreRestart is the crash-restart contract end to end: a
// first engine compiles and write-behinds; a second engine over the
// same directory serves the identical request from disk with zero
// compiles, and the restored plan answers every serving accessor like
// the compiled one did.
func TestEngineStoreRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	p1, err := e1.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	e1.FlushStore()
	if st := e1.Stats(); st.StoreSaves != 1 || st.Store == nil || st.Store.Writes != 1 {
		t.Fatalf("write-behind did not persist: %+v", st)
	}

	e2 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	p2, err := e2.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	st := e2.Stats()
	if st.Compiles != 0 {
		t.Fatalf("restart should not recompile: %+v", st)
	}
	if st.StoreLoads != 1 || st.Store.Hits != 1 {
		t.Fatalf("restart should hit the store: %+v", st)
	}
	if p2.Rewriting() != nil || p2.Instance() != nil {
		t.Fatal("restored plan should not carry construction state")
	}
	if p1.Regex().String() != p2.Regex().String() {
		t.Fatalf("restored regex %q != compiled %q", p2.Regex(), p1.Regex())
	}
	if p1.Exactness().Verdict != p2.Exactness().Verdict || p1.IsExact() != p2.IsExact() {
		t.Fatal("restored exactness differs")
	}
	if p1.States() != p2.States() || p1.Key() != p2.Key() {
		t.Fatal("restored states/key differ")
	}
	w1, ok1 := p1.ShortestWord()
	w2, ok2 := p2.ShortestWord()
	if ok1 != ok2 || len(w1) != len(w2) {
		t.Fatalf("shortest word differs: %v vs %v", w1, w2)
	}
	for _, word := range [][]string{{"e1"}, {"e2", "e1", "e3"}, {"e3"}, {}} {
		if p1.Accepts(word...) != p2.Accepts(word...) {
			t.Fatalf("Accepts(%v) differs between compiled and restored plan", word)
		}
	}
	if p1.IsEmpty() != p2.IsEmpty() || p1.IsSigmaEmpty() != p2.IsSigmaEmpty() {
		t.Fatal("emptiness answers differ")
	}
	// Third request on the same engine is now an in-memory hit.
	if _, err := e2.Rewrite(context.Background(), ex2); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.Hits != 1 || st.Compiles != 0 {
		t.Fatalf("second request should be an LRU hit: %+v", st)
	}
}

// TestEngineStoreWitnessSurvives: an inexact plan's witness (a Σ-word,
// whose alphabet does not survive into the stored Σ_E automata)
// round-trips by name.
func TestEngineStoreWitnessSurvives(t *testing.T) {
	req := Request{Query: "a+b", Views: map[string]string{"e1": "a"}}
	dir := t.TempDir()
	e1 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	p1, err := e1.Rewrite(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if p1.IsExact() || len(p1.Witness()) == 0 {
		t.Fatalf("fixture should be inexact with a witness, got %v", p1.Witness())
	}
	e1.FlushStore()
	e2 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	p2, err := e2.Rewrite(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Stats().Compiles != 0 {
		t.Fatal("restart recompiled")
	}
	if got, want := p2.Witness(), p1.Witness(); len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("witness lost in restore: %v vs %v", got, want)
	}
}

// TestEngineWarmStart: WarmStart pre-populates the LRU from disk, so
// the first live request per restored key is already a cache hit.
func TestEngineWarmStart(t *testing.T) {
	dir := t.TempDir()
	e1 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	if _, err := e1.Rewrite(context.Background(), ex2); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Rewrite(context.Background(), Request{Query: "a·a", Views: map[string]string{"e1": "a"}}); err != nil {
		t.Fatal(err)
	}
	e1.FlushStore()

	e2 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	n, err := e2.WarmStart(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("WarmStart = %d, %v; want 2, nil", n, err)
	}
	if st := e2.Stats(); st.StoreLoads != 2 || st.CachedPlans != 2 {
		t.Fatalf("after warm start: %+v", st)
	}
	if _, err := e2.Rewrite(context.Background(), ex2); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.Hits != 1 || st.Compiles != 0 {
		t.Fatalf("request after warm start should be an LRU hit: %+v", st)
	}
	// A cancelled context stops the sweep with the loaded-so-far count.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	e3 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	if _, err := e3.WarmStart(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled WarmStart: %v", err)
	}
}

// TestEngineStoreDegradation: a store whose disk fails on every touch
// never fails a request — compiles serve the traffic — and the breaker
// opens and is visible on Stats.
func TestEngineStoreDegradation(t *testing.T) {
	hook := func(op, path string, data []byte) ([]byte, error) {
		return nil, errors.New("disk gone")
	}
	s := openStore(t, t.TempDir(), planstore.WithHook(hook), planstore.WithBreaker(2, time.Hour))
	e := New(WithMetrics(obs.NewRegistry()), WithPlanStore(s))
	for i, req := range []Request{
		ex2,
		{Query: "a·a", Views: map[string]string{"e1": "a"}},
		{Query: "a+b", Views: map[string]string{"e1": "a"}},
	} {
		if _, err := e.Rewrite(context.Background(), req); err != nil {
			t.Fatalf("request %d failed because of a sick store: %v", i, err)
		}
	}
	e.FlushStore()
	st := e.Stats()
	if st.Compiles != 3 || st.StoreLoads != 0 || st.StoreSaves != 0 {
		t.Fatalf("degraded stats: %+v", st)
	}
	if st.Store == nil || !st.Store.BreakerOpen || st.Store.IOErrors == 0 {
		t.Fatalf("breaker state not observable: %+v", st.Store)
	}
}

// TestEngineStoreCorruptEntryRecompiles: a bit-flipped entry is
// quarantined on load and the request transparently recompiles — the
// durability property that a corrupt plan is never served.
func TestEngineStoreCorruptEntryRecompiles(t *testing.T) {
	dir := t.TempDir()
	e1 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	p1, err := e1.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	e1.FlushStore()

	hook, _ := faultinject.IOFault(faultinject.IORead, 1, faultinject.IOBitFlip)
	s2 := openStore(t, dir, planstore.WithHook(hook))
	e2 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(s2))
	p2, err := e2.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	st := e2.Stats()
	if st.Compiles != 1 || st.StoreLoads != 0 {
		t.Fatalf("corrupt entry should force a recompile: %+v", st)
	}
	if st.Store.Corrupt != 1 || st.Store.Quarantined != 1 {
		t.Fatalf("corrupt entry not quarantined: %+v", st.Store)
	}
	if p2.Regex().String() != p1.Regex().String() {
		t.Fatal("recompiled plan differs")
	}
}

// TestEnginePartialBypassesStore: partial plans carry an anytime search
// result that is not persisted; the store must see neither loads nor
// saves for them.
func TestEnginePartialBypassesStore(t *testing.T) {
	s := openStore(t, t.TempDir())
	e := New(WithMetrics(obs.NewRegistry()), WithPlanStore(s))
	if _, err := e.Rewrite(context.Background(), Request{
		Query: "a+b", Views: map[string]string{"e1": "a"}, Partial: true,
	}); err != nil {
		t.Fatal(err)
	}
	e.FlushStore()
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("partial plan persisted: %d entries, %v", n, err)
	}
	if st := s.Stats(); st.Hits+st.Misses+st.Writes != 0 {
		t.Fatalf("partial plan touched the store: %+v", st)
	}
}

// TestEngineStoreSingleflightSharesLoad: concurrent identical misses
// produce exactly one disk load; followers share the leader's restored
// plan.
func TestEngineStoreSingleflightSharesLoad(t *testing.T) {
	dir := t.TempDir()
	e1 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	if _, err := e1.Rewrite(context.Background(), ex2); err != nil {
		t.Fatal(err)
	}
	e1.FlushStore()

	e2 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e2.Rewrite(context.Background(), ex2); err != nil {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatal("concurrent restored requests failed")
	}
	st := e2.Stats()
	if st.Compiles != 0 {
		t.Fatalf("restored key recompiled under concurrency: %+v", st)
	}
	if st.StoreLoads+st.Hits+st.Dedups != 8 || st.StoreLoads < 1 {
		t.Fatalf("loads+hits+dedups should cover all 8 requests: %+v", st)
	}
}

// TestRewriteWaiterCancellation pins the singleflight follower
// contract: a follower whose context is cancelled while the leader is
// still compiling detaches promptly with its own ctx error instead of
// blocking until the leader finishes. Run under -race in CI.
func TestRewriteWaiterCancellation(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	key := Key("deadbeef")
	release := make(chan struct{})
	started := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderErr = e.serve(context.Background(), key, false, 0, 0, 0,
			func(context.Context) (*Plan, error) {
				close(started)
				<-release
				return &Plan{key: key}, nil
			})
	}()
	<-started

	fctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := e.serve(fctx, key, false, 0, 0, 0,
			func(context.Context) (*Plan, error) { t.Error("follower must not compile"); return nil, nil })
		followerDone <- err
	}()
	// Wait until the follower is registered as a dedup waiter, then
	// cancel it while the leader still holds the call.
	deadline := time.After(5 * time.Second)
	for e.Stats().Dedups == 0 {
		select {
		case <-deadline:
			t.Fatal("follower never joined the in-flight call")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled follower returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not detach while leader was compiling")
	}
	close(release)
	wg.Wait()
	if leaderErr != nil {
		t.Fatalf("leader: %v", leaderErr)
	}
}
