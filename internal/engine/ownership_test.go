package engine

import (
	"context"
	"testing"

	"regexrw/internal/core"
	"regexrw/internal/obs"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

var otherReq = Request{
	Query: "a·b*",
	Views: map[string]string{"v1": "a", "v2": "b"},
}

// TestWarmStartOwnershipFilter is the cluster scaling contract on the
// engine: under WithOwnership, WarmStart materializes only owned keys,
// so each replica restores ~1/N of the persisted plan universe — while
// the request path still serves non-owned keys (a degraded replica
// must be able to compute anything).
func TestWarmStartOwnershipFilter(t *testing.T) {
	dir := t.TempDir()
	e1 := New(WithMetrics(obs.NewRegistry()), WithPlanStore(openStore(t, dir)))
	p1, err := e1.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Rewrite(context.Background(), otherReq); err != nil {
		t.Fatal(err)
	}
	e1.FlushStore()
	if st := e1.Stats(); st.StoreSaves != 2 {
		t.Fatalf("want both plans persisted, got %+v", st)
	}

	// Replica that owns only ex2's key.
	owned := p1.Key()
	e2 := New(
		WithMetrics(obs.NewRegistry()),
		WithPlanStore(openStore(t, dir)),
		WithOwnership(func(k Key) bool { return k == owned }),
	)
	n, err := e2.WarmStart(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("warm start restored %d plans, want only the owned one", n)
	}
	if st := e2.Stats(); st.CachedPlans != 1 {
		t.Fatalf("cache holds %d plans, want 1", st.CachedPlans)
	}
	if !e2.Owns(owned) || e2.Owns(Key("deadbeef")) {
		t.Fatal("Owns must mirror the installed filter")
	}

	// The owned key is a cache hit; the non-owned one still serves —
	// through the store tier, not a compile (ownership never makes a
	// request slower than it has to be, it only bounds bulk restore).
	if _, err := e2.Rewrite(context.Background(), ex2); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.Hits != 1 {
		t.Fatalf("owned key should be a warm hit: %+v", st)
	}
	if _, err := e2.Rewrite(context.Background(), otherReq); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.Compiles != 0 {
		t.Fatalf("non-owned key should restore from the store on demand, not compile: %+v", st)
	}

	// Without a filter, everything is owned.
	e3 := New(WithMetrics(obs.NewRegistry()))
	if !e3.Owns(owned) || !e3.Owns(Key("anything")) {
		t.Fatal("unfiltered engine owns every key")
	}
}

// TestExportedKeyHelpers pins that the exported key constructors agree
// with the keys the engine actually caches under — the cluster router
// and client route by these, so disagreement would send requests to
// the wrong replica.
func TestExportedKeyHelpers(t *testing.T) {
	inst, err := core.ParseInstance(ex2.Query, ex2.Views)
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithMetrics(obs.NewRegistry()))
	p, err := e.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	if got := InstanceKey(inst, false); got != p.Key() {
		t.Fatalf("InstanceKey = %s, plan cached under %s", got, p.Key())
	}
	if InstanceKey(inst, true) == InstanceKey(inst, false) {
		t.Fatal("partial and full instances must key differently")
	}

	q0, err := rpq.ParseQuery("fa", map[string]string{"fa": "=a"})
	if err != nil {
		t.Fatal(err)
	}
	views := []rpq.View{{Name: "q1", Query: q0}}
	tt := theory.New()
	tt.AddConstants("a")
	rp, err := e.RewriteRPQ(context.Background(), RPQRequest{Query: q0, Views: views, Theory: tt})
	if err != nil {
		t.Fatal(err)
	}
	if got := RPQKey(q0, views, tt, rpq.Grounded); got != rp.Key() {
		t.Fatalf("RPQKey = %s, plan cached under %s", got, rp.Key())
	}
}
