package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
	"regexrw/internal/workload"
)

var ex2 = Request{
	Query: "a·(b·a+c)*",
	Views: map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"},
}

func TestEngineRewriteEX2(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	p, err := e.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Regex().String(); got != "e2*·e1·e3*" {
		t.Fatalf("rewriting = %s, want e2*·e1·e3*", got)
	}
	if !p.IsExact() {
		t.Fatalf("expected exact, got %v", p.Exactness().Verdict)
	}
	if !p.Accepts("e2", "e1", "e3") || p.Accepts("e3") {
		t.Fatal("acceptance through the plan disagrees with the paper's Example 2")
	}
	if w, ok := p.ShortestWord(); !ok || len(w) == 0 {
		t.Fatalf("expected a shortest witness word, got %v/%v", w, ok)
	}
	if p.States() <= 0 {
		t.Fatalf("cold compile should charge states, got %d", p.States())
	}
	if p.MinimalDFA().NumStates() == 0 {
		t.Fatal("expected a nonempty minimal DFA")
	}

	// The second identical request — spelled differently — is a cache
	// hit returning the same immutable plan.
	respelled := Request{
		Query: "a (b a + c)*",
		Views: map[string]string{"e3": "c", "e2": "a.c* . b", "e1": "a"},
	}
	p2, err := e.Rewrite(context.Background(), respelled)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatal("respelled instance missed the plan cache")
	}
	s := e.Stats()
	if s.Compiles != 1 || s.Hits != 1 || s.Misses != 1 || s.Requests != 2 {
		t.Fatalf("stats = %+v, want 1 compile, 1 hit, 1 miss, 2 requests", s)
	}
}

func TestEngineSingleflightDedup(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	const n = 32
	var wg sync.WaitGroup
	plans := make([]*Plan, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			plans[i], errs[i] = e.Rewrite(context.Background(), ex2)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if plans[i] != plans[0] {
			t.Fatalf("request %d got a different plan instance", i)
		}
	}
	s := e.Stats()
	if s.Compiles != 1 {
		t.Fatalf("singleflight should compile exactly once, compiled %d times", s.Compiles)
	}
	if s.Hits+s.Misses != n {
		t.Fatalf("every request is a lookup: hits %d + misses %d != %d", s.Hits, s.Misses, n)
	}
	// Every miss either led the compile or joined it.
	if s.Misses != s.Compiles+s.Dedups {
		t.Fatalf("misses %d != compiles %d + dedups %d", s.Misses, s.Compiles, s.Dedups)
	}
}

func TestEngineConcurrentDistinct(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	const distinct, repeat = 8, 4
	var wg sync.WaitGroup
	errCh := make(chan error, distinct*repeat)
	for d := 0; d < distinct; d++ {
		req := Request{
			Query: fmt.Sprintf("a·b{%d}", d+1),
			Views: map[string]string{"e1": "a", "e2": "b"},
		}
		for r := 0; r < repeat; r++ {
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				if _, err := e.Rewrite(context.Background(), req); err != nil {
					errCh <- err
				}
			}(req)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Compiles != distinct {
		t.Fatalf("expected %d compiles (one per distinct instance), got %d", distinct, s.Compiles)
	}
	if s.CachedPlans != distinct {
		t.Fatalf("expected %d cached plans, got %d", distinct, s.CachedPlans)
	}
}

// TestEngineStatsReconcileWithMetrics drives a mixed workload — misses,
// hits, evictions — through an engine with a private registry and
// checks that the Stats counters and the obs metrics tell the same
// story.
func TestEngineStatsReconcileWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	// Tiny cache: one entry per shard, so distinct instances sharing a
	// shard evict each other.
	e := New(WithMetrics(reg), WithPlanCache(cacheShards))
	ctx := context.Background()
	req := func(i int) Request {
		return Request{
			Query: fmt.Sprintf("a·b{%d}", i+1),
			Views: map[string]string{"e1": "a", "e2": "b"},
		}
	}
	// 40 distinct instances into 16 slots: evictions are guaranteed.
	for i := 0; i < 40; i++ {
		if _, err := e.Rewrite(ctx, req(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The most recent instance is MRU in its shard: a guaranteed hit.
	for r := 0; r < 5; r++ {
		if _, err := e.Rewrite(ctx, req(39)); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Evictions == 0 {
		t.Fatal("expected evictions from the tiny cache")
	}
	if s.Hits != 5 {
		t.Fatalf("hits = %d, want 5 warm hits", s.Hits)
	}
	for name, want := range map[string]int64{
		"engine.requests":      s.Requests,
		"engine.compiles":      s.Compiles,
		"cache.plan.hits":      s.Hits,
		"cache.plan.misses":    s.Misses,
		"cache.plan.dedup":     s.Dedups,
		"cache.plan.evictions": s.Evictions,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("metric %s = %d, Stats says %d", name, got, want)
		}
	}
	if got := reg.Gauge("cache.plan.size").Value(); got != int64(s.CachedPlans) {
		t.Errorf("gauge cache.plan.size = %d, Stats says %d", got, s.CachedPlans)
	}
	if s.Hits+s.Misses != s.Requests {
		t.Errorf("hits %d + misses %d != requests %d", s.Hits, s.Misses, s.Requests)
	}
}

func TestEngineBudgetDefaults(t *testing.T) {
	e := New(WithBudgetDefaults(50, 0), WithMetrics(obs.NewRegistry()))
	_, err := e.Rewrite(context.Background(), Request{Instance: workload.DetBlowupFamily(10)})
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("expected *budget.ExceededError, got %v", err)
	}
	if ex.Stage == "" {
		t.Fatal("exceeded error must name the stage that gave out")
	}
	// Failed compiles are not cached: the next request compiles again.
	_, _ = e.Rewrite(context.Background(), Request{Instance: workload.DetBlowupFamily(10)})
	if s := e.Stats(); s.Compiles != 2 {
		t.Fatalf("failed compiles must not be cached, compiles = %d", s.Compiles)
	}
}

func TestEngineRequestTightensBudget(t *testing.T) {
	e := New(WithBudgetDefaults(1_000_000, 0), WithMetrics(obs.NewRegistry()))
	_, err := e.Rewrite(context.Background(), Request{
		Instance:  workload.DetBlowupFamily(10),
		MaxStates: 50,
	})
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("per-request MaxStates should trip, got %v", err)
	}
	if ex.Limit != 50 {
		t.Fatalf("tripped at limit %d, want the request's 50", ex.Limit)
	}
	// A request cannot widen the engine's cap.
	e2 := New(WithBudgetDefaults(50, 0), WithMetrics(obs.NewRegistry()))
	_, err = e2.Rewrite(context.Background(), Request{
		Instance:  workload.DetBlowupFamily(10),
		MaxStates: 1_000_000,
	})
	if !errors.As(err, &ex) {
		t.Fatalf("request must not widen the engine cap, got %v", err)
	}
	if ex.Limit != 50 {
		t.Fatalf("tripped at limit %d, want the engine's 50", ex.Limit)
	}
}

func TestEngineAdmission(t *testing.T) {
	e := New(WithAdmissionLimit(1, 0), WithMetrics(obs.NewRegistry()))
	// Stall the first compile inside the pipeline with a blocking budget
	// hook on the caller's context.
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	stall := budget.New(budget.WithHook(func(string) error {
		once.Do(func() { close(entered); <-release })
		return nil
	}))
	done := make(chan error, 1)
	go func() {
		_, err := e.Rewrite(budget.With(context.Background(), stall), ex2)
		done <- err
	}()
	<-entered

	// A distinct instance now finds the single compile slot taken and
	// the queue (capacity 0) full.
	_, err := e.Rewrite(context.Background(), Request{
		Query: "a·a", Views: map[string]string{"e1": "a"},
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("expected *AdmissionError, got %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("stalled compile should finish cleanly: %v", err)
	}
	if s := e.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
}

func TestEngineClosed(t *testing.T) {
	e := New()
	e.Close()
	if _, err := e.Rewrite(context.Background(), ex2); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestEngineBatch(t *testing.T) {
	e := New(WithWorkers(4), WithMetrics(obs.NewRegistry()))
	reqs := []Request{
		ex2,
		{Query: "a·(", Views: map[string]string{"e1": "a"}},     // parse error
		{Instance: workload.DetBlowupFamily(10), MaxStates: 50}, // budget error
		ex2, // duplicate of [0]: served by cache or singleflight
	}
	results := e.RewriteBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	if results[0].Err != nil || results[0].Plan == nil {
		t.Fatalf("item 0: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("item 1 should fail to parse")
	}
	var ex *budget.ExceededError
	if !errors.As(results[2].Err, &ex) {
		t.Fatalf("item 2 should exhaust its budget, got %v", results[2].Err)
	}
	if results[3].Err != nil || results[3].Plan != results[0].Plan {
		t.Fatal("item 3 should share item 0's plan")
	}
	if s := e.Stats(); s.Compiles > 3 {
		t.Fatalf("identical batch items must compile once, compiles = %d", s.Compiles)
	}
}

func TestEngineSubmit(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	h := e.Submit(context.Background(), ex2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := h.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Regex().String(); got != "e2*·e1·e3*" {
		t.Fatalf("async rewriting = %s", got)
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("Done must be closed after Result returns")
	}
}

func TestEngineRPQ(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("a", "b", "c")
	q, err := rpq.ParseQuery("fa·(fb+fc)", map[string]string{
		"fa": "=a", "fb": "=b", "fc": "=c",
	})
	if err != nil {
		t.Fatal(err)
	}
	views := []rpq.View{
		{Name: "q1", Query: rpq.Atomic("fa", theory.Eq("a"))},
		{Name: "q2", Query: rpq.Atomic("fb", theory.Eq("b"))},
		{Name: "q3", Query: rpq.Atomic("fc", theory.Eq("c"))},
	}
	e := New(WithMetrics(obs.NewRegistry()))
	req := RPQRequest{Query: q, Views: views, Theory: tt, Method: rpq.Grounded}
	p, err := e.RewriteRPQ(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if p.RPQ() == nil {
		t.Fatal("expected an RPQ plan")
	}
	if !p.IsExact() {
		t.Fatalf("q1·(q2+q3) should rewrite fa·(fb+fc) exactly, verdict %v", p.Exactness().Verdict)
	}
	if !p.Accepts("q1", "q2") || !p.Accepts("q1", "q3") || p.Accepts("q2") {
		t.Fatal("RPQ plan acceptance disagrees with the expected rewriting")
	}
	// Warm: same problem again is a hit on the same plan.
	p2, err := e.RewriteRPQ(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatal("identical RPQ request missed the cache")
	}
	// The direct method is a distinct plan.
	p3, err := e.RewriteRPQ(context.Background(), RPQRequest{Query: q, Views: views, Theory: tt, Method: rpq.Direct})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p {
		t.Fatal("a different method must compile a different plan")
	}
	if s := e.Stats(); s.Compiles != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 compiles and 1 hit", s)
	}
}

func TestEnginePartialRequest(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	// No view covers c, so the maximal rewriting is not exact and the
	// partial search must add an elementary view.
	req := Request{
		Query:   "a·(b·a+c)*",
		Views:   map[string]string{"e1": "a", "e2": "a·c*·b"},
		Partial: true,
	}
	p, err := e.Rewrite(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsExact() {
		t.Fatal("expected a non-exact rewriting")
	}
	if len(p.Witness()) == 0 {
		t.Fatal("a non-exact plan must carry a witness")
	}
	if p.Partial() == nil || !p.Partial().Exact {
		t.Fatalf("expected an exact partial extension, got %+v", p.Partial())
	}
	// The same instance without Partial is a different cache entry and
	// carries no partial result.
	plain, err := e.Rewrite(context.Background(), Request{Query: req.Query, Views: req.Views})
	if err != nil {
		t.Fatal(err)
	}
	if plain == p || plain.Partial() != nil {
		t.Fatal("partial and plain plans must be distinct cache entries")
	}
}

// TestPlanConcurrentReads hammers one cached plan from many goroutines
// under the race detector: every accessor reads only precomputed state.
func TestPlanConcurrentReads(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	p, err := e.Rewrite(context.Background(), ex2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = p.Regex().String()
				_ = p.IsExact()
				_, _ = p.ShortestWord()
				_ = p.Accepts("e2", "e1", "e3")
				_ = p.MinimalDFA().NumStates()
				_ = p.IsSigmaEmpty()
				_ = p.Rewriting().IsEmpty()
			}
		}()
	}
	wg.Wait()
}

// TestEngineObservability checks the engine's span names appear in a
// per-request trace.
func TestEngineObservability(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := e.Rewrite(ctx, ex2); err != nil {
		t.Fatal(err)
	}
	root := tr.Export()
	if root == nil {
		t.Fatal("expected a trace")
	}
	var names []string
	var walk func(s *obs.SpanJSON)
	walk = func(s *obs.SpanJSON) {
		names = append(names, s.Name)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	want := map[string]bool{"engine.rewrite": false, "engine.compile": false, "core.maximal_rewriting": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("span %s missing from trace %v", n, names)
		}
	}
}
