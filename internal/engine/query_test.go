package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"regexrw/internal/budget"
	"regexrw/internal/eval"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
)

// ex2ViewGraph is a view-image database for the ex2 instance: edge
// labels are the view names, so ModeRewriting (e2*·e1·e3*) applies.
//
//	x --e2--> y --e1--> z --e3--> w
func ex2ViewGraph() *graph.DB {
	db := graph.New(nil)
	db.AddEdge("x", "e2", "y")
	db.AddEdge("y", "e1", "z")
	db.AddEdge("z", "e3", "w")
	return db
}

func answers(as []QueryAnswer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.From + "→" + a.To
	}
	return out
}

func TestQueryRewritingMode(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	res, err := e.Query(context.Background(), QueryRequest{
		Request: ex2,
		Graph:   ex2ViewGraph(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// e2*·e1·e3* over the chain: from x (e2·e1, e2·e1·e3) and from y
	// (e1, e1·e3).
	want := []string{"x→z", "x→w", "y→z", "y→w"}
	got := answers(res.Answers)
	if len(got) != len(want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
	set := map[string]bool{}
	for _, g := range got {
		set[g] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Fatalf("missing answer %s in %v", w, got)
		}
	}
	if res.Truncated || res.Boolean {
		t.Fatalf("unexpected flags in %+v", res)
	}
	if s := e.Stats(); s.Queries != 1 {
		t.Fatalf("Stats.Queries = %d, want 1", s.Queries)
	}
}

func TestQueryModeQueryOverBaseGraph(t *testing.T) {
	// Base-alphabet graph: x --a--> y --b--> z --a--> w spells a·b·a,
	// a word of a·(b·a+c)*.
	db := graph.New(nil)
	db.AddEdge("x", "a", "y")
	db.AddEdge("y", "b", "z")
	db.AddEdge("z", "a", "w")
	e := New(WithMetrics(obs.NewRegistry()))
	res, err := e.Query(context.Background(), QueryRequest{
		Request: ex2,
		Graph:   db,
		Mode:    ModeQuery,
		Source:  "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x→y", "x→w"}
	got := answers(res.Answers)
	if fmt.Sprint(got) != fmt.Sprint([]string{"x→w", "x→y"}) {
		t.Fatalf("answers = %v, want %v (sorted)", got, want)
	}
}

func TestQueryBoolean(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	for _, tc := range []struct {
		src, dst string
		want     bool
	}{
		{"x", "w", true},
		{"y", "z", true},
		{"w", "x", false},
		{"x", "y", false}, // e2 alone is not in e2*·e1·e3*
	} {
		res, err := e.Query(context.Background(), QueryRequest{
			Request: ex2, Graph: ex2ViewGraph(), Source: tc.src, Target: tc.dst,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Boolean || res.Matched != tc.want {
			t.Fatalf("Boolean(%s,%s) = %v, want %v", tc.src, tc.dst, res.Matched, tc.want)
		}
	}
}

func TestQueryUnknownNodeAndMissingGraph(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	_, err := e.Query(context.Background(), QueryRequest{
		Request: ex2, Graph: ex2ViewGraph(), Source: "nope",
	})
	if !errors.Is(err, eval.ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	if _, err := e.Query(context.Background(), QueryRequest{Request: ex2}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("want ErrNoGraph, got %v", err)
	}
}

func TestQueryMaxAnswersTruncates(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	res, err := e.Query(context.Background(), QueryRequest{
		Request: ex2, Graph: ex2ViewGraph(), MaxAnswers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Answers) != 2 {
		t.Fatalf("want 2 answers with Truncated, got %d (truncated=%v)", len(res.Answers), res.Truncated)
	}
}

func TestQueryEvaluatorCache(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(WithMetrics(reg))
	db := ex2ViewGraph()
	for i := 0; i < 3; i++ {
		if _, err := e.Query(context.Background(), QueryRequest{Request: ex2, Graph: db}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap["cache.eval.misses"] != 1 || snap["cache.eval.hits"] != 2 {
		t.Fatalf("evaluator cache: misses=%d hits=%d, want 1/2",
			snap["cache.eval.misses"], snap["cache.eval.hits"])
	}
	// A different graph is a different snapshot — no false sharing.
	if _, err := e.Query(context.Background(), QueryRequest{Request: ex2, Graph: ex2ViewGraph()}); err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); snap["cache.eval.misses"] != 2 {
		t.Fatalf("distinct graph must miss the evaluator cache, misses=%d", snap["cache.eval.misses"])
	}
}

func TestQueryBudgetExceeded(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	// Compile unconstrained first so the plan is cached; then evaluate
	// under a context budget too small for the BFS.
	if _, err := e.Query(context.Background(), QueryRequest{Request: ex2, Graph: ex2ViewGraph()}); err != nil {
		t.Fatal(err)
	}
	ctx := budget.With(context.Background(), budget.New(budget.MaxStates(1)))
	_, err := e.Query(ctx, QueryRequest{Request: ex2, Graph: ex2ViewGraph()})
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("want *budget.ExceededError, got %v", err)
	}
}

func TestQueryIncremental(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	db := graph.New(nil)
	db.AddEdge("x", "e2", "y")
	db.AddEdge("y", "e1", "z")
	lq, err := e.QueryIncremental(context.Background(), QueryRequest{
		Request: ex2, Graph: db, Source: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := answers(lq.Answers()); fmt.Sprint(got) != fmt.Sprint([]string{"x→z"}) {
		t.Fatalf("initial answers = %v, want [x→z]", got)
	}
	lq.InsertEdge("z", "e3", "v")
	fresh, err := lq.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := answers(fresh); fmt.Sprint(got) != fmt.Sprint([]string{"x→v"}) {
		t.Fatalf("fresh answers = %v, want [x→v]", got)
	}
	// The cumulative set matches a from-scratch evaluation of the
	// extended graph.
	db2 := graph.New(nil)
	db2.AddEdge("x", "e2", "y")
	db2.AddEdge("y", "e1", "z")
	db2.AddEdge("z", "e3", "v")
	res, err := e.Query(context.Background(), QueryRequest{Request: ex2, Graph: db2, Source: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(answers(lq.Answers())) != fmt.Sprint(answers(res.Answers)) {
		t.Fatalf("incremental %v != from-scratch %v", answers(lq.Answers()), answers(res.Answers))
	}
	// The delta overlay never leaked into the shared database.
	if db.NumEdges() != 2 {
		t.Fatalf("underlying graph mutated: %d edges", db.NumEdges())
	}
	// Boolean requests are not incremental.
	if _, err := e.QueryIncremental(context.Background(), QueryRequest{
		Request: ex2, Graph: db, Source: "x", Target: "z",
	}); err == nil {
		t.Fatal("boolean incremental session must be rejected")
	}
}

func TestQueryIncrementalAllPairs(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	db := ex2ViewGraph()
	lq, err := e.QueryIncremental(context.Background(), QueryRequest{Request: ex2, Graph: db})
	if err != nil {
		t.Fatal(err)
	}
	before := len(lq.Answers())
	lq.InsertEdge("w", "e3", "u") // extends x→w and y→w chains by e3
	fresh, err := lq.Update(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) == 0 {
		t.Fatal("inserted e3 edge should unlock new answers")
	}
	if got := len(lq.Answers()); got != before+len(fresh) {
		t.Fatalf("cumulative answers %d != %d before + %d fresh", got, before, len(fresh))
	}
}

func TestQueryAfterClose(t *testing.T) {
	e := New(WithMetrics(obs.NewRegistry()))
	e.Close()
	if _, err := e.Query(context.Background(), QueryRequest{Request: ex2, Graph: ex2ViewGraph()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := e.QueryIncremental(context.Background(), QueryRequest{Request: ex2, Graph: ex2ViewGraph()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
