package engine

import (
	"container/list"
	"sync"
)

// planCache is a sharded LRU of compiled plans. Sharding bounds lock
// contention under concurrent serving: the shard is picked from the
// first byte of the key (keys are hex SHA-256, so the byte is uniform),
// and each shard holds its own lock, recency list and capacity slice.
// The cache never blocks a compile — callers look up, compile on miss,
// then add.
type planCache struct {
	shards []*cacheShard
}

// cacheShard is one lock's worth of LRU: map for O(1) lookup, intrusive
// list for recency order, front = most recently used.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	items map[Key]*list.Element
	order *list.List // of *cacheEntry
}

type cacheEntry struct {
	key  Key
	plan *Plan
}

// cacheShards is the fixed shard count. 16 shards keep the per-shard
// critical sections uncontended well past the worker counts the par
// pool runs (GOMAXPROCS), while staying negligible for tiny caches —
// a capacity below the shard count degenerates to one entry per shard.
const cacheShards = 16

// newPlanCache returns an LRU holding at most capacity plans in total.
// Capacity is split evenly across shards (rounding up, so the true
// bound is within shards-1 of the request); capacity <= 0 disables
// caching and every lookup misses.
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return &planCache{}
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &planCache{shards: make([]*cacheShard, cacheShards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   perShard,
			items: make(map[Key]*list.Element),
			order: list.New(),
		}
	}
	return c
}

// shard maps a key to its shard. Keys are lowercase hex, so the first
// byte alone carries 4 uniform bits — enough for 16 shards.
func (c *planCache) shard(k Key) *cacheShard {
	if len(c.shards) == 0 || len(k) == 0 {
		return nil
	}
	return c.shards[int(hexNibble(k[0]))%len(c.shards)]
}

func hexNibble(b byte) byte {
	if b >= 'a' {
		return b - 'a' + 10
	}
	return b - '0'
}

// get returns the cached plan for k and promotes it to most recently
// used; ok is false on a miss or a disabled cache.
func (c *planCache) get(k Key) (*Plan, bool) {
	s := c.shard(k)
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// add inserts the plan under k, evicting from the shard's cold end when
// the shard is full. It reports how many entries were evicted (0 or 1;
// also 0 when the key was already present — the concurrent-compile
// race — in which case the existing entry is kept and promoted).
func (c *planCache) add(k Key, p *Plan) (evicted int) {
	s := c.shard(k)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		return 0
	}
	s.items[k] = s.order.PushFront(&cacheEntry{key: k, plan: p})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// len returns the total number of cached plans across shards.
func (c *planCache) len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}
