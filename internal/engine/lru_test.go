package engine

import (
	"fmt"
	"testing"
)

func testKey(i int) Key {
	// Spread across shards via the first hex digit.
	return Key(fmt.Sprintf("%x", i%16) + fmt.Sprintf("%063d", i))
}

func TestPlanCacheLRUEviction(t *testing.T) {
	// One shard's worth of keys: same first nibble, so capacity is the
	// per-shard slice and eviction order is observable.
	c := newPlanCache(3 * cacheShards) // 3 per shard
	key := func(i int) Key { return Key("a" + fmt.Sprintf("%063d", i)) }
	for i := 0; i < 3; i++ {
		if ev := c.add(key(i), &Plan{key: key(i)}); ev != 0 {
			t.Fatalf("unexpected eviction at insert %d", i)
		}
	}
	// Touch key 0 so key 1 is now the coldest.
	if _, ok := c.get(key(0)); !ok {
		t.Fatal("expected hit on key 0")
	}
	if ev := c.add(key(3), &Plan{key: key(3)}); ev != 1 {
		t.Fatalf("expected exactly one eviction, got %d", ev)
	}
	if _, ok := c.get(key(1)); ok {
		t.Fatal("expected the least-recently-used entry (key 1) to be evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.get(key(i)); !ok {
			t.Fatalf("expected key %d to survive", i)
		}
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	c := newPlanCache(0)
	if ev := c.add(testKey(1), &Plan{}); ev != 0 {
		t.Fatal("disabled cache must not evict")
	}
	if _, ok := c.get(testKey(1)); ok {
		t.Fatal("disabled cache must always miss")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache must stay empty")
	}
}

func TestPlanCacheDuplicateAdd(t *testing.T) {
	c := newPlanCache(16)
	first := &Plan{key: testKey(1)}
	c.add(testKey(1), first)
	c.add(testKey(1), &Plan{key: testKey(1)}) // concurrent-compile race: keep the first
	if got, _ := c.get(testKey(1)); got != first {
		t.Fatal("duplicate add must keep the existing entry")
	}
	if c.len() != 1 {
		t.Fatalf("duplicate add must not grow the cache, len=%d", c.len())
	}
}

func TestPlanCacheSharding(t *testing.T) {
	c := newPlanCache(16 * cacheShards)
	for i := 0; i < 200; i++ {
		c.add(testKey(i), &Plan{key: testKey(i)})
	}
	if c.len() != 200 {
		t.Fatalf("expected 200 cached plans, got %d", c.len())
	}
	for i := 0; i < 200; i++ {
		if _, ok := c.get(testKey(i)); !ok {
			t.Fatalf("missing key %d", i)
		}
	}
}
