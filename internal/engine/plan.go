package engine

import (
	"context"
	"errors"
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/planstore"
	"regexrw/internal/regex"
	"regexrw/internal/rpq"
)

// Plan is the immutable compiled artifact of one rewriting problem:
// the Σ_E- (or Σ_Q-) maximal rewriting together with everything a
// serving layer answers from — the simplified regular expression, the
// exactness report, the canonical minimal DFA and the shortest witness
// word. A Plan is compiled once (Engine.Rewrite on a cache miss) and
// then shared by every request that hits its cache entry, so all of
// these derived views are computed eagerly at compile time; afterwards
// every method only reads precomputed state, which makes a Plan safe
// for unlimited concurrent use.
//
// The underlying core.Rewriting is reachable through Rewriting() for
// callers that need the construction's automata (A_d, A', diagnostics
// like ExplainRejection). Its own lazily-cached derivations (Expand)
// were forced during compile, so those accessors are concurrency-safe
// on a cached plan too.
type Plan struct {
	key  Key
	inst *core.Instance // nil for RPQ plans
	rw   *core.Rewriting
	rpq  *rpq.Rewriting // nil for regex plans

	expr         *regex.Node
	exact        core.ExactnessReport
	witnessNames []string // exact.Witness by Σ symbol name
	minimal      *automata.DFA
	shortest     []string // view names; nil when exp(L(R)) = ∅
	hasWord      bool
	partial      *core.AnytimePartialResult // only when requested
	states       int64                      // states the compile materialized

	// Restored plans (loaded from the persistent plan store rather than
	// compiled) have rw/rpq/inst == nil: only the serving artifacts
	// above survive a round trip through disk. restoredNFA holds the
	// rewriting's trim NFA and storedKind its "regex"/"rpq" tag so a
	// restored plan converts back to a StoredPlan losslessly.
	restoredNFA *automata.NFA
	storedKind  string
}

// Key returns the plan's canonical cache key (hex SHA-256 of the
// canonicalized instance). Two requests get the same key iff they
// canonicalize to the same problem.
func (p *Plan) Key() Key { return p.key }

// Instance returns the compiled regular-expression instance, or nil
// for an RPQ plan.
func (p *Plan) Instance() *core.Instance { return p.inst }

// Rewriting returns the underlying maximal rewriting with the
// construction's automata (A_d, A', R).
func (p *Plan) Rewriting() *core.Rewriting { return p.rw }

// RPQ returns the path-query rewriting when the plan was compiled from
// an RPQRequest, else nil.
func (p *Plan) RPQ() *rpq.Rewriting { return p.rpq }

// Regex returns the rewriting as a simplified expression over the view
// names, computed once at compile time.
func (p *Plan) Regex() *regex.Node { return p.expr }

// Exactness returns the compile-time exactness report. Under the
// compile budget the verdict can be ExactUnknown — the plan is still a
// sound rewriting, only the converse inclusion is undecided; the
// report's Reason and Stage say what gave out.
func (p *Plan) Exactness() core.ExactnessReport { return p.exact }

// IsExact reports whether the compile proved the rewriting exact
// (false covers both ExactNo and ExactUnknown; see Exactness).
func (p *Plan) IsExact() bool { return p.exact.Verdict == core.ExactYes }

// Witness returns the shortest word of L(E0) \ exp(L(R)) (by symbol
// name) when the exactness verdict is no, else nil.
func (p *Plan) Witness() []string {
	if p.exact.Verdict != core.ExactNo {
		return nil
	}
	return p.witnessNames
}

// MinimalDFA returns the canonical minimal DFA of the rewriting.
func (p *Plan) MinimalDFA() *automata.DFA { return p.minimal }

// ShortestWord returns a shortest Σ_E-word of the rewriting with a
// non-empty expansion (by view name), or ok=false when exp(L(R)) = ∅.
func (p *Plan) ShortestWord() ([]string, bool) { return p.shortest, p.hasWord }

// IsEmpty reports Σ_E-emptiness of the rewriting: no shortest word
// even over views with empty languages.
func (p *Plan) IsEmpty() bool { return p.minimal.NumStates() == 0 || !anyAccepting(p.minimal) }

// IsSigmaEmpty reports Σ-emptiness: every word of the rewriting
// expands to nothing.
func (p *Plan) IsSigmaEmpty() bool { return !p.hasWord }

// Accepts reports whether the Σ_E-word (by view names) is in the
// rewriting. Reads only the immutable rewriting DFA; for a restored
// plan (no construction automata) the minimal DFA answers instead —
// same language, so the answer is identical.
func (p *Plan) Accepts(viewNames ...string) bool {
	if p.rw != nil {
		return p.rw.Accepts(viewNames...)
	}
	return p.minimal.AcceptsNames(viewNames...)
}

// Partial returns the anytime partial-rewriting result when the plan
// was compiled with Request.Partial, else nil.
func (p *Plan) Partial() *core.AnytimePartialResult { return p.partial }

// States returns how many automaton states the compile materialized —
// the budget-meter total of the cold compile, retained so cache hits
// can report the work they saved.
func (p *Plan) States() int64 { return p.states }

// ---- Plan construction ----
//
// Everything below is the only code that writes Plan fields: a Plan is
// fully materialized on the compiling goroutine and then published to
// the cache, after which it is immutable — the planimmutable analyzer
// pins writes to this file.

// compileInstance runs the full compile of a regex instance: maximal
// rewriting, exactness report, minimal DFA, shortest witness, and —
// when requested — the anytime partial search. Everything a Plan
// serves is materialized here so the cached artifact is immutable.
func compileInstance(ctx context.Context, key Key, inst *core.Instance, partial bool) (*Plan, error) {
	before := budget.From(ctx).States()
	rw, err := core.MaximalRewritingContext(ctx, inst)
	if err != nil {
		return nil, err
	}
	p, err := finishPlan(ctx, key, rw)
	if err != nil {
		return nil, err
	}
	p.inst = inst
	if partial && p.exact.Verdict == core.ExactNo {
		pr, err := core.PartialRewritingAnytime(ctx, inst)
		if err != nil {
			return nil, err
		}
		p.partial = pr
	}
	p.states = budget.From(ctx).States() - before
	return p, nil
}

// compileRPQ is compileInstance for regular path queries.
func compileRPQ(ctx context.Context, key Key, req RPQRequest) (*Plan, error) {
	before := budget.From(ctx).States()
	rrw, err := rpq.RewriteContext(ctx, req.Query, req.Views, req.Theory, req.Method)
	if err != nil {
		return nil, err
	}
	p, err := finishPlan(ctx, key, rrw.Rewriting)
	if err != nil {
		return nil, err
	}
	p.rpq = rrw
	p.states = budget.From(ctx).States() - before
	return p, nil
}

// finishPlan derives the served artifacts from a freshly built
// rewriting. The exactness check is the anytime variant: under a tight
// budget the plan still comes out sound, with Verdict ExactUnknown and
// the stopping stage in the report. The lazy caches inside
// core.Rewriting (the expansion automaton, lazily grounded views) are
// forced here, on the compiling goroutine, so the shared Plan never
// mutates afterwards.
func finishPlan(ctx context.Context, key Key, rw *core.Rewriting) (*Plan, error) {
	p := &Plan{key: key, rw: rw}
	p.exact = rw.TryExactness(ctx)
	if p.exact.Verdict == core.ExactNo {
		p.witnessNames = symbolNames(rw.Sigma(), p.exact.Witness)
	}
	p.expr = rw.Regex()
	p.minimal = rw.MinimalDFA()
	if w, ok := rw.ShortestWord(); ok {
		p.shortest, p.hasWord = symbolNames(rw.SigmaE(), w), true
	}
	return p, nil
}

// storedFromPlan projects a Plan onto its persistent form: the serving
// artifacts only, never the construction automata (A_d, A') or the
// partial-search result — partial plans are not persisted at all. The
// rewriting itself travels as its trim NFA plus the canonical minimal
// DFA, both in the automata text codec inside the checksummed envelope.
func storedFromPlan(p *Plan) (*planstore.StoredPlan, error) {
	if p.partial != nil {
		return nil, fmt.Errorf("engine: partial plans are not persisted")
	}
	sp := &planstore.StoredPlan{
		Key:             string(p.key),
		Kind:            p.storedKind,
		Rewriting:       p.expr.String(),
		Verdict:         int(p.exact.Verdict),
		Witness:         p.witnessNames,
		Stage:           p.exact.Stage,
		ShortestWord:    p.shortest,
		HasShortestWord: p.hasWord,
		States:          p.states,
		MinimalDFA:      p.minimal,
		RewritingNFA:    p.restoredNFA,
	}
	if sp.Kind == "" {
		if p.rpq != nil {
			sp.Kind = "rpq"
		} else {
			sp.Kind = "regex"
		}
	}
	if p.exact.Reason != nil {
		sp.Reason = p.exact.Reason.Error()
	}
	if sp.RewritingNFA == nil {
		if p.rw == nil {
			return nil, fmt.Errorf("engine: plan has neither a rewriting nor a restored NFA")
		}
		sp.RewritingNFA = p.rw.NFA()
	}
	return sp, nil
}

// planFromStored rebuilds a servable Plan from its persistent form.
// The result is a restored plan: Rewriting()/RPQ()/Instance() are nil
// (the doubly exponential construction is not re-run), but every
// serving accessor — Regex, Exactness, Witness, MinimalDFA,
// ShortestWord, IsEmpty, IsSigmaEmpty, States, Accepts — answers from
// the stored artifacts exactly as it would on the freshly compiled
// plan.
func planFromStored(key Key, sp *planstore.StoredPlan) (*Plan, error) {
	if sp.Key != string(key) {
		return nil, fmt.Errorf("engine: stored plan key %s under cache key %s", sp.Key, key)
	}
	if v := core.ExactVerdict(sp.Verdict); v != core.ExactUnknown && v != core.ExactYes && v != core.ExactNo {
		return nil, fmt.Errorf("engine: stored plan has unknown exactness verdict %d", sp.Verdict)
	}
	expr, err := regex.Parse(sp.Rewriting)
	if err != nil {
		return nil, fmt.Errorf("engine: stored rewriting does not parse: %w", err)
	}
	p := &Plan{
		key:          key,
		expr:         expr,
		witnessNames: sp.Witness,
		minimal:      sp.MinimalDFA,
		shortest:     sp.ShortestWord,
		hasWord:      sp.HasShortestWord,
		states:       sp.States,
		restoredNFA:  sp.RewritingNFA,
		storedKind:   sp.Kind,
	}
	p.exact = core.ExactnessReport{Verdict: core.ExactVerdict(sp.Verdict), Stage: sp.Stage}
	if sp.Reason != "" {
		p.exact.Reason = errors.New(sp.Reason)
	}
	return p, nil
}

func anyAccepting(d *automata.DFA) bool {
	for s := 0; s < d.NumStates(); s++ {
		if d.Accepting(automata.State(s)) {
			return true
		}
	}
	return false
}

func symbolNames(a *alphabet.Alphabet, word []alphabet.Symbol) []string {
	if word == nil {
		return nil
	}
	out := make([]string, len(word))
	for i, s := range word {
		out[i] = a.Name(s)
	}
	return out
}
