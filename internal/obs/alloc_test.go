package obs

import (
	"context"
	"testing"
)

// TestTracerOffZeroAlloc pins the disabled-path contract: with no
// tracer or registry on the context, every obs primitive the pipeline
// calls per stage allocates nothing. The pipeline-level counterpart
// (BenchmarkTracerOff in the root package) measures the same property
// end-to-end on the THM5 family.
func TestTracerOffZeroAlloc(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		f    func()
	}{
		{"StartSpan", func() {
			_, s := StartSpan(ctx, "automata.determinize")
			s.AddStates(3)
			s.AddTransitions(5)
			s.AddCache(2, 1)
			s.End()
		}},
		{"StartSpan2", func() {
			_, s := StartSpan2(ctx, "core.transfer", "e1")
			s.SetAttr("workers", 2)
			s.End()
		}},
		{"SpanFromContext", func() {
			_ = SpanFromContext(ctx)
		}},
		{"MetricsFrom", func() {
			r := MetricsFrom(ctx)
			r.Counter("x").Inc()
		}},
		{"Do", func() {
			Do(ctx, func(context.Context) {}, "stage", "x")
		}},
		{"Enabled", func() {
			_ = Enabled(ctx)
		}},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(100, tc.f); avg != 0 {
			t.Errorf("%s: %v allocs/op on disabled path, want 0", tc.name, avg)
		}
	}
}

// BenchmarkObsOff reports allocs/op for the disabled primitives; run
// with -benchmem. Kept alongside the AllocsPerRun test so regressions
// show in bench output too.
func BenchmarkObsOff(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "automata.determinize")
		s.AddStates(3)
		s.AddCache(1, 1)
		s.End()
		Do(ctx, func(context.Context) {}, "stage", "x")
	}
}
