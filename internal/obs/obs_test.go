package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNoTracerFastPath(t *testing.T) {
	ctx := context.Background()
	if s := SpanFromContext(ctx); s != nil {
		t.Fatalf("SpanFromContext on bare context = %v, want nil", s)
	}
	ctx2, span := StartSpan(ctx, "automata.determinize")
	if span != nil {
		t.Fatalf("StartSpan without tracer returned span %v", span)
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan without tracer returned a new context")
	}
	// Every method must be a nil-safe no-op.
	span.End()
	span.AddStates(5)
	span.AddTransitions(5)
	span.AddCache(1, 2)
	span.SetAttr("x", 1)
	span.SetTimeAttr("t", 1)
	if span.Timed() {
		t.Fatalf("nil span reports Timed")
	}
	if span.Name() != "" {
		t.Fatalf("nil span Name = %q", span.Name())
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTracer(Deterministic())
	ctx := WithTracer(context.Background(), tr)

	root := SpanFromContext(ctx)
	if root == nil || root.Name() != RootSpanName {
		t.Fatalf("root span = %v, want name %q", root, RootSpanName)
	}
	// WithTracer is idempotent: the same tracer yields the same root.
	if again := SpanFromContext(WithTracer(ctx, tr)); again != root {
		t.Fatalf("second WithTracer created a new root")
	}

	cctx, det := StartSpan(ctx, "automata.determinize")
	det.AddStates(4)
	det.AddTransitions(9)
	det.AddCache(6, 4)
	_, inner := StartSpan(cctx, "automata.minimize")
	inner.AddStates(3)
	inner.End()
	det.End()
	_, tv := StartSpan2(ctx, "core.transfer", "e1")
	tv.SetAttr("workers", 2)
	tv.End()

	got := tr.Export()
	want := &SpanJSON{
		Name: RootSpanName,
		Children: []*SpanJSON{
			{
				Name: "automata.determinize", States: 4, Transitions: 9,
				CacheHits: 6, CacheMisses: 4,
				Children: []*SpanJSON{{Name: "automata.minimize", States: 3}},
			},
			{Name: "core.transfer:e1", Attrs: map[string]int64{"workers": 2}},
		},
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("trace mismatch:\n got %s\nwant %s", gj, wj)
	}
}

func TestDeterministicExportOmitsClock(t *testing.T) {
	tr := NewTracer(Deterministic())
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "stage")
	s.SetTimeAttr("busy_ns", 12345) // must be dropped
	if s.Timed() {
		t.Fatalf("deterministic span reports Timed")
	}
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, forbidden := range []string{"start_us", "dur_us", "busy_ns"} {
		if strings.Contains(out, forbidden) {
			t.Fatalf("deterministic export contains %q:\n%s", forbidden, out)
		}
	}
}

func TestWallClockExport(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "stage")
	if !s.Timed() {
		t.Fatalf("wall-clock span not Timed")
	}
	s.End()
	s.End() // idempotent
	got := tr.Export()
	if len(got.Children) != 1 || got.Children[0].DurUS < 0 {
		t.Fatalf("unexpected export: %+v", got)
	}
	if err := ValidateTrace(mustJSON(t, got)); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
}

func TestExportNilAndEmpty(t *testing.T) {
	var tr *Tracer
	if tr.Export() != nil {
		t.Fatalf("nil tracer exported a tree")
	}
	if NewTracer().Export() != nil {
		t.Fatalf("unused tracer exported a tree")
	}
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("empty WriteJSON output invalid: %v", err)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(Deterministic())
	ctx := WithTracer(context.Background(), tr)
	pctx, parent := StartSpan(ctx, "par.foreach")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(pctx, "worker")
			s.AddStates(1)
			s.End()
		}()
	}
	wg.Wait()
	parent.End()
	got := tr.Export()
	workers := FindSpans(got, "worker")
	if len(workers) != 8 {
		t.Fatalf("got %d worker spans, want 8", len(workers))
	}
	var total int64
	WalkTrace(got, func(s *SpanJSON) { total += s.States })
	if total != 8 {
		t.Fatalf("total states = %d, want 8", total)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"empty name":    `{"name":""}`,
		"nested empty":  `{"name":"run","children":[{"name":""}]}`,
		"negative":      `{"name":"run","states":-1}`,
		"unknown field": `{"name":"run","bogus":1}`,
		"trailing":      `{"name":"run"} {"name":"run"}`,
		"null child":    `{"name":"run","children":[null]}`,
		"not json":      `[]`,
	}
	for label, in := range cases { //mapiter:unordered independent subtests
		if err := ValidateTrace([]byte(in)); err == nil {
			t.Errorf("%s: ValidateTrace(%s) accepted", label, in)
		}
	}
	if err := ValidateTrace([]byte(`{"name":"run","children":[{"name":"x","states":3}]}`)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
