package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzTraceRoundTrip: any input ParseTrace accepts must re-marshal and
// re-parse to the same tree (marshal ∘ parse is idempotent), and the
// re-marshaled bytes must pass ValidateTrace. Inputs ParseTrace rejects
// must not crash it.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte(`{"name":"run"}`))
	f.Add([]byte(`{"name":"run","states":3,"children":[{"name":"automata.determinize","states":3,"transitions":7,"cache_hits":4,"cache_misses":3}]}`))
	f.Add([]byte(`{"name":"run","start_us":1,"dur_us":20,"attrs":{"workers":4},"children":[{"name":"core.transfer:e1"},{"name":"core.transfer:e2"}]}`))
	f.Add([]byte(`{"name":"run","children":[{"name":"x","children":[{"name":"y","children":[{"name":"z"}]}]}]}`))
	f.Add([]byte(`{"name":""}`))
	f.Add([]byte(`{"name":"run","states":-5}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		root, err := ParseTrace(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(root)
		if err != nil {
			t.Fatalf("marshal of parsed trace failed: %v", err)
		}
		if err := ValidateTrace(out); err != nil {
			t.Fatalf("re-marshaled trace invalid: %v\n%s", err, out)
		}
		root2, err := ParseTrace(out)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, out)
		}
		out2, err := json.Marshal(root2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round-trip not stable:\n%s\n%s", out, out2)
		}
	})
}
