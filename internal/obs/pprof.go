package obs

import (
	"context"
	"runtime/pprof"
)

// Enabled reports whether observability is active on the context — a
// span or a metrics registry is installed. Call sites use it to gate
// instrumentation that would otherwise cost on the disabled path (label
// string assembly, closure captures).
func Enabled(ctx context.Context) bool {
	return SpanFromContext(ctx) != nil || MetricsFrom(ctx) != nil
}

// Do runs f under pprof labels (key-value pairs, e.g. "stage",
// "core.transfer", "view", "e1") so CPU profiles attribute samples to
// pipeline stages and view symbols. When observability is disabled on
// the context it invokes f directly — no label set allocation, no
// goroutine-label swap.
func Do(ctx context.Context, f func(context.Context), kv ...string) {
	if !Enabled(ctx) {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(kv...), f)
}
