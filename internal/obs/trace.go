package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SpanJSON is the exported form of one span — the trace JSON schema
// (documented in docs/OBSERVABILITY.md). Wall-clock fields are
// microseconds and omitted when zero, which makes a Deterministic
// tracer's export a pure function of the traced computation. Children
// appear in creation order; under a single-worker run that order is
// itself deterministic, which is what the golden-trace tests compare.
type SpanJSON struct {
	// Name is the stage name, e.g. "automata.determinize" or
	// "core.transfer:e1"; the root span is named "run".
	Name string `json:"name"`
	// StartUS is the span's start offset from the root span's start, in
	// microseconds.
	StartUS int64 `json:"start_us,omitempty"`
	// DurUS is the span's wall-clock duration in microseconds.
	DurUS int64 `json:"dur_us,omitempty"`
	// States / Transitions are the resources the stage materialized, as
	// charged on the run's budget meters.
	States      int64 `json:"states,omitempty"`
	Transitions int64 `json:"transitions,omitempty"`
	// CacheHits / CacheMisses are the stage's subset-interner probe
	// outcomes (internal/automata cache layer).
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// Attrs holds structural extras: worker counts, automaton sizes,
	// per-pool utilization.
	Attrs map[string]int64 `json:"attrs,omitempty"`
	// Children are the nested stage spans, in creation order.
	Children []*SpanJSON `json:"children,omitempty"`
}

// Export snapshots the trace tree. The root span is ended implicitly if
// still open. Returns nil when no span was ever recorded (WithTracer
// never called).
func (t *Tracer) Export() *SpanJSON {
	if t == nil {
		return nil
	}
	// One lock for the whole walk: concurrent span creation briefly
	// blocks, and in exchange the per-span snapshot copies of the old
	// scheme disappear — on the hot bench loop the export is about half
	// the tracer's total cost, so this matters.
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		return nil
	}
	t.root.End()
	return t.export(t.root, t.root)
}

// export converts a span subtree; the caller holds t.mu (End is
// lock-free, so ending children under the lock is fine).
func (t *Tracer) export(s, root *Span) *SpanJSON {
	out := &SpanJSON{
		Name:        s.name,
		States:      s.states.Load(),
		Transitions: s.transitions.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
	}
	if !t.deterministic {
		out.StartUS = s.start.Sub(root.start).Microseconds()
		out.DurUS = s.dur.Load() / 1000
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs { // string-keyed; encoding/json sorts keys, so order is unobservable
			out.Attrs[k] = v
		}
	}
	if len(s.children) > 0 {
		out.Children = make([]*SpanJSON, len(s.children))
		for i, c := range s.children {
			c.End()
			out.Children[i] = t.export(c, root)
		}
	}
	return out
}

// WriteJSON writes the trace tree as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	root := t.Export()
	if root == nil {
		root = &SpanJSON{Name: RootSpanName}
	}
	data, err := json.MarshalIndent(root, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ParseTrace parses and validates a trace JSON document, rejecting
// unknown fields. It is the decoding half of the round-trip the
// FuzzTraceRoundTrip fuzzer exercises.
func ParseTrace(data []byte) (*SpanJSON, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var root SpanJSON
	if err := dec.Decode(&root); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("obs: parse trace: trailing data after the root span")
	}
	if err := validateSpan(&root, ""); err != nil {
		return nil, err
	}
	return &root, nil
}

// ValidateTrace checks a trace JSON document against the schema: a
// single root object, every span with a non-empty name, all counters
// and clock fields non-negative, children recursively valid, no unknown
// fields. CI runs it (via cmd/tracecheck) over the sample trace each
// build uploads.
func ValidateTrace(data []byte) error {
	_, err := ParseTrace(data)
	return err
}

func validateSpan(s *SpanJSON, path string) error {
	if s == nil {
		return fmt.Errorf("obs: trace: null span at %q", path)
	}
	if s.Name == "" {
		return fmt.Errorf("obs: trace: span with empty name under %q", path)
	}
	at := s.Name
	if path != "" {
		at = path + "/" + s.Name
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"start_us", s.StartUS}, {"dur_us", s.DurUS},
		{"states", s.States}, {"transitions", s.Transitions},
		{"cache_hits", s.CacheHits}, {"cache_misses", s.CacheMisses},
	} {
		if f.v < 0 {
			return fmt.Errorf("obs: trace: span %q: negative %s (%d)", at, f.name, f.v)
		}
	}
	for _, c := range s.Children {
		if err := validateSpan(c, at); err != nil {
			return err
		}
	}
	return nil
}

// WalkTrace visits every span of the exported tree in depth-first
// preorder. The oracle's metamorphic checks use it to total per-stage
// resources against the run's budget meter.
func WalkTrace(root *SpanJSON, visit func(*SpanJSON)) {
	if root == nil {
		return
	}
	visit(root)
	for _, c := range root.Children {
		WalkTrace(c, visit)
	}
}

// FindSpans returns every span in the tree with the given name, in
// preorder.
func FindSpans(root *SpanJSON, name string) []*SpanJSON {
	var out []*SpanJSON
	WalkTrace(root, func(s *SpanJSON) {
		if s.Name == name {
			out = append(out, s)
		}
	})
	return out
}
