package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	c.Add(1)
	c.Inc()
	c.Store(7)
	g.Set(3)
	g.Add(-1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("nil metrics hold values: %d %d", c.Value(), g.Value())
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot non-nil")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	r.PublishExpvar()
	if MetricsFrom(context.Background()) != nil {
		t.Fatalf("bare context carries a registry")
	}
	if MetricsFrom(WithMetrics(context.Background(), nil)) != nil {
		t.Fatalf("WithMetrics(nil) installed a registry")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("automata.determinize.states").Add(5)
	r.Counter("automata.determinize.states").Add(2) // same instance
	r.Gauge("par.workers").Set(4)
	snap := r.Snapshot()
	if snap["automata.determinize.states"] != 7 {
		t.Fatalf("counter = %d, want 7", snap["automata.determinize.states"])
	}
	if snap["par.workers"] != 4 {
		t.Fatalf("gauge = %d, want 4", snap["par.workers"])
	}

	ctx := WithMetrics(context.Background(), r)
	if MetricsFrom(ctx) != r {
		t.Fatalf("MetricsFrom did not return the installed registry")
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE regexrw_automata_determinize_states counter",
		"regexrw_automata_determinize_states 7",
		"# TYPE regexrw_par_workers gauge",
		"regexrw_par_workers 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "automata.determinize.states 7\npar.workers 4\n"; got != want {
		t.Fatalf("snapshot text = %q, want %q", got, want)
	}
}

func TestPromName(t *testing.T) {
	if got := promName("rpq.view:e1"); got != "regexrw_rpq_view_e1" {
		t.Fatalf("promName = %q", got)
	}
}

func TestCounterStoreResets(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(10)
	c.Store(0)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("after reset+inc: %d", c.Value())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 800 {
		t.Fatalf("shared counter = %d, want 800", got)
	}
	if got := r.Gauge("g").Value(); got != 800 {
		t.Fatalf("gauge = %d, want 800", got)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("expvar.test.counter").Add(3)
	r.PublishExpvar()
	r.PublishExpvar() // second call must not panic on duplicate publish
	r2 := NewRegistry()
	r2.Counter("expvar.test.counter").Add(9)
	r2.PublishExpvar() // same name from another registry must not panic
}

func TestEnabledAndDo(t *testing.T) {
	ctx := context.Background()
	if Enabled(ctx) {
		t.Fatalf("bare context Enabled")
	}
	ran := false
	Do(ctx, func(context.Context) { ran = true }, "stage", "x")
	if !ran {
		t.Fatalf("Do skipped f on disabled path")
	}
	tctx := WithTracer(ctx, NewTracer())
	if !Enabled(tctx) {
		t.Fatalf("traced context not Enabled")
	}
	mctx := WithMetrics(ctx, NewRegistry())
	if !Enabled(mctx) {
		t.Fatalf("metrics context not Enabled")
	}
	ran = false
	Do(tctx, func(context.Context) { ran = true }, "stage", "x")
	if !ran {
		t.Fatalf("Do skipped f on enabled path")
	}
}
