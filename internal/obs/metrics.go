package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (Store exists only so
// owners can reset between measurement windows, e.g. the bench
// harness). All methods are safe on a nil *Counter and for concurrent
// use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Store resets the counter to v. Only the counter's owner should call
// it, and only between measurement windows.
func (c *Counter) Store(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (live worker counts, sizes
// of the most recent automaton). Safe on nil and for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of counters and gauges. The zero value
// is not usable; construct with NewRegistry. All methods are safe on a
// nil *Registry (returning nil metrics, which swallow every operation)
// so call sites need no enabled-check.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Default is the process-wide registry. Global instrumentation points
// with no per-run context — the automata cache counters — live here;
// per-run metrics should use a fresh registry via WithMetrics.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns the current value of every metric, keyed by name.
// Counters and gauges share the namespace; a collision (same name used
// as both) is a programming error and the counter wins.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// WritePrometheus writes every metric in Prometheus text exposition
// format, sorted by name. Metric names get a "regexrw_" prefix and
// non-alphanumeric characters mapped to '_', so "automata.determinize.states"
// exposes as regexrw_automata_determinize_states.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	type metric struct {
		name  string
		v     int64
		gauge bool
	}
	ms := make([]metric, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		ms = append(ms, metric{name, c.Value(), false})
	}
	for name, g := range r.gauges {
		ms = append(ms, metric{name, g.Value(), true})
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		name := promName(m.name)
		typ := "counter"
		if m.gauge {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, m.v); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted metric name to a Prometheus-legal one:
// "regexrw_" prefix, every character outside [a-zA-Z0-9_] replaced
// by '_'.
func promName(name string) string {
	b := make([]byte, 0, len(name)+8)
	b = append(b, "regexrw_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// expvarPublished tracks names already handed to expvar.Publish, which
// panics on duplicates; PublishExpvar must be idempotent across
// registries and calls.
var (
	expvarMu        sync.Mutex
	expvarPublished = make(map[string]bool)
)

// PublishExpvar exposes every metric currently in the registry through
// the standard expvar mechanism (and thus /debug/vars), under their
// Prometheus names. Values read live. Idempotent; metrics created after
// the call need another call to appear.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	r.mu.RLock()
	type entry struct {
		name string
		f    func() int64
	}
	var entries []entry
	for name, c := range r.counters {
		entries = append(entries, entry{promName(name), c.Value})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{promName(name), g.Value})
	}
	r.mu.RUnlock()
	expvarMu.Lock()
	defer expvarMu.Unlock()
	for _, e := range entries {
		if expvarPublished[e.name] {
			continue
		}
		expvarPublished[e.name] = true
		f := e.f
		expvar.Publish(e.name, expvar.Func(func() any { return f() }))
	}
}

// WriteSnapshot writes the registry's metrics as "name value" lines
// sorted by name — the human-readable form the CLIs print under
// -metrics.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := io.WriteString(w, name+" "+strconv.FormatInt(snap[name], 10)+"\n"); err != nil {
			return err
		}
	}
	return nil
}

type registryKey struct{}

// WithMetrics returns a context carrying the registry; the budget
// meters downstream will feed per-stage counters into it. A nil
// registry returns ctx unchanged.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// MetricsFrom returns the context's registry, or nil when none is
// installed. The nil case costs one context lookup and no allocation,
// and a nil *Registry swallows every operation.
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}
