// Package obs is the observability layer of the rewriting pipeline:
// stage tracing, pipeline metrics and profiling hooks, with no
// dependency on anything but the standard library.
//
// The constructions this repository reproduces are doubly exponential
// by theorem (Theorems 5 and 8 of the paper), so when a run is slow or
// a budget trips, the interesting question is never "did it blow up"
// but "which stage materialized the states". Three instruments answer
// it:
//
//   - Spans (this file): a Tracer carried on the context records a tree
//     of named stage spans — parse → NFA build → determinize → transfer
//     fan-out → complement → exactness — each holding wall time plus
//     the states, transitions and cache hits/misses that stage
//     materialized. The counts are fed by the existing budget meters
//     (internal/budget) and the subset-interner of the automata cache,
//     so tracing sees exactly what the resource governor charges. The
//     tree exports as JSON (trace.go).
//   - Metrics (metrics.go): an atomic Counter/Gauge registry with
//     Prometheus-text and expvar exposition plus a snapshot API. A
//     Registry on the context receives per-stage counters from every
//     budget meter; the process-wide Default registry holds the
//     automata cache counters.
//   - Profiling hooks (pprof.go): Do wraps runtime/pprof labels around
//     per-stage and per-view work so CPU profiles attribute samples to
//     paper constructions.
//
// Everything is allocation-free when disabled: with no tracer on the
// context, StartSpan returns a nil *Span whose every method is a
// nil-check no-op, and Do invokes its function directly. The
// TestTracerOffZeroAlloc / BenchmarkTracerOff guards pin this down.
//
// A Tracer built with the Deterministic option records no wall-clock
// values at all, so its JSON export is a pure function of the pipeline
// input — the golden-trace tests rely on this.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// RootSpanName is the name of the span WithTracer installs at the top
// of the trace tree.
const RootSpanName = "run"

// Tracer collects one tree of spans. A single Tracer instruments one
// pipeline run (or one logical unit of work); concurrent stages of that
// run may create child spans from worker goroutines — the tree is
// guarded by the tracer's lock, and per-span counters are atomic.
type Tracer struct {
	mu            sync.Mutex
	root          *Span
	deterministic bool
	// arena is the current span chunk: spans are bump-allocated from it
	// under mu, amortizing one heap allocation over a chunk of spans.
	// Handed-out *Span pointers stay valid because a full chunk is
	// replaced, never grown in place.
	arena []Span
}

// newSpanLocked bump-allocates a zeroed span from the arena; the caller
// holds t.mu. Chunks start small (a paper-scale pipeline fits in one)
// and double up to a cap so deep traces don't thrash the allocator.
func (t *Tracer) newSpanLocked() *Span {
	if len(t.arena) == cap(t.arena) {
		n := 2 * cap(t.arena)
		if n == 0 {
			n = 16
		}
		if n > 256 {
			n = 256
		}
		t.arena = make([]Span, 0, n)
	}
	t.arena = t.arena[:len(t.arena)+1]
	sp := &t.arena[len(t.arena)-1]
	sp.tracer = t
	return sp
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// Deterministic makes the tracer record no wall-clock values: span
// start offsets, durations and worker busy-times stay zero and are
// omitted from the JSON export, which is then a pure function of the
// traced computation. Golden-trace tests use this.
func Deterministic() TracerOption {
	return func(t *Tracer) { t.deterministic = true }
}

// NewTracer returns an empty tracer. Install it on a context with
// WithTracer to start recording.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{}
	for _, o := range opts {
		o(t)
	}
	return t
}

func (t *Tracer) now() time.Time {
	if t.deterministic {
		return time.Time{}
	}
	return time.Now()
}

// Span is one node of the trace tree: a named pipeline stage with wall
// time and the resources it materialized. States and Transitions are
// fed by the budget meters of the stage (internal/budget), CacheHits
// and CacheMisses by the automata subset-interner, and attributes by
// whoever has something structural to record (worker counts, automaton
// sizes). All methods are safe on a nil *Span — the disabled-tracing
// fast path — and the counter methods are safe for concurrent use.
type Span struct {
	tracer *Tracer
	name   string

	start time.Time
	dur   atomic.Int64 // nanoseconds; 0 = not ended (or deterministic)

	states      atomic.Int64
	transitions atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// attrs and children are guarded by tracer.mu.
	attrs    map[string]int64
	children []*Span
}

type spanKey struct{}

// WithTracer returns a context carrying the tracer's root span; every
// StartSpan downstream attaches to it. The root span ("run") is created
// on first use and reused by later WithTracer calls with the same
// tracer, so several sub-contexts can feed one trace. A nil tracer
// returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	start := t.now()
	t.mu.Lock()
	if t.root == nil {
		t.root = t.newSpanLocked()
		t.root.name = RootSpanName
		t.root.start = start
	}
	root := t.root
	t.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, root)
}

// SpanFromContext returns the active span, or nil when the context
// carries no tracer. The nil case costs one context lookup and no
// allocation.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child span of the context's active span and returns
// a context carrying it. When the context has no tracer it returns
// (ctx, nil) without allocating — the nil *Span swallows every method
// call. Callers must End the span (nil-safe, so unconditionally):
//
//	ctx, span := obs.StartSpan(ctx, "automata.determinize")
//	defer span.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.newChild(ctx, name)
}

// StartSpan2 is StartSpan with the name assembled as name:detail —
// "core.transfer:e1" for the per-view fan-out spans — concatenating
// only when tracing is enabled, so the disabled path allocates nothing.
func StartSpan2(ctx context.Context, name, detail string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.newChild(ctx, name+":"+detail)
}

func (s *Span) newChild(ctx context.Context, name string) (context.Context, *Span) {
	t := s.tracer
	start := t.now()
	t.mu.Lock()
	child := t.newSpanLocked()
	child.name = name
	child.start = start
	s.children = append(s.children, child)
	t.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, child), child
}

// End records the span's duration. It is idempotent (the first call
// wins) and a no-op on a nil span or a deterministic tracer.
func (s *Span) End() {
	if s == nil || s.tracer.deterministic {
		return
	}
	s.dur.CompareAndSwap(0, int64(time.Since(s.start))|1) // |1: mark ended even on a 0ns clock
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// AddStates records n materialized states on the span. The budget
// meters call this on every charge, so a span's states total equals
// what the stage drew from the run's budget.
func (s *Span) AddStates(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.states.Add(n)
}

// AddTransitions records n materialized transitions on the span.
func (s *Span) AddTransitions(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.transitions.Add(n)
}

// AddCache records subset-interner probe results on the span: hits
// found an existing subset id, misses created one. The automata
// constructions flush their per-call interner counts here.
func (s *Span) AddCache(hits, misses int64) {
	if s == nil {
		return
	}
	if hits > 0 {
		s.cacheHits.Add(hits)
	}
	if misses > 0 {
		s.cacheMisses.Add(misses)
	}
}

// SetAttr records a named structural attribute on the span (worker
// counts, automaton sizes, …). Attributes must be deterministic values;
// wall-clock-derived ones belong in SetTimeAttr.
func (s *Span) SetAttr(name string, v int64) {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64)
	}
	s.attrs[name] = v
	t.mu.Unlock()
}

// SetTimeAttr is SetAttr for wall-clock-derived values (busy
// nanoseconds, …): it is dropped on a deterministic tracer so that the
// exported trace stays a pure function of the input.
func (s *Span) SetTimeAttr(name string, v int64) {
	if s == nil || s.tracer.deterministic {
		return
	}
	s.SetAttr(name, v)
}

// Timed reports whether the span records wall-clock values (false on a
// nil span or a deterministic tracer). Callers use it to skip timing
// instrumentation whose only consumer is the trace.
func (s *Span) Timed() bool {
	return s != nil && !s.tracer.deterministic
}
