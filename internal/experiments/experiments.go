// Package experiments regenerates every checkable artifact of the paper
// — the worked examples (EX1–EX3), Figure 1, and the shapes implied by
// the complexity theorems (THM2, THM5–THM8) and the regular-path-query
// section (RPQ1–RPQ3) — printing one titled, tabulated section per
// experiment. EXPERIMENTS.md records a reference run.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Experiment is one reproducible unit: a paper artifact and the code
// that regenerates it. RunMetrics, when non-nil, is the same experiment
// reporting its headline numbers (timings, state counts) as named
// values for machine consumption; RunJSON prefers it over Run.
type Experiment struct {
	ID         string
	Title      string
	Run        func(w io.Writer) error
	RunMetrics func(w io.Writer) (map[string]float64, error)
}

// All returns the registered experiments in display order.
func All() []Experiment {
	return []Experiment{
		{"EX1", "Example 1 — Σ_E-maximal vs Σ-maximal rewritings of a* wrt {a*}", runEX1, nil},
		{"EX2", "Example 2 + Figure 1 — rewriting of a·(b·a+c)* wrt {a, a·c*·b, c}", runEX2, nil},
		{"EX3", "Example 3 — partial rewriting of a·(b+c) wrt {a, b}", runEX3, nil},
		{"THM2", "Theorem 2 — characterization u ∈ L(R) ⇔ exp(u) ⊆ L(E0) on random instances", runTHM2, nil},
		{"THM5", "Theorem 5 — rewriting cost sweeps (benign and adversarial families)", runTHM5, nil},
		{"THM6", "Theorem 6 — exactness check: on-the-fly vs materialized complement", runTHM6, runTHM6Metrics},
		{"THM7", "Theorem 7 — computation-encoding family: accepting vs rejecting variants", runTHM7, nil},
		{"THM8", "Theorem 8 — 2^n lower bound on rewriting size from polynomial input", runTHM8, runTHM8Metrics},
		{"THM9", "Theorem 9 — deciding existence of an exact rewriting (Corollary 4)", runTHM9, nil},
		{"RPQ1", "Section 4.2 — grounded vs direct RPQ rewriting (equivalence and |D| sweep)", runRPQ1, nil},
		{"RPQ2", "Definition 5/6 — answering using views: containment, exact equality, scaling", runRPQ2, nil},
		{"RPQ3", "Section 4.3 — partial rewritings and preference criteria", runRPQ3, nil},
		{"DUAL1", "Section 5 (extension) — containing/possibility rewritings, certain vs possible answers", runDUAL1, nil},
		{"GPQ1", "Section 5 (extension) — generalized path queries: evaluation and sound component-wise rewriting", runGPQ1, nil},
		{"COST1", "Section 5 (extension) — cost-model based rewriting choice: view pruning", runCOST1, nil},
		{"SITE1", "End-to-end — answering a site query from materialized views vs direct evaluation", runSITE1, nil},
		{"COV1", "Coverage curve — fraction of random instances rewritable as views grow", runCOV1, nil},
		{"REDUCE1", "Ablation — simulation-quotient NFA reduction before determinization", runREDUCE1, nil},
	}
}

// Run executes every experiment whose ID contains the filter (all when
// the filter is empty), writing sections to w in registration order.
func Run(w io.Writer, filter string) error {
	return run(w, filter, false)
}

// Result is one experiment's outcome in machine-readable form. Metrics
// holds the experiment's headline numbers (per-section timings, state
// counts, blowup ratios) when it implements RunMetrics.
type Result struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Seconds float64            `json:"seconds"`
	OK      bool               `json:"ok"`
	Error   string             `json:"error,omitempty"`
	Output  string             `json:"output"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// RunJSON executes the selected experiments and writes a JSON array of
// Results — one object per experiment, with its full text output
// embedded — for CI tracking and regression diffing. Unlike Run it does
// not stop at the first failing experiment; the error summarizes all
// failures after the array is written.
func RunJSON(w io.Writer, filter string) error {
	var selected []Experiment
	for _, e := range All() {
		if filter == "" || strings.Contains(e.ID, filter) {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiment matches %q", filter)
	}
	results := make([]Result, len(selected))
	var failures []string
	for i, e := range selected {
		var buf bytes.Buffer
		var metrics map[string]float64
		var err error
		start := time.Now()
		if e.RunMetrics != nil {
			metrics, err = e.RunMetrics(&buf)
		} else {
			err = e.Run(&buf)
		}
		results[i] = Result{
			ID:      e.ID,
			Title:   e.Title,
			Seconds: time.Since(start).Seconds(),
			OK:      err == nil,
			Output:  buf.String(),
			Metrics: metrics,
		}
		if err != nil {
			results[i].Error = err.Error()
			failures = append(failures, e.ID)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("experiments failed: %s", strings.Join(failures, ", "))
	}
	return nil
}

// RunParallel is Run with the selected experiments executed
// concurrently (one goroutine each); sections are still emitted in
// registration order. Timing columns measure more noise under
// parallelism — use sequential Run when recording reference numbers.
func RunParallel(w io.Writer, filter string) error {
	return run(w, filter, true)
}

func run(w io.Writer, filter string, parallel bool) error {
	var selected []Experiment
	for _, e := range All() {
		if filter == "" || strings.Contains(e.ID, filter) {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		ids := make([]string, 0)
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
		sort.Strings(ids)
		return fmt.Errorf("no experiment matches %q (have %s)", filter, strings.Join(ids, ", "))
	}

	type result struct {
		out bytes.Buffer
		err error
	}
	results := make([]result, len(selected))
	if parallel {
		var wg sync.WaitGroup
		for i, e := range selected {
			wg.Add(1)
			go func(i int, e Experiment) {
				defer wg.Done()
				results[i].err = e.Run(&results[i].out)
			}(i, e)
		}
		wg.Wait()
	} else {
		for i, e := range selected {
			results[i].err = e.Run(&results[i].out)
		}
	}

	for i, e := range selected {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		if _, err := w.Write(results[i].out.Bytes()); err != nil {
			return err
		}
		if results[i].err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, results[i].err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
