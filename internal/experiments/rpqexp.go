package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"regexrw/internal/automata"
	"regexrw/internal/graph"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
	"regexrw/internal/workload"
)

func runRPQ1(w io.Writer) error {
	// Part 1: equivalence of the grounded and direct constructions.
	r := rand.New(rand.NewSource(41))
	tt := workload.RandomTheory(r, workload.TheoryConfig{Constants: 6, Predicates: 3, Density: 0.5})
	const trials = 20
	agree := 0
	for trial := 0; trial < trials; trial++ {
		q0 := workload.RandomRPQ(r, tt, 3)
		views := []rpq.View{
			{Name: "u1", Query: workload.RandomRPQ(r, tt, 2)},
			{Name: "u2", Query: workload.RandomRPQ(r, tt, 2)},
		}
		rg, err := rpq.Rewrite(q0, views, tt, rpq.Grounded)
		if err != nil {
			return err
		}
		rd, err := rpq.Rewrite(q0, views, tt, rpq.Direct)
		if err != nil {
			return err
		}
		if automata.Equivalent(rg.NFA(), rd.NFA()) {
			agree++
		}
	}
	fmt.Fprintf(w, "grounded ≡ direct on %d/%d random instances\n\n", agree, trials)
	if agree != trials {
		return fmt.Errorf("grounded and direct rewritings disagreed")
	}

	// Part 2: |D| sweep. The direct construction never grounds the
	// views, so its advantage grows with the domain size.
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|D|\tt_grounded\tt_direct\tt_compressed\tbest speedup over grounded")
	for _, d := range []int{8, 64, 512, 4096} {
		rr := rand.New(rand.NewSource(int64(100 + d)))
		big := workload.RandomTheory(rr, workload.TheoryConfig{Constants: d, Predicates: 4, Density: 0.5})
		q0 := workload.RandomRPQ(rr, big, 3)
		views := []rpq.View{
			{Name: "u1", Query: workload.RandomRPQ(rr, big, 2)},
			{Name: "u2", Query: workload.RandomRPQ(rr, big, 2)},
			{Name: "u3", Query: workload.RandomRPQ(rr, big, 2)},
		}
		start := time.Now()
		if _, err := rpq.Rewrite(q0, views, big, rpq.Grounded); err != nil {
			return err
		}
		tG := time.Since(start)
		start = time.Now()
		if _, err := rpq.Rewrite(q0, views, big, rpq.Direct); err != nil {
			return err
		}
		tD := time.Since(start)
		start = time.Now()
		if _, err := rpq.Rewrite(q0, views, big, rpq.Compressed); err != nil {
			return err
		}
		tC := time.Since(start)
		best := tD
		if tC < best {
			best = tC
		}
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%.1fx\n", d,
			tG.Round(time.Microsecond), tD.Round(time.Microsecond), tC.Round(time.Microsecond),
			float64(tG)/float64(best))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(compressed quotients D by formula signatures — at most 2^|F| classes — so its cost\n")
	fmt.Fprintf(w, " is independent of |D| beyond the one signature pass; both §4.2 optimizations shown)\n")
	return nil
}

func runRPQ2(w io.Writer) error {
	// Part 1: containment/equality of answering-using-views.
	r := rand.New(rand.NewSource(42))
	tt := workload.RandomTheory(r, workload.TheoryConfig{Constants: 5, Predicates: 3, Density: 0.5})
	labels := tt.Domain().Names()
	const trials = 15
	contained, exactEqual, exactSeen := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		db := workload.RandomGraph(r, workload.GraphConfig{Nodes: 12, Edges: 30, Labels: labels})
		q0 := workload.RandomRPQ(r, tt, 2)
		views := []rpq.View{
			{Name: "u1", Query: workload.RandomRPQ(r, tt, 2)},
			{Name: "u2", Query: workload.RandomRPQ(r, tt, 2)},
		}
		rw, err := rpq.Rewrite(q0, views, tt, rpq.Grounded)
		if err != nil {
			return err
		}
		direct := q0.Answer(tt, db)
		viaViews := rw.AnswerUsingViews(db)
		inDirect := map[graph.Pair]bool{}
		for _, p := range direct {
			inDirect[p] = true
		}
		ok := true
		for _, p := range viaViews {
			if !inDirect[p] {
				ok = false
			}
		}
		if ok {
			contained++
		}
		if exact, _ := rw.IsExact(); exact {
			exactSeen++
			if len(viaViews) == len(direct) {
				exactEqual++
			}
		}
	}
	fmt.Fprintf(w, "containment ans(exp(L(R)),DB) ⊆ ans(L(Q0),DB): %d/%d instances\n", contained, trials)
	fmt.Fprintf(w, "equality on exact rewritings: %d/%d exact instances\n\n", exactEqual, exactSeen)
	if contained != trials || exactEqual != exactSeen {
		return fmt.Errorf("answer containment violated")
	}

	// Part 2: evaluation scaling with graph size (fixed query).
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\tedges\tanswers\tt_grounded-eval\tt_direct-eval")
	q0, err := rpq.ParseQuery("p·any*·q", map[string]string{"p": "p1", "any": "true", "q": "p2"})
	if err != nil {
		return err
	}
	for _, nodes := range []int{50, 200, 800} {
		rr := rand.New(rand.NewSource(int64(nodes)))
		db := workload.RandomGraph(rr, workload.GraphConfig{Nodes: nodes, Edges: nodes * 4, Labels: labels})
		start := time.Now()
		a := q0.Answer(tt, db)
		tg := time.Since(start)
		start = time.Now()
		b := q0.AnswerDirect(tt, db)
		td := time.Since(start)
		if len(a) != len(b) {
			return fmt.Errorf("evaluation methods disagree: %d vs %d", len(a), len(b))
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%v\n", nodes, db.NumEdges(), len(a),
			tg.Round(time.Microsecond), td.Round(time.Microsecond))
	}
	return tw.Flush()
}

func runRPQ3(w io.Writer) error {
	// Reproduce Example 3's search, then the atomic-vs-elementary
	// preference on a theory with a covering predicate.
	tt := theory.New()
	tt.AddConstants("a", "b", "c")
	tt.Declare("bc", "b", "c")
	q0, err := rpq.ParseQuery("fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	if err != nil {
		return err
	}
	views := []rpq.View{{Name: "q1", Query: rpq.Atomic("fa", theory.Eq("a"))}}
	res, err := rpq.PartialRewrite(q0, views, tt, rpq.DefaultCandidates(tt), rpq.Grounded)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Q0 = a·(b+c), views {a}, theory has predicate bc = {b,c}\n")
	for _, c := range res.Added {
		kind := "atomic"
		if c.Kind == rpq.ElementaryView {
			kind = "elementary"
		}
		fmt.Fprintf(w, "search added: %s view %q\n", kind, c.Name)
	}
	exact, _ := res.Rewriting.IsExact()
	fmt.Fprintf(w, "rewriting: %s   exact: %v\n", res.Rewriting.RegexOverViews(), exact)
	fmt.Fprintf(w, "(one atomic view beats two elementary views — criteria 2/3 of Section 4.3)\n\n")

	// Preference comparison between the atomic and elementary solutions.
	withAtomic := append([]rpq.View(nil), views...)
	withAtomic = append(withAtomic, rpq.View{Name: "vbc", Query: rpq.Atomic("fbc", theory.Pred("bc"))})
	r1, err := rpq.Rewrite(q0, withAtomic, tt, rpq.Grounded)
	if err != nil {
		return err
	}
	p1 := &rpq.PartialResult{
		Added:     []rpq.Candidate{{Kind: rpq.AtomicView, Name: "bc"}},
		Views:     withAtomic,
		Rewriting: r1,
	}
	withElem := append([]rpq.View(nil), views...)
	withElem = append(withElem,
		rpq.View{Name: "eb", Query: rpq.Atomic("fb", theory.Eq("b"))},
		rpq.View{Name: "ec", Query: rpq.Atomic("fc", theory.Eq("c"))})
	r2, err := rpq.Rewrite(q0, withElem, tt, rpq.Grounded)
	if err != nil {
		return err
	}
	p2 := &rpq.PartialResult{
		Added: []rpq.Candidate{
			{Kind: rpq.ElementaryView, Name: "b"},
			{Kind: rpq.ElementaryView, Name: "c"},
		},
		Views:     withElem,
		Rewriting: r2,
	}
	fmt.Fprintf(w, "Compare(atomic bc, elementary {b,c}) = %d (positive: atomic preferred)\n", rpq.Compare(p1, p2))
	fmt.Fprintf(w, "Compare(non-exact base, exact extension) = %d (negative: exact preferred)\n",
		rpq.Compare(&rpq.PartialResult{Views: views, Rewriting: mustRewrite(q0, views, tt)}, p1))
	return nil
}

func mustRewrite(q0 *rpq.Query, views []rpq.View, tt *theory.Interpretation) *rpq.Rewriting {
	r, err := rpq.Rewrite(q0, views, tt, rpq.Grounded)
	if err != nil {
		panic(err)
	}
	return r
}
