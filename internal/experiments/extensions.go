package experiments

import (
	"fmt"
	"io"

	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/graph"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// The DUAL1/GPQ1/COST1 experiments exercise the extensions the paper's
// conclusions propose (Section 5): the dual "minimal containing
// rewritings", generalized/conjunctive path queries, and cost-model
// based rewriting choice.

func runDUAL1(w io.Writer) error {
	// Containing rewritings: E0 = a·(b+c).
	fmt.Fprintf(w, "E0 = a·(b+c)\n")

	// With views {a, b}: maximal contained rewriting is q1·q2; the
	// possibility rewriting coincides, and NO containing rewriting
	// exists (a·c is not composable).
	inst, err := core.ParseInstance("a·(b+c)", map[string]string{"q1": "a", "q2": "b"})
	if err != nil {
		return err
	}
	p := core.PossibilityRewriting(inst)
	containing, witness := p.IsContaining()
	fmt.Fprintf(w, "views {a, b}: possibility rewriting = %s; containing rewriting exists: %v (uncoverable word: %s)\n",
		p.Regex(), containing, automata.FormatWord(inst.Sigma(), witness))
	if containing {
		return fmt.Errorf("unexpected containing rewriting")
	}

	// With views {a+c, b}: e1·e2 is possible but not certain, and the
	// possibility rewriting IS containing.
	inst2, err := core.ParseInstance("a·b", map[string]string{"e1": "a+c", "e2": "b"})
	if err != nil {
		return err
	}
	max := core.MaximalRewriting(inst2)
	p2 := core.PossibilityRewriting(inst2)
	containing2, _ := p2.IsContaining()
	fmt.Fprintf(w, "E0 = a·b, views {a+c, b}: contained rewriting = %s, possibility rewriting = %s, containing exists: %v\n",
		max.Regex(), p2.Regex(), containing2)
	fmt.Fprintf(w, "(e1·e2 certain: %v, possible: %v — the gap between certain and possible answers)\n",
		max.Accepts("e1", "e2"), p2.Accepts("e1", "e2"))
	if !containing2 || max.Accepts("e1", "e2") || !p2.Accepts("e1", "e2") {
		return fmt.Errorf("dual rewriting shapes wrong")
	}
	return nil
}

func runGPQ1(w io.Writer) error {
	tt := theory.New()
	tt.AddConstants("a", "b", "c")
	db := graph.New(tt.Domain())
	db.AddEdge("s", "a", "m1")
	db.AddEdge("m1", "b", "t")
	db.AddEdge("s", "a", "m2")
	db.AddEdge("m2", "c", "t")

	qa := rpq.Atomic("fa", theory.Eq("a"))
	qbc, err := rpq.ParseQuery("f", map[string]string{"f": "=b | =c"})
	if err != nil {
		return err
	}
	chain := rpq.Chain(qa, qbc) // x1 -a-> x2 -(b+c)-> x3

	direct, err := chain.Answer(tt, db)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "generalized path query x1 · a · x2 · (b+c) · x3 over the diamond graph: %d tuples\n", len(direct))
	for _, tu := range direct {
		fmt.Fprintf(w, "   %s\n", rpq.TupleNames(db, chain.Vars(), tu))
	}

	// Component-wise rewriting with views missing c: sound, strictly
	// contained (the conclusions' point that context-free component
	// rewriting is not complete for generalized queries).
	views := []rpq.View{
		{Name: "va", Query: rpq.Atomic("fa", theory.Eq("a"))},
		{Name: "vb", Query: rpq.Atomic("fb", theory.Eq("b"))},
	}
	rewritings, err := chain.RewriteComponents(views, tt, rpq.Grounded)
	if err != nil {
		return err
	}
	viaViews, err := chain.AnswerUsingViews(rewritings, db)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "component-wise rewriting over views {a, b}: %d tuples (sound, strictly contained)\n", len(viaViews))
	if len(viaViews) >= len(direct) {
		return fmt.Errorf("expected strict containment, got %d vs %d", len(viaViews), len(direct))
	}
	return nil
}

func runCOST1(w io.Writer) error {
	inst, err := core.ParseInstance("a·b", map[string]string{
		"vBig": "a·b", "vA": "a", "vB": "b",
	})
	if err != nil {
		return err
	}
	full := core.MaximalRewriting(inst)
	fmt.Fprintf(w, "E0 = a·b, views vBig = a·b (cost 100), vA = a (cost 1), vB = b (cost 1)\n")
	fmt.Fprintf(w, "full rewriting: %s   cost %.0f\n", full.Regex(),
		full.EstimatedCost(core.ViewCosts{"vBig": 100, "vA": 1, "vB": 1}))

	for _, tc := range []struct {
		name  string
		costs core.ViewCosts
	}{
		{"vBig expensive", core.ViewCosts{"vBig": 100, "vA": 1, "vB": 1}},
		{"vBig cheap", core.ViewCosts{"vBig": 1, "vA": 100, "vB": 100}},
	} {
		pruned, r, err := core.PruneViews(inst, tc.costs)
		if err != nil {
			return err
		}
		names := make([]string, len(pruned.Views))
		for i, v := range pruned.Views {
			names[i] = v.Name
		}
		fmt.Fprintf(w, "%s → keep %v, rewriting %s, cost %.0f\n",
			tc.name, names, r.Regex(), r.EstimatedCost(tc.costs))
	}
	fmt.Fprintf(w, "(the pruner keeps whichever views evaluate cheaply while preserving the expansion language)\n")
	return nil
}
