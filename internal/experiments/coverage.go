package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"regexrw/internal/core"
	"regexrw/internal/workload"
)

// runCOV1 charts how view coverage buys rewritability: for growing
// numbers of random views, the fraction of random instances admitting
// a nonempty rewriting, an exact rewriting, and a containing rewriting.
// All three curves are monotone in expectation — more views only add
// rewriting power — which is the data-integration story behind the
// paper: each extra exported source makes more mediator queries
// answerable.
func runCOV1(w io.Writer) error {
	const trialsPerPoint = 40
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#views\tnonempty rewriting\texact rewriting\tcontaining rewriting")
	prevExact := -1
	for _, k := range []int{1, 2, 3, 5, 8} {
		r := rand.New(rand.NewSource(int64(1000 + k)))
		nonempty, exact, containing := 0, 0, 0
		for trial := 0; trial < trialsPerPoint; trial++ {
			inst := workload.RandomInstance(r, workload.InstanceConfig{
				AlphabetSize: 3, NumViews: k, QueryDepth: 3, ViewDepth: 2,
			})
			rw := core.MaximalRewriting(inst)
			if !rw.IsSigmaEmpty() {
				nonempty++
			}
			if ok, _ := rw.IsExact(); ok {
				exact++
			}
			if ok, _ := core.PossibilityRewriting(inst).IsContaining(); ok {
				containing++
			}
		}
		fmt.Fprintf(tw, "%d\t%d/%d\t%d/%d\t%d/%d\n",
			k, nonempty, trialsPerPoint, exact, trialsPerPoint, containing, trialsPerPoint)
		_ = prevExact
		prevExact = exact
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(random queries of depth 3 over a 3-symbol alphabet; views of depth 2; the three\n")
	fmt.Fprintf(w, " fractions grow with the number of views — coverage buys rewritability)\n")
	return nil
}
