package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"regexrw/internal/graph"
	"regexrw/internal/rpq"
	"regexrw/internal/workload"
)

// runSITE1 is the end-to-end systems experiment: on a synthetic travel
// site, the benchmark query is answered (a) directly on the full graph
// and (b) by evaluating the exact rewriting over pre-materialized
// views. Materialization cost is paid once (amortized across queries),
// so per-query latency through the views wins once the view graph is
// smaller than the raw graph — and the answers are identical because
// the rewriting is exact.
func runSITE1(w io.Writer) error {
	t := workload.SiteTheory()
	q0, err := workload.SiteQuery()
	if err != nil {
		return err
	}
	views, err := workload.SiteViews()
	if err != nil {
		return err
	}
	r, err := rpq.Rewrite(q0, views, t, rpq.Direct)
	if err != nil {
		return err
	}
	exact, _ := r.IsExact()
	fmt.Fprintf(w, "query: region · city · district · venue-kind;  rewriting: %s;  exact: %v\n\n",
		r.RegexOverViews(), exact)
	if !exact {
		return fmt.Errorf("site rewriting should be exact")
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scale\tnodes\tedges\tanswers\tt_direct\tt_materialize(once)\tt_via-views(per query)\tequal")
	for _, k := range []int{1, 2, 4} {
		rng := rand.New(rand.NewSource(int64(k)))
		db := workload.Site(rng, t, workload.DefaultSiteConfig(k))

		start := time.Now()
		direct := q0.Answer(t, db)
		tDirect := time.Since(start)

		start = time.Now()
		vg := r.MaterializeViews(db)
		tMat := time.Since(start)

		start = time.Now()
		viaViews := vg.Eval(r.NFA())
		tVia := time.Since(start)

		equal := len(direct) == len(viaViews)
		if equal {
			for i := range direct {
				if direct[i] != (graph.Pair{From: viaViews[i].From, To: viaViews[i].To}) {
					equal = false
					break
				}
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%v\t%v\t%v\n",
			k, db.NumNodes(), db.NumEdges(), len(direct),
			tDirect.Round(time.Microsecond), tMat.Round(time.Microsecond),
			tVia.Round(time.Microsecond), equal)
		if !equal {
			return fmt.Errorf("scale %d: answers differ", k)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(per-query evaluation over the view graph scans only navigation/venue edges — the\n")
	fmt.Fprintf(w, " noise 'related' edges never enter the product — so it beats direct evaluation,\n")
	fmt.Fprintf(w, " while exactness guarantees identical answers)\n")
	return nil
}
