package experiments

import (
	"fmt"
	"io"

	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/regex"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

func runEX1(w io.Writer) error {
	inst, err := core.ParseInstance("a*", map[string]string{"e": "a*"})
	if err != nil {
		return err
	}
	r := core.MaximalRewriting(inst)
	got := r.Regex()
	exact, _ := r.IsExact()
	fmt.Fprintf(w, "E0 = a*, re(e) = a*\n")
	fmt.Fprintf(w, "computed Σ_E-maximal rewriting: %s\n", got)
	fmt.Fprintf(w, "≡ e* (paper's Σ_E-maximal): %v\n", regex.Equivalent(got, regex.MustParse("e*")))
	fmt.Fprintf(w, "contains the smaller Σ-maximal rewriting e: %v (and e·e: %v, ε: %v)\n",
		r.Accepts("e"), r.Accepts("e", "e"), r.Accepts())
	fmt.Fprintf(w, "exact: %v\n", exact)
	return nil
}

func runEX2(w io.Writer) error {
	inst, err := core.ParseInstance("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		return err
	}
	r := core.MaximalRewriting(inst)
	got := r.Regex()
	exact, _ := r.IsExact()
	fmt.Fprintf(w, "E0 = a·(b·a+c)*, re(e1)=a, re(e2)=a·c*·b, re(e3)=c\n")
	fmt.Fprintf(w, "computed rewriting: %s   (≡ e2*·e1·e3*: %v)   exact: %v\n",
		got, regex.Equivalent(got, regex.MustParse("e2*·e1·e3*")), exact)

	// Figure 1: the construction's three automata (A_d minimal, so the
	// paper's equivalent states s0/s2 are merged).
	fmt.Fprintf(w, "\nFigure 1 (A_d minimized: the paper's s0 and s2 are language-equivalent and merged):\n")
	fmt.Fprintf(w, "--- A_d ---\n%s", r.Ad.TrimPartial().String())
	fmt.Fprintf(w, "--- A' ---\n%s", r.APrime.String())
	fmt.Fprintf(w, "--- R = complement(A') (trimmed) ---\n%s", r.Auto.Minimize().TrimPartial().String())
	fmt.Fprintf(w, "DOT outputs available via cmd/rewrite -dot\n")

	// Continuation: drop the view for c.
	inst2, err := core.ParseInstance("a·(b·a+c)*", map[string]string{"e1": "a", "e2": "a·c*·b"})
	if err != nil {
		return err
	}
	r2 := core.MaximalRewriting(inst2)
	got2 := r2.Regex()
	exact2, witness := r2.IsExact()
	fmt.Fprintf(w, "\nwithout view c: rewriting = %s   (≡ e2*·e1: %v)   exact: %v   witness in L(E0)∖exp(L(R)): %s\n",
		got2, regex.Equivalent(got2, regex.MustParse("e2*·e1")), exact2,
		automata.FormatWord(inst2.Sigma(), witness))
	return nil
}

func runEX3(w io.Writer) error {
	tt := theory.New()
	tt.AddConstants("a", "b", "c")
	q0, err := rpq.ParseQuery("fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	if err != nil {
		return err
	}
	views := []rpq.View{
		{Name: "q1", Query: rpq.Atomic("fa", theory.Eq("a"))},
		{Name: "q2", Query: rpq.Atomic("fb", theory.Eq("b"))},
	}
	r, err := rpq.Rewrite(q0, views, tt, rpq.Grounded)
	if err != nil {
		return err
	}
	exact, _ := r.IsExact()
	fmt.Fprintf(w, "Q0 = a·(b+c), rpq(q1)=a, rpq(q2)=b\n")
	fmt.Fprintf(w, "maximal rewriting: %s   exact: %v\n", r.RegexOverViews(), exact)

	res, err := rpq.PartialRewrite(q0, views, tt, rpq.DefaultCandidates(tt), rpq.Grounded)
	if err != nil {
		return err
	}
	added := make([]string, len(res.Added))
	for i, c := range res.Added {
		kind := "atomic"
		if c.Kind == rpq.ElementaryView {
			kind = "elementary"
		}
		added[i] = fmt.Sprintf("%s(%s)", kind, c.Name)
	}
	exactP, _ := res.Rewriting.IsExact()
	fmt.Fprintf(w, "partial rewriting adds %v → rewriting %s   exact: %v\n",
		added, res.Rewriting.RegexOverViews(), exactP)
	return nil
}
