package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/workload"
)

func runTHM2(w io.Writer) error {
	r := rand.New(rand.NewSource(2024))
	const trials, wordsPerTrial = 60, 30
	checked, mismatches := 0, 0
	for trial := 0; trial < trials; trial++ {
		inst := workload.RandomInstance(r, workload.InstanceConfig{
			AlphabetSize: 3, NumViews: 1 + r.Intn(3), QueryDepth: 3, ViewDepth: 2,
		})
		rw := core.MaximalRewriting(inst)
		e0 := inst.Query.ToNFA(inst.Sigma())
		views := rw.Views()
		for i := 0; i < wordsPerTrial; i++ {
			u := make([]alphabet.Symbol, r.Intn(4))
			for j := range u {
				u[j] = alphabet.Symbol(r.Intn(inst.SigmaE().Len()))
			}
			expansion := automata.EpsilonLanguage(inst.Sigma())
			for _, e := range u {
				expansion = automata.Concat(expansion, views[e])
			}
			contained, _ := automata.ContainedIn(expansion, e0)
			if contained != rw.Auto.Accepts(u) {
				mismatches++
			}
			checked++
		}
	}
	fmt.Fprintf(w, "random instances: %d, Σ_E-words checked: %d, characterization mismatches: %d\n",
		trials, checked, mismatches)
	if mismatches > 0 {
		return fmt.Errorf("characterization failed on %d words", mismatches)
	}
	fmt.Fprintf(w, "u ∈ L(R) ⇔ exp(u) ⊆ L(E0) held on every word (both sides computed independently)\n")
	return nil
}

func runTHM5(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "family\tparam\t|E0| nodes\tA_d states\tR_min states\texact\ttime")
	row := func(name string, param int, inst *core.Instance) {
		start := time.Now()
		r := core.MaximalRewriting(inst)
		min := r.MinimalDFA()
		exact, _ := r.IsExact()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%v\t%v\n",
			name, param, inst.Query.Size(), r.Ad.NumStates(), min.NumStates(), exact,
			time.Since(start).Round(time.Microsecond))
	}
	for _, k := range []int{2, 4, 8, 16, 32} {
		row("chain (elementary views)", k, workload.ChainFamily(k))
	}
	for _, k := range []int{2, 4, 8, 16} {
		row("pair-chain (2-symbol views)", k, workload.PairChainFamily(k))
	}
	for _, n := range []int{2, 4, 6, 8, 10, 12} {
		row("det-blowup (a+b)*a(a+b)^{n-1}", n, workload.DetBlowupFamily(n))
	}
	rnd := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 4, 6} {
		row("random (k views)", k, workload.RandomInstance(rnd, workload.InstanceConfig{
			AlphabetSize: 3, NumViews: k, QueryDepth: 4, ViewDepth: 2,
		}))
	}
	return tw.Flush()
}

func runTHM6(w io.Writer) error {
	_, err := runTHM6Metrics(w)
	return err
}

// runTHM6Metrics is runTHM6 additionally reporting, per (family, param)
// row, the on-the-fly and materialized exactness timings and their
// ratio as machine-readable metrics.
func runTHM6Metrics(w io.Writer) (map[string]float64, error) {
	metrics := map[string]float64{}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "family\tparam\texact\tt_on-the-fly\tt_materialized\tspeedup")
	row := func(slug, name string, param int, inst *core.Instance) {
		r := core.MaximalRewriting(inst)
		start := time.Now()
		exact1, _ := r.IsExact()
		tFly := time.Since(start)
		start = time.Now()
		exact2 := r.IsExactMaterialized()
		tMat := time.Since(start)
		if exact1 != exact2 {
			fmt.Fprintf(tw, "%s\t%d\tDISAGREE\t\t\t\n", name, param)
			return
		}
		speedup := float64(tMat) / float64(tFly)
		key := fmt.Sprintf("%s_n%d", slug, param)
		metrics[key+"_t_fly_seconds"] = tFly.Seconds()
		metrics[key+"_t_mat_seconds"] = tMat.Seconds()
		metrics[key+"_speedup"] = speedup
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%.1fx\n",
			name, param, exact1,
			tFly.Round(time.Microsecond), tMat.Round(time.Microsecond), speedup)
	}
	for _, n := range []int{4, 8, 12, 14} {
		row("det_blowup", "det-blowup", n, workload.DetBlowupFamily(n))
	}
	for _, k := range []int{8, 16, 32} {
		row("chain", "chain", k, workload.ChainFamily(k))
	}
	for _, n := range []int{2, 3, 4} {
		row("counter", "counter (Thm 8)", n, workload.CounterFamily(n))
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "(both checks always agree; the on-the-fly complement explores only reachable subsets,\n")
	fmt.Fprintf(w, " the materialized baseline pays for the full complement of B up front — Theorem 6's point)\n")
	return metrics, nil
}

func runTHM7(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tvariant\t|E0| nodes\thas structurally good rewriting word\ttime")
	for n := 1; n <= 3; n++ {
		for _, variant := range []struct {
			name string
			inst *core.Instance
		}{
			{"accepting", workload.CounterFamily(n)},
			{"rejecting (sabotaged)", workload.SabotagedCounterFamily(n)},
		} {
			start := time.Now()
			r := core.MaximalRewriting(variant.inst)
			goodLang := workload.StructurallyGoodWords(n).ToNFA(r.SigmaE().Clone())
			has := !automata.Intersect(r.NFA(), goodLang).IsEmpty()
			fmt.Fprintf(tw, "%d\t%s\t%d\t%v\t%v\n",
				n, variant.name, variant.inst.Query.Size(), has,
				time.Since(start).Round(time.Microsecond))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(the nonemptiness of the rewriting, restricted to well-formed words, tracks the\n")
	fmt.Fprintf(w, " acceptance of the encoded computation — the shape of the Theorem 7 reduction)\n")
	return nil
}

func runTHM9(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "instance\texact rewriting exists\ttime")
	row := func(name string, inst *core.Instance) {
		start := time.Now()
		exists := core.ExistsExactRewriting(inst)
		fmt.Fprintf(tw, "%s\t%v\t%v\n", name, exists, time.Since(start).Round(time.Microsecond))
	}
	mk := func(q string, views map[string]string) *core.Instance {
		inst, err := core.ParseInstance(q, views)
		if err != nil {
			panic(err)
		}
		return inst
	}
	row("Example 2 (full views)", mk("a·(b·a+c)*", map[string]string{"e1": "a", "e2": "a·c*·b", "e3": "c"}))
	row("Example 2 (no view for c)", mk("a·(b·a+c)*", map[string]string{"e1": "a", "e2": "a·c*·b"}))
	row("Example 3", mk("a·(b+c)", map[string]string{"q1": "a", "q2": "b"}))
	row("chain k=8", workload.ChainFamily(8))
	row("det-blowup n=8", workload.DetBlowupFamily(8))
	row("counter n=2", workload.CounterFamily(2))
	row("counter n=3", workload.CounterFamily(3))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(by Corollary 4 the decision reduces to exactness of the maximal rewriting; the\n")
	fmt.Fprintf(w, " counter family is never exact — its expansion misses the structurally bad Σ-words\n")
	fmt.Fprintf(w, " of L(E0) whose highlighting cannot be produced by any single Σ_E-word)\n")
	return nil
}

func runTHM8(w io.Writer) error {
	_, err := runTHM8Metrics(w)
	return err
}

// runTHM8Metrics is runTHM8 additionally reporting, per n, the input
// size, the minimal rewriting automaton's state count, the n·2^n lower
// bound, the states-per-input blowup ratio and the section timing as
// machine-readable metrics.
func runTHM8Metrics(w io.Writer) (map[string]float64, error) {
	metrics := map[string]float64{}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tinput size (E0 nodes + view nodes)\tR_min states\tn·2^n\tcounter word ∈ L(R)\tgood words = {counter}\ttime")
	for n := 1; n <= 6; n++ {
		start := time.Now()
		inst := workload.CounterFamily(n)
		inputSize := inst.Query.Size()
		for _, v := range inst.Views {
			inputSize += v.Expr.Size()
		}
		r := core.MaximalRewriting(inst)
		min := r.MinimalDFA()
		cw := workload.CounterWord(n)
		inR := r.Accepts(cw...)

		goodLang := workload.StructurallyGoodWords(n).ToNFA(r.SigmaE().Clone())
		inter := automata.Intersect(r.NFA(), goodLang)
		// The intersection must be the singleton counter word: nonempty,
		// shortest word = |cw|, and equivalent to that single word.
		singleton := false
		if sw, ok := inter.ShortestWord(); ok && len(sw) == len(cw) {
			cwNFA := automata.WordLanguage(r.SigmaE(), automata.ParseWord(r.SigmaE(), strings.Join(cw, " ")))
			singleton = automata.Equivalent(inter, cwNFA)
		}
		key := fmt.Sprintf("n%d", n)
		metrics[key+"_input_size"] = float64(inputSize)
		metrics[key+"_min_states"] = float64(min.NumStates())
		metrics[key+"_lower_bound"] = float64(n * (1 << uint(n)))
		metrics[key+"_blowup_ratio"] = float64(min.NumStates()) / float64(inputSize)
		metrics[key+"_seconds"] = time.Since(start).Seconds()
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%v\t%v\n",
			n, inputSize, min.NumStates(), n*(1<<uint(n)), inR, singleton,
			time.Since(start).Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "(input grows polynomially in n; the minimal rewriting automaton grows ≥ n·2^n because\n")
	fmt.Fprintf(w, " it must trace the single counter word of length n·2^n — Theorem 8's lower bound)\n")
	return metrics, nil
}
