package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes each registered experiment and
// checks that it succeeds and prints its section. Slow sweeps are
// trimmed by -short at the harness level, not here: each experiment is
// expected to complete in seconds.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var b bytes.Buffer
			if err := e.Run(&b); err != nil {
				t.Fatalf("%s failed: %v\noutput:\n%s", e.ID, err, b.String())
			}
			if b.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunFilter(t *testing.T) {
	var b bytes.Buffer
	if err := Run(&b, "EX1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "=== EX1") {
		t.Fatalf("filtered run missing section:\n%s", b.String())
	}
	if strings.Contains(b.String(), "=== THM5") {
		t.Fatal("filter leaked other sections")
	}
}

func TestRunUnknownFilter(t *testing.T) {
	var b bytes.Buffer
	if err := Run(&b, "NOPE"); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}
