package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"regexrw/internal/automata"
	"regexrw/internal/workload"
)

// runREDUCE1 measures the simulation-quotient NFA reduction
// (automata.ReduceSimulation) as a pre-determinization shrink: states
// before/after, and the effect on determinization time, across the
// repo's instance families. Reduction pays off when the NFA carries
// structural duplication (union-of-detectors shapes); it is a no-op on
// already-lean automata.
func runREDUCE1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "automaton\tNFA states\treduced\tt_reduce\tt_det(raw)\tt_det(reduced)")
	row := func(name string, nfa *automata.NFA) {
		eps := nfa.RemoveEpsilon().Trim()
		start := time.Now()
		red := automata.ReduceSimulation(nfa)
		tRed := time.Since(start)
		start = time.Now()
		automata.Determinize(eps)
		tRaw := time.Since(start)
		start = time.Now()
		automata.Determinize(red)
		tRedDet := time.Since(start)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\t%v\n",
			name, eps.NumStates(), red.NumStates(),
			tRed.Round(time.Microsecond), tRaw.Round(time.Microsecond), tRedDet.Round(time.Microsecond))
	}
	// Counter rows stop at n = 2: determinizing the MONOLITHIC counter
	// NFA explodes from n = 3 on (that observation is why the rewriting
	// pipeline determinizes union queries branch-wise; see THM8).
	for _, n := range []int{1, 2} {
		inst := workload.CounterFamily(n)
		row(fmt.Sprintf("counter E0 (n=%d)", n), inst.Query.ToNFA(inst.Sigma()))
	}
	for _, n := range []int{8, 12} {
		inst := workload.DetBlowupFamily(n)
		row(fmt.Sprintf("det-blowup E0 (n=%d)", n), inst.Query.ToNFA(inst.Sigma()))
	}
	r := rand.New(rand.NewSource(71))
	inst := workload.RandomInstance(r, workload.InstanceConfig{
		AlphabetSize: 3, NumViews: 2, QueryDepth: 5, ViewDepth: 2,
	})
	row("random query (depth 5)", inst.Query.ToNFA(inst.Sigma()))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(the union-of-detectors counter family shrinks substantially — its branches share\n")
	fmt.Fprintf(w, " structure that simulation equivalence merges; lean automata are left unchanged)\n")
	return nil
}
