//go:build !regexrwdebug

package automata

import (
	"testing"

	"regexrw/internal/debug"
)

// TestDebugHooksCompileAwayWithoutTag pins the release behavior: with
// debug.Enabled a false constant, the hooks are no-ops even on a
// corrupt automaton — validation costs nothing unless asked for.
func TestDebugHooksCompileAwayWithoutTag(t *testing.T) {
	if debug.Enabled {
		t.Fatal("debug.Enabled is true without the regexrwdebug tag")
	}
	n := validNFA(t)
	n.start = 99
	debugValidateNFA(n) // must not panic

	d := validDFA(t)
	d.trans[0][0] = 9
	debugValidateDFA(d) // must not panic
}
