//go:build regexrwdebug

package automata

import (
	"strings"
	"testing"

	"regexrw/internal/debug"
)

// TestDebugHooksPanicOnCorruption pins the behavior of the
// regexrwdebug build: the constructor hooks run Validate and panic on
// an invariant violation instead of letting a corrupt automaton flow
// downstream.
func TestDebugHooksPanicOnCorruption(t *testing.T) {
	if !debug.Enabled {
		t.Fatal("debug.Enabled is false in a regexrwdebug build")
	}
	n := validNFA(t)
	n.start = 99 // corrupt directly, bypassing the mutation API

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("debugValidateNFA did not panic on a corrupt NFA")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violation") {
			t.Fatalf("panic %v does not mention the invariant violation", r)
		}
	}()
	debugValidateNFA(n)
}

// TestDebugHooksPanicOnCorruptDFA is the DFA counterpart.
func TestDebugHooksPanicOnCorruptDFA(t *testing.T) {
	d := validDFA(t)
	d.trans[0][0] = 9

	defer func() {
		if recover() == nil {
			t.Fatal("debugValidateDFA did not panic on a corrupt DFA")
		}
	}()
	debugValidateDFA(d)
}

// TestDebugHooksIgnoreNil: constructors that fail return nil alongside
// an error; the hooks must tolerate that.
func TestDebugHooksIgnoreNil(t *testing.T) {
	debugValidateNFA(nil)
	debugValidateDFA(nil)
}
