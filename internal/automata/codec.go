package automata

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"regexrw/internal/alphabet"
)

// WriteTo serializes the NFA in a line-oriented text format:
//
//	states 3
//	start 0
//	accept 2
//	trans 0 a 1
//	trans 1 b 2
//	eps 0 2
//
// Lines may appear in any order on Read; comments (#) and blank lines
// are ignored. Symbols are written by name.
func (n *NFA) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		c, err := fmt.Fprintf(w, format, args...)
		total += int64(c)
		return err
	}
	if err := write("states %d\n", n.NumStates()); err != nil {
		return total, err
	}
	if n.start != NoState {
		if err := write("start %d\n", n.start); err != nil {
			return total, err
		}
	}
	for _, f := range n.AcceptingStates() {
		if err := write("accept %d\n", f); err != nil {
			return total, err
		}
	}
	for s := 0; s < n.NumStates(); s++ {
		for _, x := range n.OutSymbolsSorted(State(s)) {
			targets := append([]State(nil), n.Successors(State(s), x)...)
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
			for _, t := range targets {
				if err := write("trans %d %s %d\n", s, n.alpha.Name(x), t); err != nil {
					return total, err
				}
			}
		}
		for _, t := range n.EpsSuccessors(State(s)) {
			if err := write("eps %d %d\n", s, t); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// maxCodecStates bounds the state count ReadNFA accepts. The cap keeps
// a corrupt or adversarial "states N" line (N in the billions) from
// allocating the per-state tables before any real data is seen; every
// automaton the pipeline legitimately serializes is orders of magnitude
// smaller.
const maxCodecStates = 1 << 20

// ReadNFA parses the format written by WriteTo into a new NFA over the
// given alphabet (symbols are interned as encountered). Malformed input
// — truncated, corrupted, or with out-of-range state references —
// returns an error; ReadNFA never panics and never allocates
// proportionally to unvalidated input (state counts above an internal
// cap are rejected).
func ReadNFA(r io.Reader, a *alphabet.Alphabet) (*NFA, error) {
	n := NewNFA(a)
	sc := bufio.NewScanner(r)
	lineNo := 0
	parseState := func(fields []string, idx int) (State, error) {
		var v int
		if _, err := fmt.Sscanf(fields[idx], "%d", &v); err != nil {
			return NoState, fmt.Errorf("automata: line %d: bad state %q", lineNo, fields[idx])
		}
		if v < 0 || v >= n.NumStates() {
			return NoState, fmt.Errorf("automata: line %d: state %d out of range", lineNo, v)
		}
		return State(v), nil
	}
	sawStates := false
	for sc.Scan() { //budget:exempt decode loop is linear in the input stream; the states header bounds every id before any allocation
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "states":
			if len(fields) != 2 || sawStates {
				return nil, fmt.Errorf("automata: line %d: malformed or repeated states line", lineNo)
			}
			var k int
			if _, err := fmt.Sscanf(fields[1], "%d", &k); err != nil || k < 0 {
				return nil, fmt.Errorf("automata: line %d: bad state count %q", lineNo, fields[1])
			}
			if k > maxCodecStates {
				return nil, fmt.Errorf("automata: line %d: state count %d exceeds limit %d", lineNo, k, maxCodecStates)
			}
			n.AddStates(k)
			sawStates = true
		case "start":
			if len(fields) != 2 {
				return nil, fmt.Errorf("automata: line %d: malformed start line", lineNo)
			}
			s, err := parseState(fields, 1)
			if err != nil {
				return nil, err
			}
			n.SetStart(s)
		case "accept":
			if len(fields) != 2 {
				return nil, fmt.Errorf("automata: line %d: malformed accept line", lineNo)
			}
			s, err := parseState(fields, 1)
			if err != nil {
				return nil, err
			}
			n.SetAccept(s, true)
		case "trans":
			if len(fields) != 4 {
				return nil, fmt.Errorf("automata: line %d: malformed trans line", lineNo)
			}
			from, err := parseState(fields, 1)
			if err != nil {
				return nil, err
			}
			to, err := parseState(fields, 3)
			if err != nil {
				return nil, err
			}
			n.AddTransition(from, a.Intern(fields[2]), to)
		case "eps":
			if len(fields) != 3 {
				return nil, fmt.Errorf("automata: line %d: malformed eps line", lineNo)
			}
			from, err := parseState(fields, 1)
			if err != nil {
				return nil, err
			}
			to, err := parseState(fields, 2)
			if err != nil {
				return nil, err
			}
			n.AddEpsilon(from, to)
		default:
			return nil, fmt.Errorf("automata: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawStates {
		return nil, fmt.Errorf("automata: missing states line")
	}
	debugValidateNFA(n)
	return n, nil
}
