package automata

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers, used
// for state sets during ε-closure and subset construction.
type bitset struct {
	words []uint64
	n     int // capacity (number of representable elements)
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b *bitset) add(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

func (b *bitset) has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b *bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b *bitset) count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// slice returns the elements in increasing order.
func (b *bitset) slice() []int {
	out := make([]int, 0, b.count())
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			out = append(out, wi*64+tz)
			w &= w - 1
		}
	}
	return out
}

// key returns a string usable as a map key identifying the set contents.
func (b *bitset) key() string {
	buf := make([]byte, len(b.words)*8)
	for i, w := range b.words {
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> (8 * uint(j)))
		}
	}
	return string(buf)
}

func (b *bitset) clone() *bitset {
	c := newBitset(b.n)
	copy(c.words, b.words)
	return c
}

func (b *bitset) equal(o *bitset) bool {
	if len(b.words) != len(o.words) {
		return false
	}
	for i, w := range b.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

func (b *bitset) intersects(o *bitset) bool {
	m := len(b.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}
