package automata

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers, used
// for state sets during ε-closure and subset construction.
type bitset struct {
	words []uint64
	n     int // capacity (number of representable elements)
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b *bitset) add(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

func (b *bitset) has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b *bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b *bitset) count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// slice returns the elements in increasing order.
func (b *bitset) slice() []int {
	return b.appendTo(make([]int, 0, b.count()))
}

// appendTo appends the elements in increasing order to dst and returns
// it; hot loops pass a reused buffer to avoid the per-call allocation
// of slice().
func (b *bitset) appendTo(dst []int) []int {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, wi*64+tz)
			w &= w - 1
		}
	}
	return dst
}

// clear removes every element, keeping the capacity.
func (b *bitset) clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// unionWith ors o into b (capacities must match) and reports whether b
// changed.
func (b *bitset) unionWith(o *bitset) bool {
	changed := false
	for i, w := range o.words {
		if b.words[i]|w != b.words[i] {
			b.words[i] |= w
			changed = true
		}
	}
	return changed
}

// hash returns an FNV-1a hash of the set contents, the probe key of the
// interner (cache.go). Unlike key() it allocates nothing.
func (b *bitset) hash() uint64 {
	h := uint64(14695981039346656037)
	for _, w := range b.words {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// key returns a string usable as a map key identifying the set contents.
// The subset-construction hot paths intern through bitset hashes instead
// (cache.go) to avoid the per-probe allocation; key() remains as the
// simple oracle the interner is tested against.
func (b *bitset) key() string {
	buf := make([]byte, len(b.words)*8)
	for i, w := range b.words {
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> (8 * uint(j)))
		}
	}
	return string(buf)
}

func (b *bitset) clone() *bitset {
	c := newBitset(b.n)
	copy(c.words, b.words)
	return c
}

func (b *bitset) equal(o *bitset) bool {
	if len(b.words) != len(o.words) {
		return false
	}
	for i, w := range b.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

func (b *bitset) intersects(o *bitset) bool {
	m := len(b.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}
