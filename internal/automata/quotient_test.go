package automata

import (
	"math/rand"
	"regexrw/internal/alphabet"
	"testing"
)

func TestLeftQuotientBasics(t *testing.T) {
	al := ab()
	n := WordLanguage(al, ParseWord(al, "a b b"))
	q := LeftQuotient(n, ParseWord(al, "a"))
	if !q.AcceptsNames("b", "b") || q.AcceptsNames("b") || q.AcceptsNames() {
		t.Fatal("a⁻¹(abb) should be exactly {bb}")
	}
	dead := LeftQuotient(n, ParseWord(al, "b"))
	if !dead.IsEmpty() {
		t.Fatal("b⁻¹(abb) should be empty")
	}
	eps := LeftQuotient(n, nil)
	if !Equivalent(eps, n) {
		t.Fatal("ε-quotient should be the identity")
	}
}

func TestRightQuotientBasics(t *testing.T) {
	al := ab()
	n := WordLanguage(al, ParseWord(al, "a b b"))
	q := RightQuotient(n, ParseWord(al, "b"))
	if !q.AcceptsNames("a", "b") || q.AcceptsNames("a", "b", "b") {
		t.Fatal("(abb)b⁻¹ should be exactly {ab}")
	}
}

func TestQuotientOfStar(t *testing.T) {
	al := ab()
	aStar := Star(SymbolLanguage(al, al.Lookup("a")))
	q := LeftQuotient(aStar, ParseWord(al, "a a"))
	if !Equivalent(q, aStar) {
		t.Fatal("aa⁻¹(a*) should be a*")
	}
}

// Property: v ∈ w⁻¹L ⇔ w·v ∈ L, on random automata and words.
func TestPropertyLeftQuotient(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	al := ab()
	for trial := 0; trial < 30; trial++ {
		n := randomNFA(r, al, 5)
		w := randomWord(r, al, 3)
		q := LeftQuotient(n, w)
		for i := 0; i < 25; i++ {
			v := randomWord(r, al, 5)
			wv := append(append([]alphabet.Symbol(nil), w...), v...)
			if q.Accepts(v) != n.Accepts(wv) {
				t.Fatalf("trial %d: quotient wrong on w=%v v=%v",
					trial, FormatWord(al, w), FormatWord(al, v))
			}
		}
	}
}

// Property: v ∈ L·w⁻¹ ⇔ v·w ∈ L.
func TestPropertyRightQuotient(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	al := ab()
	for trial := 0; trial < 30; trial++ {
		n := randomNFA(r, al, 5)
		w := randomWord(r, al, 3)
		q := RightQuotient(n, w)
		for i := 0; i < 25; i++ {
			v := randomWord(r, al, 5)
			vw := append(append([]alphabet.Symbol(nil), v...), w...)
			if q.Accepts(v) != n.Accepts(vw) {
				t.Fatalf("trial %d: right quotient wrong on v=%v w=%v",
					trial, FormatWord(al, v), FormatWord(al, w))
			}
		}
	}
}

func TestPrefixClosure(t *testing.T) {
	al := ab()
	n := WordLanguage(al, ParseWord(al, "a b"))
	p := PrefixClosure(n)
	for _, w := range [][]string{{}, {"a"}, {"a", "b"}} {
		if !p.AcceptsNames(w...) {
			t.Fatalf("prefix closure missing %v", w)
		}
	}
	for _, w := range [][]string{{"b"}, {"a", "a"}, {"a", "b", "b"}} {
		if p.AcceptsNames(w...) {
			t.Fatalf("prefix closure wrongly accepts %v", w)
		}
	}
	if !PrefixClosure(EmptyLanguage(al)).IsEmpty() {
		t.Fatal("prefix closure of ∅ should be ∅")
	}
}

func TestSuffixClosure(t *testing.T) {
	al := ab()
	n := WordLanguage(al, ParseWord(al, "a b"))
	s := SuffixClosure(n)
	for _, w := range [][]string{{}, {"b"}, {"a", "b"}} {
		if !s.AcceptsNames(w...) {
			t.Fatalf("suffix closure missing %v", w)
		}
	}
	if s.AcceptsNames("a") && !s.AcceptsNames("a") {
		t.Fatal("unreachable")
	}
	if s.AcceptsNames("b", "a") {
		t.Fatal("suffix closure wrongly accepts ba")
	}
}

// Property: prefix closure accepts exactly the prefixes of accepted
// words (checked against enumeration-free membership logic).
func TestPropertyPrefixClosure(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	al := ab()
	for trial := 0; trial < 25; trial++ {
		n := randomNFA(r, al, 5)
		p := PrefixClosure(n)
		for i := 0; i < 25; i++ {
			w := randomWord(r, al, 5)
			// w is a prefix of some accepted word iff the quotient
			// w⁻¹L(n) is nonempty.
			want := !LeftQuotient(n, w).IsEmpty()
			if p.Accepts(w) != want {
				t.Fatalf("trial %d: prefix closure wrong on %v", trial, FormatWord(al, w))
			}
		}
	}
}
