package automata

import (
	"context"
	"fmt"
	"sort"

	"regexrw/internal/alphabet"
)

// ErrStateLimit is returned (wrapped) by DeterminizeLimit when the
// subset construction exceeds its state budget.
var ErrStateLimit = fmt.Errorf("automata: state limit exceeded")

// ctxCheckInterval is how many subsets the constructions materialize
// between consultations of the caller's context. Checking every
// iteration would put a (cheap but nonzero) call on the hottest loop;
// every 64th keeps cancellation latency far below any human-visible
// deadline while costing nothing measurable.
const ctxCheckInterval = 64

// DeterminizeLimit is Determinize with a resource guard: it fails with
// an error wrapping ErrStateLimit as soon as the subset construction
// materializes more than maxStates states. The rewriting construction
// is doubly exponential in the worst case (Theorem 5), so callers that
// face untrusted inputs should bound it rather than hang;
// core.MaximalRewritingBounded threads this limit through every
// determinization of the pipeline.
func DeterminizeLimit(n *NFA, maxStates int) (*DFA, error) { //invariantcall:checked delegates to DeterminizeLimitContext
	return DeterminizeLimitContext(context.Background(), n, maxStates)
}

// DeterminizeLimitContext is DeterminizeLimit with cooperative
// cancellation: the subset construction consults ctx between batches of
// subsets and fails with the context's error once it is done.
func DeterminizeLimitContext(ctx context.Context, n *NFA, maxStates int) (*DFA, error) { //invariantcall:checked delegates to determinize, which validates
	if maxStates <= 0 {
		return nil, fmt.Errorf("%w: limit must be positive, got %d", ErrStateLimit, maxStates)
	}
	d, err := determinize(ctx, n, maxStates)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("%w: subset construction needs more than %d states", ErrStateLimit, maxStates)
	}
	return d, nil
}

// Determinize converts an NFA (possibly with ε-transitions) into an
// equivalent DFA via subset construction. Only reachable subsets are
// materialized; the result is a partial DFA (missing transitions mean
// the dead state).
func Determinize(n *NFA) *DFA { //invariantcall:checked delegates to determinize, which validates
	d, _ := determinize(context.Background(), n, 0)
	return d
}

// DeterminizeContext is Determinize with cooperative cancellation: the
// subset construction is worst-case exponential in the NFA size, so
// callers facing adversarial inputs can bound it with a context
// deadline. Cancellation is consulted between batches of subsets.
func DeterminizeContext(ctx context.Context, n *NFA) (*DFA, error) { //invariantcall:checked delegates to determinize, which validates
	return determinize(ctx, n, 0)
}

// determinize runs the subset construction; maxStates ≤ 0 means
// unbounded, and exceeding a positive bound returns (nil, nil). A
// cancelled ctx aborts with its error. Subsets explore their outgoing
// symbols in increasing symbol order so that the numbering of the
// resulting DFA states — and with it everything downstream that
// canonicalizes on state order: minimization classes, serialized
// automata, synthesized regular expressions — is a pure function of the
// input automaton, never of map iteration order.
func determinize(ctx context.Context, n *NFA, maxStates int) (*DFA, error) {
	d := NewDFA(n.Alphabet())
	if n.Start() == NoState {
		d.SetStart(d.AddState())
		return d, nil
	}
	nStates := n.NumStates()

	startSet := newBitset(nStates)
	startSet.add(int(n.Start()))
	n.epsClosure(startSet)

	subsets := map[string]State{}
	var sets []*bitset

	newSubset := func(set *bitset) State {
		s := d.AddState()
		sets = append(sets, set)
		subsets[set.key()] = s
		acc := false
		for _, q := range set.slice() {
			if n.accept[q] {
				acc = true
				break
			}
		}
		d.SetAccept(s, acc)
		return s
	}

	start := newSubset(startSet)
	d.SetStart(start)

	for i := 0; i < len(sets); i++ {
		if maxStates > 0 && len(sets) > maxStates {
			return nil, nil
		}
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("automata: determinize: %w", err)
			}
		}
		set := sets[i]
		// Collect the symbols leaving this subset, in symbol order: the
		// order successors are first discovered in fixes the DFA's state
		// numbering.
		var syms []alphabet.Symbol
		seen := map[alphabet.Symbol]bool{}
		for _, q := range set.slice() {
			for x := range n.trans[q] { //mapiter:unordered collecting into a set; sorted before use below
				if !seen[x] {
					seen[x] = true
					syms = append(syms, x)
				}
			}
		}
		sort.Slice(syms, func(a, b int) bool { return syms[a] < syms[b] })
		for _, x := range syms {
			next := newBitset(nStates)
			for _, q := range set.slice() {
				for _, t := range n.trans[q][x] {
					next.add(int(t))
				}
			}
			if next.empty() {
				continue
			}
			n.epsClosure(next)
			to, ok := subsets[next.key()]
			if !ok {
				to = newSubset(next)
			}
			d.SetTransition(State(i), x, to)
		}
	}
	debugValidateDFA(d)
	return d, nil
}

// DeterminizeMinimal is Determinize followed by Minimize and TrimPartial:
// the canonical trim DFA of the NFA's language.
func DeterminizeMinimal(n *NFA) *DFA {
	out := Determinize(n).Minimize().TrimPartial()
	debugValidateDFA(out)
	return out
}
