package automata

import (
	"context"
	"errors"
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
)

// ErrStateLimit is returned (wrapped) by DeterminizeLimit when the
// subset construction exceeds its state budget.
var ErrStateLimit = errors.New("automata: state limit exceeded")

// DeterminizeLimit is Determinize with a resource guard: it fails with
// an error wrapping ErrStateLimit as soon as the subset construction
// materializes more than maxStates states. It predates the unified
// budget meter (internal/budget) and is kept as a thin wrapper over it:
// new callers that want to bound a whole pipeline rather than a single
// determinization should attach a budget.Budget to a context instead.
func DeterminizeLimit(n *NFA, maxStates int) (*DFA, error) { //invariantcall:checked delegates to DeterminizeLimitContext
	return DeterminizeLimitContext(context.Background(), n, maxStates)
}

// DeterminizeLimitContext is DeterminizeLimit with cooperative
// cancellation. The per-call cap is implemented by attaching a fresh
// single-use budget to the context, so there is exactly one limit
// mechanism in the pipeline; a budget already carried by ctx is
// shadowed for the duration of this call.
func DeterminizeLimitContext(ctx context.Context, n *NFA, maxStates int) (*DFA, error) { //invariantcall:checked delegates to determinize, which validates
	if maxStates <= 0 {
		return nil, fmt.Errorf("%w: limit must be positive, got %d", ErrStateLimit, maxStates)
	}
	b := budget.New(budget.MaxStates(maxStates))
	d, err := determinize(budget.With(ctx, b), n)
	if err != nil {
		var ex *budget.ExceededError
		if errors.As(err, &ex) {
			return nil, fmt.Errorf("%w: %w", ErrStateLimit, ex)
		}
		return nil, err
	}
	return d, nil
}

// Determinize converts an NFA (possibly with ε-transitions) into an
// equivalent DFA via subset construction. Only reachable subsets are
// materialized; the result is a partial DFA (missing transitions mean
// the dead state).
func Determinize(n *NFA) *DFA { //invariantcall:checked delegates to determinize, which validates
	d, _ := determinize(context.Background(), n) // a background context never cancels and carries no budget
	return d
}

// DeterminizeContext is Determinize with cooperative cancellation and
// resource governance: the subset construction is worst-case
// exponential in the NFA size, so callers facing adversarial inputs can
// bound it with a context deadline and/or a budget.Budget attached to
// ctx. Cancellation is consulted between batches of subsets; exceeding
// the budget fails with a *budget.ExceededError.
func DeterminizeContext(ctx context.Context, n *NFA) (*DFA, error) { //invariantcall:checked delegates to determinize, which validates
	return determinize(ctx, n)
}

// DeterminizeCapped is DeterminizeContext with a soft cap: the subset
// construction is abandoned — fit=false, no error, no partial result —
// as soon as it materializes more than maxStates subsets. Unlike
// DeterminizeLimitContext this is not a failure mode but a probe: the
// adaptive Theorem 6 exactness check uses it as a trial materialization
// whose success hands the finished DFA straight to the containment scan
// (the estimate is the work), and whose abandonment falls back to the
// on-the-fly complement. Subsets materialized before the cap are still
// charged to ctx's budget; a genuine budget exhaustion or cancellation
// reports as an error, never as fit=false.
func DeterminizeCapped(ctx context.Context, n *NFA, maxStates int) (d *DFA, fit bool, err error) { //invariantcall:checked delegates to determinizeBounded, which validates
	return determinizeBounded(ctx, n, maxStates)
}

// determinize runs the subset construction, metered against the
// context's budget (stage "automata.determinize"). A cancelled ctx or
// an exhausted budget aborts with the corresponding error and no
// partial result. Subsets explore their outgoing symbols in increasing
// symbol order so that the numbering of the resulting DFA states — and
// with it everything downstream that canonicalizes on state order:
// minimization classes, serialized automata, synthesized regular
// expressions — is a pure function of the input automaton, never of map
// iteration order.
func determinize(ctx context.Context, n *NFA) (*DFA, error) {
	d, _, err := determinizeBounded(ctx, n, 0)
	return d, err
}

// determinizeBounded is the subset-construction worker shared by
// determinize (cap == 0, unbounded) and DeterminizeCapped (cap > 0,
// abandon past cap with fit=false).
func determinizeBounded(ctx context.Context, n *NFA, cap int) (*DFA, bool, error) {
	ctx, span := obs.StartSpan(ctx, "automata.determinize")
	defer span.End()
	meter := budget.Enter(ctx, "automata.determinize")
	d := NewDFA(n.Alphabet())
	if n.Start() == NoState {
		d.SetStart(d.AddState())
		return d, true, nil
	}
	nStates := n.NumStates()

	// The shared closure/stepper memo (cache.go) supplies per-state
	// ε-closures and closure-applied successor sets; the interner maps
	// subsets to dense ids with no string-key allocation. Interner ids
	// and DFA states are allocated in lockstep, so they coincide.
	memo := n.memoTables()
	it := newInterner()
	defer it.flushStatsSpan(span)

	newSubset := func(set *bitset) State {
		s := d.AddState()
		d.SetAccept(s, set.intersects(memo.accepting))
		return s
	}

	startSet := memo.closure[n.Start()].clone()
	it.intern(startSet)
	d.SetStart(newSubset(startSet))

	charged := 0
	// Scratch buffers reused across every subset: the member list, the
	// per-symbol presence flags (cleared via the collected list, not a
	// full sweep) and the successor accumulator, which is cloned only
	// when interning discovers a genuinely new subset.
	var members []int
	seenSym := make([]bool, memo.alphaLen)
	collected := make([]alphabet.Symbol, 0, len(memo.syms))
	scratch := newBitset(nStates)
	for i := 0; i < it.len(); i++ {
		// Charge the subsets materialized since the last check; new ones
		// created below are charged at the top of their own iteration.
		if err := meter.AddStates(it.len() - charged); err != nil {
			return nil, false, err
		}
		charged = it.len()
		if cap > 0 && it.len() > cap {
			return nil, false, nil
		}
		members = it.at(i).appendTo(members[:0])
		// Collect the symbols leaving this subset, in symbol order: the
		// order successors are first discovered in fixes the DFA's state
		// numbering. Flagging against the precomputed per-state symbol
		// lists and replaying memo.syms (globally sorted) yields exactly
		// the sorted union, with no map and no per-subset sort.
		collected = collected[:0]
		for _, q := range members {
			for _, x := range memo.stateSyms[q] {
				if !seenSym[x] {
					seenSym[x] = true
					collected = append(collected, x)
				}
			}
		}
		added := 0
		if len(collected) > 0 {
			for _, x := range memo.syms {
				if !seenSym[x] {
					continue
				}
				scratch.clear()
				for _, q := range members {
					if tbl := memo.step[q]; tbl != nil {
						if st := tbl[x]; st != nil {
							scratch.unionWith(st)
						}
					}
				}
				// Step sets are never empty, and at least one member has an
				// x-transition (seenSym), so scratch is nonempty here.
				id, isNew := it.internClone(scratch)
				if isNew {
					newSubset(it.at(id))
				}
				d.SetTransition(State(i), x, State(id))
				added++
			}
			for _, x := range collected {
				seenSym[x] = false
			}
		}
		if err := meter.AddTransitions(added); err != nil {
			return nil, false, err
		}
	}
	debugValidateDFA(d)
	return d, true, nil
}

// DeterminizeMinimal is Determinize followed by Minimize and TrimPartial:
// the canonical trim DFA of the NFA's language.
func DeterminizeMinimal(n *NFA) *DFA {
	out := Determinize(n).Minimize().TrimPartial()
	debugValidateDFA(out)
	return out
}
