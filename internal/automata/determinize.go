package automata

import (
	"fmt"

	"regexrw/internal/alphabet"
)

// ErrStateLimit is returned (wrapped) by DeterminizeLimit when the
// subset construction exceeds its state budget.
var ErrStateLimit = fmt.Errorf("automata: state limit exceeded")

// DeterminizeLimit is Determinize with a resource guard: it fails with
// an error wrapping ErrStateLimit as soon as the subset construction
// materializes more than maxStates states. The rewriting construction
// is doubly exponential in the worst case (Theorem 5), so callers that
// face untrusted inputs should bound it rather than hang;
// core.MaximalRewritingBounded threads this limit through every
// determinization of the pipeline.
func DeterminizeLimit(n *NFA, maxStates int) (*DFA, error) {
	if maxStates <= 0 {
		return nil, fmt.Errorf("%w: limit must be positive, got %d", ErrStateLimit, maxStates)
	}
	d := determinize(n, maxStates)
	if d == nil {
		return nil, fmt.Errorf("%w: subset construction needs more than %d states", ErrStateLimit, maxStates)
	}
	return d, nil
}

// Determinize converts an NFA (possibly with ε-transitions) into an
// equivalent DFA via subset construction. Only reachable subsets are
// materialized; the result is a partial DFA (missing transitions mean
// the dead state).
func Determinize(n *NFA) *DFA {
	return determinize(n, 0)
}

// determinize runs the subset construction; maxStates ≤ 0 means
// unbounded, and exceeding a positive bound returns nil.
func determinize(n *NFA, maxStates int) *DFA {
	d := NewDFA(n.Alphabet())
	if n.Start() == NoState {
		d.SetStart(d.AddState())
		return d
	}
	nStates := n.NumStates()

	startSet := newBitset(nStates)
	startSet.add(int(n.Start()))
	n.epsClosure(startSet)

	subsets := map[string]State{}
	var sets []*bitset

	newSubset := func(set *bitset) State {
		s := d.AddState()
		sets = append(sets, set)
		subsets[set.key()] = s
		acc := false
		for _, q := range set.slice() {
			if n.accept[q] {
				acc = true
				break
			}
		}
		d.SetAccept(s, acc)
		return s
	}

	start := newSubset(startSet)
	d.SetStart(start)

	for i := 0; i < len(sets); i++ {
		if maxStates > 0 && len(sets) > maxStates {
			return nil
		}
		set := sets[i]
		// Collect the symbols leaving this subset.
		seen := map[alphabet.Symbol]bool{}
		for _, q := range set.slice() {
			for x := range n.trans[q] {
				seen[x] = true
			}
		}
		for x := range seen {
			next := newBitset(nStates)
			for _, q := range set.slice() {
				for _, t := range n.trans[q][x] {
					next.add(int(t))
				}
			}
			if next.empty() {
				continue
			}
			n.epsClosure(next)
			to, ok := subsets[next.key()]
			if !ok {
				to = newSubset(next)
			}
			d.SetTransition(State(i), x, to)
		}
	}
	return d
}

// DeterminizeMinimal is Determinize followed by Minimize and TrimPartial:
// the canonical trim DFA of the NFA's language.
func DeterminizeMinimal(n *NFA) *DFA {
	return Determinize(n).Minimize().TrimPartial()
}
