package automata

import (
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

func TestCodecRoundTrip(t *testing.T) {
	n := buildAB(t)
	n.AddEpsilon(0, 1)
	var b strings.Builder
	if _, err := n.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNFA(strings.NewReader(b.String()), alphabet.New())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStates() != n.NumStates() || back.NumTransitions() != n.NumTransitions() {
		t.Fatalf("round trip: %d/%d states, %d/%d transitions",
			back.NumStates(), n.NumStates(), back.NumTransitions(), n.NumTransitions())
	}
	if !Equivalent(n, back) {
		t.Fatal("round trip changed the language")
	}
}

func TestCodecRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	al := ab()
	for trial := 0; trial < 25; trial++ {
		n := randomNFA(r, al, 6)
		var b strings.Builder
		if _, err := n.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		back, err := ReadNFA(strings.NewReader(b.String()), alphabet.New())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		if !Equivalent(n, back) {
			t.Fatalf("trial %d: language changed", trial)
		}
	}
}

func TestCodecCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nstates 2\nstart 0\naccept 1\ntrans 0 x 1\n"
	n, err := ReadNFA(strings.NewReader(in), alphabet.New())
	if err != nil {
		t.Fatal(err)
	}
	if !n.AcceptsNames("x") {
		t.Fatal("parsed automaton wrong")
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"",                                  // missing states
		"states 2\nstates 2\n",              // repeated states
		"states x\n",                        // bad count
		"states 2\nstart 5\n",               // out of range
		"states 2\naccept -1\n",             // out of range
		"states 2\ntrans 0 x\n",             // malformed trans
		"states 2\neps 0\n",                 // malformed eps
		"states 2\nfrobnicate 1\n",          // unknown directive
		"states 2\nstart\n",                 // malformed start
		"states 1\ntrans 0 x 3\n",           // trans target out of range
		"states 1\naccept zero\n",           // bad number
		"states 2\nstart 0\naccept 1 2 3\n", // malformed accept
	}
	for i, in := range cases {
		if _, err := ReadNFA(strings.NewReader(in), alphabet.New()); err == nil {
			t.Errorf("case %d (%q) should fail", i, in)
		}
	}
}

func TestCodecEmptyAutomaton(t *testing.T) {
	n := NewNFA(alphabet.New())
	n.SetStart(n.AddState())
	var b strings.Builder
	if _, err := n.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNFA(strings.NewReader(b.String()), alphabet.New())
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsEmpty() {
		t.Fatal("empty automaton round trip broken")
	}
}

func TestDeterminizeLimit(t *testing.T) {
	al := ab()
	// (a+b)* a (a+b)^5 needs 2^6 = 64 subset states.
	n := NewNFA(al)
	states := make([]State, 7)
	for i := range states {
		states[i] = n.AddState()
	}
	n.SetStart(states[0])
	n.SetAccept(states[6], true)
	a, bsym := al.Lookup("a"), al.Lookup("b")
	n.AddTransition(states[0], a, states[0])
	n.AddTransition(states[0], bsym, states[0])
	n.AddTransition(states[0], a, states[1])
	for i := 1; i < 6; i++ {
		n.AddTransition(states[i], a, states[i+1])
		n.AddTransition(states[i], bsym, states[i+1])
	}
	if _, err := DeterminizeLimit(n, 10); err == nil {
		t.Fatal("limit 10 should trip")
	}
	d, err := DeterminizeLimit(n, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(d.NFA(), n) {
		t.Fatal("bounded determinization changed the language")
	}
	if _, err := DeterminizeLimit(n, 0); err == nil {
		t.Fatal("non-positive limit should error")
	}
}
