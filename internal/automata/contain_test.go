package automata

import (
	"math/rand"
	"strings"
	"testing"
)

func TestContainedInBasic(t *testing.T) {
	al := ab()
	a := SymbolLanguage(al, al.Lookup("a"))
	aStar := Star(a.Clone())
	ok, _ := ContainedIn(a, aStar)
	if !ok {
		t.Fatal("a ⊆ a* should hold")
	}
	ok, cex := ContainedIn(aStar, a)
	if ok {
		t.Fatal("a* ⊆ a should fail")
	}
	// Shortest counterexample is ε (in a*, not in a).
	if len(cex) != 0 {
		t.Fatalf("counterexample = %v, want ε", FormatWord(al, cex))
	}
}

func TestContainedInCounterexampleIsShortest(t *testing.T) {
	al := ab()
	// L1 = a*, L2 = {ε, a}: counterexample should be aa (length 2).
	aStar := Star(SymbolLanguage(al, al.Lookup("a")))
	upTo1 := Optional(SymbolLanguage(al, al.Lookup("a")))
	ok, cex := ContainedIn(aStar, upTo1)
	if ok {
		t.Fatal("a* ⊆ {ε,a} should fail")
	}
	if FormatWord(al, cex) != "a·a" {
		t.Fatalf("counterexample = %v, want a·a", FormatWord(al, cex))
	}
	if upTo1.Accepts(cex) || !aStar.Accepts(cex) {
		t.Fatal("counterexample not in L1 \\ L2")
	}
}

func TestContainedInEmptyLeft(t *testing.T) {
	al := ab()
	ok, _ := ContainedIn(EmptyLanguage(al), EmptyLanguage(al))
	if !ok {
		t.Fatal("∅ ⊆ ∅ should hold")
	}
	ok, _ = ContainedIn(EpsilonLanguage(al), EmptyLanguage(al))
	if ok {
		t.Fatal("{ε} ⊆ ∅ should fail")
	}
}

func TestContainedInAcrossAlphabets(t *testing.T) {
	alA := ab()
	alB := ab("c")
	// a ⊆ (a+b+c)* holds; c* ⊆ (a+b)* fails with counterexample c.
	ok, _ := ContainedIn(SymbolLanguage(alA, alA.Lookup("a")), UniversalLanguage(alB))
	if !ok {
		t.Fatal("a ⊆ Σ3* should hold")
	}
	cStar := Star(SymbolLanguage(alB, alB.Lookup("c")))
	ok, cex := ContainedIn(cStar, UniversalLanguage(alA))
	if ok {
		t.Fatal("c* ⊆ (a+b)* should fail")
	}
	if FormatWord(alB, cex) != "c" {
		t.Fatalf("counterexample = %v, want c", FormatWord(alB, cex))
	}
}

func TestEquivalent(t *testing.T) {
	al := ab()
	a := al.Lookup("a")
	// (a·a)* vs even-length words of a's built differently.
	twoAs := Concat(SymbolLanguage(al, a), SymbolLanguage(al, a))
	l1 := Star(twoAs)
	// Same language via DFA evenAs restricted to a-only words:
	l2 := Star(Concat(SymbolLanguage(al, a), SymbolLanguage(al, a)))
	if !Equivalent(l1, l2) {
		t.Fatal("equivalent languages reported different")
	}
	if Equivalent(l1, Star(SymbolLanguage(al, a))) {
		t.Fatal("(aa)* equivalent to a*?")
	}
}

// Property: ContainedIn agrees with the materialized baseline, and a
// reported counterexample is genuinely in L(a) \ L(b).
func TestPropertyContainedInAgreesWithMaterialized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	al := ab()
	for trial := 0; trial < 60; trial++ {
		n1 := randomNFA(r, al, 5)
		n2 := randomNFA(r, al, 5)
		got, cex := ContainedIn(n1, n2)
		want := ContainedInMaterialized(n1, n2)
		if got != want {
			t.Fatalf("trial %d: on-the-fly=%v materialized=%v", trial, got, want)
		}
		if !got {
			if !n1.Accepts(cex) || n2.Accepts(cex) {
				t.Fatalf("trial %d: bogus counterexample %v", trial, FormatWord(al, cex))
			}
		}
	}
}

// Property: containment is reflexive and respects union/intersection.
func TestPropertyContainmentLattice(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	al := ab()
	for trial := 0; trial < 30; trial++ {
		n1 := randomNFA(r, al, 4)
		n2 := randomNFA(r, al, 4)
		if ok, _ := ContainedIn(n1, n1); !ok {
			t.Fatal("containment not reflexive")
		}
		u := Union(n1, n2)
		if ok, _ := ContainedIn(n1, u); !ok {
			t.Fatal("L1 ⊄ L1∪L2")
		}
		i := Intersect(n1, n2)
		if ok, _ := ContainedIn(i, n1); !ok {
			t.Fatal("L1∩L2 ⊄ L1")
		}
	}
}

func TestDOTOutput(t *testing.T) {
	n := buildAB(t)
	dot := n.DOT("ab")
	for _, frag := range []string{"digraph \"ab\"", "doublecircle", "s0 -> s1", "label=\"a\""} {
		if !contains(dot, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, dot)
		}
	}
	ddot := Determinize(n).DOT("dab")
	if !contains(ddot, "digraph \"dab\"") {
		t.Fatal("DFA DOT missing header")
	}
}

func TestStringOutputs(t *testing.T) {
	n := buildAB(t)
	if s := n.String(); !contains(s, "s0 --a--> [1]") {
		t.Fatalf("NFA String unexpected:\n%s", s)
	}
	d := Determinize(n)
	if s := d.String(); !contains(s, "DFA[states=") {
		t.Fatalf("DFA String unexpected:\n%s", s)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
