// Package automata implements the finite-automata toolkit underlying the
// rewriting algorithms of Calvanese, De Giacomo, Lenzerini and Vardi
// (PODS 1999): nondeterministic and deterministic finite automata with
// subset construction, Hopcroft minimization, complement, boolean
// operations, emptiness, containment and equivalence — including the
// on-the-fly complement used by the paper's 2EXPSPACE exactness check
// (Theorem 6).
//
// Automata are defined over an alphabet.Alphabet. States are dense
// integers local to one automaton. NFAs may contain ε-transitions;
// every consumer that needs an ε-free view calls RemoveEpsilon.
package automata

import (
	"fmt"
	"sort"
	"sync/atomic"

	"regexrw/internal/alphabet"
)

// State identifies a state within a single automaton.
type State int

// NoState marks the absence of a state (e.g. a missing DFA transition).
const NoState State = -1

// NFA is a nondeterministic finite automaton with optional
// ε-transitions. The zero value is not usable; create NFAs with NewNFA.
//
// An NFA is safe for concurrent READ-ONLY use: the ε-closure/stepper
// memo (cache.go) that accelerates Determinize, RemoveEpsilon and
// ContainedIn is published through an atomic pointer, so parallel
// pipeline stages can share one automaton. Mutating an NFA while any
// other goroutine uses it is a data race, as it always was.
type NFA struct {
	alpha  *alphabet.Alphabet
	start  State
	accept []bool
	// trans[s][x] lists the x-successors of state s.
	trans []map[alphabet.Symbol][]State
	// eps[s] lists the ε-successors of state s.
	eps [][]State

	// gen counts structural mutations; memo caches the closure/stepper
	// tables built for a particular gen (see cache.go).
	gen  int64
	memo atomic.Pointer[memoBox]
}

// NewNFA returns an empty NFA over the given alphabet. It has no states;
// the start state must be set after adding states.
func NewNFA(a *alphabet.Alphabet) *NFA {
	n := &NFA{alpha: a, start: NoState}
	debugValidateNFA(n)
	return n
}

// Alphabet returns the automaton's alphabet.
func (n *NFA) Alphabet() *alphabet.Alphabet { return n.alpha }

// AddState adds a fresh non-accepting state and returns its id.
func (n *NFA) AddState() State {
	n.invalidateMemo()
	n.accept = append(n.accept, false)
	n.trans = append(n.trans, nil)
	n.eps = append(n.eps, nil)
	return State(len(n.accept) - 1)
}

// AddStates adds k fresh states and returns the id of the first.
func (n *NFA) AddStates(k int) State {
	first := State(len(n.accept))
	for i := 0; i < k; i++ { //budget:exempt the bulk-allocation primitive itself; charging is the contract of the loops that call it
		n.AddState()
	}
	return first
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.accept) }

// Start returns the start state (NoState if unset).
func (n *NFA) Start() State { return n.start }

// SetStart sets the start state.
func (n *NFA) SetStart(s State) { n.checkState(s); n.start = s }

// Accepting reports whether s is accepting.
func (n *NFA) Accepting(s State) bool { n.checkState(s); return n.accept[s] }

// SetAccept marks s accepting or not.
func (n *NFA) SetAccept(s State, accepting bool) {
	n.checkState(s)
	n.invalidateMemo()
	n.accept[s] = accepting
}

// AcceptingStates returns all accepting states in increasing order.
func (n *NFA) AcceptingStates() []State {
	var out []State
	for s, acc := range n.accept {
		if acc {
			out = append(out, State(s))
		}
	}
	return out
}

// AddTransition adds the transition from --x--> to.
func (n *NFA) AddTransition(from State, x alphabet.Symbol, to State) {
	n.checkState(from)
	n.checkState(to)
	n.invalidateMemo()
	if n.trans[from] == nil {
		n.trans[from] = make(map[alphabet.Symbol][]State)
	}
	for _, t := range n.trans[from][x] {
		if t == to {
			return // already present
		}
	}
	n.trans[from][x] = append(n.trans[from][x], to)
}

// AddEpsilon adds an ε-transition from --ε--> to.
func (n *NFA) AddEpsilon(from, to State) {
	n.checkState(from)
	n.checkState(to)
	if from == to {
		return
	}
	n.invalidateMemo()
	for _, t := range n.eps[from] {
		if t == to {
			return
		}
	}
	n.eps[from] = append(n.eps[from], to)
}

// Successors returns the x-successors of s (shared slice; do not mutate).
func (n *NFA) Successors(s State, x alphabet.Symbol) []State {
	n.checkState(s)
	return n.trans[s][x]
}

// EpsSuccessors returns the direct ε-successors of s (shared slice).
func (n *NFA) EpsSuccessors(s State) []State {
	n.checkState(s)
	return n.eps[s]
}

// OutSymbols returns the symbols with at least one transition out of s.
// Order is unspecified (map iteration order): use it only where the
// result feeds an order-insensitive computation, and OutSymbolsSorted
// everywhere the iteration order can leak into output — state
// numbering, serialized automata, synthesized expressions, witnesses.
// The mapiter analyzer (internal/analysis) enforces this split.
func (n *NFA) OutSymbols(s State) []alphabet.Symbol {
	n.checkState(s)
	out := make([]alphabet.Symbol, 0, len(n.trans[s]))
	for x := range n.trans[s] {
		out = append(out, x)
	}
	return out
}

// OutSymbolsSorted returns the symbols with at least one transition out
// of s in increasing symbol order. It is the deterministic accessor the
// canonical-output paths (codec, DOT, regex synthesis, witness search,
// subset construction) iterate with.
func (n *NFA) OutSymbolsSorted(s State) []alphabet.Symbol {
	out := n.OutSymbols(s)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasEpsilon reports whether the automaton has any ε-transition.
func (n *NFA) HasEpsilon() bool {
	for _, e := range n.eps {
		if len(e) > 0 {
			return true
		}
	}
	return false
}

// NumTransitions returns the total number of (symbol and ε) transitions.
func (n *NFA) NumTransitions() int {
	total := 0
	for s := range n.trans {
		for _, ts := range n.trans[s] { //mapiter:unordered summing counts; order cannot affect the total
			total += len(ts)
		}
		total += len(n.eps[s])
	}
	return total
}

func (n *NFA) checkState(s State) {
	if s < 0 || int(s) >= len(n.accept) {
		panic(fmt.Sprintf("automata: state %d out of range [0,%d)", s, len(n.accept)))
	}
}

// epsClosure expands set (a bitset over states) in place to its
// ε-closure and returns it.
func (n *NFA) epsClosure(set *bitset) *bitset {
	stack := set.slice()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !set.has(int(t)) {
				set.add(int(t))
				stack = append(stack, int(t))
			}
		}
	}
	return set
}

// EpsClosureOf returns the ε-closure of the given states as a sorted slice.
func (n *NFA) EpsClosureOf(states ...State) []State {
	set := newBitset(n.NumStates())
	for _, s := range states {
		n.checkState(s)
		set.add(int(s))
	}
	n.epsClosure(set)
	return toStates(set.slice())
}

// Accepts reports whether the NFA accepts the given word.
func (n *NFA) Accepts(word []alphabet.Symbol) bool {
	if n.start == NoState {
		return false
	}
	cur := newBitset(n.NumStates())
	cur.add(int(n.start))
	n.epsClosure(cur)
	for _, x := range word {
		next := newBitset(n.NumStates())
		for _, s := range cur.slice() {
			for _, t := range n.trans[s][x] {
				next.add(int(t))
			}
		}
		n.epsClosure(next)
		if next.empty() {
			return false
		}
		cur = next
	}
	for _, s := range cur.slice() {
		if n.accept[s] {
			return true
		}
	}
	return false
}

// AcceptsNames is Accepts with symbol names; unknown names yield false
// (no transition can match them).
func (n *NFA) AcceptsNames(names ...string) bool {
	word := make([]alphabet.Symbol, len(names))
	for i, name := range names {
		s := n.alpha.Lookup(name)
		if s == alphabet.None {
			return false
		}
		word[i] = s
	}
	return n.Accepts(word)
}

// Clone returns a deep copy of the NFA (sharing the alphabet).
func (n *NFA) Clone() *NFA {
	c := NewNFA(n.alpha)
	c.start = n.start
	c.accept = append([]bool(nil), n.accept...)
	c.trans = make([]map[alphabet.Symbol][]State, len(n.trans))
	for s, m := range n.trans {
		if m == nil {
			continue
		}
		cm := make(map[alphabet.Symbol][]State, len(m))
		for x, ts := range m { //mapiter:unordered copying into a map; per-symbol slices keep their order
			cm[x] = append([]State(nil), ts...)
		}
		c.trans[s] = cm
	}
	c.eps = make([][]State, len(n.eps))
	for s, ts := range n.eps {
		if len(ts) > 0 {
			c.eps[s] = append([]State(nil), ts...)
		}
	}
	// The clone is structurally identical, so a memo that is fresh for
	// the source is fresh for the copy too: carry the (immutable) box
	// over so RemoveEpsilon/Determinize/ContainedIn on the clone reuse
	// the closure tables instead of rebuilding them. A later mutation of
	// the clone bumps c.gen and the stale box is rebuilt as usual.
	gen := atomic.LoadInt64(&n.gen)
	if box := n.memo.Load(); box != nil && box.gen == gen {
		atomic.StoreInt64(&c.gen, gen)
		c.memo.Store(box)
	}
	debugValidateNFA(c)
	return c
}

// CopyInto copies all states and transitions of src into dst (which must
// share an alphabet superset by name) and returns the mapping from src
// states to dst states. Accepting flags are preserved; the start state
// of dst is untouched.
func CopyInto(dst, src *NFA) []State {
	remap := make([]alphabet.Symbol, src.alpha.Len())
	for _, x := range src.alpha.Symbols() {
		remap[x] = alphabet.Map(src.alpha, x, dst.alpha)
	}
	mapping := make([]State, src.NumStates())
	for s := 0; s < src.NumStates(); s++ { //budget:exempt verbatim copy of an already-admitted NFA's states; no amplification
		mapping[s] = dst.AddState()
		dst.SetAccept(mapping[s], src.accept[s])
	}
	for s := 0; s < src.NumStates(); s++ { //budget:exempt verbatim copy of an already-admitted NFA's transitions; no amplification
		for x, ts := range src.trans[s] { //mapiter:unordered building a map-backed NFA; per-(state,symbol) target order is preserved
			for _, t := range ts {
				dst.AddTransition(mapping[s], remap[x], mapping[t])
			}
		}
		for _, t := range src.eps[s] {
			dst.AddEpsilon(mapping[s], mapping[t])
		}
	}
	return mapping
}

// RemoveEpsilon returns an equivalent NFA without ε-transitions. The
// per-state ε-closures come from the shared memo (cache.go), so
// repeated calls on the same automaton — the containment and exactness
// pipelines strip ε from the same operands over and over — pay the
// closure DFS once.
func (n *NFA) RemoveEpsilon() *NFA {
	if !n.HasEpsilon() {
		return n.Clone()
	}
	memo := n.memoTables()
	out := NewNFA(n.alpha)
	out.AddStates(n.NumStates())
	if n.start != NoState {
		out.SetStart(n.start)
	}
	for s := 0; s < n.NumStates(); s++ { //budget:exempt state count is preserved and transitions are bounded by n·|closure|·|Σ| of an already-admitted NFA
		if memo.closure[s].intersects(memo.accepting) {
			out.SetAccept(State(s), true)
		}
		for _, c := range memo.closure[s].slice() {
			for x, ts := range n.trans[c] { //mapiter:unordered building a map-backed NFA; closure states visit in sorted order
				for _, t := range ts {
					out.AddTransition(State(s), x, t)
				}
			}
		}
	}
	trimmed := out.Trim()
	debugValidateNFA(trimmed)
	return trimmed
}

// Trim returns an NFA with only states that are reachable from the start
// and co-reachable to an accepting state. The start state is always kept
// (a trimmed automaton of the empty language is a single non-accepting
// start state).
func (n *NFA) Trim() *NFA {
	if n.start == NoState {
		out := NewNFA(n.alpha)
		out.SetStart(out.AddState())
		debugValidateNFA(out)
		return out
	}
	reach := newBitset(n.NumStates())
	reach.add(int(n.start))
	stack := []State{n.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit := func(t State) {
			if !reach.has(int(t)) {
				reach.add(int(t))
				stack = append(stack, t)
			}
		}
		for _, ts := range n.trans[s] { //mapiter:unordered reachability set; visit order cannot change membership
			for _, t := range ts {
				visit(t)
			}
		}
		for _, t := range n.eps[s] {
			visit(t)
		}
	}
	// Co-reachability via reverse BFS from accepting states.
	rev := make([][]State, n.NumStates())
	for s := 0; s < n.NumStates(); s++ {
		for _, ts := range n.trans[s] { //mapiter:unordered reachability set; visit order cannot change membership
			for _, t := range ts {
				rev[t] = append(rev[t], State(s))
			}
		}
		for _, t := range n.eps[s] {
			rev[t] = append(rev[t], State(s))
		}
	}
	co := newBitset(n.NumStates())
	for s, acc := range n.accept {
		if acc {
			co.add(s)
			stack = append(stack, State(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !co.has(int(p)) {
				co.add(int(p))
				stack = append(stack, p)
			}
		}
	}
	keep := make([]State, n.NumStates())
	out := NewNFA(n.alpha)
	for s := 0; s < n.NumStates(); s++ { //budget:exempt keeps a subset of an already-admitted NFA's states; no amplification
		if (reach.has(s) && co.has(s)) || State(s) == n.start {
			keep[s] = out.AddState()
			out.SetAccept(keep[s], n.accept[s])
		} else {
			keep[s] = NoState
		}
	}
	out.SetStart(keep[n.start])
	for s := 0; s < n.NumStates(); s++ { //budget:exempt copies a subset of an already-admitted NFA's transitions; no amplification
		if keep[s] == NoState {
			continue
		}
		for x, ts := range n.trans[s] { //mapiter:unordered building a map-backed NFA; per-(state,symbol) target order is preserved
			for _, t := range ts {
				if keep[t] != NoState {
					out.AddTransition(keep[s], x, keep[t])
				}
			}
		}
		for _, t := range n.eps[s] {
			if keep[t] != NoState {
				out.AddEpsilon(keep[s], keep[t])
			}
		}
	}
	debugValidateNFA(out)
	return out
}

func toStates(ints []int) []State {
	out := make([]State, len(ints))
	for i, v := range ints {
		out[i] = State(v)
	}
	return out
}
