package automata_test

import (
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// Build an NFA by hand, determinize and minimize it.
func ExampleDeterminize() {
	al := alphabet.FromNames("a", "b")
	n := automata.NewNFA(al)
	s0 := n.AddState()
	s1 := n.AddState()
	n.SetStart(s0)
	n.SetAccept(s1, true)
	n.AddTransition(s0, al.Lookup("a"), s0)
	n.AddTransition(s0, al.Lookup("b"), s0)
	n.AddTransition(s0, al.Lookup("a"), s1) // nondeterministic on a

	d := automata.Determinize(n)
	fmt.Println("accepts ba:", d.AcceptsNames("b", "a"))
	fmt.Println("accepts ab:", d.AcceptsNames("a", "b"))
	fmt.Println("minimal states:", d.Minimize().TrimPartial().NumStates())
	// Output:
	// accepts ba: true
	// accepts ab: false
	// minimal states: 2
}

// ContainedIn decides language inclusion with an on-the-fly complement
// and returns a shortest counterexample when inclusion fails.
func ExampleContainedIn() {
	al := alphabet.FromNames("a")
	aPlus := automata.Plus(automata.SymbolLanguage(al, al.Lookup("a")))
	aStar := automata.Star(automata.SymbolLanguage(al, al.Lookup("a")))

	ok, _ := automata.ContainedIn(aPlus, aStar)
	fmt.Println("a+ ⊆ a*:", ok)
	ok, cex := automata.ContainedIn(aStar, aPlus)
	fmt.Println("a* ⊆ a+:", ok, "counterexample:", automata.FormatWord(al, cex))
	// Output:
	// a+ ⊆ a*: true
	// a* ⊆ a+: false counterexample: ε
}

// Quotients compute residual languages.
func ExampleLeftQuotient() {
	al := alphabet.FromNames("a", "b")
	n := automata.WordLanguage(al, automata.ParseWord(al, "a b b"))
	q := automata.LeftQuotient(n, automata.ParseWord(al, "a"))
	fmt.Println("bb in a⁻¹(abb):", q.AcceptsNames("b", "b"))
	fmt.Println("b in a⁻¹(abb): ", q.AcceptsNames("b"))
	// Output:
	// bb in a⁻¹(abb): true
	// b in a⁻¹(abb):  false
}
