package automata

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

// randomNFA builds a random automaton directly (not via regex
// compilation) so that the codec sees shapes the rest of the pipeline
// never produces: unreachable states, accepting states with no path,
// ε-cycles.
func randomCodecNFA(r *rand.Rand) *NFA {
	a := alphabet.New()
	symbols := make([]alphabet.Symbol, 1+r.Intn(4))
	for i := range symbols {
		symbols[i] = a.Intern(fmt.Sprintf("s%d", i))
	}
	n := NewNFA(a)
	states := 1 + r.Intn(8)
	n.AddStates(states)
	n.SetStart(State(r.Intn(states)))
	for s := 0; s < states; s++ {
		if r.Float64() < 0.3 {
			n.SetAccept(State(s), true)
		}
		for t := 0; t < states; t++ {
			if r.Float64() < 0.2 {
				n.AddTransition(State(s), symbols[r.Intn(len(symbols))], State(t))
			}
			if s != t && r.Float64() < 0.1 {
				n.AddEpsilon(State(s), State(t))
			}
		}
	}
	return n
}

// TestCodecRoundTripProperty: for random automata, Write→Read must
// preserve the language, and the serialization must be stable after one
// round trip (symbol ids in a fresh alphabet follow appearance order,
// so the very first write can order transitions differently; from then
// on every write must agree byte for byte).
func TestCodecRoundTripProperty(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < iters; i++ {
		n := randomCodecNFA(r)
		var buf strings.Builder
		if _, err := n.WriteTo(&buf); err != nil {
			t.Fatalf("iter %d: WriteTo: %v", i, err)
		}
		back, err := ReadNFA(strings.NewReader(buf.String()), alphabet.New())
		if err != nil {
			t.Fatalf("iter %d: ReadNFA: %v\ninput:\n%s", i, err, buf.String())
		}
		if !Equivalent(n, back) {
			t.Fatalf("iter %d: round trip changed the language:\n%s", i, buf.String())
		}
		var buf2 strings.Builder
		if _, err := back.WriteTo(&buf2); err != nil {
			t.Fatalf("iter %d: re-serialize: %v", i, err)
		}
		back2, err := ReadNFA(strings.NewReader(buf2.String()), alphabet.New())
		if err != nil {
			t.Fatalf("iter %d: second ReadNFA: %v\ninput:\n%s", i, err, buf2.String())
		}
		var buf3 strings.Builder
		if _, err := back2.WriteTo(&buf3); err != nil {
			t.Fatalf("iter %d: third serialize: %v", i, err)
		}
		if buf2.String() != buf3.String() {
			t.Fatalf("iter %d: serialization not stable after round trip:\n--- second ---\n%s\n--- third ---\n%s",
				i, buf2.String(), buf3.String())
		}
	}
}

// TestCodecTruncationProperty: every prefix of a valid serialization
// must either parse (a shorter valid automaton) or return an error —
// never panic. Parsed prefixes must still validate.
func TestCodecTruncationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 50; i++ {
		n := randomCodecNFA(r)
		var buf strings.Builder
		if _, err := n.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		full := buf.String()
		for cut := 0; cut <= len(full); cut++ {
			got, err := ReadNFA(strings.NewReader(full[:cut]), alphabet.New())
			if err != nil {
				continue
			}
			if verr := got.Validate(); verr != nil {
				t.Fatalf("iter %d cut %d: parsed prefix is invalid: %v\nprefix:\n%s", i, cut, verr, full[:cut])
			}
		}
	}
}

// TestCodecCorruptionProperty: flipping one byte of a valid
// serialization must produce either an error or a valid automaton —
// never a panic or an invalid structure.
func TestCodecCorruptionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 30; i++ {
		n := randomCodecNFA(r)
		var buf strings.Builder
		if _, err := n.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		full := []byte(buf.String())
		for j := 0; j < 40; j++ {
			pos := r.Intn(len(full))
			corrupted := append([]byte(nil), full...)
			corrupted[pos] = byte(r.Intn(256))
			got, err := ReadNFA(strings.NewReader(string(corrupted)), alphabet.New())
			if err != nil {
				continue
			}
			if verr := got.Validate(); verr != nil {
				t.Fatalf("iter %d: corrupt input parsed into invalid automaton: %v\ninput:\n%s", i, verr, corrupted)
			}
		}
	}
}

// TestCodecStateCap: adversarial "states N" headers with huge N are
// rejected before allocation, not honored.
func TestCodecStateCap(t *testing.T) {
	for _, input := range []string{
		"states 99999999999\n",
		fmt.Sprintf("states %d\n", maxCodecStates+1),
		"states 2000000\nstart 0\n",
	} {
		if _, err := ReadNFA(strings.NewReader(input), alphabet.New()); err == nil {
			t.Fatalf("ReadNFA accepted oversized state count: %q", input)
		}
	}
	// The cap itself is fine.
	if _, err := ReadNFA(strings.NewReader(fmt.Sprintf("states %d\n", 1024)), alphabet.New()); err != nil {
		t.Fatalf("ReadNFA rejected a reasonable state count: %v", err)
	}
}
