package automata

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"regexrw/internal/alphabet"
)

// WriteTo serializes the DFA in the same line-oriented text format as
// NFA.WriteTo, without ε-lines and with at most one transition per
// (state, symbol) pair:
//
//	states 3
//	start 0
//	accept 2
//	trans 0 a 1
//
// Output is deterministic: transitions are emitted per state in
// increasing symbol order.
func (d *DFA) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		c, err := fmt.Fprintf(w, format, args...)
		total += int64(c)
		return err
	}
	if err := write("states %d\n", d.NumStates()); err != nil {
		return total, err
	}
	if d.start != NoState {
		if err := write("start %d\n", d.start); err != nil {
			return total, err
		}
	}
	for s := 0; s < d.NumStates(); s++ {
		if d.accept[s] {
			if err := write("accept %d\n", s); err != nil {
				return total, err
			}
		}
	}
	for s := 0; s < d.NumStates(); s++ {
		for x, t := range d.trans[s] {
			if t == NoState {
				continue
			}
			if err := write("trans %d %s %d\n", s, d.alpha.Name(alphabet.Symbol(x)), t); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// ReadDFA parses the format written by (*DFA).WriteTo into a new DFA
// over the given alphabet (symbols are interned as encountered).
// Malformed input — truncated, corrupted, ε-lines, duplicate
// (state, symbol) transitions, out-of-range state references, state
// counts above the codec cap — returns an error; ReadDFA never panics.
//
// Unlike ReadNFA, the parse is two-pass: a DFA's transition rows are
// sized by the alphabet at state-creation time, so every symbol must be
// interned before the first state is added.
func ReadDFA(r io.Reader, a *alphabet.Alphabet) (*DFA, error) {
	type line struct {
		no     int
		fields []string
	}
	var lines []line
	sc := bufio.NewScanner(r)
	lineNo := 0
	numStates := -1
	for sc.Scan() { //budget:exempt decode loop is linear in the input stream; the states header bounds every id before any allocation
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "states":
			if len(fields) != 2 || numStates >= 0 {
				return nil, fmt.Errorf("automata: line %d: malformed or repeated states line", lineNo)
			}
			var k int
			if _, err := fmt.Sscanf(fields[1], "%d", &k); err != nil || k < 0 {
				return nil, fmt.Errorf("automata: line %d: bad state count %q", lineNo, fields[1])
			}
			if k > maxCodecStates {
				return nil, fmt.Errorf("automata: line %d: state count %d exceeds limit %d", lineNo, k, maxCodecStates)
			}
			numStates = k
		case "start", "accept":
			if len(fields) != 2 {
				return nil, fmt.Errorf("automata: line %d: malformed %s line", lineNo, fields[0])
			}
			lines = append(lines, line{lineNo, fields})
		case "trans":
			if len(fields) != 4 {
				return nil, fmt.Errorf("automata: line %d: malformed trans line", lineNo)
			}
			// First pass interns the symbol so the per-state transition
			// rows, allocated below, already have a slot for it.
			a.Intern(fields[2])
			lines = append(lines, line{lineNo, fields})
		default:
			return nil, fmt.Errorf("automata: line %d: unknown directive %q in DFA input", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numStates < 0 {
		return nil, fmt.Errorf("automata: missing states line")
	}

	d := NewDFA(a)
	for i := 0; i < numStates; i++ { //budget:exempt allocation of the header-declared, cap-checked state count
		d.AddState()
	}
	parseState := func(no int, f string) (State, error) {
		var v int
		if _, err := fmt.Sscanf(f, "%d", &v); err != nil {
			return NoState, fmt.Errorf("automata: line %d: bad state %q", no, f)
		}
		if v < 0 || v >= numStates {
			return NoState, fmt.Errorf("automata: line %d: state %d out of range", no, v)
		}
		return State(v), nil
	}
	for _, ln := range lines { //budget:exempt second decode pass over the buffered lines; same linear bound as the scan
		switch ln.fields[0] {
		case "start":
			s, err := parseState(ln.no, ln.fields[1])
			if err != nil {
				return nil, err
			}
			d.SetStart(s)
		case "accept":
			s, err := parseState(ln.no, ln.fields[1])
			if err != nil {
				return nil, err
			}
			d.SetAccept(s, true)
		case "trans":
			from, err := parseState(ln.no, ln.fields[1])
			if err != nil {
				return nil, err
			}
			to, err := parseState(ln.no, ln.fields[3])
			if err != nil {
				return nil, err
			}
			x := a.Lookup(ln.fields[2])
			if d.Next(from, x) != NoState {
				return nil, fmt.Errorf("automata: line %d: duplicate transition from state %d on %q", ln.no, from, ln.fields[2])
			}
			d.SetTransition(from, x, to)
		}
	}
	debugValidateDFA(d)
	return d, nil
}
