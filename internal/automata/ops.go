package automata

import (
	"context"

	"regexrw/internal/alphabet"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/strategy"
)

// EmptyLanguage returns an NFA over a accepting no word.
func EmptyLanguage(a *alphabet.Alphabet) *NFA {
	n := NewNFA(a)
	n.SetStart(n.AddState())
	debugValidateNFA(n)
	return n
}

// EpsilonLanguage returns an NFA accepting exactly the empty word.
func EpsilonLanguage(a *alphabet.Alphabet) *NFA {
	n := NewNFA(a)
	s := n.AddState()
	n.SetStart(s)
	n.SetAccept(s, true)
	debugValidateNFA(n)
	return n
}

// SymbolLanguage returns an NFA accepting exactly the one-symbol word x.
func SymbolLanguage(a *alphabet.Alphabet, x alphabet.Symbol) *NFA {
	n := NewNFA(a)
	s := n.AddState()
	t := n.AddState()
	n.SetStart(s)
	n.SetAccept(t, true)
	n.AddTransition(s, x, t)
	debugValidateNFA(n)
	return n
}

// WordLanguage returns an NFA accepting exactly the given word.
func WordLanguage(a *alphabet.Alphabet, word []alphabet.Symbol) *NFA {
	n := NewNFA(a)
	cur := n.AddState()
	n.SetStart(cur)
	for _, x := range word { //budget:exempt builds len(word)+1 states; bounded by the caller's input
		next := n.AddState()
		n.AddTransition(cur, x, next)
		cur = next
	}
	n.SetAccept(cur, true)
	debugValidateNFA(n)
	return n
}

// UniversalLanguage returns an NFA accepting every word over a.
func UniversalLanguage(a *alphabet.Alphabet) *NFA {
	n := NewNFA(a)
	s := n.AddState()
	n.SetStart(s)
	n.SetAccept(s, true)
	for _, x := range a.Symbols() { //budget:exempt one state with |Σ| self-loops; bounded by the alphabet
		n.AddTransition(s, x, s)
	}
	debugValidateNFA(n)
	return n
}

// Union returns an NFA for L(a) ∪ L(b). The operands must share an
// alphabet by name (symbol ids are remapped).
func Union(a, b *NFA) *NFA {
	out := NewNFA(alphabet.Union(a.Alphabet(), b.Alphabet()))
	start := out.AddState()
	out.SetStart(start)
	ma := CopyInto(out, a)
	mb := CopyInto(out, b)
	if a.Start() != NoState {
		out.AddEpsilon(start, ma[a.Start()])
	}
	if b.Start() != NoState {
		out.AddEpsilon(start, mb[b.Start()])
	}
	debugValidateNFA(out)
	return out
}

// Concat returns an NFA for L(a)·L(b).
func Concat(a, b *NFA) *NFA {
	out := NewNFA(alphabet.Union(a.Alphabet(), b.Alphabet()))
	ma := CopyInto(out, a)
	mb := CopyInto(out, b)
	if a.Start() != NoState {
		out.SetStart(ma[a.Start()])
	} else {
		out.SetStart(out.AddState())
		debugValidateNFA(out)
		return out
	}
	for _, f := range a.AcceptingStates() { //budget:exempt ε-wiring only, one edge per accepting state of an already-admitted operand
		out.SetAccept(ma[f], false)
		if b.Start() != NoState {
			out.AddEpsilon(ma[f], mb[b.Start()])
		}
	}
	// Accepting states of the result are b's accepting states only; if b
	// has no start, the concatenation is empty and no state accepts.
	if b.Start() == NoState {
		for _, f := range b.AcceptingStates() {
			out.SetAccept(mb[f], false)
		}
	}
	debugValidateNFA(out)
	return out
}

// Star returns an NFA for L(a)*.
func Star(a *NFA) *NFA {
	out := NewNFA(a.Alphabet())
	start := out.AddState()
	out.SetStart(start)
	out.SetAccept(start, true)
	m := CopyInto(out, a)
	if a.Start() != NoState {
		out.AddEpsilon(start, m[a.Start()])
	}
	for _, f := range a.AcceptingStates() { //budget:exempt ε-wiring only, one edge per accepting state of an already-admitted operand
		out.AddEpsilon(m[f], start)
	}
	debugValidateNFA(out)
	return out
}

// Optional returns an NFA for L(a) ∪ {ε}.
func Optional(a *NFA) *NFA {
	out := a.Clone()
	start := out.AddState()
	if a.Start() != NoState {
		out.AddEpsilon(start, a.Start())
	}
	out.SetStart(start)
	out.SetAccept(start, true)
	debugValidateNFA(out)
	return out
}

// Plus returns an NFA for L(a)+ = L(a)·L(a)*.
func Plus(a *NFA) *NFA {
	out := a.Clone()
	if a.Start() == NoState {
		return out // Clone already validated
	}
	for _, f := range out.AcceptingStates() { //budget:exempt ε-wiring only, one edge per accepting state of an already-admitted operand
		out.AddEpsilon(f, out.Start())
	}
	debugValidateNFA(out)
	return out
}

// Intersect returns an ε-free NFA for L(a) ∩ L(b) via the product
// construction, restricted to reachable pairs. Symbols are matched by
// name across the two alphabets; the result is over a's alphabet
// restricted to names shared with b.
func Intersect(a, b *NFA) *NFA { //invariantcall:checked delegates to IntersectContext, which validates
	out, _ := IntersectContext(context.Background(), a, b) // a background context never cancels and carries no budget
	return out
}

// IntersectContext is Intersect with cooperative cancellation and
// resource governance: the product can reach |a|·|b| pairs, so it is
// metered against the context's budget (stage "automata.intersect") and
// aborts with no partial result on cancellation or exhaustion.
func IntersectContext(ctx context.Context, a, b *NFA) (*NFA, error) {
	ctx, span := obs.StartSpan(ctx, "automata.intersect")
	defer span.End()
	meter := budget.Enter(ctx, "automata.intersect")
	ea := a.RemoveEpsilon()
	eb := b.RemoveEpsilon()
	out := NewNFA(ea.Alphabet())

	// Map b's symbols to a's ids where shared; alphabet.None otherwise.
	bToA := make([]alphabet.Symbol, eb.Alphabet().Len())
	for _, x := range eb.Alphabet().Symbols() {
		bToA[x] = ea.Alphabet().Lookup(eb.Alphabet().Name(x))
	}
	aToB := make([]alphabet.Symbol, ea.Alphabet().Len())
	for _, x := range ea.Alphabet().Symbols() {
		aToB[x] = eb.Alphabet().Lookup(ea.Alphabet().Name(x))
	}

	type pair struct{ pa, pb State }
	ids := map[pair]State{}
	var queue []pair
	intern := func(p pair) State {
		if s, ok := ids[p]; ok {
			return s
		}
		s := out.AddState()
		ids[p] = s
		out.SetAccept(s, ea.Accepting(p.pa) && eb.Accepting(p.pb))
		queue = append(queue, p)
		return s
	}
	if ea.Start() == NoState || eb.Start() == NoState {
		out.SetStart(out.AddState())
		debugValidateNFA(out)
		return out, nil
	}
	out.SetStart(intern(pair{ea.Start(), eb.Start()}))
	charged := 0
	for len(queue) > 0 {
		// Charge the pairs interned since the last check; pairs interned
		// below are charged when their turn on the queue comes.
		if err := meter.AddStates(out.NumStates() - charged); err != nil {
			return nil, err
		}
		charged = out.NumStates()
		p := queue[0]
		queue = queue[1:]
		from := ids[p]
		added := 0
		// Sorted symbol order fixes the interning order of product pairs,
		// so the result's state numbering is a pure function of the inputs.
		for _, x := range ea.OutSymbolsSorted(p.pa) {
			xb := aToB[x]
			if xb == alphabet.None {
				continue
			}
			bs := eb.Successors(p.pb, xb)
			if len(bs) == 0 {
				continue
			}
			for _, ta := range ea.Successors(p.pa, x) {
				for _, tb := range bs {
					out.AddTransition(from, x, intern(pair{ta, tb}))
					added++
				}
			}
		}
		if err := meter.AddTransitions(added); err != nil {
			return nil, err
		}
	}
	debugValidateNFA(out)
	return out, nil
}

// UnionDFA returns a DFA for L(a) ∪ L(b) via the product construction,
// exploring only reachable pairs (the dead state is represented by
// NoState on either side). Both operands must share their alphabet by
// name; the result is over a's alphabet extended with b's names.
// Combined with interleaved minimization this gives union-shaped
// languages a determinization path that avoids the subset-construction
// blowup of determinizing one big union NFA.
func UnionDFA(a, b *DFA) *DFA { //invariantcall:checked delegates to UnionDFAContext, which validates
	out, _ := UnionDFAContext(context.Background(), a, b) // a background context never cancels and carries no budget
	return out
}

// UnionDFAContext is UnionDFA with cooperative cancellation and
// resource governance (stage "automata.union_dfa"): the product can
// reach |a|·|b| pairs.
func UnionDFAContext(ctx context.Context, a, b *DFA) (*DFA, error) {
	ctx, span := obs.StartSpan(ctx, "automata.union_dfa")
	defer span.End()
	meter := budget.Enter(ctx, "automata.union_dfa")
	u := a.Alphabet()
	if !u.Equal(b.Alphabet()) {
		u = alphabet.Union(a.Alphabet(), b.Alphabet())
	}
	bRemap := make([]alphabet.Symbol, u.Len())
	for _, x := range u.Symbols() {
		bRemap[x] = b.Alphabet().Lookup(u.Name(x))
	}
	aRemap := make([]alphabet.Symbol, u.Len())
	for _, x := range u.Symbols() {
		aRemap[x] = a.Alphabet().Lookup(u.Name(x))
	}

	// The inner loop does one a.Next and one b.Next per (pair, symbol);
	// on dense-eligible operands those become two flat table loads. The
	// tables are the same gen-cached ones the membership and minimize
	// kernels use, so a warm operand pays nothing here.
	choice := strategy.From(ctx).KernelChoice(a.NumStates()+b.NumStates(), u.Len())
	strategy.Record(ctx, span, "kernel", choice)
	var atab, btab *denseTab
	if choice == strategy.ChoiceDense {
		atab, btab = a.denseTables(), b.denseTables()
	}

	out := NewDFA(u)
	type pair struct{ pa, pb State }
	ids := map[pair]State{}
	var queue []pair
	intern := func(p pair) State {
		if s, ok := ids[p]; ok {
			return s
		}
		s := out.AddState()
		ids[p] = s
		acc := false
		if p.pa != NoState && a.Accepting(p.pa) {
			acc = true
		}
		if p.pb != NoState && b.Accepting(p.pb) {
			acc = true
		}
		out.SetAccept(s, acc)
		queue = append(queue, p)
		return s
	}
	start := pair{a.Start(), b.Start()}
	out.SetStart(intern(start))
	charged := 0
	for len(queue) > 0 {
		if err := meter.AddStates(out.NumStates() - charged); err != nil {
			return nil, err
		}
		charged = out.NumStates()
		p := queue[0]
		queue = queue[1:]
		from := ids[p]
		added := 0
		for _, x := range u.Symbols() {
			na, nb := NoState, NoState
			if p.pa != NoState && aRemap[x] != alphabet.None {
				if atab != nil {
					na = State(atab.step(int32(p.pa), aRemap[x]))
				} else {
					na = a.Next(p.pa, aRemap[x])
				}
			}
			if p.pb != NoState && bRemap[x] != alphabet.None {
				if btab != nil {
					nb = State(btab.step(int32(p.pb), bRemap[x]))
				} else {
					nb = b.Next(p.pb, bRemap[x])
				}
			}
			if na == NoState && nb == NoState {
				continue
			}
			out.SetTransition(from, x, intern(pair{na, nb}))
			added++
		}
		if err := meter.AddTransitions(added); err != nil {
			return nil, err
		}
	}
	debugValidateDFA(out)
	return out, nil
}

// Reverse returns an NFA for the reversal of L(a).
func Reverse(a *NFA) *NFA {
	out := NewNFA(a.Alphabet())
	out.AddStates(a.NumStates())
	for s := 0; s < a.NumStates(); s++ { //budget:exempt edge-for-edge reversal of an already-admitted NFA; no amplification
		for x, ts := range a.trans[s] { //mapiter:unordered building a map-backed NFA; per-(state,symbol) target order is preserved
			for _, t := range ts {
				out.AddTransition(t, x, State(s))
			}
		}
		for _, t := range a.eps[s] {
			out.AddEpsilon(t, State(s))
		}
	}
	start := out.AddState()
	out.SetStart(start)
	for _, f := range a.AcceptingStates() { //budget:exempt ε-wiring only, one edge per accepting state of an already-admitted operand
		out.AddEpsilon(start, f)
	}
	if a.Start() != NoState {
		out.SetAccept(a.Start(), true)
	}
	debugValidateNFA(out)
	return out
}

// LeftQuotient returns an NFA for w⁻¹·L(a) = { v : w·v ∈ L(a) }: the
// residual language of a after reading w. An automaton-level analogue
// of the Brzozowski derivative in internal/regex.
func LeftQuotient(a *NFA, w []alphabet.Symbol) *NFA {
	e := a.RemoveEpsilon()
	if e.Start() == NoState {
		return EmptyLanguage(a.Alphabet())
	}
	cur := newBitset(e.NumStates())
	cur.add(int(e.Start()))
	for _, x := range w {
		next := newBitset(e.NumStates())
		for _, s := range cur.slice() {
			for _, t := range e.Successors(State(s), x) {
				next.add(int(t))
			}
		}
		cur = next
		if cur.empty() {
			return EmptyLanguage(a.Alphabet())
		}
	}
	out := e.Clone()
	start := out.AddState()
	for _, s := range cur.slice() { //budget:exempt ε-wiring only, one edge per surviving residual state; no amplification
		out.AddEpsilon(start, State(s))
	}
	out.SetStart(start)
	debugValidateNFA(out)
	return out
}

// RightQuotient returns an NFA for L(a)·w⁻¹ = { v : v·w ∈ L(a) }.
func RightQuotient(a *NFA, w []alphabet.Symbol) *NFA { //invariantcall:checked delegates to Reverse/LeftQuotient, which validate
	rev := make([]alphabet.Symbol, len(w))
	for i, x := range w {
		rev[len(w)-1-i] = x
	}
	return Reverse(LeftQuotient(Reverse(a), rev))
}

// PrefixClosure returns an NFA accepting every prefix of every word of
// L(a) (including the words themselves and ε when L(a) ≠ ∅).
func PrefixClosure(a *NFA) *NFA {
	out := a.Trim()
	if out.IsEmpty() {
		return out
	}
	// After trimming, every state lies on some accepting path, so
	// making all states accepting yields exactly the prefixes.
	for s := 0; s < out.NumStates(); s++ {
		out.SetAccept(State(s), true)
	}
	debugValidateNFA(out)
	return out
}

// SuffixClosure returns an NFA accepting every suffix of every word of
// L(a).
func SuffixClosure(a *NFA) *NFA { //invariantcall:checked delegates to Reverse/PrefixClosure, which validate
	return Reverse(PrefixClosure(Reverse(a)))
}

// ComplementNFA returns an NFA for the complement of L(a) over a's
// alphabet, via determinization.
func ComplementNFA(a *NFA) *NFA { //invariantcall:checked delegates to Determinize/Complement/NFA, which validate
	return Determinize(a).Complement().NFA()
}

// ComplementNFAContext is ComplementNFA with cooperative cancellation
// and resource governance: the determinization step is metered against
// the context's budget, so complementation — the exponential half of
// the paper's 3-step rewriting pipeline — fails fast instead of
// materializing an oversized subset automaton.
func ComplementNFAContext(ctx context.Context, a *NFA) (*NFA, error) { //invariantcall:checked delegates to DeterminizeContext/Complement/NFA, which validate
	d, err := DeterminizeContext(ctx, a)
	if err != nil {
		return nil, err
	}
	return d.Complement().NFA(), nil
}

// Difference returns an NFA for L(a) \ L(b). The complement of b is
// taken over the union of the two alphabets so that symbols of a that b
// never mentions are handled correctly.
func Difference(a, b *NFA) *NFA { //invariantcall:checked delegates to Intersect, which validates
	u := alphabet.Union(a.Alphabet(), b.Alphabet())
	lifted := NewNFA(u)
	m := CopyInto(lifted, b)
	if b.Start() != NoState {
		lifted.SetStart(m[b.Start()])
	} else {
		lifted.SetStart(lifted.AddState())
	}
	return Intersect(a, ComplementNFA(lifted))
}
