package automata

import (
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/debug"
)

// Validate checks the structural invariants of the NFA and returns the
// first violation found, or nil. The invariants are the ones the
// mutation API (AddState/AddTransition/AddEpsilon/SetStart/SetAccept)
// maintains by construction, so a non-nil result means some code wrote
// to the automaton's internals directly and got it wrong:
//
//   - the accept, trans and eps tables all have one entry per state;
//   - the start state is NoState or in range;
//   - every transition symbol is a symbol of the automaton's alphabet;
//   - every transition and ε target is a state in range;
//   - transition target lists are duplicate-free (AddTransition dedups);
//   - ε edges are duplicate-free and never self-loops (AddEpsilon skips
//     both).
//
// Validate is cheap — linear in the size of the automaton — and always
// available; the regexrwdebug build tag additionally runs it after
// every constructor in this package (see internal/debug).
func (n *NFA) Validate() error {
	if n.alpha == nil {
		return fmt.Errorf("automata: NFA has nil alphabet")
	}
	k := len(n.accept)
	if len(n.trans) != k || len(n.eps) != k {
		return fmt.Errorf("automata: NFA table sizes disagree: accept=%d trans=%d eps=%d",
			k, len(n.trans), len(n.eps))
	}
	if n.start != NoState && (n.start < 0 || int(n.start) >= k) {
		return fmt.Errorf("automata: NFA start state %d out of range [0,%d)", n.start, k)
	}
	for s := 0; s < k; s++ {
		for x, ts := range n.trans[s] { //mapiter:unordered error detection only; no output ordering
			if x < 0 || int(x) >= n.alpha.Len() {
				return fmt.Errorf("automata: state %d has transition on symbol %d outside alphabet of size %d",
					s, x, n.alpha.Len())
			}
			seen := make(map[State]bool, len(ts))
			for _, t := range ts {
				if t < 0 || int(t) >= k {
					return fmt.Errorf("automata: transition s%d --%s--> %d targets a state out of range [0,%d)",
						s, n.alpha.Name(x), t, k)
				}
				if seen[t] {
					return fmt.Errorf("automata: duplicate transition s%d --%s--> s%d",
						s, n.alpha.Name(x), t)
				}
				seen[t] = true
			}
		}
		seen := make(map[State]bool, len(n.eps[s]))
		for _, t := range n.eps[s] {
			if t < 0 || int(t) >= k {
				return fmt.Errorf("automata: ε-transition s%d --ε--> %d targets a state out of range [0,%d)", s, t, k)
			}
			if int(t) == s {
				return fmt.Errorf("automata: ε self-loop on s%d", s)
			}
			if seen[t] {
				return fmt.Errorf("automata: duplicate ε-transition s%d --ε--> s%d", s, t)
			}
			seen[t] = true
		}
	}
	return nil
}

// Validate checks the structural invariants of the DFA and returns the
// first violation found, or nil:
//
//   - the accept and trans tables have one entry per state;
//   - the start state is NoState or in range;
//   - every transition row has at most one slot per alphabet symbol
//     (rows may be shorter than the alphabet when symbols were interned
//     after the state was added — Next treats the missing suffix as
//     NoState);
//   - every transition target is NoState or a state in range.
//
// Totality is deliberately not an invariant of every DFA — partial DFAs
// (Determinize's output, TrimPartial's output) are first-class values
// here. Pipelines that require totality (the rewriting construction's
// A_d and R) check it in core.(*Rewriting).Validate.
func (d *DFA) Validate() error {
	if d.alpha == nil {
		return fmt.Errorf("automata: DFA has nil alphabet")
	}
	k := len(d.accept)
	if len(d.trans) != k {
		return fmt.Errorf("automata: DFA table sizes disagree: accept=%d trans=%d", k, len(d.trans))
	}
	if d.start != NoState && (d.start < 0 || int(d.start) >= k) {
		return fmt.Errorf("automata: DFA start state %d out of range [0,%d)", d.start, k)
	}
	for s := 0; s < k; s++ {
		if len(d.trans[s]) > d.alpha.Len() {
			return fmt.Errorf("automata: state %d has a transition row of length %d over an alphabet of size %d",
				s, len(d.trans[s]), d.alpha.Len())
		}
		for x, t := range d.trans[s] {
			if t == NoState {
				continue
			}
			if t < 0 || int(t) >= k {
				return fmt.Errorf("automata: transition s%d --%s--> %d targets a state out of range [0,%d)",
					s, d.alpha.Name(alphabet.Symbol(x)), t, k)
			}
		}
	}
	return nil
}

// debugValidateNFA runs Validate on n when the regexrwdebug build tag
// is set and panics on a violation. Constructors in this package call
// it on every automaton they return; without the tag the call compiles
// away (debug.Enabled is a false constant).
func debugValidateNFA(n *NFA) {
	if debug.Enabled {
		if n == nil {
			return // constructors that failed return nil alongside an error
		}
		if err := n.Validate(); err != nil {
			panic(fmt.Sprintf("automata: invariant violation: %v", err))
		}
	}
}

// debugValidateDFA is debugValidateNFA for DFAs.
func debugValidateDFA(d *DFA) {
	if debug.Enabled {
		if d == nil {
			return // constructors that failed return nil alongside an error
		}
		if err := d.Validate(); err != nil {
			panic(fmt.Sprintf("automata: invariant violation: %v", err))
		}
	}
}
