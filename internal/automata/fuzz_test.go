package automata

import (
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

// FuzzReadNFA checks the automaton reader never panics and that
// accepted inputs round-trip language-equivalently.
func FuzzReadNFA(f *testing.F) {
	for _, seed := range []string{
		"states 2\nstart 0\naccept 1\ntrans 0 a 1\n",
		"states 1\nstart 0\naccept 0\n",
		"states 3\nstart 0\naccept 2\ntrans 0 x 1\neps 1 2\n",
		"states 0\n",
		"bogus\n",
		"states 2\ntrans 0 a 9\n",
		"states 99999999999\n",          // allocation bomb: must be rejected by the cap
		"states 2\nstart 0\naccept 1\n", // no transitions
		"states 2\nstart 0\neps 0 1\neps 1 0\naccept 1\n",         // ε-cycle
		"states 3\nstart 2\naccept 0\ntrans 2 a 0\ntrans 2 a 1\n", // nondeterminism + unreachable
		"# comment\n\nstates 1\nstart 0\n",
		"states 2\nstart 0\ntrans 0 a", // truncated mid-line
		"states 2\nstates 2\n",         // repeated header
		"start 0\nstates 1\n",          // start before states (out of range)
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		n, err := ReadNFA(strings.NewReader(input), alphabet.New())
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("ReadNFA returned an invalid automaton: %v", err)
		}
		var b strings.Builder
		if _, err := n.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo failed: %v", err)
		}
		back, err := ReadNFA(strings.NewReader(b.String()), alphabet.New())
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized:\n%s", err, b.String())
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped automaton is invalid: %v", err)
		}
		if !Equivalent(n, back) {
			t.Fatal("round trip changed the language")
		}
		// Drive the pipeline far enough that every regexrwdebug hook on
		// the way (determinize, minimize, trim) sees fuzzed shapes.
		d := DeterminizeMinimal(n)
		if err := d.Validate(); err != nil {
			t.Fatalf("DeterminizeMinimal returned an invalid DFA: %v", err)
		}
	})
}
