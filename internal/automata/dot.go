package automata

import (
	"fmt"
	"sort"
	"strings"

	"regexrw/internal/alphabet"
)

// DOT renders the NFA in Graphviz dot syntax. Accepting states are
// doublecircles; the start state is marked by an incoming arrow from a
// hidden node. Used to reproduce Figure 1 of the paper.
func (n *NFA) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for s := 0; s < n.NumStates(); s++ {
		shape := "circle"
		if n.accept[s] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [shape=%s label=\"s%d\"];\n", s, shape, s)
	}
	if n.start != NoState {
		b.WriteString("  __start [shape=none label=\"\"];\n")
		fmt.Fprintf(&b, "  __start -> s%d;\n", n.start)
	}
	type edge struct {
		from, to State
		label    string
	}
	var edges []edge
	for s := 0; s < n.NumStates(); s++ {
		for _, x := range n.OutSymbolsSorted(State(s)) {
			for _, t := range n.trans[s][x] {
				edges = append(edges, edge{State(s), t, n.alpha.Name(x)})
			}
		}
		for _, t := range n.eps[s] {
			edges = append(edges, edge{State(s), t, "ε"})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", e.from, e.to, e.label)
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the DFA in Graphviz dot syntax.
func (d *DFA) DOT(name string) string {
	return d.NFA().DOT(name)
}

// String summarizes the NFA (state/transition counts and a transition
// listing) for diagnostics and golden tests.
func (n *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFA[states=%d start=%d accept=%v]\n", n.NumStates(), n.start, n.AcceptingStates())
	for s := 0; s < n.NumStates(); s++ {
		for _, x := range n.OutSymbolsSorted(State(s)) {
			ts := append([]State(nil), n.trans[s][x]...)
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			fmt.Fprintf(&b, "  s%d --%s--> %v\n", s, n.alpha.Name(x), ts)
		}
		if len(n.eps[s]) > 0 {
			ts := append([]State(nil), n.eps[s]...)
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			fmt.Fprintf(&b, "  s%d --ε--> %v\n", s, ts)
		}
	}
	return b.String()
}

// String summarizes the DFA.
func (d *DFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA[states=%d start=%d]\n", d.NumStates(), d.start)
	for s := 0; s < d.NumStates(); s++ {
		marker := " "
		if d.accept[s] {
			marker = "*"
		}
		fmt.Fprintf(&b, " %ss%d:", marker, s)
		for x, t := range d.trans[s] {
			if t != NoState {
				fmt.Fprintf(&b, " %s->s%d", d.alpha.Name(alphabet.Symbol(x)), t)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatWord renders a word as space-free concatenation of symbol names
// separated by '·', or "ε" for the empty word.
func FormatWord(a *alphabet.Alphabet, word []alphabet.Symbol) string {
	if len(word) == 0 {
		return "ε"
	}
	parts := make([]string, len(word))
	for i, x := range word {
		parts[i] = a.Name(x)
	}
	return strings.Join(parts, "·")
}

// ParseWord converts space-separated symbol names into a word, interning
// unknown names into the alphabet.
func ParseWord(a *alphabet.Alphabet, s string) []alphabet.Symbol {
	fields := strings.Fields(s)
	word := make([]alphabet.Symbol, len(fields))
	for i, f := range fields {
		word[i] = a.Intern(f)
	}
	return word
}
