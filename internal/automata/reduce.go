package automata

// SimulationPreorder computes the (forward) simulation preorder on the
// states of an ε-free NFA: sim[s][t] reports that t simulates s, i.e.
// acceptance of s implies acceptance of t and every x-move of s can be
// matched by an x-move of t into a simulating state. Computed by the
// naive refinement fixpoint, O(n²·m) worst case — fine at the automaton
// sizes this library manipulates between pipeline stages.
func SimulationPreorder(n *NFA) [][]bool {
	e := n
	if n.HasEpsilon() {
		e = n.RemoveEpsilon()
	}
	k := e.NumStates()
	sim := make([][]bool, k)
	for s := 0; s < k; s++ {
		sim[s] = make([]bool, k)
		for t := 0; t < k; t++ {
			// Initial over-approximation: acceptance implication.
			sim[s][t] = !e.Accepting(State(s)) || e.Accepting(State(t))
		}
	}
	changed := true
	for changed {
		changed = false
		for s := 0; s < k; s++ {
			for t := 0; t < k; t++ {
				if !sim[s][t] {
					continue
				}
				if !movesMatch(e, State(s), State(t), sim) {
					sim[s][t] = false
					changed = true
				}
			}
		}
	}
	return sim
}

// movesMatch reports whether every move of s can be matched by t under
// the current simulation candidate relation.
func movesMatch(e *NFA, s, t State, sim [][]bool) bool {
	for _, x := range e.OutSymbols(s) { //mapiter:unordered boolean fixpoint test; order cannot change the result
		tSucc := e.Successors(t, x)
		for _, s2 := range e.Successors(s, x) {
			matched := false
			for _, t2 := range tSucc {
				if sim[s2][t2] {
					matched = true
					break
				}
			}
			if !matched {
				return false
			}
		}
	}
	return true
}

// ReduceSimulation returns an equivalent NFA with simulation-equivalent
// states merged (s and t are merged when each simulates the other).
// The quotient preserves the language and never has more states; it is
// a cheap shrink to apply before determinization, whose cost is
// exponential in the NFA size. ε-transitions are eliminated first.
func ReduceSimulation(n *NFA) *NFA {
	e := n.RemoveEpsilon().Trim()
	if e.Start() == NoState {
		return e
	}
	sim := SimulationPreorder(e)
	k := e.NumStates()

	// Union-find-free classing: class of s = smallest t with mutual
	// simulation.
	class := make([]int, k)
	for s := 0; s < k; s++ {
		class[s] = s
		for t := 0; t < s; t++ {
			if sim[s][t] && sim[t][s] {
				class[s] = class[t]
				break
			}
		}
	}

	out := NewNFA(e.Alphabet())
	repr := map[int]State{}
	for s := 0; s < k; s++ { //budget:exempt quotient of an already-admitted NFA: one state per simulation class, never more than the input
		if class[s] == s {
			repr[s] = out.AddState()
			out.SetAccept(repr[s], e.Accepting(State(s)))
		}
	}
	for s := 0; s < k; s++ { //budget:exempt copies at most the already-admitted NFA's transitions onto class representatives
		from := repr[class[s]]
		for _, x := range e.OutSymbols(State(s)) { //mapiter:unordered building a map-backed NFA; per-(state,symbol) target order is preserved
			for _, t := range e.Successors(State(s), x) {
				out.AddTransition(from, x, repr[class[t]])
			}
		}
	}
	out.SetStart(repr[class[e.Start()]])
	trimmed := out.Trim()
	debugValidateNFA(trimmed)
	return trimmed
}

// ReductionStats reports the size effect of ReduceSimulation for
// diagnostics: states before/after.
func ReductionStats(n *NFA) (before, after int) {
	e := n.RemoveEpsilon().Trim()
	return e.NumStates(), ReduceSimulation(n).NumStates()
}
