package automata

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/strategy"
)

// sparseRun is the reference membership loop the dense kernel must
// reproduce bit for bit: one d.Next per symbol, dead on NoState.
func sparseRun(d *DFA, s State, word []alphabet.Symbol) State {
	cur := s
	for _, x := range word {
		if cur == NoState {
			return NoState
		}
		cur = d.Next(cur, x)
	}
	return cur
}

// TestDenseRunMatchesSparse: after EnsureDense, Run takes the dense
// fast path; its result must equal the sparse reference on random DFAs
// and words, from every start state.
func TestDenseRunMatchesSparse(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		d := randomCodecDFA(r)
		d.EnsureDense()
		if d.denseCached() == nil {
			t.Fatal("EnsureDense did not install a table")
		}
		for w := 0; w < 20; w++ {
			word := randomWord(r, d.Alphabet(), 8)
			for s := 0; s < d.NumStates(); s++ {
				want := sparseRun(d, State(s), word)
				if got := d.Run(State(s), word); got != want {
					t.Fatalf("trial %d: dense Run(%d, %v) = %d, sparse = %d", trial, s, word, got, want)
				}
			}
		}
	}
}

// TestDenseInvalidatedByMutation: every structural mutator must bump
// the generation so a stale table is never consulted.
func TestDenseInvalidatedByMutation(t *testing.T) {
	al := ab()
	a, b := al.Lookup("a"), al.Lookup("b")
	d := NewDFA(al)
	s0, s1 := d.AddState(), d.AddState()
	d.SetStart(s0)
	d.SetTransition(s0, a, s1)
	d.SetAccept(s1, true)
	d.EnsureDense()
	if d.denseCached() == nil {
		t.Fatal("no table after EnsureDense")
	}

	d.SetTransition(s1, b, s0)
	if d.denseCached() != nil {
		t.Fatal("SetTransition left a stale dense table visible")
	}
	if got := d.Run(s0, []alphabet.Symbol{a, b}); got != s0 {
		t.Fatalf("Run after mutation = %d, want %d", got, s0)
	}

	d.EnsureDense()
	d.SetAccept(s0, true)
	if d.denseCached() != nil {
		t.Fatal("SetAccept left a stale dense table visible")
	}

	d.EnsureDense()
	d.AddState()
	if d.denseCached() != nil {
		t.Fatal("AddState left a stale dense table visible")
	}

	// Symbols interned into the alphabet after the build are beyond the
	// table's stride; the kernel must treat them as having no
	// transitions (dfa.Next's contract), not read out of bounds.
	d.EnsureDense()
	c := al.Intern("dense-late-symbol")
	if got := d.Run(s0, []alphabet.Symbol{c}); got != NoState {
		t.Fatalf("Run on post-build symbol = %d, want NoState", got)
	}
}

func dfaBytes(t *testing.T, d *DFA) string {
	t.Helper()
	var buf strings.Builder
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.String()
}

// TestMinimizeDenseSparseByteIdentical is the kernel-equivalence
// contract: forcing the dense refinement and forcing the sparse
// refinement must produce byte-identical minimal DFAs — same state
// numbering, not just isomorphic — because both compute the unique
// coarsest stable partition and the final Reachable() pass renumbers
// canonically.
func TestMinimizeDenseSparseByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	sparseCtx := strategy.With(context.Background(), strategy.Config{Kernel: strategy.KernelForceSparse})
	denseCtx := strategy.With(context.Background(), strategy.Config{Kernel: strategy.KernelForceDense})
	for trial := 0; trial < 300; trial++ {
		d := randomCodecDFA(r)
		if d.Start() == NoState {
			continue
		}
		ms, err := d.MinimizeContext(sparseCtx)
		if err != nil {
			t.Fatalf("trial %d: sparse minimize: %v", trial, err)
		}
		md, err := d.MinimizeContext(denseCtx)
		if err != nil {
			t.Fatalf("trial %d: dense minimize: %v", trial, err)
		}
		if sb, db := dfaBytes(t, ms), dfaBytes(t, md); sb != db {
			t.Fatalf("trial %d: kernels disagree\nsparse:\n%s\ndense:\n%s\ninput:\n%s",
				trial, sb, db, dfaBytes(t, d))
		}
	}
}

// TestContainedInMaterializedAgreesWithOnTheFly checks the two
// exactness arms differentially on random NFA pairs: same verdict, and
// on failure both witnesses are shortest words of L(a) \ L(b) (the
// contract fixes the length, not the word).
func TestContainedInMaterializedAgreesWithOnTheFly(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	al := ab()
	ctx := context.Background()
	for trial := 0; trial < 150; trial++ {
		a := randomNFA(r, al, 5)
		b := randomNFA(r, al, 5)
		okFly, wFly, err := ContainedInContext(ctx, a, b)
		if err != nil {
			t.Fatalf("trial %d: on-the-fly: %v", trial, err)
		}
		okMat, wMat, err := ContainedInMaterializedContext(ctx, a, b)
		if err != nil {
			t.Fatalf("trial %d: materialized: %v", trial, err)
		}
		if okFly != okMat {
			t.Fatalf("trial %d: verdicts disagree: fly=%v materialized=%v", trial, okFly, okMat)
		}
		if okFly {
			continue
		}
		if len(wFly) != len(wMat) {
			t.Fatalf("trial %d: witness lengths disagree: fly=%v (%d) materialized=%v (%d)",
				trial, wFly, len(wFly), wMat, len(wMat))
		}
		if !a.Accepts(wMat) || b.Accepts(wMat) {
			t.Fatalf("trial %d: materialized witness %v is not in L(a) \\ L(b)", trial, wMat)
		}
	}
}

// TestContainedInMaterializedForcedKernels pins both kernel arms of the
// materialized scan to the same verdict and witness.
func TestContainedInMaterializedForcedKernels(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	al := ab()
	sparseCtx := strategy.With(context.Background(), strategy.Config{Kernel: strategy.KernelForceSparse})
	denseCtx := strategy.With(context.Background(), strategy.Config{Kernel: strategy.KernelForceDense})
	for trial := 0; trial < 100; trial++ {
		a := randomNFA(r, al, 5)
		b := randomNFA(r, al, 5)
		okS, wS, err := ContainedInMaterializedContext(sparseCtx, a, b)
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		okD, wD, err := ContainedInMaterializedContext(denseCtx, a, b)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if okS != okD {
			t.Fatalf("trial %d: kernel verdicts disagree", trial)
		}
		if len(wS) != len(wD) {
			t.Fatalf("trial %d: kernel witnesses disagree: %v vs %v", trial, wS, wD)
		}
		for i := range wS {
			if wS[i] != wD[i] {
				t.Fatalf("trial %d: kernel witnesses disagree: %v vs %v", trial, wS, wD)
			}
		}
	}
}

func TestEstimateDeterminized(t *testing.T) {
	al := ab()
	a, b := al.Lookup("a"), al.Lookup("b")

	if got := EstimateDeterminized(NewNFA(al)); got != 0 {
		t.Fatalf("empty NFA estimate = %d, want 0", got)
	}

	// A deterministic NFA estimates as its own size.
	det := NewNFA(al)
	det.AddStates(3)
	det.SetStart(0)
	det.AddTransition(0, a, 1)
	det.AddTransition(1, b, 2)
	det.SetAccept(2, true)
	if got := EstimateDeterminized(det); got != 3 {
		t.Fatalf("deterministic estimate = %d, want 3", got)
	}

	// Each nondeterministic state doubles the estimate.
	nd := NewNFA(al)
	nd.AddStates(3)
	nd.SetStart(0)
	nd.AddTransition(0, a, 1)
	nd.AddTransition(0, a, 2)
	nd.AddTransition(1, b, 1)
	nd.AddTransition(1, b, 2)
	nd.SetAccept(2, true)
	if got := EstimateDeterminized(nd); got != 12 { // 3 states << 2 nondet
		t.Fatalf("nondeterministic estimate = %d, want 12", got)
	}

	// Enough nondeterministic states saturate to -1 (overflow).
	big := NewNFA(al)
	big.AddStates(70)
	big.SetStart(0)
	for s := 0; s < 70; s++ {
		big.AddTransition(State(s), a, State((s+1)%70))
		big.AddTransition(State(s), a, State((s+2)%70))
	}
	big.SetAccept(0, true)
	if got := EstimateDeterminized(big); got != -1 {
		t.Fatalf("saturating estimate = %d, want -1", got)
	}
}

// TestDeterminizeCapped pins the trial-materialization contract: under
// a sufficient cap the result is byte-identical to the unbounded subset
// construction, past the cap the trial abandons with fit=false and no
// error, and a genuine budget exhaustion still surfaces as an error.
func TestDeterminizeCapped(t *testing.T) {
	al := ab()
	a, b := al.Lookup("a"), al.Lookup("b")
	nd := NewNFA(al)
	nd.AddStates(3)
	nd.SetStart(0)
	nd.AddTransition(0, a, 1)
	nd.AddTransition(0, a, 2)
	nd.AddTransition(1, b, 1)
	nd.AddTransition(1, b, 2)
	nd.SetAccept(2, true)
	ctx := context.Background()

	got, fit, err := DeterminizeCapped(ctx, nd, 100)
	if err != nil || !fit {
		t.Fatalf("DeterminizeCapped(cap=100) = fit=%v err=%v, want fit", fit, err)
	}
	want, err := DeterminizeContext(ctx, nd)
	if err != nil {
		t.Fatal(err)
	}
	if gb, wb := dfaBytes(t, got), dfaBytes(t, want); gb != wb {
		t.Fatalf("capped determinization differs from unbounded:\n--- capped ---\n%s\n--- unbounded ---\n%s", gb, wb)
	}

	d, fit, err := DeterminizeCapped(ctx, nd, 1)
	if err != nil {
		t.Fatalf("DeterminizeCapped(cap=1) error: %v", err)
	}
	if fit || d != nil {
		t.Fatalf("DeterminizeCapped(cap=1) = (%v, fit=%v), want abandoned", d, fit)
	}

	bctx := budget.With(ctx, budget.New(budget.MaxStates(1)))
	if _, _, err := DeterminizeCapped(bctx, nd, 100); err == nil {
		t.Fatal("budget exhaustion inside a capped trial must error, not report fit=false")
	}
}

// TestContainedInMaterializedCapped: a fitting trial returns the same
// verdict and witness as the unbounded arms; a blown cap returns
// fit=false with no verdict attempted.
func TestContainedInMaterializedCapped(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ctx := context.Background()
	al2 := ab()
	for trial := 0; trial < 100; trial++ {
		a := randomNFA(r, al2, 5)
		b := randomNFA(r, al2, 5)
		wantOK, wantW, err := ContainedInContext(ctx, a, b)
		if err != nil {
			t.Fatal(err)
		}
		gotOK, gotW, fit, err := ContainedInMaterializedCapped(ctx, a, b, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		if !fit {
			t.Fatalf("trial %d: cap 4096 abandoned on a 5-state NFA", trial)
		}
		if gotOK != wantOK || len(gotW) != len(wantW) {
			t.Fatalf("trial %d: capped arm disagrees: (%v, %v) vs (%v, %v)", trial, gotOK, gotW, wantOK, wantW)
		}
	}

	// DetBlowup-shaped b: (a+b)*·a·(a+b)^6 determinizes to 2^7 subsets,
	// so a cap of 4 must abandon.
	al := ab()
	sa, sb := al.Lookup("a"), al.Lookup("b")
	blow := NewNFA(al)
	blow.AddStates(8)
	blow.SetStart(0)
	blow.AddTransition(0, sa, 0)
	blow.AddTransition(0, sb, 0)
	blow.AddTransition(0, sa, 1)
	for s := State(1); s < 7; s++ {
		blow.AddTransition(s, sa, s+1)
		blow.AddTransition(s, sb, s+1)
	}
	blow.SetAccept(7, true)
	small := NewNFA(al)
	small.AddStates(1)
	small.SetStart(0)
	small.SetAccept(0, true)
	_, _, fit, err := ContainedInMaterializedCapped(ctx, small, blow, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fit {
		t.Fatal("cap 4 fit a 2^7-subset determinization")
	}
}

// TestDenseKernelAllocsTracerEnabled is the alloc guard for the dense
// membership kernel under an enabled tracer: a warmed table plus the
// per-row span charges (AddTransitions, the strategy attribute) must
// stay at 0 allocs/op — the EX2Observed overhead fix depends on the
// enabled path not allocating per transition.
func TestDenseKernelAllocsTracerEnabled(t *testing.T) {
	al := ab()
	a, b := al.Lookup("a"), al.Lookup("b")
	d := NewDFA(al)
	s0, s1 := d.AddState(), d.AddState()
	d.SetStart(s0)
	d.SetTransition(s0, a, s1)
	d.SetTransition(s1, b, s0)
	d.SetAccept(s1, true)
	d.EnsureDense()

	tr := obs.NewTracer(obs.Deterministic())
	ctx := obs.WithTracer(context.Background(), tr)
	_, span := obs.StartSpan(ctx, "automata.dense_alloc_guard")
	defer span.End()
	word := []alphabet.Symbol{a, b, a, b, a}
	span.SetAttr("strategy", int64(strategy.ChoiceDense)) // map exists after first set

	if avg := testing.AllocsPerRun(200, func() {
		if d.Run(s0, word) != s1 {
			t.Fatal("wrong dense run result")
		}
		span.AddTransitions(int64(len(word)))
		span.SetAttr("strategy", int64(strategy.ChoiceDense))
	}); avg != 0 {
		t.Fatalf("dense kernel with enabled tracer: %v allocs/op, want 0", avg)
	}
}

// FuzzDenseStep drives the dense membership kernel against the sparse
// reference from fuzzed bytes: the first bytes shape a deterministic
// transition table, the rest form the input word.
func FuzzDenseStep(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 2, 3, 4, 5, 0, 1, 0, 1})
	f.Add([]byte{1, 1, 0, 0})
	f.Add([]byte{8, 3, 7, 6, 5, 4, 3, 2, 1, 0, 2, 2, 1, 0, 1, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nStates := 1 + int(data[0]%12)
		nSyms := 1 + int(data[1]%5)
		data = data[2:]
		al := alphabet.New()
		syms := make([]alphabet.Symbol, nSyms)
		for i := range syms {
			syms[i] = al.Intern(string(rune('a' + i)))
		}
		d := NewDFA(al)
		for i := 0; i < nStates; i++ {
			d.AddState()
		}
		d.SetStart(0)
		// One byte per (state, symbol) cell: value%(nStates+1) with
		// nStates meaning "no transition". A byte decides acceptance.
		k := 0
		next := func() byte {
			if k >= len(data) {
				return 0
			}
			b := data[k]
			k++
			return b
		}
		for s := 0; s < nStates; s++ {
			d.SetAccept(State(s), next()%2 == 1)
			for _, x := range syms {
				if to := int(next()) % (nStates + 1); to < nStates {
					d.SetTransition(State(s), x, State(to))
				}
			}
		}
		word := make([]alphabet.Symbol, 0, len(data)-k)
		for ; k < len(data); k++ {
			word = append(word, syms[int(data[k])%nSyms])
		}

		want := sparseRun(d, 0, word)
		d.EnsureDense()
		if got := d.Run(0, word); got != want {
			t.Fatalf("dense Run = %d, sparse = %d (states=%d syms=%d word=%v)", got, want, nStates, nSyms, word)
		}
		// Per-step agreement too, not just the final state.
		tab := d.denseCached()
		if tab == nil {
			t.Fatal("no dense table")
		}
		for s := 0; s < nStates; s++ {
			for _, x := range syms {
				if got, want := State(tab.step(int32(s), x)), d.Next(State(s), x); got != want {
					t.Fatalf("step(%d, %d) = %d, Next = %d", s, x, got, want)
				}
			}
		}
	})
}
