package automata

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"regexrw/internal/alphabet"
)

// TestInternerMatchesKeyMap drives the hash interner and the simple
// string-keyed map it replaced with the same random probe sequence and
// requires identical id assignments: key() is the oracle the interner
// is tested against.
func TestInternerMatchesKeyMap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(200)
		it := newInterner()
		oracle := map[string]int{}
		for probe := 0; probe < 500; probe++ {
			b := newBitset(n)
			for bits := r.Intn(8); bits > 0; bits-- {
				b.add(r.Intn(n))
			}
			wantID, wantKnown := oracle[b.key()]
			gotID, isNew := it.intern(b)
			if wantKnown {
				if isNew || gotID != wantID {
					t.Fatalf("trial %d probe %d: interner gave (%d, new=%v), oracle %d", trial, probe, gotID, isNew, wantID)
				}
			} else {
				if !isNew || gotID != len(oracle) {
					t.Fatalf("trial %d probe %d: interner gave (%d, new=%v), want fresh id %d", trial, probe, gotID, isNew, len(oracle))
				}
				oracle[b.key()] = gotID
			}
			if !it.at(gotID).equal(b) {
				t.Fatalf("trial %d: at(%d) does not round-trip the set", trial, gotID)
			}
		}
		if it.len() != len(oracle) {
			t.Fatalf("trial %d: interner holds %d sets, oracle %d", trial, it.len(), len(oracle))
		}
	}
}

// TestBitsetHashAgreesWithEqual: equal sets must hash equally (the
// property interning relies on; collisions of unequal sets are fine).
func TestBitsetHashAgreesWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		n := 1 + r.Intn(150)
		a, b := newBitset(n), newBitset(n)
		for bits := r.Intn(10); bits > 0; bits-- {
			x := r.Intn(n)
			a.add(x)
			b.add(x)
		}
		if !a.equal(b) || a.hash() != b.hash() {
			t.Fatalf("equal sets with different hashes: %x vs %x", a.hash(), b.hash())
		}
	}
}

// TestMemoInvalidation: every structural mutator must invalidate the
// memo so later reads see the new structure.
func TestMemoInvalidation(t *testing.T) {
	a := alphabet.New()
	x := a.Intern("x")
	n := NewNFA(a)
	s0 := n.AddState()
	s1 := n.AddState()
	n.SetStart(s0)
	n.AddTransition(s0, x, s1)

	m1 := n.memoTables()
	if m1.accepting.has(int(s1)) {
		t.Fatal("s1 should not accept yet")
	}
	if m2 := n.memoTables(); m2 != m1 {
		t.Fatal("memo not reused on an unmodified automaton")
	}

	n.SetAccept(s1, true)
	m3 := n.memoTables()
	if m3 == m1 {
		t.Fatal("SetAccept did not invalidate the memo")
	}
	if !m3.accepting.has(int(s1)) {
		t.Fatal("rebuilt memo misses the new accepting state")
	}

	n.AddEpsilon(s0, s1)
	m4 := n.memoTables()
	if m4 == m3 {
		t.Fatal("AddEpsilon did not invalidate the memo")
	}
	if !m4.closure[s0].has(int(s1)) {
		t.Fatal("rebuilt memo misses the new ε-edge in the closure")
	}

	s2 := n.AddState()
	m5 := n.memoTables()
	if m5 == m4 || m5.numStates != 3 {
		t.Fatal("AddState did not invalidate/resize the memo")
	}

	n.AddTransition(s1, x, s2)
	m6 := n.memoTables()
	if m6 == m5 {
		t.Fatal("AddTransition did not invalidate the memo")
	}
	if st := m6.step[s1][x]; st == nil || !st.has(int(s2)) {
		t.Fatal("rebuilt memo misses the new transition in the step table")
	}
}

// TestMemoStepMatchesClosure: step[s][x] must equal the ε-closure of
// the x-successors of s, checked against a direct computation on random
// automata.
func TestMemoStepMatchesClosure(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := randomCodecNFA(r)
		memo := n.memoTables()
		ns := n.NumStates()
		for s := 0; s < ns; s++ {
			for _, x := range n.OutSymbolsSorted(State(s)) {
				want := newBitset(ns)
				for _, t2 := range n.Successors(State(s), x) {
					want.add(int(t2))
				}
				n.epsClosure(want)
				if got := memo.step[s][x]; got == nil || !got.equal(want) {
					t.Fatalf("trial %d: step[%d][%v] mismatch", trial, s, x)
				}
			}
		}
	}
}

// TestConcurrentDeterminizeSharedNFA hammers Determinize and
// ContainedIn on one shared ε-free NFA from many goroutines: the lazy
// memo build races benignly (atomic pointer, last store wins) and every
// result must equal the sequential reference. Run under -race this is
// the regression test for the concurrent read-only contract.
func TestConcurrentDeterminizeSharedNFA(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := randomCodecNFA(r)
		ref := Determinize(n)
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d := Determinize(n)
				if !EquivalentDFA(d, ref) {
					errs <- fmt.Errorf("trial %d: concurrent determinize diverged", trial)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestDeterminizeAgainstBitsetOracle cross-checks the memo+interner
// subset construction against languages: determinize random NFAs and
// verify DFA ≡ NFA.
func TestDeterminizeAgainstBitsetOracle(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := randomCodecNFA(r)
		d := Determinize(n)
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: invalid DFA: %v", trial, err)
		}
		if !Equivalent(n, d.NFA()) {
			t.Fatalf("trial %d: determinization changed the language", trial)
		}
	}
}

// benchProbeSets builds a workload of subset probes with repeats, the
// access pattern of a subset construction (each successor subset is
// probed once per incoming edge).
func benchProbeSets(nStates, distinct, probes int) []*bitset {
	r := rand.New(rand.NewSource(6))
	base := make([]*bitset, distinct)
	for i := range base {
		b := newBitset(nStates)
		for k := 0; k < 1+r.Intn(6); k++ {
			b.add(r.Intn(nStates))
		}
		base[i] = b
	}
	out := make([]*bitset, probes)
	for i := range out {
		out[i] = base[r.Intn(distinct)]
	}
	return out
}

// BenchmarkSubsetProbe compares the retired map[string] probe (one
// string allocation per lookup via bitset.key()) with the interner
// probe (zero allocations): run with -benchmem to see allocs/op drop
// from ≥1 to 0 on the hot path.
func BenchmarkSubsetProbe(b *testing.B) {
	sets := benchProbeSets(256, 64, 4096)
	b.Run("stringKey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := map[string]int{}
			for _, s := range sets {
				k := s.key()
				if _, ok := m[k]; !ok {
					m[k] = len(m)
				}
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := newInterner()
			for _, s := range sets {
				it.intern(s)
			}
		}
	})
}

// TestDeterminizeMatchesUnmemoized: the memoized subset construction
// must produce the SAME DFA (state numbering included) as the retained
// pre-memoization reference, on random automata.
func TestDeterminizeMatchesUnmemoized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := randomCodecNFA(r)
		got := Determinize(n)
		want := DeterminizeUnmemoized(n)
		if got.NumStates() != want.NumStates() {
			t.Fatalf("trial %d: %d states vs reference %d", trial, got.NumStates(), want.NumStates())
		}
		for s := 0; s < got.NumStates(); s++ {
			if got.Accepting(State(s)) != want.Accepting(State(s)) {
				t.Fatalf("trial %d: acceptance differs at state %d", trial, s)
			}
		}
		if got.Start() != want.Start() {
			t.Fatalf("trial %d: start differs", trial)
		}
		for s := 0; s < got.NumStates(); s++ {
			for _, x := range n.Alphabet().Symbols() {
				if got.Next(State(s), x) != want.Next(State(s), x) {
					t.Fatalf("trial %d: transition (%d, %v) differs", trial, s, x)
				}
			}
		}
	}
}

// BenchmarkDeterminizeMemoized compares the memoized subset
// construction with the retained reference on the THM5 blowup family's
// query NFA (the pipeline's hottest determinization shape).
func BenchmarkDeterminizeMemoized(b *testing.B) {
	build := func(n int) *NFA {
		// (a+b)*·a·(a+b)^{n-1} built directly: state 0 loops on a,b; a
		// chain of n states follows the distinguished a.
		a := alphabet.New()
		sa, sb := a.Intern("a"), a.Intern("b")
		nfa := NewNFA(a)
		nfa.AddStates(n + 1)
		nfa.SetStart(0)
		nfa.AddTransition(0, sa, 0)
		nfa.AddTransition(0, sb, 0)
		nfa.AddTransition(0, sa, 1)
		for i := 1; i < n; i++ {
			nfa.AddTransition(State(i), sa, State(i+1))
			nfa.AddTransition(State(i), sb, State(i+1))
		}
		nfa.SetAccept(State(n), true)
		return nfa
	}
	for _, n := range []int{10, 14} {
		nfa := build(n)
		b.Run(fmt.Sprintf("memoized/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Determinize(nfa)
			}
		})
		b.Run(fmt.Sprintf("unmemoized/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				DeterminizeUnmemoized(nfa)
			}
		})
	}
}
