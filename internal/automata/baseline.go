package automata

import (
	"sort"

	"regexrw/internal/alphabet"
)

// DeterminizeUnmemoized is the subset construction as it existed before
// the shared memoization layer (cache.go): subsets are interned through
// a map keyed by bitset.key() — one string allocation per probe — and
// every subset recomputes its members' ε-closures by DFS instead of
// unioning precomputed step sets. It produces a DFA with exactly the
// same state numbering as Determinize (the memo rewrite preserves
// discovery order), which makes it a differential oracle for the
// optimized path and the in-run baseline of the bench pipeline's
// determinization families (cmd/bench).
func DeterminizeUnmemoized(n *NFA) *DFA {
	d := NewDFA(n.Alphabet())
	if n.Start() == NoState {
		d.SetStart(d.AddState())
		return d
	}
	nStates := n.NumStates()

	startSet := newBitset(nStates)
	startSet.add(int(n.Start()))
	n.epsClosure(startSet)

	subsets := map[string]State{}
	var sets []*bitset
	newSubset := func(set *bitset) State {
		s := d.AddState()
		sets = append(sets, set)
		subsets[set.key()] = s
		acc := false
		for _, q := range set.slice() {
			if n.accept[q] {
				acc = true
				break
			}
		}
		d.SetAccept(s, acc)
		return s
	}
	d.SetStart(newSubset(startSet))

	for i := 0; i < len(sets); i++ { //budget:exempt unmetered reference oracle by design; used only by differential tests and benches against the memoized DeterminizeContext
		set := sets[i]
		var syms []alphabet.Symbol
		seen := map[alphabet.Symbol]bool{}
		for _, q := range set.slice() {
			for x := range n.trans[q] { //mapiter:unordered collecting into a set; sorted before use below
				if !seen[x] {
					seen[x] = true
					syms = append(syms, x)
				}
			}
		}
		sort.Slice(syms, func(a, b int) bool { return syms[a] < syms[b] })
		for _, x := range syms {
			next := newBitset(nStates)
			for _, q := range set.slice() {
				for _, t := range n.trans[q][x] {
					next.add(int(t))
				}
			}
			if next.empty() {
				continue
			}
			n.epsClosure(next)
			to, ok := subsets[next.key()]
			if !ok {
				to = newSubset(next)
			}
			d.SetTransition(State(i), x, to)
		}
	}
	debugValidateDFA(d)
	return d
}
