package automata

import (
	"testing"

	"regexrw/internal/alphabet"
)

// evenAs returns a DFA over {a,b} accepting words with an even number of a's.
func evenAs() *DFA {
	al := ab()
	d := NewDFA(al)
	even := d.AddState()
	odd := d.AddState()
	d.SetStart(even)
	d.SetAccept(even, true)
	a, b := al.Lookup("a"), al.Lookup("b")
	d.SetTransition(even, a, odd)
	d.SetTransition(odd, a, even)
	d.SetTransition(even, b, even)
	d.SetTransition(odd, b, odd)
	return d
}

func TestDFAAccepts(t *testing.T) {
	d := evenAs()
	cases := []struct {
		word []string
		want bool
	}{
		{nil, true},
		{[]string{"a"}, false},
		{[]string{"a", "a"}, true},
		{[]string{"b", "a", "b", "a"}, true},
		{[]string{"a", "b", "b"}, false},
	}
	for _, c := range cases {
		if got := d.AcceptsNames(c.word...); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestDFARunDiesOnMissingTransition(t *testing.T) {
	al := ab()
	d := NewDFA(al)
	s := d.AddState()
	d.SetStart(s)
	d.SetAccept(s, true)
	if d.AcceptsNames("a") {
		t.Fatal("missing transition should reject")
	}
	if !d.AcceptsNames() {
		t.Fatal("ε should be accepted")
	}
}

func TestTotalizeAddsSink(t *testing.T) {
	al := ab()
	d := NewDFA(al)
	s := d.AddState()
	d.SetStart(s)
	d.SetAccept(s, true)
	tt := d.Totalize()
	if !tt.IsTotal() {
		t.Fatal("Totalize result not total")
	}
	if tt.NumStates() != 2 {
		t.Fatalf("expected sink state, got %d states", tt.NumStates())
	}
	if tt.AcceptsNames("a") {
		t.Fatal("sink must not accept")
	}
	// Already-total automaton gains no state.
	if got := evenAs().Totalize().NumStates(); got != 2 {
		t.Fatalf("totalizing a total DFA added states: %d", got)
	}
}

func TestComplement(t *testing.T) {
	d := evenAs()
	c := d.Complement()
	words := [][]string{nil, {"a"}, {"a", "a"}, {"b"}, {"a", "b", "a", "a"}}
	for _, w := range words {
		if d.AcceptsNames(w...) == c.AcceptsNames(w...) {
			t.Fatalf("complement agrees with original on %v", w)
		}
	}
}

func TestComplementOfPartial(t *testing.T) {
	// L = {a}; complement over {a,b} must accept ε, b, aa, ab, ...
	al := ab()
	d := NewDFA(al)
	s0, s1 := d.AddState(), d.AddState()
	d.SetStart(s0)
	d.SetAccept(s1, true)
	d.SetTransition(s0, al.Lookup("a"), s1)
	c := d.Complement()
	for _, tc := range []struct {
		w    []string
		want bool
	}{
		{nil, true}, {[]string{"a"}, false}, {[]string{"b"}, true}, {[]string{"a", "a"}, true}, {[]string{"a", "b"}, true},
	} {
		if got := c.AcceptsNames(tc.w...); got != tc.want {
			t.Errorf("complement Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestDeterminizeSimple(t *testing.T) {
	n := buildAB(t) // a·b*
	d := Determinize(n)
	for _, tc := range []struct {
		w    []string
		want bool
	}{
		{[]string{"a"}, true}, {[]string{"a", "b", "b"}, true}, {nil, false}, {[]string{"b"}, false}, {[]string{"a", "a"}, false},
	} {
		if got := d.AcceptsNames(tc.w...); got != tc.want {
			t.Errorf("determinized Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestDeterminizeWithEpsilon(t *testing.T) {
	// (a+b)* built with ε-transitions via Star and Union.
	al := ab()
	u := Union(SymbolLanguage(al, al.Lookup("a")), SymbolLanguage(al, al.Lookup("b")))
	star := Star(u)
	d := Determinize(star)
	for _, w := range [][]string{nil, {"a"}, {"b", "a", "b"}, {"a", "a", "a"}} {
		if !d.AcceptsNames(w...) {
			t.Errorf("(a+b)* rejected %v", w)
		}
	}
}

func TestDeterminizeExponentialFamily(t *testing.T) {
	// L_k = (a+b)* a (a+b)^{k-1}: NFA with k+1 states, minimal DFA with 2^k.
	const k = 5
	al := ab()
	a, b := al.Lookup("a"), al.Lookup("b")
	n := NewNFA(al)
	states := make([]State, k+1)
	for i := range states {
		states[i] = n.AddState()
	}
	n.SetStart(states[0])
	n.SetAccept(states[k], true)
	n.AddTransition(states[0], a, states[0])
	n.AddTransition(states[0], b, states[0])
	n.AddTransition(states[0], a, states[1])
	for i := 1; i < k; i++ {
		n.AddTransition(states[i], a, states[i+1])
		n.AddTransition(states[i], b, states[i+1])
	}
	m := Determinize(n).Minimize()
	if m.NumStates() != 1<<k {
		t.Fatalf("minimal DFA has %d states, want %d", m.NumStates(), 1<<k)
	}
}

func TestMinimizeCollapsesEquivalentStates(t *testing.T) {
	// Build a redundant DFA for a* with duplicated states.
	al := alphabet.FromNames("a")
	d := NewDFA(al)
	s0, s1, s2 := d.AddState(), d.AddState(), d.AddState()
	d.SetStart(s0)
	for _, s := range []State{s0, s1, s2} {
		d.SetAccept(s, true)
	}
	a := al.Lookup("a")
	d.SetTransition(s0, a, s1)
	d.SetTransition(s1, a, s2)
	d.SetTransition(s2, a, s1)
	m := d.Minimize()
	if m.NumStates() != 1 {
		t.Fatalf("minimal DFA for a* has %d states, want 1", m.NumStates())
	}
	if !m.AcceptsNames("a", "a", "a") || !m.AcceptsNames() {
		t.Fatal("minimization changed the language")
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	d := Determinize(buildAB(t))
	m := d.Minimize()
	for _, w := range [][]string{nil, {"a"}, {"b"}, {"a", "b"}, {"a", "a"}, {"a", "b", "b", "b"}} {
		if d.AcceptsNames(w...) != m.AcceptsNames(w...) {
			t.Fatalf("minimize changed language on %v", w)
		}
	}
	if !EquivalentDFA(d, m) {
		t.Fatal("minimized DFA not equivalent")
	}
}

func TestMinimizeEmptyAndUniversal(t *testing.T) {
	empty := Determinize(EmptyLanguage(ab())).Minimize()
	if got := empty.TrimPartial().NumStates(); got != 1 {
		t.Fatalf("minimal empty DFA: %d states, want 1", got)
	}
	uni := Determinize(UniversalLanguage(ab())).Minimize()
	if uni.NumStates() != 1 {
		t.Fatalf("minimal universal DFA: %d states, want 1", uni.NumStates())
	}
}

func TestReachableDropsOrphans(t *testing.T) {
	d := evenAs()
	orphan := d.AddState()
	d.SetAccept(orphan, true)
	r := d.Reachable()
	if r.NumStates() != 2 {
		t.Fatalf("Reachable kept %d states, want 2", r.NumStates())
	}
}

func TestTrimPartialDropsDeadStates(t *testing.T) {
	al := ab()
	d := NewDFA(al)
	s0, s1, sink := d.AddState(), d.AddState(), d.AddState()
	d.SetStart(s0)
	d.SetAccept(s1, true)
	d.SetTransition(s0, al.Lookup("a"), s1)
	d.SetTransition(s0, al.Lookup("b"), sink)
	d.SetTransition(sink, al.Lookup("a"), sink)
	d.SetTransition(sink, al.Lookup("b"), sink)
	tr := d.TrimPartial()
	if tr.NumStates() != 2 {
		t.Fatalf("TrimPartial kept %d states, want 2", tr.NumStates())
	}
	if !tr.AcceptsNames("a") || tr.AcceptsNames("b") {
		t.Fatal("TrimPartial changed the language")
	}
}

func TestDFAToNFARoundTrip(t *testing.T) {
	d := evenAs()
	n := d.NFA()
	for _, w := range [][]string{nil, {"a"}, {"a", "a"}, {"b", "a"}} {
		if d.AcceptsNames(w...) != n.AcceptsNames(w...) {
			t.Fatalf("DFA->NFA changed language on %v", w)
		}
	}
}

func TestDFACloneIndependence(t *testing.T) {
	d := evenAs()
	c := d.Clone()
	c.SetAccept(0, false)
	if !d.Accepting(0) {
		t.Fatal("clone mutated original")
	}
}

func TestTotalizeAfterLateInterning(t *testing.T) {
	// A symbol interned after states were added leaves short rows;
	// Totalize must re-pad them and Next must tolerate them meanwhile.
	al := alphabet.FromNames("a")
	d := NewDFA(al)
	s0, s1 := d.AddState(), d.AddState()
	d.SetStart(s0)
	d.SetAccept(s1, true)
	d.SetTransition(s0, al.Lookup("a"), s1)
	late := al.Intern("b") // row for b does not exist yet
	if d.Next(s0, late) != NoState {
		t.Fatal("Next on late symbol should be NoState")
	}
	tt := d.Totalize()
	if !tt.IsTotal() {
		t.Fatal("Totalize did not re-pad late symbol")
	}
	if tt.AcceptsNames("b") {
		t.Fatal("late symbol should lead to the sink")
	}
	if !tt.AcceptsNames("a") {
		t.Fatal("original language lost")
	}
}
