package automata

import (
	"testing"

	"regexrw/internal/alphabet"
)

// memoNFA builds a small NFA, optionally with an ε-transition, for the
// clone-memo tests.
func memoNFA(t *testing.T, withEps bool) *NFA {
	t.Helper()
	a := alphabet.New()
	x := a.Intern("x")
	n := NewNFA(a)
	n.AddStates(3)
	n.SetStart(0)
	n.SetAccept(2, true)
	n.AddTransition(0, x, 1)
	if withEps {
		n.AddEpsilon(1, 2)
	} else {
		n.AddTransition(1, x, 2)
	}
	return n
}

// TestCloneCarriesMemo is the regression test for the memo_reuses:0
// bug: Clone used to drop the source's closure memo, so every pipeline
// stage that worked on a copy rebuilt the tables from scratch. The
// counters are process-global, so all assertions use deltas.
func TestCloneCarriesMemo(t *testing.T) {
	n := memoNFA(t, true)

	before := ReadCacheStats()
	if got := n.RemoveEpsilon(); !got.AcceptsNames("x") {
		t.Fatalf("RemoveEpsilon lost the language")
	}
	mid := ReadCacheStats()
	if builds := mid.MemoBuilds - before.MemoBuilds; builds < 1 {
		t.Fatalf("MemoBuilds delta = %d after first RemoveEpsilon; want >= 1", builds)
	}

	c := n.Clone()
	if got := c.RemoveEpsilon(); !got.AcceptsNames("x") {
		t.Fatalf("clone's RemoveEpsilon lost the language")
	}
	after := ReadCacheStats()
	if builds := after.MemoBuilds - mid.MemoBuilds; builds != 0 {
		t.Fatalf("MemoBuilds delta = %d on the clone; want 0 (clone must carry the memo)", builds)
	}
	if reuses := after.MemoReuses - mid.MemoReuses; reuses < 1 {
		t.Fatalf("MemoReuses delta = %d on the clone; want >= 1", reuses)
	}
}

// TestRemoveEpsilonCloneCarriesMemo covers the double-compile shape
// that surfaced the bug: on an ε-free automaton RemoveEpsilon returns a
// clone, and the memo built for the source (by a prior Determinize or
// containment check) must survive into it.
func TestRemoveEpsilonCloneCarriesMemo(t *testing.T) {
	n := memoNFA(t, false)
	n.memoTables() // build the memo, as a first compile pass would

	before := ReadCacheStats()
	c := n.RemoveEpsilon() // ε-free: returns n.Clone()
	c.memoTables()         // second pass over the copy
	after := ReadCacheStats()
	if builds := after.MemoBuilds - before.MemoBuilds; builds != 0 {
		t.Fatalf("MemoBuilds delta = %d on the ε-free clone; want 0", builds)
	}
	if reuses := after.MemoReuses - before.MemoReuses; reuses < 1 {
		t.Fatalf("MemoReuses delta = %d on the ε-free clone; want >= 1", reuses)
	}

	// Mutating the clone must invalidate the carried memo: a stale
	// closure table from the source would be unsound.
	c.AddState()
	c.memoTables()
	final := ReadCacheStats()
	if builds := final.MemoBuilds - after.MemoBuilds; builds != 1 {
		t.Fatalf("MemoBuilds delta = %d after mutating the clone; want 1 (carried memo must go stale)", builds)
	}
}
