package automata

import (
	"math/rand"
	"testing"
)

func TestReduceSimulationMergesDuplicates(t *testing.T) {
	// Two literally identical branches must collapse.
	al := ab()
	n := NewNFA(al)
	s0 := n.AddState()
	b1 := n.AddState()
	b2 := n.AddState()
	end := n.AddState()
	n.SetStart(s0)
	n.SetAccept(end, true)
	a := al.Lookup("a")
	b := al.Lookup("b")
	n.AddTransition(s0, a, b1)
	n.AddTransition(s0, a, b2)
	n.AddTransition(b1, b, end)
	n.AddTransition(b2, b, end)
	red := ReduceSimulation(n)
	if red.NumStates() != 3 {
		t.Fatalf("reduced to %d states, want 3", red.NumStates())
	}
	if !red.AcceptsNames("a", "b") || red.AcceptsNames("a") {
		t.Fatal("reduction changed the language")
	}
}

func TestReduceSimulationEmptyAndEpsilon(t *testing.T) {
	al := ab()
	if !ReduceSimulation(EmptyLanguage(al)).IsEmpty() {
		t.Fatal("empty language changed")
	}
	eps := ReduceSimulation(EpsilonLanguage(al))
	if !eps.AcceptsNames() || eps.AcceptsNames("a") {
		t.Fatal("ε-language changed")
	}
}

// Property: reduction preserves the language and never grows.
func TestPropertyReduceSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	al := ab()
	for trial := 0; trial < 60; trial++ {
		n := randomNFA(r, al, 7)
		red := ReduceSimulation(n)
		if red.NumStates() > n.RemoveEpsilon().Trim().NumStates() {
			t.Fatalf("trial %d: reduction grew the automaton", trial)
		}
		if !Equivalent(n, red) {
			t.Fatalf("trial %d: reduction changed the language", trial)
		}
	}
}

func TestSimulationPreorderBasics(t *testing.T) {
	// In a·b vs a·(b+c): the first's mid-state is simulated by the
	// second's (which has strictly more moves), not vice versa.
	al := ab("c")
	n := NewNFA(al)
	s0 := n.AddState()
	m1 := n.AddState() // only b to end
	m2 := n.AddState() // b or c to end
	end := n.AddState()
	n.SetStart(s0)
	n.SetAccept(end, true)
	n.AddTransition(s0, al.Lookup("a"), m1)
	n.AddTransition(s0, al.Lookup("a"), m2)
	n.AddTransition(m1, al.Lookup("b"), end)
	n.AddTransition(m2, al.Lookup("b"), end)
	n.AddTransition(m2, al.Lookup("c"), end)
	sim := SimulationPreorder(n)
	if !sim[m1][m2] {
		t.Fatal("m2 should simulate m1")
	}
	if sim[m2][m1] {
		t.Fatal("m1 should not simulate m2")
	}
	// Reflexive.
	for s := 0; s < n.NumStates(); s++ {
		if !sim[s][s] {
			t.Fatalf("simulation not reflexive at %d", s)
		}
	}
}

func TestReductionStats(t *testing.T) {
	al := ab()
	n := Union(WordLanguage(al, ParseWord(al, "a b")), WordLanguage(al, ParseWord(al, "a b")))
	before, after := ReductionStats(n)
	if after >= before {
		t.Fatalf("duplicated union should shrink: %d -> %d", before, after)
	}
}
