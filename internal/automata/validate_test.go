package automata

import (
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

// validNFA builds a small well-formed NFA for corruption tests:
// 0 --a--> 1 --ε--> 2, accepting {2}.
func validNFA(t *testing.T) *NFA {
	t.Helper()
	al := alphabet.New()
	n := NewNFA(al)
	n.AddStates(3)
	n.SetStart(0)
	n.SetAccept(2, true)
	n.AddTransition(0, al.Intern("a"), 1)
	n.AddEpsilon(1, 2)
	if err := n.Validate(); err != nil {
		t.Fatalf("fixture NFA invalid before corruption: %v", err)
	}
	return n
}

func TestNFAValidateCatchesCorruption(t *testing.T) {
	al := alphabet.New()
	a := al.Intern("a")
	cases := []struct {
		name    string
		corrupt func(n *NFA)
		wantSub string
	}{
		{"nil alphabet", func(n *NFA) { n.alpha = nil }, "nil alphabet"},
		{"trans table too short", func(n *NFA) { n.trans = n.trans[:2] }, "table sizes disagree"},
		{"eps table too long", func(n *NFA) { n.eps = append(n.eps, nil) }, "table sizes disagree"},
		{"start out of range", func(n *NFA) { n.start = 99 }, "start state 99 out of range"},
		{"symbol outside alphabet", func(n *NFA) {
			n.trans[0][alphabet.Symbol(57)] = []State{1}
		}, "outside alphabet"},
		{"transition target out of range", func(n *NFA) {
			n.trans[0][a] = append(n.trans[0][a], 42)
		}, "out of range"},
		{"duplicate transition", func(n *NFA) {
			n.trans[0][a] = append(n.trans[0][a], 1)
		}, "duplicate transition"},
		{"eps target out of range", func(n *NFA) { n.eps[1] = append(n.eps[1], 7) }, "out of range"},
		{"eps self-loop", func(n *NFA) { n.eps[1] = []State{1} }, "self-loop"},
		{"duplicate eps", func(n *NFA) { n.eps[1] = []State{2, 2} }, "duplicate ε"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := validNFA(t)
			tc.corrupt(n)
			err := n.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the corruption")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// validDFA builds a small well-formed partial DFA for corruption tests.
func validDFA(t *testing.T) *DFA {
	t.Helper()
	al := alphabet.New()
	a := al.Intern("a") // intern before AddState: rows are sized then
	d := NewDFA(al)
	d.AddState()
	d.AddState()
	d.SetStart(0)
	d.SetAccept(1, true)
	d.SetTransition(0, a, 1)
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture DFA invalid before corruption: %v", err)
	}
	return d
}

func TestDFAValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(d *DFA)
		wantSub string
	}{
		{"nil alphabet", func(d *DFA) { d.alpha = nil }, "nil alphabet"},
		{"trans table too short", func(d *DFA) { d.trans = d.trans[:1] }, "table sizes disagree"},
		{"start out of range", func(d *DFA) { d.start = -7 }, "start state -7 out of range"},
		{"row longer than alphabet", func(d *DFA) {
			d.trans[1] = make([]State, d.alpha.Len()+3)
			for i := range d.trans[1] {
				d.trans[1][i] = NoState
			}
		}, "transition row of length"},
		{"target out of range", func(d *DFA) { d.trans[0][0] = 9 }, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validDFA(t)
			tc.corrupt(d)
			err := d.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the corruption")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestValidateAcceptsPipelineOutputs runs Validate over the outputs of
// the main constructors, whatever build tags are in effect — the
// explicit counterpart of the regexrwdebug hooks.
func TestValidateAcceptsPipelineOutputs(t *testing.T) {
	al := alphabet.New()
	a, b := al.Intern("a"), al.Intern("b")
	n := NewNFA(al)
	n.AddStates(3)
	n.SetStart(0)
	n.SetAccept(2, true)
	n.AddTransition(0, a, 1)
	n.AddTransition(1, b, 2)
	n.AddTransition(1, a, 1)
	n.AddEpsilon(0, 2)

	for name, got := range map[string]*NFA{
		"Clone":         n.Clone(),
		"RemoveEpsilon": n.RemoveEpsilon(),
		"Trim":          n.Trim(),
		"Reverse":       Reverse(n),
		"Star":          Star(n),
		"Union":         Union(n, n.Clone()),
		"Concat":        Concat(n, n),
	} {
		if err := got.Validate(); err != nil {
			t.Errorf("%s output invalid: %v", name, err)
		}
	}
	d := Determinize(n)
	for name, got := range map[string]*DFA{
		"Determinize": d,
		"Minimize":    d.Minimize(),
		"Totalize":    d.Totalize(),
		"Complement":  d.Complement(),
		"TrimPartial": d.TrimPartial(),
	} {
		if err := got.Validate(); err != nil {
			t.Errorf("%s output invalid: %v", name, err)
		}
	}
}
