package automata

import (
	"testing"

	"regexrw/internal/alphabet"
)

// ab returns a fresh alphabet {a, b} (plus any extra names).
func ab(extra ...string) *alphabet.Alphabet {
	return alphabet.FromNames(append([]string{"a", "b"}, extra...)...)
}

// buildAB returns an NFA over {a,b} accepting a·b* (handy fixture).
func buildAB(t *testing.T) *NFA {
	t.Helper()
	al := ab()
	n := NewNFA(al)
	s0 := n.AddState()
	s1 := n.AddState()
	n.SetStart(s0)
	n.SetAccept(s1, true)
	n.AddTransition(s0, al.Lookup("a"), s1)
	n.AddTransition(s1, al.Lookup("b"), s1)
	return n
}

func TestNFAAccepts(t *testing.T) {
	n := buildAB(t)
	cases := []struct {
		word []string
		want bool
	}{
		{[]string{"a"}, true},
		{[]string{"a", "b"}, true},
		{[]string{"a", "b", "b", "b"}, true},
		{[]string{}, false},
		{[]string{"b"}, false},
		{[]string{"a", "a"}, false},
		{[]string{"a", "b", "a"}, false},
	}
	for _, c := range cases {
		if got := n.AcceptsNames(c.word...); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestAcceptsNamesUnknownSymbol(t *testing.T) {
	n := buildAB(t)
	if n.AcceptsNames("zzz") {
		t.Fatal("accepted a word with an unknown symbol")
	}
}

func TestEpsilonClosure(t *testing.T) {
	al := ab()
	n := NewNFA(al)
	s0, s1, s2, s3 := n.AddState(), n.AddState(), n.AddState(), n.AddState()
	n.AddEpsilon(s0, s1)
	n.AddEpsilon(s1, s2)
	n.AddEpsilon(s2, s0) // cycle
	_ = s3
	got := n.EpsClosureOf(s0)
	if len(got) != 3 || got[0] != s0 || got[1] != s1 || got[2] != s2 {
		t.Fatalf("EpsClosureOf(s0) = %v, want [0 1 2]", got)
	}
}

func TestEpsilonAcceptance(t *testing.T) {
	al := ab()
	n := NewNFA(al)
	s0, s1, s2 := n.AddState(), n.AddState(), n.AddState()
	n.SetStart(s0)
	n.SetAccept(s2, true)
	n.AddEpsilon(s0, s1)
	n.AddTransition(s1, al.Lookup("a"), s2)
	n.AddEpsilon(s2, s0)
	if !n.AcceptsNames("a") {
		t.Fatal("want accept of a via ε")
	}
	if !n.AcceptsNames("a", "a") {
		t.Fatal("want accept of aa via ε-cycle")
	}
	if n.AcceptsNames() {
		t.Fatal("should not accept ε")
	}
}

func TestRemoveEpsilonPreservesLanguage(t *testing.T) {
	al := ab()
	n := NewNFA(al)
	s0, s1, s2 := n.AddState(), n.AddState(), n.AddState()
	n.SetStart(s0)
	n.SetAccept(s2, true)
	n.AddEpsilon(s0, s1)
	n.AddTransition(s1, al.Lookup("a"), s2)
	n.AddEpsilon(s1, s2) // makes ε itself accepted
	e := n.RemoveEpsilon()
	if e.HasEpsilon() {
		t.Fatal("RemoveEpsilon left ε-transitions")
	}
	for _, w := range [][]string{{}, {"a"}, {"b"}, {"a", "a"}} {
		if e.AcceptsNames(w...) != n.AcceptsNames(w...) {
			t.Fatalf("language changed on %v", w)
		}
	}
}

func TestTrimRemovesUnreachableAndDead(t *testing.T) {
	al := ab()
	n := NewNFA(al)
	s0 := n.AddState()
	s1 := n.AddState()
	dead := n.AddState()        // reachable but no path to accept
	unreachable := n.AddState() // accepting but unreachable
	n.SetStart(s0)
	n.SetAccept(s1, true)
	n.SetAccept(unreachable, true)
	n.AddTransition(s0, al.Lookup("a"), s1)
	n.AddTransition(s0, al.Lookup("b"), dead)
	trimmed := n.Trim()
	if trimmed.NumStates() != 2 {
		t.Fatalf("Trim left %d states, want 2", trimmed.NumStates())
	}
	if !trimmed.AcceptsNames("a") || trimmed.AcceptsNames("b") {
		t.Fatal("Trim changed the language")
	}
}

func TestTrimEmptyLanguageKeepsStart(t *testing.T) {
	n := EmptyLanguage(ab())
	trimmed := n.Trim()
	if trimmed.NumStates() != 1 || trimmed.Start() == NoState {
		t.Fatalf("trimmed empty automaton malformed: %v states", trimmed.NumStates())
	}
	if !trimmed.IsEmpty() {
		t.Fatal("empty language lost")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := buildAB(t)
	c := n.Clone()
	c.SetAccept(0, true)
	c.AddTransition(0, n.Alphabet().Lookup("b"), 0)
	if n.Accepting(0) {
		t.Fatal("clone mutated original accept flags")
	}
	if n.AcceptsNames("b", "a") {
		t.Fatal("clone mutated original transitions")
	}
}

func TestCopyIntoRemapsSymbolsByName(t *testing.T) {
	src := buildAB(t) // over {a,b}
	dstAlpha := alphabet.FromNames("b", "a", "c")
	dst := NewNFA(dstAlpha)
	m := CopyInto(dst, src)
	dst.SetStart(m[src.Start()])
	if !dst.AcceptsNames("a", "b") || dst.AcceptsNames("b") {
		t.Fatal("CopyInto did not remap symbols by name")
	}
}

func TestAddTransitionDeduplicates(t *testing.T) {
	n := buildAB(t)
	a := n.Alphabet().Lookup("a")
	before := n.NumTransitions()
	n.AddTransition(0, a, 1) // duplicate
	if n.NumTransitions() != before {
		t.Fatal("duplicate transition was added")
	}
}

func TestStatePanics(t *testing.T) {
	n := buildAB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range state")
		}
	}()
	n.SetAccept(99, true)
}

func TestShortestWord(t *testing.T) {
	n := buildAB(t)
	w, ok := n.ShortestWord()
	if !ok || FormatWord(n.Alphabet(), w) != "a" {
		t.Fatalf("ShortestWord = %v,%v", w, ok)
	}
	empty := EmptyLanguage(ab())
	if _, ok := empty.ShortestWord(); ok {
		t.Fatal("empty language returned a word")
	}
	eps := EpsilonLanguage(ab())
	w, ok = eps.ShortestWord()
	if !ok || len(w) != 0 {
		t.Fatalf("ε-language ShortestWord = %v,%v", w, ok)
	}
}

func TestIsEmpty(t *testing.T) {
	if !EmptyLanguage(ab()).IsEmpty() {
		t.Fatal("EmptyLanguage not empty")
	}
	if EpsilonLanguage(ab()).IsEmpty() {
		t.Fatal("ε-language reported empty")
	}
	if buildAB(t).IsEmpty() {
		t.Fatal("a·b* reported empty")
	}
	// Accepting state unreachable => empty.
	al := ab()
	n := NewNFA(al)
	s0 := n.AddState()
	s1 := n.AddState()
	n.SetStart(s0)
	n.SetAccept(s1, true)
	if !n.IsEmpty() {
		t.Fatal("unreachable accept state should give empty language")
	}
}

func TestNumTransitions(t *testing.T) {
	n := buildAB(t)
	if n.NumTransitions() != 2 {
		t.Fatalf("NumTransitions = %d, want 2", n.NumTransitions())
	}
	n.AddEpsilon(0, 1)
	if n.NumTransitions() != 3 {
		t.Fatalf("NumTransitions with ε = %d, want 3", n.NumTransitions())
	}
}

func TestParseFormatWord(t *testing.T) {
	al := ab()
	w := ParseWord(al, "a b a")
	if FormatWord(al, w) != "a·b·a" {
		t.Fatalf("round trip = %q", FormatWord(al, w))
	}
	if FormatWord(al, nil) != "ε" {
		t.Fatal("empty word should format as ε")
	}
}
