package automata

import (
	"context"
	"math/bits"
	"sort"
	"sync/atomic"

	"regexrw/internal/alphabet"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/strategy"
)

// This file is the dense DFA kernel layer: a symbol-indexed []int32
// transition table built once per DFA structure and cached behind an
// atomic pointer (the same gen-counter idiom as the NFA's closure memo
// in cache.go), plus the hot loops ported onto it — membership runs,
// the minimization refinement, the DFA product, and the materialized
// containment scan behind the Theorem 6 exactness check. Whether a
// kernel runs dense or sparse is decided per call by the strategy
// dispatcher (internal/strategy) from the automaton's states × |Σ|
// density; the dense and sparse arms compute byte-identical automata,
// which internal/oracle verifies differentially.

// denseTab is the dense transition table of one DFA structure: next is
// a row-major [states × stride] array of successor ids with -1 for
// NoState, accept is a word-level bitset of the accepting states.
// stride is the alphabet size at build time; symbols interned into the
// alphabet afterwards have no transitions (dfa.Next's contract), so a
// bounds check against stride is the only guard readers need.
type denseTab struct {
	n      int // states at build time
	stride int // alphabet length at build time
	next   []int32
	accept []uint64
}

// denseBox pairs a table with the mutation generation it was built for.
type denseBox struct {
	gen int64
	tab *denseTab
}

// denseCounters tracks table builds and reuses process-wide, mirroring
// the cacheCounters idiom; -metrics exposes them as
// automata.dense.builds / automata.dense.reuses.
var denseCounters = struct {
	builds *obs.Counter
	reuses *obs.Counter
}{
	builds: obs.Default.Counter("automata.dense.builds"),
	reuses: obs.Default.Counter("automata.dense.reuses"),
}

// denseTables returns the dense transition table valid for the DFA's
// current structure, building it on first use. Structural mutators bump
// d.gen, so a stale table is detected and rebuilt; concurrent readers
// of an immutable DFA may race to build, every table is equally valid
// and the last Store wins.
func (d *DFA) denseTables() *denseTab {
	gen := atomic.LoadInt64(&d.gen)
	if box := d.dense.Load(); box != nil && box.gen == gen {
		denseCounters.reuses.Add(1)
		return box.tab
	}
	t := d.buildDense()
	d.dense.Store(&denseBox{gen: gen, tab: t})
	denseCounters.builds.Add(1)
	return t
}

// denseCached returns the cached table if it is valid for the current
// structure, or nil without building: the cheap probe used by Run and
// Accepts, which must not pay a build for a single word.
func (d *DFA) denseCached() *denseTab {
	box := d.dense.Load()
	if box == nil || box.gen != atomic.LoadInt64(&d.gen) {
		return nil
	}
	return box.tab
}

// invalidateDense marks any cached dense table stale. Called by every
// structural mutator (AddState, SetAccept, SetTransition).
func (d *DFA) invalidateDense() {
	atomic.AddInt64(&d.gen, 1)
}

func (d *DFA) buildDense() *denseTab {
	n := d.NumStates()
	stride := d.alpha.Len()
	t := &denseTab{
		n:      n,
		stride: stride,
		next:   make([]int32, n*stride),
		accept: make([]uint64, (n+63)/64),
	}
	for i := range t.next {
		t.next[i] = int32(NoState)
	}
	for s := 0; s < n; s++ {
		if d.accept[s] {
			t.accept[s>>6] |= 1 << (uint(s) & 63)
		}
		row := t.next[s*stride : (s+1)*stride]
		for x, to := range d.trans[s] {
			if x < stride {
				row[x] = int32(to)
			}
		}
	}
	return t
}

// accepting reports whether state s (>= 0) accepts.
func (t *denseTab) accepting(s int32) bool {
	return t.accept[s>>6]&(1<<(uint(s)&63)) != 0
}

// step returns the x-successor of s, or -1. Callers guarantee s is a
// valid state id; x is bounds-checked against the build-time stride.
func (t *denseTab) step(s int32, x alphabet.Symbol) int32 {
	if int(x) >= t.stride {
		return int32(NoState)
	}
	return t.next[int(s)*t.stride+int(x)]
}

// runDense is the dense membership kernel: one bounds-checked load per
// input symbol, no per-state row slice chasing. 0 allocs/op.
func (t *denseTab) runDense(s State, word []alphabet.Symbol) State {
	cur := int32(s)
	for _, x := range word {
		if int(x) >= t.stride {
			return NoState
		}
		cur = t.next[int(cur)*t.stride+int(x)]
		if cur < 0 {
			return NoState
		}
	}
	return State(cur)
}

// EnsureDense builds (or revalidates) the dense transition table so
// that subsequent Run/Accepts calls take the dense kernel. Serving
// paths that replay many words over one immutable DFA call it once
// after construction; the table is rebuilt automatically if the DFA is
// mutated afterwards.
func (d *DFA) EnsureDense() { d.denseTables() }

// refineSparse is the pre-dense partition refinement (worklist of
// (class, symbol) splitters over map-grouped predecessor sets), kept
// verbatim as the sparse kernel arm and the differential reference for
// refineDense. It returns the coarsest stable partition of the total
// automaton t as class membership lists plus the state → class index.
//
// Implementation note: the "queue both halves" worklist semantics
// (slightly more work than Hopcroft's smaller-half rule, immediate
// termination invariant) are shared with refineDense; both compute the
// same unique coarsest partition, and the caller's quotient +
// Reachable() canonicalization makes the final DFA independent of how
// the classes were numbered during refinement.
func (t *DFA) refineSparse(meter *budget.Meter) (members [][]State, class []int, err error) {
	nStates := t.NumStates()
	nSyms := t.alpha.Len()

	// Reverse transition lists: rev[x][s] = predecessors of s on x.
	rev := make([][][]State, nSyms)
	for x := 0; x < nSyms; x++ {
		rev[x] = make([][]State, nStates)
	}
	for s := 0; s < nStates; s++ {
		for x, to := range t.trans[s] {
			rev[x][to] = append(rev[x][to], State(s))
		}
	}

	// Initial partition: accepting vs non-accepting.
	class = make([]int, nStates)
	members = make([][]State, 0, 2)
	var accSet, rejSet []State
	for s := 0; s < nStates; s++ {
		if t.accept[s] {
			accSet = append(accSet, State(s))
		} else {
			rejSet = append(rejSet, State(s))
		}
	}
	addClass := func(states []State) int {
		idx := len(members)
		members = append(members, states)
		for _, s := range states {
			class[s] = idx
		}
		return idx
	}
	if len(accSet) > 0 {
		addClass(accSet)
	}
	if len(rejSet) > 0 {
		addClass(rejSet)
	}

	type splitter struct {
		class int
		sym   int
	}
	var work []splitter
	for c := range members {
		for x := 0; x < nSyms; x++ {
			work = append(work, splitter{c, x})
		}
	}

	inSplit := make([]bool, nStates)
	for len(work) > 0 {
		if err := meter.Check(); err != nil {
			return nil, nil, err
		}
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		// X = set of states with an x-transition into sp.class.
		var xset []State
		for _, s := range members[sp.class] {
			for _, p := range rev[sp.sym][s] {
				if !inSplit[p] {
					inSplit[p] = true
					xset = append(xset, p)
				}
			}
		}
		if len(xset) == 0 {
			continue
		}
		// Group X members by class; split classes partially covered by X.
		touched := map[int][]State{}
		for _, s := range xset {
			touched[class[s]] = append(touched[class[s]], s)
		}
		// Deterministic iteration for reproducibility.
		classes := make([]int, 0, len(touched))
		for c := range touched {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		for _, c := range classes {
			inX := touched[c]
			if len(inX) == len(members[c]) {
				continue // class entirely inside X; no split
			}
			// Split class c into inX and the rest.
			inXset := make(map[State]bool, len(inX))
			for _, s := range inX {
				inXset[s] = true
			}
			var rest []State
			for _, s := range members[c] {
				if !inXset[s] {
					rest = append(rest, s)
				}
			}
			members[c] = inX
			newIdx := addClass(rest)
			for x := 0; x < nSyms; x++ {
				work = append(work, splitter{c, x}, splitter{newIdx, x})
			}
		}
		for _, s := range xset {
			inSplit[s] = false
		}
	}
	return members, class, nil
}

// refineDense is the dense kernel arm of the minimization refinement:
// the same worklist semantics as refineSparse, but predecessors come
// from a CSR-packed reverse table and the partition lives in a
// permutation array with per-class segments, so a splitter pass touches
// no maps and allocates nothing — marked states are swapped to the
// front of their class segment and a split is two boundary updates.
// Profiles of the sparse arm are dominated by the touched/inXset map
// traffic this removes (docs/PERFORMANCE.md §6).
func (t *DFA) refineDense(meter *budget.Meter, tab *denseTab) (members [][]State, class []int, err error) {
	nStates := t.NumStates()
	nSyms := tab.stride

	// CSR reverse table per (symbol, target): revOff[x*nStates+to] is
	// the start of the predecessor run in revDat. Sources are filled in
	// increasing order, matching the append order of the sparse arm.
	revOff := make([]int32, nSyms*nStates+1)
	for s := 0; s < nStates; s++ {
		row := tab.next[s*nSyms : (s+1)*nSyms]
		for x, to := range row {
			if to >= 0 {
				revOff[x*nStates+int(to)+1]++
			}
		}
	}
	for i := 1; i < len(revOff); i++ {
		revOff[i] += revOff[i-1]
	}
	revDat := make([]int32, revOff[len(revOff)-1])
	fill := make([]int32, nSyms*nStates)
	copy(fill, revOff[:len(revOff)-1])
	for s := 0; s < nStates; s++ {
		row := tab.next[s*nSyms : (s+1)*nSyms]
		for x, to := range row {
			if to >= 0 {
				k := x*nStates + int(to)
				revDat[fill[k]] = int32(s)
				fill[k]++
			}
		}
	}

	// Partition as a permutation array: perm holds the states grouped by
	// class, loc inverts it, and each class c owns the contiguous
	// segment perm[segStart[c] : segStart[c]+segLen[c]].
	perm := make([]int32, nStates)
	loc := make([]int32, nStates)
	classOf := make([]int32, nStates)
	segStart := make([]int32, 0, 4)
	segLen := make([]int32, 0, 4)

	nAcc := 0
	for s := 0; s < nStates; s++ {
		if t.accept[s] {
			nAcc++
		}
	}
	ai, ri := 0, nAcc // accepting states first, mirroring refineSparse
	if nAcc == 0 || nAcc == nStates {
		ai, ri = 0, 0 // single class; one cursor suffices
	}
	numClasses := 0
	if nAcc > 0 {
		segStart = append(segStart, 0)
		segLen = append(segLen, int32(nAcc))
		numClasses++
	}
	if nAcc < nStates {
		segStart = append(segStart, int32(nAcc))
		segLen = append(segLen, int32(nStates-nAcc))
		numClasses++
	}
	accClass, rejClass := int32(0), int32(numClasses-1)
	for s := 0; s < nStates; s++ {
		var pos int
		if t.accept[s] {
			pos = ai
			ai++
			classOf[s] = accClass
		} else {
			pos = ri
			ri++
			classOf[s] = rejClass
		}
		perm[pos] = int32(s)
		loc[s] = int32(pos)
	}

	// Worklist of (class, symbol) splitters, packed as class*nSyms+sym.
	work := make([]int64, 0, numClasses*nSyms)
	for c := 0; c < numClasses; c++ {
		for x := 0; x < nSyms; x++ {
			work = append(work, int64(c)*int64(nSyms)+int64(x))
		}
	}

	// markCnt[c] counts the states of class c swapped into the marked
	// front region of its segment during the current splitter pass.
	markCnt := make([]int32, nStates)
	touchedList := make([]int32, 0, 16)
	splitBuf := make([]int32, 0, 64)
	for len(work) > 0 {
		if err := meter.Check(); err != nil {
			return nil, nil, err
		}
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		c := int32(sp / int64(nSyms))
		x := int(sp % int64(nSyms))

		// Mark every predecessor (on x) of the splitter class's members,
		// moving it to the front of its own class segment. The member
		// list is copied first: the marking swaps rearrange perm, and the
		// splitter class's own segment may be among the rearranged ones.
		base := x * nStates
		splitBuf = append(splitBuf[:0], perm[segStart[c]:segStart[c]+segLen[c]]...)
		for _, s := range splitBuf {
			for _, p := range revDat[revOff[base+int(s)]:revOff[base+int(s)+1]] {
				cp := classOf[p]
				mark := segStart[cp] + markCnt[cp]
				if loc[p] < mark {
					continue // already marked in this pass
				}
				if markCnt[cp] == 0 {
					touchedList = append(touchedList, cp)
				}
				// Swap p to the mark boundary of its segment.
				q := perm[mark]
				perm[mark], perm[loc[p]] = int32(p), q
				loc[q], loc[p] = loc[p], mark
				markCnt[cp]++
			}
		}
		// Split every touched class that is only partially marked: the
		// marked front keeps the class id (the sparse arm's members[c] =
		// inX), the unmarked tail becomes a fresh class.
		for _, cp := range touchedList {
			k := markCnt[cp]
			markCnt[cp] = 0
			if k == segLen[cp] {
				continue // class entirely inside X; no split
			}
			nc := int32(numClasses)
			numClasses++
			segStart = append(segStart, segStart[cp]+k)
			segLen = append(segLen, segLen[cp]-k)
			segLen[cp] = k
			for _, s := range perm[segStart[nc] : segStart[nc]+segLen[nc]] {
				classOf[s] = nc
			}
			for x2 := 0; x2 < nSyms; x2++ {
				work = append(work, int64(cp)*int64(nSyms)+int64(x2), int64(nc)*int64(nSyms)+int64(x2))
			}
		}
		touchedList = touchedList[:0]
	}

	members = make([][]State, numClasses)
	class = make([]int, nStates)
	for c := 0; c < numClasses; c++ {
		seg := perm[segStart[c] : segStart[c]+segLen[c]]
		ms := make([]State, len(seg))
		for i, s := range seg {
			ms[i] = State(s)
		}
		members[c] = ms
	}
	for s := 0; s < nStates; s++ {
		class[s] = int(classOf[s])
	}
	return members, class, nil
}

// EstimateDeterminized returns a saturating upper-bound estimate of the
// subset-construction size of n: the state count shifted left once per
// nondeterministic state (a state whose ε-closure-applied successor set
// on some symbol has more than one element). A deterministic automaton
// estimates as its own size; each genuinely nondeterministic state can
// at worst double the subset count. -1 means the estimate overflowed
// (treat as unbounded). This is a diagnostic, not a dispatch input:
// computing it forces the NFA's ε-closure memo, a large share of the
// determinization cost itself, so the adaptive exactness check skips
// prediction and runs the capped trial (ContainedInMaterializedCapped)
// directly.
func EstimateDeterminized(n *NFA) int64 {
	m := n.memoTables()
	nondet := 0
	for s := 0; s < m.numStates; s++ {
		tbl := m.step[s]
		if tbl == nil {
			continue
		}
		for _, x := range m.stateSyms[s] {
			if st := tbl[x]; st != nil && st.count() > 1 {
				nondet++
				break
			}
		}
	}
	states := int64(n.NumStates())
	if states == 0 {
		return 0
	}
	if nondet >= 63-bits.Len64(uint64(states)) {
		return -1 // states << nondet overflows int64
	}
	return states << uint(nondet)
}

// ContainedInMaterializedContext decides L(a) ⊆ L(b) with the
// complement of b materialized up front: b is lifted to the union
// alphabet, fully determinized (budget-metered, memoized subset
// construction), and the complement is represented implicitly by the
// accepting bitset of the totalized DFA — the scan then walks the
// product of ε-free a with the DFA using the dense transition table
// when the strategy dispatcher selects it. If the containment fails,
// the returned word is a shortest counterexample in L(a) \ L(b),
// deterministic by the same sorted-symbol BFS rule as
// ContainedInContext.
//
// This is the materialized arm of the Theorem 6 exactness strategy: it
// beats the on-the-fly complement exactly when det(b) is small (b
// nearly deterministic), which the adaptive dispatcher establishes by
// a capped trial (ContainedInMaterializedCapped) rather than by
// prediction.
func ContainedInMaterializedContext(ctx context.Context, a, b *NFA) (bool, []alphabet.Symbol, error) {
	ok, w, _, err := containedInMaterialized(ctx, a, b, 0)
	return ok, w, err
}

// ContainedInMaterializedCapped is ContainedInMaterializedContext as a
// trial: the determinization of b is abandoned (fit=false, no verdict,
// no error) once it materializes more than maxStates subsets. The
// adaptive Theorem 6 dispatcher uses it when the static estimate is
// inconclusive — a successful trial has already paid for the complement
// DFA, so the verdict comes at the forced-materialized price; an
// abandoned one bounds the wasted work at maxStates subsets before the
// caller falls back to the on-the-fly scan.
func ContainedInMaterializedCapped(ctx context.Context, a, b *NFA, maxStates int) (ok bool, witness []alphabet.Symbol, fit bool, err error) {
	return containedInMaterialized(ctx, a, b, maxStates)
}

func containedInMaterialized(ctx context.Context, a, b *NFA, cap int) (bool, []alphabet.Symbol, bool, error) {
	ctx, span := obs.StartSpan(ctx, "automata.contained_in_materialized")
	defer span.End()
	meter := budget.Enter(ctx, "automata.contained_in_materialized")
	ea := a.RemoveEpsilon()
	if ea.Start() == NoState {
		return true, nil, true, nil
	}

	// When a's symbols are already interned in b's alphabet — the common
	// Theorem 6 shape, where both sides live over the instance alphabet —
	// determinize b in place: the subset construction then reuses any
	// memo tables b already carries instead of rebuilding them on a
	// lifted copy. Only a genuine alphabet mismatch (or a start-less b,
	// whose empty language needs a synthetic start) pays for the lift.
	u := b.Alphabet()
	det := b
	if b.Start() == NoState || !a.Alphabet().SubsetOf(b.Alphabet()) {
		u = alphabet.Union(a.Alphabet(), b.Alphabet())
		lifted := NewNFA(u)
		mm := CopyInto(lifted, b)
		if b.Start() != NoState {
			lifted.SetStart(mm[b.Start()])
		} else {
			lifted.SetStart(lifted.AddState())
		}
		det = lifted
	}
	var bd *DFA
	if cap > 0 {
		d, fit, err := DeterminizeCapped(ctx, det, cap)
		if err != nil {
			return false, nil, false, err
		}
		if !fit {
			return false, nil, false, nil
		}
		bd = d
	} else {
		d, err := DeterminizeContext(ctx, det)
		if err != nil {
			return false, nil, false, err
		}
		bd = d
	}
	bt := bd.Totalize()

	// Map a's symbols into the union alphabet (total by construction).
	aToU := make([]alphabet.Symbol, ea.Alphabet().Len())
	for _, x := range ea.Alphabet().Symbols() {
		aToU[x] = u.Lookup(ea.Alphabet().Name(x))
	}

	choice := strategy.From(ctx).KernelChoice(bt.NumStates(), u.Len())
	strategy.Record(ctx, span, "kernel", choice)
	var tab *denseTab
	if choice == strategy.ChoiceDense {
		tab = bt.denseTables()
	}
	next := func(db State, x alphabet.Symbol) State {
		if tab != nil {
			return State(tab.step(int32(db), x))
		}
		return bt.Next(db, x)
	}
	rejects := func(db State) bool {
		if tab != nil {
			return !tab.accepting(int32(db))
		}
		return !bt.Accepting(db)
	}

	type node struct {
		sa     State
		db     State
		parent int32
		sym    alphabet.Symbol
	}
	nodes := []node{{ea.Start(), bt.Start(), -1, alphabet.None}}
	seen := make([]bool, ea.NumStates()*bt.NumStates())
	seen[int(ea.Start())*bt.NumStates()+int(bt.Start())] = true

	counterexample := func(i int32) []alphabet.Symbol {
		var w []alphabet.Symbol
		for ; nodes[i].parent >= 0; i = nodes[i].parent {
			w = append(w, nodes[i].sym)
		}
		for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
			w[l], w[r] = w[r], w[l]
		}
		return w
	}

	nb := bt.NumStates()
	charged := 0
	for i := 0; i < len(nodes); i++ {
		// Charge the product nodes materialized since the last check; the
		// charges land batched per dequeued row, not per transition.
		if err := meter.AddStates(len(nodes) - charged); err != nil {
			return false, nil, false, err
		}
		charged = len(nodes)
		cur := nodes[i]
		if ea.Accepting(cur.sa) && rejects(cur.db) {
			return false, counterexample(int32(i)), true, nil
		}
		// Sorted symbol order keeps the counterexample deterministic,
		// matching ContainedInContext's BFS rule.
		for _, x := range ea.OutSymbolsSorted(cur.sa) {
			nd := next(cur.db, aToU[x])
			if nd == NoState {
				continue // unreachable on a total DFA; kept for safety
			}
			for _, ta := range ea.Successors(cur.sa, x) {
				k := int(ta)*nb + int(nd)
				if seen[k] {
					continue
				}
				seen[k] = true
				nodes = append(nodes, node{ta, nd, int32(i), x})
			}
		}
	}
	return true, nil, true, nil
}
