package automata

import (
	"context"
	"fmt"
	"sync/atomic"

	"regexrw/internal/alphabet"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
	"regexrw/internal/strategy"
)

// DFA is a deterministic finite automaton. Transitions are stored in a
// dense table indexed by state and symbol; a missing transition is
// NoState (the implicit dead state). Create DFAs with NewDFA or by
// determinizing an NFA.
type DFA struct {
	alpha  *alphabet.Alphabet
	start  State
	accept []bool
	// trans[s] is a row of length alpha.Len(); trans[s][x] is the
	// x-successor of s or NoState.
	trans [][]State

	// gen counts structural mutations; dense caches the flat []int32
	// transition table behind an atomic pointer keyed by gen, the same
	// idiom as the NFA's closure memo (cache.go, dense.go).
	gen   int64
	dense atomic.Pointer[denseBox]
}

// NewDFA returns an empty DFA over the given alphabet.
func NewDFA(a *alphabet.Alphabet) *DFA {
	d := &DFA{alpha: a, start: NoState}
	debugValidateDFA(d)
	return d
}

// Alphabet returns the automaton's alphabet.
func (d *DFA) Alphabet() *alphabet.Alphabet { return d.alpha }

// AddState adds a fresh non-accepting state with no transitions.
func (d *DFA) AddState() State {
	d.invalidateDense()
	row := make([]State, d.alpha.Len())
	for i := range row {
		row[i] = NoState
	}
	d.trans = append(d.trans, row)
	d.accept = append(d.accept, false)
	return State(len(d.accept) - 1)
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.accept) }

// Start returns the start state.
func (d *DFA) Start() State { return d.start }

// SetStart sets the start state.
func (d *DFA) SetStart(s State) { d.checkState(s); d.start = s }

// Accepting reports whether s is accepting.
func (d *DFA) Accepting(s State) bool { d.checkState(s); return d.accept[s] }

// SetAccept marks s accepting or not.
func (d *DFA) SetAccept(s State, accepting bool) {
	d.checkState(s)
	d.invalidateDense()
	d.accept[s] = accepting
}

// SetTransition sets the x-successor of from. Overwrites any previous one.
func (d *DFA) SetTransition(from State, x alphabet.Symbol, to State) {
	d.checkState(from)
	d.checkState(to)
	d.invalidateDense()
	d.trans[from][x] = to
}

// Next returns the x-successor of s, or NoState.
func (d *DFA) Next(s State, x alphabet.Symbol) State {
	d.checkState(s)
	if int(x) >= len(d.trans[s]) {
		// Symbol interned into the alphabet after this state's row was
		// allocated: it has no transition.
		return NoState
	}
	return d.trans[s][x]
}

// Run returns the state reached from s on word, or NoState if the run
// dies. When the dense transition table is cached and current
// (EnsureDense, or any dense kernel having run on this DFA), the run
// takes the dense kernel: one flat-array load per symbol.
func (d *DFA) Run(s State, word []alphabet.Symbol) State {
	d.checkState(s)
	if tab := d.denseCached(); tab != nil {
		return tab.runDense(s, word)
	}
	cur := s
	for _, x := range word {
		cur = d.Next(cur, x)
		if cur == NoState {
			return NoState
		}
	}
	return cur
}

// Accepts reports whether the DFA accepts word.
func (d *DFA) Accepts(word []alphabet.Symbol) bool {
	if d.start == NoState {
		return false
	}
	s := d.Run(d.start, word)
	return s != NoState && d.accept[s]
}

// AcceptsNames is Accepts with symbol names.
func (d *DFA) AcceptsNames(names ...string) bool {
	word := make([]alphabet.Symbol, len(names))
	for i, name := range names {
		s := d.alpha.Lookup(name)
		if s == alphabet.None {
			return false
		}
		word[i] = s
	}
	return d.Accepts(word)
}

// NumTransitions counts the defined transitions.
func (d *DFA) NumTransitions() int {
	total := 0
	for _, row := range d.trans {
		for _, t := range row {
			if t != NoState {
				total++
			}
		}
	}
	return total
}

// IsTotal reports whether every state has a transition on every symbol.
func (d *DFA) IsTotal() bool {
	for _, row := range d.trans {
		if len(row) < d.alpha.Len() {
			return false
		}
		for _, t := range row {
			if t == NoState {
				return false
			}
		}
	}
	return true
}

// Totalize returns an equivalent total DFA, adding a dead sink state if
// any transition is missing.
func (d *DFA) Totalize() *DFA {
	out := d.Clone()
	// Re-pad rows in case symbols were interned after states were added.
	for s := range out.trans {
		for len(out.trans[s]) < out.alpha.Len() {
			out.trans[s] = append(out.trans[s], NoState)
		}
	}
	if out.IsTotal() {
		debugValidateDFA(out)
		return out
	}
	sink := out.AddState()
	for s := range out.trans {
		for x := range out.trans[s] {
			if out.trans[s][x] == NoState {
				out.trans[s][x] = sink
			}
		}
	}
	debugValidateDFA(out)
	return out
}

// Complement returns a DFA accepting exactly the words over the
// alphabet that d rejects.
func (d *DFA) Complement() *DFA {
	out := d.Totalize()
	for s := range out.accept {
		out.accept[s] = !out.accept[s]
	}
	debugValidateDFA(out)
	return out
}

// Clone returns a deep copy (sharing the alphabet).
func (d *DFA) Clone() *DFA {
	out := NewDFA(d.alpha)
	out.start = d.start
	out.accept = append([]bool(nil), d.accept...)
	out.trans = make([][]State, len(d.trans))
	for s, row := range d.trans {
		out.trans[s] = append([]State(nil), row...)
	}
	debugValidateDFA(out)
	return out
}

// NFA converts the DFA to an equivalent NFA.
func (d *DFA) NFA() *NFA {
	n := NewNFA(d.alpha)
	n.AddStates(d.NumStates())
	if d.start != NoState {
		n.SetStart(d.start)
	}
	for s := 0; s < d.NumStates(); s++ { //budget:exempt size-preserving conversion: the NFA mirrors an already-admitted DFA state for state
		n.SetAccept(State(s), d.accept[s])
		for x, t := range d.trans[s] {
			if t != NoState {
				n.AddTransition(State(s), alphabet.Symbol(x), t)
			}
		}
	}
	debugValidateNFA(n)
	return n
}

// Reachable returns an equivalent DFA keeping only states reachable from
// the start.
func (d *DFA) Reachable() *DFA {
	if d.start == NoState {
		out := NewDFA(d.alpha)
		out.SetStart(out.AddState())
		debugValidateDFA(out)
		return out
	}
	keep := make([]State, d.NumStates())
	for i := range keep {
		keep[i] = NoState
	}
	out := NewDFA(d.alpha)
	keep[d.start] = out.AddState()
	queue := []State{d.start}
	for len(queue) > 0 { //budget:exempt the output is a subset of an already-admitted DFA's states; no amplification
		s := queue[0]
		queue = queue[1:]
		out.SetAccept(keep[s], d.accept[s])
		for x, t := range d.trans[s] {
			if t == NoState {
				continue
			}
			if keep[t] == NoState {
				keep[t] = out.AddState()
				queue = append(queue, t)
			}
			out.SetTransition(keep[s], alphabet.Symbol(x), keep[t])
		}
	}
	out.SetStart(keep[d.start])
	debugValidateDFA(out)
	return out
}

// Minimize returns the canonical minimal DFA for the language of d
// (partition refinement on the totalized reachable automaton). The
// result is total, so it may include one dead state; callers that want
// the dead state removed should follow with TrimPartial.
func (d *DFA) Minimize() *DFA { //invariantcall:checked delegates to MinimizeContext, which validates
	out, _ := d.MinimizeContext(context.Background()) // a background context never cancels and carries no budget
	return out
}

// MinimizeContext is Minimize with cooperative cancellation and a
// fault-injection surface (stage "automata.minimize"). Minimization
// never materializes more states than its input has, so the meter is
// only ticked — no states are charged — but the refinement worklist can
// still run long on large inputs and should abort when the pipeline's
// deadline fires.
//
// The partition refinement runs on the sparse (map-grouped) or dense
// (CSR + permutation-array) kernel as selected by the strategy
// dispatcher from the automaton's states × |Σ| density; both arms
// compute the unique coarsest stable partition, and the final
// Reachable() renumbers canonically (BFS in symbol order), so the
// result is byte-identical either way — which internal/oracle checks
// differentially. The chosen kernel is recorded on the span
// (`strategy` attribute) and the strategy.kernel.* counters.
func (d *DFA) MinimizeContext(ctx context.Context) (*DFA, error) {
	ctx, span := obs.StartSpan(ctx, "automata.minimize")
	defer span.End()
	meter := budget.Enter(ctx, "automata.minimize")
	t := d.Reachable().Totalize()
	nStates := t.NumStates()
	nSyms := t.alpha.Len()
	if nStates == 0 {
		out := NewDFA(d.alpha)
		out.SetStart(out.AddState())
		debugValidateDFA(out)
		return out, nil
	}

	choice := strategy.From(ctx).KernelChoice(nStates, nSyms)
	strategy.Record(ctx, span, "kernel", choice)
	var members [][]State
	var class []int
	var err error
	if choice == strategy.ChoiceDense {
		members, class, err = t.refineDense(meter, t.denseTables())
	} else {
		members, class, err = t.refineSparse(meter)
	}
	if err != nil {
		return nil, err
	}

	// Build the quotient automaton. The quotient is never larger than
	// the input, but it is fresh allocation under the caller's budget,
	// so it charges the minimize meter like the refinement above. The
	// charges are batched per class row (one AddTransitions(nSyms) per
	// class), never per transition.
	out := NewDFA(d.alpha)
	for range members {
		if err := meter.AddStates(1); err != nil {
			return nil, err
		}
		out.AddState()
	}
	for c, states := range members {
		repr := states[0]
		out.SetAccept(State(c), t.accept[repr])
		if err := meter.AddTransitions(nSyms); err != nil {
			return nil, err
		}
		for x, to := range t.trans[repr] {
			out.SetTransition(State(c), alphabet.Symbol(x), State(class[to]))
		}
	}
	out.SetStart(State(class[t.start]))
	quotient := out.Reachable()
	debugValidateDFA(quotient)
	return quotient, nil
}

// MinimizeBrzozowski returns the minimal trim DFA for the language of d
// via Brzozowski's double-reversal: determinize the reversal, reverse
// again, determinize again. It serves as an independently-derived
// oracle for Minimize in property tests (and as an ablation: its
// intermediate automata can be exponentially larger than Hopcroft-style
// partition refinement ever materializes).
func (d *DFA) MinimizeBrzozowski() *DFA {
	out := reverseDeterminize(reverseDeterminize(d.Reachable())).TrimPartial()
	debugValidateDFA(out)
	return out
}

// reverseDeterminize returns a DFA for the reversal of L(d) by subset
// construction over reversed transitions: the start subset is d's
// accepting set, δ'(S, x) = { p : δ(p, x) ∈ S }, and a subset accepts
// iff it contains d's start state. Determinizing the reversal of an
// accessible DFA yields a minimal DFA for the reversed language
// (Brzozowski), which is why two applications minimize.
func reverseDeterminize(d *DFA) *DFA {
	out := NewDFA(d.alpha)
	n := d.NumStates()
	// Reverse transition table: rev[x][t] = sources reaching t on x.
	rev := make([][][]State, d.alpha.Len())
	for x := range rev {
		rev[x] = make([][]State, n)
	}
	for s := 0; s < n; s++ {
		for x, t := range d.trans[s] {
			if t != NoState {
				rev[x][t] = append(rev[x][t], State(s))
			}
		}
	}

	start := newBitset(n)
	for s := 0; s < n; s++ {
		if d.accept[s] {
			start.add(s)
		}
	}
	// Interner ids double as output DFA state numbers: both are allocated
	// in discovery order (cache.go).
	it := newInterner()
	defer it.flushStats()
	newSubset := func(set *bitset) State {
		s := out.AddState()
		out.SetAccept(s, d.start != NoState && set.has(int(d.start)))
		return s
	}
	it.intern(start)
	out.SetStart(newSubset(start))
	for i := 0; i < it.len(); i++ { //budget:exempt Brzozowski reference path, reached only from test-only MinimizeBrzozowski; production minimization is MinimizeContext, which meters
		set := it.at(i)
		for x := 0; x < d.alpha.Len(); x++ {
			next := newBitset(n)
			for _, t := range set.slice() {
				for _, p := range rev[x][t] {
					next.add(int(p))
				}
			}
			if next.empty() {
				continue
			}
			id, isNew := it.intern(next)
			if isNew {
				newSubset(next)
			}
			out.SetTransition(State(i), alphabet.Symbol(x), State(id))
		}
	}
	return out
}

// TrimPartial returns an equivalent partial DFA with dead states (states
// from which no accepting state is reachable) removed; the start state
// is always kept.
func (d *DFA) TrimPartial() *DFA {
	n := d.NumStates()
	// Co-reachability.
	rev := make([][]State, n)
	for s := 0; s < n; s++ {
		for _, to := range d.trans[s] {
			if to != NoState {
				rev[to] = append(rev[to], State(s))
			}
		}
	}
	live := newBitset(n)
	var stack []State
	for s := 0; s < n; s++ {
		if d.accept[s] {
			live.add(s)
			stack = append(stack, State(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !live.has(int(p)) {
				live.add(int(p))
				stack = append(stack, p)
			}
		}
	}
	keep := make([]State, n)
	out := NewDFA(d.alpha)
	for s := 0; s < n; s++ { //budget:exempt keeps a subset of an already-admitted DFA's states; no amplification
		if live.has(s) || State(s) == d.start {
			keep[s] = out.AddState()
			out.SetAccept(keep[s], d.accept[s])
		} else {
			keep[s] = NoState
		}
	}
	for s := 0; s < n; s++ { //budget:exempt copies a subset of an already-admitted DFA's transitions; no amplification
		if keep[s] == NoState {
			continue
		}
		for x, to := range d.trans[s] {
			if to != NoState && keep[to] != NoState {
				out.SetTransition(keep[s], alphabet.Symbol(x), keep[to])
			}
		}
	}
	if d.start != NoState {
		out.SetStart(keep[d.start])
	} else {
		out.SetStart(out.AddState())
	}
	trimmed := out.Reachable()
	debugValidateDFA(trimmed)
	return trimmed
}

func (d *DFA) checkState(s State) {
	if s < 0 || int(s) >= len(d.accept) {
		panic(fmt.Sprintf("automata: state %d out of range [0,%d)", s, len(d.accept)))
	}
}
