package automata

import (
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
)

func sym(al *alphabet.Alphabet, name string) alphabet.Symbol { return al.Intern(name) }

func TestWordLanguage(t *testing.T) {
	al := ab()
	w := ParseWord(al, "a b a")
	n := WordLanguage(al, w)
	if !n.Accepts(w) {
		t.Fatal("WordLanguage rejects its own word")
	}
	if n.AcceptsNames("a", "b") || n.AcceptsNames("a", "b", "a", "a") || n.AcceptsNames() {
		t.Fatal("WordLanguage accepts other words")
	}
}

func TestUnion(t *testing.T) {
	al := ab()
	u := Union(WordLanguage(al, ParseWord(al, "a")), WordLanguage(al, ParseWord(al, "b b")))
	for _, tc := range []struct {
		w    []string
		want bool
	}{
		{[]string{"a"}, true}, {[]string{"b", "b"}, true}, {[]string{"b"}, false}, {nil, false}, {[]string{"a", "b"}, false},
	} {
		if got := u.AcceptsNames(tc.w...); got != tc.want {
			t.Errorf("union Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestUnionAcrossAlphabets(t *testing.T) {
	alA := alphabet.FromNames("a")
	alB := alphabet.FromNames("b")
	u := Union(WordLanguage(alA, ParseWord(alA, "a")), WordLanguage(alB, ParseWord(alB, "b")))
	if !u.AcceptsNames("a") || !u.AcceptsNames("b") {
		t.Fatal("union across alphabets broken")
	}
	if u.Alphabet().Len() != 2 {
		t.Fatalf("union alphabet has %d symbols, want 2", u.Alphabet().Len())
	}
}

func TestConcat(t *testing.T) {
	al := ab()
	c := Concat(WordLanguage(al, ParseWord(al, "a")), WordLanguage(al, ParseWord(al, "b")))
	if !c.AcceptsNames("a", "b") {
		t.Fatal("concat rejects ab")
	}
	for _, w := range [][]string{[]string{"a"}, {"b"}, nil, {"b", "a"}, {"a", "b", "b"}} {
		if c.AcceptsNames(w...) {
			t.Fatalf("concat accepts %v", w)
		}
	}
}

func TestConcatWithEpsilonOperand(t *testing.T) {
	al := ab()
	c := Concat(EpsilonLanguage(al), WordLanguage(al, ParseWord(al, "a")))
	if !c.AcceptsNames("a") || c.AcceptsNames() {
		t.Fatal("ε·a wrong")
	}
	c2 := Concat(WordLanguage(al, ParseWord(al, "a")), EpsilonLanguage(al))
	if !c2.AcceptsNames("a") || c2.AcceptsNames("a", "a") {
		t.Fatal("a·ε wrong")
	}
}

func TestConcatWithEmptyOperand(t *testing.T) {
	al := ab()
	c := Concat(EmptyLanguage(al), WordLanguage(al, ParseWord(al, "a")))
	if !c.IsEmpty() {
		t.Fatal("∅·a should be empty")
	}
	c2 := Concat(WordLanguage(al, ParseWord(al, "a")), EmptyLanguage(al))
	if !c2.IsEmpty() {
		t.Fatal("a·∅ should be empty")
	}
}

func TestStar(t *testing.T) {
	al := ab()
	s := Star(WordLanguage(al, ParseWord(al, "a b")))
	for _, tc := range []struct {
		w    []string
		want bool
	}{
		{nil, true}, {[]string{"a", "b"}, true}, {[]string{"a", "b", "a", "b"}, true},
		{[]string{"a"}, false}, {[]string{"b", "a"}, false}, {[]string{"a", "b", "a"}, false},
	} {
		if got := s.AcceptsNames(tc.w...); got != tc.want {
			t.Errorf("star Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestStarOfEmptyIsEpsilon(t *testing.T) {
	al := ab()
	s := Star(EmptyLanguage(al))
	if !s.AcceptsNames() {
		t.Fatal("∅* must accept ε")
	}
	if s.AcceptsNames("a") {
		t.Fatal("∅* must accept only ε")
	}
}

func TestOptional(t *testing.T) {
	al := ab()
	o := Optional(WordLanguage(al, ParseWord(al, "a")))
	if !o.AcceptsNames() || !o.AcceptsNames("a") || o.AcceptsNames("a", "a") {
		t.Fatal("a? wrong")
	}
}

func TestPlus(t *testing.T) {
	al := ab()
	p := Plus(WordLanguage(al, ParseWord(al, "a")))
	if p.AcceptsNames() {
		t.Fatal("a+ accepts ε")
	}
	if !p.AcceptsNames("a") || !p.AcceptsNames("a", "a", "a") {
		t.Fatal("a+ rejects a^n")
	}
	if p.AcceptsNames("b") {
		t.Fatal("a+ accepts b")
	}
}

func TestIntersect(t *testing.T) {
	al := ab()
	a := al.Lookup("a")
	// (a+b)* a  ∩  a (a+b)*  =  words starting and ending with a.
	startsA := Concat(SymbolLanguage(al, a), Star(UniversalLanguage(al)))
	endsA := Concat(Star(UniversalLanguage(al)), SymbolLanguage(al, a))
	i := Intersect(startsA, endsA)
	for _, tc := range []struct {
		w    []string
		want bool
	}{
		{[]string{"a"}, true}, {[]string{"a", "a"}, true}, {[]string{"a", "b", "a"}, true},
		{[]string{"a", "b"}, false}, {[]string{"b", "a"}, false}, {nil, false},
	} {
		if got := i.AcceptsNames(tc.w...); got != tc.want {
			t.Errorf("intersect Accepts(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestIntersectDisjoint(t *testing.T) {
	al := ab()
	i := Intersect(WordLanguage(al, ParseWord(al, "a")), WordLanguage(al, ParseWord(al, "b")))
	if !i.IsEmpty() {
		t.Fatal("a ∩ b should be empty")
	}
}

func TestIntersectEpsilon(t *testing.T) {
	al := ab()
	i := Intersect(EpsilonLanguage(al), Star(WordLanguage(al, ParseWord(al, "a"))))
	if !i.AcceptsNames() {
		t.Fatal("ε ∩ a* must accept ε")
	}
	if i.AcceptsNames("a") {
		t.Fatal("ε ∩ a* must not accept a")
	}
}

func TestReverse(t *testing.T) {
	al := ab()
	n := WordLanguage(al, ParseWord(al, "a b b"))
	r := Reverse(n)
	if !r.AcceptsNames("b", "b", "a") {
		t.Fatal("reverse rejects bba")
	}
	if r.AcceptsNames("a", "b", "b") {
		t.Fatal("reverse accepts original word")
	}
}

func TestReverseInvolution(t *testing.T) {
	al := ab()
	n := Concat(Star(SymbolLanguage(al, al.Lookup("a"))), SymbolLanguage(al, al.Lookup("b")))
	rr := Reverse(Reverse(n))
	if !Equivalent(n, rr) {
		t.Fatal("reverse twice is not identity")
	}
}

func TestDifference(t *testing.T) {
	al := ab()
	aStar := Star(SymbolLanguage(al, al.Lookup("a")))
	aPlus := Plus(SymbolLanguage(al, al.Lookup("a")))
	d := Difference(aStar, aPlus)
	// a* \ a+ = {ε}
	if !d.AcceptsNames() || d.AcceptsNames("a") {
		t.Fatal("a* \\ a+ should be exactly {ε}")
	}
}

func TestDifferenceAcrossAlphabets(t *testing.T) {
	// L(a) over {a,b} minus L(a) over {a} must be empty even though the
	// alphabets differ.
	alAB := ab()
	alA := alphabet.FromNames("a")
	d := Difference(WordLanguage(alAB, ParseWord(alAB, "a")), WordLanguage(alA, ParseWord(alA, "a")))
	if !d.IsEmpty() {
		t.Fatal("a \\ a should be empty across alphabets")
	}
}

func TestUniversalLanguage(t *testing.T) {
	u := UniversalLanguage(ab())
	for _, w := range [][]string{nil, {"a"}, {"b", "b", "a"}} {
		if !u.AcceptsNames(w...) {
			t.Fatalf("universal language rejected %v", w)
		}
	}
}

// randomNFA builds a random ε-free NFA over the alphabet for property tests.
func randomNFA(r *rand.Rand, al *alphabet.Alphabet, maxStates int) *NFA {
	n := NewNFA(al)
	nStates := 1 + r.Intn(maxStates)
	n.AddStates(nStates)
	n.SetStart(0)
	for s := 0; s < nStates; s++ {
		n.SetAccept(State(s), r.Intn(3) == 0)
		for _, x := range al.Symbols() {
			k := r.Intn(3)
			for i := 0; i < k; i++ {
				n.AddTransition(State(s), x, State(r.Intn(nStates)))
			}
		}
	}
	return n
}

func randomWord(r *rand.Rand, al *alphabet.Alphabet, maxLen int) []alphabet.Symbol {
	w := make([]alphabet.Symbol, r.Intn(maxLen+1))
	for i := range w {
		w[i] = alphabet.Symbol(r.Intn(al.Len()))
	}
	return w
}

// Property: determinization preserves acceptance on random words.
func TestPropertyDeterminizePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	al := ab()
	for trial := 0; trial < 50; trial++ {
		n := randomNFA(r, al, 6)
		d := Determinize(n)
		m := d.Minimize()
		for i := 0; i < 40; i++ {
			w := randomWord(r, al, 8)
			want := n.Accepts(w)
			if d.Accepts(w) != want {
				t.Fatalf("trial %d: determinize disagrees on %v", trial, FormatWord(al, w))
			}
			if m.Accepts(w) != want {
				t.Fatalf("trial %d: minimize disagrees on %v", trial, FormatWord(al, w))
			}
		}
	}
}

// Property: minimal DFA is no larger than the determinized DFA, and
// re-minimizing is idempotent in size.
func TestPropertyMinimizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	al := ab()
	for trial := 0; trial < 30; trial++ {
		n := randomNFA(r, al, 7)
		d := Determinize(n)
		m := d.Minimize()
		if m.NumStates() > d.Totalize().NumStates() {
			t.Fatalf("minimize grew automaton: %d > %d", m.NumStates(), d.Totalize().NumStates())
		}
		m2 := m.Minimize()
		if m2.NumStates() != m.NumStates() {
			t.Fatalf("minimize not idempotent: %d then %d", m.NumStates(), m2.NumStates())
		}
	}
}

// Property: complement flips acceptance for every word.
func TestPropertyComplement(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	al := ab()
	for trial := 0; trial < 30; trial++ {
		n := randomNFA(r, al, 6)
		c := Determinize(n).Complement()
		for i := 0; i < 40; i++ {
			w := randomWord(r, al, 8)
			if n.Accepts(w) == c.Accepts(w) {
				t.Fatalf("complement agrees with original on %v", FormatWord(al, w))
			}
		}
	}
}

// Property: intersection accepts exactly the words both operands accept.
func TestPropertyIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	al := ab()
	for trial := 0; trial < 30; trial++ {
		n1 := randomNFA(r, al, 5)
		n2 := randomNFA(r, al, 5)
		i := Intersect(n1, n2)
		for k := 0; k < 40; k++ {
			w := randomWord(r, al, 8)
			want := n1.Accepts(w) && n2.Accepts(w)
			if i.Accepts(w) != want {
				t.Fatalf("intersect wrong on %v", FormatWord(al, w))
			}
		}
	}
}

// Property: union and concat agree with word-level semantics.
func TestPropertyUnionConcat(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	al := ab()
	for trial := 0; trial < 20; trial++ {
		n1 := randomNFA(r, al, 4)
		n2 := randomNFA(r, al, 4)
		u := Union(n1, n2)
		for k := 0; k < 30; k++ {
			w := randomWord(r, al, 6)
			if u.Accepts(w) != (n1.Accepts(w) || n2.Accepts(w)) {
				t.Fatalf("union wrong on %v", FormatWord(al, w))
			}
		}
		c := Concat(n1, n2)
		for k := 0; k < 30; k++ {
			w := randomWord(r, al, 6)
			want := false
			for cut := 0; cut <= len(w) && !want; cut++ {
				if n1.Accepts(w[:cut]) && n2.Accepts(w[cut:]) {
					want = true
				}
			}
			if c.Accepts(w) != want {
				t.Fatalf("concat wrong on %v: got %v want %v", FormatWord(al, w), c.Accepts(w), want)
			}
		}
	}
}
