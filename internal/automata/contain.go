package automata

import (
	"context"

	"regexrw/internal/alphabet"
	"regexrw/internal/budget"
	"regexrw/internal/obs"
)

// IsEmpty reports whether the NFA accepts no word.
func (n *NFA) IsEmpty() bool {
	return n.shortestAccepted() == nil && !n.Accepts(nil)
}

// ShortestWord returns a shortest accepted word, or (nil, false) if the
// language is empty. The empty word is reported as ([], true).
func (n *NFA) ShortestWord() ([]alphabet.Symbol, bool) {
	if n.Accepts(nil) {
		return []alphabet.Symbol{}, true
	}
	w := n.shortestAccepted()
	if w == nil {
		return nil, false
	}
	return w, true
}

// shortestAccepted returns a shortest nonempty accepted word via BFS
// over states, or nil if no nonempty word is accepted and ε is not
// accepted either. (If only ε is accepted it returns nil; callers use
// Accepts(nil) to distinguish.)
func (n *NFA) shortestAccepted() []alphabet.Symbol {
	if n.Start() == NoState {
		return nil
	}
	e := n
	if n.HasEpsilon() {
		e = n.RemoveEpsilon()
	}
	type back struct {
		prev State
		sym  alphabet.Symbol
	}
	visited := make([]bool, e.NumStates())
	parents := make([]back, e.NumStates())
	queue := []State{e.Start()}
	visited[e.Start()] = true
	parents[e.Start()] = back{NoState, alphabet.None}
	var goal State = NoState
	if e.Accepting(e.Start()) {
		goal = e.Start()
	}
search:
	for len(queue) > 0 && goal == NoState {
		s := queue[0]
		queue = queue[1:]
		// Sorted symbol order makes the returned witness a deterministic
		// function of the automaton: first shortest, then lexicographically
		// least by symbol id at each BFS level.
		for _, x := range e.OutSymbolsSorted(s) {
			for _, t := range e.Successors(s, x) {
				if visited[t] {
					continue
				}
				visited[t] = true
				parents[t] = back{s, x}
				if e.Accepting(t) {
					goal = t
					break search
				}
				queue = append(queue, t)
			}
		}
	}
	if goal == NoState || goal == e.Start() {
		return nil
	}
	var word []alphabet.Symbol
	for s := goal; parents[s].prev != NoState; s = parents[s].prev {
		word = append(word, parents[s].sym)
	}
	for i, j := 0, len(word)-1; i < j; i, j = i+1, j-1 {
		word[i], word[j] = word[j], word[i]
	}
	return word
}

// ContainedIn reports whether L(a) ⊆ L(b), using the on-the-fly
// complement of b that the paper's Theorem 6 relies on: b is
// determinized lazily while searching the product with a, so the full
// subset automaton of b is materialized only as far as the search
// reaches. If the containment fails, the returned word is a shortest
// counterexample in L(a) \ L(b).
func ContainedIn(a, b *NFA) (bool, []alphabet.Symbol) {
	ok, cex, _ := ContainedInContext(context.Background(), a, b)
	return ok, cex
}

// ContainedInContext is ContainedIn with cooperative cancellation and
// resource governance: the product search explores up to |a| · 2^|b|
// configurations (the lazy complement of b), so each frontier node and
// interned b-subset is charged as a state against the context's budget
// (stage "automata.contained_in"). On cancellation the returned error
// wraps ctx.Err(); on exhaustion it is a *budget.ExceededError; either
// way the boolean is meaningless.
func ContainedInContext(ctx context.Context, a, b *NFA) (bool, []alphabet.Symbol, error) {
	ctx, span := obs.StartSpan(ctx, "automata.contained_in")
	defer span.End()
	meter := budget.Enter(ctx, "automata.contained_in")
	ea := a.RemoveEpsilon()
	eb := b.RemoveEpsilon()
	if ea.Start() == NoState {
		return true, nil, nil
	}

	// Map a's symbols into b's alphabet by name (None = b never uses it).
	aToB := make([]alphabet.Symbol, ea.Alphabet().Len())
	for _, x := range ea.Alphabet().Symbols() {
		aToB[x] = eb.Alphabet().Lookup(ea.Alphabet().Name(x))
	}

	nb := eb.NumStates()
	type node struct {
		sa     State
		bid    int // interned b-subset id
		parent int
		sym    alphabet.Symbol
	}

	// Intern b-subsets once through the shared hash interner (cache.go;
	// no string-key allocation per probe): the search then works with
	// dense ids, and successor subsets are memoized per (subset id,
	// symbol), so each subset's transition on each symbol is computed
	// exactly once no matter how many a-states share it. The b-side
	// closure/stepper memo supplies per-state successor sets and the
	// accepting set, shared with any other pipeline stage using eb.
	bMemo := eb.memoTables()
	it := newInterner()
	defer it.flushStatsSpan(span)
	type step struct {
		bid int
		x   alphabet.Symbol
	}
	succCache := map[step]int{}
	successor := func(bid int, x alphabet.Symbol) int {
		k := step{bid, x}
		if id, ok := succCache[k]; ok {
			return id
		}
		next := newBitset(nb)
		if xb := aToB[x]; xb != alphabet.None && int(xb) < bMemo.alphaLen {
			for _, q := range it.at(bid).slice() {
				if tbl := bMemo.step[q]; tbl != nil {
					if st := tbl[xb]; st != nil {
						next.unionWith(st)
					}
				}
			}
		}
		id, _ := it.intern(next)
		succCache[k] = id
		return id
	}

	startB := newBitset(nb)
	if eb.Start() != NoState {
		startB.add(int(eb.Start()))
	}
	startID, _ := it.intern(startB)

	acceptsSubset := func(bid int) bool {
		return it.at(bid).intersects(bMemo.accepting)
	}

	type cfg struct {
		sa  State
		bid int
	}
	nodes := []node{{ea.Start(), startID, -1, alphabet.None}}
	seen := map[cfg]bool{{ea.Start(), startID}: true}

	counterexample := func(i int) []alphabet.Symbol {
		var w []alphabet.Symbol
		for ; nodes[i].parent >= 0; i = nodes[i].parent {
			w = append(w, nodes[i].sym)
		}
		for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
			w[l], w[r] = w[r], w[l]
		}
		return w
	}

	charged := 0
	for i := 0; i < len(nodes); i++ {
		// Charge the frontier nodes and interned b-subsets materialized
		// since the last check (new ones are charged when their turn comes).
		if err := meter.AddStates(len(nodes) + it.len() - charged); err != nil {
			return false, nil, err
		}
		charged = len(nodes) + it.len()
		cur := nodes[i]
		if ea.Accepting(cur.sa) && !acceptsSubset(cur.bid) {
			return false, counterexample(i), nil
		}
		// Sorted symbol order keeps the counterexample deterministic:
		// among equal-length candidates the BFS discovers the
		// lexicographically least (by symbol id) first.
		for _, x := range ea.OutSymbolsSorted(cur.sa) {
			nextID := successor(cur.bid, x)
			for _, ta := range ea.Successors(cur.sa, x) {
				c := cfg{ta, nextID}
				if seen[c] {
					continue
				}
				seen[c] = true
				nodes = append(nodes, node{ta, nextID, i, x})
			}
		}
	}
	return true, nil, nil
}

// ContainedInMaterialized decides L(a) ⊆ L(b) the naive way: fully
// determinize and complement b, then intersect with a and test
// emptiness. It exists as the baseline the paper's on-the-fly check is
// compared against (Theorem 6 ablation); results always agree with
// ContainedIn.
func ContainedInMaterialized(a, b *NFA) bool {
	u := alphabet.Union(a.Alphabet(), b.Alphabet())
	lifted := NewNFA(u)
	m := CopyInto(lifted, b)
	if b.Start() != NoState {
		lifted.SetStart(m[b.Start()])
	} else {
		lifted.SetStart(lifted.AddState())
	}
	comp := Determinize(lifted).Complement().NFA()
	return Intersect(a, comp).IsEmpty()
}

// Equivalent reports whether L(a) = L(b).
func Equivalent(a, b *NFA) bool {
	ok1, _ := ContainedIn(a, b)
	if !ok1 {
		return false
	}
	ok2, _ := ContainedIn(b, a)
	return ok2
}

// EquivalentDFA reports whether two DFAs accept the same language.
func EquivalentDFA(a, b *DFA) bool {
	return Equivalent(a.NFA(), b.NFA())
}
