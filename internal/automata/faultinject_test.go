// Fault-injection sweep and cancellation tests for the automata layer.
// External test package: building inputs from regular expressions needs
// the regex package, which imports automata.
package automata_test

import (
	"context"
	"errors"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/budget/faultinject"
	"regexrw/internal/regex"
)

// automataPipeline exercises every metered construction of the package:
// subset construction, minimization, product, DFA union, complement and
// the on-the-fly containment frontier. The containment holds, so the
// frontier is explored exhaustively and the run's check surface does
// not depend on counterexample discovery order.
func automataPipeline(ctx context.Context) error {
	al := alphabet.FromNames("a", "b")
	n1 := regex.MustParse("(a+b)*·a·(a+b)·(a+b)").ToNFA(al)
	n2 := regex.MustParse("a·(a+b)*").ToNFA(al)
	d1, err := automata.DeterminizeContext(ctx, n1)
	if err != nil {
		return err
	}
	if _, err := d1.MinimizeContext(ctx); err != nil {
		return err
	}
	x, err := automata.IntersectContext(ctx, n1, n2)
	if err != nil {
		return err
	}
	c, err := automata.ComplementNFAContext(ctx, n2)
	if err != nil {
		return err
	}
	d2, err := automata.DeterminizeContext(ctx, c)
	if err != nil {
		return err
	}
	if _, err := automata.UnionDFAContext(ctx, d1, d2); err != nil {
		return err
	}
	if _, _, err := automata.ContainedInContext(ctx, x, n1); err != nil {
		return err
	}
	return nil
}

func TestFaultInjectionSweepAutomata(t *testing.T) {
	points := int64(40)
	if testing.Short() {
		points = 10
	}
	fired := faultinject.Sweep(t, points, faultinject.SeedFromEnv(1), automataPipeline)
	t.Logf("automata sweep: %d injections fired", fired)
}

// TestContextCancelHotPaths: a pre-cancelled context aborts each
// formerly context-free hot path within its first check, returning an
// error wrapping context.Canceled instead of a partially built result.
func TestContextCancelHotPaths(t *testing.T) {
	al := alphabet.FromNames("a", "b")
	n1 := regex.MustParse("(a+b)*·a").ToNFA(al)
	n2 := regex.MustParse("a·(a+b)*").ToNFA(al)
	d1, err := automata.DeterminizeContext(context.Background(), n1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() error{
		"Intersect": func() error { _, err := automata.IntersectContext(ctx, n1, n2); return err },
		"UnionDFA":  func() error { _, err := automata.UnionDFAContext(ctx, d1, d1); return err },
		"Complement": func() error {
			_, err := automata.ComplementNFAContext(ctx, n1)
			return err
		},
		"Determinize": func() error { _, err := automata.DeterminizeContext(ctx, n1); return err },
		"Minimize":    func() error { _, err := d1.MinimizeContext(ctx); return err },
		"ContainedIn": func() error { _, _, err := automata.ContainedInContext(ctx, n1, n2); return err },
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestBudgetStageNames: exhausting a shared budget mid-pipeline names
// the stage that drew the last straw.
func TestBudgetStageNames(t *testing.T) {
	al := alphabet.FromNames("a", "b")
	n := regex.MustParse("(a+b)*·a·(a+b)·(a+b)·(a+b)").ToNFA(al)
	b := budget.New(budget.MaxStates(4))
	_, err := automata.DeterminizeContext(budget.With(context.Background(), b), n)
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.ExceededError", err)
	}
	if ex.Stage != "automata.determinize" || ex.Resource != budget.States {
		t.Fatalf("ExceededError = %+v", ex)
	}
}

// TestBudgetTransitionCap: transition-heavy constructions are bounded
// by the transition cap, not just the state cap.
func TestBudgetTransitionCap(t *testing.T) {
	al := alphabet.FromNames("a", "b")
	n := regex.MustParse("(a+b)*·a·(a+b)").ToNFA(al)
	b := budget.New(budget.MaxTransitions(2))
	_, err := automata.DeterminizeContext(budget.With(context.Background(), b), n)
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.ExceededError", err)
	}
	if ex.Resource != budget.Transitions {
		t.Fatalf("Resource = %v, want transitions", ex.Resource)
	}
}
