package automata

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBrzozowskiAgreesWithPartitionRefinement: the two minimization
// algorithms are derived completely differently; on random automata
// they must produce equivalent DFAs of identical (trim) size.
func TestBrzozowskiAgreesWithPartitionRefinement(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	al := ab()
	for trial := 0; trial < 60; trial++ {
		n := randomNFA(r, al, 6)
		d := Determinize(n)
		hop := d.Minimize().TrimPartial()
		brz := d.MinimizeBrzozowski()
		if !EquivalentDFA(hop, brz) {
			t.Fatalf("trial %d: minimization algorithms disagree on language", trial)
		}
		if n.IsEmpty() {
			continue // trim size of the empty language is representation-dependent
		}
		if hop.NumStates() != brz.NumStates() {
			t.Fatalf("trial %d: Hopcroft-style %d states vs Brzozowski %d states",
				trial, hop.NumStates(), brz.NumStates())
		}
	}
}

func TestBrzozowskiKnownCases(t *testing.T) {
	d := evenAs()
	m := d.MinimizeBrzozowski()
	if m.NumStates() != 2 {
		t.Fatalf("Brzozowski(evenAs) = %d states, want 2", m.NumStates())
	}
	if !m.AcceptsNames("a", "a") || m.AcceptsNames("a") {
		t.Fatal("Brzozowski changed the language")
	}
}

// Property (testing/quick): the minimal DFA size is a language
// invariant — any DFA for the same language minimizes to the same size.
func TestQuickMinimalSizeInvariant(t *testing.T) {
	al := ab()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNFA(r, al, 5)
		d1 := Determinize(n)
		d2 := Determinize(Union(n, n.Clone())) // same language, different automaton
		return d1.Minimize().NumStates() == d2.Minimize().NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): determinize → complement → complement is
// the identity on the language.
func TestQuickDoubleComplement(t *testing.T) {
	al := ab()
	f := func(seed int64, wordSeed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNFA(r, al, 5)
		cc := Determinize(n).Complement().Complement()
		wr := rand.New(rand.NewSource(wordSeed))
		for i := 0; i < 15; i++ {
			w := randomWord(wr, al, 7)
			if n.Accepts(w) != cc.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): UnionDFA agrees with the ε-NFA Union.
func TestQuickUnionDFAAgreesWithUnion(t *testing.T) {
	al := ab()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1 := randomNFA(r, al, 4)
		n2 := randomNFA(r, al, 4)
		viaDFA := UnionDFA(Determinize(n1), Determinize(n2))
		viaNFA := Union(n1, n2)
		for i := 0; i < 20; i++ {
			w := randomWord(r, al, 7)
			if viaDFA.Accepts(w) != viaNFA.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): bitset operations behave like a set of ints.
func TestQuickBitset(t *testing.T) {
	f := func(elems []uint8) bool {
		b := newBitset(256)
		ref := map[int]bool{}
		for _, e := range elems {
			b.add(int(e))
			ref[int(e)] = true
		}
		if b.count() != len(ref) {
			return false
		}
		for i := 0; i < 256; i++ {
			if b.has(i) != ref[i] {
				return false
			}
		}
		sl := b.slice()
		for i := 1; i < len(sl); i++ {
			if sl[i-1] >= sl[i] {
				return false
			}
		}
		c := b.clone()
		if !c.equal(b) || c.key() != b.key() {
			return false
		}
		return b.empty() == (len(ref) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetIntersects(t *testing.T) {
	a := newBitset(128)
	b := newBitset(128)
	a.add(3)
	a.add(100)
	b.add(4)
	if a.intersects(b) {
		t.Fatal("disjoint bitsets intersect")
	}
	b.add(100)
	if !a.intersects(b) {
		t.Fatal("overlapping bitsets do not intersect")
	}
}
