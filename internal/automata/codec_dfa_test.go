package automata

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/alphabet"
)

// randomCodecDFA builds a random DFA directly, including shapes the
// pipeline never produces: unreachable states, startless automata.
func randomCodecDFA(r *rand.Rand) *DFA {
	a := alphabet.New()
	symbols := make([]alphabet.Symbol, 1+r.Intn(4))
	for i := range symbols {
		symbols[i] = a.Intern(fmt.Sprintf("s%d", i))
	}
	d := NewDFA(a)
	states := 1 + r.Intn(8)
	for i := 0; i < states; i++ {
		d.AddState()
	}
	if r.Float64() < 0.9 {
		d.SetStart(State(r.Intn(states)))
	}
	for s := 0; s < states; s++ {
		if r.Float64() < 0.3 {
			d.SetAccept(State(s), true)
		}
		for _, x := range symbols {
			if r.Float64() < 0.4 {
				d.SetTransition(State(s), x, State(r.Intn(states)))
			}
		}
	}
	return d
}

// TestDFACodecRoundTrip: Write→Read preserves states, start, accepting
// set and every transition, and the serialization is stable after one
// round trip.
func TestDFACodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 200; i++ {
		d := randomCodecDFA(r)
		var buf strings.Builder
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("iter %d: WriteTo: %v", i, err)
		}
		back, err := ReadDFA(strings.NewReader(buf.String()), alphabet.New())
		if err != nil {
			t.Fatalf("iter %d: ReadDFA: %v\ninput:\n%s", i, err, buf.String())
		}
		if back.NumStates() != d.NumStates() {
			t.Fatalf("iter %d: states %d != %d", i, back.NumStates(), d.NumStates())
		}
		if (back.Start() == NoState) != (d.Start() == NoState) {
			t.Fatalf("iter %d: start mismatch", i)
		}
		for s := 0; s < d.NumStates(); s++ {
			if back.Accepting(State(s)) != d.Accepting(State(s)) {
				t.Fatalf("iter %d: accept mismatch at state %d", i, s)
			}
			for _, x := range d.Alphabet().Symbols() {
				want := d.Next(State(s), x)
				bx := back.Alphabet().Lookup(d.Alphabet().Name(x))
				if bx == alphabet.None {
					// A symbol with no transitions anywhere is not
					// serialized; it must have none here either.
					if want != NoState {
						t.Fatalf("iter %d: symbol %s lost a transition", i, d.Alphabet().Name(x))
					}
					continue
				}
				if got := back.Next(State(s), bx); got != want {
					t.Fatalf("iter %d: transition mismatch at (%d, %s): %d != %d",
						i, s, d.Alphabet().Name(x), got, want)
				}
			}
		}
		var buf2 strings.Builder
		if _, err := back.WriteTo(&buf2); err != nil {
			t.Fatalf("iter %d: re-serialize: %v", i, err)
		}
		back2, err := ReadDFA(strings.NewReader(buf2.String()), alphabet.New())
		if err != nil {
			t.Fatalf("iter %d: second ReadDFA: %v", i, err)
		}
		var buf3 strings.Builder
		if _, err := back2.WriteTo(&buf3); err != nil {
			t.Fatalf("iter %d: third serialize: %v", i, err)
		}
		if buf2.String() != buf3.String() {
			t.Fatalf("iter %d: serialization not stable:\n--- second ---\n%s\n--- third ---\n%s",
				i, buf2.String(), buf3.String())
		}
	}
}

// TestDFACodecRejects: malformed DFA inputs error instead of panicking
// or silently parsing.
func TestDFACodecRejects(t *testing.T) {
	for _, tc := range []struct{ name, input string }{
		{"empty", ""},
		{"missing states", "start 0\n"},
		{"oversized", fmt.Sprintf("states %d\n", maxCodecStates+1)},
		{"negative states", "states -1\n"},
		{"repeated states", "states 2\nstates 2\n"},
		{"out of range start", "states 2\nstart 5\n"},
		{"out of range trans", "states 2\ntrans 0 a 9\n"},
		{"duplicate transition", "states 2\ntrans 0 a 1\ntrans 0 a 0\n"},
		{"eps in dfa", "states 2\neps 0 1\n"},
		{"garbage", "states 2\nwat 0\n"},
		{"malformed trans", "states 2\ntrans 0 a\n"},
		{"bad state token", "states 2\nstart x\n"},
	} {
		if _, err := ReadDFA(strings.NewReader(tc.input), alphabet.New()); err == nil {
			t.Errorf("%s: ReadDFA accepted %q", tc.name, tc.input)
		}
	}
}

// TestDFACodecTruncation: every prefix of a valid serialization parses
// or errors — never panics; parsed prefixes round-trip.
func TestDFACodecTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	for i := 0; i < 30; i++ {
		d := randomCodecDFA(r)
		var buf strings.Builder
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		full := buf.String()
		for cut := 0; cut <= len(full); cut++ {
			got, err := ReadDFA(strings.NewReader(full[:cut]), alphabet.New())
			if err != nil {
				continue
			}
			var again strings.Builder
			if _, err := got.WriteTo(&again); err != nil {
				t.Fatalf("iter %d cut %d: re-serialize of parsed prefix failed: %v", i, cut, err)
			}
		}
	}
}
