package automata

import (
	"sort"
	"sync/atomic"

	"regexrw/internal/alphabet"
	"regexrw/internal/obs"
)

// This file is the shared memoization layer of the automata hot path.
// Two structures carry it:
//
//   - interner: a hash-bucketed bitset → dense-id table that replaces
//     the map[string]State subset tables of the subset constructions.
//     Probing hashes the bitset's words directly, so the per-probe
//     string allocation of bitset.key() disappears from the hot loops
//     (see BenchmarkSubsetProbe).
//   - nfaMemo: a per-NFA table of single-state ε-closures, per-
//     (state, symbol) stepper sets (successors with the closure already
//     applied) and the accepting set as a bitset. It is built once per
//     automaton structure and shared by Determinize, RemoveEpsilon and
//     ContainedInContext — the repeated ε-closure DFS walks those loops
//     used to pay per subset are replaced by word-wide bitset unions.
//
// Cache invariants (docs/PERFORMANCE.md §3 spells out the argument):
//
//   - an interner is local to one construction call; ids are dense and
//     allocated in discovery order, so they can double as DFA state ids;
//   - a nfaMemo is valid for exactly one value of the NFA's mutation
//     counter (gen); every structural mutator bumps gen, and memoTables
//     rebuilds on mismatch. Readers access the memo through an atomic
//     pointer, so concurrent read-only pipelines over a shared NFA are
//     race-free; concurrent mutation was never supported and remains so.

// cacheCounters aggregates cache effectiveness across the process; the
// bench pipeline reads and resets it around timed sections, and the
// same counters are first-class observables on the process-wide
// obs.Default registry (exposed by -metrics as
// automata.cache.subset_hits etc.).
var cacheCounters = struct {
	subsetHits   *obs.Counter
	subsetMisses *obs.Counter
	memoBuilds   *obs.Counter
	memoReuses   *obs.Counter
}{
	subsetHits:   obs.Default.Counter("automata.cache.subset_hits"),
	subsetMisses: obs.Default.Counter("automata.cache.subset_misses"),
	memoBuilds:   obs.Default.Counter("automata.cache.memo_builds"),
	memoReuses:   obs.Default.Counter("automata.cache.memo_reuses"),
}

// CacheStats is a snapshot of the subset-interner and ε-closure-memo
// counters. SubsetHits/SubsetMisses count interner probes that found /
// created a subset id; MemoBuilds/MemoReuses count per-NFA memo table
// constructions vs reuses.
type CacheStats struct {
	SubsetHits   int64
	SubsetMisses int64
	MemoBuilds   int64
	MemoReuses   int64
}

// SubsetHitRate returns SubsetHits / (SubsetHits + SubsetMisses), or 0
// when no probe happened.
func (s CacheStats) SubsetHitRate() float64 {
	total := s.SubsetHits + s.SubsetMisses
	if total == 0 {
		return 0
	}
	return float64(s.SubsetHits) / float64(total)
}

// ReadCacheStats returns the current cache counters.
func ReadCacheStats() CacheStats {
	return CacheStats{
		SubsetHits:   cacheCounters.subsetHits.Value(),
		SubsetMisses: cacheCounters.subsetMisses.Value(),
		MemoBuilds:   cacheCounters.memoBuilds.Value(),
		MemoReuses:   cacheCounters.memoReuses.Value(),
	}
}

// ResetCacheStats zeroes the cache counters.
func ResetCacheStats() {
	cacheCounters.subsetHits.Store(0)
	cacheCounters.subsetMisses.Store(0)
	cacheCounters.memoBuilds.Store(0)
	cacheCounters.memoReuses.Store(0)
}

// interner assigns dense ids to bitsets without allocating string keys:
// a probe hashes the words (FNV-1a) into a bucket of candidate ids and
// compares word-for-word. Ids are allocated in first-probe order, which
// is what lets the subset constructions use them directly as DFA state
// numbers. Hit/miss counts accumulate locally (the hot loop touches no
// atomics) and flush into the process counters via flushStats.
type interner struct {
	buckets map[uint64][]int32
	sets    []*bitset
	hits    int64
	misses  int64
}

func newInterner() *interner {
	return &interner{buckets: make(map[uint64][]int32)}
}

// intern returns the id of the set, adding it if absent. The bitset is
// retained on a miss; callers must not mutate it afterwards.
func (it *interner) intern(b *bitset) (id int, isNew bool) {
	h := b.hash()
	for _, cand := range it.buckets[h] {
		if it.sets[cand].equal(b) {
			it.hits++
			return int(cand), false
		}
	}
	n := int32(len(it.sets))
	it.sets = append(it.sets, b)
	it.buckets[h] = append(it.buckets[h], n)
	it.misses++
	return int(n), true
}

// internClone is intern for callers that reuse a scratch set between
// probes: the set is cloned only when it is actually new, so a probe
// that hits allocates nothing at all.
func (it *interner) internClone(b *bitset) (id int, isNew bool) {
	h := b.hash()
	for _, cand := range it.buckets[h] {
		if it.sets[cand].equal(b) {
			it.hits++
			return int(cand), false
		}
	}
	n := int32(len(it.sets))
	it.sets = append(it.sets, b.clone())
	it.buckets[h] = append(it.buckets[h], n)
	it.misses++
	return int(n), true
}

// len returns the number of interned sets.
func (it *interner) len() int { return len(it.sets) }

// at returns the interned set with the given id.
func (it *interner) at(id int) *bitset { return it.sets[id] }

// flushStats adds the interner's local hit/miss counts to the process
// counters and to the span (if tracing), then zeroes them. Call once
// (deferred) per construction. When a span is given, register the defer
// AFTER the flushStats defer so the span sees the counts before they
// are zeroed — or simply use flushStatsSpan.
func (it *interner) flushStats() {
	cacheCounters.subsetHits.Add(it.hits)
	cacheCounters.subsetMisses.Add(it.misses)
	it.hits, it.misses = 0, 0
}

// flushStatsSpan is flushStats plus a mirror of the counts onto the
// construction's span, so per-stage traces carry the same probe totals
// the process counters accumulate.
func (it *interner) flushStatsSpan(span *obs.Span) {
	span.AddCache(it.hits, it.misses)
	it.flushStats()
}

// nfaMemo is the per-NFA closure/stepper table. All bitsets have the
// automaton's state count as capacity. It is immutable once built.
// The step table is dense by symbol (indexed, not a map) so the subset
// constructions probe it with one bounds-checked load per (state,
// symbol) — map machinery showed up heavily in profiles of the hot
// loop.
type nfaMemo struct {
	numStates int
	// alphaLen is the alphabet size at build time; the alphabet may
	// intern further symbols afterwards without mutating the automaton,
	// so readers bounds-check symbol ids against the step rows.
	alphaLen int
	// accepting has bit s set iff state s accepts; subset acceptance is
	// one intersects() instead of a per-member scan.
	accepting *bitset
	// closure[s] is the ε-closure of {s} (always contains s).
	closure []*bitset
	// step[s][x] is the ε-closure of the x-successors of s (nil when s
	// has no x-transition; step[s] is nil when s has none at all).
	// Because ε-closure distributes over union, the successor subset of
	// any state set S on x is the union of step[q][x] over q ∈ S — no
	// closure pass afterwards.
	step [][]*bitset
	// stateSyms[s] lists the symbols with a transition out of s, in
	// increasing order; syms is their sorted union over all states.
	// Together they let a subset construction enumerate a subset's
	// outgoing symbols in deterministic order without a map or a sort
	// per subset.
	stateSyms [][]alphabet.Symbol
	syms      []alphabet.Symbol
}

// memoBox pairs a memo with the mutation generation it was built for.
type memoBox struct {
	gen  int64
	memo *nfaMemo
}

// memoTables returns the closure/stepper memo valid for the automaton's
// current structure, building it on first use. Structural mutators bump
// n.gen, so a stale memo is detected and rebuilt. Concurrent readers of
// an immutable NFA may race to build; every built table is equally
// valid and the last Store wins — the others are garbage-collected.
func (n *NFA) memoTables() *nfaMemo {
	gen := atomic.LoadInt64(&n.gen)
	if box := n.memo.Load(); box != nil && box.gen == gen {
		cacheCounters.memoReuses.Add(1)
		return box.memo
	}
	m := n.buildMemo()
	n.memo.Store(&memoBox{gen: gen, memo: m})
	cacheCounters.memoBuilds.Add(1)
	return m
}

// invalidateMemo marks any cached memo stale. Called by every
// structural mutator (AddState, AddTransition, AddEpsilon, SetAccept).
func (n *NFA) invalidateMemo() {
	atomic.AddInt64(&n.gen, 1)
}

func (n *NFA) buildMemo() *nfaMemo {
	ns := n.NumStates()
	al := n.alpha.Len()
	m := &nfaMemo{
		numStates: ns,
		alphaLen:  al,
		accepting: newBitset(ns),
		closure:   make([]*bitset, ns),
		step:      make([][]*bitset, ns),
		stateSyms: make([][]alphabet.Symbol, ns),
	}
	for s := 0; s < ns; s++ {
		if n.accept[s] {
			m.accepting.add(s)
		}
		c := newBitset(ns)
		c.add(s)
		n.epsClosure(c)
		m.closure[s] = c
	}
	inSyms := make([]bool, al)
	for s := 0; s < ns; s++ {
		if len(n.trans[s]) == 0 {
			continue
		}
		tbl := make([]*bitset, al)
		syms := make([]alphabet.Symbol, 0, len(n.trans[s]))
		for x, ts := range n.trans[s] { //mapiter:unordered building a symbol-indexed table; stateSyms is sorted below
			set := newBitset(ns)
			for _, t := range ts {
				set.unionWith(m.closure[t])
			}
			tbl[x] = set
			syms = append(syms, x)
			inSyms[x] = true
		}
		sort.Slice(syms, func(a, b int) bool { return syms[a] < syms[b] })
		m.step[s] = tbl
		m.stateSyms[s] = syms
	}
	for x := 0; x < al; x++ {
		if inSyms[x] {
			m.syms = append(m.syms, alphabet.Symbol(x))
		}
	}
	return m
}
