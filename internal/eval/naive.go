package eval

import (
	"context"
	"sort"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
)

// ReferenceAllPairs is the retained naive reference the differential
// oracle holds the frontier evaluator against: ans(ℓ, DB) by
// transitive closure over the explicit product graph. It builds the
// full configuration graph — one vertex per (DFA state, node) pair, an
// arc ((q,u),(q',v)) for every edge u→v whose label drives q to q' —
// and closes it with the Floyd–Warshall bit-matrix recurrence, then
// reads answers off the closure: (u,v) ∈ ans iff (start,u) reaches
// (q,v) for some accepting q in zero or more steps.
//
// The algorithm shares nothing with the frontier BFS (no frontiers, no
// per-state rows, no early emission — a dense O(c²) matrix closed in
// O(c³/64) word ops for c = states·nodes configurations) and nothing
// with the map-based BFS in internal/graph, which makes it a genuinely
// independent witness. It is exponential-space in graph size and meant
// for oracle-sized instances only; the c configurations are charged as
// states on the context's budget (stage "eval.reference"), so caps
// skip oversized instances before the matrix is allocated.
func ReferenceAllPairs(ctx context.Context, d *automata.DFA, db *graph.DB) ([]graph.Pair, error) {
	ctx, span := obs.StartSpan(ctx, "eval.reference")
	defer span.End()
	meter := budget.Enter(ctx, "eval.reference")
	nq := d.NumStates()
	nv := db.NumNodes()
	if nq == 0 || d.Start() == automata.NoState || nv == 0 {
		return nil, nil
	}
	c := nq * nv
	span.SetAttr("configs", int64(c))
	if err := meter.AddStates(c); err != nil {
		return nil, err
	}

	// Label remap, as in the evaluator snapshot.
	labelMap := make([]alphabet.Symbol, db.Labels().Len())
	for _, l := range db.Labels().Symbols() {
		labelMap[l] = alphabet.None
		if s := d.Alphabet().Lookup(db.Labels().Name(l)); s != alphabet.None {
			labelMap[l] = s
		}
	}

	// reach[i] is the bit row of configurations reachable from i in
	// zero or more steps; configuration (q,u) has index q*nv+u.
	words := (c + 63) / 64
	backing := make([]uint64, c*words)
	reach := make([][]uint64, c)
	for i := range reach {
		reach[i] = backing[i*words : (i+1)*words]
		reach[i][i>>6] |= 1 << (uint(i) & 63) // reflexive: ε-length paths
	}
	for q := 0; q < nq; q++ {
		for u := 0; u < nv; u++ {
			i := q*nv + u
			for _, e := range db.Out(graph.NodeID(u)) {
				x := labelMap[e.Label]
				if x == alphabet.None {
					continue
				}
				q2 := d.Next(automata.State(q), x)
				if q2 == automata.NoState {
					continue
				}
				j := int(q2)*nv + int(e.To)
				reach[i][j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}

	// Floyd–Warshall on the boolean matrix: if i reaches k, i reaches
	// everything k reaches. 64 columns per word op.
	for k := 0; k < c; k++ {
		if err := meter.Check(); err != nil {
			return nil, err
		}
		rowK := reach[k]
		kw, kb := k>>6, uint64(1)<<(uint(k)&63)
		for i := 0; i < c; i++ {
			if reach[i][kw]&kb == 0 {
				continue
			}
			rowI := reach[i]
			for w := range rowK {
				rowI[w] |= rowK[w]
			}
		}
	}

	accepting := make([]automata.State, 0, nq)
	for q := 0; q < nq; q++ {
		if d.Accepting(automata.State(q)) {
			accepting = append(accepting, automata.State(q))
		}
	}
	var out []graph.Pair
	start := int(d.Start())
	for u := 0; u < nv; u++ {
		row := reach[start*nv+u]
		for _, q := range accepting {
			base := int(q) * nv
			for v := 0; v < nv; v++ {
				j := base + v
				if row[j>>6]&(1<<(uint(j)&63)) != 0 {
					out = append(out, graph.Pair{From: graph.NodeID(u), To: graph.NodeID(v)})
				}
			}
		}
	}
	// Several accepting states can witness the same pair.
	sortPairs(out)
	out = dedupPairs(out)
	span.SetAttr("answers", int64(len(out)))
	return out, nil
}

func dedupPairs(ps []graph.Pair) []graph.Pair {
	if len(ps) < 2 {
		return ps
	}
	kept := ps[:1]
	for _, p := range ps[1:] {
		if p != kept[len(kept)-1] {
			kept = append(kept, p)
		}
	}
	return kept
}

// SamePairs reports whether two sorted, deduplicated answer sets are
// identical — the oracle's set-identity check. Unsorted inputs are
// copied and normalized first.
func SamePairs(a, b []graph.Pair) bool {
	an := normalizePairs(a)
	bn := normalizePairs(b)
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	return true
}

func normalizePairs(ps []graph.Pair) []graph.Pair {
	out := append([]graph.Pair(nil), ps...)
	sortPairs(out)
	return dedupPairs(out)
}

// sortedContains reports a ⊆ b for sorted, deduplicated pair sets.
func sortedContains(b, a []graph.Pair) bool {
	j := 0
	for _, p := range a {
		for j < len(b) && (b[j].From < p.From || (b[j].From == p.From && b[j].To < p.To)) {
			j++
		}
		if j >= len(b) || b[j] != p {
			return false
		}
	}
	return true
}

// SubsetOfPairs reports whether every pair of a occurs in b (both in
// any order) — the monotonicity check of the metamorphic suite.
func SubsetOfPairs(a, b []graph.Pair) bool {
	return sortedContains(normalizePairs(b), normalizePairs(a))
}

// sortNodes sorts a node answer slice in place and returns it.
func sortNodes(ns []graph.NodeID) []graph.NodeID {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}
