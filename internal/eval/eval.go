// Package eval answers regular path queries over the semi-structured
// databases of Section 4: given a compiled automaton for the query
// language ℓ and a labeled graph DB, it computes ans(ℓ, DB) — the node
// pairs connected by a path whose label word lies in L(ℓ)
// (Definition 5) — with single-source, all-pairs and boolean entry
// points.
//
// The evaluator runs a product-automaton BFS over (node, DFA state)
// configurations with delta frontiers and one dense visited bitset row
// per DFA state ([]uint64, word-level test-and-set), over a CSR
// adjacency snapshot of the database whose edge labels are pre-mapped
// to DFA symbol ids. Compared to the map-based product BFS retained in
// internal/graph (DB.Eval / DB.EvalFrom, the naive baseline of the
// GraphEval bench family), the bitsets replace hash probes with word
// ops, and the CSR snapshot replaces interface-heavy adjacency walks —
// worth well over an order of magnitude at 100k+ edges.
//
// Evaluation is governed like every other pipeline: each run opens an
// "eval.*" span, charges newly visited configurations as states on the
// context's budget meter (stage "eval.bfs", or "eval.update" for
// incremental re-runs), and aborts on cancellation or budget
// exhaustion with the usual *budget.ExceededError.
//
// Incremental re-evaluation under edge insertions (incremental.go)
// retains the visited bitsets of a finished run and, when edges are
// inserted, seeds a new delta frontier from exactly the configurations
// the new edges unlock — never restarting from scratch.
package eval

import (
	"errors"
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/graph"
)

// ErrUnknownNode reports a source or target node name/id not present
// in the database.
var ErrUnknownNode = errors.New("eval: unknown node")

// errStop is the internal sentinel used to cut a run short (boolean
// queries, answer caps); it never escapes the package.
var errStop = errors.New("eval: stop")

// noState mirrors automata.NoState in the dense transition table.
const noState = int32(-1)

// cfg is a product configuration: a graph node paired with a DFA
// state.
type cfg struct {
	node  int32
	state int32
}

// Evaluator answers one compiled query automaton over one database.
// Construction snapshots the database into CSR form; the database
// itself is never mutated and may be shared by many evaluators.
//
// All query methods (From, AllPairs, Boolean and their streaming
// variants, Start/StartAll) are safe for concurrent use with each
// other. Insert mutates the evaluator and requires external
// synchronization against every other method — the engine's cached,
// shared evaluators never call it; incremental sessions own a private
// Evaluator.
type Evaluator struct {
	dfa    *automata.DFA
	start  int32
	accept []bool
	nsym   int
	next   []int32 // dense [state*nsym + symbol] → state, or noState
	empty  bool    // no start state: L = ∅, every answer set is empty

	db       *graph.DB
	numNodes int
	// CSR adjacency over the base database, edges whose label has no
	// symbol in the DFA's alphabet dropped at build (they can never
	// advance the automaton).
	off  []int32
	eTo  []int32
	eSym []int32

	// Post-construction state for incremental sessions (incremental.go).
	names *alphabet.Alphabet // node names incl. inserted nodes; nil until first Insert
	delta [][]dedge          // per-node inserted edges, indexed like off
	log   []logEdge          // insertion log consumed by Run.Update
}

// New builds an evaluator for the automaton over the database. The
// automaton may be partial (missing transitions reject); its symbols
// are matched to the database's edge labels by name, and labels
// unknown to the automaton are dropped from the snapshot.
func New(d *automata.DFA, db *graph.DB) (*Evaluator, error) {
	if d == nil {
		return nil, fmt.Errorf("eval: nil automaton")
	}
	if db == nil {
		return nil, fmt.Errorf("eval: nil database")
	}
	ev := &Evaluator{
		dfa:      d,
		start:    int32(d.Start()),
		nsym:     d.Alphabet().Len(),
		db:       db,
		numNodes: db.NumNodes(),
	}
	if d.NumStates() == 0 || d.Start() == automata.NoState {
		ev.empty = true
		return ev, nil
	}
	ev.accept = make([]bool, d.NumStates())
	ev.next = make([]int32, d.NumStates()*ev.nsym)
	for q := 0; q < d.NumStates(); q++ {
		ev.accept[q] = d.Accepting(automata.State(q))
		row := ev.next[q*ev.nsym : (q+1)*ev.nsym]
		for s := 0; s < ev.nsym; s++ {
			row[s] = int32(d.Next(automata.State(q), alphabet.Symbol(s)))
		}
	}

	// Map database label ids to DFA symbol ids by name; -1 drops the
	// edge from the snapshot.
	labelMap := make([]int32, db.Labels().Len())
	for _, l := range db.Labels().Symbols() {
		labelMap[l] = noState
		if s := d.Alphabet().Lookup(db.Labels().Name(l)); s != alphabet.None {
			labelMap[l] = int32(s)
		}
	}
	n := ev.numNodes
	ev.off = make([]int32, n+1)
	kept := 0
	for u := 0; u < n; u++ {
		for _, e := range db.Out(graph.NodeID(u)) {
			if labelMap[e.Label] >= 0 {
				kept++
			}
		}
		ev.off[u+1] = int32(kept)
	}
	ev.eTo = make([]int32, kept)
	ev.eSym = make([]int32, kept)
	k := 0
	for u := 0; u < n; u++ {
		for _, e := range db.Out(graph.NodeID(u)) {
			if s := labelMap[e.Label]; s >= 0 {
				ev.eTo[k] = int32(e.To)
				ev.eSym[k] = s
				k++
			}
		}
	}
	return ev, nil
}

// NumNodes returns the node count, including nodes added by Insert.
func (ev *Evaluator) NumNodes() int { return ev.numNodes }

// NumEdges returns the snapshot edge count (base edges the automaton
// can follow, plus inserted ones).
func (ev *Evaluator) NumEdges() int {
	n := len(ev.eTo)
	for _, d := range ev.delta {
		n += len(d)
	}
	return n
}

// NodeID resolves a node name, covering inserted nodes, or -1.
func (ev *Evaluator) NodeID(name string) graph.NodeID {
	if ev.names != nil {
		if s := ev.names.Lookup(name); s != alphabet.None {
			return graph.NodeID(s)
		}
		return -1
	}
	return ev.db.NodeID(name)
}

// NodeName resolves a node id, covering inserted nodes.
func (ev *Evaluator) NodeName(n graph.NodeID) string {
	if ev.names != nil {
		return ev.names.Name(alphabet.Symbol(n))
	}
	return ev.db.NodeName(n)
}

// words returns the bitset row width for the current node count.
func (ev *Evaluator) words() int { return (ev.numNodes + 63) / 64 }

// newRows allocates one bitset row per DFA state.
func (ev *Evaluator) newRows() [][]uint64 {
	rows := make([][]uint64, len(ev.accept))
	w := ev.words()
	backing := make([]uint64, len(rows)*w)
	for i := range rows {
		rows[i] = backing[i*w : (i+1)*w]
	}
	return rows
}

func bitGet(row []uint64, i int32) bool { return row[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(row []uint64, i int32)      { row[i>>6] |= 1 << (uint(i) & 63) }

// state carried through one BFS (a fresh query or the continuation of
// an incremental run).
type bfsState struct {
	visited  [][]uint64 // per DFA state, bit per node
	emitted  []uint64   // bit per node already yielded as an answer
	frontier []cfg      // current delta frontier
	spare    []cfg      // recycled backing for the next frontier
}

// bfs drains the frontier to fixpoint: scan each configuration's
// out-edges, advance the DFA, test-and-set the target row, emit
// answers on accepting states. Newly visited configurations are
// charged as states on the meter per wave; the meter ticks once per
// processed configuration, so cancellation is honored mid-wave.
// Frontier configurations must already be marked visited (and emitted,
// if accepting) by the seeder.
func (ev *Evaluator) bfs(meter *budget.Meter, st *bfsState, yield func(graph.NodeID) error) error {
	frontier, next := st.frontier, st.spare[:0]
	for len(frontier) > 0 {
		newly := 0
		for _, c := range frontier {
			if err := meter.Check(); err != nil {
				return err
			}
			base := int(c.state) * ev.nsym
			// Base CSR edges (nodes added by Insert sit beyond the
			// snapshot and carry delta edges only), then inserted ones.
			if int(c.node)+1 < len(ev.off) {
				for k := ev.off[c.node]; k < ev.off[c.node+1]; k++ {
					q2 := ev.next[base+int(ev.eSym[k])]
					if q2 < 0 {
						continue
					}
					to := ev.eTo[k]
					if bitGet(st.visited[q2], to) {
						continue
					}
					bitSet(st.visited[q2], to)
					newly++
					if ev.accept[q2] && !bitGet(st.emitted, to) {
						bitSet(st.emitted, to)
						if err := yield(graph.NodeID(to)); err != nil {
							return err
						}
					}
					next = append(next, cfg{to, q2})
				}
			}
			if int(c.node) < len(ev.delta) {
				for _, de := range ev.delta[c.node] {
					q2 := ev.next[base+int(de.sym)]
					if q2 < 0 {
						continue
					}
					if bitGet(st.visited[q2], de.to) {
						continue
					}
					bitSet(st.visited[q2], de.to)
					newly++
					if ev.accept[q2] && !bitGet(st.emitted, de.to) {
						bitSet(st.emitted, de.to)
						if err := yield(graph.NodeID(de.to)); err != nil {
							return err
						}
					}
					next = append(next, cfg{de.to, q2})
				}
			}
		}
		if err := meter.AddStates(newly); err != nil {
			return err
		}
		frontier, next = next, frontier[:0]
	}
	st.frontier, st.spare = frontier, next
	return nil
}

// seedFrom marks and (if accepting) emits the start configuration of a
// single-source run. Inserted source nodes have no base out-edges; the
// frontier walk handles them through delta only, which indexing via
// off would miss — so sources beyond the base snapshot get their delta
// edges scanned by bfs through a frontier entry like any other.
func (ev *Evaluator) seedFrom(src graph.NodeID, st *bfsState, yield func(graph.NodeID) error) error {
	c := cfg{int32(src), ev.start}
	bitSet(st.visited[ev.start], c.node)
	st.frontier = append(st.frontier, c)
	if ev.accept[ev.start] {
		bitSet(st.emitted, c.node)
		return yield(graph.NodeID(c.node))
	}
	return nil
}

// checkNode validates a node id against the snapshot.
func (ev *Evaluator) checkNode(n graph.NodeID) error {
	if n < 0 || int(n) >= ev.numNodes {
		return fmt.Errorf("%w: id %d (have %d nodes)", ErrUnknownNode, n, ev.numNodes)
	}
	return nil
}
