package eval

import (
	"context"
	"errors"
	"sort"

	"regexrw/internal/budget"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
)

// From computes the single-source answer set: the nodes y such that
// some path from src to y spells a word of the automaton's language.
// The result is sorted by node id. Governed by the context's budget
// (stage "eval.bfs") under an "eval.from" span.
func (ev *Evaluator) From(ctx context.Context, src graph.NodeID) ([]graph.NodeID, error) {
	var out []graph.NodeID
	err := ev.FromFunc(ctx, src, func(n graph.NodeID) error {
		out = append(out, n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// FromFunc is the streaming form of From: answers are yielded in BFS
// discovery order (not sorted), each exactly once. A non-nil error
// from yield aborts the run and is returned verbatim.
func (ev *Evaluator) FromFunc(ctx context.Context, src graph.NodeID, yield func(graph.NodeID) error) error {
	ctx, span := obs.StartSpan(ctx, "eval.from")
	defer span.End()
	if err := ev.checkNode(src); err != nil {
		return err
	}
	answers := int64(0)
	counted := func(n graph.NodeID) error {
		answers++
		return yield(n)
	}
	defer func() { span.SetAttr("answers", answers) }()
	if ev.empty {
		return nil
	}
	meter := budget.Enter(ctx, "eval.bfs")
	st := &bfsState{visited: ev.newRows(), emitted: make([]uint64, ev.words())}
	if err := ev.seedFrom(src, st, counted); err != nil {
		return err
	}
	if err := meter.AddStates(1); err != nil {
		return err
	}
	return ev.bfs(meter, st, counted)
}

// AllPairs computes ans(ℓ, DB): every pair (x, y) connected by a path
// spelling a word of the language, sorted by (from, to). One BFS per
// source node reusing the same bitset rows; governed under an
// "eval.all_pairs" span, stage "eval.bfs".
func (ev *Evaluator) AllPairs(ctx context.Context) ([]graph.Pair, error) {
	var out []graph.Pair
	err := ev.AllPairsFunc(ctx, func(p graph.Pair) error {
		out = append(out, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out, nil
}

// AllPairsFunc is the streaming form of AllPairs: pairs are yielded
// grouped by source in ascending source order, targets in discovery
// order within a source. A non-nil error from yield aborts the run.
func (ev *Evaluator) AllPairsFunc(ctx context.Context, yield func(graph.Pair) error) error {
	ctx, span := obs.StartSpan(ctx, "eval.all_pairs")
	defer span.End()
	answers := int64(0)
	defer func() { span.SetAttr("answers", answers) }()
	if ev.empty {
		return nil
	}
	meter := budget.Enter(ctx, "eval.bfs")
	st := &bfsState{visited: ev.newRows(), emitted: make([]uint64, ev.words())}
	for src := 0; src < ev.numNodes; src++ {
		if src > 0 {
			for _, row := range st.visited {
				clear(row)
			}
			clear(st.emitted)
			st.frontier = st.frontier[:0]
		}
		emit := func(n graph.NodeID) error {
			answers++
			return yield(graph.Pair{From: graph.NodeID(src), To: n})
		}
		if err := ev.seedFrom(graph.NodeID(src), st, emit); err != nil {
			return err
		}
		if err := meter.AddStates(1); err != nil {
			return err
		}
		if err := ev.bfs(meter, st, emit); err != nil {
			return err
		}
	}
	return nil
}

// Boolean reports whether (src, dst) ∈ ans(ℓ, DB), stopping the BFS as
// soon as dst is reached in an accepting state. Governed under an
// "eval.boolean" span, stage "eval.bfs".
func (ev *Evaluator) Boolean(ctx context.Context, src, dst graph.NodeID) (bool, error) {
	ctx, span := obs.StartSpan(ctx, "eval.boolean")
	defer span.End()
	if err := ev.checkNode(src); err != nil {
		return false, err
	}
	if err := ev.checkNode(dst); err != nil {
		return false, err
	}
	if ev.empty {
		return false, nil
	}
	meter := budget.Enter(ctx, "eval.bfs")
	st := &bfsState{visited: ev.newRows(), emitted: make([]uint64, ev.words())}
	found := false
	probe := func(n graph.NodeID) error {
		if n == dst {
			found = true
			return errStop
		}
		return nil
	}
	err := ev.seedFrom(src, st, probe)
	if err == nil {
		if err = meter.AddStates(1); err == nil {
			err = ev.bfs(meter, st, probe)
		}
	}
	span.SetAttr("matched", boolAttr(found))
	if err != nil && !errors.Is(err, errStop) {
		return false, err
	}
	return found, nil
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
