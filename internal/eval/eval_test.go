package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/graph"
	"regexrw/internal/regex"
	"regexrw/internal/workload"
)

// compile builds a minimal partial DFA for a regex over the labels —
// the MinimalDFA shape the engine hands the evaluator.
func compile(t testing.TB, expr string, labels ...string) (*automata.DFA, *automata.NFA) {
	t.Helper()
	node, err := regex.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	sigma := alphabet.New()
	for _, l := range labels {
		sigma.Intern(l)
	}
	nfa := node.ToNFA(sigma)
	return automata.Determinize(nfa).Minimize().TrimPartial(), nfa
}

func TestAgainstMapBFSAndReference(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	exprs := []string{
		"a·(b·a+c)*", "(a+b)*·c", "a*", "a·b·c", "(a·b+c)*", "b?·a+c·c", "ε", "∅", "a+ε",
	}
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		db := workload.RandomGraph(r, workload.GraphConfig{
			Nodes: 2 + r.Intn(10), Edges: r.Intn(40), Labels: labels,
		})
		expr := exprs[r.Intn(len(exprs))]
		dfa, nfa := compile(t, expr, labels...)
		ev, err := New(dfa, db)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Eval(nfa)
		got, err := ev.AllPairs(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !SamePairs(want, got) {
			t.Fatalf("trial %d (%s): AllPairs mismatch\nfrontier: %v\nmap BFS:  %v\n%s",
				trial, expr, db.PairNames(got), db.PairNames(want), db.DOT("g"))
		}
		ref, err := ReferenceAllPairs(context.Background(), dfa, db)
		if err != nil {
			t.Fatal(err)
		}
		if !SamePairs(want, ref) {
			t.Fatalf("trial %d (%s): reference mismatch\nreference: %v\nmap BFS:   %v",
				trial, expr, db.PairNames(ref), db.PairNames(want))
		}
		// Single-source and boolean agree with the all-pairs set.
		src := graph.NodeID(r.Intn(db.NumNodes()))
		wantFrom := db.EvalFrom(nfa, src)
		gotFrom, err := ev.From(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(wantFrom) != fmt.Sprint(gotFrom) {
			t.Fatalf("trial %d (%s): From(%d) mismatch: got %v want %v",
				trial, expr, src, gotFrom, wantFrom)
		}
		dst := graph.NodeID(r.Intn(db.NumNodes()))
		inSet := false
		for _, n := range wantFrom {
			if n == dst {
				inSet = true
			}
		}
		matched, err := ev.Boolean(context.Background(), src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if matched != inSet {
			t.Fatalf("trial %d (%s): Boolean(%d,%d) = %v, want %v",
				trial, expr, src, dst, matched, inSet)
		}
	}
}

func TestEpsilonAnswersIncludeSelfPairs(t *testing.T) {
	db := workload.ChainGraph(3, []string{"a"})
	dfa, _ := compile(t, "a*", "a")
	ev, err := New(dfa, db)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ev.AllPairs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// ε ∈ L(a*): every node pairs with itself, plus all forward chains:
	// 4 self pairs + 3+2+1 forward pairs.
	if len(pairs) != 10 {
		t.Fatalf("a* on chain(3): want 10 pairs, got %d: %v", len(pairs), db.PairNames(pairs))
	}
}

func TestEmptyLanguage(t *testing.T) {
	db := workload.ChainGraph(2, []string{"a"})
	dfa, _ := compile(t, "∅", "a")
	ev, err := New(dfa, db)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ev.AllPairs(context.Background())
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty language: want no pairs, got %v (err %v)", pairs, err)
	}
	nodes, err := ev.From(context.Background(), 0)
	if err != nil || len(nodes) != 0 {
		t.Fatalf("empty language: want no nodes, got %v (err %v)", nodes, err)
	}
}

func TestUnknownNode(t *testing.T) {
	db := workload.ChainGraph(2, []string{"a"})
	dfa, _ := compile(t, "a", "a")
	ev, err := New(dfa, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.From(context.Background(), 99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	if _, err := ev.From(context.Background(), -1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode for negative id, got %v", err)
	}
	if _, err := ev.Boolean(context.Background(), 0, 99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Boolean: want ErrUnknownNode, got %v", err)
	}
}

func TestLabelsUnknownToAutomatonAreInert(t *testing.T) {
	db := graph.New(nil)
	db.AddEdge("x", "a", "y")
	db.AddEdge("y", "zzz", "z") // label outside the query alphabet
	dfa, _ := compile(t, "a·b*", "a", "b")
	ev, err := New(dfa, db)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ev.AllPairs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (graph.Pair{From: db.NodeID("x"), To: db.NodeID("y")}) {
		t.Fatalf("want exactly x→y, got %v", db.PairNames(pairs))
	}
}

func TestBudgetExceeded(t *testing.T) {
	db := workload.GridGraph(40, 40, "a", "b")
	dfa, _ := compile(t, "(a+b)*", "a", "b")
	ev, err := New(dfa, db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := budget.With(context.Background(), budget.New(budget.MaxStates(50)))
	_, err = ev.From(ctx, 0)
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("want *budget.ExceededError, got %v", err)
	}
	if ex.Stage != "eval.bfs" {
		t.Fatalf("want stage eval.bfs, got %s", ex.Stage)
	}
}

func TestCancellation(t *testing.T) {
	db := workload.GridGraph(60, 60, "a", "b")
	dfa, _ := compile(t, "(a+b)*", "a", "b")
	ev, err := New(dfa, db)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ev.AllPairs(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestStreamingYieldErrorAborts(t *testing.T) {
	db := workload.GridGraph(10, 10, "a", "b")
	dfa, _ := compile(t, "(a+b)*", "a", "b")
	ev, err := New(dfa, db)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	seen := 0
	err = ev.AllPairsFunc(context.Background(), func(graph.Pair) error {
		seen++
		if seen == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want yield error back, got %v", err)
	}
	if seen != 3 {
		t.Fatalf("want abort after 3 answers, got %d", seen)
	}
}

func TestViewGraphSmall(t *testing.T) {
	// db: x --a--> y --b--> z; views v1 = a, v2 = a·b.
	db := graph.New(nil)
	db.AddEdge("x", "a", "y")
	db.AddEdge("y", "b", "z")
	sigma := alphabet.New()
	sigma.Intern("a")
	sigma.Intern("b")
	sigmaE := alphabet.New()
	v1 := sigmaE.Intern("v1")
	v2 := sigmaE.Intern("v2")
	views := map[alphabet.Symbol]*automata.NFA{
		v1: regex.MustParse("a").ToNFA(sigma).RemoveEpsilon(),
		v2: regex.MustParse("a·b").ToNFA(sigma).RemoveEpsilon(),
	}
	vg, err := ViewGraph(context.Background(), db, sigmaE, views)
	if err != nil {
		t.Fatal(err)
	}
	if vg.NumNodes() != db.NumNodes() {
		t.Fatalf("view graph changed node count: %d vs %d", vg.NumNodes(), db.NumNodes())
	}
	// Expect exactly x --v1--> y and x --v2--> z.
	if vg.NumEdges() != 2 {
		t.Fatalf("want 2 view edges, got %d\n%s", vg.NumEdges(), vg.DOT("vg"))
	}
	dfa1, _ := compile(t, "v1", "v1", "v2")
	ev1, err := New(dfa1, vg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ev1.AllPairs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 1 || p1[0] != (graph.Pair{From: vg.NodeID("x"), To: vg.NodeID("y")}) {
		t.Fatalf("v1 answers wrong: %v", vg.PairNames(p1))
	}
}

func TestSubsetOfPairs(t *testing.T) {
	a := []graph.Pair{{From: 1, To: 2}, {From: 0, To: 1}}
	b := []graph.Pair{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 2}}
	if !SubsetOfPairs(a, b) {
		t.Fatal("a ⊆ b expected")
	}
	if SubsetOfPairs(b, a) {
		t.Fatal("b ⊄ a expected")
	}
	if !SamePairs(a, a) || SamePairs(a, b) {
		t.Fatal("SamePairs misbehaves")
	}
}
