package eval

import (
	"context"
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
)

// ViewGraph materializes the view-image database of Section 4's
// soundness argument: over the same node set as db, it has one edge
// u --e--> v per view symbol e ∈ Σ_E and pair (u,v) ∈ ans(re(e), db).
// Evaluating a rewriting (an expression over Σ_E) on the view-image
// graph is evaluating it over the view extensions; when the rewriting
// is exact, the answers equal those of the original query on the base
// graph — the invariant the metamorphic suite pins.
//
// views maps each Σ_E symbol to its ε-free NFA over Σ (the shape
// produced by core.Instance.ViewNFAs); symbols without a view are
// skipped. Node ids in the returned database equal db's. The per-view
// determinizations and evaluations are governed by the context's
// budget under an "eval.view_graph" span.
func ViewGraph(ctx context.Context, db *graph.DB, sigmaE *alphabet.Alphabet, views map[alphabet.Symbol]*automata.NFA) (*graph.DB, error) {
	ctx, span := obs.StartSpan(ctx, "eval.view_graph")
	defer span.End()
	out := graph.New(nil)
	for n := 0; n < db.NumNodes(); n++ {
		out.AddNode(db.NodeName(graph.NodeID(n)))
	}
	edges := int64(0)
	for _, e := range sigmaE.Symbols() {
		vnfa := views[e]
		if vnfa == nil {
			continue
		}
		d, err := automata.DeterminizeContext(ctx, vnfa)
		if err != nil {
			return nil, fmt.Errorf("eval: view %s: %w", sigmaE.Name(e), err)
		}
		ev, err := New(d, db)
		if err != nil {
			return nil, fmt.Errorf("eval: view %s: %w", sigmaE.Name(e), err)
		}
		sym := out.Labels().Intern(sigmaE.Name(e))
		err = ev.AllPairsFunc(ctx, func(p graph.Pair) error {
			out.AddEdgeIDs(p.From, sym, p.To)
			edges++
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("eval: view %s: %w", sigmaE.Name(e), err)
		}
	}
	span.SetAttr("edges", edges)
	return out, nil
}
