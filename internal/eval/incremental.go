package eval

import (
	"context"
	"sort"

	"regexrw/internal/alphabet"
	"regexrw/internal/budget"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
)

// dedge is an inserted edge in the per-node delta adjacency; its
// symbol is already mapped to the DFA's alphabet.
type dedge struct {
	sym int32
	to  int32
}

// logEdge is one Insert in the evaluator's append-only insertion log,
// the feed for Run.Update. sym < 0 marks an edge whose label the
// automaton cannot follow (kept so the log mirrors the full mutation
// history, skipped by updates).
type logEdge struct {
	from, to int32
	sym      int32
}

// Insert adds the edge from --label--> to to the evaluator's delta
// overlay, creating nodes as needed; the underlying database is not
// touched. Labels outside the automaton's alphabet are logged but
// inert. Insert requires external synchronization against every other
// method (see the Evaluator doc).
func (ev *Evaluator) Insert(from, label, to string) {
	if ev.names == nil {
		// Copy-on-first-insert: intern the base node names in id order
		// so snapshot ids stay valid alongside inserted ones.
		ev.names = alphabet.New()
		for i := 0; i < ev.db.NumNodes(); i++ {
			ev.names.Intern(ev.db.NodeName(graph.NodeID(i)))
		}
	}
	f := int32(ev.names.Intern(from))
	t := int32(ev.names.Intern(to))
	if n := ev.names.Len(); n > ev.numNodes {
		ev.numNodes = n
	}
	sym := noState
	if !ev.empty {
		if s := ev.dfa.Alphabet().Lookup(label); s != alphabet.None {
			sym = int32(s)
		}
	}
	if sym >= 0 {
		for int(f) >= len(ev.delta) {
			ev.delta = append(ev.delta, nil)
		}
		ev.delta[f] = append(ev.delta[f], dedge{sym: sym, to: t})
	}
	ev.log = append(ev.log, logEdge{from: f, to: t, sym: sym})
}

// Run is a retained single-source evaluation: the visited bitsets and
// answer set of a finished BFS, positioned at a point in the
// evaluator's insertion log. Update advances it over edges inserted
// since, re-running only the part of the product the new edges unlock.
// A Run is not safe for concurrent use.
type Run struct {
	ev      *Evaluator
	src     graph.NodeID
	st      bfsState
	answers []graph.NodeID
	logPos  int
}

// Start runs the full single-source BFS and retains its state for
// incremental re-evaluation. Governed like From (stage "eval.bfs").
func (ev *Evaluator) Start(ctx context.Context, src graph.NodeID) (*Run, error) {
	ctx, span := obs.StartSpan(ctx, "eval.from")
	defer span.End()
	if err := ev.checkNode(src); err != nil {
		return nil, err
	}
	r := &Run{ev: ev, src: src, logPos: len(ev.log)}
	if ev.empty {
		return r, nil
	}
	r.st = bfsState{visited: ev.newRows(), emitted: make([]uint64, ev.words())}
	meter := budget.Enter(ctx, "eval.bfs")
	emit := func(n graph.NodeID) error {
		r.answers = append(r.answers, n)
		return nil
	}
	if err := ev.seedFrom(src, &r.st, emit); err != nil {
		return nil, err
	}
	if err := meter.AddStates(1); err != nil {
		return nil, err
	}
	if err := ev.bfs(meter, &r.st, emit); err != nil {
		return nil, err
	}
	span.SetAttr("answers", int64(len(r.answers)))
	return r, nil
}

// Source returns the run's source node.
func (r *Run) Source() graph.NodeID { return r.src }

// Answers returns the current answer set, sorted by node id.
func (r *Run) Answers() []graph.NodeID {
	out := append([]graph.NodeID(nil), r.answers...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Update consumes the insertions made since the run last settled and
// continues the BFS from exactly the configurations they unlock: an
// inserted edge u→v on symbol a seeds (v, δ(q, a)) for every already
// visited configuration (u, q) whose successor is new. Answers only
// grow (evaluation is monotone under edge insertion) and the result of
// Update is identical to re-running from scratch on the extended
// graph. Returns the newly discovered answers in discovery order;
// governed under an "eval.update" span, stage "eval.update".
func (r *Run) Update(ctx context.Context) ([]graph.NodeID, error) {
	ctx, span := obs.StartSpan(ctx, "eval.update")
	defer span.End()
	ev := r.ev
	span.SetAttr("log_edges", int64(len(ev.log)-r.logPos))
	if ev.empty {
		r.logPos = len(ev.log)
		return nil, nil
	}
	r.grow()
	meter := budget.Enter(ctx, "eval.update")
	var fresh []graph.NodeID
	emit := func(n graph.NodeID) error {
		fresh = append(fresh, n)
		return nil
	}
	seeded := 0
	for _, le := range ev.log[r.logPos:] {
		if le.sym < 0 {
			continue
		}
		if err := meter.Check(); err != nil {
			return nil, err
		}
		for q := range r.st.visited {
			if !bitGet(r.st.visited[q], le.from) {
				continue
			}
			q2 := ev.next[q*ev.nsym+int(le.sym)]
			if q2 < 0 || bitGet(r.st.visited[q2], le.to) {
				continue
			}
			bitSet(r.st.visited[q2], le.to)
			seeded++
			if ev.accept[q2] && !bitGet(r.st.emitted, le.to) {
				bitSet(r.st.emitted, le.to)
				if err := emit(graph.NodeID(le.to)); err != nil {
					return nil, err
				}
			}
			r.st.frontier = append(r.st.frontier, cfg{le.to, q2})
		}
	}
	r.logPos = len(ev.log)
	if err := meter.AddStates(seeded); err != nil {
		return nil, err
	}
	if err := ev.bfs(meter, &r.st, emit); err != nil {
		return nil, err
	}
	r.answers = append(r.answers, fresh...)
	span.SetAttr("answers", int64(len(fresh)))
	return fresh, nil
}

// grow widens the run's bitset rows to the evaluator's current node
// count (inserts may have added nodes since the run settled).
func (r *Run) grow() {
	w := r.ev.words()
	if len(r.st.emitted) >= w {
		return
	}
	grown := make([]uint64, w)
	copy(grown, r.st.emitted)
	r.st.emitted = grown
	for q, row := range r.st.visited {
		g := make([]uint64, w)
		copy(g, row)
		r.st.visited[q] = g
	}
}

// AllRun is the all-pairs analogue of Run: one retained run per source
// node. Sources are fixed at StartAll; answers from nodes inserted
// later are not tracked (answers *to* them are). Not safe for
// concurrent use.
type AllRun struct {
	ev   *Evaluator
	runs []*Run
}

// StartAll evaluates all pairs and retains per-source state for
// incremental re-evaluation. Memory is O(sources × DFA states × nodes)
// bits — meant for the moderate graph sizes where all-pairs answers
// are themselves tractable.
func (ev *Evaluator) StartAll(ctx context.Context) (*AllRun, error) {
	ctx, span := obs.StartSpan(ctx, "eval.all_pairs")
	defer span.End()
	ar := &AllRun{ev: ev, runs: make([]*Run, ev.numNodes)}
	for src := 0; src < ev.numNodes; src++ {
		r, err := ev.Start(ctx, graph.NodeID(src))
		if err != nil {
			return nil, err
		}
		ar.runs[src] = r
	}
	return ar, nil
}

// Update advances every retained source run over the pending
// insertions, returning the newly discovered pairs sorted by
// (from, to).
func (ar *AllRun) Update(ctx context.Context) ([]graph.Pair, error) {
	ctx, span := obs.StartSpan(ctx, "eval.update")
	defer span.End()
	var fresh []graph.Pair
	for _, r := range ar.runs {
		nodes, err := r.Update(ctx)
		if err != nil {
			return nil, err
		}
		for _, n := range nodes {
			fresh = append(fresh, graph.Pair{From: r.src, To: n})
		}
	}
	sortPairs(fresh)
	span.SetAttr("answers", int64(len(fresh)))
	return fresh, nil
}

// Pairs returns the current all-pairs answer set, sorted by
// (from, to).
func (ar *AllRun) Pairs() []graph.Pair {
	var out []graph.Pair
	for _, r := range ar.runs {
		for _, n := range r.answers {
			out = append(out, graph.Pair{From: r.src, To: n})
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []graph.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].From != ps[j].From {
			return ps[i].From < ps[j].From
		}
		return ps[i].To < ps[j].To
	})
}
