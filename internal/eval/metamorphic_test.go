package eval

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/graph"
	"regexrw/internal/workload"
)

// The metamorphic suite pins three semantic invariants of RPQ
// answering (Section 4):
//
//  1. monotonicity — adding edges never shrinks an answer set;
//  2. incremental ≡ from-scratch — a Run updated over k single-edge
//     insertions renders byte-identical answers to a fresh evaluation
//     of the extended graph;
//  3. rewriting soundness — answers of the Σ_E-maximal rewriting over
//     the view-image graph are contained in the answers of the
//     original query over the base graph, with equality when the
//     exactness report marks the rewriting exact.

var metaExprs = []string{
	"a·(b·a+c)*", "(a+b)*·c", "a*", "(a·b+c)*", "a+b·c", "c?·(a+b)",
}

func metaGraph(r *rand.Rand) *graph.DB {
	return workload.RandomGraph(r, workload.GraphConfig{
		Nodes:  2 + r.Intn(10),
		Edges:  r.Intn(30),
		Labels: []string{"a", "b", "c"},
	})
}

// extend returns a copy of db with extra random edges appended — the
// from-scratch twin of an insertion sequence.
func extend(db *graph.DB, edges [][3]string) *graph.DB {
	var text strings.Builder
	if _, err := db.WriteTo(&text); err != nil {
		panic(err)
	}
	out, err := graph.Read(strings.NewReader(text.String()), nil)
	if err != nil {
		panic(err)
	}
	for _, e := range edges {
		out.AddEdge(e[0], e[1], e[2])
	}
	return out
}

func TestMetamorphicMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	labels := []string{"a", "b", "c", "zzz"} // zzz is inert for every query
	for trial := 0; trial < 40; trial++ {
		db := metaGraph(r)
		expr := metaExprs[r.Intn(len(metaExprs))]
		dfa, _ := compile(t, expr, "a", "b", "c")
		ev, err := New(dfa, db)
		if err != nil {
			t.Fatal(err)
		}
		first, err := ev.AllPairs(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Round-tripping through the text codec permutes node ids, so
		// growth is compared on name-rendered answer sets.
		prev := namePairSet(db.NodeName, first)
		grown := db
		for step := 0; step < 5; step++ {
			edge := [3]string{
				fmt.Sprintf("n%d", r.Intn(db.NumNodes())),
				labels[r.Intn(len(labels))],
				fmt.Sprintf("n%d", r.Intn(db.NumNodes())),
			}
			grown = extend(grown, [][3]string{edge})
			ev2, err := New(dfa, grown)
			if err != nil {
				t.Fatal(err)
			}
			pairs, err := ev2.AllPairs(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			next := namePairSet(grown.NodeName, pairs)
			for p := range prev {
				if _, ok := next[p]; !ok {
					t.Fatalf("trial %d step %d (%s): adding edge %v dropped answer %s\nbefore: %v\nafter:  %v",
						trial, step, expr, edge, p, prev, next)
				}
			}
			prev = next
		}
	}
}

// namePairSet renders an answer set by node names, erasing the id
// permutation the text codec introduces.
func namePairSet(name func(graph.NodeID) string, ps []graph.Pair) map[string]bool {
	out := make(map[string]bool, len(ps))
	for _, p := range ps {
		out[name(p.From)+"→"+name(p.To)] = true
	}
	return out
}

// renderNodes renders a node answer set as sorted names — the
// id-agnostic byte-exact form compared across evaluators.
func renderNodes(name func(graph.NodeID) string, ns []graph.NodeID) string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = name(n)
	}
	// Sort by name: ids differ between an evaluator that grew via
	// Insert and a database rebuilt from scratch.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return strings.Join(out, "\n")
}

func renderPairs(name func(graph.NodeID) string, ps []graph.Pair) string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = name(p.From) + "→" + name(p.To)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return strings.Join(out, "\n")
}

func TestMetamorphicIncrementalEqualsFromScratch(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	labels := []string{"a", "b", "c", "zzz"}
	for trial := 0; trial < 40; trial++ {
		db := metaGraph(r)
		expr := metaExprs[r.Intn(len(metaExprs))]
		dfa, _ := compile(t, expr, "a", "b", "c")
		ev, err := New(dfa, db)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.NodeID(r.Intn(db.NumNodes()))
		run, err := ev.Start(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		var inserted [][3]string
		k := 1 + r.Intn(6)
		for i := 0; i < k; i++ {
			from := fmt.Sprintf("n%d", r.Intn(db.NumNodes()))
			to := fmt.Sprintf("n%d", r.Intn(db.NumNodes()))
			if r.Intn(4) == 0 {
				to = fmt.Sprintf("new%d", i) // a node the snapshot has never seen
			}
			edge := [3]string{from, labels[r.Intn(len(labels))], to}
			inserted = append(inserted, edge)
			ev.Insert(edge[0], edge[1], edge[2])
			if r.Intn(2) == 0 { // update mid-sequence or in one batch
				if _, err := run.Update(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := run.Update(context.Background()); err != nil {
			t.Fatal(err)
		}

		scratchDB := extend(db, inserted)
		scratch, err := New(dfa, scratchDB)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scratch.From(context.Background(), scratchDB.NodeID(db.NodeName(src)))
		if err != nil {
			t.Fatal(err)
		}
		got := renderNodes(ev.NodeName, run.Answers())
		if want2 := renderNodes(scratchDB.NodeName, want); got != want2 {
			t.Fatalf("trial %d (%s, src n%d, %d inserts): incremental ≠ from-scratch\nincremental:\n%s\nfrom-scratch:\n%s",
				trial, expr, src, k, got, want2)
		}
	}
}

func TestMetamorphicIncrementalAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 20; trial++ {
		db := metaGraph(r)
		expr := metaExprs[r.Intn(len(metaExprs))]
		dfa, _ := compile(t, expr, "a", "b", "c")
		ev, err := New(dfa, db)
		if err != nil {
			t.Fatal(err)
		}
		all, err := ev.StartAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Insertions among existing nodes: AllRun tracks the sources
		// fixed at StartAll.
		var inserted [][3]string
		for i := 0; i < 1+r.Intn(4); i++ {
			edge := [3]string{
				fmt.Sprintf("n%d", r.Intn(db.NumNodes())),
				[]string{"a", "b", "c"}[r.Intn(3)],
				fmt.Sprintf("n%d", r.Intn(db.NumNodes())),
			}
			inserted = append(inserted, edge)
			ev.Insert(edge[0], edge[1], edge[2])
		}
		if _, err := all.Update(context.Background()); err != nil {
			t.Fatal(err)
		}
		scratchDB := extend(db, inserted)
		scratch, err := New(dfa, scratchDB)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scratch.AllPairs(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := renderPairs(ev.NodeName, all.Pairs())
		if want2 := renderPairs(scratchDB.NodeName, want); got != want2 {
			t.Fatalf("trial %d (%s): incremental all-pairs ≠ from-scratch\nincremental:\n%s\nfrom-scratch:\n%s",
				trial, expr, got, want2)
		}
	}
}

func TestMetamorphicRewritingSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	n := 120
	if testing.Short() {
		n = 30
	}
	exact, sound := 0, 0
	for trial := 0; trial < n; trial++ {
		inst := workload.RandomInstance(r, workload.InstanceConfig{
			AlphabetSize: 2 + r.Intn(2),
			NumViews:     2 + r.Intn(2),
			QueryDepth:   2,
			ViewDepth:    2,
		})
		rw, err := core.MaximalRewritingContext(context.Background(), inst)
		if err != nil {
			t.Fatal(err)
		}
		db := workload.RandomGraph(r, workload.GraphConfig{
			Nodes:  2 + r.Intn(8),
			Edges:  r.Intn(25),
			Labels: inst.Sigma().Names(),
		})

		// Original query over the base graph.
		qdfa, err := automata.DeterminizeContext(context.Background(), inst.QueryNFA())
		if err != nil {
			t.Fatal(err)
		}
		qev, err := New(qdfa.Minimize().TrimPartial(), db)
		if err != nil {
			t.Fatal(err)
		}
		queryAns, err := qev.AllPairs(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		// Rewriting over the view-image graph.
		vg, err := ViewGraph(context.Background(), db, inst.SigmaE(), inst.ViewNFAs())
		if err != nil {
			t.Fatal(err)
		}
		rev, err := New(rw.MinimalDFA(), vg)
		if err != nil {
			t.Fatal(err)
		}
		rwAns, err := rev.AllPairs(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		// Soundness holds for every maximal rewriting: exp(L(R)) ⊆ L(E0),
		// so every rewriting answer is a query answer.
		if !SubsetOfPairs(rwAns, queryAns) {
			t.Fatalf("trial %d: rewriting answers ⊄ query answers\ninstance: %s\nrewriting: %v\nquery:     %v\n%s",
				trial, inst, vg.PairNames(rwAns), db.PairNames(queryAns), db.DOT("base"))
		}
		sound++

		// Equality on instances the exactness report marks exact
		// (paper §4: evaluating an exact rewriting over the view
		// extensions answers the original query).
		if isExact, _ := rw.IsExact(); isExact {
			exact++
			if !SamePairs(rwAns, queryAns) {
				t.Fatalf("trial %d: exact rewriting disagrees with query\ninstance: %s\nrewriting: %v\nquery:     %v",
					trial, inst, vg.PairNames(rwAns), db.PairNames(queryAns))
			}
		}
	}
	t.Logf("soundness on %d instances, equality checked on %d exact ones", sound, exact)
	if exact == 0 {
		t.Fatal("no instance was exact; the equality branch never ran — reseed the generator")
	}
}
