package language_test

import (
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/language"
	"regexrw/internal/regex"
)

func ExampleEnumerate() {
	al := alphabet.New()
	n := regex.MustParse("a·(b+c)").ToNFA(al)
	for _, w := range language.Enumerate(n, 3, 0) {
		fmt.Println(automata.FormatWord(al, w))
	}
	// Output:
	// a·b
	// a·c
}

func ExampleCount() {
	al := alphabet.New()
	n := regex.MustParse("(a+b)*").ToNFA(al)
	fmt.Println(language.Count(n, 10))
	// Output:
	// 1024
}
