// Package language provides word-level utilities over regular languages:
// bounded enumeration, random sampling, and the word-level expansion
// semantics exp_Σ of the paper's Section 2. The package is the
// ground-truth oracle that tests use to validate the automata-theoretic
// constructions independently of the constructions themselves.
package language

import (
	"math/big"
	"math/rand"
	"sort"
	"strings"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// Word is a sequence of symbols.
type Word = []alphabet.Symbol

// Enumerate returns every word of length ≤ maxLen accepted by n, in
// length-lexicographic order, stopping after maxCount words (maxCount ≤ 0
// means unbounded). The traversal explores the determinized state space,
// so it prunes dead prefixes and terminates even for infinite languages.
func Enumerate(n *automata.NFA, maxLen, maxCount int) []Word {
	d := automata.Determinize(n).TrimPartial()
	return EnumerateDFA(d, maxLen, maxCount)
}

// EnumerateDFA is Enumerate on an already-deterministic automaton.
func EnumerateDFA(d *automata.DFA, maxLen, maxCount int) []Word {
	var out []Word
	if d.Start() == automata.NoState {
		return out
	}
	syms := d.Alphabet().Symbols()
	type item struct {
		state automata.State
		word  Word
	}
	frontier := []item{{d.Start(), Word{}}}
	for depth := 0; depth <= maxLen; depth++ {
		// Collect accepted words at this depth (length-lex order comes
		// from processing depths in order and symbols in id order).
		for _, it := range frontier {
			if d.Accepting(it.state) {
				out = append(out, it.word)
				if maxCount > 0 && len(out) >= maxCount {
					return out
				}
			}
		}
		if depth == maxLen {
			break
		}
		var next []item
		for _, it := range frontier {
			for _, x := range syms {
				if t := d.Next(it.state, x); t != automata.NoState {
					w := make(Word, len(it.word)+1)
					copy(w, it.word)
					w[len(it.word)] = x
					next = append(next, item{t, w})
				}
			}
		}
		frontier = next
	}
	return out
}

// Sample returns up to count words accepted by n, drawn by random walks
// of length ≤ maxLen over the trimmed determinized automaton. Returned
// words may repeat. Returns nil for the empty language.
func Sample(n *automata.NFA, r *rand.Rand, count, maxLen int) []Word {
	d := automata.Determinize(n).TrimPartial()
	if d.Start() == automata.NoState || !anyAccepting(d) {
		return nil
	}
	syms := d.Alphabet().Symbols()
	var out []Word
	for len(out) < count {
		state := d.Start()
		var w Word
		for len(w) <= maxLen {
			// Flip between stopping (if accepting) and walking on.
			if d.Accepting(state) && r.Intn(3) == 0 {
				break
			}
			var choices []alphabet.Symbol
			for _, x := range syms {
				if d.Next(state, x) != automata.NoState {
					choices = append(choices, x)
				}
			}
			if len(choices) == 0 {
				break
			}
			x := choices[r.Intn(len(choices))]
			w = append(w, x)
			state = d.Next(state, x)
		}
		if state != automata.NoState && d.Accepting(state) {
			out = append(out, w)
		}
	}
	return out
}

func anyAccepting(d *automata.DFA) bool {
	for s := 0; s < d.NumStates(); s++ {
		if d.Accepting(automata.State(s)) {
			return true
		}
	}
	return false
}

// Count returns the number of words of length exactly n accepted by
// the automaton, computed by dynamic programming over the determinized
// automaton with arbitrary-precision counters (counts grow like |Σ|^n).
func Count(nfa *automata.NFA, n int) *big.Int {
	d := automata.Determinize(nfa).TrimPartial()
	return CountDFA(d, n)
}

// CountDFA is Count for an already-deterministic automaton.
func CountDFA(d *automata.DFA, n int) *big.Int {
	if d.Start() == automata.NoState {
		return big.NewInt(0)
	}
	// cur[s] = number of words of length i from the start state to s.
	cur := make([]*big.Int, d.NumStates())
	for i := range cur {
		cur[i] = big.NewInt(0)
	}
	cur[d.Start()] = big.NewInt(1)
	for i := 0; i < n; i++ {
		next := make([]*big.Int, d.NumStates())
		for j := range next {
			next[j] = big.NewInt(0)
		}
		for s := 0; s < d.NumStates(); s++ {
			if cur[s].Sign() == 0 {
				continue
			}
			for _, x := range d.Alphabet().Symbols() {
				if t := d.Next(automata.State(s), x); t != automata.NoState {
					next[t].Add(next[t], cur[s])
				}
			}
		}
		cur = next
	}
	total := big.NewInt(0)
	for s := 0; s < d.NumStates(); s++ {
		if d.Accepting(automata.State(s)) {
			total.Add(total, cur[s])
		}
	}
	return total
}

// CountUpTo returns the number of accepted words of length ≤ n.
func CountUpTo(nfa *automata.NFA, n int) *big.Int {
	d := automata.Determinize(nfa).TrimPartial()
	total := big.NewInt(0)
	for i := 0; i <= n; i++ {
		total.Add(total, CountDFA(d, i))
	}
	return total
}

// Key renders a word as a canonical string usable as a map key.
func Key(a *alphabet.Alphabet, w Word) string {
	parts := make([]string, len(w))
	for i, x := range w {
		parts[i] = a.Name(x)
	}
	return strings.Join(parts, "\x00")
}

// Set is a set of words with canonical keys.
type Set struct {
	alpha *alphabet.Alphabet
	words map[string]Word
}

// NewSet returns an empty word set over the alphabet.
func NewSet(a *alphabet.Alphabet) *Set {
	return &Set{alpha: a, words: map[string]Word{}}
}

// Add inserts w.
func (s *Set) Add(w Word) { s.words[Key(s.alpha, w)] = w }

// Contains reports membership.
func (s *Set) Contains(w Word) bool {
	_, ok := s.words[Key(s.alpha, w)]
	return ok
}

// Len returns the number of words.
func (s *Set) Len() int { return len(s.words) }

// Words returns the contents sorted by (length, lexicographic key).
func (s *Set) Words() []Word {
	keys := make([]string, 0, len(s.words))
	for k := range s.words {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		wi, wj := s.words[keys[i]], s.words[keys[j]]
		if len(wi) != len(wj) {
			return len(wi) < len(wj)
		}
		return keys[i] < keys[j]
	})
	out := make([]Word, len(keys))
	for i, k := range keys {
		out[i] = s.words[k]
	}
	return out
}

// SubsetOf reports whether every word of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for _, w := range s.words {
		if !t.Contains(w) {
			return false
		}
	}
	return true
}

// ExpandWords computes the word-level expansion of a Σ_E-word u: the set
// of Σ-words w1…wn with wi ∈ L(views[u[i]]), where each view language is
// enumerated up to viewLen symbols and at most viewCount words per view.
// This is exp_Σ({u}) restricted to bounded view words — the brute-force
// oracle against which the automaton-based expansion of internal/core is
// tested.
func ExpandWords(u Word, views map[alphabet.Symbol]*automata.NFA, sigma *alphabet.Alphabet, viewLen, viewCount int) *Set {
	out := NewSet(sigma)
	perView := make([][]Word, len(u))
	for i, e := range u {
		v, ok := views[e]
		if !ok || v == nil {
			return out // a symbol with no view expands to nothing
		}
		perView[i] = Enumerate(v, viewLen, viewCount)
		if len(perView[i]) == 0 {
			return out
		}
	}
	var rec func(i int, acc Word)
	rec = func(i int, acc Word) {
		if i == len(u) {
			out.Add(append(Word(nil), acc...))
			return
		}
		for _, w := range perView[i] {
			next := make(Word, 0, len(acc)+len(w))
			next = append(append(next, acc...), w...)
			rec(i+1, next)
		}
	}
	rec(0, Word{})
	return out
}
