package language

import (
	"math/rand"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/regex"
)

func nfaOf(t *testing.T, expr string, al *alphabet.Alphabet) *automata.NFA {
	t.Helper()
	n, err := regex.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return n.ToNFA(al)
}

func words(t *testing.T, al *alphabet.Alphabet, ws []Word) []string {
	t.Helper()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = automata.FormatWord(al, w)
	}
	return out
}

func TestEnumerateFinite(t *testing.T) {
	al := alphabet.New()
	got := Enumerate(nfaOf(t, "a·b+c", al), 5, 0)
	rendered := words(t, al, got)
	if len(rendered) != 2 || rendered[0] != "c" || rendered[1] != "a·b" {
		t.Fatalf("Enumerate = %v", rendered)
	}
}

func TestEnumerateRespectsMaxLen(t *testing.T) {
	al := alphabet.New()
	got := Enumerate(nfaOf(t, "a*", al), 3, 0)
	if len(got) != 4 { // ε, a, aa, aaa
		t.Fatalf("Enumerate(a*, ≤3) = %d words, want 4", len(got))
	}
	if len(got[0]) != 0 {
		t.Fatal("first word should be ε")
	}
}

func TestEnumerateRespectsMaxCount(t *testing.T) {
	al := alphabet.New()
	got := Enumerate(nfaOf(t, "(a+b)*", al), 10, 5)
	if len(got) != 5 {
		t.Fatalf("maxCount ignored: %d words", len(got))
	}
}

func TestEnumerateLengthLexOrder(t *testing.T) {
	al := alphabet.New()
	got := Enumerate(nfaOf(t, "(a+b)·(a+b)?", al), 3, 0)
	rendered := words(t, al, got)
	want := []string{"a", "b", "a·a", "a·b", "b·a", "b·b"}
	if len(rendered) != len(want) {
		t.Fatalf("Enumerate = %v, want %v", rendered, want)
	}
	for i := range want {
		if rendered[i] != want[i] {
			t.Fatalf("Enumerate = %v, want %v", rendered, want)
		}
	}
}

func TestEnumerateEmptyLanguage(t *testing.T) {
	al := alphabet.New()
	if got := Enumerate(nfaOf(t, "∅", al), 4, 0); len(got) != 0 {
		t.Fatalf("Enumerate(∅) = %v", got)
	}
}

func TestEnumerateAgreesWithMembership(t *testing.T) {
	al := alphabet.New()
	n := nfaOf(t, "a·(b·a+c)*", al)
	got := Enumerate(n, 4, 0)
	seen := NewSet(al)
	for _, w := range got {
		if !n.Accepts(w) {
			t.Fatalf("enumerated word %v not accepted", automata.FormatWord(al, w))
		}
		seen.Add(w)
	}
	// Exhaustive cross-check over all words of length ≤ 4.
	var all func(w Word, depth int)
	all = func(w Word, depth int) {
		if n.Accepts(w) != seen.Contains(w) {
			t.Fatalf("enumeration disagrees on %v", automata.FormatWord(al, w))
		}
		if depth == 0 {
			return
		}
		for _, x := range al.Symbols() {
			all(append(append(Word(nil), w...), x), depth-1)
		}
	}
	all(Word{}, 4)
}

func TestSample(t *testing.T) {
	al := alphabet.New()
	n := nfaOf(t, "a·b*", al)
	r := rand.New(rand.NewSource(42))
	ws := Sample(n, r, 20, 6)
	if len(ws) != 20 {
		t.Fatalf("Sample returned %d words", len(ws))
	}
	for _, w := range ws {
		if !n.Accepts(w) {
			t.Fatalf("sampled word %v not in language", automata.FormatWord(al, w))
		}
	}
}

func TestSampleEmptyLanguage(t *testing.T) {
	al := alphabet.New()
	if ws := Sample(nfaOf(t, "∅", al), rand.New(rand.NewSource(1)), 5, 4); ws != nil {
		t.Fatalf("Sample(∅) = %v", ws)
	}
}

func TestSetOperations(t *testing.T) {
	al := alphabet.FromNames("a", "b")
	s := NewSet(al)
	w1 := Word{0}
	w2 := Word{0, 1}
	s.Add(w1)
	s.Add(w1) // duplicate
	s.Add(w2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(w1) || s.Contains(Word{1}) {
		t.Fatal("Contains wrong")
	}
	t2 := NewSet(al)
	t2.Add(w1)
	if s.SubsetOf(t2) {
		t.Fatal("SubsetOf wrong direction")
	}
	if !t2.SubsetOf(s) {
		t.Fatal("SubsetOf failed")
	}
	ws := s.Words()
	if len(ws) != 2 || len(ws[0]) != 1 {
		t.Fatal("Words order wrong")
	}
}

func TestKeyDistinguishesSymbolBoundaries(t *testing.T) {
	// Symbols "a","aa": word [aa] must differ from [a,a].
	al := alphabet.FromNames("a", "aa")
	k1 := Key(al, Word{1})
	k2 := Key(al, Word{0, 0})
	if k1 == k2 {
		t.Fatal("Key collides across symbol boundaries")
	}
}

func TestExpandWords(t *testing.T) {
	// Views over Σ={a,b,c}: e1→a, e2→a·c*·b (bounded), e3→c.
	sigma := alphabet.FromNames("a", "b", "c")
	se := alphabet.FromNames("e1", "e2", "e3")
	views := map[alphabet.Symbol]*automata.NFA{
		se.Lookup("e1"): nfaOf(t, "a", sigma),
		se.Lookup("e2"): nfaOf(t, "a·c*·b", sigma),
		se.Lookup("e3"): nfaOf(t, "c", sigma),
	}
	u := Word{se.Lookup("e2"), se.Lookup("e1")}
	got := ExpandWords(u, views, sigma, 4, 0)
	// e2 expands to ab, acb, accb (≤4); e1 to a.
	if got.Len() != 3 {
		t.Fatalf("ExpandWords: %d words, want 3", got.Len())
	}
	if !got.Contains(automata.ParseWord(sigma, "a b a")) {
		t.Fatal("missing a·b·a")
	}
	if !got.Contains(automata.ParseWord(sigma, "a c b a")) {
		t.Fatal("missing a·c·b·a")
	}
}

func TestExpandWordsEmptyViewLanguage(t *testing.T) {
	sigma := alphabet.FromNames("a")
	se := alphabet.FromNames("e1")
	views := map[alphabet.Symbol]*automata.NFA{
		se.Lookup("e1"): nfaOf(t, "∅", sigma),
	}
	got := ExpandWords(Word{se.Lookup("e1")}, views, sigma, 4, 0)
	if got.Len() != 0 {
		t.Fatal("expansion through empty view should be empty")
	}
}

func TestExpandWordsEmptyWord(t *testing.T) {
	sigma := alphabet.FromNames("a")
	got := ExpandWords(Word{}, nil, sigma, 4, 0)
	if got.Len() != 1 || !got.Contains(Word{}) {
		t.Fatal("exp of ε-word should be {ε}")
	}
}

func TestCountExactLengths(t *testing.T) {
	al := alphabet.New()
	n := nfaOf(t, "(a+b)*", al)
	for length, want := range map[int]int64{0: 1, 1: 2, 2: 4, 3: 8, 10: 1024} {
		if got := Count(n, length); got.Int64() != want {
			t.Errorf("Count((a+b)*, %d) = %v, want %d", length, got, want)
		}
	}
}

func TestCountFiniteLanguage(t *testing.T) {
	al := alphabet.New()
	n := nfaOf(t, "a·b+c", al)
	if got := Count(n, 1); got.Int64() != 1 {
		t.Fatalf("Count(length 1) = %v, want 1", got)
	}
	if got := Count(n, 2); got.Int64() != 1 {
		t.Fatalf("Count(length 2) = %v, want 1", got)
	}
	if got := Count(n, 3); got.Sign() != 0 {
		t.Fatalf("Count(length 3) = %v, want 0", got)
	}
}

func TestCountUpToMatchesEnumerate(t *testing.T) {
	al := alphabet.New()
	n := nfaOf(t, "a·(b·a+c)*", al)
	words := Enumerate(n, 6, 0)
	if got := CountUpTo(n, 6); got.Int64() != int64(len(words)) {
		t.Fatalf("CountUpTo = %v, Enumerate found %d", got, len(words))
	}
}

func TestCountEmpty(t *testing.T) {
	al := alphabet.New()
	if got := Count(nfaOf(t, "∅", al), 3); got.Sign() != 0 {
		t.Fatalf("Count(∅) = %v", got)
	}
}

func TestCountLargeLengthBigInt(t *testing.T) {
	// 2^200 overflows int64; big.Int must carry it.
	al := alphabet.New()
	n := nfaOf(t, "(a+b)*", al)
	got := Count(n, 200)
	if got.BitLen() != 201 { // 2^200 has 201 bits
		t.Fatalf("Count length 200 has %d bits, want 201", got.BitLen())
	}
}
