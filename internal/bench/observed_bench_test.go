package bench

import (
	"context"
	"testing"

	"regexrw/internal/core"
	"regexrw/internal/obs"
)

func ex2Inst(b *testing.B) *core.Instance {
	b.Helper()
	inst, err := core.ParseInstance("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func BenchmarkEX2Untraced(b *testing.B) {
	inst := ex2Inst(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.MaximalRewritingContext(ctx, inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEX2Observed(b *testing.B) {
	inst := ex2Inst(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTracer()
		octx := obs.WithMetrics(obs.WithTracer(ctx, tr), obs.NewRegistry())
		if _, err := core.MaximalRewritingContext(octx, inst); err != nil {
			b.Fatal(err)
		}
		if tr.Export() == nil {
			b.Fatal("no trace")
		}
	}
}
