// Package bench is the reproducible benchmark pipeline behind
// cmd/bench: it times the paper's benchmark families (EX2, THM5, THM6,
// THM8) and the graph-evaluation families (GraphEval, GraphEvalIncr)
// against their in-run baselines and emits a machine-readable report
// (BENCH_pipeline.json). Timing comparisons are always within
// one run on one machine — the committed report is compared by schema
// and coverage only, never by wall-clock numbers, so CI stays stable
// across hardware (docs/PERFORMANCE.md §5).
package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/debug"
	"regexrw/internal/engine"
	"regexrw/internal/eval"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
	"regexrw/internal/par"
	"regexrw/internal/planstore"
	"regexrw/internal/regex"
	"regexrw/internal/strategy"
	"regexrw/internal/workload"
)

// Schema identifies the report format; bump on incompatible changes.
const Schema = "regexrw-bench/v1"

// Entry is one (family, parameter) measurement. BaselineNsOp and
// Speedup are zero when the family has no in-run baseline (THM8).
type Entry struct {
	// Family names the benchmark family: EX2Pipeline, EX2Observed,
	// PlanCache, PlanStore, THM5DetBlowup, THM6Exactness, THM8Counter,
	// GraphEval, GraphEvalIncr.
	Family string `json:"family"`
	// Param is the family's size parameter (0 for EX2Pipeline,
	// EX2Observed, PlanCache and PlanStore; the edge count for the
	// GraphEval families).
	Param int `json:"param"`
	// Baseline names what BaselineNsOp measured (e.g. "workers=1",
	// "unmemoized", "materialized"); empty when there is none.
	Baseline string `json:"baseline,omitempty"`
	// NsOp / BaselineNsOp are wall-clock nanoseconds per operation of
	// the optimized and baseline variants (minimum over measurement
	// windows, the standard low-noise estimator).
	NsOp         float64 `json:"ns_op"`
	BaselineNsOp float64 `json:"baseline_ns_op,omitempty"`
	// Speedup is the best per-window baseline/optimized ratio
	// (pairSpeedup): both arms are measured interleaved, round-robin,
	// and the ratio is taken within each window round so the two
	// measurements share the same machine weather. It is therefore NOT
	// BaselineNsOp / NsOp — the ratio of cross-window minima swings with
	// minute-scale drift, which is exactly what the guarded speedups
	// must be immune to.
	Speedup float64 `json:"speedup,omitempty"`
	// States counts the automaton states materialized by one optimized
	// run (A_d + A' + rewriting automaton; minimal-DFA states for THM8).
	States int `json:"states"`
	// Iters is the number of timed iterations of the optimized variant.
	Iters int `json:"iters"`
	// Cache effectiveness over the optimized timed section.
	SubsetHitRate float64 `json:"subset_hit_rate"`
	MemoBuilds    int64   `json:"memo_builds"`
	MemoReuses    int64   `json:"memo_reuses"`
	// PlanHitRate is the engine plan-cache hit rate over the optimized
	// timed section (PlanCache family only).
	PlanHitRate float64 `json:"plan_hit_rate,omitempty"`
	// Edges is the database edge count (GraphEval families only).
	Edges int `json:"edges,omitempty"`
	// AnswersPerSec is the optimized variant's answer yield rate —
	// answers per wall-clock second (GraphEval families only).
	AnswersPerSec float64 `json:"answers_per_sec,omitempty"`
	// Forced holds the ns/op of every forced ablation arm (Strategy*
	// families only), keyed by arm name ("sequential", "dense", …). For
	// these families Baseline names the best forced arm and Speedup is
	// the best per-window best-forced / adaptive ratio, so Speedup ≈ 1
	// means the dispatcher picked (or tied) the winner.
	Forced map[string]float64 `json:"forced,omitempty"`
}

// Report is the full output of one bench run.
type Report struct {
	Schema     string  `json:"schema"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Sizes      string  `json:"sizes"`
	Entries    []Entry `json:"entries"`
}

// SizeSpec fixes the family parameters and the minimum timed duration
// per variant for one size class.
type SizeSpec struct {
	Name string
	THM5 []int
	THM6 []int
	THM8 []int
	// GraphEdges are the database sizes (in edges) for the GraphEval
	// families.
	GraphEdges []int
	MinTime    time.Duration
}

// Sizes returns the spec for a size-class name: smoke (CI sanity,
// sub-second), tiny (the committed BENCH_pipeline.json and the CI
// regression guard), full (local measurement runs).
func Sizes(name string) (SizeSpec, error) {
	switch name {
	case "smoke":
		return SizeSpec{Name: name, THM5: []int{6}, THM6: []int{6}, THM8: []int{1},
			GraphEdges: []int{10_000}, MinTime: 30 * time.Millisecond}, nil
	case "tiny":
		return SizeSpec{Name: name, THM5: []int{8, 10}, THM6: []int{8, 10}, THM8: []int{2, 3},
			GraphEdges: []int{10_000, 100_000}, MinTime: 120 * time.Millisecond}, nil
	case "full":
		return SizeSpec{Name: name, THM5: []int{8, 12, 14}, THM6: []int{8, 12}, THM8: []int{2, 3, 4},
			GraphEdges: []int{10_000, 100_000, 1_000_000}, MinTime: 500 * time.Millisecond}, nil
	}
	return SizeSpec{}, fmt.Errorf("bench: unknown size class %q (want smoke, tiny or full)", name)
}

// measure times fn for at least minTime (after one untimed warmup
// call), split into five windows, and reports the fastest window's mean
// ns/op. Scheduler preemption, frequency scaling and GC pauses only
// ever add time, so the minimum over windows estimates the true cost
// far more robustly than one long mean — pairwise speedups between arms
// measured seconds apart would otherwise be at the mercy of whichever
// arm drew the noisy period.
func measure(minTime time.Duration, fn func() error) (nsOp float64, iters int, err error) {
	if err := fn(); err != nil { // warmup; also surfaces errors before timing
		return 0, 0, err
	}
	const windows = 5
	per := minTime / windows
	best := math.Inf(1)
	for w := 0; w < windows; w++ {
		var dur time.Duration
		n := 0
		for dur < per || n < 3 {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, 0, err
			}
			dur += time.Since(start)
			n++
		}
		iters += n
		if v := float64(dur.Nanoseconds()) / float64(n); v < best {
			best = v
		}
	}
	return best, iters, nil
}

// measureArms times every arm round-robin: window w runs each arm back
// to back before any arm sees window w+1, so slow drift — thermal
// throttling, a neighbor container waking up — hits all arms alike
// instead of whichever arm happened to run during the bad seconds.
// measure's min-of-windows handles noise *within* one arm's run; this
// handles noise *between* arms, which is what pairwise speedups are
// made of. nsOp is each arm's fastest window's mean; windowNs carries
// every window's mean per arm, in window order, for pairSpeedup.
func measureArms(minTime time.Duration, order []string, arms map[string]func() error) (nsOp map[string]float64, iters map[string]int, windowNs map[string][]float64, err error) {
	const windows = 5
	per := minTime / windows
	nsOp = make(map[string]float64, len(arms))
	iters = make(map[string]int, len(arms))
	windowNs = make(map[string][]float64, len(arms))
	for _, name := range order {
		if err := arms[name](); err != nil { // warmup; also surfaces errors before timing
			return nil, nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		nsOp[name] = math.Inf(1)
	}
	for w := 0; w < windows; w++ {
		for _, name := range order {
			// Drain the previous arm's garbage before timing this one: an
			// allocation-heavy arm (the sparse kernel, the unmemoized
			// reference) must not tax its successor's window with its GC
			// debt, or whichever arm happens to follow it in the rotation
			// reads a few percent slow every round.
			runtime.GC()
			fn := arms[name]
			var dur time.Duration
			n := 0
			for dur < per || n < 3 {
				start := time.Now()
				if err := fn(); err != nil {
					return nil, nil, nil, fmt.Errorf("%s: %w", name, err)
				}
				dur += time.Since(start)
				n++
			}
			iters[name] += n
			v := float64(dur.Nanoseconds()) / float64(n)
			windowNs[name] = append(windowNs[name], v)
			if v < nsOp[name] {
				nsOp[name] = v
			}
		}
	}
	return nsOp, iters, windowNs, nil
}

// pairSpeedup returns the best per-window speedup of den over num: for
// each window index, the ratio of num's window mean to den's — both
// measured back to back within that window round — and the maximum over
// windows. This is the min-estimator logic applied to ratios: noise
// inflates either side of any single window's ratio, but a dispatcher
// that genuinely picked a losing arm is slower in *every* window by the
// full arm gap (≥1.5x on the kernel and fan-out families), which no
// amount of jitter turns into a passing best-window ratio. Cross-window
// ratios of minima are NOT used for guarded speedups: on a shared
// runner, minute-scale frequency drift moves even best-of-window
// means by ±30%, which would read as a dispatch regression.
func pairSpeedup(windowNs map[string][]float64, num, den string) float64 {
	best := 0.0
	for w, d := range windowNs[den] {
		if w >= len(windowNs[num]) || d <= 0 {
			continue
		}
		if r := windowNs[num][w] / d; r > best {
			best = r
		}
	}
	return best
}

// runPair measures the optimized variant (with cache counters recorded
// around its timed section) and its baseline, and assembles the entry.
// Paired arms are measured interleaved (measureArms) so the speedup —
// which is what the Check guards gate on — compares windows drawn from
// the same seconds of machine weather; the cache counters consequently
// span both arms (they share the instance's memo tables anyway).
func runPair(family string, param int, baseline string, minTime time.Duration, optimized, base func() error, states int) (Entry, error) {
	automata.ResetCacheStats()
	e := Entry{Family: family, Param: param, Baseline: baseline, States: states}
	if base == nil {
		nsOp, iters, err := measure(minTime, optimized)
		if err != nil {
			return Entry{}, fmt.Errorf("bench: %s(param=%d): %w", family, param, err)
		}
		e.NsOp, e.Iters = nsOp, iters
	} else {
		nsOp, iters, windowNs, err := measureArms(minTime,
			[]string{"optimized", "baseline"},
			map[string]func() error{"optimized": optimized, "baseline": base})
		if err != nil {
			return Entry{}, fmt.Errorf("bench: %s(param=%d): %w", family, param, err)
		}
		e.NsOp, e.Iters = nsOp["optimized"], iters["optimized"]
		e.BaselineNsOp = nsOp["baseline"]
		e.Speedup = pairSpeedup(windowNs, "baseline", "optimized")
	}
	stats := automata.ReadCacheStats()
	e.SubsetHitRate = stats.SubsetHitRate()
	e.MemoBuilds, e.MemoReuses = stats.MemoBuilds, stats.MemoReuses
	return e, nil
}

// rewritingStates is the States metric for pipeline families.
func rewritingStates(r *core.Rewriting) int {
	return r.Ad.NumStates() + r.APrime.NumStates() + r.Auto.NumStates()
}

// Run executes every family of the size class and returns the report.
func Run(ctx context.Context, size SizeSpec) (*Report, error) {
	rep := &Report{Schema: Schema, GoMaxProcs: runtime.GOMAXPROCS(0), Sizes: size.Name}
	seqCtx := par.WithWorkers(ctx, 1)

	// EX2Pipeline: the paper's Example 2 end to end, parallel transfer
	// fan-out vs the sequential (workers=1) pipeline.
	ex2, err := core.ParseInstance("a·(b·a+c)*", map[string]string{
		"e1": "a", "e2": "a·c*·b", "e3": "c",
	})
	if err != nil {
		return nil, err
	}
	pipeline := func(c context.Context, inst *core.Instance) func() error {
		return func() error {
			_, err := core.MaximalRewritingContext(c, inst)
			return err
		}
	}
	r0, err := core.MaximalRewritingContext(ctx, ex2)
	if err != nil {
		return nil, err
	}
	e, err := runPair("EX2Pipeline", 0, "workers=1", size.MinTime,
		pipeline(ctx, ex2), pipeline(seqCtx, ex2), rewritingStates(r0))
	if err != nil {
		return nil, err
	}
	rep.Entries = append(rep.Entries, e)

	// EX2Observed: the same pipeline with a tracer and a per-run metrics
	// registry installed (including building and exporting the span
	// tree) vs the unobserved run. The Check guard bounds observability
	// overhead at 2x; the free-when-off half of the contract is pinned
	// separately by BenchmarkTracerOff's 0 allocs/op.
	observed := func() error {
		tr := obs.NewTracer()
		octx := obs.WithMetrics(obs.WithTracer(ctx, tr), obs.NewRegistry())
		if _, err := core.MaximalRewritingContext(octx, ex2); err != nil {
			return err
		}
		if tr.Export() == nil {
			return fmt.Errorf("observed run exported no trace")
		}
		return nil
	}
	e, err = runPair("EX2Observed", 0, "untraced", size.MinTime,
		observed, pipeline(ctx, ex2), rewritingStates(r0))
	if err != nil {
		return nil, err
	}
	rep.Entries = append(rep.Entries, e)

	// PlanCache: the engine's sharded plan cache on the Example 2
	// request — warm (every timed iteration hits the cached plan) vs
	// cold (cache disabled, every iteration recompiles). The warm side's
	// untimed warmup call populates the cache, so the timed section is
	// pure key-canonicalization + lookup; Check requires it to be at
	// least 10x faster than recompiling.
	warmEng := engine.New(engine.WithMetrics(obs.NewRegistry()))
	coldEng := engine.New(engine.WithMetrics(obs.NewRegistry()), engine.WithPlanCache(0))
	planReq := engine.Request{Instance: ex2}
	warm := func() error {
		_, err := warmEng.Rewrite(ctx, planReq)
		return err
	}
	cold := func() error {
		_, err := coldEng.Rewrite(ctx, planReq)
		return err
	}
	e, err = runPair("PlanCache", 0, "uncached", size.MinTime, warm, cold, rewritingStates(r0))
	if err != nil {
		return nil, err
	}
	if s := warmEng.Stats(); s.Hits+s.Misses > 0 {
		e.PlanHitRate = float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	rep.Entries = append(rep.Entries, e)
	warmEng.Close()
	coldEng.Close()

	// PlanStore: the crash-restart path — one engine compiles Example 2
	// and persists it, a second engine over the same directory
	// warm-starts from disk, and the timed section serves the restored
	// plan. Check requires the restored plan to serve within 2x of the
	// in-memory PlanCache hit above (the restored accessors must not be
	// slower than the compiled ones) and at least 10x faster than the
	// cold recompile baseline.
	e, err = runPlanStore(ctx, size, planReq, rewritingStates(r0))
	if err != nil {
		return nil, err
	}
	rep.Entries = append(rep.Entries, e)

	// THM5DetBlowup: the determinization-blowup family (Theorem 5). The
	// query NFA needs 2^n subset states, which makes it the purest probe
	// of the subset-construction hot path: the memoized construction
	// (shared ε-closure/stepper tables + interned subsets, cache.go) vs
	// the retained pre-memoization reference DeterminizeUnmemoized.
	for _, n := range size.THM5 {
		inst := workload.DetBlowupFamily(n)
		qnfa := inst.Query.ToNFA(inst.Sigma())
		states := automata.Determinize(qnfa).NumStates()
		optimized := func() error {
			_, err := automata.DeterminizeContext(ctx, qnfa)
			return err
		}
		unmemoized := func() error {
			automata.DeterminizeUnmemoized(qnfa)
			return nil
		}
		e, err := runPair("THM5DetBlowup", n, "unmemoized", size.MinTime,
			optimized, unmemoized, states)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, e)
	}

	// THM6Exactness: the on-the-fly containment check (Theorem 6) vs the
	// materialized complement baseline. The rewriting is rebuilt per
	// iteration (matching bench_test.go) so neither side reuses the
	// cached expansion.
	for _, n := range size.THM6 {
		inst := workload.DetBlowupFamily(n)
		fly := func() error {
			r, err := core.MaximalRewritingContext(ctx, inst)
			if err != nil {
				return err
			}
			if ok, _ := r.IsExact(); !ok {
				return fmt.Errorf("expected exact rewriting")
			}
			return nil
		}
		materialized := func() error {
			r, err := core.MaximalRewritingContext(ctx, inst)
			if err != nil {
				return err
			}
			if !r.IsExactMaterialized() {
				return fmt.Errorf("expected exact rewriting")
			}
			return nil
		}
		rn, err := core.MaximalRewritingContext(ctx, inst)
		if err != nil {
			return nil, err
		}
		e, err := runPair("THM6Exactness", n, "materialized", size.MinTime,
			fly, materialized, rewritingStates(rn))
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, e)
	}

	// THM8Counter: the lower-bound family; no baseline, the point is the
	// growth curve and the states count (n·2^n shows up in the minimal
	// DFA).
	for _, n := range size.THM8 {
		inst := workload.CounterFamily(n)
		var states int
		run := func() error {
			r, err := core.MaximalRewritingContext(ctx, inst)
			if err != nil {
				return err
			}
			states = r.MinimalDFA().NumStates()
			return nil
		}
		e, err := runPair("THM8Counter", n, "", size.MinTime, run, nil, 0)
		if err != nil {
			return nil, err
		}
		e.States = states
		rep.Entries = append(rep.Entries, e)
	}

	// GraphEval / GraphEvalIncr: RPQ answering over labeled graphs.
	ge, err := runGraphEval(ctx, size)
	if err != nil {
		return nil, err
	}
	rep.Entries = append(rep.Entries, ge...)

	// Strategy*: the adaptive dispatcher against its forced ablation
	// arms, one family per adaptive domain.
	se, err := runStrategy(ctx, size, ex2, rewritingStates(r0))
	if err != nil {
		return nil, err
	}
	rep.Entries = append(rep.Entries, se...)
	return rep, nil
}

// runStrategyEntry times the adaptive variant plus every forced arm of
// one strategy decision and assembles the entry: Forced records each
// arm's ns/op, Baseline/Speedup compare the adaptive run against the
// best (fastest) forced arm — the dispatcher's job is to match the
// winner without being told which one it is. Arms are measured
// interleaved (measureArms): the speedups here compare code paths that
// are often byte-identical, so a few percent of machine drift between
// separately timed arms would dominate the signal.
func runStrategyEntry(family string, param int, minTime time.Duration, adaptive func() error, forced map[string]func() error, states int) (Entry, error) {
	names := make([]string, 0, len(forced))
	for name := range forced {
		names = append(names, name)
	}
	sort.Strings(names)
	order := append([]string{"adaptive"}, names...)
	arms := make(map[string]func() error, len(forced)+1)
	arms["adaptive"] = adaptive
	for name, fn := range forced {
		arms[name] = fn
	}
	automata.ResetCacheStats()
	nsOp, iters, windowNs, err := measureArms(minTime, order, arms)
	if err != nil {
		return Entry{}, fmt.Errorf("bench: %s(param=%d): %w", family, param, err)
	}
	stats := automata.ReadCacheStats() // spans all arms: they share the instance's memo tables
	e := Entry{
		Family: family, Param: param,
		NsOp: nsOp["adaptive"], Iters: iters["adaptive"], States: states,
		SubsetHitRate: stats.SubsetHitRate(),
		MemoBuilds:    stats.MemoBuilds, MemoReuses: stats.MemoReuses,
		Forced: make(map[string]float64, len(forced)),
	}
	bestName, best := "", math.MaxFloat64
	for _, name := range names {
		e.Forced[name] = nsOp[name]
		if nsOp[name] < best {
			bestName, best = name, nsOp[name]
		}
	}
	e.Baseline = "forced_" + bestName
	e.BaselineNsOp = best
	e.Speedup = pairSpeedup(windowNs, bestName, "adaptive")
	return e, nil
}

// runStrategy builds the Strategy* families: for each adaptive decision
// the dispatcher makes (internal/strategy), the adaptive run vs every
// forced arm. StrategyEX2 probes the transfer fan-out on the paper's
// Example 2, StrategyTHM5 the minimization kernel on the Theorem 5
// blowup DFA, StrategyTHM6 the Theorem 6 exactness complement. Check
// enforces adaptive ≥ 0.95x the best forced arm on every entry and the
// dense kernel ≥ 1.5x over sparse on StrategyTHM5.
func runStrategy(ctx context.Context, size SizeSpec, ex2 *core.Instance, ex2States int) ([]Entry, error) {
	var entries []Entry

	// StrategyEX2: adaptive fan-out vs forced-sequential / forced-parallel
	// pipelines. Example 2 is tiny, so the cost model should keep it
	// inline — the forced-parallel arm pays the pool dispatch for ~nothing.
	pipeline := func(c context.Context) func() error {
		return func() error {
			_, err := core.MaximalRewritingContext(c, ex2)
			return err
		}
	}
	e, err := runStrategyEntry("StrategyEX2", 0, size.MinTime,
		pipeline(ctx),
		map[string]func() error{
			"sequential": pipeline(strategy.With(ctx, strategy.Config{FanOut: strategy.FanOutForceSequential})),
			"parallel":   pipeline(strategy.With(ctx, strategy.Config{FanOut: strategy.FanOutForceParallel})),
		}, ex2States)
	if err != nil {
		return nil, err
	}
	entries = append(entries, e)

	// StrategyTHM5: adaptive minimization kernel vs forced sparse /
	// forced dense on the determinized Theorem 5 blowup DFA (2^n states,
	// 2-symbol alphabet — squarely in dense territory; the forced-dense
	// arm also pays the per-call table build, so the ratio is honest).
	for _, n := range size.THM5 {
		inst := workload.DetBlowupFamily(n)
		dfa := automata.Determinize(inst.Query.ToNFA(inst.Sigma()))
		minimize := func(c context.Context) func() error {
			return func() error {
				_, err := dfa.MinimizeContext(c)
				return err
			}
		}
		e, err := runStrategyEntry("StrategyTHM5", n, size.MinTime,
			minimize(ctx),
			map[string]func() error{
				"sparse": minimize(strategy.With(ctx, strategy.Config{Kernel: strategy.KernelForceSparse})),
				"dense":  minimize(strategy.With(ctx, strategy.Config{Kernel: strategy.KernelForceDense})),
			}, dfa.NumStates())
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}

	// StrategyTHM6: adaptive exactness vs forced on-the-fly / forced
	// materialized complement. The rewriting is rebuilt per iteration
	// (matching the THM6Exactness family) so no arm reuses the cached
	// expansion.
	for _, n := range size.THM6 {
		inst := workload.DetBlowupFamily(n)
		exact := func(c context.Context) func() error {
			return func() error {
				r, err := core.MaximalRewritingContext(c, inst)
				if err != nil {
					return err
				}
				ok, _, err := r.IsExactContext(c)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("expected exact rewriting")
				}
				return nil
			}
		}
		rn, err := core.MaximalRewritingContext(ctx, inst)
		if err != nil {
			return nil, err
		}
		e, err := runStrategyEntry("StrategyTHM6", n, size.MinTime,
			exact(ctx),
			map[string]func() error{
				"on_the_fly":   exact(strategy.With(ctx, strategy.Config{Exactness: strategy.ExactnessForceOnTheFly})),
				"materialized": exact(strategy.With(ctx, strategy.Config{Exactness: strategy.ExactnessForceMaterialized})),
			}, rewritingStates(rn))
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// runGraphEval builds the graph-evaluation entries: for each database
// size, the frontier-bitset evaluator (internal/eval) vs the map-based
// product BFS (graph.DB.EvalFrom) answering the same single-source RPQ
// over a seeded power-law graph, then a live run maintained under edge
// insertions (Run.Update's delta propagation) vs re-answering from
// scratch after each insertion. Param and Edges are the edge count;
// Check enforces the ≥5x contracts at 100k+ edges, where dense bitset
// rows absorb hub fan-out that drowns the per-config hash maps.
func runGraphEval(ctx context.Context, size SizeSpec) ([]Entry, error) {
	labels := []string{"a", "b", "c"}
	node, err := regex.Parse("a·(b+c)*")
	if err != nil {
		return nil, err
	}
	sigma := alphabet.New()
	for _, l := range labels {
		sigma.Intern(l)
	}
	nfa := node.ToNFA(sigma)
	dfa := automata.Determinize(nfa).Minimize().TrimPartial()

	var entries []Entry
	for _, edges := range size.GraphEdges {
		nodes := edges / 10
		if nodes < 10 {
			nodes = 10
		}
		db := workload.PowerLawGraph(rand.New(rand.NewSource(int64(edges))), nodes, edges, labels)
		// Answer from the busiest node so the single-source run has real
		// fan-out to chew through (deterministic: first max-degree node).
		src := graph.NodeID(0)
		for n := 0; n < db.NumNodes(); n++ {
			if len(db.Out(graph.NodeID(n))) > len(db.Out(src)) {
				src = graph.NodeID(n)
			}
		}

		ev, err := eval.New(dfa, db)
		if err != nil {
			return nil, err
		}
		var answers int
		frontier := func() error {
			got, err := ev.From(ctx, src)
			answers = len(got)
			return err
		}
		naive := func() error {
			if got := db.EvalFrom(nfa, src); len(got) != answers {
				return fmt.Errorf("map BFS found %d answers, frontier found %d", len(got), answers)
			}
			return nil
		}
		e, err := runPair("GraphEval", edges, "map_bfs", size.MinTime, frontier, naive, dfa.NumStates())
		if err != nil {
			return nil, err
		}
		e.Edges = db.NumEdges()
		if e.NsOp > 0 {
			e.AnswersPerSec = float64(answers) / (e.NsOp / 1e9)
		}
		entries = append(entries, e)

		// Incremental: each timed iteration inserts one fresh edge and
		// propagates just its delta; the baseline re-runs the full
		// single-source BFS on the (static) original graph — the work a
		// caller without Run.Update would repeat per insertion.
		evInc, err := eval.New(dfa, db)
		if err != nil {
			return nil, err
		}
		run, err := evInc.Start(ctx, src)
		if err != nil {
			return nil, err
		}
		ir := rand.New(rand.NewSource(int64(edges) + 1))
		incremental := func() error {
			from := db.NodeName(graph.NodeID(ir.Intn(nodes)))
			to := db.NodeName(graph.NodeID(ir.Intn(nodes)))
			evInc.Insert(from, labels[ir.Intn(len(labels))], to)
			_, err := run.Update(ctx)
			return err
		}
		evScratch, err := eval.New(dfa, db)
		if err != nil {
			return nil, err
		}
		fromScratch := func() error {
			_, err := evScratch.From(ctx, src)
			return err
		}
		e, err = runPair("GraphEvalIncr", edges, "from_scratch", size.MinTime,
			incremental, fromScratch, dfa.NumStates())
		if err != nil {
			return nil, err
		}
		e.Edges = db.NumEdges()
		if e.NsOp > 0 {
			e.AnswersPerSec = float64(len(run.Answers())) / (e.NsOp / 1e9)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// runPlanStore builds the PlanStore family entry: persist one plan,
// warm-start a fresh engine from the directory, time requests against
// the restored plan vs a cold-compile baseline.
func runPlanStore(ctx context.Context, size SizeSpec, planReq engine.Request, states int) (Entry, error) {
	dir, err := os.MkdirTemp("", "regexrw-bench-planstore-*")
	if err != nil {
		return Entry{}, err
	}
	defer os.RemoveAll(dir)

	seedStore, err := planstore.Open(dir, planstore.WithMetrics(obs.NewRegistry()), planstore.WithoutSync())
	if err != nil {
		return Entry{}, err
	}
	seedEng := engine.New(engine.WithMetrics(obs.NewRegistry()), engine.WithPlanStore(seedStore))
	if _, err := seedEng.Rewrite(ctx, planReq); err != nil {
		return Entry{}, err
	}
	seedEng.FlushStore()
	seedEng.Close()

	restartStore, err := planstore.Open(dir, planstore.WithMetrics(obs.NewRegistry()))
	if err != nil {
		return Entry{}, err
	}
	restartEng := engine.New(engine.WithMetrics(obs.NewRegistry()), engine.WithPlanStore(restartStore))
	defer restartEng.Close()
	if n, err := restartEng.WarmStart(ctx); err != nil {
		return Entry{}, err
	} else if n != 1 {
		return Entry{}, fmt.Errorf("bench: PlanStore warm start restored %d plans, want 1", n)
	}
	restored := func() error {
		_, err := restartEng.Rewrite(ctx, planReq)
		return err
	}
	coldEng := engine.New(engine.WithMetrics(obs.NewRegistry()), engine.WithPlanCache(0))
	defer coldEng.Close()
	cold := func() error {
		_, err := coldEng.Rewrite(ctx, planReq)
		return err
	}
	e, err := runPair("PlanStore", 0, "cold_compile", size.MinTime, restored, cold, states)
	if err != nil {
		return Entry{}, err
	}
	if st := restartEng.Stats(); st.Compiles != 0 {
		return Entry{}, fmt.Errorf("bench: PlanStore timed section compiled %d times, want 0", st.Compiles)
	} else if st.Hits+st.Misses > 0 {
		e.PlanHitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return e, nil
}

// Check is the in-run regression guard: for the families with an in-run
// baseline that the optimization work targets (EX2Pipeline,
// THM6Exactness) plus the observability overhead probe (EX2Observed),
// the optimized/observed variant must not be more than 2x slower than
// its baseline measured in the same run on the same machine. The
// PlanCache family carries a stronger contract: serving a cached plan
// must be at least 10x faster than recompiling it, since the warm path
// is a key hash plus a shard lookup. The GraphEval families carry the
// evaluator contract: at 100k edges and beyond, the frontier-bitset
// evaluator must answer at least 5x faster than the map-based product
// BFS, and an incremental update at least 5x faster than re-answering
// from scratch (smaller graphs fit in cache either way and prove
// nothing). A failure means the optimized path regressed against the
// code it is supposed to beat — or that tracing got expensive enough to
// distort what it measures.
func Check(rep *Report) error {
	var planCacheNsOp float64
	for _, e := range rep.Entries {
		if e.Family == "PlanCache" {
			planCacheNsOp = e.NsOp
		}
	}
	for _, e := range rep.Entries {
		if e.BaselineNsOp == 0 {
			continue
		}
		if e.Family == "PlanCache" || e.Family == "PlanStore" {
			if e.Speedup < 10 {
				return fmt.Errorf("bench: regression: %s(param=%d) warm %.0f ns/op is only %.1fx faster than cold %.0f ns/op (want >= 10x)",
					e.Family, e.Param, e.NsOp, e.Speedup, e.BaselineNsOp)
			}
			// The restart-hit contract: a plan restored from disk into
			// the LRU must serve within 2x of a plan the same process
			// compiled — restored accessors answer from the same
			// precomputed artifacts, so slower means a regression in
			// the restore path.
			if e.Family == "PlanStore" && planCacheNsOp > 0 && e.NsOp > 2*planCacheNsOp {
				return fmt.Errorf("bench: regression: PlanStore restart hit %.0f ns/op is >2x the in-memory PlanCache hit %.0f ns/op",
					e.NsOp, planCacheNsOp)
			}
			continue
		}
		if e.Family == "GraphEval" || e.Family == "GraphEvalIncr" {
			if e.Param >= 100_000 && e.Speedup < 5 {
				return fmt.Errorf("bench: regression: %s(edges=%d) %.0f ns/op is only %.1fx faster than %s %.0f ns/op (want >= 5x)",
					e.Family, e.Param, e.NsOp, e.Speedup, e.Baseline, e.BaselineNsOp)
			}
			continue
		}
		if strings.HasPrefix(e.Family, "Strategy") {
			// The adaptive dispatcher must match the best forced arm. 0.95
			// rather than 1.0 because the two sides are separate timed
			// sections of the same work: run-to-run noise on a loaded
			// machine is a few percent, and a real dispatch mistake (picking
			// the losing arm) costs far more than 5%. Not enforced under
			// regexrwdebug: the dispatcher's per-item costs are calibrated
			// for release builds, and invariant checking inflates
			// sequential work enough to flip which arm is genuinely best —
			// a build-mode artifact, not a dispatch regression.
			if !debug.Enabled && e.Speedup < 0.95 {
				return fmt.Errorf("bench: regression: %s(param=%d) adaptive %.0f ns/op is slower than the best forced arm %s %.0f ns/op (%.2fx, want >= 0.95x)",
					e.Family, e.Param, e.NsOp, e.Baseline, e.BaselineNsOp, e.Speedup)
			}
			// The dense-kernel contract on the Theorem 5 DFA: the CSR
			// refinement must beat the map-backed one by 1.5x or the dense
			// port has regressed into pointer chasing.
			if e.Family == "StrategyTHM5" {
				sparse, dense := e.Forced["sparse"], e.Forced["dense"]
				if dense > 0 && sparse/dense < 1.5 {
					return fmt.Errorf("bench: regression: StrategyTHM5(param=%d) dense kernel %.0f ns/op is only %.2fx faster than sparse %.0f ns/op (want >= 1.5x)",
						e.Param, dense, sparse/dense, sparse)
				}
			}
			continue
		}
		if e.Family != "EX2Pipeline" && e.Family != "THM6Exactness" && e.Family != "EX2Observed" {
			continue
		}
		// With the adaptive fan-out, the multi-worker EX2 pipeline must
		// at least tie the forced workers=1 baseline (it used to lose by
		// dispatching goroutines for microseconds of work); 0.95 leaves
		// room for timing noise between the two sections.
		if e.Family == "EX2Pipeline" && rep.GoMaxProcs > 1 && e.Speedup < 0.95 {
			return fmt.Errorf("bench: regression: EX2Pipeline at GOMAXPROCS=%d %.0f ns/op lost to the workers=1 baseline %.0f ns/op (%.2fx, want >= 0.95x)",
				rep.GoMaxProcs, e.NsOp, e.BaselineNsOp, e.Speedup)
		}
		if e.NsOp > 2*e.BaselineNsOp {
			return fmt.Errorf("bench: regression: %s(param=%d) optimized %.0f ns/op is >2x baseline %.0f ns/op",
				e.Family, e.Param, e.NsOp, e.BaselineNsOp)
		}
	}
	return nil
}

// CompareSchema checks a freshly produced report against a committed
// reference: same schema version and at least the reference's
// (family, param) coverage. Wall-clock numbers are deliberately NOT
// compared — they are machine-dependent; the timing guard is Check.
func CompareSchema(ref, got *Report) error {
	if ref.Schema != got.Schema {
		return fmt.Errorf("bench: schema mismatch: reference %q vs current %q", ref.Schema, got.Schema)
	}
	type key struct {
		family string
		param  int
	}
	have := map[key]bool{}
	for _, e := range got.Entries {
		have[key{e.Family, e.Param}] = true
	}
	for _, e := range ref.Entries {
		if !have[key{e.Family, e.Param}] {
			return fmt.Errorf("bench: current run is missing reference entry %s(param=%d)", e.Family, e.Param)
		}
	}
	return nil
}
