package rpq

import (
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/core"
	"regexrw/internal/graph"
	"regexrw/internal/regex"
)

// Section 4 of the paper distinguishes two semi-structured data models.
// This file implements the FIRST approach — databases whose edges are
// labeled directly by constants and whose queries are regular
// expressions over those constants (no formula layer, no theory). As
// the paper notes, "the rewriting techniques proposed in Section 2 can
// be directly applied": a rewriting of the query as a regular
// expression is a rewriting of the path query, by the single-path
// database argument of Theorem 10.

// ConstQuery is a regular path query of the first approach: a regular
// expression whose symbols are the edge labels themselves.
type ConstQuery struct {
	Expr *regex.Node
}

// ParseConstQuery parses a first-approach query.
func ParseConstQuery(expr string) (*ConstQuery, error) {
	e, err := regex.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("rpq: %w", err)
	}
	return &ConstQuery{Expr: e}, nil
}

// Answer evaluates the query over the database.
func (q *ConstQuery) Answer(db *graph.DB) []graph.Pair {
	return db.Eval(q.Expr.ToNFA(alphabet.New()))
}

// ConstView is a named first-approach view.
type ConstView struct {
	Name string
	Expr *regex.Node
}

// ConstRewriting is a rewriting of a first-approach query: exactly a
// regular-expression rewriting, plus evaluation plumbing.
type ConstRewriting struct {
	*core.Rewriting
	Views []ConstView
}

// RewriteConst computes the Σ_Q-maximal rewriting of a first-approach
// query wrt the views by direct application of the Section 2
// construction.
func RewriteConst(q *ConstQuery, views []ConstView) (*ConstRewriting, error) {
	coreViews := make([]core.View, len(views))
	for i, v := range views {
		coreViews[i] = core.View{Name: v.Name, Expr: v.Expr}
	}
	inst, err := core.NewInstance(q.Expr, coreViews)
	if err != nil {
		return nil, err
	}
	return &ConstRewriting{Rewriting: core.MaximalRewriting(inst), Views: views}, nil
}

// AnswerUsingViews materializes each view over db (plain regular-path
// evaluation) and evaluates the rewriting over the resulting view
// graph. Contained in the query's answer; equal when exact.
func (r *ConstRewriting) AnswerUsingViews(db *graph.DB) []graph.Pair {
	vg := graph.New(alphabet.New())
	for n := 0; n < db.NumNodes(); n++ {
		vg.AddNode(db.NodeName(graph.NodeID(n)))
	}
	for _, v := range r.Views {
		pairs := db.Eval(v.Expr.ToNFA(alphabet.New()))
		for _, p := range pairs {
			vg.AddEdge(db.NodeName(p.From), v.Name, db.NodeName(p.To))
		}
	}
	return vg.Eval(r.NFA())
}
