package rpq

import (
	"testing"

	"regexrw/internal/graph"
	"regexrw/internal/theory"
)

// diamondDB builds a small graph with two routes from s to t.
func diamondDB(t *theory.Interpretation) *graph.DB {
	db := graph.New(t.Domain())
	db.AddEdge("s", "a", "m1")
	db.AddEdge("m1", "b", "t")
	db.AddEdge("s", "a", "m2")
	db.AddEdge("m2", "c", "t")
	db.AddEdge("t", "a", "s") // back edge
	return db
}

func TestChainAnswer(t *testing.T) {
	tt := abcTheory()
	db := diamondDB(tt)
	qa := Atomic("fa", theory.Eq("a"))
	qb := Atomic("fb", theory.Eq("b"))
	c := Chain(qa, qb) // x1 -a-> x2 -b-> x3
	tuples, err := c.Answer(tt, db)
	if err != nil {
		t.Fatal(err)
	}
	// Paths: s-a->m1-b->t and t-a->s? s has no b-out... m2 has c not b.
	want := "x1=s, x2=m1, x3=t"
	if len(tuples) != 1 || TupleNames(db, c.Vars(), tuples[0]) != want {
		for _, tu := range tuples {
			t.Logf("tuple: %s", TupleNames(db, c.Vars(), tu))
		}
		t.Fatalf("got %d tuples, want exactly [%s]", len(tuples), want)
	}
}

func TestChainSharedMiddleVariable(t *testing.T) {
	tt := abcTheory()
	db := diamondDB(tt)
	// x1 -a-> x2, x2 -(b+c)-> x3: both diamond routes qualify.
	qa := Atomic("fa", theory.Eq("a"))
	qbc := mustQuery(t, "f", map[string]string{"f": "=b | =c"})
	c := Chain(qa, qbc)
	tuples, err := c.Answer(tt, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		for _, tu := range tuples {
			t.Logf("tuple: %s", TupleNames(db, c.Vars(), tu))
		}
		t.Fatalf("got %d tuples, want 2", len(tuples))
	}
}

func TestCRPQCycleConstraint(t *testing.T) {
	tt := abcTheory()
	db := diamondDB(tt)
	// x -a-> y and y -b-> x: requires a 2-cycle with labels a,b —
	// m1-b->t-a->s: y=t? (t -a-> s, s... no). Check: need pair (x,y)
	// with a-edge path x->y and b-edge path y->x. a-pairs: (s,m1),
	// (s,m2), (t,s). b-pairs: (m1,t). Is there (x,y) with a:x->y and
	// b:y->x? (t? ) none. Answer empty.
	qa := Atomic("fa", theory.Eq("a"))
	qb := Atomic("fb", theory.Eq("b"))
	c := &CRPQ{Atoms: []Atom{
		{From: "x", To: "y", Query: qa},
		{From: "y", To: "x", Query: qb},
	}}
	tuples, err := c.Answer(tt, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 0 {
		t.Fatalf("cycle query should be empty, got %d tuples", len(tuples))
	}
}

func TestCRPQSelfLoopVariable(t *testing.T) {
	tt := abcTheory()
	db := graph.New(tt.Domain())
	db.AddEdge("n", "a", "n") // self loop
	db.AddEdge("n", "a", "m")
	q := Atomic("fa", theory.Eq("a"))
	c := &CRPQ{Atoms: []Atom{{From: "x", To: "x", Query: q}}}
	tuples, err := c.Answer(tt, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || db.NodeName(tuples[0][0]) != "n" {
		t.Fatalf("self-loop query wrong: %v", tuples)
	}
}

func TestCRPQProjection(t *testing.T) {
	tt := abcTheory()
	db := diamondDB(tt)
	qa := Atomic("fa", theory.Eq("a"))
	qbc := mustQuery(t, "f", map[string]string{"f": "=b | =c"})
	c := &CRPQ{
		Atoms: []Atom{
			{From: "x", To: "y", Query: qa},
			{From: "y", To: "z", Query: qbc},
		},
		Out: []string{"x", "z"},
	}
	tuples, err := c.Answer(tt, db)
	if err != nil {
		t.Fatal(err)
	}
	// Both middle nodes project to the same (s, t): deduplicated.
	if len(tuples) != 1 {
		t.Fatalf("projection should deduplicate to 1 tuple, got %d", len(tuples))
	}
}

func TestCRPQValidation(t *testing.T) {
	q := Atomic("fa", theory.Eq("a"))
	cases := []*CRPQ{
		{},
		{Atoms: []Atom{{From: "", To: "y", Query: q}}},
		{Atoms: []Atom{{From: "x", To: "y", Query: nil}}},
		{Atoms: []Atom{{From: "x", To: "y", Query: q}}, Out: []string{"zz"}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestCRPQAnswerUsingViews(t *testing.T) {
	tt := abcTheory()
	db := diamondDB(tt)
	qa := Atomic("fa", theory.Eq("a"))
	qb := Atomic("fb", theory.Eq("b"))
	c := Chain(qa, qb)

	views := []View{
		{Name: "va", Query: Atomic("fa", theory.Eq("a"))},
		{Name: "vb", Query: Atomic("fb", theory.Eq("b"))},
	}
	rewritings, err := c.RewriteComponents(views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rewritings {
		if ok, _ := r.IsExact(); !ok {
			t.Fatalf("component %d rewriting should be exact", i)
		}
	}
	direct, err := c.Answer(tt, db)
	if err != nil {
		t.Fatal(err)
	}
	viaViews, err := c.AnswerUsingViews(rewritings, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(viaViews) {
		t.Fatalf("exact component rewritings: %d direct vs %d via views", len(direct), len(viaViews))
	}
}

func TestCRPQAnswerUsingViewsContainment(t *testing.T) {
	tt := abcTheory()
	db := diamondDB(tt)
	qa := Atomic("fa", theory.Eq("a"))
	qbc := mustQuery(t, "f", map[string]string{"f": "=b | =c"})
	c := Chain(qa, qbc)
	// Views missing c: the second component's rewriting loses the
	// m2-route; answers through views must be a strict subset.
	views := []View{
		{Name: "va", Query: Atomic("fa", theory.Eq("a"))},
		{Name: "vb", Query: Atomic("fb", theory.Eq("b"))},
	}
	rewritings, err := c.RewriteComponents(views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Answer(tt, db)
	if err != nil {
		t.Fatal(err)
	}
	viaViews, err := c.AnswerUsingViews(rewritings, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaViews) >= len(direct) {
		t.Fatalf("want strict containment: %d via views vs %d direct", len(viaViews), len(direct))
	}
	// Soundness: every tuple from views appears in the direct answer.
	inDirect := map[string]bool{}
	for _, tu := range direct {
		inDirect[TupleNames(db, c.Vars(), tu)] = true
	}
	for _, tu := range viaViews {
		if !inDirect[TupleNames(db, c.Vars(), tu)] {
			t.Fatalf("unsound tuple %s", TupleNames(db, c.Vars(), tu))
		}
	}
}

func TestCRPQMismatchedRewritings(t *testing.T) {
	tt := abcTheory()
	c := Chain(Atomic("fa", theory.Eq("a")))
	if _, err := c.AnswerUsingViews(nil, graph.New(tt.Domain())); err == nil {
		t.Fatal("mismatched rewriting count accepted")
	}
}
