package rpq

import (
	"testing"

	"regexrw/internal/graph"
	"regexrw/internal/regex"
)

func constDB() *graph.DB {
	db := graph.New(nil)
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("root", "jerusalem", "jerusalemPage")
	db.AddEdge("romePage", "restaurant", "carlotta")
	db.AddEdge("jerusalemPage", "restaurant", "taami")
	db.AddEdge("root", "paris", "parisPage")
	return db
}

func TestConstQueryAnswer(t *testing.T) {
	q, err := ParseConstQuery("(rome+jerusalem)·restaurant")
	if err != nil {
		t.Fatal(err)
	}
	db := constDB()
	got := db.PairNames(q.Answer(db))
	if len(got) != 2 {
		t.Fatalf("ans = %v", got)
	}
}

func TestParseConstQueryError(t *testing.T) {
	if _, err := ParseConstQuery("(("); err == nil {
		t.Fatal("bad syntax accepted")
	}
}

func TestRewriteConstExact(t *testing.T) {
	q, err := ParseConstQuery("(rome+jerusalem)·restaurant")
	if err != nil {
		t.Fatal(err)
	}
	views := []ConstView{
		{Name: "vCity", Expr: regex.MustParse("rome+jerusalem")},
		{Name: "vRest", Expr: regex.MustParse("restaurant")},
	}
	r, err := RewriteConst(q, views)
	if err != nil {
		t.Fatal(err)
	}
	if !regex.Equivalent(r.Regex(), regex.MustParse("vCity·vRest")) {
		t.Fatalf("rewriting = %s", r.Regex())
	}
	exact, _ := r.IsExact()
	if !exact {
		t.Fatal("rewriting should be exact")
	}
	db := constDB()
	direct := q.Answer(db)
	via := r.AnswerUsingViews(db)
	if len(direct) != len(via) {
		t.Fatalf("answers differ: %d vs %d", len(direct), len(via))
	}
	for i := range direct {
		if direct[i] != via[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestRewriteConstContainment(t *testing.T) {
	// Views cover only the rome route: answer through views is a strict
	// subset of the direct answer.
	q, err := ParseConstQuery("(rome+jerusalem)·restaurant")
	if err != nil {
		t.Fatal(err)
	}
	views := []ConstView{
		{Name: "vRome", Expr: regex.MustParse("rome")},
		{Name: "vRest", Expr: regex.MustParse("restaurant")},
	}
	r, err := RewriteConst(q, views)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.IsExact(); ok {
		t.Fatal("partial views cannot be exact")
	}
	db := constDB()
	via := r.AnswerUsingViews(db)
	if len(via) != 1 || db.NodeName(via[0].To) != "carlotta" {
		t.Fatalf("via views = %v", db.PairNames(via))
	}
}

func TestRewriteConstValidation(t *testing.T) {
	q, _ := ParseConstQuery("a")
	if _, err := RewriteConst(q, []ConstView{{Name: "", Expr: regex.Sym("a")}}); err == nil {
		t.Fatal("empty view name accepted")
	}
}

// TestApproachesAgree: on an equality-only theory, the two data models
// coincide — first-approach rewriting and second-approach rewriting
// produce language-equal results.
func TestApproachesAgree(t *testing.T) {
	q1, err := ParseConstQuery("a·(b+c)")
	if err != nil {
		t.Fatal(err)
	}
	views1 := []ConstView{
		{Name: "u", Expr: regex.MustParse("a")},
		{Name: "w", Expr: regex.MustParse("b+c")},
	}
	r1, err := RewriteConst(q1, views1)
	if err != nil {
		t.Fatal(err)
	}

	tt := abcTheory()
	q2 := mustQuery(t, "fa·fbc", map[string]string{"fa": "=a", "fbc": "=b | =c"})
	views2 := []View{
		{Name: "u", Query: mustQuery(t, "fa", map[string]string{"fa": "=a"})},
		{Name: "w", Query: mustQuery(t, "fbc", map[string]string{"fbc": "=b | =c"})},
	}
	r2, err := Rewrite(q2, views2, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if !regex.Equivalent(r1.Regex(), r2.RegexOverViews()) {
		t.Fatalf("approaches disagree: %s vs %s", r1.Regex(), r2.RegexOverViews())
	}
	e1, _ := r1.IsExact()
	e2, _ := r2.IsExact()
	if e1 != e2 {
		t.Fatalf("exactness disagrees: %v vs %v", e1, e2)
	}
}
