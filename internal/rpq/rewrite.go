package rpq

import (
	"context"
	"fmt"
	"sort"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/core"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
	"regexrw/internal/par"
	"regexrw/internal/regex"
	"regexrw/internal/strategy"
	"regexrw/internal/theory"
)

// View is a named view: the symbol q ∈ Σ_Q together with the regular
// path query rpq(q) it stands for.
type View struct {
	Name  string
	Query *Query
}

// Method selects how the rewriting is computed.
type Method int

const (
	// Grounded materializes Q^g for the query and every view and runs
	// the Section 2 construction over D (the literal Theorem 11 route).
	Grounded Method = iota
	// Direct materializes only the query's grounded automaton A_d; the
	// A' edges for each view are found on the product K of the view's
	// formula automaton and A_d, testing T ⊨ φ(a) per transition — the
	// Section 4.2 optimization that never grounds the views.
	Direct
	// Compressed implements Section 4.2's other optimization: instead
	// of grounding over the full domain D, constants are partitioned
	// into equivalence classes by the formulae they satisfy (two
	// constants with the same satisfaction signature are
	// interchangeable in every automaton of the construction), and the
	// whole pipeline runs over one representative per class. The
	// resulting Σ_Q rewriting is identical; the automata are over an
	// alphabet of size ≤ 2^|F| instead of |D|.
	Compressed
)

// Rewriting is the Σ_Q-maximal rewriting of a regular path query wrt a
// set of views (Theorem 11). It embeds the core rewriting over the
// grounded alphabet D, so exactness and emptiness checks are inherited
// — by Theorem 10 these D-level checks coincide with the answer-level
// notions of Definition 6.
type Rewriting struct {
	*core.Rewriting

	Query *Query
	Views []View
	T     *theory.Interpretation
}

// Rewrite computes the Σ_Q-maximal rewriting of q0 wrt the views.
func Rewrite(q0 *Query, views []View, t *theory.Interpretation, method Method) (*Rewriting, error) { //invariantcall:checked delegates to RewriteContext
	return RewriteContext(context.Background(), q0, views, t, method) // a background context never cancels and carries no budget
}

// RewriteContext is Rewrite with cooperative cancellation and resource
// governance: every state-materializing step of the chosen method —
// grounding, determinizations, the transfer or direct product BFS, the
// class-compression grounding — is metered against the budget carried
// by ctx (budget.With). A cancelled ctx aborts with its error; an
// exhausted budget with a *budget.ExceededError naming the stage.
func RewriteContext(ctx context.Context, q0 *Query, views []View, t *theory.Interpretation, method Method) (*Rewriting, error) { //invariantcall:checked the embedded core.Rewriting is validated by the core constructors
	ctx, span := obs.StartSpan(ctx, "rpq.rewrite")
	defer span.End()
	if q0 == nil {
		return nil, fmt.Errorf("rpq: nil query")
	}
	seen := map[string]bool{}
	sigmaQ := alphabet.New()
	for _, v := range views {
		if v.Name == "" || v.Query == nil {
			return nil, fmt.Errorf("rpq: view with empty name or nil query")
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("rpq: duplicate view name %s", v.Name)
		}
		seen[v.Name] = true
		sigmaQ.Intern(v.Name)
	}

	var rw *core.Rewriting
	var err error
	switch method {
	case Grounded:
		e0, gerr := q0.GroundContext(ctx, t)
		if gerr != nil {
			return nil, gerr
		}
		// View groundings are independent (GroundContext builds fresh
		// automata over a read-only interpretation), so they fan out over
		// the context's worker pool into index-addressed slots; the map is
		// assembled after the join. Whether the fan-out actually goes
		// parallel is a strategy decision: grounding a view costs about
		// |expr| × |D| transition evaluations, and below the cutover the
		// dispatch overhead of the pool exceeds the work shipped.
		groundCost := int64(0)
		for _, v := range views {
			groundCost += int64(v.Query.Expr.Size()) * int64(t.Domain().Len())
		}
		choice := strategy.From(ctx).FanOutChoice(par.Workers(ctx), len(views), groundCost)
		strategy.Record(ctx, span, "fanout", choice)
		fctx := ctx
		if choice == strategy.ChoiceSequential {
			fctx = par.WithWorkers(fctx, 1)
		}
		grounded := make([]*automata.NFA, len(views))
		ferr := par.ForEach(fctx, len(views), func(wctx context.Context, i int) error {
			// Per-view span and pprof labels, mirroring the core transfer
			// fan-out; the disabled arm stays closure- and label-free, and
			// the sequential arm skips the goroutine-label swap that
			// obs.Do costs (one label set per view dwarfs a small
			// grounding).
			if !obs.Enabled(wctx) {
				g, werr := views[i].Query.GroundContext(wctx, t)
				if werr != nil {
					return werr
				}
				grounded[i] = g.RemoveEpsilon()
				return nil
			}
			vctx, vspan := obs.StartSpan2(wctx, "rpq.view", views[i].Name)
			defer vspan.End()
			var werr error
			if choice == strategy.ChoiceSequential {
				var g *automata.NFA
				if g, werr = views[i].Query.GroundContext(vctx, t); werr == nil {
					grounded[i] = g.RemoveEpsilon()
				}
				return werr
			}
			obs.Do(vctx, func(lctx context.Context) {
				var g *automata.NFA
				if g, werr = views[i].Query.GroundContext(lctx, t); werr == nil {
					grounded[i] = g.RemoveEpsilon()
				}
			}, "stage", "rpq.ground", "view", views[i].Name)
			return werr
		})
		if ferr != nil {
			return nil, ferr
		}
		viewNFAs := make(map[alphabet.Symbol]*automata.NFA, len(views))
		for i, v := range views {
			viewNFAs[sigmaQ.Lookup(v.Name)] = grounded[i]
		}
		rw, err = core.MaximalRewritingAutomataContext(ctx, e0, sigmaQ, viewNFAs)
	case Direct:
		e0, gerr := q0.GroundContext(ctx, t)
		if gerr != nil {
			return nil, gerr
		}
		rw, err = directRewriting(ctx, e0, sigmaQ, views, t)
	case Compressed:
		rw, err = compressedRewriting(ctx, q0, sigmaQ, views, t)
	default:
		return nil, fmt.Errorf("rpq: unknown method %d", method)
	}
	if err != nil {
		return nil, err
	}
	return &Rewriting{Rewriting: rw, Query: q0, Views: views, T: t}, nil
}

// compressedRewriting runs the construction over the quotient of D by
// formula-satisfaction signatures. Every formula occurring in the query
// or a view contributes one signature bit; constants with equal
// signatures drive every automaton of the construction identically, so
// one representative per class suffices. The class alphabet has at most
// min(|D|, 2^|F|) symbols.
func compressedRewriting(ctx context.Context, q0 *Query, sigmaQ *alphabet.Alphabet, views []View, t *theory.Interpretation) (*core.Rewriting, error) {
	ctx, span := obs.StartSpan(ctx, "rpq.compress")
	defer span.End()
	meter := budget.Enter(ctx, "rpq.compress")
	// Collect the distinct formulas (by printed form) across all queries.
	var formulas []theory.Formula
	seen := map[string]bool{}
	collect := func(q *Query) {
		for _, name := range q.Expr.SymbolNames() {
			f := q.Formulas[name]
			if key := f.String(); !seen[key] {
				seen[key] = true
				formulas = append(formulas, f)
			}
		}
	}
	collect(q0)
	for _, v := range views {
		collect(v.Query)
	}

	// Signature classes over D.
	classAlpha := alphabet.New()
	classOf := make(map[alphabet.Symbol]alphabet.Symbol, t.Domain().Len())
	classRep := map[string]alphabet.Symbol{}
	for _, c := range t.Domain().Symbols() {
		sig := make([]byte, len(formulas))
		for i, f := range formulas {
			if t.Entails(f, c) {
				sig[i] = '1'
			} else {
				sig[i] = '0'
			}
		}
		key := string(sig)
		cls, ok := classRep[key]
		if !ok {
			cls = classAlpha.Intern("class_" + key)
			classRep[key] = cls
		}
		classOf[c] = cls
	}

	// Ground a query over classes: a φ-edge becomes one edge per class
	// whose signature satisfies φ (evaluated on any member; signatures
	// make members interchangeable).
	classSat := func(f theory.Formula) []alphabet.Symbol {
		var out []alphabet.Symbol
		added := map[alphabet.Symbol]bool{}
		for _, c := range t.Domain().Symbols() {
			if t.Entails(f, c) && !added[classOf[c]] {
				added[classOf[c]] = true
				out = append(out, classOf[c])
			}
		}
		return out
	}
	groundClasses := func(q *Query) (*automata.NFA, error) {
		fAlpha := alphabet.New()
		fnfa := q.Expr.ToNFA(fAlpha).RemoveEpsilon()
		if err := meter.AddStates(fnfa.NumStates()); err != nil {
			return nil, err
		}
		out := automata.NewNFA(classAlpha)
		out.AddStates(fnfa.NumStates())
		if fnfa.Start() != automata.NoState {
			out.SetStart(fnfa.Start())
		}
		sat := make([][]alphabet.Symbol, fAlpha.Len())
		for _, x := range fAlpha.Symbols() {
			sat[x] = classSat(q.Formulas[fAlpha.Name(x)])
		}
		for s := 0; s < fnfa.NumStates(); s++ {
			out.SetAccept(automata.State(s), fnfa.Accepting(automata.State(s)))
			added := 0
			// Sorted symbol order keeps the class-grounded automaton's
			// transition lists deterministic.
			for _, x := range fnfa.OutSymbolsSorted(automata.State(s)) {
				for _, to := range fnfa.Successors(automata.State(s), x) {
					for _, cls := range sat[x] {
						out.AddTransition(automata.State(s), cls, to)
						added++
					}
				}
			}
			if err := meter.AddTransitions(added); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	viewNFAs := make(map[alphabet.Symbol]*automata.NFA, len(views))
	for _, v := range views {
		g, err := groundClasses(v.Query)
		if err != nil {
			return nil, err
		}
		viewNFAs[sigmaQ.Lookup(v.Name)] = g.RemoveEpsilon()
	}
	g0, err := groundClasses(q0)
	if err != nil {
		return nil, err
	}
	return core.MaximalRewritingAutomataContext(ctx, g0, sigmaQ, viewNFAs)
}

// directRewriting implements the Section 4.2 construction: it builds
// A_d from the grounded query, then finds the A' edges for each view by
// a BFS over the product K of the view's formula automaton and A_d,
// where a product transition exists iff some constant a has both an
// a-transition in A_d and a φ-transition with T ⊨ φ(a) in the view.
// The grounded view automata Q_i^g are never materialized. Afterwards
// the views map handed to the core layer is populated lazily-grounded
// (needed only by Expand/exactness, which require D-level automata).
func directRewriting(ctx context.Context, e0 *automata.NFA, sigmaQ *alphabet.Alphabet, views []View, t *theory.Interpretation) (*core.Rewriting, error) {
	ctx, span := obs.StartSpan(ctx, "rpq.direct_product")
	defer span.End()
	meter := budget.Enter(ctx, "rpq.direct_product")
	d, err := automata.DeterminizeContext(ctx, e0)
	if err != nil {
		return nil, err
	}
	m, err := d.MinimizeContext(ctx)
	if err != nil {
		return nil, err
	}
	ad := m.Totalize()

	if err := meter.AddStates(ad.NumStates()); err != nil {
		return nil, err
	}
	ap := automata.NewNFA(sigmaQ)
	ap.AddStates(ad.NumStates())
	ap.SetStart(ad.Start())
	for s := 0; s < ad.NumStates(); s++ {
		ap.SetAccept(automata.State(s), !ad.Accepting(automata.State(s)))
	}

	for _, v := range views {
		e := sigmaQ.Lookup(v.Name)
		fAlpha := alphabet.New()
		fnfa := v.Query.Expr.ToNFA(fAlpha).RemoveEpsilon()
		// Satisfiers per formula symbol, computed once per view.
		sat := make([][]alphabet.Symbol, fAlpha.Len())
		for _, x := range fAlpha.Symbols() {
			sat[x] = t.Satisfiers(v.Query.Formulas[fAlpha.Name(x)])
		}
		for i := 0; i < ad.NumStates(); i++ {
			targets, err := directReach(meter, fnfa, sat, ad, automata.State(i))
			if err != nil {
				return nil, err
			}
			added := 0
			for _, j := range targets {
				ap.AddTransition(automata.State(i), e, j)
				added++
			}
			if err := meter.AddTransitions(added); err != nil {
				return nil, err
			}
		}
	}

	det, err := automata.DeterminizeContext(ctx, ap)
	if err != nil {
		return nil, err
	}
	r := det.Complement()
	// Grounded view automata are needed only by the expansion-based
	// checks (exactness, Σ-emptiness); supply them lazily so that the
	// rewriting itself never grounds the views — the point of the
	// Section 4.2 optimization.
	viewsFn := func() map[alphabet.Symbol]*automata.NFA {
		out := make(map[alphabet.Symbol]*automata.NFA, len(views))
		for _, v := range views {
			out[sigmaQ.Lookup(v.Name)] = v.Query.Ground(t).RemoveEpsilon()
		}
		return out
	}
	return core.NewRewritingFromParts(ad, ap, r, e0.Alphabet(), sigmaQ, viewsFn), nil
}

// directReach returns the A_d states j reachable from i via some D-word
// matching some F-word of the view automaton: BFS over the product K.
// Each explored product pair is charged as a state on the caller's
// meter; the BFS aborts on exhaustion or cancellation.
func directReach(meter *budget.Meter, fnfa *automata.NFA, sat [][]alphabet.Symbol, ad *automata.DFA, i automata.State) ([]automata.State, error) {
	if fnfa.Start() == automata.NoState {
		return nil, nil
	}
	type pair struct{ v, d automata.State }
	seen := map[pair]bool{{fnfa.Start(), i}: true}
	queue := []pair{{fnfa.Start(), i}}
	targets := map[automata.State]bool{}
	charged := 0
	for len(queue) > 0 {
		// Charge the product pairs discovered since the last check.
		if err := meter.AddStates(len(seen) - charged); err != nil {
			return nil, err
		}
		charged = len(seen)
		p := queue[0]
		queue = queue[1:]
		if fnfa.Accepting(p.v) {
			targets[p.d] = true
		}
		for _, f := range fnfa.OutSymbols(p.v) { //mapiter:unordered BFS over a set; targets are sorted before return
			for _, a := range sat[f] {
				d := ad.Next(p.d, a)
				if d == automata.NoState {
					continue
				}
				for _, vn := range fnfa.Successors(p.v, f) {
					np := pair{vn, d}
					if !seen[np] {
						seen[np] = true
						queue = append(queue, np)
					}
				}
			}
		}
	}
	out := make([]automata.State, 0, len(targets))
	for j := range targets {
		out = append(out, j)
	}
	// Sorted so that A' transition lists — visible through
	// Rewriting.APrime and its DOT rendering — are deterministic.
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// RegexOverViews returns the rewriting as a regular expression over the
// view names.
func (r *Rewriting) RegexOverViews() *regex.Node { return r.Regex() }

// MaterializeViews evaluates every view over the database and returns
// the view graph: a database over Σ_Q with an edge x --q--> y for every
// answer pair (x, y) of view q. Node ids are shared with db.
func (r *Rewriting) MaterializeViews(db *graph.DB) *graph.DB {
	vg := graph.New(alphabet.New())
	// Preserve node ids: add nodes in db order first.
	for n := 0; n < db.NumNodes(); n++ {
		vg.AddNode(db.NodeName(graph.NodeID(n)))
	}
	for _, v := range r.Views {
		for _, p := range v.Query.Answer(r.T, db) {
			vg.AddEdge(db.NodeName(p.From), v.Name, db.NodeName(p.To))
		}
	}
	return vg
}

// AnswerUsingViews answers the original query through the rewriting:
// it materializes the views over db and evaluates the rewriting
// automaton on the resulting view graph. The result is always contained
// in ans(L(Q0), db) (Definition 6); if the rewriting is exact, it
// equals it.
func (r *Rewriting) AnswerUsingViews(db *graph.DB) []graph.Pair {
	vg := r.MaterializeViews(db)
	return vg.Eval(r.NFA())
}
