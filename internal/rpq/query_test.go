package rpq

import (
	"testing"

	"regexrw/internal/graph"
	"regexrw/internal/regex"
	"regexrw/internal/theory"
)

// travelTheory builds the running travel interpretation.
func travelTheory() *theory.Interpretation {
	t := theory.New()
	t.AddConstants("rome", "jerusalem", "paris", "district", "restaurant", "hotel")
	t.Declare("city", "rome", "jerusalem", "paris")
	t.Declare("place", "district", "restaurant", "hotel")
	return t
}

// travelDB builds a small site graph over the theory's constants.
func travelDB(t *theory.Interpretation) *graph.DB {
	db := graph.New(t.Domain())
	db.AddEdge("root", "rome", "romePage")
	db.AddEdge("root", "jerusalem", "jerusalemPage")
	db.AddEdge("root", "paris", "parisPage")
	db.AddEdge("romePage", "district", "trastevere")
	db.AddEdge("trastevere", "restaurant", "carlotta")
	db.AddEdge("jerusalemPage", "restaurant", "taami")
	db.AddEdge("parisPage", "hotel", "ritz")
	return db
}

func mustQuery(t *testing.T, expr string, formulas map[string]string) *Query {
	t.Helper()
	q, err := ParseQuery(expr, formulas)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQueryValidation(t *testing.T) {
	if _, err := NewQuery(nil, nil); err == nil {
		t.Fatal("nil expression accepted")
	}
	if _, err := NewQuery(regex.Sym("f"), nil); err == nil {
		t.Fatal("undefined formula accepted")
	}
	if _, err := ParseQuery("((", nil); err == nil {
		t.Fatal("bad expression accepted")
	}
	if _, err := ParseQuery("f", map[string]string{"f": "&&"}); err == nil {
		t.Fatal("bad formula accepted")
	}
}

func TestGroundSimple(t *testing.T) {
	tt := travelTheory()
	q := mustQuery(t, "anyCity", map[string]string{"anyCity": "city"})
	g := q.Ground(tt)
	for _, c := range []string{"rome", "jerusalem", "paris"} {
		if !g.AcceptsNames(c) {
			t.Errorf("Q^g should accept %s", c)
		}
	}
	if g.AcceptsNames("restaurant") {
		t.Error("Q^g should reject restaurant")
	}
}

func TestMatchesDefinition4(t *testing.T) {
	tt := travelTheory()
	q := mustQuery(t, "anyCity·rest", map[string]string{
		"anyCity": "city", "rest": "=restaurant",
	})
	if !q.Matches(tt, "rome", "restaurant") {
		t.Fatal("rome·restaurant should match city·=restaurant")
	}
	if q.Matches(tt, "restaurant", "rome") {
		t.Fatal("order should matter")
	}
	if q.Matches(tt, "rome") {
		t.Fatal("length should matter")
	}
}

func TestAnswerIntroExample(t *testing.T) {
	// The introduction's query ·*(rome+jerusalem)·*restaurant as an RPQ:
	// any*, then rome or jerusalem, then any*, then a restaurant edge.
	tt := travelTheory()
	db := travelDB(tt)
	q := mustQuery(t, "any*·cityRJ·any*·rest", map[string]string{
		"any":    "true",
		"cityRJ": "=rome | =jerusalem",
		"rest":   "=restaurant",
	})
	got := db.PairNames(q.Answer(tt, db))
	want := map[string]bool{"root→carlotta": true, "root→taami": true}
	if len(got) != len(want) {
		t.Fatalf("ans = %v, want %v", got, want)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected pair %s in %v", p, got)
		}
	}
}

func TestAnswerDirectAgreesWithGrounded(t *testing.T) {
	tt := travelTheory()
	db := travelDB(tt)
	queries := []*Query{
		mustQuery(t, "any*·rest", map[string]string{"any": "true", "rest": "=restaurant"}),
		mustQuery(t, "anyCity", map[string]string{"anyCity": "city"}),
		mustQuery(t, "anyCity·(place·place)?", map[string]string{"anyCity": "city", "place": "place"}),
		mustQuery(t, "nonCity*", map[string]string{"nonCity": "!city"}),
	}
	for i, q := range queries {
		a := q.Answer(tt, db)
		b := q.AnswerDirect(tt, db)
		if len(a) != len(b) {
			t.Fatalf("query %d: grounded %d pairs, direct %d pairs", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d: pair %d differs: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestAtomicQuery(t *testing.T) {
	tt := travelTheory()
	q := Atomic("v", theory.Eq("rome"))
	if !q.Matches(tt, "rome") || q.Matches(tt, "paris") {
		t.Fatal("Atomic(=rome) wrong")
	}
}

func TestQueryString(t *testing.T) {
	q := Atomic("v", theory.Pred("city"))
	if q.String() != "v [v := city]" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestAnswerOnPathDB(t *testing.T) {
	// Theorem 10's single-path database: the query answers (first,last)
	// iff the path word matches.
	tt := travelTheory()
	word := []string{"rome", "district", "restaurant"}
	syms := make([]int32, 0)
	_ = syms
	labels := make([]int32, 0)
	_ = labels
	db := graph.New(tt.Domain())
	db.AddEdge("n0", word[0], "n1")
	db.AddEdge("n1", word[1], "n2")
	db.AddEdge("n2", word[2], "n3")
	q := mustQuery(t, "anyCity·any·rest", map[string]string{
		"anyCity": "city", "any": "true", "rest": "=restaurant",
	})
	ps := q.Answer(tt, db)
	found := false
	for _, p := range ps {
		if db.NodeName(p.From) == "n0" && db.NodeName(p.To) == "n3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("path answer missing: %v", db.PairNames(ps))
	}
}

func TestContained(t *testing.T) {
	tt := travelTheory()
	city := mustQuery(t, "f", map[string]string{"f": "city"})
	rj := mustQuery(t, "f", map[string]string{"f": "=rome | =jerusalem"})
	ok, _ := Contained(rj, city, tt)
	if !ok {
		t.Fatal("rome|jerusalem ⊆ city should hold")
	}
	ok, witness := Contained(city, rj, tt)
	if ok {
		t.Fatal("city ⊆ rome|jerusalem should fail (paris)")
	}
	if len(witness) != 1 || tt.Domain().Name(witness[0]) != "paris" {
		t.Fatalf("witness = %v, want paris", witness)
	}
}

func TestContainedUsesTheory(t *testing.T) {
	// Containment that only holds because of the theory: A ⊆ B when
	// every A-constant is a B-constant.
	tt := theory.New()
	tt.AddConstants("x", "y", "z")
	tt.Declare("A", "x")
	tt.Declare("B", "x", "y")
	qa := Atomic("f", theory.Pred("A"))
	qb := Atomic("f", theory.Pred("B"))
	if ok, _ := Contained(qa, qb, tt); !ok {
		t.Fatal("A ⊆ B should hold in this theory")
	}
	if ok, _ := Contained(qb, qa, tt); ok {
		t.Fatal("B ⊆ A should fail")
	}
}

func TestEquivalentQueries(t *testing.T) {
	tt := travelTheory()
	q1 := mustQuery(t, "f", map[string]string{"f": "=rome | =jerusalem | =paris"})
	q2 := mustQuery(t, "f", map[string]string{"f": "city"})
	if !Equivalent(q1, q2, tt) {
		t.Fatal("enumerated cities should equal the city predicate")
	}
	q3 := mustQuery(t, "f·f", map[string]string{"f": "city"})
	if Equivalent(q1, q3, tt) {
		t.Fatal("different lengths cannot be equivalent")
	}
}

func TestAnswerFrom(t *testing.T) {
	tt := travelTheory()
	db := travelDB(tt)
	q := mustQuery(t, "cityRJ·any*·rest", map[string]string{
		"cityRJ": "=rome | =jerusalem", "any": "true", "rest": "=restaurant",
	})
	root := db.NodeID("root")
	got := q.AnswerFrom(tt, db, root)
	if len(got) != 2 {
		t.Fatalf("AnswerFrom(root) = %d nodes, want 2", len(got))
	}
	// Agreement with the all-pairs answer.
	var want int
	for _, p := range q.Answer(tt, db) {
		if p.From == root {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("AnswerFrom disagrees with Answer: %d vs %d", len(got), want)
	}
	if rs := q.AnswerFrom(tt, db, db.NodeID("ritz")); len(rs) != 0 {
		t.Fatalf("AnswerFrom(ritz) = %v", rs)
	}
}
