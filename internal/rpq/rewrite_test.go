package rpq

import (
	"fmt"
	"math/rand"
	"testing"

	"regexrw/internal/automata"
	"regexrw/internal/graph"
	"regexrw/internal/regex"
	"regexrw/internal/theory"
)

// abcTheory is a plain theory whose domain is {a,b,c,d} with no
// predicate structure beyond equality — it makes RPQ rewriting coincide
// with plain regex rewriting, which the Example 3 test exploits.
func abcTheory() *theory.Interpretation {
	t := theory.New()
	t.AddConstants("a", "b", "c", "d")
	return t
}

func elementary(t *testing.T, names ...string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, n := range names {
		out[n] = "=" + n
	}
	return out
}

// TestExample3 reproduces Example 3 of the paper: Q0 = a·(b+c),
// Q = {q1 ↦ a, q2 ↦ b}. The maximal rewriting is q1·q2, not exact;
// adding the elementary view for c gives the exact q1·(q2+q3).
func TestExample3(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	views := []View{
		{Name: "q1", Query: Atomic("fa", theory.Eq("a"))},
		{Name: "q2", Query: Atomic("fb", theory.Eq("b"))},
	}
	r, err := Rewrite(q0, views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if !regex.Equivalent(r.RegexOverViews(), regex.MustParse("q1·q2")) {
		t.Fatalf("maximal rewriting = %s, want ≡ q1·q2", r.RegexOverViews())
	}
	if ok, _ := r.IsExact(); ok {
		t.Fatal("q1·q2 must not be exact")
	}

	res, err := PartialRewrite(q0, views, tt, DefaultCandidates(tt), Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 || res.Added[0].Kind != ElementaryView || res.Added[0].Name != "c" {
		t.Fatalf("Added = %+v, want the elementary view for c", res.Added)
	}
	if ok, _ := res.Rewriting.IsExact(); !ok {
		t.Fatal("partial rewriting must be exact")
	}
	want := regex.MustParse("q1·(q2+eq_c)")
	if !regex.Equivalent(res.Rewriting.RegexOverViews(), want) {
		t.Fatalf("partial rewriting = %s, want ≡ q1·(q2+eq_c)", res.Rewriting.RegexOverViews())
	}
}

func TestRewriteValidation(t *testing.T) {
	tt := abcTheory()
	q0 := Atomic("fa", theory.Eq("a"))
	if _, err := Rewrite(nil, nil, tt, Grounded); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, err := Rewrite(q0, []View{{Name: "", Query: q0}}, tt, Grounded); err == nil {
		t.Fatal("empty view name accepted")
	}
	if _, err := Rewrite(q0, []View{{Name: "v", Query: q0}, {Name: "v", Query: q0}}, tt, Grounded); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if _, err := Rewrite(q0, nil, tt, Method(99)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestGroundedVsDirect is the RPQ1 experiment: the two constructions
// produce language-equal rewritings on randomized instances.
func TestGroundedVsDirect(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	tt := theory.New()
	tt.AddConstants("a", "b", "c", "d", "e")
	tt.Declare("p", "a", "b")
	tt.Declare("q", "c", "d")
	tt.Declare("r", "a", "c", "e")

	formulaPool := []string{"=a", "=b", "=c", "p", "q", "r", "p | q", "!p", "p & r", "true"}
	exprPool := []string{"f1·f2", "f1*", "(f1+f2)·f3", "f1·(f2+f3)*", "f1?·f2"}

	randomQuery := func() *Query {
		formulas := map[string]string{
			"f1": formulaPool[r.Intn(len(formulaPool))],
			"f2": formulaPool[r.Intn(len(formulaPool))],
			"f3": formulaPool[r.Intn(len(formulaPool))],
		}
		return mustQuery(t, exprPool[r.Intn(len(exprPool))], formulas)
	}

	for trial := 0; trial < 25; trial++ {
		q0 := randomQuery()
		k := 1 + r.Intn(3)
		views := make([]View, k)
		for i := range views {
			views[i] = View{Name: string(rune('u' + i)), Query: randomQuery()}
		}
		rg, err := Rewrite(q0, views, tt, Grounded)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Rewrite(q0, views, tt, Direct)
		if err != nil {
			t.Fatal(err)
		}
		if !automata.Equivalent(rg.NFA(), rd.NFA()) {
			t.Fatalf("trial %d: grounded and direct rewritings differ:\n%s\nvs\n%s",
				trial, rg.RegexOverViews(), rd.RegexOverViews())
		}
		eg, _ := rg.IsExact()
		ed, _ := rd.IsExact()
		if eg != ed {
			t.Fatalf("trial %d: exactness disagrees: grounded=%v direct=%v", trial, eg, ed)
		}
	}
}

// TestTheoryAwareRewriting reproduces the Section 4.2 motivating
// example: T ⊨ ∀x. A(x) ∨ B(x), Q0 = B, Q = {A}. Working on grounded
// automata (rather than treating formulae as opaque symbols) the
// maximal rewriting of Q0 wrt {A} must be... empty here — but if the
// domain makes B ⊇ complement of A, constants satisfying both A and B
// flow into the rewriting. With A and B overlapping on all of A's
// satisfiers, the rewriting is exactly the view for A.
func TestTheoryAwareRewriting(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("x1", "x2", "x3")
	tt.Declare("A", "x1", "x2")
	tt.Declare("B", "x1", "x2", "x3") // ∀x. A(x) → B(x); B covers all

	q0 := Atomic("fB", theory.Pred("B"))
	views := []View{{Name: "vA", Query: Atomic("fA", theory.Pred("A"))}}
	r, err := Rewrite(q0, views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	// match(L(vA)) = {x1,x2} ⊆ match(L(Q0)) = {x1,x2,x3}: vA rewrites.
	if !regex.Equivalent(r.RegexOverViews(), regex.MustParse("vA")) {
		t.Fatalf("rewriting = %s, want ≡ vA", r.RegexOverViews())
	}
	// Not exact: x3 is B but not A.
	if ok, _ := r.IsExact(); ok {
		t.Fatal("rewriting should not be exact (x3 uncovered)")
	}
	// A purely syntactic treatment (formulae as opaque symbols) would
	// find no rewriting at all; the grounded construction finds vA.
}

// TestAnswerContainment is the RPQ2 experiment: answering through the
// rewriting is always contained in direct evaluation, with equality
// when the rewriting is exact.
func TestAnswerContainment(t *testing.T) {
	tt := travelTheory()
	db := travelDB(tt)

	q0 := mustQuery(t, "cityRJ·dist*·rest", map[string]string{
		"cityRJ": "=rome | =jerusalem", "dist": "=district", "rest": "=restaurant",
	})
	views := []View{
		{Name: "vr", Query: mustQuery(t, "cityRJ", map[string]string{"cityRJ": "=rome | =jerusalem"})},
		{Name: "vd", Query: mustQuery(t, "dist", map[string]string{"dist": "=district"})},
		{Name: "vt", Query: mustQuery(t, "rest", map[string]string{"rest": "=restaurant"})},
	}
	r, err := Rewrite(q0, views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := r.IsExact()
	if !exact {
		t.Fatal("these views should rewrite the query exactly")
	}

	direct := q0.Answer(tt, db)
	viaViews := r.AnswerUsingViews(db)
	if len(direct) != len(viaViews) {
		t.Fatalf("exact rewriting: direct %v vs views %v",
			db.PairNames(direct), db.PairNames(viaViews))
	}
	for i := range direct {
		if direct[i] != viaViews[i] {
			t.Fatalf("answers differ at %d", i)
		}
	}
}

func TestAnswerContainmentNonExact(t *testing.T) {
	tt := travelTheory()
	db := travelDB(tt)
	// Query reachable in one or two steps; views only cover one-step
	// restaurant edges: rewriting is partial, answers strictly contained.
	q0 := mustQuery(t, "rest+dist·rest", map[string]string{
		"rest": "=restaurant", "dist": "=district",
	})
	views := []View{
		{Name: "vt", Query: mustQuery(t, "rest", map[string]string{"rest": "=restaurant"})},
	}
	r, err := Rewrite(q0, views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.IsExact(); ok {
		t.Fatal("rewriting should not be exact")
	}
	direct := q0.Answer(tt, db)
	viaViews := r.AnswerUsingViews(db)
	// Containment: every pair from the views is in the direct answer.
	inDirect := map[graph.Pair]bool{}
	for _, p := range direct {
		inDirect[p] = true
	}
	for _, p := range viaViews {
		if !inDirect[p] {
			t.Fatalf("rewriting produced pair outside the query answer: %v", p)
		}
	}
	if len(viaViews) >= len(direct) {
		t.Fatalf("expected strict containment: %d vs %d", len(viaViews), len(direct))
	}
}

func TestMaterializeViews(t *testing.T) {
	tt := travelTheory()
	db := travelDB(tt)
	views := []View{
		{Name: "vt", Query: mustQuery(t, "rest", map[string]string{"rest": "=restaurant"})},
	}
	r, err := Rewrite(Atomic("rest", theory.Eq("restaurant")), views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	vg := r.MaterializeViews(db)
	if vg.NumNodes() != db.NumNodes() {
		t.Fatal("view graph must share the node set")
	}
	if vg.NumEdges() != 2 { // two restaurant edges in travelDB
		t.Fatalf("view graph has %d edges, want 2", vg.NumEdges())
	}
}

// TestCompressedMethodAgrees: the Section 4.2 class-quotient
// construction produces the same Σ_Q rewriting language and exactness
// verdict as the grounded construction.
func TestCompressedMethodAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(5005))
	tt := theory.New()
	tt.AddConstants("a", "b", "c", "d", "e", "f")
	tt.Declare("p", "a", "b", "c")
	tt.Declare("q", "c", "d")

	formulaPool := []string{"=a", "p", "q", "p | q", "!p", "p & q", "true"}
	exprPool := []string{"f1·f2", "f1*", "(f1+f2)·f3", "f1·(f2+f3)*"}
	randomQuery := func() *Query {
		formulas := map[string]string{
			"f1": formulaPool[r.Intn(len(formulaPool))],
			"f2": formulaPool[r.Intn(len(formulaPool))],
			"f3": formulaPool[r.Intn(len(formulaPool))],
		}
		return mustQuery(t, exprPool[r.Intn(len(exprPool))], formulas)
	}
	for trial := 0; trial < 20; trial++ {
		q0 := randomQuery()
		views := []View{
			{Name: "u1", Query: randomQuery()},
			{Name: "u2", Query: randomQuery()},
		}
		rg, err := Rewrite(q0, views, tt, Grounded)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Rewrite(q0, views, tt, Compressed)
		if err != nil {
			t.Fatal(err)
		}
		if !automata.Equivalent(rg.NFA(), rc.NFA()) {
			t.Fatalf("trial %d: compressed rewriting differs:\n%s\nvs\n%s",
				trial, rg.RegexOverViews(), rc.RegexOverViews())
		}
		eg, _ := rg.IsExact()
		ec, _ := rc.IsExact()
		if eg != ec {
			t.Fatalf("trial %d: exactness differs: grounded=%v compressed=%v", trial, eg, ec)
		}
	}
}

// TestCompressedScalesWithClassesNotDomain: with only one predicate,
// the class alphabet has ≤2 symbols no matter how large D is.
func TestCompressedScalesWithClassesNotDomain(t *testing.T) {
	tt := theory.New()
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("d%d", i)
		tt.AddConstant(name)
		if i%2 == 0 {
			tt.Declare("even", name)
		}
	}
	q0 := mustQuery(t, "f·f", map[string]string{"f": "even"})
	views := []View{{Name: "v", Query: mustQuery(t, "f", map[string]string{"f": "even"})}}
	rc, err := Rewrite(q0, views, tt, Compressed)
	if err != nil {
		t.Fatal(err)
	}
	// The compressed A_d lives over the 2-class alphabet: tiny.
	if rc.Ad.Alphabet().Len() > 2 {
		t.Fatalf("class alphabet has %d symbols, want ≤ 2", rc.Ad.Alphabet().Len())
	}
	if !rc.Accepts("v", "v") {
		t.Fatal("v·v should rewrite f·f")
	}
	exact, _ := rc.IsExact()
	if !exact {
		t.Fatal("rewriting should be exact")
	}
}
