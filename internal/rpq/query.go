// Package rpq implements regular path queries over semi-structured data
// and their rewriting using views (Section 4 of the paper).
//
// A query is a regular language over a finite set F of named unary
// formulae of the theory T (Definition 4/5): a D-word a1…an matches an
// F-word φ1…φn iff T ⊨ φi(ai) for every i, and the answer of a query
// over a database is the set of node pairs connected by a matching
// path. Rewriting a query in terms of views reduces to the
// regular-expression construction of Section 2 applied to the grounded
// automata Q^g (Theorem 11); the package also implements the Section 4.2
// optimization that avoids materializing the grounded view automata,
// and the partial rewritings of Section 4.3.
package rpq

import (
	"context"
	"fmt"
	"sort"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/graph"
	"regexrw/internal/obs"
	"regexrw/internal/regex"
	"regexrw/internal/theory"
)

// Query is a regular path query: a regular expression whose symbols
// name unary formulae of the theory.
type Query struct {
	Expr     *regex.Node
	Formulas map[string]theory.Formula
}

// NewQuery validates that every symbol of expr has a formula definition.
func NewQuery(expr *regex.Node, formulas map[string]theory.Formula) (*Query, error) {
	if expr == nil {
		return nil, fmt.Errorf("rpq: nil expression")
	}
	for _, name := range expr.SymbolNames() {
		if formulas[name] == nil {
			return nil, fmt.Errorf("rpq: symbol %q has no formula definition", name)
		}
	}
	return &Query{Expr: expr, Formulas: formulas}, nil
}

// ParseQuery parses the expression and each formula definition.
func ParseQuery(expr string, formulas map[string]string) (*Query, error) {
	e, err := regex.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("rpq: expression: %w", err)
	}
	fs := make(map[string]theory.Formula, len(formulas))
	for name, def := range formulas {
		f, err := theory.ParseFormula(def)
		if err != nil {
			return nil, fmt.Errorf("rpq: formula %s: %w", name, err)
		}
		fs[name] = f
	}
	return NewQuery(e, fs)
}

// Atomic returns the query consisting of the single formula f under the
// given name. Elementary views (λz. z = a) and atomic views (λz. P(z))
// of Section 4.3 are built this way.
func Atomic(name string, f theory.Formula) *Query {
	return &Query{Expr: regex.Sym(name), Formulas: map[string]theory.Formula{name: f}}
}

// String renders the query with its formula definitions.
func (q *Query) String() string {
	s := q.Expr.String()
	names := q.Expr.SymbolNames()
	for _, n := range names {
		s += fmt.Sprintf(" [%s := %s]", n, q.Formulas[n])
	}
	return s
}

// Ground compiles the query to the grounded automaton Q^g over the
// domain D of the theory: every φ-labeled transition becomes one
// transition per constant a with T ⊨ φ(a). L(Q^g) = match(L(Q)).
func (q *Query) Ground(t *theory.Interpretation) *automata.NFA {
	out, _ := q.GroundContext(context.Background(), t) // a background context never cancels and carries no budget
	return out
}

// GroundContext is Ground metered against the context's budget (stage
// "rpq.ground"): grounding multiplies every formula edge by the number
// of satisfying constants, so its output is dominated by transitions —
// |Q| · |D| in the worst case — and each state's batch of grounded
// edges is charged as transitions before moving on.
func (q *Query) GroundContext(ctx context.Context, t *theory.Interpretation) (*automata.NFA, error) {
	ctx, span := obs.StartSpan(ctx, "rpq.ground")
	defer span.End()
	meter := budget.Enter(ctx, "rpq.ground")
	fAlpha := alphabet.New()
	fnfa := q.Expr.ToNFA(fAlpha).RemoveEpsilon()
	if err := meter.AddStates(fnfa.NumStates()); err != nil {
		return nil, err
	}
	out := automata.NewNFA(t.Domain())
	out.AddStates(fnfa.NumStates())
	out.SetStart(fnfa.Start())
	// Satisfier sets are computed once per distinct formula symbol.
	sat := make(map[alphabet.Symbol][]alphabet.Symbol)
	for _, x := range fAlpha.Symbols() {
		sat[x] = t.Satisfiers(q.Formulas[fAlpha.Name(x)])
	}
	for s := 0; s < fnfa.NumStates(); s++ {
		out.SetAccept(automata.State(s), fnfa.Accepting(automata.State(s)))
		added := 0
		// Sorted symbol order makes the grounded automaton's transition
		// lists a pure function of the query, not of map iteration order.
		for _, x := range fnfa.OutSymbolsSorted(automata.State(s)) {
			for _, to := range fnfa.Successors(automata.State(s), x) {
				for _, a := range sat[x] {
					out.AddTransition(automata.State(s), a, to)
					added++
				}
			}
		}
		if err := meter.AddTransitions(added); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Matches reports whether the D-word (by constant names) matches some
// F-word of the query (Definition 4), i.e. whether it is accepted by
// the grounded automaton.
func (q *Query) Matches(t *theory.Interpretation, constants ...string) bool {
	return q.Ground(t).AcceptsNames(constants...)
}

// Contained reports whether q is contained in r at the match level:
// match(L(q)) ⊆ match(L(r)) — equivalently, ans(L(q), DB) ⊆
// ans(L(r), DB) on every database (by the single-path database argument
// of Theorem 10). Containment of regular path queries is the
// reasoning task of [CDGL98, FL98] that the paper's introduction
// surveys; over a finite complete theory it reduces to containment of
// the grounded automata. When containment fails, witness is a D-word
// matched by q but not by r.
func Contained(q, r *Query, t *theory.Interpretation) (bool, []alphabet.Symbol) {
	return automata.ContainedIn(q.Ground(t), r.Ground(t))
}

// Equivalent reports match-level equivalence of two queries.
func Equivalent(q, r *Query, t *theory.Interpretation) bool {
	qr, _ := Contained(q, r, t)
	if !qr {
		return false
	}
	rq, _ := Contained(r, q, t)
	return rq
}

// Answer computes ans(L(Q), DB) by grounding and product evaluation
// (Definition 5).
func (q *Query) Answer(t *theory.Interpretation, db *graph.DB) []graph.Pair {
	return db.Eval(q.Ground(t))
}

// AnswerFrom computes the single-source answer: the nodes reachable
// from start along a path matching the query.
func (q *Query) AnswerFrom(t *theory.Interpretation, db *graph.DB, start graph.NodeID) []graph.NodeID {
	return db.EvalFrom(q.Ground(t), start)
}

// AnswerDirect computes ans(L(Q), DB) without materializing Q^g: the
// product BFS over (node, query state) checks T ⊨ φ(label) lazily per
// edge. Equivalent to Answer; preferable when |D| is large relative to
// the labels actually present in the database.
func (q *Query) AnswerDirect(t *theory.Interpretation, db *graph.DB) []graph.Pair {
	fAlpha := alphabet.New()
	fnfa := q.Expr.ToNFA(fAlpha).RemoveEpsilon()
	if fnfa.Start() == automata.NoState {
		return nil
	}
	// Translate db label ids to theory-domain ids by name (they are the
	// same alphabet instance in the common case, but not required to be).
	toDomain := make([]alphabet.Symbol, db.Labels().Len())
	for _, l := range db.Labels().Symbols() {
		toDomain[l] = t.Domain().Lookup(db.Labels().Name(l))
	}
	// Cache entailment per (formula symbol, label) as computed.
	type key struct {
		f alphabet.Symbol
		a alphabet.Symbol
	}
	cache := map[key]bool{}
	entails := func(f, dbLabel alphabet.Symbol) bool {
		a := toDomain[dbLabel]
		if a == alphabet.None {
			return false // label outside the theory's domain
		}
		k := key{f, a}
		if v, ok := cache[k]; ok {
			return v
		}
		v := t.Entails(q.Formulas[fAlpha.Name(f)], a)
		cache[k] = v
		return v
	}

	var out []graph.Pair
	type cfg struct {
		node  graph.NodeID
		state automata.State
	}
	for start := 0; start < db.NumNodes(); start++ {
		seen := map[cfg]bool{}
		emitted := map[graph.NodeID]bool{}
		queue := []cfg{{graph.NodeID(start), fnfa.Start()}}
		seen[queue[0]] = true
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			if fnfa.Accepting(c.state) && !emitted[c.node] {
				emitted[c.node] = true
				out = append(out, graph.Pair{From: graph.NodeID(start), To: c.node})
			}
			for _, e := range db.Out(c.node) {
				for _, f := range fnfa.OutSymbols(c.state) { //mapiter:unordered BFS over a set; answer pairs are sorted before return
					if !entails(f, e.Label) {
						continue
					}
					for _, next := range fnfa.Successors(c.state, f) {
						nc := cfg{e.To, next}
						if !seen[nc] {
							seen[nc] = true
							queue = append(queue, nc)
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
