package rpq

import (
	"context"
	"errors"
	"testing"

	"regexrw/internal/theory"
)

func TestDefaultCandidates(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("a", "b")
	tt.Declare("p", "a")
	cs := DefaultCandidates(tt)
	// 1 predicate + 2 constants.
	if len(cs) != 3 {
		t.Fatalf("candidates = %v", cs)
	}
	if cs[0].Kind != AtomicView || cs[0].Name != "p" {
		t.Fatalf("first candidate should be the predicate: %v", cs[0])
	}
	for _, c := range cs[1:] {
		if c.Kind != ElementaryView {
			t.Fatalf("expected elementary candidates after atomics: %v", cs)
		}
	}
}

func TestCandidateFormula(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("a", "b")
	tt.Declare("p", "a")
	atom := Candidate{Kind: AtomicView, Name: "p"}
	elem := Candidate{Kind: ElementaryView, Name: "a"}
	aSym := tt.Domain().Lookup("a")
	bSym := tt.Domain().Lookup("b")
	if !tt.Entails(atom.Formula(), aSym) || tt.Entails(atom.Formula(), bSym) {
		t.Fatal("atomic candidate formula wrong")
	}
	if !tt.Entails(elem.Formula(), aSym) || tt.Entails(elem.Formula(), bSym) {
		t.Fatal("elementary candidate formula wrong")
	}
}

// TestPartialPrefersAtomicOverElementary: when a predicate view covers
// the missing symbols, the search must pick it rather than elementary
// views (criterion 2: elementary views are costlier).
func TestPartialPrefersAtomicOverElementary(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("a", "b", "c")
	tt.Declare("bc", "b", "c") // predicate exactly covering {b,c}

	q0 := mustQuery(t, "fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	views := []View{{Name: "q1", Query: Atomic("fa", theory.Eq("a"))}}
	res, err := PartialRewrite(q0, views, tt, DefaultCandidates(tt), Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 || res.Added[0].Kind != AtomicView || res.Added[0].Name != "bc" {
		t.Fatalf("Added = %+v, want the atomic view bc", res.Added)
	}
	if ok, _ := res.Rewriting.IsExact(); !ok {
		t.Fatal("partial rewriting must be exact")
	}
}

func TestPartialNoAdditionWhenAlreadyExact(t *testing.T) {
	tt := abcTheory()
	q0 := Atomic("fa", theory.Eq("a"))
	views := []View{{Name: "v", Query: Atomic("fa", theory.Eq("a"))}}
	res, err := PartialRewrite(q0, views, tt, DefaultCandidates(tt), Grounded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 {
		t.Fatalf("Added = %+v, want none", res.Added)
	}
}

func TestPartialWithRestrictedCandidates(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·fb", map[string]string{"fa": "=a", "fb": "=b"})
	// Candidates lack b entirely: the search must fail.
	cands := []Candidate{{Kind: ElementaryView, Name: "a"}}
	if _, err := PartialRewrite(q0, nil, tt, cands, Grounded); err == nil {
		t.Fatal("expected failure with insufficient candidates")
	}
}

func TestPartialNameClashRenames(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·fb", map[string]string{"fa": "=a", "fb": "=b"})
	// A view already named eq_b collides with the elementary view name.
	views := []View{
		{Name: "eq_a", Query: Atomic("fa", theory.Eq("a"))},
		{Name: "eq_b", Query: Atomic("fz", theory.Eq("d"))}, // useless view with the clashing name
	}
	res, err := PartialRewrite(q0, views, tt, DefaultCandidates(tt), Grounded)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Views {
		if v.Name == "eq_b_2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected renamed view eq_b_2; views = %+v", res.Views)
	}
	if ok, _ := res.Rewriting.IsExact(); !ok {
		t.Fatal("partial rewriting must be exact")
	}
}

// TestCompareCriteria checks the Section 4.3 preference ordering.
func TestCompareCriteria(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	baseViews := []View{
		{Name: "q1", Query: Atomic("fa", theory.Eq("a"))},
		{Name: "q2", Query: Atomic("fb", theory.Eq("b"))},
	}

	// Non-exact rewriting (no additions) vs exact partial rewriting.
	rBase, err := Rewrite(q0, baseViews, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	nonExact := &PartialResult{Added: nil, Views: baseViews, Rewriting: rBase}
	exact, err := PartialRewrite(q0, baseViews, tt, DefaultCandidates(tt), Grounded)
	if err != nil {
		t.Fatal(err)
	}

	// Criterion 1: the exact rewriting's expansion strictly contains the
	// non-exact one's, so it is preferable.
	if Compare(exact, nonExact) <= 0 {
		t.Fatal("exact rewriting should be preferable to non-exact")
	}
	if Compare(nonExact, exact) >= 0 {
		t.Fatal("Compare should be antisymmetric")
	}
	if Compare(exact, exact) != 0 {
		t.Fatal("Compare should be reflexive-zero")
	}
}

// TestCompareFewerElementary: two exact extensions with equal expansion
// but different elementary counts order by criterion 2.
func TestCompareFewerElementary(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("a", "b", "c")
	tt.Declare("bc", "b", "c")

	q0 := mustQuery(t, "fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	base := []View{{Name: "q1", Query: Atomic("fa", theory.Eq("a"))}}

	// Extension 1: atomic view bc (0 elementary added).
	withAtomic := append([]View(nil), base...)
	withAtomic = append(withAtomic, View{Name: "vbc", Query: Atomic("fbc", theory.Pred("bc"))})
	r1, err := Rewrite(q0, withAtomic, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	p1 := &PartialResult{
		Added:     []Candidate{{Kind: AtomicView, Name: "bc"}},
		Views:     withAtomic,
		Rewriting: r1,
	}

	// Extension 2: elementary views b and c (2 elementary added).
	withElem := append([]View(nil), base...)
	withElem = append(withElem,
		View{Name: "eb", Query: Atomic("fb", theory.Eq("b"))},
		View{Name: "ec", Query: Atomic("fc", theory.Eq("c"))},
	)
	r2, err := Rewrite(q0, withElem, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	p2 := &PartialResult{
		Added: []Candidate{
			{Kind: ElementaryView, Name: "b"},
			{Kind: ElementaryView, Name: "c"},
		},
		Views:     withElem,
		Rewriting: r2,
	}

	// Both exact, equal expansions; p1 wins on fewer elementary views.
	if ok, _ := r1.IsExact(); !ok {
		t.Fatal("atomic extension should be exact")
	}
	if ok, _ := r2.IsExact(); !ok {
		t.Fatal("elementary extension should be exact")
	}
	if Compare(p1, p2) <= 0 {
		t.Fatal("fewer elementary views should be preferable")
	}
}

func TestPartialRewriteContextCancel(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·fb", map[string]string{"fa": "=a", "fb": "=b"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PartialRewriteContext(ctx, q0, nil, tt, DefaultCandidates(tt), Grounded)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A cancelled context aborts even the fast path now that the whole
	// pipeline is resource-governed; a live context still succeeds.
	views := []View{
		{Name: "va", Query: Atomic("fa", theory.Eq("a"))},
		{Name: "vb", Query: Atomic("fb", theory.Eq("b"))},
	}
	if _, err := PartialRewriteContext(ctx, q0, views, tt, DefaultCandidates(tt), Grounded); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled on the fast path too", err)
	}
	if _, err := PartialRewriteContext(context.Background(), q0, views, tt, DefaultCandidates(tt), Grounded); err != nil {
		t.Fatalf("live context should succeed: %v", err)
	}
}
