package rpq

import (
	"context"
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
	"regexrw/internal/core"
	"regexrw/internal/graph"
	"regexrw/internal/theory"
)

// PossibleRewriting is the possibility rewriting of a regular path
// query wrt views: the Σ_Q-words whose expansion CAN match a path the
// query accepts. Evaluating it over the materialized views yields the
// possible answers — node pairs that some database consistent with the
// view extensions connects by a query path. It is the dual companion
// to Rewriting (certain answers), after the "minimal containing
// rewritings" direction in the paper's conclusions.
type PossibleRewriting struct {
	*core.Possibility

	Query *Query
	Views []View
	T     *theory.Interpretation
}

// RewritePossible computes the possibility rewriting of q0 wrt the
// views over the grounded alphabet D.
func RewritePossible(q0 *Query, views []View, t *theory.Interpretation) (*PossibleRewriting, error) {
	return RewritePossibleContext(context.Background(), q0, views, t) // a background context never cancels and carries no budget
}

// RewritePossibleContext is RewritePossible with cooperative
// cancellation and budget metering threaded into the groundings and the
// possibility construction.
func RewritePossibleContext(ctx context.Context, q0 *Query, views []View, t *theory.Interpretation) (*PossibleRewriting, error) {
	if q0 == nil {
		return nil, fmt.Errorf("rpq: nil query")
	}
	seen := map[string]bool{}
	sigmaQ := alphabet.New()
	viewNFAs := make(map[alphabet.Symbol]*automata.NFA, len(views))
	for _, v := range views {
		if v.Name == "" || v.Query == nil {
			return nil, fmt.Errorf("rpq: view with empty name or nil query")
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("rpq: duplicate view name %s", v.Name)
		}
		seen[v.Name] = true
		g, err := v.Query.GroundContext(ctx, t)
		if err != nil {
			return nil, err
		}
		viewNFAs[sigmaQ.Intern(v.Name)] = g.RemoveEpsilon()
	}
	g0, err := q0.GroundContext(ctx, t)
	if err != nil {
		return nil, err
	}
	p, err := core.PossibilityRewritingAutomataContext(ctx, g0, sigmaQ, viewNFAs)
	if err != nil {
		return nil, err
	}
	return &PossibleRewriting{Possibility: p, Query: q0, Views: views, T: t}, nil
}

// AnswerPossibleUsingViews evaluates the possibility rewriting over the
// materialized views: the returned pairs are exactly those that MAY be
// answers of the query on some database whose views include the
// observed extensions. It always contains AnswerUsingViews of the
// maximal contained rewriting for the same views.
func (p *PossibleRewriting) AnswerPossibleUsingViews(db *graph.DB) []graph.Pair {
	vg := graph.New(alphabet.New())
	for n := 0; n < db.NumNodes(); n++ {
		vg.AddNode(db.NodeName(graph.NodeID(n)))
	}
	for _, v := range p.Views {
		for _, pr := range v.Query.Answer(p.T, db) {
			vg.AddEdge(db.NodeName(pr.From), v.Name, db.NodeName(pr.To))
		}
	}
	return vg.Eval(p.NFA())
}
