package rpq

import (
	"context"
	"errors"
	"testing"

	"regexrw/internal/budget"
	"regexrw/internal/budget/faultinject"
	"regexrw/internal/theory"
)

// rpqPipeline exercises every metered construction of the package —
// grounding, all three rewriting methods, exactness and the
// possibility rewriting — on an instance whose rewriting is exact, so
// containment frontiers are explored exhaustively and the check
// surface does not depend on counterexample discovery order.
func rpqPipeline(t testing.TB) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		tt := abcTheory()
		q0, err := ParseQuery("fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
		if err != nil {
			return err
		}
		views := []View{
			{Name: "va", Query: Atomic("fa", theory.Eq("a"))},
			{Name: "vb", Query: Atomic("fb", theory.Eq("b"))},
			{Name: "vc", Query: Atomic("fc", theory.Eq("c"))},
		}
		for _, m := range []Method{Grounded, Direct, Compressed} {
			if _, err := RewriteContext(ctx, q0, views, tt, m); err != nil {
				return err
			}
		}
		r, err := RewriteContext(ctx, q0, views, tt, Grounded)
		if err != nil {
			return err
		}
		if _, _, err := r.IsExactContext(ctx); err != nil {
			return err
		}
		if _, err := RewritePossibleContext(ctx, q0, views, tt); err != nil {
			return err
		}
		return nil
	}
}

func TestFaultInjectionSweepRPQ(t *testing.T) {
	points := int64(40)
	if testing.Short() {
		points = 10
	}
	fired := faultinject.Sweep(t, points, faultinject.SeedFromEnv(3), rpqPipeline(t))
	t.Logf("rpq sweep: %d injections fired", fired)
}

// TestGroundContextCancel: grounding — the transition-heavy stage that
// multiplies formula edges by satisfying constants — honors a
// pre-cancelled context.
func TestGroundContextCancel(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·fb", map[string]string{"fa": "=a", "fb": "=b"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q0.GroundContext(ctx, tt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := q0.GroundContext(context.Background(), tt); err != nil {
		t.Fatalf("live context: %v", err)
	}
}

// TestGroundBudgetTransitions: a transition cap bounds the grounding
// blowup with a typed error naming the stage.
func TestGroundBudgetTransitions(t *testing.T) {
	tt := theory.New()
	tt.AddConstants("a", "b", "c", "d", "e", "f", "g", "h")
	q0 := mustQuery(t, "ftrue·ftrue", map[string]string{"ftrue": "true"})
	b := budget.New(budget.MaxTransitions(4))
	_, err := q0.GroundContext(budget.With(context.Background(), b), tt)
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.ExceededError", err)
	}
	if ex.Stage != "rpq.ground" || ex.Resource != budget.Transitions {
		t.Fatalf("ExceededError = %+v", ex)
	}
}

// TestPartialRewriteAnytimeDegrades: exhaustion mid-search degrades to
// the sound rewriting over the original views instead of an error.
func TestPartialRewriteAnytimeDegrades(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	views := []View{{Name: "q1", Query: Atomic("fa", theory.Eq("a"))}}

	hook, count := faultinject.Counter()
	ctx := budget.With(context.Background(), budget.New(budget.WithHook(hook)))
	res, err := PartialRewriteAnytime(ctx, q0, views, tt, DefaultCandidates(tt), Grounded)
	if err != nil || !res.Exact {
		t.Fatalf("unbounded anytime run: res = %+v, err = %v", res, err)
	}
	total := count()

	b := budget.New(budget.WithHook(faultinject.ExhaustAt(total / 2)))
	res, err = PartialRewriteAnytime(budget.With(context.Background(), b), q0, views, tt, DefaultCandidates(tt), Grounded)
	if err != nil {
		t.Fatalf("anytime must degrade, not fail: %v", err)
	}
	if res.Exact {
		t.Fatal("Exact = true under an exhausted budget")
	}
	var ex *budget.ExceededError
	if !errors.As(res.Reason, &ex) || res.Stage == "" {
		t.Fatalf("res = %+v, want an ExceededError reason with a stage", res)
	}
	if len(res.Result.Added) != 0 {
		t.Fatalf("degraded result added views %v, want none", res.Result.Added)
	}
}

// TestPartialRewriteAnytimeDefinitiveNo: a definitive "the candidate
// set cannot make the rewriting exact" is a real error, not a
// degradation.
func TestPartialRewriteAnytimeDefinitiveNo(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·fb", map[string]string{"fa": "=a", "fb": "=b"})
	cands := []Candidate{{Kind: ElementaryView, Name: "a"}}
	res, err := PartialRewriteAnytime(context.Background(), q0, nil, tt, cands, Grounded)
	if err == nil {
		t.Fatalf("res = %+v, want an error for an insufficient candidate set", res)
	}
	if !errors.Is(err, errNoPartial) {
		t.Fatalf("err = %v, want errNoPartial", err)
	}
}
