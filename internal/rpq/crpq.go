package rpq

import (
	"fmt"
	"sort"

	"regexrw/internal/graph"
	"regexrw/internal/theory"
)

// Atom is one conjunct of a conjunctive regular path query: a regular
// path query between two variables.
type Atom struct {
	From, To string
	Query    *Query
}

// CRPQ is a conjunctive regular path query (the third extension in the
// paper's conclusions): a conjunction of atoms (x_i, Q_i, y_i) over
// shared variables, with an output projection. Generalized path
// queries x1 Q1 x2 … Qn-1 xn (the second extension) are the chain
// special case, built with Chain.
type CRPQ struct {
	Atoms []Atom
	// Out lists the output variables in order; empty means all
	// variables sorted by name.
	Out []string
}

// Chain builds the generalized path query x1 Q1 x2 Q2 … Qn xn+1.
func Chain(queries ...*Query) *CRPQ {
	atoms := make([]Atom, len(queries))
	out := make([]string, len(queries)+1)
	for i, q := range queries {
		atoms[i] = Atom{From: varName(i), To: varName(i + 1), Query: q}
	}
	for i := range out {
		out[i] = varName(i)
	}
	return &CRPQ{Atoms: atoms, Out: out}
}

func varName(i int) string { return fmt.Sprintf("x%d", i+1) }

// Vars returns the query's variables: Out if set, else all variables
// sorted by name.
func (c *CRPQ) Vars() []string {
	if len(c.Out) > 0 {
		return c.Out
	}
	seen := map[string]bool{}
	var vars []string
	for _, a := range c.Atoms {
		for _, v := range []string{a.From, a.To} {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	sort.Strings(vars)
	return vars
}

// Validate checks the query's shape.
func (c *CRPQ) Validate() error {
	if len(c.Atoms) == 0 {
		return fmt.Errorf("rpq: CRPQ needs at least one atom")
	}
	declared := map[string]bool{}
	for i, a := range c.Atoms {
		if a.From == "" || a.To == "" {
			return fmt.Errorf("rpq: atom %d has empty variable", i)
		}
		if a.Query == nil {
			return fmt.Errorf("rpq: atom %d has nil query", i)
		}
		declared[a.From] = true
		declared[a.To] = true
	}
	for _, v := range c.Out {
		if !declared[v] {
			return fmt.Errorf("rpq: output variable %s not used in any atom", v)
		}
	}
	return nil
}

// Tuple is one answer to a CRPQ: a binding of the output variables, in
// Vars() order.
type Tuple []graph.NodeID

// Answer evaluates the query over the database: all bindings of the
// variables to nodes such that every atom's endpoints are connected by
// a path matching its query, projected to the output variables.
// Evaluation materializes each atom's pair relation and joins them.
func (c *CRPQ) Answer(t *theory.Interpretation, db *graph.DB) ([]Tuple, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	relations := make([][]graph.Pair, len(c.Atoms))
	for i, a := range c.Atoms {
		relations[i] = a.Query.Answer(t, db)
	}
	return c.join(relations)
}

// RewriteComponents rewrites each atom's query independently wrt the
// views. As the paper's conclusions note, component-wise rewriting
// ignores the context (prefix/suffix) in which a subpath occurs, so it
// is SOUND but not necessarily maximal for the conjunctive query: the
// rewritings under-approximate each atom, hence evaluating them through
// the views (AnswerUsingViews) yields a subset of the true answer,
// with equality when every component rewriting is exact.
func (c *CRPQ) RewriteComponents(views []View, t *theory.Interpretation, method Method) ([]*Rewriting, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]*Rewriting, len(c.Atoms))
	for i, a := range c.Atoms {
		r, err := Rewrite(a.Query, views, t, method)
		if err != nil {
			return nil, fmt.Errorf("atom %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// AnswerUsingViews evaluates the conjunctive query through
// component-wise rewritings: each atom is answered from the
// materialized views via its rewriting, and the per-atom answers are
// joined.
func (c *CRPQ) AnswerUsingViews(rewritings []*Rewriting, db *graph.DB) ([]Tuple, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(rewritings) != len(c.Atoms) {
		return nil, fmt.Errorf("rpq: %d rewritings for %d atoms", len(rewritings), len(c.Atoms))
	}
	relations := make([][]graph.Pair, len(c.Atoms))
	for i, r := range rewritings {
		relations[i] = r.AnswerUsingViews(db)
	}
	return c.join(relations)
}

// join computes the natural join of the per-atom relations, projected
// to the output variables. Atoms are processed in an order that binds
// connected atoms early (greedy most-bound-first), and each step only
// enumerates pairs consistent with the current partial binding.
func (c *CRPQ) join(relations [][]graph.Pair) ([]Tuple, error) {
	type rel struct {
		atom   Atom
		pairs  []graph.Pair
		byFrom map[graph.NodeID][]graph.NodeID
		byTo   map[graph.NodeID][]graph.NodeID
	}
	rels := make([]rel, len(c.Atoms))
	for i, a := range c.Atoms {
		byFrom := map[graph.NodeID][]graph.NodeID{}
		byTo := map[graph.NodeID][]graph.NodeID{}
		for _, p := range relations[i] {
			byFrom[p.From] = append(byFrom[p.From], p.To)
			byTo[p.To] = append(byTo[p.To], p.From)
		}
		rels[i] = rel{atom: a, pairs: relations[i], byFrom: byFrom, byTo: byTo}
	}

	// Greedy ordering: prefer atoms whose variables are already bound,
	// then smaller relations.
	order := make([]int, 0, len(rels))
	used := make([]bool, len(rels))
	willBind := map[string]bool{}
	for len(order) < len(rels) {
		best := -1
		bestKey := [2]int{-1, 0}
		for i := range rels {
			if used[i] {
				continue
			}
			boundCount := 0
			if willBind[rels[i].atom.From] {
				boundCount++
			}
			if willBind[rels[i].atom.To] {
				boundCount++
			}
			key := [2]int{boundCount, -len(rels[i].pairs)}
			if best == -1 || key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
				best, bestKey = i, key
			}
		}
		used[best] = true
		order = append(order, best)
		willBind[rels[best].atom.From] = true
		willBind[rels[best].atom.To] = true
	}

	outVars := c.Vars()
	var results []Tuple
	seen := map[string]bool{}
	binding := map[string]graph.NodeID{}

	var rec func(step int)
	rec = func(step int) {
		if step == len(order) {
			tuple := make(Tuple, len(outVars))
			key := ""
			for i, v := range outVars {
				tuple[i] = binding[v]
				key += fmt.Sprintf("%d,", binding[v])
			}
			if !seen[key] {
				seen[key] = true
				results = append(results, tuple)
			}
			return
		}
		r := rels[order[step]]
		fromVal, fromBound := binding[r.atom.From]
		toVal, toBound := binding[r.atom.To]
		try := func(f, tt graph.NodeID) {
			if r.atom.From == r.atom.To && f != tt {
				return
			}
			binding[r.atom.From] = f
			binding[r.atom.To] = tt
			rec(step + 1)
			if fromBound {
				binding[r.atom.From] = fromVal
			} else {
				delete(binding, r.atom.From)
			}
			if toBound {
				binding[r.atom.To] = toVal
			} else {
				delete(binding, r.atom.To)
			}
		}
		switch {
		case fromBound && toBound:
			for _, to := range r.byFrom[fromVal] {
				if to == toVal {
					try(fromVal, toVal)
					break
				}
			}
		case fromBound:
			for _, to := range r.byFrom[fromVal] {
				try(fromVal, to)
			}
		case toBound:
			for _, from := range r.byTo[toVal] {
				try(from, toVal)
			}
		default:
			for _, p := range r.pairs {
				try(p.From, p.To)
			}
		}
	}
	rec(0)

	sort.Slice(results, func(i, j int) bool {
		for k := range results[i] {
			if results[i][k] != results[j][k] {
				return results[i][k] < results[j][k]
			}
		}
		return false
	})
	return results, nil
}

// TupleNames renders a tuple with node names.
func TupleNames(db *graph.DB, vars []string, tu Tuple) string {
	s := ""
	for i, v := range vars {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%s", v, db.NodeName(tu[i]))
	}
	return s
}
