package rpq

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"regexrw/internal/automata"
	"regexrw/internal/budget"
	"regexrw/internal/theory"
)

// CandidateKind distinguishes the two kinds of atomic views Section 4.3
// may add to Q.
type CandidateKind int

const (
	// AtomicView is λz. P(z) for a predicate P of the theory.
	AtomicView CandidateKind = iota
	// ElementaryView is λz. z = a for a constant a of the domain
	// (a special case of atomic; the criteria treat it as costlier).
	ElementaryView
)

// String names the kind for display.
func (k CandidateKind) String() string {
	if k == ElementaryView {
		return "elementary"
	}
	return "atomic"
}

// Candidate is an atomic view that the partial-rewriting search may add.
type Candidate struct {
	Kind CandidateKind
	// Name is the predicate name (AtomicView) or constant name
	// (ElementaryView).
	Name string
}

// Formula returns the candidate's unary formula.
func (c Candidate) Formula() theory.Formula {
	if c.Kind == ElementaryView {
		return theory.Eq(c.Name)
	}
	return theory.Pred(c.Name)
}

// viewName returns a view name for the candidate that avoids clashes.
func (c Candidate) viewName(taken map[string]bool) string {
	base := c.Name
	if c.Kind == ElementaryView {
		base = "eq_" + c.Name
	}
	if !taken[base] {
		return base
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s_%d", base, i)
		if !taken[name] {
			return name
		}
	}
}

// DefaultCandidates lists every atomic view of the theory: one per
// predicate, then one elementary view per domain constant, each group
// sorted by name.
func DefaultCandidates(t *theory.Interpretation) []Candidate {
	var out []Candidate
	for _, p := range t.Predicates() {
		out = append(out, Candidate{Kind: AtomicView, Name: p})
	}
	names := make([]string, 0, t.Domain().Len())
	for _, c := range t.Domain().Symbols() {
		names = append(names, t.Domain().Name(c))
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, Candidate{Kind: ElementaryView, Name: n})
	}
	return out
}

// PartialResult is the outcome of PartialRewrite.
type PartialResult struct {
	// Added lists the candidates chosen (empty if the original views
	// already admit an exact rewriting).
	Added []Candidate
	// Views is the extended view set Q_+.
	Views []View
	// Rewriting is the exact rewriting of Q0 wrt Q_+.
	Rewriting *Rewriting
}

// PartialRewrite searches for an exact rewriting of q0 wrt the views
// extended with atomic views drawn from candidates (Section 4.3). The
// search follows the paper's preference criteria: subsets are tried in
// order of (number of elementary views, number of atomic views, total),
// so the first exact hit uses as few elementary views as possible,
// then as few atomic ones. With candidates = DefaultCandidates(t) the
// search always succeeds: adding every elementary view makes the
// identity rewriting available.
func PartialRewrite(q0 *Query, views []View, t *theory.Interpretation, candidates []Candidate, method Method) (*PartialResult, error) {
	return PartialRewriteContext(context.Background(), q0, views, t, candidates, method)
}

// PartialRewriteContext is PartialRewrite with cancellation and
// resource governance: the search tries up to 2^|candidates| extensions
// (DefaultCandidates grows with the domain), each costing a full
// rewriting-plus-exactness pipeline drawn from the budget carried by
// ctx, so callers facing large theories should bound it with a deadline
// or a budget. The search ticks the meter (stage "rpq.partial_search")
// per generated subset and per trial; for a sound best-so-far answer
// instead of an error, use PartialRewriteAnytime.
func PartialRewriteContext(ctx context.Context, q0 *Query, views []View, t *theory.Interpretation, candidates []Candidate, method Method) (*PartialResult, error) {
	r, err := RewriteContext(ctx, q0, views, t, method)
	if err != nil {
		return nil, err
	}
	exact, _, err := r.IsExactContext(ctx)
	if err != nil {
		return nil, err
	}
	if exact {
		return &PartialResult{Added: nil, Views: views, Rewriting: r}, nil
	}
	return partialRewriteSearch(ctx, q0, views, t, candidates, method)
}

// AnytimePartialResult is the outcome of PartialRewriteAnytime. Result
// is always a sound rewriting of q0 (its answers are contained in
// ans(L(Q0), DB) on every database); Exact reports whether the search
// proved it exact before the budget ran out.
type AnytimePartialResult struct {
	Result *PartialResult
	// Exact is true when Result.Rewriting is exact for Result.Views.
	// When false, the search stopped early and Result degrades to the
	// maximal rewriting over the ORIGINAL views — still sound, with no
	// candidates added.
	Exact bool
	// Reason is the budget-exhaustion or cancellation error that stopped
	// the search; nil when Exact is true.
	Reason error
	// Stage names the budget stage that gave out when Reason wraps a
	// *budget.ExceededError; empty otherwise.
	Stage string
}

// PartialRewriteAnytime is the anytime variant of PartialRewriteContext:
// when the budget or deadline gives out mid-search it returns the sound
// best-so-far result — the maximal rewriting over the original views,
// whose answers are contained in the query's by Theorem 11 — with
// Exact=false and the stopping reason, instead of an error. An error is
// returned only when even that base rewriting cannot be built within
// the budget.
func PartialRewriteAnytime(ctx context.Context, q0 *Query, views []View, t *theory.Interpretation, candidates []Candidate, method Method) (*AnytimePartialResult, error) {
	base, err := RewriteContext(ctx, q0, views, t, method)
	if err != nil {
		return nil, err
	}
	degrade := func(reason error) *AnytimePartialResult {
		out := &AnytimePartialResult{
			Result: &PartialResult{Added: nil, Views: views, Rewriting: base},
			Reason: reason,
		}
		var ex *budget.ExceededError
		if errors.As(reason, &ex) {
			out.Stage = ex.Stage
		}
		return out
	}
	exact, _, err := base.IsExactContext(ctx)
	if err != nil {
		return degrade(err), nil
	}
	if exact {
		return &AnytimePartialResult{
			Result: &PartialResult{Added: nil, Views: views, Rewriting: base},
			Exact:  true,
		}, nil
	}
	res, err := partialRewriteSearch(ctx, q0, views, t, candidates, method)
	if err != nil {
		if errors.Is(err, errNoPartial) {
			return nil, err
		}
		return degrade(err), nil
	}
	return &AnytimePartialResult{Result: res, Exact: true}, nil
}

// errNoPartial distinguishes "the candidate set cannot make the
// rewriting exact" (a definitive negative answer) from resource errors
// the anytime wrapper degrades on.
var errNoPartial = errors.New("rpq: no exact partial rewriting within the candidate set")

// partialRewriteSearch enumerates candidate extensions per the Section
// 4.3 preference criteria and returns the first exact one (the caller
// has already ruled out the empty extension).
func partialRewriteSearch(ctx context.Context, q0 *Query, views []View, t *theory.Interpretation, candidates []Candidate, method Method) (*PartialResult, error) {
	meter := budget.Enter(ctx, "rpq.partial_search")

	taken := map[string]bool{}
	for _, v := range views {
		taken[v.Name] = true
	}

	// Order candidates: atomic (cheap) before elementary (costly).
	ordered := append([]Candidate(nil), candidates...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Kind != ordered[j].Kind {
			return ordered[i].Kind == AtomicView
		}
		return ordered[i].Name < ordered[j].Name
	})
	n := len(ordered)

	// cost orders subsets per criteria 2–4: fewer elementary first,
	// then fewer total additions.
	type subset struct {
		idx  []int
		elem int
	}
	var bySize [][]subset
	for size := 1; size <= n; size++ {
		var subs []subset
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for { //ctxcheck:ignore meter.Check below consults ctx every budget.CheckInterval ticks
			// Generation alone is C(n, size) — exponential over all sizes —
			// so cancellation must reach it, not just the trial loop below.
			if err := meter.Check(); err != nil {
				return nil, fmt.Errorf("rpq: partial rewriting: %w", err)
			}
			elem := 0
			for _, j := range idx {
				if ordered[j].Kind == ElementaryView {
					elem++
				}
			}
			subs = append(subs, subset{append([]int(nil), idx...), elem})
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
		sort.SliceStable(subs, func(a, b int) bool { return subs[a].elem < subs[b].elem })
		bySize = append(bySize, subs)
	}

	// Global order: fewest elementary views first (criterion 2), then
	// fewest additions (criterion 4). Merge the per-size lists.
	var all []subset
	for _, subs := range bySize {
		all = append(all, subs...)
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].elem != all[b].elem {
			return all[a].elem < all[b].elem
		}
		return len(all[a].idx) < len(all[b].idx)
	})

	for _, sub := range all {
		if err := meter.Check(); err != nil {
			return nil, fmt.Errorf("rpq: partial rewriting search: %w", err)
		}
		extended := append([]View(nil), views...)
		added := make([]Candidate, 0, len(sub.idx))
		localTaken := map[string]bool{}
		for k, v := range taken {
			localTaken[k] = v
		}
		for _, j := range sub.idx {
			c := ordered[j]
			name := c.viewName(localTaken)
			localTaken[name] = true
			extended = append(extended, View{Name: name, Query: Atomic(name, c.Formula())})
			added = append(added, c)
		}
		r, err := RewriteContext(ctx, q0, extended, t, method)
		if err != nil {
			return nil, err
		}
		ok, _, err := r.IsExactContext(ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			return &PartialResult{Added: added, Views: extended, Rewriting: r}, nil
		}
	}
	return nil, errNoPartial
}

// Compare orders two rewritings by the preference criteria of Section
// 4.3, returning >0 if a is preferable to b, <0 if b is preferable to
// a, and 0 if the criteria do not separate them:
//
//  1. a is preferable if its expansion strictly contains b's
//     (match-level containment over D);
//  2. with equal expansions, fewer added elementary views win;
//  3. then fewer added atomic non-elementary views;
//  4. then fewer views in total.
func Compare(a, b *PartialResult) int {
	ea, eb := a.Rewriting.Expand(), b.Rewriting.Expand()
	aInB, _ := automata.ContainedIn(ea, eb)
	bInA, _ := automata.ContainedIn(eb, ea)
	switch {
	case bInA && !aInB:
		return 1 // b's language ⊂ a's language: a preferable (criterion 1)
	case aInB && !bInA:
		return -1
	case !aInB && !bInA:
		return 0 // incomparable languages
	}
	// Equal expansions: count additions.
	countKind := func(cs []Candidate, k CandidateKind) int {
		n := 0
		for _, c := range cs {
			if c.Kind == k {
				n++
			}
		}
		return n
	}
	if d := countKind(b.Added, ElementaryView) - countKind(a.Added, ElementaryView); d != 0 {
		return sign(d) // criterion 2
	}
	if d := countKind(b.Added, AtomicView) - countKind(a.Added, AtomicView); d != 0 {
		return sign(d) // criterion 3
	}
	if d := len(b.Views) - len(a.Views); d != 0 {
		return sign(d) // criterion 4
	}
	return 0
}

func sign(d int) int {
	if d > 0 {
		return 1
	}
	return -1
}
