package rpq

import (
	"math/rand"
	"testing"

	"regexrw/internal/graph"
	"regexrw/internal/theory"
)

func TestPossibleRewritingBasic(t *testing.T) {
	tt := abcTheory()
	// Q0 = a·b; view u covers (a+c), view w covers b. u·w is possible
	// (ab ∈ exp) but not certain (cb ∈ exp too).
	q0 := mustQuery(t, "fa·fb", map[string]string{"fa": "=a", "fb": "=b"})
	views := []View{
		{Name: "u", Query: mustQuery(t, "f", map[string]string{"f": "=a | =c"})},
		{Name: "w", Query: Atomic("fb", theory.Eq("b"))},
	}
	certain, err := Rewrite(q0, views, tt, Grounded)
	if err != nil {
		t.Fatal(err)
	}
	possible, err := RewritePossible(q0, views, tt)
	if err != nil {
		t.Fatal(err)
	}
	if certain.Accepts("u", "w") {
		t.Fatal("u·w must not be certain")
	}
	if !possible.Accepts("u", "w") {
		t.Fatal("u·w must be possible")
	}
}

func TestPossibleRewritingValidation(t *testing.T) {
	tt := abcTheory()
	q0 := Atomic("fa", theory.Eq("a"))
	if _, err := RewritePossible(nil, nil, tt); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, err := RewritePossible(q0, []View{{Name: "", Query: q0}}, tt); err == nil {
		t.Fatal("empty view name accepted")
	}
	if _, err := RewritePossible(q0, []View{{Name: "v", Query: q0}, {Name: "v", Query: q0}}, tt); err == nil {
		t.Fatal("duplicate view accepted")
	}
}

// TestCertainInsidePossibleAnswers: on random databases, the answers
// obtained through the certain (maximal contained) rewriting are a
// subset of the possible answers.
func TestCertainInsidePossibleAnswers(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tt := theory.New()
	tt.AddConstants("a", "b", "c")
	tt.Declare("p", "a", "b")

	for trial := 0; trial < 10; trial++ {
		db := graph.New(tt.Domain())
		labels := []string{"a", "b", "c"}
		for i := 0; i < 15; i++ {
			from := string(rune('m' + r.Intn(6)))
			to := string(rune('m' + r.Intn(6)))
			db.AddEdge(from, labels[r.Intn(3)], to)
		}
		q0 := mustQuery(t, "f1·f2?", map[string]string{
			"f1": []string{"=a", "p", "=b"}[r.Intn(3)],
			"f2": []string{"=b", "=c", "p"}[r.Intn(3)],
		})
		views := []View{
			{Name: "u1", Query: mustQuery(t, "g", map[string]string{"g": []string{"=a", "p", "=a | =c"}[r.Intn(3)]})},
			{Name: "u2", Query: mustQuery(t, "g", map[string]string{"g": []string{"=b", "=c"}[r.Intn(2)]})},
		}
		certain, err := Rewrite(q0, views, tt, Grounded)
		if err != nil {
			t.Fatal(err)
		}
		possible, err := RewritePossible(q0, views, tt)
		if err != nil {
			t.Fatal(err)
		}
		cAns := certain.AnswerUsingViews(db)
		pAns := possible.AnswerPossibleUsingViews(db)
		inP := map[graph.Pair]bool{}
		for _, pr := range pAns {
			inP[pr] = true
		}
		for _, pr := range cAns {
			if !inP[pr] {
				t.Fatalf("trial %d: certain answer %v not among possible answers", trial, pr)
			}
		}
	}
}

func TestPossibleContainingCheck(t *testing.T) {
	tt := abcTheory()
	q0 := mustQuery(t, "fa·(fb+fc)", map[string]string{"fa": "=a", "fb": "=b", "fc": "=c"})
	// Views covering everything: containing rewriting exists.
	full := []View{
		{Name: "va", Query: Atomic("fa", theory.Eq("a"))},
		{Name: "vbc", Query: mustQuery(t, "f", map[string]string{"f": "=b | =c"})},
	}
	p, err := RewritePossible(q0, full, tt)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := p.IsContaining(); !ok {
		t.Fatal("containing rewriting should exist with full coverage")
	}
	// Views missing c: no containing rewriting.
	partial := full[:1]
	p2, err := RewritePossible(q0, partial, tt)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := p2.IsContaining(); ok {
		t.Fatal("containing rewriting should not exist without b/c coverage")
	}
}
