package rpq_test

import (
	"fmt"
	"log"

	"regexrw/internal/graph"
	"regexrw/internal/rpq"
	"regexrw/internal/theory"
)

// The Section 4.2 motivating example: the theory makes a view usable
// even though no syntactic rewriting exists.
func ExampleRewrite() {
	t := theory.New()
	t.AddConstants("x1", "x2", "x3")
	t.Declare("A", "x1", "x2")
	t.Declare("B", "x1", "x2", "x3") // T ⊨ ∀x. A(x) → B(x)

	q0 := rpq.Atomic("fB", theory.Pred("B"))
	views := []rpq.View{{Name: "vA", Query: rpq.Atomic("fA", theory.Pred("A"))}}
	r, err := rpq.Rewrite(q0, views, t, rpq.Grounded)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := r.IsExact()
	fmt.Println("rewriting:", r.RegexOverViews())
	fmt.Println("exact:", exact)
	// Output:
	// rewriting: vA
	// exact: false
}

// Section 4.3's Example 3 via the partial-rewriting search.
func ExamplePartialRewrite() {
	t := theory.New()
	t.AddConstants("a", "b", "c")
	q0, err := rpq.ParseQuery("fa·(fb+fc)", map[string]string{
		"fa": "=a", "fb": "=b", "fc": "=c",
	})
	if err != nil {
		log.Fatal(err)
	}
	views := []rpq.View{
		{Name: "q1", Query: rpq.Atomic("fa", theory.Eq("a"))},
		{Name: "q2", Query: rpq.Atomic("fb", theory.Eq("b"))},
	}
	res, err := rpq.PartialRewrite(q0, views, t, rpq.DefaultCandidates(t), rpq.Grounded)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Added {
		fmt.Printf("added %v view for %q\n", c.Kind, c.Name)
	}
	fmt.Println("rewriting:", res.Rewriting.RegexOverViews())
	// Output:
	// added elementary view for "c"
	// rewriting: q1·(q2+eq_c)
}

// Conjunctive regular path queries join atom relations over shared
// variables.
func ExampleCRPQ_Answer() {
	t := theory.New()
	t.AddConstants("a", "b")
	db := graph.New(t.Domain())
	db.AddEdge("s", "a", "m")
	db.AddEdge("m", "b", "u")
	db.AddEdge("m", "b", "v")

	c := rpq.Chain(
		rpq.Atomic("fa", theory.Eq("a")),
		rpq.Atomic("fb", theory.Eq("b")),
	)
	tuples, err := c.Answer(t, db)
	if err != nil {
		log.Fatal(err)
	}
	for _, tu := range tuples {
		fmt.Println(rpq.TupleNames(db, c.Vars(), tu))
	}
	// Output:
	// x1=s, x2=m, x3=u
	// x1=s, x2=m, x3=v
}
