// Package budget implements the unified resource governor of the
// rewriting pipeline.
//
// Every core construction of the paper is exponential or worse — the
// maximal rewriting is 2EXPTIME-complete (Theorem 5), exactness is
// 2EXPSPACE-complete (Theorem 9), and Theorem 8 exhibits inputs whose
// rewriting must blow up 2^n — so a service facing untrusted inputs can
// be driven into unbounded memory or an unbounded hang by a single
// request. A Budget is one shared meter for a whole pipeline run: it
// caps the number of materialized states and transitions, and carries a
// fault-injection hook for robustness testing. The wall-clock deadline
// is the context's own (context.WithTimeout); the budget piggybacks on
// the same context via With/From so that it reaches every
// state-materializing loop without widening any signature.
//
// Loops do not touch the Budget directly: they open a Meter
// (budget.Enter) naming their pipeline stage, and call AddStates,
// AddTransitions or Check as they materialize. Exhaustion fails fast
// with a *ExceededError recording which stage exhausted which resource
// at what count; cancellation surfaces as an error wrapping ctx.Err().
// A context without a budget costs one nil check per call, and the
// context itself is consulted only every CheckInterval ticks, so the
// meter is cheap enough for the hottest loops.
package budget

import (
	"context"
	"fmt"
	"sync/atomic"

	"regexrw/internal/obs"
)

// CheckInterval is how many meter ticks pass between consultations of
// the context. Checking every tick would put a mutex-guarded call on
// the hottest loops; every 64th keeps cancellation latency far below
// any human-visible deadline while costing nothing measurable. The
// fault-injection hook, when installed, runs on every tick so that a
// sweep can target any check site.
const CheckInterval = 64

// Resource names a metered resource in an ExceededError.
type Resource string

// The metered resources. States counts materialized automaton states
// and search configurations (subset-construction subsets, product
// pairs, containment frontier nodes); Transitions counts materialized
// transitions (dominant in grounding, where one formula edge becomes
// one edge per satisfying constant).
const (
	States      Resource = "states"
	Transitions Resource = "transitions"
)

// ExceededError reports that a pipeline stage exhausted a budgeted
// resource. It records which stage (the Meter's name), which resource,
// the configured limit and the count that tripped it, so a caller — or
// an operator reading a CLI diagnostic — can see exactly where the
// doubly-exponential construction gave out.
type ExceededError struct {
	Stage    string
	Resource Resource
	Limit    int64
	Used     int64
}

func (e *ExceededError) Error() string {
	return fmt.Sprintf("budget: %s exhausted %s: used %d of %d", e.Stage, e.Resource, e.Used, e.Limit)
}

// Hook is a fault-injection point: it runs on every meter tick with the
// current stage name, and a non-nil return aborts the stage with that
// error. Production budgets leave it nil; the faultinject subpackage
// builds deterministic hooks for the robustness sweeps.
type Hook func(stage string) error

// Budget is a shared resource meter. One Budget governs an entire
// pipeline run: all stages draw states and transitions from the same
// pool, so the caps bound the run's total materialization, not any
// single construction. The zero limits mean unlimited. Budgets are safe
// for concurrent use (counters are atomic); a nil *Budget is a valid
// "no limits" budget.
type Budget struct {
	maxStates      int64
	maxTransitions int64
	hook           Hook

	states      atomic.Int64
	transitions atomic.Int64
}

// Option configures a Budget.
type Option func(*Budget)

// MaxStates caps the total number of states the pipeline may
// materialize; n <= 0 means unlimited.
func MaxStates(n int) Option { return func(b *Budget) { b.maxStates = int64(n) } }

// MaxTransitions caps the total number of transitions the pipeline may
// materialize; n <= 0 means unlimited.
func MaxTransitions(n int) Option { return func(b *Budget) { b.maxTransitions = int64(n) } }

// WithHook installs a fault-injection hook run on every meter tick.
func WithHook(h Hook) Option { return func(b *Budget) { b.hook = h } }

// New returns a Budget with the given options.
func New(opts ...Option) *Budget {
	b := &Budget{}
	for _, o := range opts {
		o(b)
	}
	return b
}

// States returns the number of states charged so far.
func (b *Budget) States() int64 {
	if b == nil {
		return 0
	}
	return b.states.Load()
}

// Transitions returns the number of transitions charged so far.
func (b *Budget) Transitions() int64 {
	if b == nil {
		return 0
	}
	return b.transitions.Load()
}

type ctxKey struct{}

// With returns a context carrying the budget. Every metered loop
// downstream — in automata, core and rpq — draws from it.
func With(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, ctxKey{}, b)
}

// From returns the budget carried by the context, or nil when the
// context has none (nil budgets meter nothing but Meters on them still
// honor cancellation).
func From(ctx context.Context) *Budget {
	b, _ := ctx.Value(ctxKey{}).(*Budget)
	return b
}

// Meter is one stage's handle on the budget of a context. It localizes
// the per-loop state (stage name, tick counter) so that the hot path is
// two integer operations plus a nil check; the shared Budget is only
// touched to charge resources. Open one with Enter at the top of each
// state-materializing construction. A Meter is not safe for concurrent
// use; concurrent stages each open their own (the underlying Budget is
// shared safely).
type Meter struct {
	b     *Budget
	ctx   context.Context
	stage string
	ticks int64

	// Observability taps (internal/obs), captured once at Enter so the
	// per-charge cost is a nil check. Every charge is mirrored onto the
	// context's active span and onto the per-stage counters of the
	// context's metrics registry ("<stage>.states" /
	// "<stage>.transitions"), making the budget meter the single feed
	// point for all state/transition accounting: what tracing and
	// metrics report is exactly what the governor charged.
	span    *obs.Span
	cStates *obs.Counter
	cTrans  *obs.Counter
}

// Enter opens a meter for the named pipeline stage on the context's
// budget (if any). The stage name is what an ExceededError and the
// fault-injection hook see, e.g. "automata.determinize"; it also names
// the stage's span counters and registry metrics.
func Enter(ctx context.Context, stage string) *Meter {
	m := &Meter{b: From(ctx), ctx: ctx, stage: stage, span: obs.SpanFromContext(ctx)}
	if r := obs.MetricsFrom(ctx); r != nil {
		m.cStates = r.Counter(stage + ".states")
		m.cTrans = r.Counter(stage + ".transitions")
	}
	return m
}

// Check ticks the meter without charging resources: the hook runs, and
// the context is consulted on the first tick and every CheckInterval-th
// after (so a pre-cancelled context aborts before any work). Loops that
// iterate without materializing (candidate enumeration, fixpoint
// refinement) call it once per iteration.
func (m *Meter) Check() error {
	m.ticks++
	if m.b != nil && m.b.hook != nil {
		if err := m.b.hook(m.stage); err != nil {
			return err
		}
	}
	if m.ticks%CheckInterval == 1 {
		if err := m.ctx.Err(); err != nil {
			return fmt.Errorf("%s: %w", m.stage, err)
		}
	}
	return nil
}

// AddStates charges n states to the budget and ticks the meter. It
// fails with a *ExceededError once the pipeline's total exceeds the
// budget's cap.
func (m *Meter) AddStates(n int) error {
	if n > 0 {
		// Observability first: the charge reflects work already
		// materialized, so it must be recorded even when it trips the cap.
		m.span.AddStates(int64(n))
		m.cStates.Add(int64(n))
	}
	if m.b != nil && n > 0 {
		used := m.b.states.Add(int64(n))
		if m.b.maxStates > 0 && used > m.b.maxStates {
			return &ExceededError{Stage: m.stage, Resource: States, Limit: m.b.maxStates, Used: used}
		}
	}
	return m.Check()
}

// AddTransitions charges n transitions to the budget and ticks the
// meter.
func (m *Meter) AddTransitions(n int) error {
	if n > 0 {
		m.span.AddTransitions(int64(n))
		m.cTrans.Add(int64(n))
	}
	if m.b != nil && n > 0 {
		used := m.b.transitions.Add(int64(n))
		if m.b.maxTransitions > 0 && used > m.b.maxTransitions {
			return &ExceededError{Stage: m.stage, Resource: Transitions, Limit: m.b.maxTransitions, Used: used}
		}
	}
	return m.Check()
}
