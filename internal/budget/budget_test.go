package budget

import (
	"context"
	"errors"
	"testing"
)

func TestStateCapTrips(t *testing.T) {
	b := New(MaxStates(10))
	m := Enter(With(context.Background(), b), "test.stage")
	if err := m.AddStates(10); err != nil {
		t.Fatalf("within cap: %v", err)
	}
	err := m.AddStates(1)
	var ex *ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExceededError", err)
	}
	if ex.Stage != "test.stage" || ex.Resource != States || ex.Limit != 10 || ex.Used != 11 {
		t.Fatalf("ExceededError = %+v", ex)
	}
	if got := ex.Error(); got != "budget: test.stage exhausted states: used 11 of 10" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestTransitionCapTrips(t *testing.T) {
	b := New(MaxTransitions(5))
	m := Enter(With(context.Background(), b), "test.stage")
	if err := m.AddTransitions(5); err != nil {
		t.Fatalf("within cap: %v", err)
	}
	err := m.AddTransitions(3)
	var ex *ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExceededError", err)
	}
	if ex.Resource != Transitions || ex.Limit != 5 || ex.Used != 8 {
		t.Fatalf("ExceededError = %+v", ex)
	}
}

// TestSharedPool: two meters on the same budget draw from one pool — the
// caps bound the pipeline's total, not any single stage.
func TestSharedPool(t *testing.T) {
	b := New(MaxStates(10))
	ctx := With(context.Background(), b)
	m1 := Enter(ctx, "stage.one")
	m2 := Enter(ctx, "stage.two")
	if err := m1.AddStates(6); err != nil {
		t.Fatalf("stage one: %v", err)
	}
	err := m2.AddStates(6)
	var ex *ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExceededError", err)
	}
	if ex.Stage != "stage.two" {
		t.Fatalf("Stage = %q, want the stage that tripped the shared cap", ex.Stage)
	}
	if b.States() != 12 {
		t.Fatalf("States() = %d, want 12", b.States())
	}
}

func TestZeroLimitsUnlimited(t *testing.T) {
	m := Enter(With(context.Background(), New()), "test.stage")
	if err := m.AddStates(1 << 20); err != nil {
		t.Fatalf("zero caps should be unlimited: %v", err)
	}
	if err := m.AddTransitions(1 << 20); err != nil {
		t.Fatalf("zero caps should be unlimited: %v", err)
	}
}

// TestNoBudgetHonorsCancellation: a context without a budget meters
// nothing, but the meter still consults the context.
func TestNoBudgetHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := Enter(ctx, "test.stage")
	err := m.Check()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled on the first tick", err)
	}
	if err.Error() != "test.stage: context canceled" {
		t.Fatalf("err = %q, want the stage-prefixed form", err)
	}
}

// TestCancellationLatency: a cancellation arriving mid-loop is observed
// within one check interval.
func TestCancellationLatency(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := Enter(ctx, "test.stage")
	if err := m.Check(); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	for i := 0; i < CheckInterval; i++ {
		if err := m.Check(); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			return
		}
	}
	t.Fatalf("cancellation not observed within %d ticks", CheckInterval)
}

func TestHookRunsEveryTick(t *testing.T) {
	calls := 0
	b := New(WithHook(func(stage string) error {
		calls++
		if stage != "test.stage" {
			t.Fatalf("hook saw stage %q", stage)
		}
		return nil
	}))
	m := Enter(With(context.Background(), b), "test.stage")
	for i := 0; i < 7; i++ {
		if err := m.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddStates(1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransitions(1); err != nil {
		t.Fatal(err)
	}
	if calls != 9 {
		t.Fatalf("hook ran %d times, want 9 (every tick)", calls)
	}
}

func TestHookErrorAborts(t *testing.T) {
	boom := errors.New("injected")
	m := Enter(With(context.Background(), New(WithHook(func(string) error { return boom }))), "test.stage")
	if err := m.Check(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
}

func TestFromWithoutBudget(t *testing.T) {
	if b := From(context.Background()); b != nil {
		t.Fatalf("From(plain ctx) = %v, want nil", b)
	}
	b := New(MaxStates(3))
	if got := From(With(context.Background(), b)); got != b {
		t.Fatal("With/From must round-trip the budget")
	}
}

func TestNilBudgetAccessors(t *testing.T) {
	var b *Budget
	if b.States() != 0 || b.Transitions() != 0 {
		t.Fatal("nil budget accessors must return 0")
	}
}

func TestNonPositiveChargesFree(t *testing.T) {
	b := New(MaxStates(1))
	m := Enter(With(context.Background(), b), "test.stage")
	if err := m.AddStates(0); err != nil {
		t.Fatalf("AddStates(0): %v", err)
	}
	if err := m.AddStates(-5); err != nil {
		t.Fatalf("AddStates(-5): %v", err)
	}
	if b.States() != 0 {
		t.Fatalf("States() = %d, want 0 after non-positive charges", b.States())
	}
}
