package faultinject

import (
	"context"
	"errors"
	"testing"

	"regexrw/internal/budget"
)

func TestCounter(t *testing.T) {
	hook, count := Counter()
	for i := 0; i < 5; i++ {
		if err := hook("s"); err != nil {
			t.Fatalf("Counter hook must never fail: %v", err)
		}
	}
	if count() != 5 {
		t.Fatalf("count = %d, want 5", count())
	}
}

func TestExhaustAt(t *testing.T) {
	hook := ExhaustAt(3)
	for i := 1; i <= 2; i++ {
		if err := hook("stage.a"); err != nil {
			t.Fatalf("site %d should pass: %v", i, err)
		}
	}
	err := hook("stage.b")
	var ex *budget.ExceededError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *budget.ExceededError", err)
	}
	if ex.Stage != "stage.b" {
		t.Fatalf("Stage = %q, want the stage active at the injection site", ex.Stage)
	}
	if err := hook("stage.b"); err != nil {
		t.Fatalf("sites after the trigger should pass: %v", err)
	}
}

func TestCancelAt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := CancelAt(2, ctx, cancel)
	if err := hook("s"); err != nil {
		t.Fatalf("site 1 should pass: %v", err)
	}
	if err := hook("s"); !errors.Is(err, context.Canceled) {
		t.Fatalf("site 2 err = %v, want context.Canceled", err)
	}
	if ctx.Err() == nil {
		t.Fatal("context must be cancelled at the trigger site")
	}
	// Unlike ExhaustAt, cancellation is sticky: later sites keep failing.
	if err := hook("s"); !errors.Is(err, context.Canceled) {
		t.Fatalf("site 3 err = %v, want context.Canceled", err)
	}
}

func TestSites(t *testing.T) {
	got := Sites(100, 10, 7)
	if len(got) == 0 {
		t.Fatal("no sites")
	}
	seen := map[int64]bool{}
	has1, hasTotal := false, false
	for _, s := range got {
		if s < 1 || s > 100 {
			t.Fatalf("site %d out of [1,100]", s)
		}
		if seen[s] {
			t.Fatalf("duplicate site %d", s)
		}
		seen[s] = true
		if s == 1 {
			has1 = true
		}
		if s == 100 {
			hasTotal = true
		}
	}
	if !has1 || !hasTotal {
		t.Fatalf("sites %v must include both endpoints", got)
	}

	// Deterministic per seed.
	again := Sites(100, 10, 7)
	if len(again) != len(got) {
		t.Fatalf("non-deterministic: %v vs %v", got, again)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("non-deterministic: %v vs %v", got, again)
		}
	}

	// Different seeds probe different phases when the stride allows.
	other := Sites(100, 10, 8)
	same := len(other) == len(got)
	if same {
		for i := range got {
			if got[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 7 and 8 selected identical sites %v", got)
	}
}

func TestSitesEdgeCases(t *testing.T) {
	if s := Sites(0, 5, 1); s != nil {
		t.Fatalf("Sites(0,...) = %v, want nil", s)
	}
	if s := Sites(5, 0, 1); s != nil {
		t.Fatalf("Sites(_,0,...) = %v, want nil", s)
	}
	// points > total covers every site.
	got := Sites(3, 10, 42)
	if len(got) != 3 {
		t.Fatalf("Sites(3,10) = %v, want all 3 sites", got)
	}
	// Single site.
	if got := Sites(1, 1, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Sites(1,1) = %v", got)
	}
}
