package faultinject

import (
	"fmt"
	"sync/atomic"
	"syscall"
)

// I/O fault injection for the persistent plan store.
//
// The plan store (internal/planstore) funnels every disk touch through
// a hook of shape
//
//	func(op, path string, data []byte) ([]byte, error)
//
// called at the named operation sites below. An IOFault built here is
// assignable to that hook: it passes every call through untouched
// except the site-th occurrence of the targeted operation, where it
// injects one of the failure modes a real disk produces — an
// out-of-space error, a torn (truncated) write, a flipped bit, a short
// read, an open failure. Injection is deterministic given
// (op, site, kind), so a CI failure reproduces locally from the logged
// triple, exactly like the budget-exhaustion sweeps.

// Operation sites the plan store reports to its hook. The store calls
// the hook with op IOWrite/IORead carrying the payload bytes (the hook
// may replace them to model corruption) and with the other ops carrying
// nil data (the hook may only fail them).
const (
	IOOpen   = "open"   // opening an entry or temp file
	IORead   = "read"   // after an entry's bytes are read
	IOWrite  = "write"  // before an entry's bytes are written
	IOSync   = "sync"   // fsync of the temp file or directory
	IORename = "rename" // atomic publish of the temp file
)

// IOFaultKind selects the failure mode an IOFault injects.
type IOFaultKind int

const (
	// IOErrFail fails the operation with a generic injected I/O error.
	IOErrFail IOFaultKind = iota
	// IOErrNoSpace fails the operation with ENOSPC, the disk-full error.
	IOErrNoSpace
	// IOTornWrite truncates the payload to half its length: the bytes
	// that reach the disk are a prefix, as after a mid-write crash
	// without the temp-file + rename protocol.
	IOTornWrite
	// IOBitFlip flips one bit in the middle of the payload, modeling
	// silent media corruption that only a checksum can catch.
	IOBitFlip
	// IOShortRead drops the tail of the bytes coming back from a read.
	IOShortRead
)

// String names the kind for log lines and test diagnostics.
func (k IOFaultKind) String() string {
	switch k {
	case IOErrFail:
		return "err"
	case IOErrNoSpace:
		return "enospc"
	case IOTornWrite:
		return "torn_write"
	case IOBitFlip:
		return "bit_flip"
	case IOShortRead:
		return "short_read"
	}
	return fmt.Sprintf("IOFaultKind(%d)", int(k))
}

// ErrInjected is the error wrapped by every injected I/O failure that
// is not ENOSPC; stores and tests match it with errors.Is.
var ErrInjected = fmt.Errorf("faultinject: injected I/O error")

// IOFault returns a plan-store hook that injects kind at the site-th
// occurrence (1-based) of the targeted op and passes everything else
// through, plus a fired function reporting whether the injection has
// triggered. Data-mangling kinds (IOTornWrite, IOBitFlip, IOShortRead)
// leave the operation "successful" but corrupt its bytes; error kinds
// fail it. A mangling kind targeted at an op with no payload degrades
// to IOErrFail so the injection is never silently a no-op.
func IOFault(op string, site int64, kind IOFaultKind) (hook func(op, path string, data []byte) ([]byte, error), fired func() bool) {
	var n, hit atomic.Int64
	h := func(callOp, path string, data []byte) ([]byte, error) {
		if callOp != op || n.Add(1) != site {
			return data, nil
		}
		hit.Store(1)
		switch kind {
		case IOTornWrite:
			if len(data) > 0 {
				return data[:len(data)/2], nil
			}
		case IOBitFlip:
			if len(data) > 0 {
				mangled := append([]byte(nil), data...)
				mangled[len(mangled)/2] ^= 0x10
				return mangled, nil
			}
		case IOShortRead:
			if len(data) > 0 {
				return data[:len(data)-1], nil
			}
		case IOErrNoSpace:
			return nil, fmt.Errorf("faultinject: %s %s: %w", op, path, syscall.ENOSPC)
		}
		return nil, fmt.Errorf("faultinject: %s %s: %w", op, path, ErrInjected)
	}
	return h, func() bool { return hit.Load() == 1 }
}

// IOSite names one (operation, kind) pair of the plan-store sweep
// matrix; AllIOSites enumerates the modes each operation can fail in.
type IOSite struct {
	Op   string
	Kind IOFaultKind
}

// AllIOSites is the sweep matrix for the plan store: every operation
// crossed with the failure modes that make sense for it. Sweeps iterate
// this so a new operation or kind added here is automatically covered.
func AllIOSites() []IOSite {
	return []IOSite{
		{IOOpen, IOErrFail},
		{IORead, IOErrFail},
		{IORead, IOBitFlip},
		{IORead, IOShortRead},
		{IOWrite, IOErrFail},
		{IOWrite, IOErrNoSpace},
		{IOWrite, IOTornWrite},
		{IOWrite, IOBitFlip},
		{IOSync, IOErrFail},
		{IORename, IOErrFail},
	}
}
