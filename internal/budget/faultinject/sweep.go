package faultinject

import (
	"context"
	"errors"
	"os"
	"strconv"
	"testing"

	"regexrw/internal/budget"
)

// SeedFromEnv returns the sweep seed from REGEXRW_FAULT_SEED, or
// fallback when the variable is unset or malformed. CI jobs export a
// varying seed so successive runs probe different phases of the check
// surface while any single run reproduces from its logged seed.
func SeedFromEnv(fallback int64) int64 {
	if s := os.Getenv("REGEXRW_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return fallback
}

// Sweep drives a full fault-injection sweep over a pipeline. It first
// runs the pipeline under a counting hook to measure its check surface,
// then re-runs it once per selected site with budget exhaustion
// injected there, and once per site with cancellation injected there,
// asserting the robustness contract each time:
//
//   - the pipeline returns an error rather than panicking;
//   - injected exhaustion surfaces as an error wrapping
//     *budget.ExceededError (never swallowed, never reshaped into a
//     panic or a success);
//   - injected cancellation surfaces as an error wrapping
//     context.Canceled.
//
// Construction sizes are deterministic but tick ORDER need not be, so a
// re-run may pass slightly fewer sites than the measured surface; an
// injection that never fires is recorded as skipped, not failed. Sweep
// returns the number of injections that actually fired so callers can
// assert coverage.
func Sweep(t testing.TB, points, seed int64, pipeline func(ctx context.Context) error) int64 {
	t.Helper()
	hook, count := Counter()
	base := budget.With(context.Background(), budget.New(budget.WithHook(hook)))
	if err := pipeline(base); err != nil {
		t.Fatalf("faultinject: baseline run failed: %v", err)
	}
	total := count()
	if total == 0 {
		t.Fatal("faultinject: pipeline has no check sites — nothing is metered")
	}

	var fired int64
	for _, site := range Sites(total, points, seed) {
		// Exhaustion at this site.
		hit := false
		inner := ExhaustAt(site)
		b := budget.New(budget.WithHook(func(stage string) error {
			err := inner(stage)
			if err != nil {
				hit = true
			}
			return err
		}))
		err := pipeline(budget.With(context.Background(), b))
		if hit {
			fired++
			var ex *budget.ExceededError
			if !errors.As(err, &ex) {
				t.Errorf("faultinject: exhaustion at site %d/%d (seed %d): err = %v, want wrapped *budget.ExceededError", site, total, seed, err)
			}
		} else if err != nil {
			t.Errorf("faultinject: site %d/%d (seed %d) never fired yet run failed: %v", site, total, seed, err)
		}

		// Cancellation at this site.
		hit = false
		cctx, cancel := context.WithCancel(context.Background())
		cinner := CancelAt(site, cctx, cancel)
		cb := budget.New(budget.WithHook(func(stage string) error {
			err := cinner(stage)
			if err != nil {
				hit = true
			}
			return err
		}))
		err = pipeline(budget.With(cctx, cb))
		cancel()
		if hit {
			fired++
			if !errors.Is(err, context.Canceled) {
				t.Errorf("faultinject: cancellation at site %d/%d (seed %d): err = %v, want wrapped context.Canceled", site, total, seed, err)
			}
		} else if err != nil {
			t.Errorf("faultinject: site %d/%d (seed %d) never fired yet run failed: %v", site, total, seed, err)
		}
	}
	return fired
}
