// Package faultinject builds deterministic fault-injection hooks for
// the budget meter.
//
// The robustness contract of the pipeline — every state-materializing
// loop fails fast with a *budget.ExceededError or an error wrapping
// ctx.Err(), never panics, never returns a partially-built automaton —
// is only worth anything if it holds at EVERY check site, not just the
// ones a hand-written test happens to hit. The sweeps in the automata,
// core and rpq test suites therefore run each pipeline twice: once with
// a counting hook to learn how many check sites the run passes, then
// once per selected site with a hook that injects budget exhaustion or
// cancellation exactly there, asserting the contract each time.
// Injection is deterministic given (site, seed), so a CI failure
// reproduces locally from the logged site number.
package faultinject

import (
	"context"
	"sync/atomic"

	"regexrw/internal/budget"
)

// Counter returns a hook that never fails plus a function reporting how
// many check sites the hook has seen. A pipeline run under a Counter
// measures its injection surface.
func Counter() (budget.Hook, func() int64) {
	var n atomic.Int64
	return func(string) error { n.Add(1); return nil }, n.Load
}

// ExhaustAt returns a hook that reports budget exhaustion at the
// site-th check (1-based) and the stage active there, and passes every
// other site. The injected error is a genuine *budget.ExceededError, so
// callers exercise exactly the propagation path a real cap trips.
func ExhaustAt(site int64) budget.Hook {
	var n atomic.Int64
	return func(stage string) error {
		if n.Add(1) == site {
			return &budget.ExceededError{Stage: stage, Resource: budget.States, Limit: site - 1, Used: site}
		}
		return nil
	}
}

// CancelAt returns a hook that cancels the given context at the site-th
// check and returns its error from that site on, modeling a deadline
// that fires mid-construction. Sites before the trigger pass.
func CancelAt(site int64, ctx context.Context, cancel context.CancelFunc) budget.Hook {
	var n atomic.Int64
	return func(string) error {
		if n.Add(1) >= site {
			cancel()
			return ctx.Err()
		}
		return nil
	}
}

// Sites selects up to points injection sites from a surface of total
// check sites, spread evenly with a seed-dependent phase so that
// different CI runs probe different sites while any single run is
// reproducible. Sites are 1-based; the first and last site are always
// included (off-by-one territory on both ends).
func Sites(total, points, seed int64) []int64 {
	if total <= 0 || points <= 0 {
		return nil
	}
	if points > total {
		points = total
	}
	stride := total / points
	if stride < 1 {
		stride = 1
	}
	phase := int64(0)
	if stride > 1 && seed != 0 {
		phase = (seed%stride + stride) % stride
	}
	seen := make(map[int64]bool, points+2)
	var out []int64
	add := func(s int64) {
		if s >= 1 && s <= total && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	add(1)
	for s := 1 + phase; s <= total && int64(len(out)) < points; s += stride {
		add(s)
	}
	add(total)
	return out
}
