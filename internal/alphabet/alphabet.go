// Package alphabet provides interned symbol alphabets.
//
// Every automaton and regular expression in this repository is defined
// over an Alphabet: an append-only, bidirectional mapping between
// human-readable symbol names and dense integer Symbol ids. Interning
// keeps the hot loops of the automata package free of string hashing,
// and dense ids let transition tables be indexed by slice.
//
// The paper works with several alphabets at once — the base alphabet Σ,
// the view alphabet Σ_E, the formula alphabet F of a theory, and the
// edge-label domain D of a graph database — all of which are ordinary
// Alphabet values here.
package alphabet

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is an interned symbol identifier, dense in [0, Alphabet.Len()).
type Symbol int32

// None is the invalid symbol, returned by lookups that fail.
const None Symbol = -1

// Alphabet is an append-only set of named symbols. The zero value is an
// empty alphabet ready to use.
type Alphabet struct {
	names []string
	ids   map[string]Symbol
}

// New returns an empty alphabet. Equivalent to new(Alphabet).
func New() *Alphabet {
	return &Alphabet{}
}

// FromNames returns an alphabet containing the given names in order.
// Duplicate names are interned once.
func FromNames(names ...string) *Alphabet {
	a := New()
	for _, n := range names {
		a.Intern(n)
	}
	return a
}

// Intern returns the symbol for name, adding it if absent.
func (a *Alphabet) Intern(name string) Symbol {
	if s, ok := a.ids[name]; ok {
		return s
	}
	if a.ids == nil {
		a.ids = make(map[string]Symbol)
	}
	s := Symbol(len(a.names))
	a.names = append(a.names, name)
	a.ids[name] = s
	return s
}

// Lookup returns the symbol for name, or None if name was never interned.
func (a *Alphabet) Lookup(name string) Symbol {
	if s, ok := a.ids[name]; ok {
		return s
	}
	return None
}

// Contains reports whether name has been interned.
func (a *Alphabet) Contains(name string) bool {
	_, ok := a.ids[name]
	return ok
}

// Name returns the name of symbol s. It panics if s is out of range,
// since a foreign Symbol indicates mixed-up alphabets — a programming
// error, not an input error.
func (a *Alphabet) Name(s Symbol) string {
	if s < 0 || int(s) >= len(a.names) {
		panic(fmt.Sprintf("alphabet: symbol %d out of range [0,%d)", s, len(a.names)))
	}
	return a.names[s]
}

// Len returns the number of interned symbols.
func (a *Alphabet) Len() int { return len(a.names) }

// Symbols returns all symbols in interning order.
func (a *Alphabet) Symbols() []Symbol {
	out := make([]Symbol, len(a.names))
	for i := range out {
		out[i] = Symbol(i)
	}
	return out
}

// Names returns a copy of all symbol names in interning order.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Clone returns an independent copy of the alphabet.
func (a *Alphabet) Clone() *Alphabet {
	b := New()
	for _, n := range a.names {
		b.Intern(n)
	}
	return b
}

// Equal reports whether two alphabets intern the same names to the same
// symbols (same names in the same order).
func (a *Alphabet) Equal(b *Alphabet) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, n := range a.names {
		if b.names[i] != n {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every name of a is interned in b (symbol ids
// need not agree).
func (a *Alphabet) SubsetOf(b *Alphabet) bool {
	for _, n := range a.names {
		if !b.Contains(n) {
			return false
		}
	}
	return true
}

// Union returns a new alphabet interning all names of a then all names
// of b (deduplicated, order-preserving).
func Union(a, b *Alphabet) *Alphabet {
	u := a.Clone()
	for _, n := range b.names {
		u.Intern(n)
	}
	return u
}

// String renders the alphabet as {n1, n2, ...} with names sorted, for
// diagnostics.
func (a *Alphabet) String() string {
	names := a.Names()
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// Map translates a symbol of a into the corresponding symbol of b by
// name, interning into b if necessary.
func Map(a *Alphabet, s Symbol, b *Alphabet) Symbol {
	return b.Intern(a.Name(s))
}
