package alphabet

import (
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	a := New()
	for i, name := range []string{"a", "b", "c"} {
		if got := a.Intern(name); int(got) != i {
			t.Fatalf("Intern(%q) = %d, want %d", name, got, i)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}

func TestInternIsIdempotent(t *testing.T) {
	a := New()
	s1 := a.Intern("x")
	s2 := a.Intern("x")
	if s1 != s2 {
		t.Fatalf("re-interning gave %d then %d", s1, s2)
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
}

func TestLookup(t *testing.T) {
	a := FromNames("a", "b")
	if got := a.Lookup("b"); got != 1 {
		t.Fatalf("Lookup(b) = %d, want 1", got)
	}
	if got := a.Lookup("zz"); got != None {
		t.Fatalf("Lookup(zz) = %d, want None", got)
	}
}

func TestContains(t *testing.T) {
	a := FromNames("a")
	if !a.Contains("a") || a.Contains("b") {
		t.Fatalf("Contains wrong: a=%v b=%v", a.Contains("a"), a.Contains("b"))
	}
}

func TestNameRoundTrip(t *testing.T) {
	a := FromNames("alpha", "beta", "gamma")
	for _, s := range a.Symbols() {
		if a.Intern(a.Name(s)) != s {
			t.Fatalf("round trip failed for %d", s)
		}
	}
}

func TestNamePanicsOutOfRange(t *testing.T) {
	a := FromNames("a")
	defer func() {
		if recover() == nil {
			t.Fatal("Name(5) did not panic")
		}
	}()
	_ = a.Name(5)
}

func TestZeroValueUsable(t *testing.T) {
	var a Alphabet
	if a.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if a.Intern("a") != 0 {
		t.Fatal("zero value Intern failed")
	}
}

func TestFromNamesDedup(t *testing.T) {
	a := FromNames("a", "b", "a")
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromNames("a", "b")
	b := a.Clone()
	b.Intern("c")
	if a.Contains("c") {
		t.Fatal("clone mutated original")
	}
	if !a.SubsetOf(b) {
		t.Fatal("original not subset of extended clone")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		x, y *Alphabet
		want bool
	}{
		{FromNames("a", "b"), FromNames("a", "b"), true},
		{FromNames("a", "b"), FromNames("b", "a"), false},
		{FromNames("a"), FromNames("a", "b"), false},
		{New(), New(), true},
	}
	for i, c := range cases {
		if got := c.x.Equal(c.y); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	small := FromNames("a", "c")
	big := FromNames("a", "b", "c")
	if !small.SubsetOf(big) {
		t.Fatal("small should be subset of big")
	}
	if big.SubsetOf(small) {
		t.Fatal("big should not be subset of small")
	}
}

func TestUnion(t *testing.T) {
	u := Union(FromNames("a", "b"), FromNames("b", "c"))
	if u.Len() != 3 {
		t.Fatalf("union Len = %d, want 3", u.Len())
	}
	for _, n := range []string{"a", "b", "c"} {
		if !u.Contains(n) {
			t.Fatalf("union missing %q", n)
		}
	}
}

func TestMapAcrossAlphabets(t *testing.T) {
	a := FromNames("x", "y")
	b := FromNames("y")
	s := Map(a, a.Lookup("x"), b)
	if b.Name(s) != "x" {
		t.Fatalf("Map gave %q, want x", b.Name(s))
	}
}

func TestString(t *testing.T) {
	a := FromNames("b", "a")
	if got := a.String(); got != "{a, b}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: interning any sequence of names yields ids consistent with
// first-occurrence order, and Name inverts Intern.
func TestQuickInternConsistency(t *testing.T) {
	f := func(names []string) bool {
		a := New()
		seen := make(map[string]Symbol)
		for _, n := range names {
			s := a.Intern(n)
			if prev, ok := seen[n]; ok {
				if prev != s {
					return false
				}
			} else {
				seen[n] = s
			}
			if a.Name(s) != n {
				return false
			}
		}
		return a.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
