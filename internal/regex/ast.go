// Package regex implements the regular expressions used throughout the
// paper: an AST with the paper's syntax (·/juxtaposition for
// concatenation, + for union, * for Kleene star, ? for option, ε and ∅),
// a parser, compilation to NFAs (Thompson construction), conversion of
// automata back to regular expressions (state elimination), and an
// algebraic simplifier so that computed rewritings print in the compact
// form the paper uses (e.g. e2*·e1·e3*).
//
// Symbols are multi-character identifiers (`rome`, `e2`); adjacent
// symbols must therefore be separated by `·`, `.` or whitespace.
package regex

import (
	"sort"
	"strings"
)

// Op enumerates AST node kinds.
type Op int

// AST node kinds.
const (
	OpEmpty   Op = iota // ∅ — the empty language
	OpEpsilon           // ε — the empty word
	OpSymbol            // a named alphabet symbol
	OpConcat            // E1·E2·…·En
	OpUnion             // E1+E2+…+En
	OpStar              // E*
	OpOpt               // E?
)

// Node is an immutable regular-expression AST node. Construct nodes with
// the constructor functions; do not mutate Subs after construction.
type Node struct {
	Op   Op
	Name string  // symbol name, for OpSymbol
	Subs []*Node // children: ≥2 for OpConcat/OpUnion, exactly 1 for OpStar/OpOpt
}

// Empty returns the ∅ node.
func Empty() *Node { return &Node{Op: OpEmpty} }

// Epsilon returns the ε node.
func Epsilon() *Node { return &Node{Op: OpEpsilon} }

// Sym returns a symbol node.
func Sym(name string) *Node { return &Node{Op: OpSymbol, Name: name} }

// Concat returns the concatenation of the given nodes (ε for none,
// the node itself for one). Nested concatenations are flattened.
func Concat(subs ...*Node) *Node {
	flat := make([]*Node, 0, len(subs))
	for _, s := range subs {
		if s.Op == OpConcat {
			flat = append(flat, s.Subs...)
		} else {
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return Epsilon()
	case 1:
		return flat[0]
	}
	return &Node{Op: OpConcat, Subs: flat}
}

// Union returns the union of the given nodes (∅ for none, the node
// itself for one). Nested unions are flattened.
func Union(subs ...*Node) *Node {
	flat := make([]*Node, 0, len(subs))
	for _, s := range subs {
		if s.Op == OpUnion {
			flat = append(flat, s.Subs...)
		} else {
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return Empty()
	case 1:
		return flat[0]
	}
	return &Node{Op: OpUnion, Subs: flat}
}

// Star returns E*.
func Star(sub *Node) *Node { return &Node{Op: OpStar, Subs: []*Node{sub}} }

// Opt returns E?.
func Opt(sub *Node) *Node { return &Node{Op: OpOpt, Subs: []*Node{sub}} }

// Plus returns E·E*, the paper's E⁺ (kept out of the AST so that every
// printed expression re-parses).
func Plus(sub *Node) *Node { return Concat(sub, Star(sub)) }

// Word returns the concatenation of the named symbols (ε for none).
func Word(names ...string) *Node {
	subs := make([]*Node, len(names))
	for i, n := range names {
		subs[i] = Sym(n)
	}
	return Concat(subs...)
}

// Nullable reports whether the language of n contains the empty word.
func (n *Node) Nullable() bool {
	switch n.Op {
	case OpEpsilon, OpStar, OpOpt:
		return true
	case OpEmpty, OpSymbol:
		return false
	case OpConcat:
		for _, s := range n.Subs {
			if !s.Nullable() {
				return false
			}
		}
		return true
	case OpUnion:
		for _, s := range n.Subs {
			if s.Nullable() {
				return true
			}
		}
		return false
	}
	panic("regex: unknown op")
}

// IsEmpty reports whether the language of n is syntactically empty
// (contains ∅ in a position that annihilates everything). Sound but not
// complete on unsimplified trees; exact after Simplify.
func (n *Node) IsEmpty() bool {
	switch n.Op {
	case OpEmpty:
		return true
	case OpEpsilon, OpSymbol, OpStar, OpOpt:
		return false
	case OpConcat:
		for _, s := range n.Subs {
			if s.IsEmpty() {
				return true
			}
		}
		return false
	case OpUnion:
		for _, s := range n.Subs {
			if !s.IsEmpty() {
				return false
			}
		}
		return true
	}
	panic("regex: unknown op")
}

// SymbolNames returns the sorted set of symbol names occurring in n.
func (n *Node) SymbolNames() []string {
	set := map[string]bool{}
	n.visitSymbols(set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (n *Node) visitSymbols(set map[string]bool) {
	if n.Op == OpSymbol {
		set[n.Name] = true
	}
	for _, s := range n.Subs {
		s.visitSymbols(set)
	}
}

// Size returns the number of AST nodes.
func (n *Node) Size() int {
	total := 1
	for _, s := range n.Subs {
		total += s.Size()
	}
	return total
}

// Equal reports structural equality.
func (n *Node) Equal(o *Node) bool {
	if n.Op != o.Op || n.Name != o.Name || len(n.Subs) != len(o.Subs) {
		return false
	}
	for i := range n.Subs {
		if !n.Subs[i].Equal(o.Subs[i]) {
			return false
		}
	}
	return true
}

// precedence for printing: union < concat < postfix.
func (n *Node) prec() int {
	switch n.Op {
	case OpUnion:
		return 0
	case OpConcat:
		return 1
	default:
		return 2
	}
}

// String renders the node in the paper's concrete syntax. The output
// re-parses to a structurally equal tree (modulo flattening).
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	child := func(c *Node, minPrec int) {
		if c.prec() < minPrec {
			b.WriteByte('(')
			c.write(b)
			b.WriteByte(')')
		} else {
			c.write(b)
		}
	}
	switch n.Op {
	case OpEmpty:
		b.WriteString("∅")
	case OpEpsilon:
		b.WriteString("ε")
	case OpSymbol:
		b.WriteString(n.Name)
	case OpConcat:
		for i, s := range n.Subs {
			if i > 0 {
				b.WriteString("·")
			}
			child(s, 2)
		}
	case OpUnion:
		for i, s := range n.Subs {
			if i > 0 {
				b.WriteString("+")
			}
			child(s, 1)
		}
	case OpStar:
		child(n.Subs[0], 2)
		b.WriteString("*")
	case OpOpt:
		child(n.Subs[0], 2)
		b.WriteString("?")
	}
}
