package regex

import (
	"testing"

	"regexrw/internal/alphabet"
)

// FuzzParse checks that the parser never panics, and that on every
// accepted input the printed form re-parses to a structurally stable
// tree (String is a fixpoint after one round trip).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a", "a·(b·a+c)*", "a+b·c?", "ε", "∅", "((a))", "e2*·e1·e3*",
		"a**", "rome+jerusalem", "a b c", "", "(", "·", "+a", "a⊥",
		"a?*+?", "eps·empty", "ａ", "a·ε+∅*",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		n, err := Parse(input)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		printed := n.String()
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed, input, err)
		}
		if n2.String() != printed {
			t.Fatalf("String not a fixpoint: %q -> %q", printed, n2.String())
		}
		// Simplify must not panic and must stay re-parseable.
		s := Simplify(n)
		if _, err := Parse(s.String()); err != nil {
			t.Fatalf("simplified form %q unparseable: %v", s.String(), err)
		}
		// Compilation must yield a structurally valid automaton (and,
		// under the regexrwdebug tag, exercises the constructor hooks).
		if err := n.ToNFA(alphabet.New()).Validate(); err != nil {
			t.Fatalf("ToNFA of %q produced an invalid NFA: %v", input, err)
		}
	})
}

// FuzzDerivative checks the derivative engine never panics and agrees
// with itself under simplification.
func FuzzDerivative(f *testing.F) {
	f.Add("a·(b+c)*", "a")
	f.Add("x*·y", "x")
	f.Fuzz(func(t *testing.T, expr, sym string) {
		n, err := Parse(expr)
		if err != nil || sym == "" {
			return
		}
		d := Derivative(n, sym)
		_ = d.Nullable()
		_ = d.String()
		if err := d.ToNFA(alphabet.New()).Validate(); err != nil {
			t.Fatalf("ToNFA of derivative %q produced an invalid NFA: %v", d, err)
		}
	})
}
