package regex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regexrw/internal/alphabet"
)

func TestDerivativeKnownCases(t *testing.T) {
	cases := []struct {
		expr string
		sym  string
		want string // equivalent expression
	}{
		{"a", "a", "ε"},
		{"a", "b", "∅"},
		{"ε", "a", "∅"},
		{"∅", "a", "∅"},
		{"a·b", "a", "b"},
		{"a·b", "b", "∅"},
		{"a+b", "a", "ε"},
		{"a*", "a", "a*"},
		{"a?·b", "a", "b"},
		{"a?·b", "b", "ε"},
		{"(a·b)*", "a", "b·(a·b)*"},
		{"a·(b·a+c)*", "a", "(b·a+c)*"},
	}
	for _, c := range cases {
		got := Derivative(mustParse(t, c.expr), c.sym)
		if !Equivalent(got, mustParse(t, c.want)) {
			t.Errorf("∂_%s(%s) = %s, want ≡ %s", c.sym, c.expr, got, c.want)
		}
	}
}

func TestMatchDerivativesBasics(t *testing.T) {
	n := mustParse(t, "a·(b·a+c)*")
	accept := [][]string{{"a"}, {"a", "c"}, {"a", "b", "a"}, {"a", "c", "b", "a", "c"}}
	reject := [][]string{{}, {"b"}, {"a", "b"}, {"a", "a"}, {"c", "a"}}
	for _, w := range accept {
		if !MatchDerivatives(n, w...) {
			t.Errorf("derivatives rejected %v", w)
		}
	}
	for _, w := range reject {
		if MatchDerivatives(n, w...) {
			t.Errorf("derivatives accepted %v", w)
		}
	}
}

// Property: derivative-based matching agrees with the Thompson/NFA
// pipeline on random expressions and words — two engines, zero shared
// machinery.
func TestPropertyDerivativesAgreeWithNFA(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	names := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		n := randomNode(r, 4)
		al := alphabet.New()
		nfa := n.ToNFA(al)
		for i := 0; i < 30; i++ {
			w := make([]string, r.Intn(7))
			for j := range w {
				w[j] = names[r.Intn(len(names))]
			}
			nfaSays := nfa.AcceptsNames(w...)
			derSays := MatchDerivatives(n, w...)
			if nfaSays != derSays {
				t.Fatalf("engines disagree on %q / %v: NFA=%v derivatives=%v",
					n, w, nfaSays, derSays)
			}
		}
	}
}

// Property (testing/quick): the fundamental derivative identity
// L(∂_a(E)) = { w : a·w ∈ L(E) }, checked via automata.
func TestQuickDerivativeIdentity(t *testing.T) {
	exprs := []string{
		"a·(b·a+c)*", "(a+b)*·c", "a*·b?", "a·b+b·a", "(a?·b)*", "a+ε",
	}
	syms := []string{"a", "b", "c"}
	f := func(ei, si uint8) bool {
		e := MustParse(exprs[int(ei)%len(exprs)])
		a := syms[int(si)%len(syms)]
		d := Derivative(e, a)
		// Compare L(d) with the left quotient computed by automata:
		// run the NFA one step on a and compare the residual.
		al := alphabet.New()
		nfa := e.ToNFA(al)
		dnfa := d.ToNFA(al)
		// For a sample of words w: w ∈ L(d) ⇔ a·w ∈ L(e).
		r := rand.New(rand.NewSource(int64(ei)*31 + int64(si)))
		for i := 0; i < 25; i++ {
			w := make([]string, r.Intn(6))
			for j := range w {
				w[j] = syms[r.Intn(len(syms))]
			}
			if dnfa.AcceptsNames(w...) != nfa.AcceptsNames(append([]string{a}, w...)...) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDerivativeShortCircuitsOnEmpty(t *testing.T) {
	if MatchDerivatives(mustParse(t, "a"), "b", "a", "a", "a") {
		t.Fatal("match after dead derivative")
	}
}
