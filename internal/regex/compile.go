package regex

import (
	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// ToNFA compiles the expression to an ε-NFA over the given alphabet via
// the Thompson construction, interning any symbols not yet present. The
// returned automaton has a single start state and a single accepting
// state with no outgoing transitions (the invariant the paper's
// expansion construction of Section 2 relies on when splicing view
// automata into rewriting edges).
func (n *Node) ToNFA(a *alphabet.Alphabet) *automata.NFA {
	out := automata.NewNFA(a)
	start, end := compileInto(n, out, a)
	out.SetStart(start)
	out.SetAccept(end, true)
	return out
}

// compileInto adds the Thompson fragment for n to out and returns its
// entry and exit states. The exit state has no outgoing transitions.
func compileInto(n *Node, out *automata.NFA, a *alphabet.Alphabet) (automata.State, automata.State) {
	switch n.Op {
	case OpEmpty:
		s := out.AddState()
		t := out.AddState()
		return s, t // no path from s to t
	case OpEpsilon:
		s := out.AddState()
		t := out.AddState()
		out.AddEpsilon(s, t)
		return s, t
	case OpSymbol:
		s := out.AddState()
		t := out.AddState()
		out.AddTransition(s, a.Intern(n.Name), t)
		return s, t
	case OpConcat:
		s := out.AddState()
		cur := s
		for _, sub := range n.Subs {
			entry, exit := compileInto(sub, out, a)
			out.AddEpsilon(cur, entry)
			cur = exit
		}
		t := out.AddState()
		out.AddEpsilon(cur, t)
		return s, t
	case OpUnion:
		s := out.AddState()
		t := out.AddState()
		for _, sub := range n.Subs {
			entry, exit := compileInto(sub, out, a)
			out.AddEpsilon(s, entry)
			out.AddEpsilon(exit, t)
		}
		return s, t
	case OpStar:
		s := out.AddState()
		t := out.AddState()
		entry, exit := compileInto(n.Subs[0], out, a)
		out.AddEpsilon(s, t)
		out.AddEpsilon(s, entry)
		out.AddEpsilon(exit, entry)
		out.AddEpsilon(exit, t)
		return s, t
	case OpOpt:
		s := out.AddState()
		t := out.AddState()
		entry, exit := compileInto(n.Subs[0], out, a)
		out.AddEpsilon(s, t)
		out.AddEpsilon(s, entry)
		out.AddEpsilon(exit, t)
		return s, t
	}
	panic("regex: unknown op")
}

// ToDFA compiles the expression and determinizes it.
func (n *Node) ToDFA(a *alphabet.Alphabet) *automata.DFA {
	return automata.Determinize(n.ToNFA(a))
}

// ToMinimalDFA compiles to the canonical trim minimal DFA.
func (n *Node) ToMinimalDFA(a *alphabet.Alphabet) *automata.DFA {
	return automata.DeterminizeMinimal(n.ToNFA(a))
}

// Matches reports whether the word of symbol names is in L(n), compiling
// on the fly (convenience for tests and examples; compile once for bulk
// matching).
func (n *Node) Matches(names ...string) bool {
	a := alphabet.New()
	return n.ToNFA(a).AcceptsNames(names...)
}
