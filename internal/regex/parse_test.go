package regex

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return n
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() output
	}{
		{"a", "a"},
		{"a·b", "a·b"},
		{"a.b", "a·b"},
		{"a b", "a·b"},
		{"a+b", "a+b"},
		{"a|b", "a+b"},
		{"a*", "a*"},
		{"a?", "a?"},
		{"(a+b)*", "(a+b)*"},
		{"a·(b·a+c)*", "a·(b·a+c)*"},
		{"ε", "ε"},
		{"eps", "ε"},
		{"∅", "∅"},
		{"empty", "∅"},
		{"rome+jerusalem", "rome+jerusalem"},
		{"e2*·e1·e3*", "e2*·e1·e3*"},
		{"a**", "a**"},
		{"((a))", "a"},
		{"a+b+c", "a+b+c"},
		{"a·b·c", "a·b·c"},
		{"a+b·c", "a+b·c"},
		{"(a+b)·c", "(a+b)·c"},
	}
	for _, c := range cases {
		n := mustParse(t, c.in)
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// Star binds tighter than concat, concat tighter than union.
	n := mustParse(t, "a+b·c*")
	if n.Op != OpUnion {
		t.Fatalf("top op = %v, want union", n.Op)
	}
	rhs := n.Subs[1]
	if rhs.Op != OpConcat || rhs.Subs[1].Op != OpStar {
		t.Fatalf("precedence wrong: %s", n)
	}
}

func TestParseMultiCharSymbols(t *testing.T) {
	n := mustParse(t, "restaurant")
	if n.Op != OpSymbol || n.Name != "restaurant" {
		t.Fatalf("multi-char symbol parsed as %v", n)
	}
	// Juxtaposed identifiers need a separator: "ab" is one symbol.
	n = mustParse(t, "ab")
	if n.Op != OpSymbol || n.Name != "ab" {
		t.Fatalf("got %v, want single symbol ab", n)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(", ")", "a+", "*", "+a", "a)", "(a", "a + ", "a⊥b"} {
		if n, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded with %v, want error", in, n)
		}
	}
}

func TestParseErrorMessagesMentionOffset(t *testing.T) {
	_, err := Parse("a·(b")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error %v should mention offset", err)
	}
}

func TestRoundTripStringParse(t *testing.T) {
	for _, in := range []string{
		"a·(b·a+c)*",
		"(a+b·c?)*·d",
		"ε+a·b",
		"∅",
		"e2*·e1·e3*",
		"a**",
		"(a?·b)*+c",
	} {
		n1 := mustParse(t, in)
		n2 := mustParse(t, n1.String())
		if !n1.Equal(n2) {
			t.Errorf("round trip of %q: %s != %s", in, n1, n2)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of garbage did not panic")
		}
	}()
	MustParse("(((")
}

func TestNullable(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"ε", true}, {"∅", false}, {"a", false}, {"a*", true}, {"a?", true},
		{"a·b", false}, {"a*·b*", true}, {"a+b", false}, {"a+ε", true},
		{"(a·b)*", true}, {"a·b*", false},
	}
	for _, c := range cases {
		if got := mustParse(t, c.in).Nullable(); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsEmpty(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"∅", true}, {"∅·a", true}, {"a·∅", true}, {"∅+∅", true},
		{"∅+a", false}, {"∅*", false}, {"a", false}, {"ε", false},
	}
	for _, c := range cases {
		if got := mustParse(t, c.in).IsEmpty(); got != c.want {
			t.Errorf("IsEmpty(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSymbolNames(t *testing.T) {
	n := mustParse(t, "a·(b·a+c)*·rome")
	got := n.SymbolNames()
	want := []string{"a", "b", "c", "rome"}
	if len(got) != len(want) {
		t.Fatalf("SymbolNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SymbolNames = %v, want %v", got, want)
		}
	}
}

func TestSizeAndEqual(t *testing.T) {
	a := mustParse(t, "a·b+c")
	if a.Size() != 5 {
		t.Fatalf("Size = %d, want 5", a.Size())
	}
	if !a.Equal(mustParse(t, "a·b+c")) {
		t.Fatal("Equal(self-parse) = false")
	}
	if a.Equal(mustParse(t, "c+a·b")) {
		t.Fatal("Equal ignores order?")
	}
}

func TestWordConstructor(t *testing.T) {
	w := Word("a", "b", "c")
	if w.String() != "a·b·c" {
		t.Fatalf("Word = %s", w)
	}
	if Word().String() != "ε" {
		t.Fatal("empty Word should be ε")
	}
}

func TestPlusConstructor(t *testing.T) {
	p := Plus(Sym("a"))
	if p.String() != "a·a*" {
		t.Fatalf("Plus(a) = %s, want a·a*", p)
	}
	if !p.Matches("a") || !p.Matches("a", "a") || p.Matches() {
		t.Fatal("Plus semantics wrong")
	}
}

func TestParseRepetition(t *testing.T) {
	cases := []struct {
		in     string
		accept [][]string
		reject [][]string
	}{
		{"a{3}", [][]string{{"a", "a", "a"}}, [][]string{{"a", "a"}, {"a", "a", "a", "a"}}},
		{"a{0}", [][]string{{}}, [][]string{{"a"}}},
		{"a{1,3}", [][]string{{"a"}, {"a", "a"}, {"a", "a", "a"}}, [][]string{{}, {"a", "a", "a", "a"}}},
		{"a{0,2}", [][]string{{}, {"a"}, {"a", "a"}}, [][]string{{"a", "a", "a"}}},
		{"(a+b){2}", [][]string{{"a", "b"}, {"b", "b"}}, [][]string{{"a"}, {"a", "b", "a"}}},
		{"a{2}·b", [][]string{{"a", "a", "b"}}, [][]string{{"a", "b"}}},
	}
	for _, c := range cases {
		n := mustParse(t, c.in)
		for _, w := range c.accept {
			if !n.Matches(w...) {
				t.Errorf("%q should accept %v", c.in, w)
			}
		}
		for _, w := range c.reject {
			if n.Matches(w...) {
				t.Errorf("%q should reject %v", c.in, w)
			}
		}
	}
}

func TestParseRepetitionErrors(t *testing.T) {
	for _, in := range []string{"a{", "a{}", "a{x}", "a{2", "a{3,1}", "a{1,}", "a{,2}", "a{999999999}", "{2}"} {
		if n, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, n)
		}
	}
}

func TestParseRepetitionEquivalences(t *testing.T) {
	pairs := [][2]string{
		{"a{3}", "a·a·a"},
		{"a{1,2}", "a·a?"},
		{"a{0,1}", "a?"},
		{"(a·b){2,3}", "a·b·a·b·(a·b)?"},
	}
	for _, p := range pairs {
		if !Equivalent(mustParse(t, p[0]), mustParse(t, p[1])) {
			t.Errorf("%q should equal %q", p[0], p[1])
		}
	}
}
