package regex

// Simplify returns a language-equivalent expression with standard
// algebraic identities applied bottom-up:
//
//	∅+E = E      ∅·E = E·∅ = ∅     ε·E = E·ε = E
//	∅* = ε       ε* = ε            (E*)* = E*
//	(E?)* = E*   (ε+E) = E if E nullable, else E?
//	E?? = E?     (E*)? = E*        duplicate union branches dropped
//	E+E*… with E* present and E a branch: E dropped when subsumed
//
// The result is canonical enough for the paper's examples to print in
// their published form; it is not a minimal normal form (language
// minimality is undecidable syntactically — use automata equivalence for
// semantic checks).
func Simplify(n *Node) *Node {
	switch n.Op {
	case OpEmpty, OpEpsilon, OpSymbol:
		return n
	case OpStar:
		return simplifyStar(Simplify(n.Subs[0]))
	case OpOpt:
		return simplifyOpt(Simplify(n.Subs[0]))
	case OpConcat:
		return simplifyConcat(n.Subs)
	case OpUnion:
		return simplifyUnion(n.Subs)
	}
	panic("regex: unknown op")
}

func simplifyStar(sub *Node) *Node {
	switch sub.Op {
	case OpEmpty, OpEpsilon:
		return Epsilon()
	case OpStar:
		return sub
	case OpOpt:
		return Star(sub.Subs[0])
	case OpUnion:
		// (ε + E1 + …)* = (E1 + …)*
		var kept []*Node
		changed := false
		for _, s := range sub.Subs {
			if s.Op == OpEpsilon {
				changed = true
				continue
			}
			// (E* + …)* = (E + …)*
			if s.Op == OpStar {
				s = s.Subs[0]
				changed = true
			} else if s.Op == OpOpt {
				s = s.Subs[0]
				changed = true
			}
			kept = append(kept, s)
		}
		if changed {
			return simplifyStar(simplifyUnion(kept))
		}
	}
	return Star(sub)
}

func simplifyOpt(sub *Node) *Node {
	switch sub.Op {
	case OpEmpty, OpEpsilon:
		return Epsilon()
	case OpStar, OpOpt:
		return sub
	}
	if sub.Nullable() {
		return sub
	}
	return Opt(sub)
}

func simplifyConcat(subs []*Node) *Node {
	var flat []*Node
	for _, s := range subs {
		s = Simplify(s)
		switch s.Op {
		case OpEmpty:
			return Empty()
		case OpEpsilon:
			continue
		case OpConcat:
			flat = append(flat, s.Subs...)
		default:
			flat = append(flat, s)
		}
	}
	// E*·E* = E*  and  E*·E·E* patterns are left alone; only adjacent
	// identical stars collapse.
	var out []*Node
	for _, s := range flat {
		if len(out) > 0 && s.Op == OpStar && out[len(out)-1].Op == OpStar &&
			s.Subs[0].Equal(out[len(out)-1].Subs[0]) {
			continue
		}
		out = append(out, s)
	}
	return Concat(out...)
}

func simplifyUnion(subs []*Node) *Node {
	var flat []*Node
	for _, s := range subs {
		s = Simplify(s)
		switch s.Op {
		case OpEmpty:
			continue
		case OpUnion:
			flat = append(flat, s.Subs...)
		default:
			flat = append(flat, s)
		}
	}
	// Deduplicate structurally equal branches, preserving order.
	var uniq []*Node
	for _, s := range flat {
		dup := false
		for _, u := range uniq {
			if s.Equal(u) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, s)
		}
	}
	// Drop ε if some branch is nullable; drop E when E* is a branch.
	hasEps := false
	nullableNonEps := false
	for _, s := range uniq {
		if s.Op == OpEpsilon {
			hasEps = true
		} else if s.Nullable() {
			nullableNonEps = true
		}
	}
	var kept []*Node
	for _, s := range uniq {
		if s.Op == OpEpsilon && nullableNonEps {
			continue
		}
		subsumed := false
		for _, o := range uniq {
			if o.Op == OpStar && o.Subs[0].Equal(s) {
				subsumed = true
				break
			}
			if o.Op == OpOpt && o.Subs[0].Equal(s) {
				subsumed = true
				break
			}
		}
		if subsumed {
			continue
		}
		kept = append(kept, s)
	}
	if hasEps && !nullableNonEps && len(kept) == 2 {
		// ε + E  →  E?  (when E is the single other branch)
		var other *Node
		for _, s := range kept {
			if s.Op != OpEpsilon {
				other = s
			}
		}
		if other != nil {
			return simplifyOpt(other)
		}
	}
	return Union(kept...)
}
