package regex

// Brzozowski derivatives: an automaton-free matching engine for the
// expression AST. ∂_a(E) denotes the set of words w with a·w ∈ L(E).
// Derivative-based matching is an independently-derived oracle for the
// Thompson/subset-construction pipeline — the two implementations share
// no code beyond the AST — which makes their agreement a strong
// property test.

// Derivative returns the Brzozowski derivative of n by the named
// symbol, simplified.
func Derivative(n *Node, symbol string) *Node {
	return Simplify(derive(n, symbol))
}

func derive(n *Node, a string) *Node {
	switch n.Op {
	case OpEmpty, OpEpsilon:
		return Empty()
	case OpSymbol:
		if n.Name == a {
			return Epsilon()
		}
		return Empty()
	case OpUnion:
		subs := make([]*Node, len(n.Subs))
		for i, s := range n.Subs {
			subs[i] = derive(s, a)
		}
		return Union(subs...)
	case OpConcat:
		// ∂a(E1·…·En) = Σ_i  [E1…E(i-1) all nullable] · ∂a(Ei)·E(i+1)…En
		var branches []*Node
		for i, s := range n.Subs {
			branch := Concat(append([]*Node{derive(s, a)}, n.Subs[i+1:]...)...)
			branches = append(branches, branch)
			if !s.Nullable() {
				break
			}
		}
		return Union(branches...)
	case OpStar:
		return Concat(derive(n.Subs[0], a), Star(n.Subs[0]))
	case OpOpt:
		return derive(n.Subs[0], a)
	}
	panic("regex: unknown op")
}

// MatchDerivatives reports whether the word (a sequence of symbol
// names) is in L(n), by iterated derivation: w ∈ L(E) iff
// ∂_w(E) is nullable. Intermediate expressions are simplified to keep
// their size bounded in practice.
func MatchDerivatives(n *Node, word ...string) bool {
	cur := n
	for _, a := range word {
		cur = Derivative(cur, a)
		if cur.Op == OpEmpty {
			return false
		}
	}
	return cur.Nullable()
}
