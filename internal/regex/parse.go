package regex

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse parses a regular expression in the paper's concrete syntax:
//
//	union   := concat { '+' concat }
//	concat  := postfix { ('·' | '.')? postfix }     (separator optional)
//	postfix := atom { '*' | '?' | '{' m (',' n)? '}' }
//	atom    := symbol | 'ε' | 'eps' | '∅' | 'empty' | '(' union ')'
//	symbol  := letter-or-digit-or-underscore-or-dash sequence
//
// Bounded repetition E{m} (exactly m copies) and E{m,n} (between m and
// n copies, m ≤ n) is parse-time sugar: it expands into concatenations
// and options, so the AST stays within the paper's operator set.
//
// Whitespace separates tokens and otherwise has no meaning, so
// `a·(b·a+c)*`, `a (b a + c)*` and `a.(b.a+c)*` all denote the same
// expression. `|` is accepted as a synonym for `+`.
func Parse(input string) (*Node, error) {
	p := &parser{input: input}
	p.next()
	if p.tok == tokEOF {
		return nil, fmt.Errorf("regex: empty input")
	}
	n, err := p.union()
	if err != nil {
		return nil, err
	}
	if p.errRune != 0 {
		return nil, fmt.Errorf("regex: invalid character %q at offset %d", p.errRune, p.pos)
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", p.lit, p.pos)
	}
	return n, nil
}

// MustParse is Parse that panics on error, for fixtures and examples.
func MustParse(input string) *Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

type token int

const (
	tokEOF token = iota
	tokSymbol
	tokEpsilon
	tokEmpty
	tokPlus
	tokStar
	tokOpt
	tokDot
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
)

type parser struct {
	input   string
	pos     int    // offset of current token
	off     int    // scan offset
	tok     token  // current token
	lit     string // literal for tokSymbol
	errRune rune   // invalid character encountered, if any
}

func isSymbolRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (p *parser) next() {
	for p.off < len(p.input) {
		r, w := utf8.DecodeRuneInString(p.input[p.off:])
		if !unicode.IsSpace(r) {
			break
		}
		p.off += w
	}
	p.pos = p.off
	if p.off >= len(p.input) {
		p.tok = tokEOF
		p.lit = ""
		return
	}
	r, w := utf8.DecodeRuneInString(p.input[p.off:])
	switch r {
	case '+', '|':
		p.tok, p.lit = tokPlus, string(r)
		p.off += w
		return
	case '*':
		p.tok, p.lit = tokStar, "*"
		p.off += w
		return
	case '?':
		p.tok, p.lit = tokOpt, "?"
		p.off += w
		return
	case '·', '.':
		p.tok, p.lit = tokDot, string(r)
		p.off += w
		return
	case '(':
		p.tok, p.lit = tokLParen, "("
		p.off += w
		return
	case '{':
		p.tok, p.lit = tokLBrace, "{"
		p.off += w
		return
	case '}':
		p.tok, p.lit = tokRBrace, "}"
		p.off += w
		return
	case ',':
		p.tok, p.lit = tokComma, ","
		p.off += w
		return
	case ')':
		p.tok, p.lit = tokRParen, ")"
		p.off += w
		return
	case 'ε':
		p.tok, p.lit = tokEpsilon, "ε"
		p.off += w
		return
	case '∅':
		p.tok, p.lit = tokEmpty, "∅"
		p.off += w
		return
	}
	if isSymbolRune(r) {
		start := p.off
		for p.off < len(p.input) {
			r, w := utf8.DecodeRuneInString(p.input[p.off:])
			if !isSymbolRune(r) {
				break
			}
			p.off += w
		}
		p.lit = p.input[start:p.off]
		switch strings.ToLower(p.lit) {
		case "eps":
			p.tok = tokEpsilon
		case "empty":
			p.tok = tokEmpty
		default:
			p.tok = tokSymbol
		}
		return
	}
	p.tok = tokEOF
	p.lit = string(r)
	p.pos = p.off
	p.off += w
	p.errRune = r
}

func (p *parser) union() (*Node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []*Node{first}
	for p.tok == tokPlus {
		p.next()
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	return Union(subs...), nil
}

func (p *parser) concat() (*Node, error) {
	first, err := p.postfix()
	if err != nil {
		return nil, err
	}
	subs := []*Node{first}
	for {
		if p.tok == tokDot {
			p.next()
			n, err := p.postfix()
			if err != nil {
				return nil, err
			}
			subs = append(subs, n)
			continue
		}
		// Juxtaposition: the next token starts an atom.
		if p.tok == tokSymbol || p.tok == tokEpsilon || p.tok == tokEmpty || p.tok == tokLParen {
			n, err := p.postfix()
			if err != nil {
				return nil, err
			}
			subs = append(subs, n)
			continue
		}
		return Concat(subs...), nil
	}
}

func (p *parser) postfix() (*Node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok {
		case tokStar:
			n = Star(n)
			p.next()
		case tokOpt:
			n = Opt(n)
			p.next()
		case tokLBrace:
			rep, err := p.repetition(n)
			if err != nil {
				return nil, err
			}
			n = rep
		default:
			return n, nil
		}
	}
}

// repetition parses {m} or {m,n} after an atom and expands it.
func (p *parser) repetition(base *Node) (*Node, error) {
	p.next() // consume '{'
	m, err := p.count()
	if err != nil {
		return nil, err
	}
	n := m
	if p.tok == tokComma {
		p.next()
		n, err = p.count()
		if err != nil {
			return nil, err
		}
	}
	if p.tok != tokRBrace {
		return nil, fmt.Errorf("regex: missing '}' at offset %d", p.pos)
	}
	p.next()
	if n < m {
		return nil, fmt.Errorf("regex: repetition {%d,%d} has n < m", m, n)
	}
	parts := make([]*Node, 0, n)
	for i := 0; i < m; i++ {
		parts = append(parts, base)
	}
	// Optional tail: (base (base (…)?)?)? nested so that each extra
	// copy is independently optional.
	var tail *Node
	for i := 0; i < n-m; i++ {
		if tail == nil {
			tail = Opt(base)
		} else {
			tail = Opt(Concat(base, tail))
		}
	}
	if tail != nil {
		parts = append(parts, tail)
	}
	return Concat(parts...), nil
}

// count parses a decimal repetition bound from a symbol token.
func (p *parser) count() (int, error) {
	if p.tok != tokSymbol {
		return 0, fmt.Errorf("regex: want repetition count at offset %d, got %q", p.pos, p.lit)
	}
	v := 0
	for _, r := range p.lit {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("regex: bad repetition count %q at offset %d", p.lit, p.pos)
		}
		v = v*10 + int(r-'0')
		if v > 1<<16 {
			return 0, fmt.Errorf("regex: repetition count %q too large", p.lit)
		}
	}
	p.next()
	return v, nil
}

func (p *parser) atom() (*Node, error) {
	switch p.tok {
	case tokSymbol:
		n := Sym(p.lit)
		p.next()
		return n, nil
	case tokEpsilon:
		p.next()
		return Epsilon(), nil
	case tokEmpty:
		p.next()
		return Empty(), nil
	case tokLParen:
		p.next()
		n, err := p.union()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("regex: missing ')' at offset %d", p.pos)
		}
		p.next()
		return n, nil
	case tokEOF:
		if p.errRune != 0 {
			return nil, fmt.Errorf("regex: invalid character %q at offset %d", p.errRune, p.pos)
		}
		return nil, fmt.Errorf("regex: unexpected end of input")
	default:
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", p.lit, p.pos)
	}
}
