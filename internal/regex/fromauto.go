package regex

import (
	"sort"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

// FromNFA converts an automaton into a regular expression denoting the
// same language, by state elimination on the generalized NFA (GNFA).
// States are eliminated cheapest-first (in-degree × out-degree) and
// intermediate expressions are simplified, which keeps the output close
// to the compact forms the paper quotes for its examples.
func FromNFA(n *automata.NFA) *Node {
	n = n.Trim()
	if n.IsEmpty() {
		return Empty()
	}

	// GNFA edge labels, keyed by (from, to) over states 0..k+1 where
	// k = n.NumStates(), state k is the fresh start and k+1 the fresh end.
	k := n.NumStates()
	start, end := k, k+1
	total := k + 2
	edges := make(map[[2]int]*Node)
	addEdge := func(from, to int, label *Node) {
		key := [2]int{from, to}
		if prev, ok := edges[key]; ok {
			edges[key] = Union(prev, label)
		} else {
			edges[key] = label
		}
	}

	al := n.Alphabet()
	for s := 0; s < k; s++ {
		for _, x := range n.OutSymbolsSorted(automata.State(s)) {
			targets := append([]automata.State(nil), n.Successors(automata.State(s), x)...)
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
			for _, t := range targets {
				addEdge(s, int(t), Sym(al.Name(x)))
			}
		}
		for _, t := range n.EpsSuccessors(automata.State(s)) {
			addEdge(s, int(t), Epsilon())
		}
	}
	addEdge(start, int(n.Start()), Epsilon())
	for _, f := range n.AcceptingStates() {
		addEdge(int(f), end, Epsilon())
	}

	alive := make([]bool, total)
	for i := range alive {
		alive[i] = true
	}

	// Eliminate interior states, cheapest (fan-in × fan-out) first.
	for remaining := k; remaining > 0; remaining-- {
		victim, bestCost := -1, -1
		for s := 0; s < k; s++ {
			if !alive[s] {
				continue
			}
			in, out := 0, 0
			for key := range edges {
				if key[1] == s && key[0] != s {
					in++
				}
				if key[0] == s && key[1] != s {
					out++
				}
			}
			cost := in * out
			if victim == -1 || cost < bestCost {
				victim, bestCost = s, cost
			}
		}
		eliminate(edges, victim)
		alive[victim] = false
	}

	if label, ok := edges[[2]int{start, end}]; ok {
		return Simplify(label)
	}
	return Empty()
}

// eliminate removes state v from the GNFA, rerouting every path
// p → v → q as p --(pv · vv* · vq)--> q.
func eliminate(edges map[[2]int]*Node, v int) {
	var loop *Node
	if l, ok := edges[[2]int{v, v}]; ok {
		loop = Simplify(Star(l))
		delete(edges, [2]int{v, v})
	}
	var ins, outs [][2]int
	for key := range edges {
		if key[1] == v {
			ins = append(ins, key)
		}
		if key[0] == v {
			outs = append(outs, key)
		}
	}
	// Deterministic rerouting order keeps the printed rewriting stable
	// across runs (map iteration order is randomized).
	sort.Slice(ins, func(i, j int) bool { return ins[i][0] < ins[j][0] })
	sort.Slice(outs, func(i, j int) bool { return outs[i][1] < outs[j][1] })
	for _, in := range ins {
		for _, out := range outs {
			label := edges[in]
			if loop != nil {
				label = Concat(label, loop)
			}
			label = Simplify(Concat(label, edges[out]))
			key := [2]int{in[0], out[1]}
			if prev, ok := edges[key]; ok {
				edges[key] = Simplify(Union(prev, label))
			} else {
				edges[key] = label
			}
		}
	}
	for _, in := range ins {
		delete(edges, in)
	}
	for _, out := range outs {
		delete(edges, out)
	}
}

// FromDFA converts a DFA into an equivalent regular expression.
func FromDFA(d *automata.DFA) *Node {
	return FromNFA(d.NFA())
}

// Equivalent reports whether two expressions denote the same language,
// decided on automata over the union of their symbol sets.
func Equivalent(a, b *Node) bool {
	al := alphabet.New()
	return automata.Equivalent(a.ToNFA(al), b.ToNFA(al))
}

// Contained reports whether L(a) ⊆ L(b).
func Contained(a, b *Node) bool {
	al := alphabet.New()
	ok, _ := automata.ContainedIn(a.ToNFA(al), b.ToNFA(al))
	return ok
}
