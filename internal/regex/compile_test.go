package regex

import (
	"math/rand"
	"strings"
	"testing"

	"regexrw/internal/alphabet"
	"regexrw/internal/automata"
)

func TestCompileBasics(t *testing.T) {
	cases := []struct {
		expr   string
		accept [][]string
		reject [][]string
	}{
		{"a", [][]string{{"a"}}, [][]string{{}, {"b"}, {"a", "a"}}},
		{"ε", [][]string{{}}, [][]string{{"a"}}},
		{"∅", nil, [][]string{{}, {"a"}}},
		{"a·b", [][]string{{"a", "b"}}, [][]string{{"a"}, {"b"}, {"b", "a"}}},
		{"a+b", [][]string{{"a"}, {"b"}}, [][]string{{}, {"a", "b"}}},
		{"a*", [][]string{{}, {"a"}, {"a", "a", "a"}}, [][]string{{"b"}}},
		{"a?", [][]string{{}, {"a"}}, [][]string{{"a", "a"}}},
		{
			"a·(b·a+c)*",
			[][]string{{"a"}, {"a", "b", "a"}, {"a", "c"}, {"a", "c", "c", "b", "a"}},
			[][]string{{}, {"a", "b"}, {"c"}, {"a", "a"}},
		},
	}
	for _, c := range cases {
		n := mustParse(t, c.expr)
		al := alphabet.New()
		nfa := n.ToNFA(al)
		for _, w := range c.accept {
			if !nfa.AcceptsNames(w...) {
				t.Errorf("%q should accept %v", c.expr, w)
			}
		}
		for _, w := range c.reject {
			if nfa.AcceptsNames(w...) {
				t.Errorf("%q should reject %v", c.expr, w)
			}
		}
	}
}

func TestCompileSingleFinalStateInvariant(t *testing.T) {
	// The expansion construction in internal/core splices view automata
	// into edges and needs a unique accepting state with no outgoing
	// transitions. Verify the Thompson invariant.
	for _, expr := range []string{"a", "a*", "a+b", "a·b·c", "(a+b)*·c?", "∅", "ε"} {
		n := mustParse(t, expr)
		nfa := n.ToNFA(alphabet.New())
		finals := nfa.AcceptingStates()
		if len(finals) != 1 {
			t.Fatalf("%q: %d accepting states, want 1", expr, len(finals))
		}
		f := finals[0]
		if len(nfa.OutSymbols(f)) != 0 || len(nfa.EpsSuccessors(f)) != 0 {
			t.Fatalf("%q: accepting state has outgoing transitions", expr)
		}
	}
}

func TestToDFAAndMinimal(t *testing.T) {
	n := mustParse(t, "(a+b)*·a")
	al := alphabet.New()
	d := n.ToDFA(al)
	m := n.ToMinimalDFA(al.Clone())
	if !d.AcceptsNames("a") || !d.AcceptsNames("b", "a") || d.AcceptsNames("b") {
		t.Fatal("ToDFA wrong language")
	}
	if m.NumStates() != 2 {
		t.Fatalf("minimal DFA for (a+b)*a has %d states, want 2", m.NumStates())
	}
}

func TestMatches(t *testing.T) {
	n := mustParse(t, "rome+jerusalem")
	if !n.Matches("rome") || !n.Matches("jerusalem") || n.Matches("paris") {
		t.Fatal("Matches wrong")
	}
}

// randomNode builds a random AST for property tests.
func randomNode(r *rand.Rand, depth int) *Node {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Epsilon()
		case 1:
			return Sym("a")
		case 2:
			return Sym("b")
		default:
			return Sym("c")
		}
	}
	switch r.Intn(6) {
	case 0:
		return Union(randomNode(r, depth-1), randomNode(r, depth-1))
	case 1:
		return Concat(randomNode(r, depth-1), randomNode(r, depth-1))
	case 2:
		return Star(randomNode(r, depth-1))
	case 3:
		return Opt(randomNode(r, depth-1))
	case 4:
		return Empty()
	default:
		return randomNode(r, depth-1)
	}
}

// Property: String() output re-parses to a language-equivalent tree.
func TestPropertyStringParseEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := randomNode(r, 4)
		parsed, err := Parse(n.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", n.String(), err)
		}
		if !Equivalent(n, parsed) {
			t.Fatalf("re-parse changed language: %q", n.String())
		}
	}
}

// Property: Simplify preserves the language.
func TestPropertySimplifyPreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 80; trial++ {
		n := randomNode(r, 4)
		s := Simplify(n)
		if !Equivalent(n, s) {
			t.Fatalf("Simplify changed language: %q -> %q", n, s)
		}
		if s.Size() > n.Size() {
			t.Fatalf("Simplify grew expression: %q (%d) -> %q (%d)", n, n.Size(), s, s.Size())
		}
	}
}

// Property: FromNFA inverts ToNFA up to language equivalence.
func TestPropertyFromNFARoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := randomNode(r, 3)
		al := alphabet.New()
		nfa := n.ToNFA(al)
		back := FromNFA(nfa)
		if !Equivalent(n, back) {
			t.Fatalf("round trip changed language: %q -> %q", n, back)
		}
	}
}

func TestFromNFAKnownCases(t *testing.T) {
	cases := []string{"a", "a*", "a+b", "a·b", "(a·b)*", "a·(b·a+c)*", "∅", "ε", "a?·b"}
	for _, expr := range cases {
		n := mustParse(t, expr)
		back := FromNFA(n.ToNFA(alphabet.New()))
		if !Equivalent(n, back) {
			t.Errorf("FromNFA(%q) = %q: languages differ", expr, back)
		}
	}
}

func TestFromDFA(t *testing.T) {
	n := mustParse(t, "(a+b)*·a·b")
	d := n.ToDFA(alphabet.New())
	back := FromDFA(d)
	if !Equivalent(n, back) {
		t.Fatalf("FromDFA changed language: %q", back)
	}
}

func TestFromNFAEmptyAutomaton(t *testing.T) {
	al := alphabet.FromNames("a")
	if got := FromNFA(automata.EmptyLanguage(al)); got.Op != OpEmpty {
		t.Fatalf("FromNFA(empty) = %q, want ∅", got)
	}
	if got := FromNFA(automata.EpsilonLanguage(al)); !Equivalent(got, Epsilon()) {
		t.Fatalf("FromNFA(ε-language) = %q, want ε", got)
	}
}

func TestContained(t *testing.T) {
	if !Contained(mustParse(t, "a·b"), mustParse(t, "a·b*")) {
		t.Fatal("a·b ⊆ a·b* should hold")
	}
	if Contained(mustParse(t, "a*"), mustParse(t, "a·a*")) {
		t.Fatal("a* ⊆ a+ should fail (ε)")
	}
}

func TestSimplifyKnownIdentities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"∅+a", "a"},
		{"a+∅", "a"},
		{"∅·a", "∅"},
		{"ε·a", "a"},
		{"a·ε", "a"},
		{"∅*", "ε"},
		{"ε*", "ε"},
		{"(a*)*", "a*"},
		{"(a?)*", "a*"},
		{"a??", "a?"},
		{"(a*)?", "a*"},
		{"a+a", "a"},
		{"ε+a", "a?"},
		{"ε+a*", "a*"},
		{"(ε+a)*", "a*"},
		{"a*·a*", "a*"},
		{"a+a*", "a*"},
	}
	for _, c := range cases {
		got := Simplify(mustParse(t, c.in))
		if got.String() != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSimplifyLeavesIrreducible(t *testing.T) {
	for _, in := range []string{"a", "a·b", "a+b", "a*", "a·(b·a+c)*"} {
		got := Simplify(mustParse(t, in))
		if got.String() != in {
			t.Errorf("Simplify(%q) = %q, want unchanged", in, got)
		}
	}
}

func TestStringUsesMiddleDot(t *testing.T) {
	n := mustParse(t, "a b c")
	if !strings.Contains(n.String(), "·") {
		t.Fatalf("String = %q, want · separators", n)
	}
}
