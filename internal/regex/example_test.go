package regex_test

import (
	"fmt"

	"regexrw/internal/alphabet"
	"regexrw/internal/regex"
)

func ExampleParse() {
	n := regex.MustParse("a·(b·a+c)*")
	fmt.Println(n)
	fmt.Println("nullable:", n.Nullable())
	fmt.Println("symbols:", n.SymbolNames())
	// Output:
	// a·(b·a+c)*
	// nullable: false
	// symbols: [a b c]
}

func ExampleSimplify() {
	n := regex.MustParse("∅+ε·a·(a*)*+a")
	fmt.Println(regex.Simplify(n))
	// Output:
	// a·a*+a
}

func ExampleFromNFA() {
	n := regex.MustParse("(a·b)*")
	back := regex.FromNFA(n.ToNFA(alphabet.New()))
	fmt.Println("equivalent:", regex.Equivalent(n, back))
	// Output:
	// equivalent: true
}

func ExampleDerivative() {
	n := regex.MustParse("a·(b·a+c)*")
	fmt.Println(regex.Derivative(n, "a"))
	fmt.Println("matches a·c:", regex.MatchDerivatives(n, "a", "c"))
	// Output:
	// (b·a+c)*
	// matches a·c: true
}
