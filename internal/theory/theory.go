// Package theory implements the decidable, complete first-order theory T
// over a finite domain D that Section 4 of the paper assumes: queries
// over semi-structured data are regular languages over unary formulae of
// T, and query evaluation needs the entailment judgement T ⊨ φ(a).
//
// The theory is realized as the complete theory of a single finite
// interpretation: a domain of constants plus an extension for every
// unary predicate. Completeness is automatic (every closed formula is
// true or false in the one model), decidability is evaluation, and —
// matching the paper's cost model from [BDFS97] — entailment checks are
// constant-time table lookups.
package theory

import (
	"fmt"
	"sort"
	"strings"

	"regexrw/internal/alphabet"
)

// Interpretation is a finite structure: a domain D of named constants
// and unary predicates with explicit extensions. It induces the
// complete theory used for formula entailment. The zero value is not
// usable; create with New.
type Interpretation struct {
	domain *alphabet.Alphabet
	preds  map[string]map[alphabet.Symbol]bool
}

// New returns an interpretation with an empty domain and no predicates.
func New() *Interpretation {
	return &Interpretation{domain: alphabet.New(), preds: map[string]map[alphabet.Symbol]bool{}}
}

// AddConstant adds a constant to D (idempotent) and returns its symbol.
func (t *Interpretation) AddConstant(name string) alphabet.Symbol {
	return t.domain.Intern(name)
}

// AddConstants adds several constants.
func (t *Interpretation) AddConstants(names ...string) {
	for _, n := range names {
		t.domain.Intern(n)
	}
}

// Declare asserts that predicate pred holds of the given constants
// (adding them to D if needed). A predicate may be declared repeatedly;
// extensions accumulate.
func (t *Interpretation) Declare(pred string, constants ...string) {
	ext := t.preds[pred]
	if ext == nil {
		ext = map[alphabet.Symbol]bool{}
		t.preds[pred] = ext
	}
	for _, c := range constants {
		ext[t.domain.Intern(c)] = true
	}
}

// Domain returns the domain alphabet D.
func (t *Interpretation) Domain() *alphabet.Alphabet { return t.domain }

// Predicates returns the declared predicate names, sorted.
func (t *Interpretation) Predicates() []string {
	out := make([]string, 0, len(t.preds))
	for p := range t.preds {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Holds reports whether predicate pred is true of constant c.
// Undeclared predicates are everywhere-false.
func (t *Interpretation) Holds(pred string, c alphabet.Symbol) bool {
	return t.preds[pred][c]
}

// Entails is the judgement T ⊨ φ(a). Because T is the complete theory
// of this interpretation, entailment is evaluation.
func (t *Interpretation) Entails(f Formula, a alphabet.Symbol) bool {
	return f.eval(t, a)
}

// EntailsName is Entails with the constant given by name; unknown names
// are rejected.
func (t *Interpretation) EntailsName(f Formula, name string) (bool, error) {
	c := t.domain.Lookup(name)
	if c == alphabet.None {
		return false, fmt.Errorf("theory: unknown constant %q", name)
	}
	return t.Entails(f, c), nil
}

// Satisfiers returns the constants of D satisfying f, in domain order.
func (t *Interpretation) Satisfiers(f Formula) []alphabet.Symbol {
	var out []alphabet.Symbol
	for _, c := range t.domain.Symbols() {
		if f.eval(t, c) {
			out = append(out, c)
		}
	}
	return out
}

// Formula is a unary formula of T (one free variable z). Formulae are
// immutable.
type Formula interface {
	eval(t *Interpretation, a alphabet.Symbol) bool
	// String renders the formula in the package's concrete syntax; the
	// output re-parses to an equivalent formula.
	String() string
}

type (
	trueF  struct{}
	falseF struct{}
	predF  struct{ name string }
	eqF    struct{ constant string }
	notF   struct{ sub Formula }
	andF   struct{ subs []Formula }
	orF    struct{ subs []Formula }
)

// True is the formula satisfied by every constant.
func True() Formula { return trueF{} }

// False is the unsatisfiable formula.
func False() Formula { return falseF{} }

// Pred is the atomic formula P(z) for predicate name P.
func Pred(name string) Formula { return predF{name} }

// Eq is the elementary formula λz. z = constant (the paper abbreviates
// it by the constant itself).
func Eq(constant string) Formula { return eqF{constant} }

// Not negates a formula.
func Not(sub Formula) Formula { return notF{sub} }

// And conjoins formulae (True for none).
func And(subs ...Formula) Formula {
	if len(subs) == 0 {
		return True()
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return andF{subs}
}

// Or disjoins formulae (False for none).
func Or(subs ...Formula) Formula {
	if len(subs) == 0 {
		return False()
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return orF{subs}
}

func (trueF) eval(*Interpretation, alphabet.Symbol) bool  { return true }
func (falseF) eval(*Interpretation, alphabet.Symbol) bool { return false }

func (f predF) eval(t *Interpretation, a alphabet.Symbol) bool { return t.Holds(f.name, a) }

func (f eqF) eval(t *Interpretation, a alphabet.Symbol) bool {
	return t.domain.Lookup(f.constant) == a
}

func (f notF) eval(t *Interpretation, a alphabet.Symbol) bool { return !f.sub.eval(t, a) }

func (f andF) eval(t *Interpretation, a alphabet.Symbol) bool {
	for _, s := range f.subs {
		if !s.eval(t, a) {
			return false
		}
	}
	return true
}

func (f orF) eval(t *Interpretation, a alphabet.Symbol) bool {
	for _, s := range f.subs {
		if s.eval(t, a) {
			return true
		}
	}
	return false
}

func (trueF) String() string   { return "true" }
func (falseF) String() string  { return "false" }
func (f predF) String() string { return f.name }
func (f eqF) String() string   { return "=" + f.constant }
func (f notF) String() string  { return "!" + parenthesize(f.sub) }
func (f andF) String() string  { return joinFormulas(f.subs, " & ", 1) }
func (f orF) String() string   { return joinFormulas(f.subs, " | ", 0) }

// prec orders connectives for printing: or < and < atoms/negation.
func prec(f Formula) int {
	switch f.(type) {
	case orF:
		return 0
	case andF:
		return 1
	default:
		return 2
	}
}

func parenthesize(f Formula) string {
	if prec(f) < 2 {
		return "(" + f.String() + ")"
	}
	return f.String()
}

func joinFormulas(subs []Formula, sep string, myPrec int) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		if prec(s) < myPrec {
			parts[i] = "(" + s.String() + ")"
		} else {
			parts[i] = s.String()
		}
	}
	return strings.Join(parts, sep)
}
