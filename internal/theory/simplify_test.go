package theory

import (
	"math/rand"
	"testing"
)

func TestSimplifyIdentities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"true & a", "a"},
		{"a & true", "a"},
		{"false & a", "false"},
		{"false | a", "a"},
		{"true | a", "true"},
		{"!!a", "a"},
		{"!true", "false"},
		{"!false", "true"},
		{"a & a", "a"},
		{"a | a", "a"},
		{"a & !a", "false"},
		{"a | !a", "true"},
		{"a & (b & c)", "a & b & c"},
		{"a | (b | c)", "a | b | c"},
		{"a & (true | b)", "a"},
		{"=x | false", "=x"},
	}
	for _, c := range cases {
		got := Simplify(MustParseFormula(c.in))
		if got.String() != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSimplifyLeavesIrreducible(t *testing.T) {
	for _, in := range []string{"a", "=x", "a & b", "a | b & c", "!(a | b)"} {
		got := Simplify(MustParseFormula(in))
		if got.String() != in {
			t.Errorf("Simplify(%q) = %q, want unchanged", in, got)
		}
	}
}

// Property: simplification preserves the truth table over a random
// interpretation.
func TestPropertySimplifyPreservesTruth(t *testing.T) {
	tt := New()
	tt.AddConstants("c1", "c2", "c3", "c4")
	tt.Declare("a", "c1", "c2")
	tt.Declare("b", "c2", "c3")

	r := rand.New(rand.NewSource(17))
	var randomFormula func(depth int) Formula
	randomFormula = func(depth int) Formula {
		if depth == 0 {
			switch r.Intn(5) {
			case 0:
				return True()
			case 1:
				return False()
			case 2:
				return Pred("a")
			case 3:
				return Pred("b")
			default:
				return Eq("c1")
			}
		}
		switch r.Intn(3) {
		case 0:
			return Not(randomFormula(depth - 1))
		case 1:
			return And(randomFormula(depth-1), randomFormula(depth-1))
		default:
			return Or(randomFormula(depth-1), randomFormula(depth-1))
		}
	}
	for trial := 0; trial < 100; trial++ {
		f := randomFormula(3)
		s := Simplify(f)
		for _, c := range tt.Domain().Symbols() {
			if tt.Entails(f, c) != tt.Entails(s, c) {
				t.Fatalf("Simplify changed truth: %s vs %s at %s",
					f, s, tt.Domain().Name(c))
			}
		}
	}
}
