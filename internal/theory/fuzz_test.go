package theory

import "testing"

// FuzzParseFormula checks that the formula parser never panics and
// that accepted formulas print to a re-parseable fixpoint.
func FuzzParseFormula(f *testing.F) {
	for _, seed := range []string{
		"city", "=rome", "a & b | c", "!(a | b)", "true", "false",
		"¬x ∧ y ∨ z", "", "=", "&", "((a)", "a ⊥ b", "=rome | =jerusalem",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ParseFormula(input)
		if err != nil {
			return
		}
		printed := formula.String()
		again, err := ParseFormula(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed, input, err)
		}
		if again.String() != printed {
			t.Fatalf("String not a fixpoint: %q -> %q", printed, again.String())
		}
	})
}
