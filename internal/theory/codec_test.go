package theory

import (
	"strings"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	orig := travel()
	var b strings.Builder
	if _, err := orig.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Domain().Len() != orig.Domain().Len() {
		t.Fatalf("domain %d vs %d", back.Domain().Len(), orig.Domain().Len())
	}
	for _, p := range orig.Predicates() {
		for _, c := range orig.Domain().Symbols() {
			name := orig.Domain().Name(c)
			cc := back.Domain().Lookup(name)
			if back.Holds(p, cc) != orig.Holds(p, c) {
				t.Fatalf("predicate %s differs on %s", p, name)
			}
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "# a comment\n\nconst a b\npred p a\n"
	tt, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tt.Domain().Len() != 2 || len(tt.Predicates()) != 1 {
		t.Fatalf("domain=%d preds=%v", tt.Domain().Len(), tt.Predicates())
	}
}

func TestReadPredAddsConstants(t *testing.T) {
	tt, err := Read(strings.NewReader("pred p x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tt.Domain().Len() != 2 {
		t.Fatal("pred line should add constants")
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"const\n", "pred\n", "frob a b\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}
