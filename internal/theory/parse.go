package theory

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// ParseFormula parses the package's concrete formula syntax:
//
//	or    := and { '|' and }
//	and   := unary { '&' unary }
//	unary := '!' unary | atom
//	atom  := 'true' | 'false' | '=' ident | ident | '(' or ')'
//
// An identifier is a predicate name; '=c' is the elementary formula
// λz. z = c. Examples: "restaurant", "=rome | =jerusalem",
// "city & !(=rome)".
func ParseFormula(input string) (Formula, error) {
	p := &fparser{input: input}
	p.next()
	f, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.tok != ftokEOF {
		return nil, fmt.Errorf("theory: unexpected %q at offset %d", p.lit, p.pos)
	}
	return f, nil
}

// MustParseFormula is ParseFormula that panics on error.
func MustParseFormula(input string) Formula {
	f, err := ParseFormula(input)
	if err != nil {
		panic(err)
	}
	return f
}

type ftoken int

const (
	ftokEOF ftoken = iota
	ftokIdent
	ftokEq
	ftokNot
	ftokAnd
	ftokOr
	ftokLParen
	ftokRParen
	ftokInvalid
)

type fparser struct {
	input string
	pos   int
	off   int
	tok   ftoken
	lit   string
}

func (p *fparser) next() {
	for p.off < len(p.input) {
		r, w := utf8.DecodeRuneInString(p.input[p.off:])
		if !unicode.IsSpace(r) {
			break
		}
		p.off += w
	}
	p.pos = p.off
	if p.off >= len(p.input) {
		p.tok, p.lit = ftokEOF, ""
		return
	}
	r, w := utf8.DecodeRuneInString(p.input[p.off:])
	switch r {
	case '!', '¬':
		p.tok, p.lit = ftokNot, string(r)
		p.off += w
		return
	case '&', '∧':
		p.tok, p.lit = ftokAnd, string(r)
		p.off += w
		return
	case '|', '∨':
		p.tok, p.lit = ftokOr, string(r)
		p.off += w
		return
	case '=':
		p.tok, p.lit = ftokEq, "="
		p.off += w
		return
	case '(':
		p.tok, p.lit = ftokLParen, "("
		p.off += w
		return
	case ')':
		p.tok, p.lit = ftokRParen, ")"
		p.off += w
		return
	}
	if isIdentRune(r) {
		start := p.off
		for p.off < len(p.input) {
			r, w := utf8.DecodeRuneInString(p.input[p.off:])
			if !isIdentRune(r) {
				break
			}
			p.off += w
		}
		p.tok, p.lit = ftokIdent, p.input[start:p.off]
		return
	}
	p.tok, p.lit = ftokInvalid, string(r)
	p.off += w
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (p *fparser) or() (Formula, error) {
	first, err := p.and()
	if err != nil {
		return nil, err
	}
	subs := []Formula{first}
	for p.tok == ftokOr {
		p.next()
		f, err := p.and()
		if err != nil {
			return nil, err
		}
		subs = append(subs, f)
	}
	return Or(subs...), nil
}

func (p *fparser) and() (Formula, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	subs := []Formula{first}
	for p.tok == ftokAnd {
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		subs = append(subs, f)
	}
	return And(subs...), nil
}

func (p *fparser) unary() (Formula, error) {
	if p.tok == ftokNot {
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	}
	return p.atom()
}

func (p *fparser) atom() (Formula, error) {
	switch p.tok {
	case ftokIdent:
		lit := p.lit
		p.next()
		switch lit {
		case "true":
			return True(), nil
		case "false":
			return False(), nil
		}
		return Pred(lit), nil
	case ftokEq:
		p.next()
		if p.tok != ftokIdent {
			return nil, fmt.Errorf("theory: '=' must be followed by a constant at offset %d", p.pos)
		}
		c := p.lit
		p.next()
		return Eq(c), nil
	case ftokLParen:
		p.next()
		f, err := p.or()
		if err != nil {
			return nil, err
		}
		if p.tok != ftokRParen {
			return nil, fmt.Errorf("theory: missing ')' at offset %d", p.pos)
		}
		p.next()
		return f, nil
	case ftokEOF:
		return nil, fmt.Errorf("theory: unexpected end of formula")
	default:
		return nil, fmt.Errorf("theory: unexpected %q at offset %d", p.lit, p.pos)
	}
}
