package theory

// Simplify returns an equivalent formula with boolean identities
// applied bottom-up: constant folding (true/false absorption and
// identity), double-negation elimination, and flattening of nested
// conjunctions/disjunctions with duplicate removal. Equivalence here is
// logical (valid in every interpretation), not merely in one model.
func Simplify(f Formula) Formula {
	switch g := f.(type) {
	case trueF, falseF, predF, eqF:
		return f
	case notF:
		sub := Simplify(g.sub)
		switch s := sub.(type) {
		case trueF:
			return False()
		case falseF:
			return True()
		case notF:
			return s.sub
		}
		return Not(sub)
	case andF:
		return simplifyAnd(g.subs)
	case orF:
		return simplifyOr(g.subs)
	}
	return f
}

func simplifyAnd(subs []Formula) Formula {
	var flat []Formula
	seen := map[string]bool{}
	for _, s := range subs {
		s = Simplify(s)
		switch inner := s.(type) {
		case trueF:
			continue
		case falseF:
			return False()
		case andF:
			for _, is := range inner.subs {
				if key := is.String(); !seen[key] {
					seen[key] = true
					flat = append(flat, is)
				}
			}
			continue
		}
		if key := s.String(); !seen[key] {
			seen[key] = true
			flat = append(flat, s)
		}
	}
	// φ ∧ ¬φ = false.
	for _, s := range flat {
		if n, ok := s.(notF); ok && seen[n.sub.String()] {
			return False()
		}
	}
	return And(flat...)
}

func simplifyOr(subs []Formula) Formula {
	var flat []Formula
	seen := map[string]bool{}
	for _, s := range subs {
		s = Simplify(s)
		switch inner := s.(type) {
		case falseF:
			continue
		case trueF:
			return True()
		case orF:
			for _, is := range inner.subs {
				if key := is.String(); !seen[key] {
					seen[key] = true
					flat = append(flat, is)
				}
			}
			continue
		}
		if key := s.String(); !seen[key] {
			seen[key] = true
			flat = append(flat, s)
		}
	}
	// φ ∨ ¬φ = true.
	for _, s := range flat {
		if n, ok := s.(notF); ok && seen[n.sub.String()] {
			return True()
		}
	}
	return Or(flat...)
}
