package theory_test

import (
	"fmt"

	"regexrw/internal/theory"
)

func ExampleInterpretation_Entails() {
	t := theory.New()
	t.AddConstants("rome", "paris")
	t.Declare("city", "rome", "paris")
	t.Declare("italian", "rome")

	f := theory.MustParseFormula("city & !italian")
	for _, c := range t.Domain().Symbols() {
		fmt.Printf("%s: %v\n", t.Domain().Name(c), t.Entails(f, c))
	}
	// Output:
	// rome: false
	// paris: true
}

func ExampleSimplify() {
	f := theory.MustParseFormula("(city & true) | false | !!venue")
	fmt.Println(theory.Simplify(f))
	// Output:
	// city | venue
}
