package theory

import (
	"testing"
	"testing/quick"

	"regexrw/internal/alphabet"
)

// travel returns the interpretation used by the travel examples:
// cities rome/jerusalem/paris, a restaurant constant, and predicates.
func travel() *Interpretation {
	t := New()
	t.AddConstants("rome", "jerusalem", "paris", "trattoria", "falafel")
	t.Declare("city", "rome", "jerusalem", "paris")
	t.Declare("restaurant", "trattoria", "falafel")
	t.Declare("european", "rome", "paris")
	return t
}

func TestHolds(t *testing.T) {
	tt := travel()
	rome := tt.Domain().Lookup("rome")
	if !tt.Holds("city", rome) {
		t.Fatal("city(rome) should hold")
	}
	if tt.Holds("restaurant", rome) {
		t.Fatal("restaurant(rome) should not hold")
	}
	if tt.Holds("nonexistent", rome) {
		t.Fatal("undeclared predicate should be false")
	}
}

func TestEntailsConnectives(t *testing.T) {
	tt := travel()
	rome := tt.Domain().Lookup("rome")
	jerusalem := tt.Domain().Lookup("jerusalem")
	cases := []struct {
		f    Formula
		c    alphabet.Symbol
		want bool
	}{
		{True(), rome, true},
		{False(), rome, false},
		{Pred("city"), rome, true},
		{Eq("rome"), rome, true},
		{Eq("rome"), jerusalem, false},
		{Not(Eq("rome")), jerusalem, true},
		{And(Pred("city"), Pred("european")), rome, true},
		{And(Pred("city"), Pred("european")), jerusalem, false},
		{Or(Eq("rome"), Eq("jerusalem")), jerusalem, true},
		{Or(), rome, false},
		{And(), rome, true},
	}
	for i, c := range cases {
		if got := tt.Entails(c.f, c.c); got != c.want {
			t.Errorf("case %d: Entails(%s) = %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestEntailsName(t *testing.T) {
	tt := travel()
	ok, err := tt.EntailsName(Pred("city"), "rome")
	if err != nil || !ok {
		t.Fatalf("EntailsName = %v, %v", ok, err)
	}
	if _, err := tt.EntailsName(True(), "atlantis"); err == nil {
		t.Fatal("unknown constant accepted")
	}
}

func TestSatisfiers(t *testing.T) {
	tt := travel()
	got := tt.Satisfiers(Pred("city"))
	if len(got) != 3 {
		t.Fatalf("Satisfiers(city) = %d constants, want 3", len(got))
	}
	if len(tt.Satisfiers(False())) != 0 {
		t.Fatal("Satisfiers(false) nonempty")
	}
	if len(tt.Satisfiers(True())) != tt.Domain().Len() {
		t.Fatal("Satisfiers(true) should be the whole domain")
	}
}

func TestCompleteness(t *testing.T) {
	// For every formula and constant, exactly one of φ(a), ¬φ(a) is
	// entailed — the theory is complete.
	tt := travel()
	formulas := []Formula{
		True(), False(), Pred("city"), Eq("rome"),
		And(Pred("city"), Not(Pred("european"))),
		Or(Pred("restaurant"), Eq("paris")),
	}
	for _, f := range formulas {
		for _, c := range tt.Domain().Symbols() {
			if tt.Entails(f, c) == tt.Entails(Not(f), c) {
				t.Fatalf("incomplete on %s(%s)", f, tt.Domain().Name(c))
			}
		}
	}
}

func TestPredicatesSorted(t *testing.T) {
	tt := travel()
	got := tt.Predicates()
	want := []string{"city", "european", "restaurant"}
	if len(got) != len(want) {
		t.Fatalf("Predicates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Predicates = %v, want %v", got, want)
		}
	}
}

func TestParseFormula(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"city", "city"},
		{"=rome", "=rome"},
		{"true", "true"},
		{"false", "false"},
		{"!city", "!city"},
		{"¬city", "!city"},
		{"city & european", "city & european"},
		{"city ∧ european", "city & european"},
		{"=rome | =jerusalem", "=rome | =jerusalem"},
		{"=rome ∨ =jerusalem", "=rome | =jerusalem"},
		{"city & (a | b)", "city & (a | b)"},
		{"!(a | b)", "!(a | b)"},
		{"a | b & c", "a | b & c"},
		{"(a | b) & c", "(a | b) & c"},
	}
	for _, c := range cases {
		f, err := ParseFormula(c.in)
		if err != nil {
			t.Errorf("ParseFormula(%q): %v", c.in, err)
			continue
		}
		if got := f.String(); got != c.want {
			t.Errorf("ParseFormula(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseFormulaErrors(t *testing.T) {
	for _, in := range []string{"", "&", "a &", "(a", "a)", "=", "= |", "a ⊥ b", "!"} {
		if f, err := ParseFormula(in); err == nil {
			t.Errorf("ParseFormula(%q) = %v, want error", in, f)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	tt := travel()
	// a | b & c parses as a | (b & c).
	f := MustParseFormula("restaurant | city & european")
	for _, c := range tt.Domain().Symbols() {
		want := tt.Holds("restaurant", c) || (tt.Holds("city", c) && tt.Holds("european", c))
		if tt.Entails(f, c) != want {
			t.Fatalf("precedence wrong at %s", tt.Domain().Name(c))
		}
	}
}

func TestMustParseFormulaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseFormula("(((")
}

// Property: String re-parses to a formula with the same truth table.
func TestQuickStringRoundTrip(t *testing.T) {
	tt := travel()
	formulas := []Formula{
		Pred("city"), Eq("rome"), Not(Pred("european")),
		And(Pred("city"), Or(Eq("rome"), Eq("paris"))),
		Or(And(Pred("city"), Not(Eq("rome"))), Pred("restaurant")),
		Not(Or(Pred("city"), Pred("restaurant"))),
		And(Or(Pred("a"), Pred("b")), Or(Pred("c"), Pred("d"))),
	}
	f := func(idx uint8) bool {
		orig := formulas[int(idx)%len(formulas)]
		parsed, err := ParseFormula(orig.String())
		if err != nil {
			return false
		}
		for _, c := range tt.Domain().Symbols() {
			if tt.Entails(orig, c) != tt.Entails(parsed, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeclareAccumulates(t *testing.T) {
	tt := New()
	tt.Declare("p", "x")
	tt.Declare("p", "y")
	if len(tt.Satisfiers(Pred("p"))) != 2 {
		t.Fatal("Declare should accumulate")
	}
}
