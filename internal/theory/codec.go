package theory

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Read parses the text format of WriteTo:
//
//	# comment
//	const rome jerusalem paris
//	pred city rome jerusalem paris
//
// "const" lines declare domain constants; "pred" lines declare a
// predicate and the constants it holds of (which are added to the
// domain if new). Blank lines and '#' comments are ignored.
func Read(r io.Reader) (*Interpretation, error) {
	t := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "const":
			if len(fields) < 2 {
				return nil, fmt.Errorf("theory: line %d: const needs at least one name", lineNo)
			}
			t.AddConstants(fields[1:]...)
		case "pred":
			if len(fields) < 2 {
				return nil, fmt.Errorf("theory: line %d: pred needs a name", lineNo)
			}
			t.Declare(fields[1], fields[2:]...)
		default:
			return nil, fmt.Errorf("theory: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTo serializes the interpretation in the format read by Read.
func (t *Interpretation) WriteTo(w io.Writer) (int64, error) {
	var total int64
	if t.domain.Len() > 0 {
		n, err := fmt.Fprintf(w, "const %s\n", strings.Join(t.domain.Names(), " "))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, p := range t.Predicates() {
		var members []string
		for _, c := range t.domain.Symbols() {
			if t.Holds(p, c) {
				members = append(members, t.domain.Name(c))
			}
		}
		sort.Strings(members)
		n, err := fmt.Fprintf(w, "pred %s %s\n", p, strings.Join(members, " "))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
