package cluster

import (
	"fmt"
	"math"
	"testing"
)

// TestRingDeterministicAcrossPeerOrder pins that the ring is a pure
// function of the peer *set*: permuted and duplicated peer lists build
// byte-identical placement.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	a, err := NewRing([]string{"replica-1:8080", "replica-2:8080", "replica-3:8080"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"replica-3:8080", "replica-1:8080", "replica-2:8080", "replica-1:8080"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q under permuted peers", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingGoldenPlacement pins placement byte-stability across process
// restarts, Go versions and GOARCH word sizes: the hashes are read
// big-endian from SHA-256 output, so these assignments must never
// change. If this test fails, placement changed and every deployed
// cluster would re-partition — that is a breaking change, not a
// refactor.
func TestRingGoldenPlacement(t *testing.T) {
	r, err := NewRing([]string{"alpha:1", "beta:2", "gamma:3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Generated once and frozen; see the comment above for what a
	// failure here means.
	golden := map[string]string{
		"0000000000000000000000000000000000000000000000000000000000000000": "beta:2",
		"4a9f1c3bb1e5f0da1c9d2b5e9f61bd1ce3d6a8277e5e1f3b90ccad8f71c55c11": "beta:2",
		"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff": "alpha:1",
		"plan-key-0": "beta:2",
		"plan-key-1": "alpha:1",
		"plan-key-2": "beta:2",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestRingRebalance is the rebalancing property: growing the cluster
// from N to N+1 peers must remap at most K/N + slack of K keys — the
// consistent-hashing contract that a new replica steals only its own
// share, instead of reshuffling the whole key space the way modulo
// placement would.
func TestRingRebalance(t *testing.T) {
	const K = 4000
	keys := make([]string, K)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i) // shaped like hex plan keys
	}
	for _, n := range []int{2, 3, 4, 7} {
		peers := make([]string, n)
		for i := range peers {
			peers[i] = fmt.Sprintf("replica-%d:8080", i)
		}
		before, err := NewRing(peers, 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(append(peers, fmt.Sprintf("replica-%d:8080", n)), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != after.Owner(k) {
				moved++
			}
		}
		// Expected movement is K/(N+1) — strictly below K/N — and the
		// slack absorbs vnode placement variance.
		slack := K / 10
		if limit := K/n + slack; moved > limit {
			t.Errorf("N=%d→%d: %d of %d keys remapped, want ≤ %d", n, n+1, moved, K, limit)
		}
		if moved == 0 {
			t.Errorf("N=%d→%d: no keys remapped; the new replica owns nothing", n, n+1)
		}
		// Every key that moved must have moved TO the new peer: an
		// old→old move would be gratuitous churn.
		newPeer := fmt.Sprintf("replica-%d:8080", n)
		for _, k := range keys {
			if b, a := before.Owner(k), after.Owner(k); b != a && a != newPeer {
				t.Fatalf("key %s moved %s→%s, not to the new peer %s", k, b, a, newPeer)
			}
		}
	}
}

// TestRingBalance checks the vnode count keeps shares near 1/N.
func TestRingBalance(t *testing.T) {
	peers := []string{"a:1", "b:1", "c:1", "d:1"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range peers {
		s := r.Share(p)
		total += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("share(%s) = %.3f, want within [0.10, 0.45] of 1/4", p, s)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %.12f, want 1", total)
	}
	// Share agrees with empirical key placement to within a few points.
	const K = 20000
	counts := map[string]int{}
	for i := 0; i < K; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, p := range peers {
		emp := float64(counts[p]) / K
		if math.Abs(emp-r.Share(p)) > 0.02 {
			t.Errorf("peer %s: empirical %.3f vs arc share %.3f", p, emp, r.Share(p))
		}
	}
}

func TestRingStats(t *testing.T) {
	r, err := NewRing([]string{"b:1", "a:1"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if len(s.Peers) != 2 || s.Peers[0] != "a:1" || s.Peers[1] != "b:1" {
		t.Fatalf("peers = %v", s.Peers)
	}
	if s.VirtualNodes != 16 || s.Points != 32 {
		t.Fatalf("vnodes/points = %d/%d", s.VirtualNodes, s.Points)
	}
	if len(s.Shares) != 2 {
		t.Fatalf("shares = %v", s.Shares)
	}
	if !r.Owns(r.Owner("k"), "k") {
		t.Fatal("Owns(Owner(k), k) must hold")
	}
	if r.Owns("not-a-peer:9", "k") {
		t.Fatal("a non-member must own nothing")
	}
	if others := r.Others("a:1"); len(others) != 1 || others[0] != "b:1" {
		t.Fatalf("Others = %v", others)
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list must fail")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Fatal("empty peer address must fail")
	}
}
