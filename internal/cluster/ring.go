// Package cluster partitions the engine's plan key space across a
// static set of replicas with a consistent-hash ring, and carries the
// forwarding machinery (per-peer circuit breakers, bounded retries with
// jittered backoff) that lets one replica hand a request to the key's
// owner over HTTP.
//
// The canonical SHA-256 plan keys (internal/engine.Key) are already a
// uniform hash of the rewriting problem, which makes them a natural
// partitionable key space: N replicas each own ~1/N of it, so each
// replica compiles and caches only its slice of the plan universe —
// the doubly exponential construction cost and the plan-cache
// footprint both divide by N. The ring is deterministic: every replica
// (and every cluster-aware client) derives byte-identical placement
// from the same peer list, with no membership protocol and no shared
// state. Placement is stable across process restarts and across
// architectures — every hash is read big-endian from SHA-256 output,
// never from Go's runtime map or string hash.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the vnode count per peer when NewRing is
// given 0. 128 points per peer keeps the maximum arc share within a
// few percent of 1/N for small clusters without making ring
// construction or lookup noticeable.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a static peer list.
// Construct with NewRing; a Ring is safe for concurrent use.
type Ring struct {
	peers  []string // sorted, deduplicated
	vnodes int
	points []point // sorted by (hash, peer) — the ring itself
}

// point is one virtual node: a position on the 64-bit ring owned by a
// peer.
type point struct {
	hash uint64
	peer int32
}

// NewRing builds the ring for the given peer addresses with vnodes
// virtual nodes per peer (0 = DefaultVirtualNodes). The peer list is
// sorted and deduplicated, so every replica and client that was handed
// the same set — in any order — builds the identical ring.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	dedup := sorted[:0]
	for _, p := range sorted {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if len(dedup) == 0 || dedup[len(dedup)-1] != p {
			dedup = append(dedup, p)
		}
	}
	r := &Ring{peers: dedup, vnodes: vnodes}
	r.points = make([]point, 0, len(dedup)*vnodes)
	for pi, peer := range dedup {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(peer, v), peer: int32(pi)})
		}
	}
	// Ties (astronomically unlikely with SHA-256, but placement must be
	// a total order) break by peer index, which is itself determined by
	// the sorted peer names.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// pointHash places virtual node v of a peer: the first 8 bytes of
// SHA-256("peer#v"), big-endian. Reading a fixed-width prefix of a
// cryptographic hash keeps placement independent of word size,
// endianness and Go version.
func pointHash(peer string, v int) uint64 {
	sum := sha256.Sum256([]byte(peer + "#" + strconv.Itoa(v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a plan key on the ring. The keys are already hex
// SHA-256, but hashing the string again costs nothing measurable and
// makes placement uniform for any key shape a caller routes by.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the peer owning key: the peer of the first virtual
// node at or clockwise-after the key's ring position.
func (r *Ring) Owner(key string) string {
	return r.peers[r.ownerIndex(key)]
}

// OwnerIndex returns the index of key's owner within Peers(). Spans
// record the owner as this index, since span attributes are integers.
func (r *Ring) OwnerIndex(key string) int { return r.ownerIndex(key) }

func (r *Ring) ownerIndex(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return int(r.points[i].peer)
}

// Owns reports whether self owns key. A peer address not in the ring
// owns nothing.
func (r *Ring) Owns(self, key string) bool { return r.Owner(key) == self }

// Peers returns the ring's sorted, deduplicated peer list. Callers
// must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Others returns every peer except self, in ring order. It is the
// fallback dial list for a client whose preferred owner is down.
func (r *Ring) Others(self string) []string {
	out := make([]string, 0, len(r.peers)-1)
	for _, p := range r.peers {
		if p != self {
			out = append(out, p)
		}
	}
	return out
}

// VirtualNodes returns the per-peer vnode count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Share returns the fraction of the 64-bit key space owned by peer:
// the summed arc lengths ending at the peer's virtual nodes. Shares
// over all peers sum to 1 (up to floating-point rounding) and
// concentrate around 1/N as vnodes grows.
func (r *Ring) Share(peer string) float64 {
	pi := sort.SearchStrings(r.peers, peer)
	if pi == len(r.peers) || r.peers[pi] != peer {
		return 0
	}
	var owned uint64
	for i, pt := range r.points {
		if pt.peer != int32(pi) {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		// Arc from the previous point (exclusive) to this one
		// (inclusive); the wraparound arc is the complement difference.
		owned += pt.hash - prev // uint64 arithmetic wraps correctly
	}
	return float64(owned) / (1 << 63) / 2
}

// Stats is a snapshot of the ring's shape for readiness endpoints.
type Stats struct {
	Peers        []string `json:"peers"`
	VirtualNodes int      `json:"virtual_nodes"`
	Points       int      `json:"points"`
	// Shares maps each peer to its owned fraction of the key space.
	Shares map[string]float64 `json:"shares"`
}

// Stats returns the ring's shape: peer list, vnode count, and each
// peer's owned share of the key space.
func (r *Ring) Stats() Stats {
	s := Stats{
		Peers:        append([]string(nil), r.peers...),
		VirtualNodes: r.vnodes,
		Points:       len(r.points),
		Shares:       make(map[string]float64, len(r.peers)),
	}
	for _, p := range r.peers {
		s.Shares[p] = r.Share(p)
	}
	return s
}
