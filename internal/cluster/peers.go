package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Wire protocol headers shared by the serving router and the
// cluster-aware client.
const (
	// ForwardedHeader carries the forwarding depth of a routed request.
	// A replica only forwards requests whose depth is below
	// MaxForwardDepth; anything at or past the limit is served locally,
	// so disagreeing ring views (a peer list typo, a half-rolled config
	// change) degrade to extra local compiles instead of a forwarding
	// loop.
	ForwardedHeader = "X-Regexrw-Forwarded"
	// NoForwardHeader, when set to "1", asks the replica NOT to forward
	// a non-owned request: it answers 421 with the not_owner error
	// envelope naming the owner instead. Cluster-aware clients use it
	// to learn the true owner when their ring view is stale, without
	// paying a server-side forward hop.
	NoForwardHeader = "X-Regexrw-No-Forward"
	// DegradedHeader is set to "1" on responses computed locally by a
	// non-owner because the owner was unreachable.
	DegradedHeader = "X-Regexrw-Degraded"
	// MaxForwardDepth bounds the forwarding chain. One hop suffices in
	// a consistent cluster: the first replica forwards straight to the
	// owner.
	MaxForwardDepth = 1
)

// ErrPeerDown is reported by Forward when the peer's circuit breaker
// is open: the peer failed recently and the cooldown has not elapsed,
// so the forward was declined without touching the network.
var ErrPeerDown = errors.New("cluster: peer down (breaker open)")

// Defaults for the forwarding transport. Forwarding sits on the
// request path, so the retry budget is deliberately small: one
// re-dial, short backoff, then degrade to local compute.
const (
	DefaultForwardRetries  = 1
	DefaultForwardBackoff  = 25 * time.Millisecond
	DefaultBreakerFailures = 3
	DefaultBreakerCooldown = 2 * time.Second
)

// PeerSet is the forwarding transport: an HTTP client wrapped with
// bounded retries, jittered backoff, and one circuit breaker per peer.
// A PeerSet is safe for concurrent use.
type PeerSet struct {
	client   *http.Client
	retries  int
	backoff  time.Duration
	brkFails int
	brkCool  time.Duration

	mu       sync.Mutex
	breakers map[string]*breaker
	rng      *rand.Rand

	// onBreakerOpen, when non-nil, is called once per breaker open
	// transition — the hook the router uses to count opens.
	onBreakerOpen func(peer string)
}

// PeerOption configures a PeerSet.
type PeerOption func(*PeerSet)

// WithHTTPClient replaces the transport (default: a client with a 5s
// overall timeout; per-request contexts tighten it further).
func WithHTTPClient(c *http.Client) PeerOption { return func(p *PeerSet) { p.client = c } }

// WithRetries sets how many times a failed forward is re-dialed and
// the base backoff between attempts (attempt n sleeps base·2ⁿ plus up
// to 50% jitter).
func WithRetries(n int, backoff time.Duration) PeerOption {
	return func(p *PeerSet) { p.retries, p.backoff = n, backoff }
}

// WithBreaker tunes the per-peer circuit breaker: failures consecutive
// transport errors open it for cooldown. failures <= 0 disables the
// breakers.
func WithBreaker(failures int, cooldown time.Duration) PeerOption {
	return func(p *PeerSet) { p.brkFails, p.brkCool = failures, cooldown }
}

// WithBreakerHook installs fn, called with the peer address each time
// that peer's breaker transitions to open.
func WithBreakerHook(fn func(peer string)) PeerOption {
	return func(p *PeerSet) { p.onBreakerOpen = fn }
}

// NewPeerSet returns a forwarding transport with the given options.
func NewPeerSet(opts ...PeerOption) *PeerSet {
	p := &PeerSet{
		retries:  DefaultForwardRetries,
		backoff:  DefaultForwardBackoff,
		brkFails: DefaultBreakerFailures,
		brkCool:  DefaultBreakerCooldown,
		breakers: make(map[string]*breaker),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(p)
	}
	if p.client == nil {
		p.client = &http.Client{Timeout: 5 * time.Second}
	}
	return p
}

func (p *PeerSet) breakerFor(peer string) *breaker {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.breakers[peer]
	if !ok {
		b = &breaker{threshold: p.brkFails, cooldown: p.brkCool}
		p.breakers[peer] = b
	}
	return b
}

// Down reports whether peer's breaker is currently open.
func (p *PeerSet) Down(peer string) bool {
	open, _ := p.breakerFor(peer).snapshot()
	return open
}

// jitteredBackoff returns base·2^(attempt-1) plus up to 50% jitter, so
// a fleet retrying a recovering peer does not re-dial in lockstep.
func (p *PeerSet) jitteredBackoff(attempt int) time.Duration {
	d := p.backoff << uint(attempt-1)
	p.mu.Lock()
	j := p.rng.Int63n(int64(d)/2 + 1)
	p.mu.Unlock()
	return d + time.Duration(j)
}

// PeerURL resolves a peer address and a request path into a URL:
// "host:port" gets the http scheme, full URLs pass through.
func PeerURL(peer, path string) string {
	if strings.Contains(peer, "://") {
		return strings.TrimSuffix(peer, "/") + path
	}
	return "http://" + peer + path
}

// Forward posts body to path on peer with the given extra headers,
// under the peer's circuit breaker and the retry budget. Any HTTP
// response — whatever its status — is a successful forward (the peer
// is alive; the status is the caller's to interpret). Transport
// errors retry with jittered backoff and count against the breaker;
// an open breaker fails fast with ErrPeerDown. The caller owns the
// returned response body.
func (p *PeerSet) Forward(ctx context.Context, peer, path string, header http.Header, body []byte) (*http.Response, error) {
	b := p.breakerFor(peer)
	var lastErr error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(p.jitteredBackoff(attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if !b.allow() {
			return nil, fmt.Errorf("%w: %s", ErrPeerDown, peer)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, PeerURL(peer, path), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := p.client.Do(req)
		if err == nil {
			b.success()
			return resp, nil
		}
		lastErr = err
		if opened := b.failure(); opened && p.onBreakerOpen != nil {
			p.onBreakerOpen(peer)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// Depth parses the forwarding depth from a request's headers (0 when
// absent or malformed).
func Depth(h http.Header) int {
	v := h.Get(ForwardedHeader)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
