package cluster

import (
	"sync"
	"time"
)

// breaker is a per-peer consecutive-error circuit breaker, the same
// shape as the plan store's (internal/planstore): after threshold
// consecutive transport failures the peer is considered down and every
// forward to it fails fast for a cooldown, so one dead replica costs a
// single connect timeout per cooldown instead of one per request.
// After the cooldown the next forward goes through as a probe: success
// closes the breaker, failure re-opens it.
//
// HTTP-level errors (4xx/5xx responses) do NOT trip the breaker — a
// response means the peer is alive and routing is working; the breaker
// watches for an unreachable process (connection refused, reset,
// timeout).
type breaker struct {
	mu sync.Mutex
	// threshold <= 0 disables the breaker entirely.
	threshold int
	cooldown  time.Duration
	// now is a test seam; nil means time.Now.
	now func() time.Time

	consecutive int
	openUntil   time.Time
	opens       int64
}

func (b *breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// allow reports whether a forward may dial the peer now. While the
// breaker is open (within the cooldown) it returns false; once the
// cooldown elapses, forwards flow again as probes until the next
// failure decides.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil.IsZero() || !b.clock().Before(b.openUntil)
}

// success records a healthy forward, closing the breaker and resetting
// the consecutive-failure count.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.openUntil = time.Time{}
}

// failure records a transport failure and reports whether this one
// opened (or re-opened) the breaker, so the caller can count the
// transition on its metrics outside the lock.
func (b *breaker) failure() (opened bool) {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive < b.threshold {
		return false
	}
	wasClosed := b.openUntil.IsZero() || !b.clock().Before(b.openUntil)
	b.openUntil = b.clock().Add(b.cooldown)
	if wasClosed {
		b.opens++
	}
	return wasClosed
}

// snapshot returns (open-now, total open transitions).
func (b *breaker) snapshot() (bool, int64) {
	if b.threshold <= 0 {
		return false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && b.clock().Before(b.openUntil), b.opens
}
