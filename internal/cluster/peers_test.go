package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerOpensAndProbes(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &breaker{threshold: 3, cooldown: time.Second, now: func() time.Time { return now }}
	if !b.allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.failure()
	b.failure()
	if open, _ := b.snapshot(); open {
		t.Fatal("below threshold must stay closed")
	}
	if opened := b.failure(); !opened {
		t.Fatal("third consecutive failure must open")
	}
	if b.allow() {
		t.Fatal("open breaker must decline")
	}
	if open, opens := b.snapshot(); !open || opens != 1 {
		t.Fatalf("snapshot = %v/%d", open, opens)
	}
	// Cooldown elapses: the next operation is a probe.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed: probe must be allowed")
	}
	// A failed probe re-opens without double-counting transitions...
	if opened := b.failure(); !opened {
		t.Fatal("failed probe must re-open")
	}
	if _, opens := b.snapshot(); opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
	// ...and a successful probe closes fully.
	now = now.Add(time.Second)
	b.success()
	if !b.allow() {
		t.Fatal("closed breaker must allow")
	}
	if open, _ := b.snapshot(); open {
		t.Fatal("success must close")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := &breaker{}
	for i := 0; i < 10; i++ {
		if b.failure() {
			t.Fatal("disabled breaker must never open")
		}
	}
	if !b.allow() {
		t.Fatal("disabled breaker must always allow")
	}
}

func TestForwardRoundTrip(t *testing.T) {
	var gotDepth atomic.Int64
	var gotBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDepth.Store(int64(Depth(r.Header)))
		body, _ := io.ReadAll(r.Body)
		gotBody.Store(string(body))
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	p := NewPeerSet()
	h := http.Header{}
	h.Set(ForwardedHeader, "1")
	resp, err := p.Forward(context.Background(), ts.URL, "/v1/rewrite", h, []byte(`{"query":"a"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status %d: any HTTP response is a successful forward", resp.StatusCode)
	}
	if gotDepth.Load() != 1 {
		t.Fatalf("depth = %d, want 1", gotDepth.Load())
	}
	if gotBody.Load() != `{"query":"a"}` {
		t.Fatalf("body = %q", gotBody.Load())
	}
}

func TestForwardRetriesThenFails(t *testing.T) {
	// A listener that is closed immediately: every dial fails.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := ts.Listener.Addr().String()
	ts.Close()

	var opens atomic.Int64
	p := NewPeerSet(
		WithRetries(2, time.Millisecond),
		WithBreaker(3, time.Hour),
		WithBreakerHook(func(string) { opens.Add(1) }),
	)
	if _, err := p.Forward(context.Background(), addr, "/v1/rewrite", nil, nil); err == nil {
		t.Fatal("forward to a dead peer must fail")
	}
	// 3 attempts = 3 transport failures = breaker open (threshold 3).
	if !p.Down(addr) {
		t.Fatal("breaker must be open after threshold failures")
	}
	if opens.Load() != 1 {
		t.Fatalf("breaker open transitions = %d, want 1", opens.Load())
	}
	// While open, forwards fail fast with ErrPeerDown — no dialing.
	start := time.Now()
	_, err := p.Forward(context.Background(), addr, "/v1/rewrite", nil, nil)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("open-breaker rejection took %v; must fail fast", elapsed)
	}
}

func TestForwardRecoversAfterCooldown(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	addr := ts.Listener.Addr().String()

	p := NewPeerSet(WithRetries(0, time.Millisecond), WithBreaker(1, 10*time.Millisecond))
	// Open the breaker against an unreachable port.
	if _, err := p.Forward(context.Background(), "127.0.0.1:1", "/x", nil, nil); err == nil {
		t.Fatal("dial to port 1 should fail")
	}
	if !p.Down("127.0.0.1:1") {
		t.Fatal("breaker should be open")
	}
	// The healthy peer has its own breaker: unaffected.
	resp, err := p.Forward(context.Background(), addr, "/x", nil, nil)
	if err != nil {
		t.Fatalf("healthy peer: %v", err)
	}
	resp.Body.Close()
	// After the cooldown the dead peer gets a probe (which fails again).
	time.Sleep(20 * time.Millisecond)
	if _, err := p.Forward(context.Background(), "127.0.0.1:1", "/x", nil, nil); errors.Is(err, ErrPeerDown) {
		t.Fatal("cooldown elapsed: the probe must reach the network, not fail fast")
	}
}

func TestPeerURL(t *testing.T) {
	cases := map[string]string{
		"host:8080":          "http://host:8080/v1/x",
		"http://host:8080":   "http://host:8080/v1/x",
		"https://host:8080/": "https://host:8080/v1/x",
	}
	for peer, want := range cases {
		if got := PeerURL(peer, "/v1/x"); got != want {
			t.Errorf("PeerURL(%q) = %q, want %q", peer, got, want)
		}
	}
}

func TestDepth(t *testing.T) {
	h := http.Header{}
	if Depth(h) != 0 {
		t.Fatal("absent header must read 0")
	}
	h.Set(ForwardedHeader, "2")
	if Depth(h) != 2 {
		t.Fatal("want 2")
	}
	h.Set(ForwardedHeader, "junk")
	if Depth(h) != 0 {
		t.Fatal("malformed header must read 0")
	}
}
