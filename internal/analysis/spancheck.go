package analysis

import (
	"go/ast"
	"go/types"
)

// SpanCheck flags stage spans that can leak and contexts that are
// dropped instead of threaded.
//
// The tracing layer's contract (internal/obs) is that every
// StartSpan/StartSpan2 is closed on every return path — the idiom is a
// deferred End immediately after the start, which covers early error
// returns for free. A span ended only on the happy path leaves the
// trace tree open exactly when something went wrong, which is when the
// trace is wanted. The analyzer reports (rule A) every
// obs.StartSpan/StartSpan2 call whose span result is discarded or not
// closed by a `defer span.End()` in the same function.
//
// Rule B guards the other half of context hygiene: a function that
// already receives a context.Context must not mint a fresh
// context.Background() or context.TODO() — doing so silently detaches
// the work from the caller's deadline, budget and tracer. Only
// packages named main (entry points own the root context) are outside
// the rule. Intentional detachment is annotated
// `//spancheck:ignore <why>`.
var SpanCheck = &Analyzer{
	Name:      "spancheck",
	Doc:       "flag StartSpan calls without a deferred End and ctx-taking functions that mint context.Background",
	Directive: "spancheck:ignore",
	Run:       runSpanCheck,
}

func runSpanCheck(pass *Pass) error {
	for _, file := range pass.Files {
		checkSpanEnds(pass, file)
		if pass.Pkg.Name() != "main" {
			checkBackground(pass, file)
		}
	}
	return nil
}

// checkSpanEnds enforces rule A over one file.
func checkSpanEnds(pass *Pass, file *ast.File) {
	// First pass: map every StartSpan call that is the sole RHS of a
	// two-value assignment to the object of its span variable.
	handled := map[*ast.CallExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isStartSpanCall(pass, call) {
			return true
		}
		handled[call] = true
		spanIdent, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			pass.Reportf(call.Pos(), "span returned by %s is not bound to a variable; defer span.End() or annotate //spancheck:ignore with a reason", startSpanName(call))
			return true
		}
		if spanIdent.Name == "_" {
			pass.Reportf(call.Pos(), "span returned by %s is discarded, so it is never ended; bind it and defer span.End() or annotate //spancheck:ignore with a reason", startSpanName(call))
			return true
		}
		obj := pass.Info.Defs[spanIdent]
		if obj == nil {
			obj = pass.Info.Uses[spanIdent]
		}
		_, body := funcFor(file, call.Pos())
		if body == nil || !hasDeferredEnd(pass, body, obj) {
			pass.Reportf(call.Pos(), "span %q started by %s has no deferred End in this function; early returns leak it — write `defer %s.End()` or annotate //spancheck:ignore with a reason",
				spanIdent.Name, startSpanName(call), spanIdent.Name)
		}
		return true
	})
	// Second pass: StartSpan calls outside the canonical assignment form
	// (expression statements, nested expressions) discard the span.
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || handled[call] || !isStartSpanCall(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(), "result of %s is not assigned `ctx, span := ...`; the span can never be ended — bind it and defer span.End() or annotate //spancheck:ignore with a reason", startSpanName(call))
		return true
	})
}

// hasDeferredEnd reports whether body contains `defer <span>.End()` for
// the given span object (any enclosing defer covers all return paths).
func hasDeferredEnd(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		sel, ok := def.Call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return !found
		}
		id, ok := sel.X.(*ast.Ident)
		if ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isStartSpanCall reports whether call is obs.StartSpan or
// obs.StartSpan2, matching the obs package by name so fixture doubles
// under testdata qualify.
func isStartSpanCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "StartSpan" && sel.Sel.Name != "StartSpan2") {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Name() == "obs"
}

func startSpanName(call *ast.CallExpr) string {
	return "obs." + call.Fun.(*ast.SelectorExpr).Sel.Name
}

// checkBackground enforces rule B over one file: functions (and their
// literals) that have a context.Context parameter must not call
// context.Background or context.TODO.
func checkBackground(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if len(contextParams(pass, fn)) == 0 {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
				return true
			}
			f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != "context" {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s takes a context.Context but mints context.%s, detaching this work from the caller's deadline/budget/tracer; thread the ctx parameter or annotate //spancheck:ignore with a reason",
				fn.Name.Name, sel.Sel.Name)
			return true
		})
	}
}
