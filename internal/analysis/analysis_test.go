package analysis_test

import (
	"strings"
	"testing"

	"regexrw/internal/analysis"
	"regexrw/internal/analysis/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.MapIter, "mapiter")
}

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.CtxCheck, "ctxcheck")
}

func TestInvariantCall(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.InvariantCall, "invariantcall")
}

func TestBudgetCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.BudgetCheck, "budgetcheck")
}

func TestSpanCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.SpanCheck, "spancheck")
}

func TestPlanImmutable(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.PlanImmutable, "planimmutable")
}

func TestLockSafety(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.LockSafety, "locksafety")
}

func TestNoDeprecated(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.NoDeprecated, "internal/nodeprecated")
}

// TestBareDirective pins the framework rule that a suppression
// directive without a justification is reported rather than honored.
// (A separate fixture without want-markers, since the bare directive
// and a want comment cannot share a source line.)
func TestBareDirective(t *testing.T) {
	pkg, err := analysis.LoadFixture("testdata/src", "baredirective")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.MapIter})
	if err != nil {
		t.Fatalf("running mapiter: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "requires a justification") {
		t.Errorf("diagnostic %q does not mention the missing justification", diags[0].Message)
	}
}

// TestLoadRepo loads this module's own automata package through the
// chain importer (module-local source + toolchain export data for the
// standard library) as a smoke test of the loader cmd/vet relies on.
func TestLoadRepo(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/automata")
	if err != nil {
		t.Fatalf("loading internal/automata: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Types.Name() != "automata" {
		t.Errorf("loaded package %q, want automata", pkgs[0].Types.Name())
	}
	if pkgs[0].Types.Scope().Lookup("NFA") == nil {
		t.Errorf("loaded automata package has no NFA type")
	}
}

// TestRepoIsClean runs the full eight-analyzer suite over the whole
// module: the tree must stay free of unsuppressed findings, the same
// gate cmd/vet enforces in CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
