package analysis

import (
	"go/ast"
	"go/types"
)

// MapIter flags iteration over Symbol-keyed maps whose order could leak
// into output.
//
// The automata package stores transition tables as
// map[alphabet.Symbol][]State, and Go randomizes map iteration order on
// purpose. Any raw `range` over such a map is therefore a potential
// source of run-to-run nondeterminism: the bugs this analyzer was built
// after had DFA state numberings, serialized automata, synthesized
// regular expressions and containment counterexamples all silently
// depending on iteration order. The analyzer reports:
//
//   - every `range` statement whose operand is a map keyed by
//     alphabet.Symbol, outside the accessor helpers (OutSymbols,
//     OutSymbolsSorted) that exist to encapsulate it; and
//   - every call to the unordered accessor OutSymbols outside
//     OutSymbolsSorted, since callers almost always want the sorted
//     variant.
//
// Iterations that are genuinely order-insensitive (set construction,
// fixpoint propagation, error detection) are annotated
// `//mapiter:unordered <why it is safe>`, which both suppresses the
// diagnostic and documents the proof obligation.
var MapIter = &Analyzer{
	Name:      "mapiter",
	Doc:       "flag iteration over Symbol-keyed maps whose order could leak into output",
	Directive: "mapiter:unordered",
	Run:       runMapIter,
}

// mapIterAllowed are the functions allowed to touch the raw map order:
// the unordered accessor itself and the sorted wrapper built on it.
var mapIterAllowed = map[string]bool{
	"OutSymbols":       true,
	"OutSymbolsSorted": true,
}

func runMapIter(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				m, ok := types.Unalias(tv.Type).(*types.Map)
				if !ok || !isNamed(m.Key(), "alphabet", "Symbol") {
					return true
				}
				if fn, _ := funcFor(file, n.Pos()); mapIterAllowed[fn] {
					return true
				}
				pass.Reportf(n.Pos(),
					"range over map keyed by alphabet.Symbol iterates in random order; use a sorted accessor or annotate //mapiter:unordered with a reason")
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "OutSymbols" {
					return true
				}
				if pass.Info.Selections[sel] == nil {
					return true // not a method call (e.g. pkg.OutSymbols)
				}
				if fn, _ := funcFor(file, n.Pos()); mapIterAllowed[fn] {
					return true
				}
				pass.Reportf(n.Pos(),
					"OutSymbols returns symbols in random order; use OutSymbolsSorted or annotate //mapiter:unordered with a reason")
			}
			return true
		})
	}
	return nil
}
