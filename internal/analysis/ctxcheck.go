package analysis

import (
	"go/ast"
	"go/types"
)

// CtxCheck flags functions that accept a context.Context but never
// consult it from their loops.
//
// The expensive operations of this codebase — subset construction,
// containment search, the rewriting pipeline — are worst-case
// exponential, which is why their entry points take a Context. A ctx
// parameter that is accepted and then ignored is worse than none: the
// signature promises cancellation that silently does not happen. The
// analyzer reports:
//
//   - a function whose signature includes a context.Context parameter
//     and whose body contains at least one loop, when the context is
//     never consulted anywhere in the body (rule A); and
//   - an unconditional `for {` loop inside such a function whose own
//     body does not consult the context, even if other code in the
//     function does (rule B).
//
// "Consulting" the context means calling one of its methods (Err, Done,
// Deadline, Value) or passing it onward in a call (delegating
// cancellation to a callee). Functions whose loops are provably short
// can be annotated `//ctxcheck:ignore <why>`.
var CtxCheck = &Analyzer{
	Name:      "ctxcheck",
	Doc:       "flag ctx-taking functions whose loops never consult the context",
	Directive: "ctxcheck:ignore",
	Run:       runCtxCheck,
}

func runCtxCheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fn)
			if len(ctxParams) == 0 {
				continue
			}
			// Rule A: a loop exists, the context is never consulted.
			if hasLoop(fn.Body) && !consultsCtx(pass, fn.Body, ctxParams) {
				pass.Reportf(fn.Pos(),
					"%s takes a context.Context but its loops never consult it; check ctx.Err (or pass ctx on) or annotate //ctxcheck:ignore with a reason",
					fn.Name.Name)
				continue
			}
			// Rule B: an unconditional for-loop that does not consult the
			// context in its own body can spin past cancellation forever.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Cond != nil {
					return true
				}
				if !consultsCtx(pass, loop.Body, ctxParams) {
					pass.Reportf(loop.Pos(),
						"unconditional loop in ctx-taking %s does not consult the context; check ctx.Err in the loop or annotate //ctxcheck:ignore with a reason",
						fn.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// contextParams returns the *types.Var objects of fn's parameters whose
// type is context.Context.
func contextParams(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isNamed(tv.Type, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// hasLoop reports whether body contains any for or range statement.
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// consultsCtx reports whether any statement under root consults one of
// the given context parameters: calls a method on it, or passes it as
// an argument (delegating the check to the callee).
func consultsCtx(pass *Pass, root ast.Node, ctxParams map[types.Object]bool) bool {
	isCtx := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && ctxParams[pass.Info.Uses[id]]
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isCtx(sel.X) {
			found = true // ctx.Err(), ctx.Done(), ctx.Value(...), ...
		}
		for _, arg := range call.Args {
			if isCtx(arg) {
				found = true // ctx handed to a callee
			}
		}
		return !found
	})
	return found
}
