package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and typechecked package, ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// Deprecated holds every object whose declaration carries a
	// "Deprecated:" doc line, across ALL packages loaded from source in
	// the same Load call (the map is shared between them). Analyzers use
	// it to flag cross-package calls into deprecated API (nodeprecated).
	Deprecated map[types.Object]bool
}

// Load parses and typechecks the packages matching the patterns.
// Patterns are interpreted relative to dir: "./..." walks the tree
// (skipping testdata, vendor and hidden directories), anything else
// names one directory. dir must sit inside a module; module-local
// imports are typechecked from source, standard-library imports come
// from the toolchain's compiled export data (go/importer), so loading
// needs no network and no third-party machinery.
func Load(dir string, patterns ...string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.moduleRoot, l.modulePath = root, modPath

	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", d, root)
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadDir(path, d)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFixture parses and typechecks a single test-fixture package:
// srcRoot is a GOPATH-like source root, and import paths in fixture
// files resolve as srcRoot/<path>. Used by the analysistest package.
func LoadFixture(srcRoot, pkgPath string) (*Package, error) {
	l := newLoader()
	l.srcRoot = srcRoot
	return l.loadDir(pkgPath, filepath.Join(srcRoot, filepath.FromSlash(pkgPath)))
}

type loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	srcRoot    string
	std        types.Importer
	cache      map[string]*Package
	loading    map[string]bool
	deprecated map[types.Object]bool
}

func newLoader() *loader {
	return &loader{
		fset:       token.NewFileSet(),
		std:        importer.Default(),
		cache:      map[string]*Package{},
		loading:    map[string]bool{},
		deprecated: map[types.Object]bool{},
	}
}

// Import implements types.Importer by chaining: module-local and
// fixture paths load from source through this loader, everything else
// (in practice: the standard library) defers to the toolchain importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.srcRoot != "" {
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			pkg, err := l.loadDir(path, dir)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.loadDir(path, filepath.Join(l.moduleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and typechecks the package in dir under the given
// import path, memoized so each package is processed once per load.
func (l *loader) loadDir(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err // includes *build.NoGoError for Go-free directories
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	l.collectDeprecated(files, info)
	pkg := &Package{
		PkgPath: path, Dir: dir,
		Fset: l.fset, Files: files,
		Types: tpkg, Info: info,
		Deprecated: l.deprecated,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// collectDeprecated records every declared object — function, method,
// type, variable or constant — whose doc comment carries a
// "Deprecated:" line, into the loader-wide map shared by all Packages
// of this load. Because module-local and fixture imports are
// typechecked from source, deprecations declared in an imported
// package are visible to analyses of its importers.
func (l *loader) collectDeprecated(files []*ast.File, info *types.Info) {
	record := func(name *ast.Ident, docs ...*ast.CommentGroup) {
		for _, doc := range docs {
			if !hasDeprecated(doc) {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				l.deprecated[obj] = true
			}
			return
		}
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				record(d.Name, d.Doc)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						record(s.Name, s.Doc, d.Doc)
					case *ast.ValueSpec:
						for _, name := range s.Names {
							record(name, s.Doc, d.Doc)
						}
					}
				}
			}
		}
	}
}

// hasDeprecated reports whether the doc comment contains a line
// following the standard "Deprecated:" convention.
func hasDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// expandPatterns resolves command-line package patterns to directories.
func expandPatterns(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(dir, filepath.FromSlash(rest))
			err := filepath.WalkDir(base, func(p string, de fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !de.IsDir() {
					return nil
				}
				name := de.Name()
				if p != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(dir, filepath.FromSlash(pat)))
	}
	sort.Strings(out)
	return out, nil
}

// isNoGo reports whether err means "directory holds no buildable Go
// files", which pattern walking treats as skippable, not fatal.
func isNoGo(err error) bool {
	var ng *build.NoGoError
	return errors.As(err, &ng)
}
