// Package analysis is a small, dependency-free static-analysis
// framework in the spirit of golang.org/x/tools/go/analysis, built on
// the standard library's go/ast, go/types and go/importer so that the
// repository's custom vet checks (cmd/vet) need nothing outside the Go
// toolchain. It deliberately mirrors the x/tools surface — Analyzer,
// Pass, Diagnostic, Reportf — so the analyzers in this package could be
// ported to the real framework by changing imports.
//
// The eight analyzers it ships guard the invariants the automata
// pipeline and the serving engine depend on:
//
//   - mapiter: transition tables are maps keyed by alphabet.Symbol, and
//     Go randomizes map iteration order; any raw range over such a map
//     outside the sorted-accessor helpers is a potential source of
//     nondeterministic output (state numberings, serialized automata,
//     synthesized regexes, counterexample words).
//   - ctxcheck: the subset construction and the containment search are
//     worst-case exponential; entry points that accept a
//     context.Context must actually consult it inside their loops, or
//     cancellation silently does not work.
//   - invariantcall: exported constructors of the automata and core
//     packages must run the regexrwdebug-gated Validate hooks on what
//     they return, so the debug build checks every automaton that
//     crosses a package boundary.
//   - budgetcheck: loops in the hot-path packages (automata, core, rpq)
//     that materialize automaton states or transitions, or grow a
//     subset interner, must charge the budget meter on their path —
//     the constructions are doubly exponential by theorem, so an
//     unmetered loop is an outage waiting for an input.
//   - spancheck: every obs.StartSpan/StartSpan2 is paired with a
//     deferred End (covering early error returns), and functions that
//     accept a context thread it instead of minting
//     context.Background().
//   - planimmutable: fields of the cached engine.Plan and of the
//     memoized NFA closure tables are written only in the file that
//     declares the type — write-after-publish on a shared plan is a
//     data race the race detector only catches when a test collides.
//   - locksafety: no plain access to fields also accessed through
//     sync/atomic, no atomic-typed value copied, no mutex copied, and
//     no channel operation or budget charge while holding a mutex
//     (e.g. an LRU shard lock).
//   - nodeprecated: internal packages and cmd/ never call the
//     "Deprecated:" facade wrappers kept for compatibility.
//
// # Suppression directives
//
// Each analyzer has a directive comment that suppresses its diagnostic
// on the same source line, and every directive requires a written
// justification — a bare directive is itself a diagnostic:
//
//	for x := range n.trans[s] { //mapiter:unordered collecting into a set; sorted below
//	func Determinize(n *NFA) *DFA { //invariantcall:checked delegates to determinize, which validates
//	for { //ctxcheck:ignore terminates in ≤ alphabet.Len() iterations
//
// This keeps every suppression auditable: `git grep mapiter:unordered`
// lists each intentionally-unordered iteration together with the reason
// it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// All lists every analyzer the suite ships, in the order cmd/vet runs
// them. Adding an analyzer here wires it into cmd/vet, the self-clean
// test and the CI lint gate at once.
var All = []*Analyzer{
	MapIter,
	CtxCheck,
	InvariantCall,
	BudgetCheck,
	SpanCheck,
	PlanImmutable,
	LockSafety,
	NoDeprecated,
}

// An Analyzer describes one analysis: a name, a documentation string,
// the directive that suppresses its diagnostics, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the cmd/vet
	// command line.
	Name string

	// Doc is the one-paragraph description printed by cmd/vet -help.
	Doc string

	// Directive, when non-empty, is the comment directive (without the
	// leading "//") that suppresses this analyzer's diagnostics on the
	// line it appears on, e.g. "mapiter:unordered". A directive comment
	// must carry a justification; a bare one is reported instead of
	// honored.
	Directive string

	// Run performs the analysis on one package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer's view of one package: the syntax trees,
// the type information, and the sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Deprecated holds the objects declared with a "Deprecated:" doc
	// line across every source-loaded package of this load (see
	// Package.Deprecated).
	Deprecated map[types.Object]bool

	diags      []Diagnostic
	directives map[lineKey]directive
}

// A Diagnostic is one finding, positioned and attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

type lineKey struct {
	file string
	line int
}

type directive struct {
	reason string
	pos    token.Position
}

// Reportf records a diagnostic at pos unless a justified suppression
// directive for this analyzer sits on the same source line. A directive
// without a justification does not suppress — it is reported itself, so
// that every suppression in the tree carries its reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Analyzer.Directive != "" {
		if d, ok := p.directives[lineKey{position.Filename, position.Line}]; ok {
			if d.reason != "" {
				return // suppressed, with justification
			}
			p.diags = append(p.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("//%s directive requires a justification", p.Analyzer.Directive),
			})
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// scanDirectives indexes every "//<directive>" comment by file and
// line, so Reportf can match suppressions to the diagnostics they
// target.
func (p *Pass) scanDirectives() {
	p.directives = map[lineKey]directive{}
	if p.Analyzer.Directive == "" {
		return
	}
	marker := "//" + p.Analyzer.Directive
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != marker && !strings.HasPrefix(c.Text, marker+" ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, marker))
				p.directives[lineKey{pos.Filename, pos.Line}] = directive{reason: reason, pos: pos}
			}
		}
	}
}

// Run applies each analyzer to each package and returns every
// diagnostic, sorted by position. Analyzer errors (not diagnostics —
// failures to run at all) abort.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Deprecated: pkg.Deprecated,
			}
			pass.scanDirectives()
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// isNamed reports whether t (after unaliasing) is a named type with the
// given type name whose defining package has the given package name
// (not path: fixtures under testdata get synthetic paths, and matching
// by name keeps the analyzers honest about what they actually key on).
func isNamed(t types.Type, pkgName, typeName string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == pkgName
}

// funcFor returns the innermost function declaration or literal
// enclosing pos in file, with the declaration's name when it is a
// FuncDecl ("" for literals), using interval containment.
func funcFor(file *ast.File, pos token.Pos) (name string, body *ast.BlockStmt) {
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false // prune subtrees that do not contain pos
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			name, body = fn.Name.Name, fn.Body
		case *ast.FuncLit:
			name, body = "", fn.Body
		}
		return true
	})
	return name, body
}
