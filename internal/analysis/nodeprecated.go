package analysis

import (
	"go/ast"
	"strings"
)

// NoDeprecated flags internal and cmd packages calling deprecated API.
//
// The package-level facade keeps "// Deprecated:" wrappers (Rewrite,
// MaximalRewriting, ...) so external callers migrate at their own
// pace, but inside this module they are dead weight: every internal
// package and command is expected to use the Engine/Plan serving
// surface or the ...Context entry points directly. A deprecated call
// creeping back into internal/ or cmd/ quietly re-couples new code to
// the surface being retired. The analyzer reports every use, from a
// package whose import path contains an internal/ or cmd/ segment, of
// an object declared elsewhere with a "Deprecated:" doc line (the
// loader collects those across all source-loaded packages).
//
// A deliberate use — a compatibility shim, a migration test bed — is
// annotated `//nodeprecated:allow <why>`.
var NoDeprecated = &Analyzer{
	Name:      "nodeprecated",
	Doc:       "flag internal/ and cmd/ packages calling Deprecated facade wrappers",
	Directive: "nodeprecated:allow",
	Run:       runNoDeprecated,
}

func runNoDeprecated(pass *Pass) error {
	if len(pass.Deprecated) == 0 || !isInternalOrCmd(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !pass.Deprecated[obj] || obj.Pkg() == pass.Pkg {
				return true
			}
			pass.Reportf(id.Pos(),
				"use of deprecated %s.%s from %s; call the replacement named in its Deprecated note or annotate //nodeprecated:allow with a reason",
				obj.Pkg().Name(), obj.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// isInternalOrCmd reports whether the import path has an internal or
// cmd path segment.
func isInternalOrCmd(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" || seg == "cmd" {
			return true
		}
	}
	return false
}
