// Package baredirective holds a suppression directive with no
// justification; the framework reports the directive itself instead of
// honoring it. Checked by a direct unit test rather than `// want`
// comments, since the directive and a want marker cannot share a line.
package baredirective

import "alphabet"

func Sum(m map[alphabet.Symbol]int) int {
	total := 0
	for x := range m { //mapiter:unordered
		total += int(x)
	}
	return total
}
