// Package budget is a minimal stand-in for regexrw/internal/budget so
// fixtures can form the *budget.Meter type the budgetcheck and
// locksafety analyzers key on (they match by package and type name,
// not path).
package budget

import "context"

// Meter mirrors the charge surface of the real budget.Meter.
type Meter struct {
	ticks int64
}

// Enter mirrors the real constructor.
func Enter(ctx context.Context, stage string) *Meter { return &Meter{} }

// AddStates mirrors the real charge method.
func (m *Meter) AddStates(n int) error { m.ticks++; return nil }

// AddTransitions mirrors the real charge method.
func (m *Meter) AddTransitions(n int) error { m.ticks++; return nil }

// Check mirrors the real tick method.
func (m *Meter) Check() error { m.ticks++; return nil }
