// Package automata is a minimal stand-in for regexrw/internal/automata
// so fixtures can form the NFA/DFA receiver types the budgetcheck
// analyzer keys on (it matches by package and type name, not path).
package automata

import "alphabet"

// State mirrors the real automata.State.
type State int

// NFA mirrors the mutator surface of the real automata.NFA.
type NFA struct {
	accept []bool
}

// NewNFA returns an empty fixture NFA.
func NewNFA() *NFA { return &NFA{} }

// AddState mirrors the real mutator.
func (n *NFA) AddState() State {
	n.accept = append(n.accept, false)
	return State(len(n.accept) - 1)
}

// AddStates mirrors the real mutator.
func (n *NFA) AddStates(k int) State {
	first := State(len(n.accept))
	for i := 0; i < k; i++ {
		n.AddState()
	}
	return first
}

// AddTransition mirrors the real mutator.
func (n *NFA) AddTransition(from State, x alphabet.Symbol, to State) {}

// AddEpsilon mirrors the real mutator.
func (n *NFA) AddEpsilon(from, to State) {}

// SetAccept mirrors the real mutator.
func (n *NFA) SetAccept(s State, accepting bool) { n.accept[s] = accepting }

// NumStates mirrors the real accessor.
func (n *NFA) NumStates() int { return len(n.accept) }

// DFA mirrors the mutator surface of the real automata.DFA.
type DFA struct {
	accept []bool
}

// NewDFA returns an empty fixture DFA.
func NewDFA() *DFA { return &DFA{} }

// AddState mirrors the real mutator.
func (d *DFA) AddState(accepting bool) State {
	d.accept = append(d.accept, accepting)
	return State(len(d.accept) - 1)
}

// SetTransition mirrors the real mutator.
func (d *DFA) SetTransition(from State, x alphabet.Symbol, to State) {}
