// Package legacyapi is the fixture double of the repository's facade:
// it declares wrappers carrying the standard "Deprecated:" doc line,
// which the loader collects for the nodeprecated analyzer.
package legacyapi

// Rewrite is the one-shot compatibility wrapper.
//
// Deprecated: use Engine.Rewrite, which caches and governs compiles.
func Rewrite(query string, views map[string]string) (string, error) {
	return query, nil
}

// MaxStates is a tuning knob of the legacy surface.
//
// Deprecated: set the budget on the Engine instead.
var MaxStates = 0

// Current is the supported entry point; calling it is always fine.
func Current(query string, views map[string]string) (string, error) {
	return query, nil
}
