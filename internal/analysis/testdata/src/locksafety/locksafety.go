// Package locksafety is the fixture for the locksafety analyzer: no
// field accessed both atomically and plainly, no atomic value copied,
// no lock-containing value copied, and no channel op or budget charge
// while a mutex is held.
package locksafety

import (
	"context"
	"sync"
	"sync/atomic"

	"budget"
)

// counter mixes sync/atomic and plain access to the same field.
type counter struct {
	n int64
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 {
	return c.n // want "field n is accessed with sync/atomic elsewhere in this package but plainly here"
}

func (c *counter) readExempt() int64 {
	return c.n //locksafety:ok read under the owner's mutex in every caller; see the shard contract
}

// box holds an atomic-typed field; it must only be touched through its
// methods.
type box struct {
	v atomic.Int64
}

func (b *box) ok() int64 { return b.v.Load() }

func (b *box) leak() int64 {
	copied := b.v // want "atomic-typed field v is copied or read as a value"
	return copied.Load()
}

// shard mirrors an LRU shard: mutex plus storage plus a channel.
type shard struct {
	mu    sync.Mutex
	items map[string]int
	ch    chan int
}

// byValue copies the shard's mutex through the parameter.
func byValue(s shard) int { // want "parameter passes shard by value, copying the lock"
	return len(s.items)
}

// copyAssign copies a lock-containing value out of a pointer.
func copyAssign(s *shard) int {
	local := *s // want "assignment copies shard which contains a lock"
	return len(local.items)
}

// rangeCopy copies each element's lock through the range variable.
func rangeCopy(shards []shard) int {
	total := 0
	for _, s := range shards { // want "range value copies shard which contains a lock"
		total += len(s.items)
	}
	return total
}

// byPointer is the compliant shape everywhere above.
func byPointer(s *shard) int { return len(s.items) }

// sendUnderLock performs a channel send inside the critical section.
func sendUnderLock(s *shard, v int) {
	s.mu.Lock()
	s.items["k"] = v
	s.ch <- v // want "channel send while holding a mutex"
	s.mu.Unlock()
}

// recvUnderDeferredLock holds the lock to function end via the defer
// idiom, so the receive is under it.
func recvUnderDeferredLock(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding a mutex"
}

// chargeUnderLock charges a budget meter inside the critical section.
func chargeUnderLock(ctx context.Context, s *shard) error {
	m := budget.Enter(ctx, "fixture.shard")
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.AddStates(1) // want "charge while holding a mutex"
}

// sendAfterUnlock releases before the send on every path: compliant.
func sendAfterUnlock(s *shard, v int) {
	s.mu.Lock()
	if _, ok := s.items["k"]; ok {
		s.mu.Unlock()
		s.ch <- v
		return
	}
	s.items["k"] = v
	s.mu.Unlock()
	s.ch <- v
}

// sendExempt documents an intentional send under the lock.
func sendExempt(s *shard, v int) {
	s.mu.Lock()
	s.ch <- v //locksafety:ok buffered handoff channel sized to the shard count; the send cannot block
	s.mu.Unlock()
}
