// Package spancheck is the fixture for the spancheck analyzer: every
// obs.StartSpan/StartSpan2 must be bound and closed by a deferred End
// (rule A), and a function that receives a context must not mint
// context.Background/TODO (rule B).
package spancheck

import (
	"context"

	"obs"
)

// Leaky starts a span and ends it only on the happy path: an early
// error return leaks it.
func Leaky(ctx context.Context, fail bool) error {
	ctx, span := obs.StartSpan(ctx, "fixture.leaky") // want "has no deferred End"
	if fail {
		return errFixture
	}
	span.End()
	_ = ctx
	return nil
}

// Discarded throws the span away; it can never be ended.
func Discarded(ctx context.Context) context.Context {
	ctx, _ = obs.StartSpan(ctx, "fixture.discarded") // want "is discarded, so it is never ended"
	return ctx
}

// Unbound calls StartSpan as a bare statement.
func Unbound(ctx context.Context) {
	obs.StartSpan(ctx, "fixture.unbound") // want "can never be ended"
}

// Deferred is the canonical idiom: defer immediately after start
// covers every return path.
func Deferred(ctx context.Context, fail bool) error {
	ctx, span := obs.StartSpan(ctx, "fixture.deferred")
	defer span.End()
	if fail {
		return errFixture
	}
	_ = ctx
	return nil
}

// Deferred2 pins the StartSpan2 variant.
func Deferred2(ctx context.Context) {
	ctx, span := obs.StartSpan2(ctx, "fixture.deferred", "detail")
	defer span.End()
	_ = ctx
}

// Exempt hands the span to a helper that owns its lifecycle; the
// directive records why that is safe.
func Exempt(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "fixture.exempt") //spancheck:ignore ownership transfers to finish, which ends the span on every path
	finish(span)
}

func finish(s *obs.Span) { s.End() }

// Detached takes a context and then mints a fresh one, detaching the
// work from the caller's deadline (rule B).
func Detached(ctx context.Context) context.Context {
	return context.Background() // want "mints context.Background"
}

// DetachedTODO pins the TODO variant.
func DetachedTODO(ctx context.Context) context.Context {
	return context.TODO() // want "mints context.TODO"
}

// DetachedExempt detaches on purpose — the directive carries the
// justification.
func DetachedExempt(ctx context.Context) context.Context {
	return context.Background() //spancheck:ignore fixture models fire-and-forget work that must outlive the request
}

// Threads passes the ctx it received: the compliant shape.
func Threads(ctx context.Context) error {
	return helper(ctx)
}

// NoCtx has no context parameter, so minting a root context is its
// job, not a violation.
func NoCtx() context.Context {
	return context.Background()
}

func helper(ctx context.Context) error { return ctx.Err() }

var errFixture = context.Canceled
