// Package core is the fixture for the budgetcheck analyzer (the
// analyzer keys on the package NAME — automata, core, rpq — so this
// fixture package is named core). Loops that materialize automaton
// states or transitions must charge a budget.Meter on their path, or
// pass the meter/context to a callee, or carry a justified
// //budget:exempt directive.
package core

import (
	"context"

	"alphabet"
	"automata"
	"budget"
)

// Unmetered materializes states in a loop without ever touching the
// meter: the canonical violation.
func Unmetered(n int) *automata.NFA {
	a := automata.NewNFA()
	for i := 0; i < n; i++ { // want "loop materializes automaton state without charging the budget meter"
		a.AddState()
	}
	return a
}

// UnmeteredTransitions materializes transitions through a nested loop;
// the diagnostic lands on the outermost loop, where a charge would
// cover everything below it.
func UnmeteredTransitions(a *automata.NFA, n int) {
	for i := 0; i < n; i++ { // want "loop materializes automaton state without charging the budget meter"
		for j := 0; j < n; j++ {
			a.AddTransition(automata.State(i), alphabet.Symbol(0), automata.State(j))
		}
	}
}

// Metered charges the meter every iteration: the contract satisfied
// directly.
func Metered(ctx context.Context, n int) (*automata.NFA, error) {
	a := automata.NewNFA()
	m := budget.Enter(ctx, "fixture.metered")
	for i := 0; i < n; i++ {
		a.AddState()
		if err := m.AddStates(1); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Delegates passes the context into the loop body; the callee owns the
// charge, which satisfies the analyzer the same way ctxcheck treats
// delegation.
func Delegates(ctx context.Context, a *automata.NFA, n int) error {
	for i := 0; i < n; i++ {
		if err := addOne(ctx, a); err != nil {
			return err
		}
	}
	return nil
}

func addOne(ctx context.Context, a *automata.NFA) error {
	m := budget.Enter(ctx, "fixture.addone")
	a.AddState()
	return m.AddStates(1)
}

// Exempt copies a fixed-size automaton: the trip count is bounded by
// an input that already paid for its states, so the loop is annotated
// rather than metered.
func Exempt(src *automata.NFA) *automata.NFA {
	dst := automata.NewNFA()
	for i := 0; i < src.NumStates(); i++ { //budget:exempt copying an automaton whose states the source construction already charged
		dst.AddState()
	}
	return dst
}

// NoMaterialization loops without growing anything; no claim.
func NoMaterialization(a *automata.NFA) int {
	total := 0
	for i := 0; i < a.NumStates(); i++ {
		total++
	}
	return total
}
