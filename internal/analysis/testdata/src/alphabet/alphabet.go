// Package alphabet is a minimal stand-in for regexrw/internal/alphabet
// so fixtures can form the map[alphabet.Symbol]T types the mapiter
// analyzer keys on (it matches by package and type name, not by import
// path).
package alphabet

// Symbol mirrors the real alphabet.Symbol.
type Symbol int32

// None mirrors the real sentinel.
const None Symbol = -1
