// Package automata is the fixture for the invariantcall analyzer
// (named automata to mirror the real package, though the analyzer keys
// on the returned type being defined in the analyzed package, not on
// the package name): exported constructors of validated types must call
// a debug validation hook or carry a justified directive.
package automata

// NFA and DFA mirror the validated types of the real automata package.
type NFA struct{ ok bool }

type DFA struct{ ok bool }

// Other is not a validated type.
type Other struct{}

func debugValidateNFA(n *NFA) {}

func debugValidateDFA(d *DFA) {}

// Validate mirrors the real invariant method.
func (d *DFA) Validate() error { return nil }

func NewNFA() *NFA {
	n := &NFA{}
	debugValidateNFA(n)
	return n
}

func NewBad() *NFA { // want "exported NewBad returns \\*NFA without a debug validation call"
	return &NFA{}
}

func (n *NFA) CloneBad() *NFA { // want "exported CloneBad returns \\*NFA without a debug validation call"
	return &NFA{ok: n.ok}
}

func NewDFABad() (*DFA, error) { // want "exported NewDFABad returns \\*DFA without a debug validation call"
	return &DFA{}, nil
}

func Wrapped() *NFA { //invariantcall:checked delegates to NewNFA, which validates
	return NewNFA()
}

func ViaValidate() (*DFA, error) {
	d := &DFA{}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func makeBare() *NFA { // unexported: the analyzer has no claim
	return &NFA{}
}

func MakeOther() *Other { // not a validated type
	return &Other{}
}

func UsesBare() *NFA { //invariantcall:checked delegating wrapper for the fixture's unexported constructor
	return makeBare()
}
