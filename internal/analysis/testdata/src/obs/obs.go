// Package obs is a minimal stand-in for regexrw/internal/obs so
// fixtures can call the StartSpan/StartSpan2 functions the spancheck
// analyzer keys on (it matches by package name, not path).
package obs

import "context"

// Span mirrors the real obs.Span.
type Span struct{}

// End mirrors the real method (nil-safe no-op).
func (s *Span) End() {}

// StartSpan mirrors the real function.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

// StartSpan2 mirrors the real function.
func StartSpan2(ctx context.Context, name, detail string) (context.Context, *Span) {
	return ctx, &Span{}
}
