// Package nodeprecated is the fixture for the nodeprecated analyzer:
// its import path has an internal/ segment, so every use of an object
// declared elsewhere with a "Deprecated:" doc line is flagged.
package nodeprecated

import "legacyapi"

// UsesDeprecated calls the deprecated wrapper and reads the deprecated
// variable.
func UsesDeprecated() (string, error) {
	legacyapi.MaxStates = 10              // want "use of deprecated legacyapi.MaxStates"
	return legacyapi.Rewrite("a·b*", nil) // want "use of deprecated legacyapi.Rewrite"
}

// UsesCurrent calls the supported surface: no claim.
func UsesCurrent() (string, error) {
	return legacyapi.Current("a·b*", nil)
}

// Migration keeps one deprecated call on purpose, with the directive
// carrying the reason.
func Migration() (string, error) {
	return legacyapi.Rewrite("a", nil) //nodeprecated:allow differential test bed: compares the legacy wrapper against the engine until PR 7 removes it
}
