// Package mapiter is the fixture for the mapiter analyzer: raw ranges
// over Symbol-keyed maps and calls to the unordered accessor are
// flagged, while the accessor definitions themselves, justified
// directives, and maps with other key types are not.
package mapiter

import "alphabet"

// NFA mimics the transition-table shape of the real automata package.
type NFA struct {
	trans []map[alphabet.Symbol][]int
}

// OutSymbols may touch the raw map: it is the unordered accessor.
func (n *NFA) OutSymbols(s int) []alphabet.Symbol {
	out := make([]alphabet.Symbol, 0, len(n.trans[s]))
	for x := range n.trans[s] {
		out = append(out, x)
	}
	return out
}

// OutSymbolsSorted may call the unordered accessor.
func (n *NFA) OutSymbolsSorted(s int) []alphabet.Symbol {
	out := n.OutSymbols(s)
	return out
}

func Raw(n *NFA, s int) int {
	total := 0
	for x := range n.trans[s] { // want "range over map keyed by alphabet.Symbol iterates in random order"
		total += int(x)
	}
	return total
}

func RawLiteral(m map[alphabet.Symbol]bool) int {
	total := 0
	for x := range m { // want "range over map keyed by alphabet.Symbol"
		total += int(x)
	}
	return total
}

func Annotated(n *NFA, s int) int {
	total := 0
	for x := range n.trans[s] { //mapiter:unordered summation is commutative
		total += int(x)
	}
	return total
}

func Caller(n *NFA, s int) []alphabet.Symbol {
	return n.OutSymbols(s) // want "OutSymbols returns symbols in random order"
}

func AnnotatedCaller(n *NFA, s int) []alphabet.Symbol {
	return n.OutSymbols(s) //mapiter:unordered the caller sorts before use
}

func SortedCaller(n *NFA, s int) []alphabet.Symbol {
	return n.OutSymbolsSorted(s)
}

func OtherKeyType(m map[string]int) int {
	total := 0
	for range m {
		total++
	}
	return total
}

func InsideClosure(n *NFA, s int) int {
	f := func() int {
		total := 0
		for x := range n.trans[s] { // want "range over map keyed by alphabet.Symbol"
			total += int(x)
		}
		return total
	}
	return f()
}
