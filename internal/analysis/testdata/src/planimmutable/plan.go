// Package engine is the fixture for the planimmutable analyzer (which
// keys on the package and type name engine.Plan): fields of Plan may
// only be written in this file, the one declaring the type.
package engine

// Plan mirrors the real engine.Plan: compiled once, then shared
// immutably by every cache hit.
type Plan struct {
	key    string
	states int64
	attrs  map[string]int64
}

// newPlan writes every field in the declaring file: the constructor
// shape the analyzer admits.
func newPlan(key string) *Plan {
	p := &Plan{}
	p.key = key
	p.states = 0
	p.attrs = map[string]int64{}
	p.attrs["built"] = 1
	return p
}

// Key reads are always fine.
func (p *Plan) Key() string { return p.key }
