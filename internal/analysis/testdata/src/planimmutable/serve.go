package engine

// servePlan mutates a published Plan outside plan.go: the write-after-
// publish race planimmutable exists to forbid. Indexed writes through
// a field and increments count as writes too.
func servePlan(p *Plan, n int64) {
	p.states = n             // want "write to engine.Plan field states outside its declaring file plan.go"
	p.attrs["served"] = 1    // want "write to engine.Plan field attrs outside its declaring file plan.go"
	p.states++               // want "write to engine.Plan field states outside its declaring file plan.go"
	observe(p.states, p.key) // reads are fine
}

// rebuildPlan is an intentional exception: it owns the only reference
// to a plan that was never published, and the directive records that.
func rebuildPlan(p *Plan) {
	p.states = 0 //planimmutable:allow p was created this call and not yet published to the cache
}

func observe(states int64, key string) {}
