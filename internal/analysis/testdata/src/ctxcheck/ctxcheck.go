// Package ctxcheck is the fixture for the ctxcheck analyzer: functions
// that take a context and loop without ever consulting it are flagged
// (rule A), as are unconditional loops that do not consult it in their
// own body (rule B); consulting via a method call or by passing the
// context onward satisfies the analyzer.
package ctxcheck

import "context"

func NoConsult(ctx context.Context, n int) int { // want "NoConsult takes a context.Context but its loops never consult it"
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func Consults(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func Delegates(ctx context.Context, items []int) error {
	for range items {
		if err := helper(ctx); err != nil {
			return err
		}
	}
	return nil
}

func helper(ctx context.Context) error { return ctx.Err() }

func NoLoop(ctx context.Context, n int) int {
	if n > 0 {
		return n
	}
	return 0
}

func SpinPartial(ctx context.Context, ch chan int) int {
	if ctx.Err() != nil {
		return 0
	}
	for { // want "unconditional loop in ctx-taking SpinPartial does not consult the context"
		if v := <-ch; v == 0 {
			return v
		}
	}
}

func SpinConsults(ctx context.Context, ch chan int) int {
	for {
		if ctx.Err() != nil {
			return -1
		}
		if v := <-ch; v == 0 {
			return v
		}
	}
}

func Annotated(ctx context.Context, n int) int { //ctxcheck:ignore the loop runs at most 8 iterations
	total := 0
	for i := 0; i < n && i < 8; i++ {
		total += i
	}
	return total
}

func NoContext(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
